package bepi

import (
	"testing"

	"bepi/internal/vec"
)

// TestDynamicPendingAfterAddNodeCountsGrowth is the regression test for the
// AddNode bookkeeping bug: a node added with no buffered edges is pending
// work — the next flush must rebuild to make it queryable — but Pending
// reported 0, so callers gating Flush on Pending() > 0 never flushed.
func TestDynamicPendingAfterAddNodeCountsGrowth(t *testing.T) {
	d, err := NewDynamic(dynGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	id := d.AddNode()
	if got := d.Pending(); got == 0 {
		t.Fatal("Pending() = 0 after AddNode; node growth is unflushed work")
	} else if got != 1 {
		t.Fatalf("Pending() = %d after one AddNode, want 1", got)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := d.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after flush, want 0", got)
	}
	if d.Engine().N() != 7 {
		t.Fatalf("engine covers %d nodes after flush, want 7", d.Engine().N())
	}
	// Pure node growth reuses the ordering: the cheap delta path, exactly.
	st := d.LastRebuild().Status()
	if st.Mode != RebuildModeDeltaSpoke {
		t.Fatalf("growth-only flush mode = %q, want %q", st.Mode, RebuildModeDeltaSpoke)
	}
	r, err := d.Query(id)
	if err != nil {
		t.Fatal(err)
	}
	if r[id] <= 0 {
		t.Fatal("new node got no restart mass")
	}
}

// TestDynamicRunningStatusGeneration is the regression test for the
// generation-sentinel bug: RebuildStatus used Generation == 0 to mean
// "still running", so pollers could not tell which index was serving their
// queries mid-rebuild. A running status must report the generation the
// rebuild started from, with State — not a zero sentinel — carrying the
// lifecycle phase.
func TestDynamicRunningStatusGeneration(t *testing.T) {
	d, err := NewDynamic(dynGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	d.testRebuildGate = gate
	if err := d.AddEdge(0, 5); err != nil {
		t.Fatal(err)
	}
	r := d.StartFlush()
	st := r.Status()
	if st.State != RebuildRunning {
		t.Fatalf("state = %q, want running", st.State)
	}
	if st.Generation != 1 {
		t.Fatalf("running status Generation = %d, want the serving generation 1", st.Generation)
	}
	if st.Mode != "" {
		t.Fatalf("running status Mode = %q, want empty until settled", st.Mode)
	}
	close(gate)
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	st = r.Status()
	if st.State != RebuildDone || st.Generation != 2 {
		t.Fatalf("settled status = %+v, want done at generation 2", st)
	}
	if st.Mode == "" || st.Mode == RebuildModeNoop {
		t.Fatalf("settled status Mode = %q, want a rebuild mode", st.Mode)
	}
}

// TestDynamicFailedRebuildRenormalizesBuffer pins the failure path: when a
// rebuild fails, the consumed buffer is restored (newer mid-rebuild ops
// winning) and then re-normalized against the still-serving edge set, so
// no-op updates buffered during the doomed rebuild cannot linger as
// phantom pending work.
func TestDynamicFailedRebuildRenormalizesBuffer(t *testing.T) {
	d, err := NewDynamic(dynGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	// Make the next full rebuild fail. The op below is a new node with an
	// out-edge — structurally impossible for the delta path — so the flush
	// must take the full pipeline and hit the absurd budget.
	d.opts = append(d.opts, WithMemoryBudget(1))
	id := d.AddNode()
	if err := d.AddEdge(id, 0); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	d.testRebuildGate = gate
	r := d.StartFlush()
	// Mid-rebuild: buffer a no-op (edge 0→1 already serves). The in-flight
	// rebuild suppresses buffer-time cancellation, so only the settle-time
	// re-normalization can clear it.
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	close(gate)
	if err := r.Wait(); err == nil {
		t.Fatal("rebuild with 1-byte budget succeeded; want failure")
	}
	if d.Generation() != 1 {
		t.Fatalf("generation = %d after failed rebuild, want 1", d.Generation())
	}
	d.mu.RLock()
	_, phantom := d.pending[[2]int{0, 1}]
	_, restored := d.pending[[2]int{id, 0}]
	d.mu.RUnlock()
	if phantom {
		t.Fatal("no-op buffered mid-rebuild survived the failure re-normalization")
	}
	if !restored {
		t.Fatal("real op consumed by the failed rebuild was not restored")
	}
	// One real edge op plus one unflushed node.
	if got := d.Pending(); got != 2 {
		t.Fatalf("Pending() = %d after failed rebuild, want 2", got)
	}
	// Recovery: lift the budget and flush for real.
	d.opts = d.opts[:len(d.opts)-1]
	d.testRebuildGate = nil
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Query(id); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicDeltaRebuildModes runs the incremental path end to end through
// Dynamic: edge deletions (whose sources are by construction inside the
// reused ordering) flush via a delta mode and answer identically to a fresh
// engine; a structural change falls back to the full pipeline.
func TestDynamicDeltaRebuildModes(t *testing.T) {
	g := RMAT(7, 5, 3)
	d, err := NewDynamic(g, WithTolerance(1e-10))
	if err != nil {
		t.Fatal(err)
	}
	// Delete three edges whose sources keep at least one out-edge.
	removed := make(map[[2]int]bool)
	for _, e := range g.Edges() {
		if len(removed) == 3 {
			break
		}
		if g.OutDegree(e.Src) >= 2 && !removed[[2]int{e.Src, e.Dst}] {
			removed[[2]int{e.Src, e.Dst}] = true
			if err := d.RemoveEdge(e.Src, e.Dst); err != nil {
				t.Fatal(err)
			}
		}
	}
	if d.Pending() != len(removed) {
		t.Fatalf("Pending() = %d, want %d", d.Pending(), len(removed))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	st := d.LastRebuild().Status()
	if st.Mode != RebuildModeDeltaSpoke && st.Mode != RebuildModeDeltaHub {
		t.Fatalf("deletion flush mode = %q, want a delta mode", st.Mode)
	}
	if st.Applied != len(removed) || st.Generation != 2 {
		t.Fatalf("status = %+v, want %d applied at generation 2", st, len(removed))
	}

	// The delta-built index must answer like a from-scratch engine.
	var kept []Edge
	for _, e := range g.Edges() {
		if !removed[[2]int{e.Src, e.Dst}] {
			kept = append(kept, e)
		}
	}
	gNew, err := NewGraph(g.N(), kept)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(gNew, WithTolerance(1e-10))
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int{0, 1, g.N() / 2} {
		got, err := d.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		if dist := vec.Dist2(got, want); dist > 1e-7 {
			t.Fatalf("seed %d: delta-flushed index off by %v", seed, dist)
		}
	}
	if d.Engine().Corrected() && d.Engine().Drift() <= 0 {
		t.Fatal("corrected engine must report positive drift")
	}

	// Re-inserting the same edges rides the delta path too (the entries
	// lived inside the current ordering's blocks before).
	for e := range removed {
		if err := d.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	st = d.LastRebuild().Status()
	if st.Mode != RebuildModeDeltaSpoke && st.Mode != RebuildModeDeltaHub {
		t.Fatalf("re-insertion flush mode = %q, want a delta mode", st.Mode)
	}

	// A new node with an out-edge cannot reuse the ordering: full pipeline.
	id := d.AddNode()
	if err := d.AddEdge(id, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if st = d.LastRebuild().Status(); st.Mode != RebuildModeFull {
		t.Fatalf("structural flush mode = %q, want full", st.Mode)
	}
	if d.Generation() != 4 {
		t.Fatalf("generation = %d, want 4", d.Generation())
	}
}
