// Community detection: find the local community around a seed node with a
// conductance sweep over the RWR ranking (the Andersen–Chung–Lang pattern
// the paper cites for RWR-based community detection). The graph is a
// planted-partition network, so the recovered community can be checked
// against the ground truth.
//
//	go run ./examples/community
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"bepi"
)

const (
	groups    = 4
	groupSize = 100
	pIn       = 0.10 // edge probability inside a group
	pOut      = 0.002
	seedNode  = 5 // belongs to group 0
)

func main() {
	g, err := planted(groups, groupSize, pIn, pOut, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted-partition graph: %d nodes in %d groups, %d edges\n",
		g.N(), groups, g.M())

	eng, err := bepi.New(g)
	if err != nil {
		log.Fatal(err)
	}
	scores, err := eng.Query(seedNode)
	if err != nil {
		log.Fatal(err)
	}

	// Degree-normalized sweep: order nodes by score/degree and cut where
	// conductance is minimal.
	type cand struct {
		node int
		val  float64
	}
	var order []cand
	for u := 0; u < g.N(); u++ {
		d := g.OutDegree(u)
		if d == 0 || scores[u] <= 0 {
			continue
		}
		order = append(order, cand{u, scores[u] / float64(d)})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].val > order[j].val })

	totalVol := 0
	for u := 0; u < g.N(); u++ {
		totalVol += g.OutDegree(u)
	}
	inSet := make([]bool, g.N())
	vol, cut := 0, 0
	bestPhi, bestSize := 2.0, 0
	for i, c := range order {
		u := c.node
		inSet[u] = true
		vol += g.OutDegree(u)
		for _, v := range g.OutNeighbors(u) {
			if inSet[v] {
				cut-- // this edge is now internal
			} else {
				cut++
			}
		}
		if vol == 0 || vol == totalVol {
			continue
		}
		denom := vol
		if totalVol-vol < denom {
			denom = totalVol - vol
		}
		phi := float64(cut) / float64(denom)
		if i >= 4 && phi < bestPhi { // require a non-trivial set
			bestPhi, bestSize = phi, i+1
		}
	}

	community := map[int]bool{}
	for _, c := range order[:bestSize] {
		community[c.node] = true
	}
	correct := 0
	for u := range community {
		if u/groupSize == seedNode/groupSize {
			correct++
		}
	}
	fmt.Printf("sweep cut: community of %d nodes with conductance %.3f\n", bestSize, bestPhi)
	fmt.Printf("precision vs planted group: %.1f%% (%d/%d in the seed's group of %d)\n",
		100*float64(correct)/float64(bestSize), correct, bestSize, groupSize)
}

// planted builds a directed planted-partition graph (edges added both ways).
func planted(groups, size int, pIn, pOut float64, seed int64) (*bepi.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	n := groups * size
	var edges []bepi.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if u/size == v/size {
				p = pIn
			}
			if rng.Float64() < p {
				edges = append(edges, bepi.Edge{Src: u, Dst: v}, bepi.Edge{Src: v, Dst: u})
			}
		}
	}
	return bepi.NewGraph(n, edges)
}
