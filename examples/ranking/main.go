// Ranking: build one BePI index over a synthetic social network and serve
// many personalized-ranking queries from it — the workload that motivates
// preprocessing methods (one preprocessing, many fast queries). Also
// demonstrates persisting the index and reloading it.
//
//	go run ./examples/ranking
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"bepi"
)

func main() {
	// A power-law "social network": 16,384 users, ~100k follow edges.
	g := bepi.RMAT(14, 8, 42)
	fmt.Printf("social network: %d users, %d follow edges\n", g.N(), g.M())

	start := time.Now()
	eng, err := bepi.New(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocessed once in %s (index: %d bytes)\n\n",
		time.Since(start).Round(time.Millisecond), eng.MemoryBytes())

	// Serve a batch of ranking queries for active users (a deadend user has
	// no out-links, so their random surfer never leaves the restart node).
	var users []int
	for u := 1; u < g.N() && len(users) < 5; u += g.N() / 7 {
		for v := u; v < g.N(); v++ {
			if g.OutDegree(v) > 0 {
				users = append(users, v)
				break
			}
		}
	}
	var total time.Duration
	for _, u := range users {
		top, err := eng.TopK(u, 5)
		if err != nil {
			log.Fatal(err)
		}
		_, st, err := eng.QueryWithStats(u)
		if err != nil {
			log.Fatal(err)
		}
		total += st.Duration
		fmt.Printf("user %5d (query %8s, %2d GMRES iters): ",
			u, st.Duration.Round(time.Microsecond), st.Iterations)
		for i, r := range top {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%d (%.5f)", r.Node, r.Score)
		}
		fmt.Println()
	}
	fmt.Printf("\n%d queries in %s total — preprocessing cost amortizes away\n",
		len(users), total.Round(time.Microsecond))

	// Multi-seed personalization: rank for a *group* of users at once.
	q := make([]float64, g.N())
	for _, u := range users {
		q[u] = 1.0 / float64(len(users))
	}
	group, err := eng.Personalized(q)
	if err != nil {
		log.Fatal(err)
	}
	best, bestScore := -1, 0.0
	seedSet := map[int]bool{}
	for _, u := range users {
		seedSet[u] = true
	}
	for node, s := range group {
		if !seedSet[node] && s > bestScore {
			best, bestScore = node, s
		}
	}
	fmt.Printf("best group recommendation for %v: node %d (%.6f)\n", users, best, bestScore)

	// Persist the index and reload it — preprocessing never runs twice.
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		log.Fatal(err)
	}
	reloaded, err := bepi.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	r1, _ := eng.Query(users[0])
	r2, _ := reloaded.Query(users[0])
	same := true
	for i := range r1 {
		if r1[i] != r2[i] {
			same = false
			break
		}
	}
	fmt.Printf("reloaded index answers identically: %v\n", same)
}
