// Link prediction: hide a fraction of a graph's edges, rank candidate
// endpoints by RWR score, and measure how often a hidden edge appears in
// the top-k — one of the RWR applications (Backstrom & Leskovec) the
// paper's introduction motivates. A random ranker is the control.
//
//	go run ./examples/linkpred
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bepi"
)

const (
	holdoutPerNode = 1    // hidden out-edges per evaluated node
	topK           = 20   // a hit = hidden endpoint ranked in the top-k
	evalNodes      = 150  // how many nodes to evaluate
	seed           = 2027 // rng seed
)

func main() {
	full := bepi.RMAT(12, 10, 7)
	fmt.Printf("graph: %d nodes, %d edges\n", full.N(), full.M())
	rng := rand.New(rand.NewSource(seed))

	// Hold out one out-edge from each evaluated node (only nodes with
	// enough neighbors, so the train graph keeps them connected).
	edges := full.Edges()
	type hidden struct{ src, dst int }
	var tests []hidden
	hiddenSet := map[hidden]bool{}
	perm := rng.Perm(full.N())
	for _, u := range perm {
		if len(tests) >= evalNodes {
			break
		}
		nbrs := full.OutNeighbors(u)
		if len(nbrs) < 3 {
			continue
		}
		v := nbrs[rng.Intn(len(nbrs))]
		if u == v {
			continue
		}
		h := hidden{u, v}
		if !hiddenSet[h] {
			hiddenSet[h] = true
			tests = append(tests, h)
		}
	}
	var trainEdges []bepi.Edge
	for _, e := range edges {
		if !hiddenSet[hidden{e.Src, e.Dst}] {
			trainEdges = append(trainEdges, e)
		}
	}
	train, err := bepi.NewGraph(full.N(), trainEdges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held out %d edges; training on %d\n\n", len(tests), train.M())

	eng, err := bepi.New(train)
	if err != nil {
		log.Fatal(err)
	}

	rwrHits, randHits := 0, 0
	for _, h := range tests {
		scores, err := eng.Query(h.src)
		if err != nil {
			log.Fatal(err)
		}
		// Candidates: every node that is not already a neighbor.
		cand := scores[:len(scores):len(scores)]
		hit := false
		rank := 0
		for node, s := range cand {
			if node == h.src || train.HasEdge(h.src, node) {
				continue
			}
			if node == h.dst {
				continue
			}
			if s > scores[h.dst] {
				rank++
				if rank >= topK {
					break
				}
			}
		}
		if rank < topK {
			hit = true
		}
		if hit {
			rwrHits++
		}
		// Random control: top-k out of all non-neighbors.
		nonNbrs := full.N() - train.OutDegree(h.src) - 1
		if nonNbrs > 0 && rng.Float64() < float64(topK)/float64(nonNbrs) {
			randHits++
		}
	}

	fmt.Printf("hits@%d over %d held-out edges:\n", topK, len(tests))
	fmt.Printf("  RWR ranking:    %3d (%.1f%%)\n", rwrHits, 100*float64(rwrHits)/float64(len(tests)))
	fmt.Printf("  random ranking: %3d (%.1f%%)\n", randHits, 100*float64(randHits)/float64(len(tests)))
	if rwrHits > randHits {
		fmt.Println("\nRWR recovers hidden links far better than chance — the paper's link-prediction use case.")
	}
}
