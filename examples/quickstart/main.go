// Quickstart: compute RWR scores on the paper's Figure 2 example graph and
// print the personalized ranking for node u1, reproducing the table in the
// figure.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bepi"
)

func main() {
	// The 8-node graph of Figure 2 (u1 = node 0). Edges are undirected in
	// the figure, so both directions are added.
	undirected := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, // u1–u2, u1–u3, u1–u4, u1–u5
		{1, 5}, {1, 6}, // u2–u6, u2–u7
		{3, 7}, {4, 7}, // u4–u8, u5–u8
	}
	var edges []bepi.Edge
	for _, e := range undirected {
		edges = append(edges, bepi.Edge{Src: e[0], Dst: e[1]}, bepi.Edge{Src: e[1], Dst: e[0]})
	}
	g, err := bepi.NewGraph(8, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Preprocess once; the engine then answers queries for any seed.
	eng, err := bepi.New(g, bepi.WithRestartProb(0.05))
	if err != nil {
		log.Fatal(err)
	}

	// RWR scores with respect to u1.
	scores, err := eng.Query(0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("RWR scores w.r.t. u1 (Figure 2 of the BePI paper):")
	fmt.Println("node  score   rank")
	ranked, err := eng.TopK(0, 7)
	if err != nil {
		log.Fatal(err)
	}
	rankOf := map[int]int{0: 1}
	for i, r := range ranked {
		rankOf[r.Node] = i + 2 // the seed itself ranks first
	}
	for u := 0; u < 8; u++ {
		fmt.Printf("u%-4d %.3f   %d\n", u+1, scores[u], rankOf[u])
	}

	// u8 is recommended to u1 over u6: it is reachable through both u4 and
	// u5, exactly the effect the paper highlights.
	fmt.Printf("\nrecommend u8 over u6 for u1: %v (u8=%.3f, u6=%.3f)\n",
		scores[7] > scores[5], scores[7], scores[5])
}
