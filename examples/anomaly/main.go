// Anomaly detection: score how surprising each of a node's links is by RWR
// proximity (Sun et al.'s neighborhood-formation idea, cited in the paper's
// §5). A planted "random cross-link" in an otherwise community-structured
// graph should surface with the highest anomaly score.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"bepi"
	"bepi/apps"
)

const (
	groups    = 6
	groupSize = 40
	pIn       = 0.25
	seed      = 13
)

func main() {
	rng := rand.New(rand.NewSource(seed))
	n := groups * groupSize
	var edges []bepi.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if u/groupSize == v/groupSize && rng.Float64() < pIn {
				edges = append(edges, bepi.Edge{Src: u, Dst: v}, bepi.Edge{Src: v, Dst: u})
			}
		}
	}
	// Plant one cross-community link for node 0 (group 0 → group 3).
	intruder := 3*groupSize + 7
	edges = append(edges, bepi.Edge{Src: 0, Dst: intruder}, bepi.Edge{Src: intruder, Dst: 0})

	g, err := bepi.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := bepi.New(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community graph: %d nodes, %d edges, one planted cross-link 0→%d\n\n",
		g.N(), g.M(), intruder)

	type scored struct {
		dst   int
		score float64
	}
	var results []scored
	for _, v := range g.OutNeighbors(0) {
		a, err := apps.EdgeAnomaly(eng, g, 0, v)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, scored{v, a})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].score > results[j].score })

	fmt.Println("anomaly scores for node 0's links (most anomalous first):")
	for i, r := range results {
		marker := ""
		if r.dst == intruder {
			marker = "   <-- planted cross-community link"
		}
		fmt.Printf("%2d. 0 -> %-4d anomaly %.3f%s\n", i+1, r.dst, r.score, marker)
		if i >= 7 && r.dst != intruder {
			fmt.Printf("    ... (%d more)\n", len(results)-i-1)
			break
		}
	}
	if results[0].dst == intruder {
		fmt.Println("\nthe planted link is the most anomalous — RWR proximity exposes it.")
	}
}
