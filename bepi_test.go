package bepi

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"bepi/internal/core"
	"bepi/internal/vec"
)

func ringGraph(t *testing.T, n int) *Graph {
	t.Helper()
	edges := make([]Edge, 0, 2*n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{i, (i + 1) % n}, Edge{(i + 1) % n, i})
	}
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(2, []Edge{{0, 5}}); err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
	g, err := NewGraph(3, []Edge{{0, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 1 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
}

func TestReadGraphAndWriteEdgeList(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("0 1\n1 2\n# x\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.M() != g.M() {
		t.Fatal("round trip changed edges")
	}
}

func TestEngineQueryMatchesExact(t *testing.T) {
	g := RMAT(8, 6, 99)
	eng, err := New(g, WithTolerance(1e-11))
	if err != nil {
		t.Fatal(err)
	}
	seed := 5
	got, err := eng.Query(seed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ExactDense(g.Internal(), core.DefaultC, seed)
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.Dist2(got, want); d > 1e-7 {
		t.Fatalf("distance to exact %v", d)
	}
}

func TestOptionsPlumbing(t *testing.T) {
	g := ringGraph(t, 50)
	eng, err := New(g,
		WithRestartProb(0.15),
		WithVariant(BePIS),
		WithHubRatio(0.3),
		WithMaxIterations(500),
		WithTolerance(1e-10),
	)
	if err != nil {
		t.Fatal(err)
	}
	opts := eng.Internal().Options()
	if opts.C != 0.15 || opts.Variant != BePIS || opts.HubRatio != 0.3 ||
		opts.MaxIter != 500 || opts.Tol != 1e-10 {
		t.Fatalf("options lost: %+v", opts)
	}
}

func TestBudgetOptions(t *testing.T) {
	g := RMAT(9, 6, 3)
	if _, err := New(g, WithMemoryBudget(128)); err == nil {
		t.Fatal("expected memory budget error")
	}
	if _, err := New(g, WithDeadline(time.Nanosecond)); err == nil {
		t.Fatal("expected deadline error")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("expected error for nil graph")
	}
}

func TestPersonalizedLinearity(t *testing.T) {
	g := RMAT(7, 5, 17)
	eng, err := New(g, WithTolerance(1e-11))
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, g.N())
	q[1], q[2] = 0.25, 0.75
	got, err := eng.Personalized(q)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := eng.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Query(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := 0.25*r1[i] + 0.75*r2[i]
		if math.Abs(got[i]-want) > 1e-8 {
			t.Fatalf("Personalized[%d] = %v want %v", i, got[i], want)
		}
	}
}

func TestTopKAndStats(t *testing.T) {
	g := ringGraph(t, 30)
	eng, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	top, err := eng.TopK(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 4 {
		t.Fatalf("len = %d", len(top))
	}
	// On a symmetric ring, the seed's two neighbors tie for first.
	if !(top[0].Node == 1 || top[0].Node == 29) {
		t.Fatalf("top = %+v", top)
	}
	_, st, err := eng.QueryWithStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Duration <= 0 {
		t.Fatal("missing duration")
	}
	if eng.MemoryBytes() <= 0 || eng.PreprocessTime() <= 0 {
		t.Fatal("missing accounting")
	}
}

func TestSaveLoad(t *testing.T) {
	g := RMAT(8, 5, 4)
	eng, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != eng.N() {
		t.Fatal("node count lost")
	}
	want, err := eng.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.Dist2(got, want); d > 1e-12 {
		t.Fatalf("reloaded engine differs by %v", d)
	}
}

func TestConcurrentQueries(t *testing.T) {
	g := RMAT(9, 6, 5)
	eng, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			got, err := eng.Query(1)
			if err == nil && vec.Dist2(got, want) > 1e-12 {
				err = errDiffer
			}
			errs <- err
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errDiffer = errStr("concurrent query differs")

type errStr string

func (e errStr) Error() string { return string(e) }
