package bepi_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"bepi"
	"bepi/apps"
	"bepi/internal/core"
	"bepi/internal/server"
	"bepi/internal/vec"
)

// TestEndToEndPipeline chains the whole system the way a deployment would:
// generate a graph, preprocess, persist, reload, serve over HTTP, run an
// application on top, mutate the graph through the dynamic wrapper — and
// checks every stage against the same exact ground truth.
func TestEndToEndPipeline(t *testing.T) {
	g := bepi.RMAT(9, 6, 31)
	seed := -1
	for u := 0; u < g.N(); u++ {
		if g.OutDegree(u) > 1 {
			seed = u
			break
		}
	}
	if seed < 0 {
		t.Fatal("no connected seed")
	}

	// 1. Preprocess and query.
	eng, err := bepi.New(g, bepi.WithTolerance(1e-11))
	if err != nil {
		t.Fatal(err)
	}
	scores, err := eng.Query(seed)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Exact ground truth.
	exact, err := core.ExactDense(g.Internal(), core.DefaultC, seed)
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.Dist2(scores, exact); d > 1e-7 {
		t.Fatalf("engine vs exact: %v", d)
	}

	// 3. Persist and reload; answers must be bit-identical.
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := bepi.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := reloaded.Query(seed)
	if err != nil {
		t.Fatal(err)
	}
	if vec.Dist2(scores, r2) != 0 {
		t.Fatal("reloaded index differs")
	}

	// 4. Serve the reloaded index over HTTP and compare scores.
	srv := httptest.NewServer(server.New(reloaded))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?seed=" + strconv.Itoa(seed) + "&full=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Scores []float64 `json:"scores"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if d := vec.Dist2(payload.Scores, scores); d != 0 {
		t.Fatalf("HTTP scores differ by %v", d)
	}

	// 5. Application layer: recommendations exclude known neighbors.
	rec, err := apps.NewRecommender(eng, g)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := rec.Recommend(seed, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if g.HasEdge(seed, r.Node) || r.Node == seed {
			t.Fatal("bad recommendation")
		}
	}

	// 6. Dynamic wrapper: adding the top recommendation as a real edge and
	// flushing must change the seed's scores.
	dyn, err := bepi.NewDynamic(g, bepi.WithTolerance(1e-11))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) > 0 {
		if err := dyn.AddEdge(seed, recs[0].Node); err != nil {
			t.Fatal(err)
		}
		if err := dyn.Flush(); err != nil {
			t.Fatal(err)
		}
		after, err := dyn.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		if vec.Dist2(after, scores) == 0 {
			t.Fatal("flush did not affect scores")
		}
	}
}
