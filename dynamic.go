package bepi

import (
	"fmt"
	"sync"
	"time"
)

// Dynamic maintains an RWR index over a graph that receives edge updates.
// It implements the batch-update strategy the paper describes for dynamic
// graphs (§5): updates accumulate in a buffer while queries are served from
// the current index; Flush folds the buffered updates into the graph and
// re-runs BePI's (fast) preprocessing. BePI's preprocessing speed is what
// makes this strategy practical — rebuilding is the operation Figure 1(a)
// shows it winning by orders of magnitude.
//
// Rebuilds run in the background: Flush (or StartFlush) snapshots the edge
// set under a short lock, runs graph construction and BePI preprocessing
// with no lock held, then atomically swaps the new engine in and bumps the
// index generation. Queries therefore keep completing throughout a rebuild
// — the only serialization they ever see is the pointer swap — and updates
// arriving mid-rebuild stay buffered for the next one. At most one rebuild
// is in flight at a time; a Flush during a rebuild joins it.
//
// Dynamic is safe for concurrent use.
type Dynamic struct {
	mu      sync.RWMutex
	opts    []Option
	n       int
	edges   map[[2]int]bool // the edge set of the serving index
	pending map[[2]int]bool // true = insert, false = delete
	engine    *Engine
	gen       uint64 // index generation; starts at 1, bumped per swap
	onSwap    func(eng *Engine, gen uint64, rebuild time.Duration)
	onRebuild func(id, gen uint64, rebuild time.Duration, err error)

	rebuild *Rebuild            // in-flight rebuild, nil when idle
	history map[uint64]*Rebuild // recent rebuilds by id, for status polling
	order   []uint64            // history ids oldest-first, for bounding
	nextID  uint64
}

// historyCap bounds how many finished rebuilds RebuildStatus can still see.
const historyCap = 64

// NewDynamic builds the initial index for g. The options apply to every
// rebuild.
func NewDynamic(g *Graph, opts ...Option) (*Dynamic, error) {
	eng, err := New(g, opts...)
	if err != nil {
		return nil, err
	}
	d := &Dynamic{
		opts:    opts,
		n:       g.N(),
		edges:   make(map[[2]int]bool, g.M()),
		pending: make(map[[2]int]bool),
		engine:  eng,
		gen:     1,
		history: make(map[uint64]*Rebuild),
		nextID:  1,
	}
	for _, e := range g.Edges() {
		d.edges[[2]int{e.Src, e.Dst}] = true
	}
	return d, nil
}

// N returns the current number of nodes (including nodes added since the
// last flush; those are visible to queries only after Flush).
func (d *Dynamic) N() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.n
}

// Generation returns the serving index's generation: 1 for the initial
// build, bumped by every successful rebuild swap. A failed or no-op Flush
// leaves it unchanged.
func (d *Dynamic) Generation() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.gen
}

// Engine returns the engine currently serving queries. The engine is
// immutable; after a Flush a new one replaces it, so callers that must
// follow swaps should use OnSwap (or query through Dynamic).
func (d *Dynamic) Engine() *Engine {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.engine
}

// OnSwap registers f to be called after every successful rebuild swap with
// the new engine, the new generation, and how long the rebuild took. It is
// how a serving layer keeps its executor and caches in step with the index
// (e.g. qexec.Executor.SwapEngine). f runs with Dynamic's lock held: keep
// it short and do not call back into Dynamic from it.
func (d *Dynamic) OnSwap(f func(eng *Engine, gen uint64, rebuild time.Duration)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onSwap = f
}

// OnRebuild registers f to be called when a background rebuild completes,
// successfully or not: the rebuild id, the generation now serving (bumped
// on success, unchanged on failure), the rebuild wall time, and the error
// (nil on success). Unlike OnSwap it fires on failures too, so an
// observability layer can record rebuild_fail events for rebuilds that
// never swapped. Same constraints as OnSwap: f runs with Dynamic's lock
// held — keep it short and do not call back into Dynamic.
func (d *Dynamic) OnRebuild(f func(id, gen uint64, rebuild time.Duration, err error)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onRebuild = f
}

// AddNode grows the node set by one and returns the new node's id.
// The node becomes queryable after the next Flush.
func (d *Dynamic) AddNode() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.n
	d.n++
	return id
}

// AddEdge buffers the insertion of edge (src, dst).
func (d *Dynamic) AddEdge(src, dst int) error {
	return d.buffer(src, dst, true)
}

// RemoveEdge buffers the deletion of edge (src, dst).
func (d *Dynamic) RemoveEdge(src, dst int) error {
	return d.buffer(src, dst, false)
}

// buffer records one edge update. No-ops are canceled at buffer time:
// inserting an edge the index already has (or deleting an absent one)
// leaves the buffer untouched — and cancels any opposite pending op — so
// Pending and the flush trigger reflect real work only. While a rebuild is
// in flight the no-op check is skipped (the effective base set is the
// rebuild's snapshot, not d.edges); the buffer is re-normalized when the
// rebuild settles.
func (d *Dynamic) buffer(src, dst int, insert bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if src < 0 || src >= d.n || dst < 0 || dst >= d.n {
		return fmt.Errorf("bepi: edge (%d,%d) out of range n=%d", src, dst, d.n)
	}
	key := [2]int{src, dst}
	if d.rebuild == nil && d.edges[key] == insert {
		delete(d.pending, key)
		return nil
	}
	d.pending[key] = insert
	return nil
}

// Pending returns the number of buffered updates not yet reflected in the
// index. No-op updates (inserting an existing edge, deleting an absent
// one) are canceled as they arrive, so a non-zero Pending means a Flush
// has real work to do.
func (d *Dynamic) Pending() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pending)
}

// Rebuild is a handle on one background rebuild started by StartFlush.
// Its result fields are published before Done's channel closes and must
// only be read after it.
type Rebuild struct {
	id    uint64
	start time.Time
	done  chan struct{}

	// Written once by the rebuild goroutine before close(done).
	err     error
	gen     uint64
	noop    bool
	applied int
	dur     time.Duration
}

// ID identifies the rebuild for status polling (Dynamic.RebuildStatus).
func (r *Rebuild) ID() uint64 { return r.id }

// Done is closed when the rebuild has settled (swapped, failed, or no-op).
func (r *Rebuild) Done() <-chan struct{} { return r.done }

// Wait blocks until the rebuild settles and returns its error.
func (r *Rebuild) Wait() error {
	<-r.done
	return r.err
}

// RebuildState is the lifecycle phase of a rebuild.
type RebuildState string

// Rebuild states.
const (
	RebuildRunning RebuildState = "running"
	RebuildDone    RebuildState = "done"
	RebuildFailed  RebuildState = "failed"
)

// RebuildStatus is a point-in-time snapshot of one rebuild.
type RebuildStatus struct {
	ID    uint64
	State RebuildState
	// NoOp means the flush had no buffered work and completed without
	// rebuilding (the engine and generation are unchanged).
	NoOp bool
	// Applied is the number of buffered updates folded into the rebuild.
	Applied int
	// Generation is the index generation after the rebuild (the previous
	// generation for failed or no-op rebuilds); zero while running.
	Generation uint64
	// Duration is the rebuild wall time so far (final once settled).
	Duration time.Duration
	// Err is the failure, nil while running or on success.
	Err error
}

// Status snapshots the rebuild without blocking.
func (r *Rebuild) Status() RebuildStatus {
	select {
	case <-r.done:
	default:
		return RebuildStatus{
			ID:       r.id,
			State:    RebuildRunning,
			Duration: time.Since(r.start),
		}
	}
	st := RebuildStatus{
		ID:         r.id,
		State:      RebuildDone,
		NoOp:       r.noop,
		Applied:    r.applied,
		Generation: r.gen,
		Duration:   r.dur,
		Err:        r.err,
	}
	if r.err != nil {
		st.State = RebuildFailed
	}
	return st
}

// RebuildStatus looks up a rebuild by id: the in-flight one or any of the
// recent finished ones (a bounded history is retained).
func (d *Dynamic) RebuildStatus(id uint64) (RebuildStatus, bool) {
	d.mu.RLock()
	r, ok := d.history[id]
	d.mu.RUnlock()
	if !ok {
		return RebuildStatus{}, false
	}
	return r.Status(), true
}

// LastRebuild returns the most recently started rebuild (which may still
// be running), or nil if none was ever started.
func (d *Dynamic) LastRebuild() *Rebuild {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.order) == 0 {
		return nil
	}
	return d.history[d.order[len(d.order)-1]]
}

// Flush applies all buffered updates and rebuilds the index, blocking
// until the new engine serves (it is StartFlush + Wait). Queries keep
// completing against the old index for the whole rebuild. On error the
// previous index keeps serving and the buffer is preserved. If a rebuild
// is already in flight, Flush waits for that one instead of starting
// another; updates buffered after its snapshot need a second Flush.
func (d *Dynamic) Flush() error {
	return d.StartFlush().Wait()
}

// StartFlush begins a background rebuild and returns its handle without
// waiting. If a rebuild is already in flight its handle is returned
// (rebuilds never stack; mid-rebuild updates stay buffered for the next
// one). If there is nothing to do — no real buffered updates and no new
// nodes — the returned handle is already settled as a no-op and the
// engine generation is unchanged.
func (d *Dynamic) StartFlush() *Rebuild {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.rebuild != nil {
		return d.rebuild
	}
	r := &Rebuild{id: d.nextID, start: time.Now(), done: make(chan struct{})}
	d.nextID++
	d.record(r)
	if len(d.pending) == 0 && d.engine != nil && d.engine.N() == d.n {
		r.noop = true
		r.gen = d.gen
		close(r.done)
		return r
	}
	// Snapshot under the lock: the merged edge set the rebuild will
	// preprocess, and the buffer it consumes (restored on failure).
	next := make(map[[2]int]bool, len(d.edges)+len(d.pending))
	for e := range d.edges {
		next[e] = true
	}
	for e, insert := range d.pending {
		if insert {
			next[e] = true
		} else {
			delete(next, e)
		}
	}
	snap := d.pending
	d.pending = make(map[[2]int]bool)
	r.applied = len(snap)
	d.rebuild = r
	go d.runRebuild(r, d.n, next, snap)
	return r
}

// record adds a rebuild to the bounded status history.
func (d *Dynamic) record(r *Rebuild) {
	d.history[r.id] = r
	d.order = append(d.order, r.id)
	for len(d.order) > historyCap {
		delete(d.history, d.order[0])
		d.order = d.order[1:]
	}
}

// runRebuild is the background rebuild: all the expensive work — graph
// construction and full BePI preprocessing — happens here with no lock
// held, so queries and updates proceed freely. Only the final swap (or the
// failure bookkeeping) re-acquires the lock, briefly.
func (d *Dynamic) runRebuild(r *Rebuild, n int, next map[[2]int]bool, snap map[[2]int]bool) {
	edges := make([]Edge, 0, len(next))
	for e := range next {
		edges = append(edges, Edge{Src: e[0], Dst: e[1]})
	}
	g, err := NewGraph(n, edges)
	var eng *Engine
	if err == nil {
		eng, err = New(g, d.opts...)
	}
	if err != nil {
		err = fmt.Errorf("bepi: rebuilding dynamic index: %w", err)
	}

	d.mu.Lock()
	d.rebuild = nil
	r.dur = time.Since(r.start)
	if err != nil {
		// The old index keeps serving. Restore the consumed buffer without
		// clobbering ops that arrived mid-rebuild (newer ops win per edge).
		for e, insert := range snap {
			if _, ok := d.pending[e]; !ok {
				d.pending[e] = insert
			}
		}
		r.err = err
		r.gen = d.gen
	} else {
		d.edges = next
		d.engine = eng
		d.gen++
		r.gen = d.gen
	}
	// Re-normalize ops buffered while the rebuild ran: anything that is a
	// no-op against the (possibly new) base set is canceled, restoring the
	// invariant that pending holds real work only.
	for e, insert := range d.pending {
		if d.edges[e] == insert {
			delete(d.pending, e)
		}
	}
	if err == nil && d.onSwap != nil {
		d.onSwap(eng, d.gen, r.dur)
	}
	if d.onRebuild != nil {
		d.onRebuild(r.id, d.gen, r.dur, err)
	}
	d.mu.Unlock()
	close(r.done)
}

// Query answers from the most recently flushed index; buffered updates are
// not yet visible (the paper's batch-update semantics). During a rebuild
// the previous index keeps answering — queries never wait for
// preprocessing, only for the atomic engine swap.
func (d *Dynamic) Query(seed int) ([]float64, error) {
	d.mu.RLock()
	eng := d.engine
	d.mu.RUnlock()
	return eng.Query(seed)
}

// TopK answers from the most recently flushed index.
func (d *Dynamic) TopK(seed, k int) ([]Ranked, error) {
	d.mu.RLock()
	eng := d.engine
	d.mu.RUnlock()
	return eng.TopK(seed, k)
}
