package bepi

import (
	"fmt"
	"sync"
)

// Dynamic maintains an RWR index over a graph that receives edge updates.
// It implements the batch-update strategy the paper describes for dynamic
// graphs (§5): updates accumulate in a buffer while queries are served from
// the current index; Flush folds the buffered updates into the graph and
// re-runs BePI's (fast) preprocessing. BePI's preprocessing speed is what
// makes this strategy practical — rebuilding is the operation Figure 1(a)
// shows it winning by orders of magnitude.
//
// Dynamic is safe for concurrent use; queries proceed concurrently while
// updates buffer, and Flush swaps the index atomically.
type Dynamic struct {
	mu      sync.RWMutex
	opts    []Option
	n       int
	edges   map[[2]int]bool
	pending map[[2]int]bool // true = insert, false = delete
	engine  *Engine
}

// NewDynamic builds the initial index for g. The options apply to every
// rebuild.
func NewDynamic(g *Graph, opts ...Option) (*Dynamic, error) {
	eng, err := New(g, opts...)
	if err != nil {
		return nil, err
	}
	d := &Dynamic{
		opts:    opts,
		n:       g.N(),
		edges:   make(map[[2]int]bool, g.M()),
		pending: make(map[[2]int]bool),
		engine:  eng,
	}
	for _, e := range g.Edges() {
		d.edges[[2]int{e.Src, e.Dst}] = true
	}
	return d, nil
}

// N returns the current number of nodes (including nodes added since the
// last flush; those are visible to queries only after Flush).
func (d *Dynamic) N() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.n
}

// AddNode grows the node set by one and returns the new node's id.
// The node becomes queryable after the next Flush.
func (d *Dynamic) AddNode() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.n
	d.n++
	return id
}

// AddEdge buffers the insertion of edge (src, dst).
func (d *Dynamic) AddEdge(src, dst int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if src < 0 || src >= d.n || dst < 0 || dst >= d.n {
		return fmt.Errorf("bepi: edge (%d,%d) out of range n=%d", src, dst, d.n)
	}
	d.pending[[2]int{src, dst}] = true
	return nil
}

// RemoveEdge buffers the deletion of edge (src, dst).
func (d *Dynamic) RemoveEdge(src, dst int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if src < 0 || src >= d.n || dst < 0 || dst >= d.n {
		return fmt.Errorf("bepi: edge (%d,%d) out of range n=%d", src, dst, d.n)
	}
	d.pending[[2]int{src, dst}] = false
	return nil
}

// Pending returns the number of buffered updates not yet reflected in the
// index.
func (d *Dynamic) Pending() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pending)
}

// Flush applies all buffered updates and rebuilds the index. On error the
// previous index keeps serving and the buffer is preserved.
func (d *Dynamic) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.pending) == 0 && d.engine != nil && d.engine.N() == d.n {
		return nil
	}
	next := make(map[[2]int]bool, len(d.edges)+len(d.pending))
	for e := range d.edges {
		next[e] = true
	}
	for e, insert := range d.pending {
		if insert {
			next[e] = true
		} else {
			delete(next, e)
		}
	}
	edges := make([]Edge, 0, len(next))
	for e := range next {
		edges = append(edges, Edge{Src: e[0], Dst: e[1]})
	}
	g, err := NewGraph(d.n, edges)
	if err != nil {
		return err
	}
	eng, err := New(g, d.opts...)
	if err != nil {
		return fmt.Errorf("bepi: rebuilding dynamic index: %w", err)
	}
	d.edges = next
	d.pending = make(map[[2]int]bool)
	d.engine = eng
	return nil
}

// Query answers from the most recently flushed index; buffered updates are
// not yet visible (the paper's batch-update semantics).
func (d *Dynamic) Query(seed int) ([]float64, error) {
	d.mu.RLock()
	eng := d.engine
	d.mu.RUnlock()
	return eng.Query(seed)
}

// TopK answers from the most recently flushed index.
func (d *Dynamic) TopK(seed, k int) ([]Ranked, error) {
	d.mu.RLock()
	eng := d.engine
	d.mu.RUnlock()
	return eng.TopK(seed, k)
}
