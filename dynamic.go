package bepi

import (
	"fmt"
	"sync"
	"time"

	"bepi/internal/core"
	"bepi/internal/graph"
)

// Dynamic maintains an RWR index over a graph that receives edge updates.
// It implements the batch-update strategy the paper describes for dynamic
// graphs (§5): updates accumulate in a buffer while queries are served from
// the current index; Flush folds the buffered updates into the graph and
// rebuilds the index. BePI's preprocessing speed is what makes this
// strategy practical — rebuilding is the operation Figure 1(a) shows it
// winning by orders of magnitude.
//
// A flush first tries an incremental rebuild (core.Engine.ApplyDelta): a
// delta whose sources are all spokes reuses the SlashBurn ordering and hub
// set, patches only the affected rows of the stored blocks, re-factors only
// the touched H11 diagonal blocks, and recomputes only the affected Schur
// columns — bit-identical to a full preprocess under the reused ordering at
// a fraction of the cost. Hub-touching deltas are absorbed as a low-rank
// Woodbury correction on the Schur solve (or an exact patch with a stale
// preconditioner for implicit-operator engines) until the accumulated drift
// crosses WithMaxHubDrift, at which point — like any delta the ordering
// cannot absorb — the flush falls back to the full preprocessing pipeline.
// RebuildStatus.Mode reports which path served each rebuild.
//
// Rebuilds run in the background: Flush (or StartFlush) snapshots the edge
// set under a short lock, runs graph construction and the rebuild with no
// lock held, then atomically swaps the new engine in and bumps the index
// generation. Queries therefore keep completing throughout a rebuild — the
// only serialization they ever see is the pointer swap — and updates
// arriving mid-rebuild stay buffered for the next one. At most one rebuild
// is in flight at a time; a Flush during a rebuild joins it.
//
// Dynamic is safe for concurrent use.
type Dynamic struct {
	mu   sync.RWMutex
	opts []Option
	n    int
	// graph is the edge set of the serving index, kept as the immutable
	// graph itself: rebuilds patch it with WithEdgeDeltas (O(M + changes))
	// instead of re-sorting the whole edge list, and the no-op check in
	// buffer is a binary search instead of a map probe.
	graph     *Graph
	pending   map[[2]int]bool // true = insert, false = delete
	engine    *Engine
	gen       uint64 // index generation; starts at 1, bumped per swap
	onSwap    func(eng *Engine, gen uint64, rebuild time.Duration)
	onRebuild func(id, gen uint64, rebuild time.Duration, mode RebuildMode, err error)

	rebuild *Rebuild            // in-flight rebuild, nil when idle
	history map[uint64]*Rebuild // recent rebuilds by id, for status polling
	order   []uint64            // history ids oldest-first, for bounding
	nextID  uint64

	// testRebuildGate, when non-nil, is received from by the rebuild
	// goroutine after preprocessing and before the settle lock — a test
	// hook to hold a rebuild in the running state deterministically.
	testRebuildGate chan struct{}
}

// historyCap bounds how many finished rebuilds RebuildStatus can still see.
const historyCap = 64

// NewDynamic builds the initial index for g. The options apply to every
// rebuild.
func NewDynamic(g *Graph, opts ...Option) (*Dynamic, error) {
	eng, err := New(g, opts...)
	if err != nil {
		return nil, err
	}
	d := &Dynamic{
		opts:    opts,
		n:       g.N(),
		graph:   g,
		pending: make(map[[2]int]bool),
		engine:  eng,
		gen:     1,
		history: make(map[uint64]*Rebuild),
		nextID:  1,
	}
	return d, nil
}

// N returns the current number of nodes (including nodes added since the
// last flush; those are visible to queries only after Flush).
func (d *Dynamic) N() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.n
}

// Generation returns the serving index's generation: 1 for the initial
// build, bumped by every successful rebuild swap. A failed or no-op Flush
// leaves it unchanged.
func (d *Dynamic) Generation() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.gen
}

// Engine returns the engine currently serving queries. The engine is
// immutable; after a Flush a new one replaces it, so callers that must
// follow swaps should use OnSwap (or query through Dynamic).
func (d *Dynamic) Engine() *Engine {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.engine
}

// OnSwap registers f to be called after every successful rebuild swap with
// the new engine, the new generation, and how long the rebuild took. It is
// how a serving layer keeps its executor and caches in step with the index
// (e.g. qexec.Executor.SwapEngine). f runs with Dynamic's lock held: keep
// it short and do not call back into Dynamic from it.
func (d *Dynamic) OnSwap(f func(eng *Engine, gen uint64, rebuild time.Duration)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onSwap = f
}

// OnRebuild registers f to be called when a background rebuild completes,
// successfully or not: the rebuild id, the generation now serving (bumped
// on success, unchanged on failure), the rebuild wall time, the path the
// rebuild took (full, delta-spoke, delta-hub), and the error (nil on
// success). Unlike OnSwap it fires on failures too, so an observability
// layer can record rebuild_fail events for rebuilds that never swapped.
// Same constraints as OnSwap: f runs with Dynamic's lock held — keep it
// short and do not call back into Dynamic.
func (d *Dynamic) OnRebuild(f func(id, gen uint64, rebuild time.Duration, mode RebuildMode, err error)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onRebuild = f
}

// AddNode grows the node set by one and returns the new node's id.
// The node becomes queryable after the next Flush.
func (d *Dynamic) AddNode() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.n
	d.n++
	return id
}

// AddEdge buffers the insertion of edge (src, dst).
func (d *Dynamic) AddEdge(src, dst int) error {
	return d.buffer(src, dst, true)
}

// RemoveEdge buffers the deletion of edge (src, dst).
func (d *Dynamic) RemoveEdge(src, dst int) error {
	return d.buffer(src, dst, false)
}

// buffer records one edge update. No-ops are canceled at buffer time:
// inserting an edge the index already has (or deleting an absent one)
// leaves the buffer untouched — and cancels any opposite pending op — so
// Pending and the flush trigger reflect real work only. While a rebuild is
// in flight the no-op check is skipped (the effective base set is the
// rebuild's snapshot, not d.edges); the buffer is re-normalized when the
// rebuild settles.
func (d *Dynamic) buffer(src, dst int, insert bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if src < 0 || src >= d.n || dst < 0 || dst >= d.n {
		return fmt.Errorf("bepi: edge (%d,%d) out of range n=%d", src, dst, d.n)
	}
	key := [2]int{src, dst}
	if d.rebuild == nil && d.hasEdgeLocked(src, dst) == insert {
		delete(d.pending, key)
		return nil
	}
	d.pending[key] = insert
	return nil
}

// hasEdgeLocked reports whether the serving edge set has (src, dst),
// treating nodes the serving graph does not know yet (added but not
// flushed) as edge-free. Callers hold d.mu.
func (d *Dynamic) hasEdgeLocked(src, dst int) bool {
	return src < d.graph.N() && dst < d.graph.N() && d.graph.HasEdge(src, dst)
}

// Pending returns the number of buffered updates not yet reflected in the
// index: edge updates plus nodes added since the serving engine was built.
// No-op edge updates (inserting an existing edge, deleting an absent one)
// are canceled as they arrive, so a non-zero Pending means a Flush has real
// work to do — including the AddNode-only case, where the next flush must
// rebuild even though no edge is buffered.
func (d *Dynamic) Pending() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p := len(d.pending)
	if d.engine != nil {
		if growth := d.n - d.engine.N(); growth > 0 {
			p += growth
		}
	}
	return p
}

// RebuildMode is the path a rebuild took to produce its engine.
type RebuildMode string

// Rebuild modes, as surfaced by RebuildStatus.Mode and the
// bepi_rebuild_mode metric.
const (
	// RebuildModeFull ran the complete preprocessing pipeline (SlashBurn,
	// factorization, Schur complement) from scratch.
	RebuildModeFull RebuildMode = "full"
	// RebuildModeDeltaSpoke absorbed a spoke-only delta incrementally —
	// ordering and hub set reused, touched blocks re-factored, affected
	// Schur columns recomputed; bit-identical to a full preprocess under
	// the reused ordering.
	RebuildModeDeltaSpoke RebuildMode = "delta-spoke"
	// RebuildModeDeltaHub absorbed a hub-touching delta incrementally with
	// a Woodbury correction (or an exact patch with a stale ILU on
	// implicit-operator engines).
	RebuildModeDeltaHub RebuildMode = "delta-hub"
	// RebuildModeNoop had nothing to do.
	RebuildModeNoop RebuildMode = "noop"
)

// Rebuild is a handle on one background rebuild started by StartFlush.
// Its result fields are published before Done's channel closes and must
// only be read after it.
type Rebuild struct {
	id       uint64
	start    time.Time
	genStart uint64 // generation serving when the rebuild began (immutable)
	done     chan struct{}

	// Written once by the rebuild goroutine before close(done).
	err     error
	gen     uint64
	noop    bool
	applied int
	mode    RebuildMode
	drift   float64
	dur     time.Duration
}

// ID identifies the rebuild for status polling (Dynamic.RebuildStatus).
func (r *Rebuild) ID() uint64 { return r.id }

// Done is closed when the rebuild has settled (swapped, failed, or no-op).
func (r *Rebuild) Done() <-chan struct{} { return r.done }

// Wait blocks until the rebuild settles and returns its error.
func (r *Rebuild) Wait() error {
	<-r.done
	return r.err
}

// RebuildState is the lifecycle phase of a rebuild.
type RebuildState string

// Rebuild states.
const (
	RebuildRunning RebuildState = "running"
	RebuildDone    RebuildState = "done"
	RebuildFailed  RebuildState = "failed"
)

// RebuildStatus is a point-in-time snapshot of one rebuild.
type RebuildStatus struct {
	ID    uint64
	State RebuildState
	// NoOp means the flush had no buffered work and completed without
	// rebuilding (the engine and generation are unchanged).
	NoOp bool
	// Applied is the number of buffered updates folded into the rebuild.
	Applied int
	// Generation is the index generation serving queries: while the
	// rebuild runs, the generation it started from (queries are still
	// answered by it); once settled, the generation after the rebuild
	// (bumped on success, unchanged on failure or no-op). State — not a
	// sentinel Generation value — distinguishes the two.
	Generation uint64
	// Mode is the path the rebuild took (full, delta-spoke, delta-hub,
	// noop); empty while the rebuild is still running.
	Mode RebuildMode
	// Drift is the serving engine's accumulated hub-delta drift score
	// after this rebuild (zero for exact rebuilds). Meaningful once
	// settled.
	Drift float64
	// Duration is the rebuild wall time so far (final once settled).
	Duration time.Duration
	// Err is the failure, nil while running or on success.
	Err error
}

// Status snapshots the rebuild without blocking.
func (r *Rebuild) Status() RebuildStatus {
	select {
	case <-r.done:
	default:
		return RebuildStatus{
			ID:         r.id,
			State:      RebuildRunning,
			Generation: r.genStart,
			Duration:   time.Since(r.start),
		}
	}
	st := RebuildStatus{
		ID:         r.id,
		State:      RebuildDone,
		NoOp:       r.noop,
		Applied:    r.applied,
		Generation: r.gen,
		Mode:       r.mode,
		Drift:      r.drift,
		Duration:   r.dur,
		Err:        r.err,
	}
	if r.err != nil {
		st.State = RebuildFailed
	}
	return st
}

// RebuildStatus looks up a rebuild by id: the in-flight one or any of the
// recent finished ones (a bounded history is retained).
func (d *Dynamic) RebuildStatus(id uint64) (RebuildStatus, bool) {
	d.mu.RLock()
	r, ok := d.history[id]
	d.mu.RUnlock()
	if !ok {
		return RebuildStatus{}, false
	}
	return r.Status(), true
}

// LastRebuild returns the most recently started rebuild (which may still
// be running), or nil if none was ever started.
func (d *Dynamic) LastRebuild() *Rebuild {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.order) == 0 {
		return nil
	}
	return d.history[d.order[len(d.order)-1]]
}

// Flush applies all buffered updates and rebuilds the index, blocking
// until the new engine serves (it is StartFlush + Wait). Queries keep
// completing against the old index for the whole rebuild. On error the
// previous index keeps serving and the buffer is preserved. If a rebuild
// is already in flight, Flush waits for that one instead of starting
// another; updates buffered after its snapshot need a second Flush.
func (d *Dynamic) Flush() error {
	return d.StartFlush().Wait()
}

// StartFlush begins a background rebuild and returns its handle without
// waiting. If a rebuild is already in flight its handle is returned
// (rebuilds never stack; mid-rebuild updates stay buffered for the next
// one). If there is nothing to do — no real buffered updates and no new
// nodes — the returned handle is already settled as a no-op and the
// engine generation is unchanged.
func (d *Dynamic) StartFlush() *Rebuild {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.rebuild != nil {
		return d.rebuild
	}
	r := &Rebuild{id: d.nextID, start: time.Now(), genStart: d.gen, done: make(chan struct{})}
	d.nextID++
	d.record(r)
	if len(d.pending) == 0 && d.engine != nil && d.engine.N() == d.n {
		r.noop = true
		r.gen = d.gen
		r.mode = RebuildModeNoop
		close(r.done)
		return r
	}
	// Snapshot under the lock: the serving graph (immutable — the rebuild
	// patches a copy) and the buffer it consumes (restored on failure).
	snap := d.pending
	d.pending = make(map[[2]int]bool)
	r.applied = len(snap)
	d.rebuild = r
	go d.runRebuild(r, d.n, d.graph, snap, d.engine)
	return r
}

// record adds a rebuild to the bounded status history.
func (d *Dynamic) record(r *Rebuild) {
	d.history[r.id] = r
	d.order = append(d.order, r.id)
	for len(d.order) > historyCap {
		delete(d.history, d.order[0])
		d.order = d.order[1:]
	}
}

// runRebuild is the background rebuild: all the expensive work — graph
// construction and the rebuild itself — happens here with no lock held, so
// queries and updates proceed freely. Only the final swap (or the failure
// bookkeeping) re-acquires the lock, briefly.
//
// The incremental path is tried first: the buffered delta is replayed
// against the serving engine with ApplyDelta, which classifies it and
// either absorbs it (reusing the ordering, untouched factors, and
// unaffected Schur columns) or refuses. Any refusal — structural
// (ErrDeltaFull), drift past threshold (ErrDriftExceeded), or a numerical
// failure while patching — falls back to the full preprocessing pipeline,
// so the delta path can only ever improve rebuild latency, never
// availability. The swap and generation bump are identical on both paths;
// downstream consumers (qexec executors, serving layers) see the same
// OnSwap contract regardless of mode.
func (d *Dynamic) runRebuild(r *Rebuild, n int, gBase *Graph, snap map[[2]int]bool, base *Engine) {
	// Patch the snapshot graph with the buffered delta: O(M + changes), no
	// edge-list re-sort. The buffer is normalized against the serving edge
	// set, so the patch can only fail on an internal inconsistency; the
	// defensive fallback rebuilds from the merged edge list.
	var add, del []graph.Edge
	for e, insert := range snap {
		if insert {
			add = append(add, graph.Edge{Src: e[0], Dst: e[1]})
		} else {
			del = append(del, graph.Edge{Src: e[0], Dst: e[1]})
		}
	}
	var g *Graph
	var err error
	if gi, gerr := gBase.inner.WithEdgeDeltas(n, add, del); gerr == nil {
		g = &Graph{inner: gi}
	} else {
		em := make(map[[2]int]bool, gBase.M()+len(snap))
		for _, e := range gBase.inner.Edges() {
			em[[2]int{e.Src, e.Dst}] = true
		}
		for e, insert := range snap {
			if insert {
				em[e] = true
			} else {
				delete(em, e)
			}
		}
		edges := make([]Edge, 0, len(em))
		for e := range em {
			edges = append(edges, Edge{Src: e[0], Dst: e[1]})
		}
		g, err = NewGraph(n, edges)
	}
	var eng *Engine
	mode := RebuildModeFull
	if err == nil && base != nil {
		ops := make([]core.EdgeDelta, 0, len(snap))
		for e, insert := range snap {
			ops = append(ops, core.EdgeDelta{Src: e[0], Dst: e[1], Insert: insert})
		}
		if ce, st, derr := base.inner.ApplyDelta(g.inner, ops); derr == nil {
			eng = &Engine{inner: ce}
			mode = RebuildMode(st.Class.String())
			r.drift = st.Drift
		}
	}
	if err == nil && eng == nil {
		eng, err = New(g, d.opts...)
	}
	if err != nil {
		err = fmt.Errorf("bepi: rebuilding dynamic index: %w", err)
	}
	if d.testRebuildGate != nil {
		<-d.testRebuildGate
	}

	d.mu.Lock()
	d.rebuild = nil
	r.dur = time.Since(r.start)
	r.mode = mode
	if err != nil {
		// The old index keeps serving. Restore the consumed buffer without
		// clobbering ops that arrived mid-rebuild (newer ops win per edge).
		for e, insert := range snap {
			if _, ok := d.pending[e]; !ok {
				d.pending[e] = insert
			}
		}
		r.err = err
		r.gen = d.gen
	} else {
		d.graph = g
		d.engine = eng
		d.gen++
		r.gen = d.gen
	}
	// Re-normalize ops buffered while the rebuild ran: anything that is a
	// no-op against the (possibly new) base set is canceled, restoring the
	// invariant that pending holds real work only.
	for e, insert := range d.pending {
		if d.hasEdgeLocked(e[0], e[1]) == insert {
			delete(d.pending, e)
		}
	}
	if err == nil && d.onSwap != nil {
		d.onSwap(eng, d.gen, r.dur)
	}
	if d.onRebuild != nil {
		d.onRebuild(r.id, d.gen, r.dur, mode, err)
	}
	d.mu.Unlock()
	close(r.done)
}

// Query answers from the most recently flushed index; buffered updates are
// not yet visible (the paper's batch-update semantics). During a rebuild
// the previous index keeps answering — queries never wait for
// preprocessing, only for the atomic engine swap.
func (d *Dynamic) Query(seed int) ([]float64, error) {
	d.mu.RLock()
	eng := d.engine
	d.mu.RUnlock()
	return eng.Query(seed)
}

// TopK answers from the most recently flushed index.
func (d *Dynamic) TopK(seed, k int) ([]Ranked, error) {
	d.mu.RLock()
	eng := d.engine
	d.mu.RUnlock()
	return eng.TopK(seed, k)
}
