// Package method wraps every RWR algorithm the paper evaluates behind one
// interface, so the benchmark harness can run them interchangeably:
//
//	BePI / BePI-S / BePI-B — the proposed method (package core)
//	Power                  — power iteration (iterative baseline)
//	GMRES                  — GMRES on the full system H r = c q (iterative)
//	LU                     — sparse-LU preprocessing (Fujiwara et al.)
//	Bear                   — block elimination with a dense Schur inverse
//	                         (Shin et al., the state-of-the-art competitor)
//
// Preprocessing baselines accept memory and deadline budgets; exceeding
// them surfaces as the paper's o.o.m. / o.o.t. outcomes.
package method

import (
	"errors"
	"time"

	"bepi/internal/core"
	"bepi/internal/graph"
)

// QueryInfo reports the cost of a single query.
type QueryInfo struct {
	Duration   time.Duration
	Iterations int
}

// Method is one RWR algorithm with an explicit preprocessing phase.
type Method interface {
	// Name is the display name used in tables ("BePI", "Bear", ...).
	Name() string
	// IsPreprocessing reports whether the method belongs to the
	// preprocessing family (stores precomputed matrices) rather than the
	// iterative family.
	IsPreprocessing() bool
	// Preprocess builds whatever the method needs to answer queries.
	Preprocess(g *graph.Graph) error
	// Query returns the RWR vector for a seed node (original ids).
	Query(seed int) ([]float64, QueryInfo, error)
	// PrepTime reports how long Preprocess took.
	PrepTime() time.Duration
	// MemoryBytes reports the footprint of the preprocessed data
	// (0 for purely iterative methods).
	MemoryBytes() int64
}

// Budget bounds a preprocessing run, mirroring the paper's experiment
// protocol (24-hour limit, machine memory limit).
type Budget struct {
	Memory   int64         // bytes; 0 = unlimited
	Deadline time.Duration // 0 = unlimited
}

// Config carries the shared RWR parameters.
type Config struct {
	C       float64 // restart probability (default core.DefaultC)
	Tol     float64 // solver tolerance ε (default core.DefaultTol)
	MaxIter int     // iteration cap (default 1000)
	// Parallelism caps preprocessing/kernel workers for methods that
	// support it (0 = shared GOMAXPROCS pool, 1 = serial).
	Parallelism int
	Budget      Budget
}

func (c Config) withDefaults() Config {
	if c.C <= 0 || c.C >= 1 {
		c.C = core.DefaultC
	}
	if c.Tol <= 0 {
		c.Tol = core.DefaultTol
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 1000
	}
	return c
}

// Budget outcome errors, re-exported for callers that classify results.
var (
	ErrOutOfMemory = errors.New("method: out of memory budget")
	ErrOutOfTime   = errors.New("method: out of time budget")
)

// ErrNotPreprocessed is returned by Query before Preprocess has run.
var ErrNotPreprocessed = errors.New("method: Preprocess has not been run")

// BePI adapts core.Engine to the Method interface.
type BePI struct {
	cfg     Config
	variant core.Variant
	k       float64
	engine  *core.Engine
}

// NewBePI returns the full BePI method (ILU-preconditioned, sparsified S).
func NewBePI(cfg Config) *BePI {
	return &BePI{cfg: cfg.withDefaults(), variant: core.VariantFull, k: 0.2}
}

// NewBePIS returns the BePI-S variant.
func NewBePIS(cfg Config) *BePI {
	return &BePI{cfg: cfg.withDefaults(), variant: core.VariantS, k: 0.2}
}

// NewBePIB returns the BePI-B variant (paper hub ratio 0.001).
func NewBePIB(cfg Config) *BePI {
	return &BePI{cfg: cfg.withDefaults(), variant: core.VariantB, k: 0.001}
}

// SetHubRatio overrides the SlashBurn hub ratio before Preprocess.
func (b *BePI) SetHubRatio(k float64) { b.k = k }

// Name implements Method.
func (b *BePI) Name() string { return b.variant.String() }

// IsPreprocessing implements Method.
func (b *BePI) IsPreprocessing() bool { return true }

// Preprocess implements Method.
func (b *BePI) Preprocess(g *graph.Graph) error {
	e, err := core.Preprocess(g, core.Options{
		C:            b.cfg.C,
		Tol:          b.cfg.Tol,
		Variant:      b.variant,
		HubRatio:     b.k,
		MaxIter:      b.cfg.MaxIter,
		Parallelism:  b.cfg.Parallelism,
		MemoryBudget: b.cfg.Budget.Memory,
		Deadline:     b.cfg.Budget.Deadline,
	})
	if err != nil {
		return classify(err)
	}
	b.engine = e
	return nil
}

// Query implements Method.
func (b *BePI) Query(seed int) ([]float64, QueryInfo, error) {
	if b.engine == nil {
		return nil, QueryInfo{}, ErrNotPreprocessed
	}
	r, st, err := b.engine.Query(seed)
	return r, QueryInfo{Duration: st.Duration, Iterations: st.Iterations}, err
}

// PrepTime implements Method.
func (b *BePI) PrepTime() time.Duration {
	if b.engine == nil {
		return 0
	}
	return b.engine.PrepStats().Total
}

// MemoryBytes implements Method.
func (b *BePI) MemoryBytes() int64 {
	if b.engine == nil {
		return 0
	}
	return b.engine.MemoryBytes()
}

// Engine exposes the underlying core engine (for stats-level experiments).
func (b *BePI) Engine() *core.Engine { return b.engine }

// classify maps budget errors from lower layers onto the method package's
// outcome errors so the harness can label bars o.o.m. / o.o.t.
func classify(err error) error {
	switch {
	case errors.Is(err, core.ErrMemoryBudget):
		return errors.Join(ErrOutOfMemory, err)
	case errors.Is(err, core.ErrDeadline):
		return errors.Join(ErrOutOfTime, err)
	default:
		return err
	}
}
