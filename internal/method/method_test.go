package method

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"bepi/internal/core"
	"bepi/internal/gen"
	"bepi/internal/graph"
	"bepi/internal/vec"
)

func allMethods(cfg Config) []Method {
	return []Method{
		NewBePI(cfg), NewBePIS(cfg), NewBePIB(cfg),
		NewPower(cfg), NewFullGMRES(cfg), NewLU(cfg), NewBear(cfg),
	}
}

func randGraph(rng *rand.Rand, n int) *graph.Graph {
	m := n + rng.Intn(4*n)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		e := graph.Edge{Src: rng.Intn(n), Dst: rng.Intn(n)}
		if e.Src < n-1-n/10 { // leave some deadends
			edges = append(edges, e)
		}
	}
	return graph.MustNew(n, edges)
}

func TestAllMethodsAgreeWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := Config{Tol: 1e-11}
	for trial := 0; trial < 4; trial++ {
		n := 30 + rng.Intn(60)
		g := randGraph(rng, n)
		seed := rng.Intn(n)
		want, err := core.ExactDense(g, core.DefaultC, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range allMethods(cfg) {
			if err := m.Preprocess(g); err != nil {
				t.Fatalf("trial %d %s: preprocess: %v", trial, m.Name(), err)
			}
			got, info, err := m.Query(seed)
			if err != nil {
				t.Fatalf("trial %d %s: query: %v", trial, m.Name(), err)
			}
			if d := vec.Dist2(got, want); d > 1e-6 {
				t.Fatalf("trial %d %s: distance to exact %v", trial, m.Name(), d)
			}
			if info.Duration < 0 {
				t.Fatalf("%s: negative duration", m.Name())
			}
		}
	}
}

func TestQueryBeforePreprocess(t *testing.T) {
	for _, m := range allMethods(Config{}) {
		if _, _, err := m.Query(0); !errors.Is(err, ErrNotPreprocessed) {
			t.Errorf("%s: got %v, want ErrNotPreprocessed", m.Name(), err)
		}
	}
}

func TestMethodFamilies(t *testing.T) {
	cfg := Config{}
	prep := map[string]bool{
		"BePI": true, "BePI-S": true, "BePI-B": true,
		"Power": false, "GMRES": false, "LU": true, "Bear": true,
	}
	for _, m := range allMethods(cfg) {
		want, ok := prep[m.Name()]
		if !ok {
			t.Fatalf("unexpected method name %q", m.Name())
		}
		if m.IsPreprocessing() != want {
			t.Errorf("%s: IsPreprocessing = %v, want %v", m.Name(), m.IsPreprocessing(), want)
		}
	}
}

func TestPreprocessingMethodsReportMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randGraph(rng, 80)
	for _, m := range allMethods(Config{}) {
		if err := m.Preprocess(g); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if m.IsPreprocessing() && m.MemoryBytes() <= 0 {
			t.Errorf("%s: preprocessing method reports no memory", m.Name())
		}
		if !m.IsPreprocessing() && m.MemoryBytes() != 0 {
			t.Errorf("%s: iterative method reports memory %d", m.Name(), m.MemoryBytes())
		}
	}
}

func TestBearOutOfMemoryOnTightBudget(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 6, 3))
	m := NewBear(Config{Budget: Budget{Memory: 1024}})
	err := m.Preprocess(g)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("got %v, want ErrOutOfMemory", err)
	}
}

func TestLUOutOfMemoryOnTightBudget(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 6, 4))
	m := NewLU(Config{Budget: Budget{Memory: 2048}})
	err := m.Preprocess(g)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("got %v, want ErrOutOfMemory", err)
	}
}

func TestBePIOutOfTimeOnTinyDeadline(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 6, 5))
	m := NewBePI(Config{Budget: Budget{Deadline: time.Nanosecond}})
	err := m.Preprocess(g)
	if !errors.Is(err, ErrOutOfTime) {
		t.Fatalf("got %v, want ErrOutOfTime", err)
	}
}

func TestBePICompletesWhereBearCannot(t *testing.T) {
	// The paper's central scalability claim at miniature scale: under the
	// same memory budget, BePI preprocesses a hub-heavy graph that Bear
	// cannot (Bear's dense S⁻¹ blows the budget; BePI's sparse S fits).
	g := gen.RMAT(gen.DefaultRMAT(13, 12, 6))
	// Measure what each method actually needs without a budget...
	probe := NewBePI(Config{})
	if err := probe.Preprocess(g); err != nil {
		t.Fatal(err)
	}
	bearProbe := NewBear(Config{})
	if err := bearProbe.Preprocess(g); err != nil {
		t.Fatal(err)
	}
	if bearProbe.MemoryBytes() <= 2*probe.MemoryBytes() {
		t.Fatalf("expected Bear (%d bytes) to need far more than BePI (%d bytes)",
			bearProbe.MemoryBytes(), probe.MemoryBytes())
	}
	// ...then pick a budget between the two: BePI fits, Bear must refuse.
	budget := Budget{Memory: probe.MemoryBytes() + (bearProbe.MemoryBytes()-probe.MemoryBytes())/4}
	bear := NewBear(Config{Budget: budget})
	if err := bear.Preprocess(g); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("Bear: got %v, want ErrOutOfMemory", err)
	}
	bepi := NewBePI(Config{Budget: budget})
	if err := bepi.Preprocess(g); err != nil {
		t.Fatalf("BePI should fit in the budget: %v", err)
	}
}

func TestBearMatchesBePIQueryForQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randGraph(rng, 100)
	cfg := Config{Tol: 1e-11}
	bear := NewBear(cfg)
	bepi := NewBePI(cfg)
	if err := bear.Preprocess(g); err != nil {
		t.Fatal(err)
	}
	if err := bepi.Preprocess(g); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		seed := rng.Intn(g.N())
		rb, _, err := bear.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		rp, _, err := bepi.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		if d := vec.Dist2(rb, rp); d > 1e-6 {
			t.Fatalf("seed %d: Bear vs BePI distance %v", seed, d)
		}
	}
}
