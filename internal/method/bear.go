package method

import (
	"errors"
	"fmt"
	"time"

	"bepi/internal/core"
	"bepi/internal/dense"
	"bepi/internal/graph"
	"bepi/internal/lu"
	"bepi/internal/reorder"
	"bepi/internal/sparse"
)

// Bear is the state-of-the-art block-elimination baseline (Shin et al.
// [38]): the same deadend + SlashBurn reordering and Schur complement as
// BePI, but with the Schur complement *inverted densely* in the
// preprocessing phase (S⁻¹ is n2×n2 dense). Queries are pure matrix-vector
// products — fast, but the O(n2²) memory and O(n2³) inversion are exactly
// what makes Bear fail on large graphs in the paper's Figure 1.
type Bear struct {
	cfg      Config
	k        float64
	n        int
	ord      *reorder.Ordering
	h11LU    *lu.BlockLU
	sinv     *dense.Matrix
	h12, h21 *sparse.CSR
	h31, h32 *sparse.CSR
	prepTime time.Duration
}

// NewBear returns the Bear baseline with the paper's hub ratio k = 0.001.
func NewBear(cfg Config) *Bear { return &Bear{cfg: cfg.withDefaults(), k: 0.001} }

// SetHubRatio overrides the SlashBurn hub ratio before Preprocess.
func (m *Bear) SetHubRatio(k float64) { m.k = k }

// Name implements Method.
func (m *Bear) Name() string { return "Bear" }

// IsPreprocessing implements Method.
func (m *Bear) IsPreprocessing() bool { return true }

// Preprocess implements Method.
func (m *Bear) Preprocess(g *graph.Graph) error {
	start := time.Now()
	deadline := func() error {
		if m.cfg.Budget.Deadline > 0 && time.Since(start) > m.cfg.Budget.Deadline {
			return errors.Join(ErrOutOfTime, fmt.Errorf("bear: %v elapsed", time.Since(start).Round(time.Millisecond)))
		}
		return nil
	}
	m.n = g.N()
	ord := reorder.HubAndSpoke(g, m.k)
	m.ord = ord
	if err := deadline(); err != nil {
		return err
	}
	// The dense inverse needs n2² floats; refuse before allocating.
	if m.cfg.Budget.Memory > 0 {
		need := int64(ord.N2) * int64(ord.N2) * 8
		if need > m.cfg.Budget.Memory {
			return errors.Join(ErrOutOfMemory,
				fmt.Errorf("bear: dense S⁻¹ needs %d bytes for n2=%d", need, ord.N2))
		}
	}
	h := core.BuildH(g, ord.Perm, m.cfg.C)
	n1, n2 := ord.N1, ord.N2
	l := n1 + n2
	h11 := h.Block(0, n1, 0, n1)
	m.h12 = h.Block(0, n1, n1, l)
	m.h21 = h.Block(n1, l, 0, n1)
	h22 := h.Block(n1, l, n1, l)
	m.h31 = h.Block(l, m.n, 0, n1)
	m.h32 = h.Block(l, m.n, n1, l)
	var err error
	m.h11LU, err = lu.FactorBlockDiag(h11, ord.Blocks)
	if err != nil {
		return fmt.Errorf("bear: factoring H11: %w", err)
	}
	if err := deadline(); err != nil {
		return err
	}
	s := core.SchurComplement(h22, m.h21, m.h12, m.h11LU)
	if err := deadline(); err != nil {
		return err
	}
	// Dense inversion of S via LU + per-column solves, checking the
	// deadline periodically so huge inversions surface as o.o.t.
	sd := dense.New(n2, n2)
	cols := s.ColIdx()
	vals := s.Values()
	for i := 0; i < n2; i++ {
		rs, re := s.RowRange(i)
		for p := rs; p < re; p++ {
			sd.Set(i, cols[p], vals[p])
		}
	}
	if err := sd.LU(); err != nil {
		return fmt.Errorf("bear: LU of S: %w", err)
	}
	m.sinv = dense.New(n2, n2)
	col := make([]float64, n2)
	for j := 0; j < n2; j++ {
		if j%64 == 0 {
			if err := deadline(); err != nil {
				return err
			}
		}
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
		sd.LUSolve(col)
		for i := 0; i < n2; i++ {
			m.sinv.Set(i, j, col[i])
		}
	}
	m.prepTime = time.Since(start)
	return nil
}

// Query implements Method: Lemma 1's closed form with the precomputed S⁻¹.
func (m *Bear) Query(seed int) ([]float64, QueryInfo, error) {
	if m.sinv == nil {
		return nil, QueryInfo{}, ErrNotPreprocessed
	}
	start := time.Now()
	n1, n2 := m.ord.N1, m.ord.N2
	l := n1 + n2
	c := m.cfg.C
	qp := make([]float64, m.n)
	qp[m.ord.Perm[seed]] = 1

	// q̃2 = c·q2 − H21·H11⁻¹·(c·q1)
	t1 := make([]float64, n1)
	for i := 0; i < n1; i++ {
		t1[i] = c * qp[i]
	}
	m.h11LU.Solve(t1)
	qt2 := make([]float64, n2)
	m.h21.MulVec(qt2, t1)
	for i := range qt2 {
		qt2[i] = c*qp[n1+i] - qt2[i]
	}
	// r2 = S⁻¹ q̃2 — a dense mat-vec, no iteration.
	r2 := make([]float64, n2)
	m.sinv.MulVec(r2, qt2)
	// r1 = H11⁻¹ (c·q1 − H12·r2)
	r1 := make([]float64, n1)
	m.h12.MulVec(r1, r2)
	for i := range r1 {
		r1[i] = c*qp[i] - r1[i]
	}
	m.h11LU.Solve(r1)
	// r3 = c·q3 − H31·r1 − H32·r2
	r3 := make([]float64, m.n-l)
	m.h31.MulVec(r3, r1)
	tmp := make([]float64, m.n-l)
	m.h32.MulVec(tmp, r2)
	for i := range r3 {
		r3[i] = c*qp[l+i] - r3[i] - tmp[i]
	}

	r := make([]float64, m.n)
	for old := 0; old < m.n; old++ {
		nw := m.ord.Perm[old]
		switch {
		case nw < n1:
			r[old] = r1[nw]
		case nw < l:
			r[old] = r2[nw-n1]
		default:
			r[old] = r3[nw-l]
		}
	}
	return r, QueryInfo{Duration: time.Since(start), Iterations: 0}, nil
}

// PrepTime implements Method.
func (m *Bear) PrepTime() time.Duration { return m.prepTime }

// MemoryBytes implements Method: dominated by the dense S⁻¹ (n2² floats).
func (m *Bear) MemoryBytes() int64 {
	if m.sinv == nil {
		return 0
	}
	return m.sinv.MemoryBytes() + m.h11LU.MemoryBytes() +
		m.h12.MemoryBytes() + m.h21.MemoryBytes() +
		m.h31.MemoryBytes() + m.h32.MemoryBytes() +
		int64(2*m.n*8)
}
