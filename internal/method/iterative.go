package method

import (
	"time"

	"bepi/internal/core"
	"bepi/internal/graph"
	"bepi/internal/solver"
	"bepi/internal/sparse"
)

// Power is the power-iteration baseline (§2.2): no preprocessing beyond
// building Ãᵀ, every query iterates r ← (1−c)Ãᵀr + cq to convergence.
type Power struct {
	cfg Config
	at  *sparse.CSR
	n   int
}

// NewPower returns a power-iteration method.
func NewPower(cfg Config) *Power { return &Power{cfg: cfg.withDefaults()} }

// Name implements Method.
func (p *Power) Name() string { return "Power" }

// IsPreprocessing implements Method.
func (p *Power) IsPreprocessing() bool { return false }

// Preprocess implements Method. For iterative methods this is only the
// adjacency normalization, which the paper does not count as preprocessing.
func (p *Power) Preprocess(g *graph.Graph) error {
	p.at = core.RowNormalizedAdjacencyT(g)
	p.n = g.N()
	return nil
}

// Query implements Method.
func (p *Power) Query(seed int) ([]float64, QueryInfo, error) {
	if p.at == nil {
		return nil, QueryInfo{}, ErrNotPreprocessed
	}
	start := time.Now()
	q := make([]float64, p.n)
	q[seed] = 1
	r, st, err := solver.PowerIteration(p.at, q, p.cfg.C, solver.PowerOptions{
		Tol:     p.cfg.Tol,
		MaxIter: p.cfg.MaxIter,
	})
	return r, QueryInfo{Duration: time.Since(start), Iterations: st.Iterations}, err
}

// PrepTime implements Method.
func (p *Power) PrepTime() time.Duration { return 0 }

// MemoryBytes implements Method: iterative methods keep no preprocessed
// data beyond the graph itself.
func (p *Power) MemoryBytes() int64 { return 0 }

// FullGMRES is the Krylov-subspace baseline (§2.2): GMRES applied to the
// whole system H r = c q for every query.
type FullGMRES struct {
	cfg Config
	h   *sparse.CSR
	n   int
}

// NewFullGMRES returns a full-system GMRES method.
func NewFullGMRES(cfg Config) *FullGMRES { return &FullGMRES{cfg: cfg.withDefaults()} }

// Name implements Method.
func (m *FullGMRES) Name() string { return "GMRES" }

// IsPreprocessing implements Method.
func (m *FullGMRES) IsPreprocessing() bool { return false }

// Preprocess implements Method (builds H only).
func (m *FullGMRES) Preprocess(g *graph.Graph) error {
	m.h = core.BuildH(g, nil, m.cfg.C)
	m.n = g.N()
	return nil
}

// Query implements Method.
func (m *FullGMRES) Query(seed int) ([]float64, QueryInfo, error) {
	if m.h == nil {
		return nil, QueryInfo{}, ErrNotPreprocessed
	}
	start := time.Now()
	b := make([]float64, m.n)
	b[seed] = m.cfg.C
	r, st, err := solver.GMRES(m.h, b, solver.GMRESOptions{
		Tol:     m.cfg.Tol,
		MaxIter: m.cfg.MaxIter,
	})
	return r, QueryInfo{Duration: time.Since(start), Iterations: st.Iterations}, err
}

// PrepTime implements Method.
func (m *FullGMRES) PrepTime() time.Duration { return 0 }

// MemoryBytes implements Method.
func (m *FullGMRES) MemoryBytes() int64 { return 0 }
