package method

import (
	"errors"
	"time"

	"bepi/internal/core"
	"bepi/internal/graph"
	"bepi/internal/lu"
	"bepi/internal/reorder"
)

// LU is the LU-decomposition preprocessing baseline (Fujiwara et al. [14]):
// reorder H by ascending node degree to limit fill, factor it once with a
// sparse LU, then answer queries with two sparse triangular solves.
//
// The paper's version stores the explicit inverses L⁻¹ and U⁻¹; storing the
// factors and substituting is never slower and never larger, so this
// implementation is a conservative stand-in (documented in DESIGN.md).
type LU struct {
	cfg      Config
	perm     []int
	factor   *lu.SparseLU
	n        int
	prepTime time.Duration
}

// NewLU returns the LU-decomposition baseline.
func NewLU(cfg Config) *LU { return &LU{cfg: cfg.withDefaults()} }

// Name implements Method.
func (m *LU) Name() string { return "LU" }

// IsPreprocessing implements Method.
func (m *LU) IsPreprocessing() bool { return true }

// Preprocess implements Method.
func (m *LU) Preprocess(g *graph.Graph) error {
	start := time.Now()
	m.n = g.N()
	m.perm = reorder.ByDegree(g)
	h := core.BuildH(g, m.perm, m.cfg.C)
	maxFill := 0
	if m.cfg.Budget.Memory > 0 {
		// A factor entry costs ~16 bytes (index + value).
		maxFill = int(m.cfg.Budget.Memory / 16)
	}
	var deadline time.Time
	if m.cfg.Budget.Deadline > 0 {
		deadline = start.Add(m.cfg.Budget.Deadline)
	}
	f, err := lu.FactorSparseDeadline(h, maxFill, deadline)
	if err != nil {
		if errors.Is(err, lu.ErrBudgetExceeded) {
			return errors.Join(ErrOutOfMemory, err)
		}
		if errors.Is(err, lu.ErrDeadlineExceeded) {
			return errors.Join(ErrOutOfTime, err)
		}
		return err
	}
	m.prepTime = time.Since(start)
	if m.cfg.Budget.Deadline > 0 && m.prepTime > m.cfg.Budget.Deadline {
		return errors.Join(ErrOutOfTime, errors.New("sparse LU exceeded deadline"))
	}
	m.factor = f
	return nil
}

// Query implements Method.
func (m *LU) Query(seed int) ([]float64, QueryInfo, error) {
	if m.factor == nil {
		return nil, QueryInfo{}, ErrNotPreprocessed
	}
	start := time.Now()
	b := make([]float64, m.n)
	b[m.perm[seed]] = m.cfg.C
	m.factor.Solve(b)
	r := make([]float64, m.n)
	for old := 0; old < m.n; old++ {
		r[old] = b[m.perm[old]]
	}
	return r, QueryInfo{Duration: time.Since(start), Iterations: 0}, nil
}

// PrepTime implements Method.
func (m *LU) PrepTime() time.Duration { return m.prepTime }

// MemoryBytes implements Method.
func (m *LU) MemoryBytes() int64 {
	if m.factor == nil {
		return 0
	}
	return m.factor.MemoryBytes() + int64(m.n)*8
}
