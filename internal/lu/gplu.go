package lu

import (
	"errors"
	"fmt"
	"time"

	"bepi/internal/sparse"
)

// ErrBudgetExceeded is returned when a factorization grows past the caller's
// fill budget. The benchmark harness reports it as the paper's "o.o.m."
// outcome for preprocessing baselines on graphs they cannot handle.
var ErrBudgetExceeded = errors.New("lu: factor fill budget exceeded")

// SparseLU is a Gilbert–Peierls left-looking sparse LU factorization
// A = L·U with unit-lower L and upper U, both stored column-compressed.
// It is the factorization behind the LU-decomposition baseline (Fujiwara et
// al.): preprocessing factors H once, queries run two sparse triangular
// solves. No pivoting is performed (safe for diagonally dominant H).
type SparseLU struct {
	n          int
	lp, li     []int // L columns, strictly-lower entries
	lx         []float64
	up, ui     []int // U columns, strictly-upper entries (diag kept apart)
	ux         []float64
	diag       []float64
	fillBudget int
}

// ErrDeadlineExceeded is returned when a factorization runs past the
// caller's deadline; the harness reports it as the paper's "o.o.t.".
var ErrDeadlineExceeded = errors.New("lu: factor deadline exceeded")

// FactorSparse computes the sparse LU factorization of a square CSR matrix.
// maxFill, if positive, bounds the total number of stored factor entries;
// exceeding it aborts with ErrBudgetExceeded.
func FactorSparse(a *sparse.CSR, maxFill int) (*SparseLU, error) {
	return FactorSparseDeadline(a, maxFill, time.Time{})
}

// FactorSparseDeadline is FactorSparse with a wall-clock deadline checked
// periodically during the factorization (zero time = no deadline).
func FactorSparseDeadline(a *sparse.CSR, maxFill int, deadline time.Time) (*SparseLU, error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, fmt.Errorf("lu: FactorSparse requires a square matrix, got %v", a)
	}
	// Column access to A via the transpose (rows of Aᵀ are columns of A).
	at := a.Transpose()
	f := &SparseLU{
		n:          n,
		lp:         make([]int, 1, n+1),
		up:         make([]int, 1, n+1),
		diag:       make([]float64, n),
		fillBudget: maxFill,
	}
	x := make([]float64, n)   // dense numeric scratch
	visited := make([]int, n) // DFS stamp per column
	for i := range visited {
		visited[i] = -1
	}
	order := make([]int, 0, 64)  // topological order (push = postorder)
	stack := make([]int, 0, 64)  // explicit DFS stack: node
	stackP := make([]int, 0, 64) // per-node next-child cursor

	for j := 0; j < n; j++ {
		// Symbolic: reach of A[:,j]'s pattern through computed L columns.
		order = order[:0]
		s, e := at.RowRange(j)
		cols := at.ColIdx()[s:e]
		vals := at.Values()[s:e]
		for _, i := range cols {
			if visited[i] == j {
				continue
			}
			stack = append(stack[:0], i)
			stackP = append(stackP[:0], 0)
			visited[i] = j
			for len(stack) > 0 {
				top := len(stack) - 1
				k := stack[top]
				var deg int
				if k < j {
					deg = f.lp[k+1] - f.lp[k]
				}
				if stackP[top] < deg {
					child := f.li[f.lp[k]+stackP[top]]
					stackP[top]++
					if visited[child] != j {
						visited[child] = j
						stack = append(stack, child)
						stackP = append(stackP, 0)
					}
					continue
				}
				order = append(order, k)
				stack = stack[:top]
				stackP = stackP[:top]
			}
		}
		// Numeric: sparse lower-triangular solve L x = A[:,j] over the reach.
		for _, i := range order {
			x[i] = 0
		}
		for p, i := range cols {
			x[i] = vals[p]
		}
		for t := len(order) - 1; t >= 0; t-- {
			k := order[t]
			if k >= j {
				continue
			}
			xk := x[k]
			if xk == 0 {
				continue
			}
			for p := f.lp[k]; p < f.lp[k+1]; p++ {
				x[f.li[p]] -= f.lx[p] * xk
			}
		}
		// Gather U[:,j] (k < j), the diagonal, and L[:,j] (k > j).
		var ujj float64
		diagSeen := false
		for t := len(order) - 1; t >= 0; t-- {
			k := order[t]
			if k == j {
				ujj = x[k]
				diagSeen = true
			}
		}
		if !diagSeen || ujj == 0 {
			return nil, fmt.Errorf("lu: zero pivot at column %d", j)
		}
		for t := len(order) - 1; t >= 0; t-- {
			k := order[t]
			v := x[k]
			switch {
			case k < j:
				if v != 0 {
					f.ui = append(f.ui, k)
					f.ux = append(f.ux, v)
				}
			case k > j:
				if v != 0 {
					f.li = append(f.li, k)
					f.lx = append(f.lx, v/ujj)
				}
			}
		}
		f.diag[j] = ujj
		f.lp = append(f.lp, len(f.li))
		f.up = append(f.up, len(f.ui))
		if f.fillBudget > 0 && len(f.li)+len(f.ui) > f.fillBudget {
			return nil, fmt.Errorf("factoring column %d of %d: %w", j, n, ErrBudgetExceeded)
		}
		if !deadline.IsZero() && j%256 == 0 && time.Now().After(deadline) {
			return nil, fmt.Errorf("factoring column %d of %d: %w", j, n, ErrDeadlineExceeded)
		}
	}
	return f, nil
}

// N returns the dimension.
func (f *SparseLU) N() int { return f.n }

// NNZ returns the number of stored factor entries (L strict + U strict +
// diagonal).
func (f *SparseLU) NNZ() int { return len(f.li) + len(f.ui) + f.n }

// Solve solves A x = b in place on b via column-oriented forward and
// backward substitution.
func (f *SparseLU) Solve(b []float64) {
	if len(b) != f.n {
		panic(fmt.Sprintf("lu: SparseLU.Solve length %d want %d", len(b), f.n))
	}
	// Forward: L y = b, unit diagonal.
	for j := 0; j < f.n; j++ {
		xj := b[j]
		if xj == 0 {
			continue
		}
		for p := f.lp[j]; p < f.lp[j+1]; p++ {
			b[f.li[p]] -= f.lx[p] * xj
		}
	}
	// Backward: U x = y.
	for j := f.n - 1; j >= 0; j-- {
		b[j] /= f.diag[j]
		xj := b[j]
		if xj == 0 {
			continue
		}
		for p := f.up[j]; p < f.up[j+1]; p++ {
			b[f.ui[p]] -= f.ux[p] * xj
		}
	}
}

// MemoryBytes reports the storage footprint of the factors.
func (f *SparseLU) MemoryBytes() int64 {
	entries := int64(len(f.li) + len(f.ui))
	return entries*16 + int64(len(f.lp)+len(f.up))*8 + int64(f.n)*8
}

// Factors returns L (with unit diagonal) and U as CSR matrices, for tests.
func (f *SparseLU) Factors() (l, u *sparse.CSR) {
	lc := sparse.NewCOO(f.n, f.n)
	uc := sparse.NewCOO(f.n, f.n)
	for j := 0; j < f.n; j++ {
		lc.Add(j, j, 1)
		uc.Add(j, j, f.diag[j])
		for p := f.lp[j]; p < f.lp[j+1]; p++ {
			lc.Add(f.li[p], j, f.lx[p])
		}
		for p := f.up[j]; p < f.up[j+1]; p++ {
			uc.Add(f.ui[p], j, f.ux[p])
		}
	}
	return lc.ToCSR(), uc.ToCSR()
}
