package lu

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestFactorSparseDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	a := randDiagDominantCSR(rng, 600, 0.05)
	// An already-expired deadline must abort with the deadline error.
	_, err := FactorSparseDeadline(a, 0, time.Now().Add(-time.Second))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", err)
	}
	// A generous deadline must succeed.
	f, err := FactorSparseDeadline(a, 0, time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 600 {
		t.Fatal("factorization incomplete")
	}
}
