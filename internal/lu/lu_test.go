package lu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bepi/internal/sparse"
)

// randDiagDominantCSR builds a random sparse strictly diagonally dominant
// matrix: the class every factorization in this package targets.
func randDiagDominantCSR(rng *rand.Rand, n int, density float64) *sparse.CSR {
	coo := sparse.NewCOO(n, n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				v := rng.NormFloat64()
				coo.Add(i, j, v)
				rowAbs[i] += math.Abs(v)
			}
		}
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, rowAbs[i]+1+rng.Float64())
	}
	return coo.ToCSR()
}

// randBlockDiag builds a block-diagonal diagonally dominant matrix with the
// returned block sizes.
func randBlockDiag(rng *rand.Rand, nblocks, maxBlock int) (*sparse.CSR, []int) {
	sizes := make([]int, nblocks)
	total := 0
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(maxBlock)
		total += sizes[i]
	}
	coo := sparse.NewCOO(total, total)
	off := 0
	for _, s := range sizes {
		rowAbs := make([]float64, s)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				if i != j && rng.Float64() < 0.5 {
					v := rng.NormFloat64()
					coo.Add(off+i, off+j, v)
					rowAbs[i] += math.Abs(v)
				}
			}
		}
		for i := 0; i < s; i++ {
			coo.Add(off+i, off+i, rowAbs[i]+1)
		}
		off += s
	}
	return coo.ToCSR(), sizes
}

func TestBlockLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		m, sizes := randBlockDiag(rng, 1+rng.Intn(6), 8)
		f, err := FactorBlockDiag(m, sizes)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		n := m.Rows()
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		m.MulVec(b, xTrue)
		f.Solve(b)
		for i := range b {
			if math.Abs(b[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v want %v", trial, i, b[i], xTrue[i])
			}
		}
	}
}

func TestBlockLURejectsOffBlockEntry(t *testing.T) {
	coo := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		coo.Add(i, i, 2)
	}
	coo.Add(0, 3, 1) // crosses the claimed 2+2 block structure
	if _, err := FactorBlockDiag(coo.ToCSR(), []int{2, 2}); err == nil {
		t.Fatal("expected error for off-block entry")
	}
}

func TestBlockLURejectsBadSizes(t *testing.T) {
	m := sparse.Identity(4)
	if _, err := FactorBlockDiag(m, []int{2, 1}); err == nil {
		t.Fatal("expected error for sizes not summing to n")
	}
	if _, err := FactorBlockDiag(m, []int{2, 0, 2}); err == nil {
		t.Fatal("expected error for zero-size block")
	}
	if _, err := FactorBlockDiag(sparse.Zero(2, 3), []int{2}); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestBlockLUBlockOf(t *testing.T) {
	m := sparse.Identity(6)
	f, err := FactorBlockDiag(m, []int{2, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	wants := []int{0, 0, 1, 1, 1, 2}
	for i, w := range wants {
		if got := f.BlockOf(i); got != w {
			t.Fatalf("BlockOf(%d) = %d want %d", i, got, w)
		}
	}
	if f.MaxBlockSize() != 3 || f.NumBlocks() != 3 || f.N() != 6 {
		t.Fatal("block metadata wrong")
	}
}

func TestBlockLUSolveSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, sizes := randBlockDiag(rng, 5, 6)
	f, err := FactorBlockDiag(m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	n := m.Rows()
	// Sparse RHS touching two blocks.
	idx := []int{0, n - 1}
	vals := []float64{1.5, -2.5}
	got := make([]float64, n)
	scratch := make([]float64, f.MaxBlockSize())
	f.SolveSparse(idx, vals, scratch, func(row int, v float64) { got[row] = v })
	// Reference: dense solve.
	b := make([]float64, n)
	b[0], b[n-1] = 1.5, -2.5
	f.Solve(b)
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-10 {
			t.Fatalf("SolveSparse[%d] = %v want %v", i, got[i], b[i])
		}
	}
}

func TestILU0ExactOnFullPattern(t *testing.T) {
	// When A is dense (full pattern), ILU(0) equals exact LU so L·U == A.
	rng := rand.New(rand.NewSource(3))
	a := randDiagDominantCSR(rng, 12, 1.0)
	f, err := FactorILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Product().AlmostEqual(a, 1e-8) {
		t.Fatal("dense-pattern ILU(0) should reproduce A exactly")
	}
}

func TestILU0OnPatternApproximation(t *testing.T) {
	// For sparse A, (L·U)ij == Aij on the pattern of A.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		a := randDiagDominantCSR(rng, 30, 0.15)
		f, err := FactorILU0(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prod := f.Product()
		col := a.ColIdx()
		val := a.Values()
		for i := 0; i < a.Rows(); i++ {
			s, e := a.RowRange(i)
			for p := s; p < e; p++ {
				j := col[p]
				if d := math.Abs(prod.At(i, j) - val[p]); d > 1e-8 {
					t.Fatalf("trial %d: (LU)[%d][%d] off pattern value by %v", trial, i, j, d)
				}
			}
		}
	}
}

func TestILU0ApplyIsInverseOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDiagDominantCSR(rng, 25, 0.2)
	f, err := FactorILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := f.Product()
	x := make([]float64, 25)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, 25)
	prod.MulVec(b, x)
	got := make([]float64, 25)
	f.Apply(got, b)
	for i := range got {
		if math.Abs(got[i]-x[i]) > 1e-8 {
			t.Fatalf("Apply((LU)x)[%d] = %v want %v", i, got[i], x[i])
		}
	}
	// In-place application must give the same answer.
	f.Apply(b, b)
	for i := range b {
		if math.Abs(b[i]-x[i]) > 1e-8 {
			t.Fatal("in-place Apply differs")
		}
	}
}

func TestILU0RejectsMissingDiagonal(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	if _, err := FactorILU0(coo.ToCSR()); err == nil {
		t.Fatal("expected error for missing diagonal")
	}
}

func TestSparseLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(40)
		a := randDiagDominantCSR(rng, n, 0.2)
		f, err := FactorSparse(a, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, xTrue)
		f.Solve(b)
		for i := range b {
			if math.Abs(b[i]-xTrue[i]) > 1e-7 {
				t.Fatalf("trial %d: x[%d] = %v want %v", trial, i, b[i], xTrue[i])
			}
		}
	}
}

func TestSparseLUFactorsReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(25)
		a := randDiagDominantCSR(rng, n, 0.25)
		f, err := FactorSparse(a, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		l, u := f.Factors()
		if !l.Mul(u).AlmostEqual(a, 1e-8) {
			t.Fatalf("trial %d: L·U != A", trial)
		}
	}
}

func TestSparseLUBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randDiagDominantCSR(rng, 50, 0.3)
	if _, err := FactorSparse(a, 10); err == nil {
		t.Fatal("expected budget error")
	} else if !isBudget(err) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
}

func isBudget(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == ErrBudgetExceeded {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// Property: SparseLU solves random diagonally dominant systems.
func TestQuickSparseLURoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		a := randDiagDominantCSR(r, n, 0.3)
		fac, err := FactorSparse(a, 0)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, x)
		fac.Solve(b)
		for i := range b {
			if math.Abs(b[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ILU memory footprint matches the input matrix footprint
// (Theorem 3's storage argument) plus the diagonal index and the
// level-schedule arrays retained for parallel sweeps.
func TestQuickILUMemoryMatchesPattern(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(25)
		a := randDiagDominantCSR(r, n, 0.3)
		fac, err := FactorILU0(a)
		if err != nil {
			return false
		}
		// Same nnz as A (split across the L and U structures, which adds a
		// second row-pointer array), plus two int32 level schedules (an
		// order entry per row and levels+1 bounds per sweep).
		fwd, bwd := fac.Levels()
		sched := int64(4 * (2*n + (fwd + 1) + (bwd + 1)))
		return fac.MemoryBytes() == a.MemoryBytes()+int64(n+1)*8+sched
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
