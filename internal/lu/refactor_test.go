package lu

import (
	"math/rand"
	"testing"

	"bepi/internal/dense"
	"bepi/internal/sparse"
)

// blockDiagCSR builds a strictly diagonally dominant block-diagonal matrix
// with the given block sizes.
func blockDiagCSR(rng *rand.Rand, sizes []int) *sparse.CSR {
	n := 0
	for _, s := range sizes {
		n += s
	}
	a := sparse.NewCOO(n, n)
	lo := 0
	for _, s := range sizes {
		for i := lo; i < lo+s; i++ {
			a.Add(i, i, 4+rng.Float64())
			for j := lo; j < lo+s; j++ {
				if j != i && rng.Float64() < 0.5 {
					a.Add(i, j, rng.NormFloat64())
				}
			}
		}
		lo += s
	}
	return a.ToCSR()
}

// denseBlock extracts block b of a block-diagonal CSR as an unfactored dense
// matrix, the form RefactorBlocks consumes.
func denseBlock(m *sparse.CSR, lo, hi int) *dense.Matrix {
	blk := dense.New(hi-lo, hi-lo)
	for i := lo; i < hi; i++ {
		s, e := m.RowRange(i)
		for p := s; p < e; p++ {
			blk.Set(i-lo, m.ColIdx()[p]-lo, m.Values()[p])
		}
	}
	return blk
}

// TestRefactorBlocksDeltaBitIdentical checks that refactoring only the
// changed blocks of a perturbed block-diagonal matrix yields factors
// bit-identical to a from-scratch FactorBlockDiag of the perturbed matrix,
// and that untouched factors are shared, not copied.
func TestRefactorBlocksDeltaBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sizes := []int{3, 5, 2, 7, 4}
	m := blockDiagCSR(rng, sizes)
	base, err := FactorBlockDiag(m, sizes)
	if err != nil {
		t.Fatal(err)
	}

	// Perturb blocks 1 and 3 (stay dominant).
	m2 := m.Clone()
	for _, b := range []int{1, 3} {
		lo, hi := base.BlockRange(b)
		for i := lo; i < hi; i++ {
			s, e := m2.RowRange(i)
			for p := s; p < e; p++ {
				if m2.ColIdx()[p] == i {
					m2.Values()[p] += 1
				}
			}
		}
	}

	patched, err := base.RefactorBlocks(map[int]*dense.Matrix{
		1: denseBlock(m2, base.offsets[1], base.offsets[2]),
		3: denseBlock(m2, base.offsets[3], base.offsets[4]),
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := FactorBlockDiag(m2, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for b := range sizes {
		pf, ff := patched.factors[b], full.factors[b]
		if len(pf.Data) != len(ff.Data) {
			t.Fatalf("block %d factor size mismatch", b)
		}
		for k := range pf.Data {
			if pf.Data[k] != ff.Data[k] {
				t.Fatalf("block %d factor differs at %d: %v vs %v", b, k, pf.Data[k], ff.Data[k])
			}
		}
	}
	for _, b := range []int{0, 2, 4} {
		if patched.factors[b] != base.factors[b] {
			t.Fatalf("untouched block %d was copied, want shared", b)
		}
	}
	for _, b := range []int{1, 3} {
		if patched.factors[b] == base.factors[b] {
			t.Fatalf("touched block %d still shared with base", b)
		}
	}
	if &patched.offsets[0] != &base.offsets[0] {
		t.Fatal("offsets slice not shared")
	}
}

// TestRefactorBlocksDeltaErrors checks the out-of-range, shape-mismatch and
// singular-block error paths, and that a failed refactor leaves the base
// factorization untouched.
func TestRefactorBlocksDeltaErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sizes := []int{2, 3}
	m := blockDiagCSR(rng, sizes)
	base, err := FactorBlockDiag(m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.RefactorBlocks(map[int]*dense.Matrix{5: dense.New(1, 1)}); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	if _, err := base.RefactorBlocks(map[int]*dense.Matrix{0: dense.New(3, 3)}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := base.RefactorBlocks(map[int]*dense.Matrix{0: dense.New(2, 2)}); err == nil {
		t.Fatal("singular block accepted")
	}
	// Base must still solve correctly after the failures above.
	x := []float64{1, 2, 3, 4, 5}
	base.Solve(x)
	y := make([]float64, 5)
	m.MulVec(y, x)
	for i, want := range []float64{1, 2, 3, 4, 5} {
		if d := y[i] - want; d > 1e-9 || d < -1e-9 {
			t.Fatalf("base corrupted: residual %v at %d", d, i)
		}
	}
}

// randSparseCSR builds a random square matrix with a full diagonal — the
// shape FactorILU0 accepts — including occasional explicit zeros, which the
// Schur build's cancellation produces and the ILU(0) pattern must keep.
func randSparseCSR(rng *rand.Rand, n int, density float64) *sparse.CSR {
	a := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, 3+rng.Float64())
		for j := 0; j < n; j++ {
			if j != i && rng.Float64() < density {
				v := rng.NormFloat64()
				if rng.Float64() < 0.05 {
					v = 0
				}
				a.Add(i, j, v)
			}
		}
	}
	return a.ToCSR()
}

// iluFactorsEqual compares two ILU factorizations entry-bitwise.
func iluFactorsEqual(t *testing.T, a, b *ILU) {
	t.Helper()
	for _, f := range []struct {
		name string
		x, y *triFactor
	}{{"L", &a.l, &b.l}, {"U", &a.u, &b.u}} {
		if f.x.nnz() != f.y.nnz() {
			t.Fatalf("%s nnz %d != %d", f.name, f.x.nnz(), f.y.nnz())
		}
		if len(f.x.order) != len(f.y.order) {
			t.Fatalf("%s rows %d != %d", f.name, len(f.x.order), len(f.y.order))
		}
		for k := range f.x.order {
			if f.x.order[k] != f.y.order[k] {
				t.Fatalf("%s order[%d] = %d != %d", f.name, k, f.x.order[k], f.y.order[k])
			}
			xs, xe := f.x.rowSpan(k)
			ys, ye := f.y.rowSpan(k)
			if xe-xs != ye-ys {
				t.Fatalf("%s row %d length %d != %d", f.name, k, xe-xs, ye-ys)
			}
			for p := 0; p < xe-xs; p++ {
				if f.x.colAt(xs+p) != f.y.colAt(ys+p) {
					t.Fatalf("%s row %d col %d != %d", f.name, k, f.x.colAt(xs+p), f.y.colAt(ys+p))
				}
				if f.x.val[xs+p] != f.y.val[ys+p] || (f.x.val[xs+p] == 0) != (f.y.val[ys+p] == 0) {
					t.Fatalf("%s row %d entry %d: %v != %v", f.name, k, p, f.x.val[xs+p], f.y.val[ys+p])
				}
			}
		}
	}
}

// TestRefactorRowsDeltaBitIdentical perturbs a few rows' values (same
// pattern) and checks the partial refactorization is bit-identical to a
// from-scratch FactorILU0 of the perturbed matrix.
func TestRefactorRowsDeltaBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 7, 40, 120} {
		m := randSparseCSR(rng, n, 0.12)
		base, err := FactorILU0(m)
		if err != nil {
			t.Fatal(err)
		}
		// Perturb the values of ~1/8 of the rows in place on a clone.
		m2 := m.Clone()
		changed := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Float64() > 0.125 && i != n/2 {
				continue
			}
			changed[i] = true
			s, e := m2.RowRange(i)
			for p := s; p < e; p++ {
				if m2.ColIdx()[p] != i {
					m2.Values()[p] += rng.NormFloat64()
				}
			}
		}
		want, err := FactorILU0(m2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := base.RefactorRows(m2, changed)
		if err != nil {
			t.Fatal(err)
		}
		iluFactorsEqual(t, want, got)

		// The old factor still matches the original matrix (untouched).
		again, err := FactorILU0(m)
		if err != nil {
			t.Fatal(err)
		}
		iluFactorsEqual(t, again, base)
	}
}

// TestRefactorRowsPatternChange splices entries in and out of a row and
// checks the pattern-mismatch insurance re-eliminates it even with a stale
// (all-false) changed mask, via the dirty closure.
func TestRefactorRowsPatternChange(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 60
	m := randSparseCSR(rng, n, 0.1)
	base, err := FactorILU0(m)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the first off-diagonal entry of row n/3 and add one to row n/2.
	var edits []sparse.Edit
	i := n / 3
	s, e := m.RowRange(i)
	for p := s; p < e; p++ {
		if j := m.ColIdx()[p]; j != i {
			edits = append(edits, sparse.Edit{Row: i, Col: j, Delete: true})
			break
		}
	}
	k := n / 2
	for j := 0; j < n; j++ {
		if j != k && !hasEntry(m, k, j) {
			edits = append(edits, sparse.Edit{Row: k, Col: j, Val: 1.5})
			break
		}
	}
	if len(edits) != 2 {
		t.Fatalf("expected 2 edits, built %d", len(edits))
	}
	m2 := m.WithEdits(edits)
	want, err := FactorILU0(m2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := base.RefactorRows(m2, make([]bool, n))
	if err != nil {
		t.Fatal(err)
	}
	iluFactorsEqual(t, want, got)
}

func hasEntry(m *sparse.CSR, i, j int) bool {
	s, e := m.RowRange(i)
	for p := s; p < e; p++ {
		if m.ColIdx()[p] == j {
			return true
		}
	}
	return false
}

// TestRefactorRowsCompactBase checks the partial refactorization reads a
// compacted base factor correctly (the default engine layout).
func TestRefactorRowsCompactBase(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 50
	m := randSparseCSR(rng, n, 0.15)
	base, err := FactorILU0(m)
	if err != nil {
		t.Fatal(err)
	}
	base.Compact()
	m2 := m.Clone()
	changed := make([]bool, n)
	changed[n/4] = true
	s, e := m2.RowRange(n / 4)
	for p := s; p < e; p++ {
		if m2.ColIdx()[p] != n/4 {
			m2.Values()[p] *= 1.75
		}
	}
	want, err := FactorILU0(m2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := base.RefactorRows(m2, changed)
	if err != nil {
		t.Fatal(err)
	}
	iluFactorsEqual(t, want, got)
}
