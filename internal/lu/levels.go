package lu

import (
	"math"

	"bepi/internal/par"
	"bepi/internal/sparse"
)

// Level-scheduled triangular solves. The forward sweep L·y = b processes
// row i after every row j < i in i's pattern; the backward sweep U·x = y
// after every j > i. Assigning each row the level
//
//	level[i] = 1 + max(level[j] : j in deps(i))   (0 with no deps)
//
// makes all rows of one level mutually independent: they can run in any
// order, and in parallel, while levels execute in sequence. Each row's own
// accumulation loop is the unchanged serial loop, so the leveled sweep is
// bit-identical to the serial sweep at any worker count.
//
// The factors are stored physically in level order (a triFactor per
// sweep): row k of the storage is original row order[k], and a level is a
// contiguous row range [bounds[l], bounds[l+1]). Both the serial sweep
// (k = 0..n-1, which respects dependencies by construction) and every
// parallel chunk therefore stream rowPtr/col/val contiguously — the layout
// is what makes the memory-bound sweep scale, not just the goroutines.
//
// Block-diagonal LU needs no schedule: every block is level 0 by
// construction (no cross-block entries), which is exactly the partition
// BlockLU.SolvePool already executes on the pool.

// iluLevelMinNNZ is the per-level stored-entry count below which a level's
// rows run inline on the sweeping goroutine: under it, chunk handoff costs
// more than the rows. Narrow levels are the serial tail of skewed
// dependency DAGs.
const iluLevelMinNNZ = 1 << 13

// iluParallelMinNNZ is the factor size below which Apply stays serial even
// with a pool attached, mirroring sparse.ParallelMinNNZ.
const iluParallelMinNNZ = sparse.ParallelMinNNZ

// triFactor is one triangular factor in level-sorted row-major storage.
// Storage row k holds original row order[k]; bounds delimits levels in
// k-space. For the upper factor each storage row leads with its diagonal
// entry (columns are ascending and the diagonal is the smallest column of
// the upper part). Exactly one of the (rowPtr, col) / (rowPtr32, col32)
// index pairs is non-nil; Compact switches to the narrow pair.
type triFactor struct {
	order  []int32
	bounds []int32
	val    []float64

	rowPtr []int
	col    []int

	rowPtr32 []int32
	col32    []uint32
}

// levels returns the number of dependency levels.
func (t *triFactor) levels() int {
	if len(t.bounds) == 0 {
		return 0
	}
	return len(t.bounds) - 1
}

func (t *triFactor) nnz() int { return len(t.val) }

// rowSpan returns storage row k's half-open entry range.
func (t *triFactor) rowSpan(k int) (int, int) {
	if t.col32 != nil {
		return int(t.rowPtr32[k]), int(t.rowPtr32[k+1])
	}
	return t.rowPtr[k], t.rowPtr[k+1]
}

func (t *triFactor) colAt(p int) int {
	if t.col32 != nil {
		return int(t.col32[p])
	}
	return t.col[p]
}

// compact narrows the index arrays to int32/uint32, releasing the wide
// ones. No-op when already narrow or out of range.
func (t *triFactor) compact(n int) {
	if t.col32 != nil || len(t.val) > math.MaxInt32 || int64(n) >= maxUint32 {
		return
	}
	t.rowPtr32 = make([]int32, len(t.rowPtr))
	for i, p := range t.rowPtr {
		t.rowPtr32[i] = int32(p)
	}
	t.col32 = make([]uint32, len(t.col))
	for i, j := range t.col {
		t.col32[i] = uint32(j)
	}
	t.rowPtr, t.col = nil, nil
}

const maxUint32 = int64(1) << 32

// memoryBytes is the factor's retained footprint at its current width.
func (t *triFactor) memoryBytes() int64 {
	b := int64(len(t.val))*8 + int64(len(t.order)+len(t.bounds))*4
	if t.col32 != nil {
		return b + int64(len(t.col32))*4 + int64(len(t.rowPtr32))*4
	}
	return b + int64(len(t.col))*8 + int64(len(t.rowPtr))*8
}

// buildSchedule counting-sorts rows by the given per-row levels. Rows stay
// in ascending index order within each level (the counting sort is stable),
// keeping the layout deterministic in the matrix pattern alone.
func buildSchedule(level []int32, maxLevel int32) (order, bounds []int32) {
	n := len(level)
	bounds = make([]int32, maxLevel+2)
	for _, l := range level {
		bounds[l+1]++
	}
	for l := int32(1); l <= maxLevel+1; l++ {
		bounds[l] += bounds[l-1]
	}
	order = make([]int32, n)
	next := make([]int32, maxLevel+1)
	copy(next, bounds[:maxLevel+1])
	for i := 0; i < n; i++ {
		l := level[i]
		order[next[l]] = int32(i)
		next[l]++
	}
	return order, bounds
}

// buildTriFactors splits the packed in-place factorization (pattern of A,
// L's strict lower part below the diagonal, U from the diagonal up) into
// the two level-ordered triFactors. Columns are sorted within rows, so
// row i's strict-lower entries are exactly [rowPtr[i], diagPos[i]) and its
// upper part [diagPos[i], rowPtr[i+1]).
func buildTriFactors(n int, rowPtr, col []int, val []float64, diagPos []int) (l, u triFactor) {
	// Forward levels over the strict lower pattern.
	level := make([]int32, n)
	var maxL int32
	for i := 0; i < n; i++ {
		var lv int32
		for p := rowPtr[i]; p < diagPos[i]; p++ {
			if x := level[col[p]] + 1; x > lv {
				lv = x
			}
		}
		level[i] = lv
		if lv > maxL {
			maxL = lv
		}
	}
	l.order, l.bounds = buildSchedule(level, maxL)

	// Backward levels over the strict upper pattern.
	for i := range level {
		level[i] = 0
	}
	maxL = 0
	for i := n - 1; i >= 0; i-- {
		var lv int32
		for p := diagPos[i] + 1; p < rowPtr[i+1]; p++ {
			if x := level[col[p]] + 1; x > lv {
				lv = x
			}
		}
		level[i] = lv
		if lv > maxL {
			maxL = lv
		}
	}
	u.order, u.bounds = buildSchedule(level, maxL)

	// Gather the entries in level order.
	var nnzL int
	for i := 0; i < n; i++ {
		nnzL += diagPos[i] - rowPtr[i]
	}
	l.rowPtr = make([]int, n+1)
	l.col = make([]int, 0, nnzL)
	l.val = make([]float64, 0, nnzL)
	for k, i32 := range l.order {
		i := int(i32)
		for p := rowPtr[i]; p < diagPos[i]; p++ {
			l.col = append(l.col, col[p])
			l.val = append(l.val, val[p])
		}
		l.rowPtr[k+1] = len(l.col)
	}

	nnzU := len(val) - nnzL
	u.rowPtr = make([]int, n+1)
	u.col = make([]int, 0, nnzU)
	u.val = make([]float64, 0, nnzU)
	for k, i32 := range u.order {
		i := int(i32)
		for p := diagPos[i]; p < rowPtr[i+1]; p++ {
			u.col = append(u.col, col[p])
			u.val = append(u.val, val[p])
		}
		u.rowPtr[k+1] = len(u.col)
	}
	return l, u
}

// The sweep kernels are generic over the index width so the wide (int) and
// compact (int32/uint32, after ILU.Compact) layouts share one loop body.
// Storage rows [lo, hi) must not depend on one another (one level, or a
// serial full sweep where the level order itself guarantees it).

// sweepLower applies unit-lower forward substitution to storage rows
// [lo, hi): dst[order[k]] -= Σ L[k,p]·dst[col[p]]. Rows are sliced so the
// inner loop ranges over the row (bounds-check free), like the SpMV
// kernels.
func sweepLower[P int | int32, C int | uint32](order []int32, rowPtr []P, col []C, val, dst []float64, lo, hi int) {
	for k := lo; k < hi; k++ {
		rlo, rhi := int(rowPtr[k]), int(rowPtr[k+1])
		cols := col[rlo:rhi]
		vals := val[rlo:rhi]
		s := dst[order[k]]
		for p, j := range cols {
			s -= vals[p] * dst[j]
		}
		dst[order[k]] = s
	}
}

// sweepUpper applies upper back substitution to storage rows [lo, hi); each
// storage row leads with its diagonal entry.
func sweepUpper[P int | int32, C int | uint32](order []int32, rowPtr []P, col []C, val, dst []float64, lo, hi int) {
	for k := lo; k < hi; k++ {
		rlo, rhi := int(rowPtr[k]), int(rowPtr[k+1])
		cols := col[rlo+1 : rhi]
		vals := val[rlo+1 : rhi]
		s := dst[order[k]]
		for p, j := range cols {
			s -= vals[p] * dst[j]
		}
		dst[order[k]] = s / val[rlo]
	}
}

// runLevels walks the factor level by level, running each level's rows
// through sweep(lo, hi) in storage-row space. Levels of at least
// iluLevelMinNNZ entries partition across the pool with nnz-balanced
// chunks; consecutive narrower levels merge into a single serial sweep call
// (legal because storage order within the run is a valid dependency order),
// so a factor with no wide levels degenerates to exactly the serial sweep.
func (t *triFactor) runLevels(pool *par.Pool, sweep func(lo, hi int)) {
	workers := pool.Workers()
	n := len(t.order)
	runStart := 0 // start of the pending serial run of narrow levels
	for l := 0; l+1 < len(t.bounds); l++ {
		lo, hi := int(t.bounds[l]), int(t.bounds[l+1])
		var levelNNZ int
		if t.col32 != nil {
			levelNNZ = int(t.rowPtr32[hi] - t.rowPtr32[lo])
		} else {
			levelNNZ = t.rowPtr[hi] - t.rowPtr[lo]
		}
		if workers <= 1 || levelNNZ < iluLevelMinNNZ {
			continue
		}
		if lo > runStart {
			sweep(runStart, lo)
		}
		var chunks []int
		if t.col32 != nil {
			chunks = par.BoundsByPrefixOf(t.rowPtr32[lo:hi+1], workers)
		} else {
			chunks = par.BoundsByPrefixOf(t.rowPtr[lo:hi+1], workers)
		}
		pool.ForBounds(chunks, func(_, clo, chi int) { sweep(lo+clo, lo+chi) })
		runStart = hi
	}
	if n > runStart {
		sweep(runStart, n)
	}
}
