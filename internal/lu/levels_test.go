package lu

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"bepi/internal/gen"
	"bepi/internal/par"
	"bepi/internal/sparse"
)

// randSparseDiag builds a random square matrix with a guaranteed dominant
// diagonal and roughly nnzPerRow off-diagonal entries per row.
func randSparseDiag(n, nnzPerRow int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4+rng.Float64())
		for e := 0; e < nnzPerRow; e++ {
			if j := rng.Intn(n); j != i {
				coo.Add(i, j, rng.NormFloat64()*0.3)
			}
		}
	}
	return coo.ToCSR()
}

// TestILULevelsRespectDependencies checks the defining schedule property:
// every strict-lower (resp. strict-upper) dependency of a row sits in a
// strictly earlier level of the forward (resp. backward) schedule.
func TestILULevelsRespectDependencies(t *testing.T) {
	a := randSparseDiag(500, 6, 1)
	f, err := FactorILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	levelOf := func(tf *triFactor) []int {
		lv := make([]int, f.n)
		for l := 0; l+1 < len(tf.bounds); l++ {
			for k := tf.bounds[l]; k < tf.bounds[l+1]; k++ {
				lv[tf.order[k]] = l
			}
		}
		return lv
	}
	fl := levelOf(&f.l)
	bl := levelOf(&f.u)
	for k := 0; k < f.n; k++ {
		i := int(f.l.order[k])
		start, end := f.l.rowSpan(k)
		for p := start; p < end; p++ {
			j := f.l.colAt(p)
			if j >= i {
				t.Fatalf("L storage row %d holds non-lower column %d (row %d)", k, j, i)
			}
			if fl[j] >= fl[i] {
				t.Fatalf("forward: row %d (level %d) depends on row %d (level %d)", i, fl[i], j, fl[j])
			}
		}
	}
	for k := 0; k < f.n; k++ {
		i := int(f.u.order[k])
		start, end := f.u.rowSpan(k)
		if start >= end || f.u.colAt(start) != i {
			t.Fatalf("U storage row %d does not lead with its diagonal", k)
		}
		for p := start + 1; p < end; p++ {
			j := f.u.colAt(p)
			if j <= i {
				t.Fatalf("U storage row %d holds non-upper column %d (row %d)", k, j, i)
			}
			if bl[j] >= bl[i] {
				t.Fatalf("backward: row %d (level %d) depends on row %d (level %d)", i, bl[i], j, bl[j])
			}
		}
	}
	// A triangular-free diagonal matrix collapses to one level.
	d, err := FactorILU0(sparse.Identity(10))
	if err != nil {
		t.Fatal(err)
	}
	if fwd, bwd := d.Levels(); fwd != 1 || bwd != 1 {
		t.Fatalf("identity levels = %d/%d want 1/1", fwd, bwd)
	}
}

// TestParallelILUApplyBitIdentical runs the level-scheduled Apply at
// several worker counts, wide and compacted, against the serial result
// under Float64bits equality — the same contract as the SpMV kernels.
func TestParallelILUApplyBitIdentical(t *testing.T) {
	// Big enough to clear iluParallelMinNNZ so the leveled path engages.
	a := randSparseDiag(6000, 8, 2)
	f, err := FactorILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.NNZ() < iluParallelMinNNZ {
		t.Fatalf("test system too small: nnz=%d < %d", f.NNZ(), iluParallelMinNNZ)
	}
	rng := rand.New(rand.NewSource(3))
	src := make([]float64, f.n)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	want := make([]float64, f.n)
	f.Apply(want, src)

	for _, workers := range []int{2, 4, 8} {
		for _, compact := range []bool{false, true} {
			g, err := FactorILU0(a)
			if err != nil {
				t.Fatal(err)
			}
			if compact {
				g.Compact()
				if !g.Compacted() {
					t.Fatal("Compact did not narrow")
				}
			}
			g.SetPool(par.NewPool(workers))
			got := make([]float64, g.n)
			g.Apply(got, src)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("workers=%d compact=%v: dst[%d] = %v want %v", workers, compact, i, got[i], want[i])
				}
			}
			// Aliased dst/src must work on every path too.
			alias := append([]float64(nil), src...)
			g.Apply(alias, alias)
			for i := range alias {
				if math.Float64bits(alias[i]) != math.Float64bits(want[i]) {
					t.Fatalf("workers=%d compact=%v aliased: dst[%d] differs", workers, compact, i)
				}
			}
		}
	}
}

// TestILUCompactApplySerialBitIdentical pins the narrowed-index serial
// sweeps against the wide ones on a small system (below the parallel
// threshold, so both run serially).
func TestILUCompactApplySerialBitIdentical(t *testing.T) {
	a := randSparseDiag(300, 5, 4)
	wide, err := FactorILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := FactorILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	narrow.Compact()
	src := make([]float64, wide.n)
	for i := range src {
		src[i] = float64(i%17) - 8.5
	}
	want := make([]float64, wide.n)
	wide.Apply(want, src)
	got := make([]float64, narrow.n)
	narrow.Apply(got, src)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("compact Apply differs at %d", i)
		}
	}
	// Split must still reconstruct the factors after compaction.
	lw, uw := wide.Split()
	ln, un := narrow.Split()
	if !lw.Equal(ln) || !uw.Equal(un) {
		t.Fatal("Split changed after Compact")
	}
}

// TestILUMemoryBytesPinned pins MemoryBytes against manually computed
// sizes, wide and compacted — the accounting the serving layer's memory
// budget relies on.
func TestILUMemoryBytesPinned(t *testing.T) {
	a := randSparseDiag(200, 4, 5)
	f, err := FactorILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	n, nnz := int64(f.n), int64(f.NNZ())
	if nnz != int64(a.NNZ()) {
		t.Fatalf("factor nnz %d != matrix nnz %d", nnz, a.NNZ())
	}
	fwd, bwd := f.Levels()
	// Level order/boundary arrays, int32 each, one order entry per row per
	// sweep plus levels+1 bounds per sweep.
	sched := 4 * (2*n + int64(fwd+1) + int64(bwd+1))

	wide := nnz*8 + // values (split across L and U)
		nnz*8 + // columns
		2*(n+1)*8 + // two row-pointer arrays
		sched
	if got := f.MemoryBytes(); got != wide {
		t.Fatalf("wide MemoryBytes = %d want %d", got, wide)
	}

	f.Compact()
	compact := nnz*8 + // values stay float64
		nnz*4 + // uint32 columns
		2*(n+1)*4 + // int32 row pointers
		sched
	if got := f.MemoryBytes(); got != compact {
		t.Fatalf("compact MemoryBytes = %d want %d", got, compact)
	}
	if 2*(compact-sched-nnz*8) != wide-sched-nnz*8 {
		t.Fatalf("compaction did not halve index bytes: wide=%d compact=%d", wide, compact)
	}
}

// iluBench is the shared fixture for BenchmarkILUApplyLevels: ILU(0) of
// I − 0.85·Ā on the stock RMAT bench graph (the matrix shape GMRES
// preconditioning sees), built on first benchmark use only.
var iluBench struct {
	once sync.Once
	a    *sparse.CSR
	src  []float64
	dst  []float64
}

func iluBenchSetup() {
	iluBench.once.Do(func() {
		g := gen.RMAT(gen.DefaultRMAT(16, 16, 1)) // 65_536 nodes, ~1M edges
		adj := g.Adjacency().RowNormalize().Transpose()
		iluBench.a = sparse.Identity(g.N()).AddScaled(adj, -0.85)
		rng := rand.New(rand.NewSource(7))
		iluBench.src = make([]float64, g.N())
		for i := range iluBench.src {
			iluBench.src[i] = rng.NormFloat64()
		}
		iluBench.dst = make([]float64, g.N())
	})
}

// packedApply reconstructs the pre-level-scheduling implementation — one
// packed CSR holding L's strict lower part and U, swept serially in row
// order with the j >= i branch in the inner loop — as the benchmark
// baseline the leveled Apply is measured against.
func packedApply(f *ILU) func(dst, src []float64) {
	n := f.n
	invL := make([]int, n)
	for k, i := range f.l.order {
		invL[int(i)] = k
	}
	invU := make([]int, n)
	for k, i := range f.u.order {
		invU[int(i)] = k
	}
	rowPtr := make([]int, n+1)
	diagPos := make([]int, n)
	col := make([]int, 0, f.NNZ())
	val := make([]float64, 0, f.NNZ())
	for i := 0; i < n; i++ {
		lo, hi := f.l.rowSpan(invL[i])
		for p := lo; p < hi; p++ {
			col = append(col, f.l.colAt(p))
			val = append(val, f.l.val[p])
		}
		diagPos[i] = len(col)
		lo, hi = f.u.rowSpan(invU[i])
		for p := lo; p < hi; p++ {
			col = append(col, f.u.colAt(p))
			val = append(val, f.u.val[p])
		}
		rowPtr[i+1] = len(col)
	}
	return func(dst, src []float64) {
		copy(dst, src)
		for i := 0; i < n; i++ {
			s := dst[i]
			for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
				j := col[p]
				if j >= i {
					break
				}
				s -= val[p] * dst[j]
			}
			dst[i] = s
		}
		for i := n - 1; i >= 0; i-- {
			s := dst[i]
			for p := diagPos[i] + 1; p < rowPtr[i+1]; p++ {
				s -= val[p] * dst[col[p]]
			}
			dst[i] = s / val[diagPos[i]]
		}
	}
}

// BenchmarkILUApplyLevels measures the preconditioner application on the
// stock RMAT bench matrix. The "baseline" case is the old packed serial
// implementation; the "leveled" cases run the level-ordered factors at
// increasing worker counts (GOMAXPROCS pinned to match; workers=1 is the
// serial sweep with no pool), with compact=true additionally narrowing the
// index arrays. Compare baseline against leveled/workers=N for the kernel
// win.
func BenchmarkILUApplyLevels(b *testing.B) {
	iluBenchSetup()
	f, err := FactorILU0(iluBench.a)
	if err != nil {
		b.Fatal(err)
	}
	baseline := packedApply(f)
	b.Run("baseline", func(b *testing.B) {
		b.SetBytes(int64(f.NNZ()) * 16)
		for i := 0; i < b.N; i++ {
			baseline(iluBench.dst, iluBench.src)
		}
	})

	widths := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		widths = append(widths, n)
	}
	for _, compact := range []bool{false, true} {
		for _, w := range widths {
			w, compact := w, compact
			b.Run(fmt.Sprintf("leveled/compact=%v/workers=%d", compact, w), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(w)
				defer runtime.GOMAXPROCS(prev)
				f, err := FactorILU0(iluBench.a)
				if err != nil {
					b.Fatal(err)
				}
				if compact {
					f.Compact()
				}
				if w > 1 {
					f.SetPool(par.NewPool(w))
				}
				bytesPerEntry := int64(16)
				if compact {
					bytesPerEntry = 12
				}
				b.SetBytes(int64(f.NNZ()) * bytesPerEntry)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					f.Apply(iluBench.dst, iluBench.src)
				}
			})
		}
	}
}
