package lu

import (
	"math"
	"math/rand"
	"testing"

	"bepi/internal/par"
	"bepi/internal/sparse"
)

// parBlockDiag builds a random block-diagonal matrix with the given block
// sizes, strictly diagonally dominant so pivot-free LU succeeds.
func parBlockDiag(blockSizes []int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := 0
	for _, s := range blockSizes {
		n += s
	}
	coo := sparse.NewCOO(n, n)
	lo := 0
	for _, s := range blockSizes {
		for i := 0; i < s; i++ {
			coo.Add(lo+i, lo+i, float64(s)+1+rng.Float64())
			for e := 0; e < 3 && s > 1; e++ {
				j := rng.Intn(s)
				if j != i {
					coo.Add(lo+i, lo+j, rng.NormFloat64()*0.3)
				}
			}
		}
		lo += s
	}
	return coo.ToCSR()
}

func randSizes(nblocks, maxSize int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]int, nblocks)
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(maxSize)
	}
	return sizes
}

// TestFactorBlockDiagPoolBitIdentical factors the same matrix serially and
// over pools of several widths and checks the solves agree bitwise.
func TestFactorBlockDiagPoolBitIdentical(t *testing.T) {
	// Enough unknowns to clear parallelMinUnknowns so SolvePool actually
	// partitions.
	sizes := randSizes(200, 50, 1)
	m := parBlockDiag(sizes, 2)
	serial, err := FactorBlockDiag(m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if serial.N() < parallelMinUnknowns {
		t.Fatalf("test system too small: %d unknowns", serial.N())
	}
	rng := rand.New(rand.NewSource(3))
	rhs := make([]float64, serial.N())
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	want := append([]float64(nil), rhs...)
	serial.Solve(want)

	for _, workers := range []int{2, 4, 16} {
		pool := par.NewPool(workers)
		f, err := FactorBlockDiagPool(m, sizes, pool)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := append([]float64(nil), rhs...)
		f.SolvePool(got, pool)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: x[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSolveBatchPoolBitIdentical checks the parallel batched solve against
// the serial batched solve, and both against per-vector Solve.
func TestSolveBatchPoolBitIdentical(t *testing.T) {
	sizes := randSizes(150, 40, 10)
	m := parBlockDiag(sizes, 11)
	f, err := FactorBlockDiag(m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 6
	mk := func() [][]float64 {
		rng := rand.New(rand.NewSource(13))
		xs := make([][]float64, batch)
		for k := range xs {
			xs[k] = make([]float64, f.N())
			for i := range xs[k] {
				xs[k][i] = rng.NormFloat64()
			}
		}
		return xs
	}
	want := mk()
	f.SolveBatch(want)
	single := mk()
	for _, x := range single {
		f.Solve(x)
	}
	got := mk()
	f.SolveBatchPool(got, par.NewPool(8))
	for k := 0; k < batch; k++ {
		for i := range got[k] {
			if math.Float64bits(got[k][i]) != math.Float64bits(want[k][i]) {
				t.Fatalf("rhs %d: SolveBatchPool[%d] differs from SolveBatch", k, i)
			}
			if math.Float64bits(single[k][i]) != math.Float64bits(want[k][i]) {
				t.Fatalf("rhs %d: SolveBatch[%d] differs from Solve", k, i)
			}
		}
	}
}

// TestFactorBlockDiagPoolErrorMatchesSerial makes a middle block singular
// and checks serial and parallel factorization report the same error.
func TestFactorBlockDiagPoolErrorMatchesSerial(t *testing.T) {
	sizes := []int{3, 3, 3, 3, 3, 3, 3, 3}
	m := parBlockDiag(sizes, 20)
	// Zero out block 4's rows to make it singular.
	lo, hi := 12, 15
	val := m.Values()
	for i := lo; i < hi; i++ {
		s, e := m.RowRange(i)
		for p := s; p < e; p++ {
			val[p] = 0
		}
	}
	_, serialErr := FactorBlockDiag(m, sizes)
	if serialErr == nil {
		t.Fatal("expected serial factorization to fail")
	}
	_, poolErr := FactorBlockDiagPool(m, sizes, par.NewPool(4))
	if poolErr == nil {
		t.Fatal("expected parallel factorization to fail")
	}
	if serialErr.Error() != poolErr.Error() {
		t.Fatalf("error mismatch:\n  serial: %v\n  pool:   %v", serialErr, poolErr)
	}
}

// TestSolvePoolSmallSystemFallsBack pins the serial fallback for systems
// under parallelMinUnknowns.
func TestSolvePoolSmallSystemFallsBack(t *testing.T) {
	sizes := []int{4, 5, 6}
	m := parBlockDiag(sizes, 30)
	f, err := FactorBlockDiagPool(m, sizes, par.NewPool(4))
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, f.N())
	for i := range rhs {
		rhs[i] = float64(i) - 7
	}
	want := append([]float64(nil), rhs...)
	f.Solve(want)
	got := append([]float64(nil), rhs...)
	f.SolvePool(got, par.NewPool(4))
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
