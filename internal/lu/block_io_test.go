package lu

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestBlockLUSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		m, sizes := randBlockDiag(rng, 1+rng.Intn(6), 7)
		f, err := FactorBlockDiag(m, sizes)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBlockLU(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.N() != f.N() || back.NumBlocks() != f.NumBlocks() {
			t.Fatal("shape lost in round trip")
		}
		// Both must solve identically.
		n := f.N()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, n)
		copy(y, x)
		f.Solve(x)
		back.Solve(y)
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("trial %d: reloaded factors solve differently", trial)
			}
		}
	}
}

func TestReadBlockLURejectsGarbage(t *testing.T) {
	if _, err := ReadBlockLU(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("expected error for short input")
	}
	if _, err := ReadBlockLU(bytes.NewReader([]byte{1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadBlockLURejectsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m, sizes := randBlockDiag(rng, 4, 6)
	f, err := FactorBlockDiag(m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{5, len(raw) / 2, len(raw) - 3} {
		if _, err := ReadBlockLU(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("expected error for cut at %d", cut)
		}
	}
}

func TestBlockLUSolveT(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		m, sizes := randBlockDiag(rng, 1+rng.Intn(5), 8)
		f, err := FactorBlockDiag(m, sizes)
		if err != nil {
			t.Fatal(err)
		}
		n := m.Rows()
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		// b = Aᵀ x  via MulVecT.
		b := make([]float64, n)
		m.MulVecT(b, xTrue)
		f.SolveT(b)
		for i := range b {
			if math.Abs(b[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("trial %d: SolveT[%d] = %v want %v", trial, i, b[i], xTrue[i])
			}
		}
	}
}
