// Package lu provides the factorization substrate of the BePI
// reproduction: a per-block dense LU of the block-diagonal spoke matrix
// H11, ILU(0) incomplete factorization of the Schur complement (the BePI
// preconditioner), sparse triangular solves, and a Gilbert–Peierls sparse
// LU used by the LU-decomposition baseline.
//
// None of the factorizations pivot: every matrix factored here (H, H11 and
// its diagonal blocks, the Schur complement's ILU surrogate) is strictly
// column diagonally dominant for restart probabilities 0 < c < 1, for which
// pivot-free LU is numerically stable.
package lu

import (
	"fmt"
	"sort"

	"bepi/internal/dense"
	"bepi/internal/sparse"
)

// BlockLU holds per-block packed LU factors of a block-diagonal matrix.
type BlockLU struct {
	offsets []int           // len nblocks+1; block b covers [offsets[b], offsets[b+1])
	factors []*dense.Matrix // packed LU factors, one per block
}

// FactorBlockDiag factors the block-diagonal matrix m whose diagonal blocks
// have the given sizes (in order). It returns an error if m has an entry
// outside the claimed block structure or a block is singular.
func FactorBlockDiag(m *sparse.CSR, blockSizes []int) (*BlockLU, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("lu: block-diagonal matrix must be square, got %v", m)
	}
	offsets := make([]int, len(blockSizes)+1)
	for i, s := range blockSizes {
		if s <= 0 {
			return nil, fmt.Errorf("lu: block %d has size %d", i, s)
		}
		offsets[i+1] = offsets[i] + s
	}
	if offsets[len(blockSizes)] != m.Rows() {
		return nil, fmt.Errorf("lu: block sizes sum to %d, matrix is %d", offsets[len(blockSizes)], m.Rows())
	}
	factors := make([]*dense.Matrix, len(blockSizes))
	col := m.ColIdx()
	val := m.Values()
	for b, size := range blockSizes {
		lo, hi := offsets[b], offsets[b+1]
		blk := dense.New(size, size)
		for i := lo; i < hi; i++ {
			start, end := m.RowRange(i)
			for p := start; p < end; p++ {
				j := col[p]
				if j < lo || j >= hi {
					return nil, fmt.Errorf("lu: entry (%d,%d) outside block %d [%d,%d)", i, j, b, lo, hi)
				}
				blk.Set(i-lo, j-lo, val[p])
			}
		}
		if err := blk.LU(); err != nil {
			return nil, fmt.Errorf("lu: factoring block %d: %w", b, err)
		}
		factors[b] = blk
	}
	return &BlockLU{offsets: offsets, factors: factors}, nil
}

// N returns the dimension of the factored matrix.
func (b *BlockLU) N() int { return b.offsets[len(b.offsets)-1] }

// NumBlocks returns the number of diagonal blocks.
func (b *BlockLU) NumBlocks() int { return len(b.factors) }

// BlockRange returns the half-open row range of block i.
func (b *BlockLU) BlockRange(i int) (lo, hi int) { return b.offsets[i], b.offsets[i+1] }

// BlockOf returns the index of the block containing row i.
func (b *BlockLU) BlockOf(i int) int {
	return sort.SearchInts(b.offsets, i+1) - 1
}

// Solve solves the full block-diagonal system in place on x.
func (b *BlockLU) Solve(x []float64) {
	if len(x) != b.N() {
		panic(fmt.Sprintf("lu: BlockLU.Solve length %d want %d", len(x), b.N()))
	}
	for i, f := range b.factors {
		f.LUSolve(x[b.offsets[i]:b.offsets[i+1]])
	}
}

// SolveBatch solves the full block-diagonal system in place on every
// right-hand side in the batch. Iterating blocks in the outer loop keeps
// each block's packed factors hot in cache while all K substitutions run,
// amortizing the factor traffic across the batch the same way
// sparse.CSR.MulVecBatch amortizes matrix traffic. A batch of one is
// bit-identical to Solve.
func (b *BlockLU) SolveBatch(xs [][]float64) {
	for k, x := range xs {
		if len(x) != b.N() {
			panic(fmt.Sprintf("lu: BlockLU.SolveBatch rhs %d length %d want %d", k, len(x), b.N()))
		}
	}
	for i, f := range b.factors {
		lo, hi := b.offsets[i], b.offsets[i+1]
		for _, x := range xs {
			f.LUSolve(x[lo:hi])
		}
	}
}

// SolveT solves the transposed block-diagonal system in place on x.
func (b *BlockLU) SolveT(x []float64) {
	if len(x) != b.N() {
		panic(fmt.Sprintf("lu: BlockLU.SolveT length %d want %d", len(x), b.N()))
	}
	for i, f := range b.factors {
		f.LUSolveT(x[b.offsets[i]:b.offsets[i+1]])
	}
}

// SolveBlock solves only block i on the slice x, which must have the
// block's length. Used when the right-hand side is known to be zero outside
// a few blocks (sparse columns of H12).
func (b *BlockLU) SolveBlock(i int, x []float64) {
	lo, hi := b.BlockRange(i)
	if len(x) != hi-lo {
		panic(fmt.Sprintf("lu: SolveBlock length %d want %d", len(x), hi-lo))
	}
	b.factors[i].LUSolve(x)
}

// SolveSparse solves H11·x = col for a sparse right-hand side given as
// (row index, value) pairs, writing the (block-dense) result through emit.
// Only blocks containing a nonzero are solved; the scratch slice must have
// length ≥ the largest block size and is reused across calls.
func (b *BlockLU) SolveSparse(idx []int, vals []float64, scratch []float64, emit func(row int, v float64)) {
	if len(idx) == 0 {
		return
	}
	// idx is assumed sorted ascending (CSR order); group by block.
	p := 0
	for p < len(idx) {
		blk := b.BlockOf(idx[p])
		lo, hi := b.BlockRange(blk)
		x := scratch[:hi-lo]
		for i := range x {
			x[i] = 0
		}
		for p < len(idx) && idx[p] < hi {
			x[idx[p]-lo] = vals[p]
			p++
		}
		b.factors[blk].LUSolve(x)
		for i, v := range x {
			if v != 0 {
				emit(lo+i, v)
			}
		}
	}
}

// MaxBlockSize returns the largest block dimension (scratch sizing).
func (b *BlockLU) MaxBlockSize() int {
	mx := 0
	for i := range b.factors {
		if s := b.offsets[i+1] - b.offsets[i]; s > mx {
			mx = s
		}
	}
	return mx
}

// MemoryBytes reports the storage footprint of the packed factors. This is
// the analogue of the paper's storage for L1⁻¹ and U1⁻¹ (Σᵢ n1i²).
func (b *BlockLU) MemoryBytes() int64 {
	var total int64
	for _, f := range b.factors {
		total += f.MemoryBytes()
	}
	return total + int64(len(b.offsets))*8
}
