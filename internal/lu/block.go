// Package lu provides the factorization substrate of the BePI
// reproduction: a per-block dense LU of the block-diagonal spoke matrix
// H11, ILU(0) incomplete factorization of the Schur complement (the BePI
// preconditioner), sparse triangular solves, and a Gilbert–Peierls sparse
// LU used by the LU-decomposition baseline.
//
// None of the factorizations pivot: every matrix factored here (H, H11 and
// its diagonal blocks, the Schur complement's ILU surrogate) is strictly
// column diagonally dominant for restart probabilities 0 < c < 1, for which
// pivot-free LU is numerically stable.
package lu

import (
	"fmt"
	"sort"
	"sync"

	"bepi/internal/dense"
	"bepi/internal/par"
	"bepi/internal/sparse"
)

// BlockLU holds per-block packed LU factors of a block-diagonal matrix.
type BlockLU struct {
	offsets []int           // len nblocks+1; block b covers [offsets[b], offsets[b+1])
	factors []*dense.Matrix // packed LU factors, one per block

	costOnce sync.Once
	costPfx  []int // prefix sums of per-block size², for solve partitioning
}

// FactorBlockDiag factors the block-diagonal matrix m whose diagonal blocks
// have the given sizes (in order). It returns an error if m has an entry
// outside the claimed block structure or a block is singular. It is the
// serial case of FactorBlockDiagPool.
func FactorBlockDiag(m *sparse.CSR, blockSizes []int) (*BlockLU, error) {
	return FactorBlockDiagPool(m, blockSizes, nil)
}

// FactorBlockDiagPool is FactorBlockDiag with the independent diagonal
// blocks factored in parallel over the pool. Blocks are partitioned into
// contiguous ranges balanced by estimated factorization cost (size³); each
// block's factorization is unchanged, so the factors are bit-identical to
// the serial path, and on failure the reported error is the same
// lowest-index one the serial sweep would hit. A nil pool runs serially.
func FactorBlockDiagPool(m *sparse.CSR, blockSizes []int, p *par.Pool) (*BlockLU, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("lu: block-diagonal matrix must be square, got %v", m)
	}
	offsets := make([]int, len(blockSizes)+1)
	factorCost := make([]int, len(blockSizes)+1)
	for i, s := range blockSizes {
		if s <= 0 {
			return nil, fmt.Errorf("lu: block %d has size %d", i, s)
		}
		offsets[i+1] = offsets[i] + s
		factorCost[i+1] = factorCost[i] + s*s*s
	}
	if offsets[len(blockSizes)] != m.Rows() {
		return nil, fmt.Errorf("lu: block sizes sum to %d, matrix is %d", offsets[len(blockSizes)], m.Rows())
	}
	factors := make([]*dense.Matrix, len(blockSizes))
	col := m.ColIdx()
	val := m.Values()
	factorRange := func(blo, bhi int) error {
		for b := blo; b < bhi; b++ {
			lo, hi := offsets[b], offsets[b+1]
			blk := dense.New(hi-lo, hi-lo)
			for i := lo; i < hi; i++ {
				start, end := m.RowRange(i)
				for p := start; p < end; p++ {
					j := col[p]
					if j < lo || j >= hi {
						return fmt.Errorf("lu: entry (%d,%d) outside block %d [%d,%d)", i, j, b, lo, hi)
					}
					blk.Set(i-lo, j-lo, val[p])
				}
			}
			if err := blk.LU(); err != nil {
				return fmt.Errorf("lu: factoring block %d: %w", b, err)
			}
			factors[b] = blk
		}
		return nil
	}
	if p.Workers() <= 1 || len(blockSizes) < 2 {
		if err := factorRange(0, len(blockSizes)); err != nil {
			return nil, err
		}
	} else {
		bounds := par.BoundsByPrefix(factorCost, p.Workers())
		chunkErrs := make([]error, len(bounds)-1)
		p.ForBounds(bounds, func(chunk, blo, bhi int) {
			chunkErrs[chunk] = factorRange(blo, bhi)
		})
		// Chunks are in block order and each stops at its first failure, so
		// the first chunk error is the lowest-index block error — the one
		// the serial sweep reports.
		for _, err := range chunkErrs {
			if err != nil {
				return nil, err
			}
		}
	}
	return &BlockLU{offsets: offsets, factors: factors}, nil
}

// RefactorBlocks returns a new BlockLU that shares every untouched factor
// (and the offsets slice) with b, replacing only the blocks named in raw.
// Each raw entry maps a block index to that block's fresh, unfactored dense
// content; RefactorBlocks LU-factors it in place. This is the partial
// refactorization behind spoke-only delta rebuilds: a delta that touches k
// of the H11 diagonal blocks costs k block factorizations instead of a full
// FactorBlockDiagPool sweep. The receiver stays valid and keeps serving —
// the shared factors are never written.
func (b *BlockLU) RefactorBlocks(raw map[int]*dense.Matrix) (*BlockLU, error) {
	factors := make([]*dense.Matrix, len(b.factors))
	copy(factors, b.factors)
	for i, blk := range raw {
		if i < 0 || i >= len(b.factors) {
			return nil, fmt.Errorf("lu: RefactorBlocks block %d out of range [0,%d)", i, len(b.factors))
		}
		if s := b.offsets[i+1] - b.offsets[i]; blk.R != s || blk.C != s {
			return nil, fmt.Errorf("lu: RefactorBlocks block %d is %dx%d, want %dx%d", i, blk.R, blk.C, s, s)
		}
		if err := blk.LU(); err != nil {
			return nil, fmt.Errorf("lu: refactoring block %d: %w", i, err)
		}
		factors[i] = blk
	}
	return &BlockLU{offsets: b.offsets, factors: factors}, nil
}

// N returns the dimension of the factored matrix.
func (b *BlockLU) N() int { return b.offsets[len(b.offsets)-1] }

// NumBlocks returns the number of diagonal blocks.
func (b *BlockLU) NumBlocks() int { return len(b.factors) }

// BlockRange returns the half-open row range of block i.
func (b *BlockLU) BlockRange(i int) (lo, hi int) { return b.offsets[i], b.offsets[i+1] }

// BlockOf returns the index of the block containing row i.
func (b *BlockLU) BlockOf(i int) int {
	return sort.SearchInts(b.offsets, i+1) - 1
}

// Solve solves the full block-diagonal system in place on x.
func (b *BlockLU) Solve(x []float64) {
	if len(x) != b.N() {
		panic(fmt.Sprintf("lu: BlockLU.Solve length %d want %d", len(x), b.N()))
	}
	for i, f := range b.factors {
		f.LUSolve(x[b.offsets[i]:b.offsets[i+1]])
	}
}

// SolveBatch solves the full block-diagonal system in place on every
// right-hand side in the batch. Iterating blocks in the outer loop keeps
// each block's packed factors hot in cache while all K substitutions run,
// amortizing the factor traffic across the batch the same way
// sparse.CSR.MulVecBatch amortizes matrix traffic. A batch of one is
// bit-identical to Solve.
func (b *BlockLU) SolveBatch(xs [][]float64) {
	for k, x := range xs {
		if len(x) != b.N() {
			panic(fmt.Sprintf("lu: BlockLU.SolveBatch rhs %d length %d want %d", k, len(x), b.N()))
		}
	}
	for i, f := range b.factors {
		lo, hi := b.offsets[i], b.offsets[i+1]
		for _, x := range xs {
			f.LUSolve(x[lo:hi])
		}
	}
}

// ensureCost builds the lazy prefix of per-block substitution costs (s²),
// used to balance the parallel solve partitions.
func (b *BlockLU) ensureCost() []int {
	b.costOnce.Do(func() {
		pfx := make([]int, len(b.factors)+1)
		for i := range b.factors {
			s := b.offsets[i+1] - b.offsets[i]
			pfx[i+1] = pfx[i] + s*s
		}
		b.costPfx = pfx
	})
	return b.costPfx
}

// parallelMinUnknowns is the system size below which SolvePool and
// SolveBatchPool stay serial: substitution on a few thousand unknowns is
// cheaper than a chunk handoff.
const parallelMinUnknowns = 1 << 12

// SolvePool is Solve with the independent per-block substitutions run in
// parallel over the pool. Blocks are partitioned into contiguous ranges
// balanced by substitution cost; each block's substitution is unchanged and
// writes only its own slice of x, so the result is bit-identical to Solve.
// A nil pool (or a small system) runs serially.
func (b *BlockLU) SolvePool(x []float64, p *par.Pool) {
	if len(x) != b.N() {
		panic(fmt.Sprintf("lu: BlockLU.SolvePool length %d want %d", len(x), b.N()))
	}
	if p.Workers() <= 1 || len(b.factors) < 2 || b.N() < parallelMinUnknowns {
		b.Solve(x)
		return
	}
	p.ForBounds(par.BoundsByPrefix(b.ensureCost(), p.Workers()), func(_, blo, bhi int) {
		for i := blo; i < bhi; i++ {
			b.factors[i].LUSolve(x[b.offsets[i]:b.offsets[i+1]])
		}
	})
}

// SolveBatchPool is SolveBatch with the per-block substitutions run in
// parallel over the pool: blocks are partitioned across workers and each
// worker keeps its blocks' factors hot across all K right-hand sides, so
// the batched cache reuse of SolveBatch is preserved inside each partition.
// Results are bit-identical to SolveBatch. A nil pool (or a small system)
// runs serially.
func (b *BlockLU) SolveBatchPool(xs [][]float64, p *par.Pool) {
	for k, x := range xs {
		if len(x) != b.N() {
			panic(fmt.Sprintf("lu: BlockLU.SolveBatchPool rhs %d length %d want %d", k, len(x), b.N()))
		}
	}
	if p.Workers() <= 1 || len(b.factors) < 2 || b.N()*len(xs) < parallelMinUnknowns {
		b.SolveBatch(xs)
		return
	}
	p.ForBounds(par.BoundsByPrefix(b.ensureCost(), p.Workers()), func(_, blo, bhi int) {
		for i := blo; i < bhi; i++ {
			lo, hi := b.offsets[i], b.offsets[i+1]
			for _, x := range xs {
				b.factors[i].LUSolve(x[lo:hi])
			}
		}
	})
}

// SolveT solves the transposed block-diagonal system in place on x.
func (b *BlockLU) SolveT(x []float64) {
	if len(x) != b.N() {
		panic(fmt.Sprintf("lu: BlockLU.SolveT length %d want %d", len(x), b.N()))
	}
	for i, f := range b.factors {
		f.LUSolveT(x[b.offsets[i]:b.offsets[i+1]])
	}
}

// SolveBlock solves only block i on the slice x, which must have the
// block's length. Used when the right-hand side is known to be zero outside
// a few blocks (sparse columns of H12).
func (b *BlockLU) SolveBlock(i int, x []float64) {
	lo, hi := b.BlockRange(i)
	if len(x) != hi-lo {
		panic(fmt.Sprintf("lu: SolveBlock length %d want %d", len(x), hi-lo))
	}
	b.factors[i].LUSolve(x)
}

// SolveSparse solves H11·x = col for a sparse right-hand side given as
// (row index, value) pairs, writing the (block-dense) result through emit.
// Only blocks containing a nonzero are solved; the scratch slice must have
// length ≥ the largest block size and is reused across calls.
func (b *BlockLU) SolveSparse(idx []int, vals []float64, scratch []float64, emit func(row int, v float64)) {
	if len(idx) == 0 {
		return
	}
	// idx is assumed sorted ascending (CSR order); group by block.
	p := 0
	for p < len(idx) {
		blk := b.BlockOf(idx[p])
		lo, hi := b.BlockRange(blk)
		x := scratch[:hi-lo]
		for i := range x {
			x[i] = 0
		}
		for p < len(idx) && idx[p] < hi {
			x[idx[p]-lo] = vals[p]
			p++
		}
		b.factors[blk].LUSolve(x)
		for i, v := range x {
			if v != 0 {
				emit(lo+i, v)
			}
		}
	}
}

// MaxBlockSize returns the largest block dimension (scratch sizing).
func (b *BlockLU) MaxBlockSize() int {
	mx := 0
	for i := range b.factors {
		if s := b.offsets[i+1] - b.offsets[i]; s > mx {
			mx = s
		}
	}
	return mx
}

// MemoryBytes reports the storage footprint of the packed factors. This is
// the analogue of the paper's storage for L1⁻¹ and U1⁻¹ (Σᵢ n1i²).
func (b *BlockLU) MemoryBytes() int64 {
	var total int64
	for _, f := range b.factors {
		total += f.MemoryBytes()
	}
	return total + int64(len(b.offsets))*8
}
