package lu

import (
	"fmt"
	"math"

	"bepi/internal/sparse"
)

// RefactorRows computes the ILU(0) factorization of aNew by reusing f's
// factor rows wherever their inputs are provably unchanged, re-eliminating
// only the rest. changed[i] must be true for every row i whose stored
// values (or pattern) differ from the matrix f was factored from; rows are
// additionally re-eliminated when their pattern no longer matches f's, and
// the dirty set is closed transitively over the strict lower pattern (row
// i's elimination reads the U part of every row in its lower pattern, so a
// dirty ancestor dirties the row). Clean rows copy their factor values
// verbatim and dirty rows run the exact FactorILU0 elimination loop, so
// the result is bit-identical to FactorILU0(aNew) — by induction: a clean
// row's inputs (its own values and all its ancestors' factors) are
// unchanged, and a dirty row is recomputed from already-correct inputs.
//
// This is the incremental-rebuild complement to the partial H11 block
// refactorization: a spoke-only delta perturbs a minority of Schur rows,
// and the factorization cost follows the dirty closure instead of the
// matrix. f is not modified (the serving engine keeps applying it); the
// returned factor is always index-wide, compact it separately if needed.
func (f *ILU) RefactorRows(aNew *sparse.CSR, changed []bool) (*ILU, error) {
	n := aNew.Rows()
	if n != aNew.Cols() {
		return nil, fmt.Errorf("lu: ILU0 requires a square matrix, got %v", aNew)
	}
	if n != f.n {
		return nil, fmt.Errorf("lu: RefactorRows dimension %d does not match factor dimension %d", n, f.n)
	}
	if len(changed) != n {
		return nil, fmt.Errorf("lu: RefactorRows changed mask has %d rows, want %d", len(changed), n)
	}
	// Only the working values are copied; the index arrays are read, never
	// written (buildTriFactors gathers into fresh level-ordered storage), so
	// aNew's can be aliased directly.
	rowPtr := aNew.RowPtr()
	col := aNew.ColIdx()
	val := make([]float64, aNew.NNZ())
	copy(val, aNew.Values())

	diagPos := make([]int, n)
	for i := 0; i < n; i++ {
		diagPos[i] = -1
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			if col[p] == i {
				diagPos[i] = p
				break
			}
		}
		if diagPos[i] < 0 {
			return nil, fmt.Errorf("lu: ILU0 missing diagonal at row %d", i)
		}
	}

	// Storage position of each original row in the old factors.
	invL := make([]int, n)
	invU := make([]int, n)
	for k, i := range f.l.order {
		invL[int(i)] = k
	}
	for k, i := range f.u.order {
		invU[int(i)] = k
	}

	// Single ascending sweep. A row is dirty when the caller flagged it,
	// its pattern differs from the old factor's (cheap insurance against a
	// stale mask), or a strict-lower ancestor is still dirty — row i's
	// elimination reads its ancestors' U rows, so a changed ancestor can
	// change it. Clean rows copy their old factor values verbatim (L part,
	// then the diagonal-led U part — the same packed row order FactorILU0
	// leaves behind); dirty rows run FactorILU0's exact elimination loop.
	// Either way val holds correct factors when the sweep passes row i, so
	// every later elimination reads correct inputs.
	//
	// Value-convergence pruning: a re-eliminated row whose factors come out
	// bit-identical to the old ones stops the cascade — its descendants read
	// exactly the inputs they were originally factored against. This prunes
	// hard in practice: the strict-lower closure of a localized edit sweeps
	// in the dense tail of the matrix, but a changed ancestor only changes a
	// descendant when its pivot changed or its changed U entries land on the
	// descendant's pattern.
	dirty := make([]bool, n)
	pos := make([]int, n)
	for j := range pos {
		pos[j] = -1
	}
	for i := 0; i < n; i++ {
		ls, le := f.l.rowSpan(invL[i])
		us, ue := f.u.rowSpan(invU[i])
		lenOK := le-ls == diagPos[i]-rowPtr[i] && ue-us == rowPtr[i+1]-diagPos[i]
		var d, patternOK bool
		if changed[i] {
			d = true
			// The full pattern compare is only needed where its answer is
			// used: flagged rows, to validate the value-convergence compare
			// below. Unflagged rows have unchanged patterns by the mask
			// contract; the O(1) length check is kept as cheap insurance.
			patternOK = lenOK && f.rowPatternEqual(i, invL[i], invU[i], rowPtr, col, diagPos)
		} else {
			patternOK = lenOK
			d = !lenOK
			if !d {
				for p := rowPtr[i]; p < diagPos[i]; p++ {
					if dirty[col[p]] {
						d = true
						break
					}
				}
			}
		}
		if !d {
			copy(val[rowPtr[i]:diagPos[i]], f.l.val[ls:ls+diagPos[i]-rowPtr[i]])
			copy(val[diagPos[i]:rowPtr[i+1]], f.u.val[us:us+rowPtr[i+1]-diagPos[i]])
			continue
		}
		start, end := rowPtr[i], rowPtr[i+1]
		for p := start; p < end; p++ {
			pos[col[p]] = p
		}
		for p := start; p < end; p++ {
			k := col[p]
			if k >= i {
				break
			}
			piv := val[diagPos[k]]
			if piv == 0 {
				piv = math.Copysign(1e-12, 1)
			}
			lik := val[p] / piv
			val[p] = lik
			for q := diagPos[k] + 1; q < rowPtr[k+1]; q++ {
				j := col[q]
				if t := pos[j]; t >= 0 {
					val[t] -= lik * val[q]
				}
			}
		}
		if v := val[diagPos[i]]; v == 0 {
			val[diagPos[i]] = 1e-12
		}
		for p := start; p < end; p++ {
			pos[col[p]] = -1
		}
		if patternOK {
			same := true
			for p := rowPtr[i]; p < diagPos[i] && same; p++ {
				same = math.Float64bits(val[p]) == math.Float64bits(f.l.val[ls+p-rowPtr[i]])
			}
			for p := diagPos[i]; p < rowPtr[i+1] && same; p++ {
				same = math.Float64bits(val[p]) == math.Float64bits(f.u.val[us+p-diagPos[i]])
			}
			if same {
				continue
			}
		}
		dirty[i] = true
	}

	out := &ILU{n: n}
	out.l, out.u = buildTriFactors(n, rowPtr, col, val, diagPos)
	return out, nil
}

// rowPatternEqual reports whether packed row i of the new matrix has the
// same column pattern as the old factor's row (storage rows kL/kU).
func (f *ILU) rowPatternEqual(i, kL, kU int, rowPtr, col []int, diagPos []int) bool {
	ls, le := f.l.rowSpan(kL)
	if le-ls != diagPos[i]-rowPtr[i] {
		return false
	}
	for p := 0; p < le-ls; p++ {
		if f.l.colAt(ls+p) != col[rowPtr[i]+p] {
			return false
		}
	}
	us, ue := f.u.rowSpan(kU)
	if ue-us != rowPtr[i+1]-diagPos[i] {
		return false
	}
	for p := 0; p < ue-us; p++ {
		if f.u.colAt(us+p) != col[diagPos[i]+p] {
			return false
		}
	}
	return true
}
