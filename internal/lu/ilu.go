package lu

import (
	"fmt"
	"math"

	"bepi/internal/par"
	"bepi/internal/sparse"
)

// ILU holds an ILU(0) incomplete factorization A ≈ L·U where L is unit
// lower triangular and U upper triangular, both restricted to the sparsity
// pattern of A, so the stored entry count equals the input's — the property
// Theorem 3 of the paper relies on. The factors are kept as two
// level-ordered triangular structures (see levels.go): dependency levels
// are computed once here at factorization and the rows stored physically in
// level order, which makes the triangular sweeps both stream memory
// contiguously and parallelize level by level.
//
// The factors are immutable after FactorILU0. Two optional post-build steps
// tune Apply for the query path: Compact narrows the index arrays to
// int32/uint32 (halving index bandwidth), and SetPool attaches a parallel
// pool so wide levels execute across workers — bit-identically to the
// serial sweeps, since rows within a level are independent and each row's
// accumulation loop is unchanged.
type ILU struct {
	n    int
	l, u triFactor

	// pool, when set, runs wide levels of the sweeps in parallel for
	// systems of at least iluParallelMinNNZ stored entries.
	pool *par.Pool
}

// FactorILU0 computes the ILU(0) factorization of a square CSR matrix. The
// matrix must have a nonzero diagonal. A small pivot is replaced by a signed
// epsilon to keep the preconditioner applicable (standard ILU practice); the
// factorization is approximate anyway.
func FactorILU0(a *sparse.CSR) (*ILU, error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, fmt.Errorf("lu: ILU0 requires a square matrix, got %v", a)
	}
	rowPtr := make([]int, n+1)
	copy(rowPtr, a.RowPtr())
	col := make([]int, a.NNZ())
	copy(col, a.ColIdx())
	val := make([]float64, a.NNZ())
	copy(val, a.Values())

	diagPos := make([]int, n)
	for i := 0; i < n; i++ {
		diagPos[i] = -1
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			if col[p] == i {
				diagPos[i] = p
				break
			}
		}
		if diagPos[i] < 0 {
			return nil, fmt.Errorf("lu: ILU0 missing diagonal at row %d", i)
		}
	}

	// IKJ variant: for each row i, eliminate with all previous rows k that
	// appear in row i's pattern. pos[j] maps column j to its position in
	// row i, or -1.
	pos := make([]int, n)
	for j := range pos {
		pos[j] = -1
	}
	for i := 0; i < n; i++ {
		start, end := rowPtr[i], rowPtr[i+1]
		for p := start; p < end; p++ {
			pos[col[p]] = p
		}
		for p := start; p < end; p++ {
			k := col[p]
			if k >= i {
				break
			}
			piv := val[diagPos[k]]
			if piv == 0 {
				piv = math.Copysign(1e-12, 1)
			}
			lik := val[p] / piv
			val[p] = lik
			for q := diagPos[k] + 1; q < rowPtr[k+1]; q++ {
				j := col[q]
				if t := pos[j]; t >= 0 {
					val[t] -= lik * val[q]
				}
			}
		}
		if v := val[diagPos[i]]; v == 0 {
			val[diagPos[i]] = 1e-12
		}
		for p := start; p < end; p++ {
			pos[col[p]] = -1
		}
	}
	f := &ILU{n: n}
	// Splitting into level-ordered factors costs one O(nnz) pass against
	// the O(nnz·row) factorization above; the packed working arrays are
	// released here.
	f.l, f.u = buildTriFactors(n, rowPtr, col, val, diagPos)
	return f, nil
}

// N returns the dimension.
func (f *ILU) N() int { return f.n }

// SetPool attaches a parallel pool and returns f. With a pool of more than
// one worker, Apply executes each dependency level's rows across the pool
// (for systems of at least iluParallelMinNNZ entries); results remain
// bit-identical to serial execution. A nil pool restores serial sweeps.
func (f *ILU) SetPool(p *par.Pool) *ILU {
	f.pool = p
	return f
}

// Pool returns the attached pool (nil means serial).
func (f *ILU) Pool() *par.Pool { return f.pool }

// NNZ returns the number of stored factor entries (equal to the factored
// matrix's entry count).
func (f *ILU) NNZ() int { return f.l.nnz() + f.u.nnz() }

// Levels reports the number of dependency levels of the forward and
// backward sweeps — the critical-path lengths of the two triangular solves.
func (f *ILU) Levels() (forward, backward int) {
	return f.l.levels(), f.u.levels()
}

// Compact narrows both factors' index arrays to int32 row pointers and
// uint32 columns, releasing the wide ones — the same ~2× index-bandwidth
// cut CSR32 gives the SpMV kernels. No-op if already compact or too large
// to narrow. Values are untouched, so Apply stays bit-identical.
func (f *ILU) Compact() *ILU {
	f.l.compact(f.n)
	f.u.compact(f.n)
	return f
}

// Compacted reports whether the index arrays have been narrowed.
func (f *ILU) Compacted() bool { return f.l.col32 != nil && f.u.col32 != nil }

// Apply computes dst = U⁻¹ L⁻¹ src, the preconditioner application
// M⁻¹ = (L̃ Ũ)⁻¹ used by preconditioned GMRES. dst and src may alias. With a
// pool attached (SetPool) the sweeps run level-scheduled in parallel;
// either way the result is bit-identical to the serial sweeps.
func (f *ILU) Apply(dst, src []float64) {
	if len(dst) != f.n || len(src) != f.n {
		panic("lu: ILU.Apply length mismatch")
	}
	if f.n == 0 {
		return
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	if f.pool.Workers() > 1 && f.NNZ() >= iluParallelMinNNZ {
		f.l.runLevels(f.pool, func(lo, hi int) { f.sweepL(dst, lo, hi) })
		f.u.runLevels(f.pool, func(lo, hi int) { f.sweepU(dst, lo, hi) })
		return
	}
	// Serial: a full walk in storage order is a valid dependency order by
	// construction, and streams the factors contiguously.
	f.sweepL(dst, 0, f.n)
	f.sweepU(dst, 0, f.n)
}

func (f *ILU) sweepL(dst []float64, lo, hi int) {
	if f.l.col32 != nil {
		sweepLower(f.l.order, f.l.rowPtr32, f.l.col32, f.l.val, dst, lo, hi)
	} else {
		sweepLower(f.l.order, f.l.rowPtr, f.l.col, f.l.val, dst, lo, hi)
	}
}

func (f *ILU) sweepU(dst []float64, lo, hi int) {
	if f.u.col32 != nil {
		sweepUpper(f.u.order, f.u.rowPtr32, f.u.col32, f.u.val, dst, lo, hi)
	} else {
		sweepUpper(f.u.order, f.u.rowPtr, f.u.col, f.u.val, dst, lo, hi)
	}
}

// Product returns the explicit product L·U as a CSR matrix; for tests that
// check the on-pattern approximation property of ILU(0).
func (f *ILU) Product() *sparse.CSR {
	l, u := f.Split()
	return l.Mul(u)
}

// Split returns the unit-lower factor L (with explicit unit diagonal) and
// the upper factor U as separate CSR matrices.
func (f *ILU) Split() (l, u *sparse.CSR) {
	lc := sparse.NewCOO(f.n, f.n)
	uc := sparse.NewCOO(f.n, f.n)
	for k := 0; k < f.n; k++ {
		i := int(f.l.order[k])
		lc.Add(i, i, 1)
		start, end := f.l.rowSpan(k)
		for p := start; p < end; p++ {
			lc.Add(i, f.l.colAt(p), f.l.val[p])
		}
	}
	for k := 0; k < f.n; k++ {
		i := int(f.u.order[k])
		start, end := f.u.rowSpan(k)
		for p := start; p < end; p++ {
			uc.Add(i, f.u.colAt(p), f.u.val[p])
		}
	}
	return lc.ToCSR(), uc.ToCSR()
}

// MemoryBytes reports the storage footprint of everything the factorization
// retains: both factors' values, index arrays at their current width (wide
// or compacted), and the level order/boundary arrays.
func (f *ILU) MemoryBytes() int64 {
	return f.l.memoryBytes() + f.u.memoryBytes()
}
