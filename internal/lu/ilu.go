package lu

import (
	"fmt"
	"math"

	"bepi/internal/sparse"
)

// ILU holds an ILU(0) incomplete factorization A ≈ L·U where L is unit
// lower triangular and U upper triangular, both restricted to the sparsity
// pattern of A. The factors are stored packed in a single CSR matrix (L's
// strict lower part and U including the diagonal), exactly mirroring the
// pattern of the input, so its memory footprint equals the input's — the
// property Theorem 3 of the paper relies on.
type ILU struct {
	n       int
	rowPtr  []int
	col     []int
	val     []float64
	diagPos []int // position of the diagonal entry in each row
}

// FactorILU0 computes the ILU(0) factorization of a square CSR matrix. The
// matrix must have a nonzero diagonal. A small pivot is replaced by a signed
// epsilon to keep the preconditioner applicable (standard ILU practice); the
// factorization is approximate anyway.
func FactorILU0(a *sparse.CSR) (*ILU, error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, fmt.Errorf("lu: ILU0 requires a square matrix, got %v", a)
	}
	rowPtr := make([]int, n+1)
	copy(rowPtr, a.RowPtr())
	col := make([]int, a.NNZ())
	copy(col, a.ColIdx())
	val := make([]float64, a.NNZ())
	copy(val, a.Values())

	diagPos := make([]int, n)
	for i := 0; i < n; i++ {
		diagPos[i] = -1
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			if col[p] == i {
				diagPos[i] = p
				break
			}
		}
		if diagPos[i] < 0 {
			return nil, fmt.Errorf("lu: ILU0 missing diagonal at row %d", i)
		}
	}

	// IKJ variant: for each row i, eliminate with all previous rows k that
	// appear in row i's pattern. pos[j] maps column j to its position in
	// row i, or -1.
	pos := make([]int, n)
	for j := range pos {
		pos[j] = -1
	}
	for i := 0; i < n; i++ {
		start, end := rowPtr[i], rowPtr[i+1]
		for p := start; p < end; p++ {
			pos[col[p]] = p
		}
		for p := start; p < end; p++ {
			k := col[p]
			if k >= i {
				break
			}
			piv := val[diagPos[k]]
			if piv == 0 {
				piv = math.Copysign(1e-12, 1)
			}
			lik := val[p] / piv
			val[p] = lik
			for q := diagPos[k] + 1; q < rowPtr[k+1]; q++ {
				j := col[q]
				if t := pos[j]; t >= 0 {
					val[t] -= lik * val[q]
				}
			}
		}
		if v := val[diagPos[i]]; v == 0 {
			val[diagPos[i]] = 1e-12
		}
		for p := start; p < end; p++ {
			pos[col[p]] = -1
		}
	}
	return &ILU{n: n, rowPtr: rowPtr, col: col, val: val, diagPos: diagPos}, nil
}

// N returns the dimension.
func (f *ILU) N() int { return f.n }

// Apply computes dst = U⁻¹ L⁻¹ src, the preconditioner application
// M⁻¹ = (L̃ Ũ)⁻¹ used by preconditioned GMRES. dst and src may alias.
func (f *ILU) Apply(dst, src []float64) {
	if len(dst) != f.n || len(src) != f.n {
		panic("lu: ILU.Apply length mismatch")
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	// Forward: L y = src (unit diagonal, strict lower entries).
	for i := 0; i < f.n; i++ {
		s := dst[i]
		for p := f.rowPtr[i]; p < f.rowPtr[i+1]; p++ {
			j := f.col[p]
			if j >= i {
				break
			}
			s -= f.val[p] * dst[j]
		}
		dst[i] = s
	}
	// Backward: U x = y.
	for i := f.n - 1; i >= 0; i-- {
		s := dst[i]
		for p := f.diagPos[i] + 1; p < f.rowPtr[i+1]; p++ {
			s -= f.val[p] * dst[f.col[p]]
		}
		dst[i] = s / f.val[f.diagPos[i]]
	}
}

// Product returns the explicit product L·U as a CSR matrix; for tests that
// check the on-pattern approximation property of ILU(0).
func (f *ILU) Product() *sparse.CSR {
	l, u := f.Split()
	return l.Mul(u)
}

// Split returns the unit-lower factor L (with explicit unit diagonal) and
// the upper factor U as separate CSR matrices.
func (f *ILU) Split() (l, u *sparse.CSR) {
	lc := sparse.NewCOO(f.n, f.n)
	uc := sparse.NewCOO(f.n, f.n)
	for i := 0; i < f.n; i++ {
		lc.Add(i, i, 1)
		for p := f.rowPtr[i]; p < f.rowPtr[i+1]; p++ {
			j := f.col[p]
			if j < i {
				lc.Add(i, j, f.val[p])
			} else {
				uc.Add(i, j, f.val[p])
			}
		}
	}
	return lc.ToCSR(), uc.ToCSR()
}

// MemoryBytes reports the storage footprint of the packed factors, which by
// construction equals that of the factored matrix plus the diagonal index.
func (f *ILU) MemoryBytes() int64 {
	return int64(len(f.val))*16 + int64(len(f.rowPtr)+len(f.diagPos))*8
}
