package lu

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"bepi/internal/dense"
)

// Binary serialization of BlockLU factors, used when persisting a
// preprocessed BePI index:
//
//	magic    uint32 'BLU1'
//	nblocks  int64
//	offsets  (nblocks+1) × int64
//	data     Σ sizeᵢ² × float64 (packed LU factors, block order)

const blockLUMagic = 0x424c5531

// WriteTo serializes the factors. It implements io.WriterTo.
func (b *BlockLU) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	writeU64 := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		k, err := bw.Write(buf[:])
		n += int64(k)
		return err
	}
	var magic [4]byte
	binary.LittleEndian.PutUint32(magic[:], blockLUMagic)
	k, err := bw.Write(magic[:])
	n += int64(k)
	if err != nil {
		return n, err
	}
	if err := writeU64(uint64(len(b.factors))); err != nil {
		return n, err
	}
	for _, off := range b.offsets {
		if err := writeU64(uint64(off)); err != nil {
			return n, err
		}
	}
	for _, f := range b.factors {
		for _, v := range f.Data {
			if err := writeU64(math.Float64bits(v)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadBlockLU deserializes factors written by WriteTo. It reads exactly the
// bytes the factors occupy (no read-ahead), so the data can be embedded in a
// concatenated stream.
func ReadBlockLU(r io.Reader) (*BlockLU, error) {
	var head [4 + 8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("lu: reading BlockLU header: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(head[0:]); magic != blockLUMagic {
		return nil, fmt.Errorf("lu: bad BlockLU magic %#x", magic)
	}
	nb := int(int64(binary.LittleEndian.Uint64(head[4:])))
	if nb < 0 {
		return nil, fmt.Errorf("lu: corrupt block count %d", nb)
	}
	// Chunked reads keep corrupt headers (claiming absurd sizes) from
	// triggering giant allocations before the stream runs dry.
	const chunk = 1 << 16
	offsets := make([]int, 0, minI(nb+1, chunk))
	buf := make([]byte, 8*chunk)
	for remaining := nb + 1; remaining > 0; {
		c := minI(remaining, chunk)
		if _, err := io.ReadFull(r, buf[:8*c]); err != nil {
			return nil, fmt.Errorf("lu: reading offsets: %w", err)
		}
		for i := 0; i < c; i++ {
			offsets = append(offsets, int(int64(binary.LittleEndian.Uint64(buf[8*i:]))))
		}
		remaining -= c
	}
	// A dense block of dimension 2^20 would be 8 TiB; anything close is a
	// corrupt stream.
	const maxBlockDim = 1 << 20
	factors := make([]*dense.Matrix, 0, minI(nb, chunk))
	for i := 0; i < nb; i++ {
		size := offsets[i+1] - offsets[i]
		if size <= 0 || size > maxBlockDim {
			return nil, fmt.Errorf("lu: corrupt block size %d", size)
		}
		m := dense.New(size, size)
		for off := 0; off < len(m.Data); {
			c := minI(len(m.Data)-off, chunk)
			if _, err := io.ReadFull(r, buf[:8*c]); err != nil {
				return nil, fmt.Errorf("lu: reading block %d: %w", i, err)
			}
			for j := 0; j < c; j++ {
				m.Data[off+j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
			}
			off += c
		}
		factors = append(factors, m)
	}
	return &BlockLU{offsets: offsets, factors: factors}, nil
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
