package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bepi/internal/lu"
	"bepi/internal/vec"
)

func TestBiCGSTABSolvesRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(60)
		a := randDiagDominant(rng, n, 0.2)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, stats, err := BiCGSTAB(a, b, GMRESOptions{Tol: 1e-11, MaxIter: 2000})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !stats.Converged {
			t.Fatalf("trial %d: not converged", trial)
		}
		if r := residual(a, x, b); r > 1e-8 {
			t.Fatalf("trial %d: residual %v", trial, r)
		}
	}
}

func TestBiCGSTABZeroAndEmpty(t *testing.T) {
	x, stats, err := BiCGSTAB(randDiagDominant(rand.New(rand.NewSource(1)), 5, 0.5),
		make([]float64, 5), GMRESOptions{})
	if err != nil || !stats.Converged || vec.Norm2(x) != 0 {
		t.Fatalf("zero rhs: x=%v stats=%+v err=%v", x, stats, err)
	}
	if _, stats, err := BiCGSTAB(nil, nil, GMRESOptions{}); err != nil || !stats.Converged {
		t.Fatal("empty system should trivially converge")
	}
}

func TestBiCGSTABPreconditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randDiagDominant(rng, 200, 0.03)
	b := make([]float64, 200)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, plain, err := BiCGSTAB(a, b, GMRESOptions{Tol: 1e-10, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := lu.FactorILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	x, cond, err := BiCGSTAB(a, b, GMRESOptions{Tol: 1e-10, MaxIter: 2000, Precond: pre})
	if err != nil {
		t.Fatal(err)
	}
	if cond.Iterations >= plain.Iterations {
		t.Fatalf("preconditioned %d iters >= plain %d", cond.Iterations, plain.Iterations)
	}
	if r := residual(a, x, b); r > 1e-7 {
		t.Fatalf("residual %v", r)
	}
}

func TestBiCGSTABIterationLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randDiagDominant(rng, 60, 0.2)
	b := make([]float64, 60)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	if _, _, err := BiCGSTAB(a, b, GMRESOptions{Tol: 1e-15, MaxIter: 1}); err == nil {
		t.Fatal("expected iteration-limit error")
	}
}

func TestBiCGSTABAgreesWithGMRES(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 8; trial++ {
		n := 10 + rng.Intn(50)
		a := randDiagDominant(rng, n, 0.2)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xg, _, err := GMRES(a, b, GMRESOptions{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		xb, _, err := BiCGSTAB(a, b, GMRESOptions{Tol: 1e-12, MaxIter: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if d := vec.Dist2(xg, xb); d > 1e-7 {
			t.Fatalf("trial %d: GMRES vs BiCGSTAB distance %v", trial, d)
		}
	}
}

// Property: BiCGSTAB solutions satisfy the system on random diagonally
// dominant matrices.
func TestQuickBiCGSTAB(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		a := randDiagDominant(r, n, 0.3)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, stats, err := BiCGSTAB(a, b, GMRESOptions{Tol: 1e-10, MaxIter: 2000})
		if err != nil || !stats.Converged {
			return false
		}
		return residual(a, x, b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
