package solver

import (
	"fmt"

	"bepi/internal/vec"
)

// BiCGSTAB solves A·x = b with the stabilized bi-conjugate gradient method
// (van der Vorst), optionally left-preconditioned. It is the short-recurrence
// alternative to GMRES for the Schur-complement system: two matrix-vector
// products per iteration but O(1) memory in the iteration count, where full
// GMRES stores the whole Krylov basis. Exposed as an engine option and used
// by the solver-ablation experiment.
func BiCGSTAB(a Operator, b []float64, opts GMRESOptions) ([]float64, Stats, error) {
	opts = opts.withDefaults()
	n := len(b)
	ar := newArena(opts.Work, n)
	x := ar.takeZero()
	if n == 0 {
		return x, Stats{Converged: true, StopReason: StopTolerance}, nil
	}
	var stats Stats

	t := ar.take()
	opts.Precond.Apply(t, b)
	normB := vec.Norm2(t)
	if normB == 0 {
		return x, Stats{Converged: true, StopReason: StopTolerance}, nil
	}

	// r = M⁻¹(b − A·x) = M⁻¹b for x = 0.
	r := ar.take()
	copy(r, t)
	rhat := ar.take() // shadow residual, fixed
	copy(rhat, r)
	var rho, alpha, omega float64 = 1, 1, 1
	v := ar.takeZero()
	p := ar.takeZero()
	s := ar.take()
	tv := ar.take()
	scratch := ar.take()

	applyA := func(dst, src []float64) {
		a.MulVec(scratch, src)
		opts.Precond.Apply(dst, scratch)
	}

	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := opts.ctxErr(); err != nil {
			return x, stats, fmt.Errorf("solver: aborted after %d iterations: %w", stats.Iterations, err)
		}
		rhoNew := vec.Dot(rhat, r)
		if rhoNew == 0 {
			return x, stats, fmt.Errorf("solver: BiCGSTAB breakdown (rho=0) at iteration %d: %w",
				iter, ErrNotConverged)
		}
		if iter == 1 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		rho = rhoNew
		applyA(v, p)
		den := vec.Dot(rhat, v)
		if den == 0 {
			return x, stats, fmt.Errorf("solver: BiCGSTAB breakdown (rᵀv=0) at iteration %d: %w",
				iter, ErrNotConverged)
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		stats.Iterations = iter
		if res := vec.Norm2(s) / normB; res <= opts.Tol {
			vec.AXPY(alpha, p, x)
			stats.Residual = res
			stats.Converged = true
			stats.StopReason = StopTolerance
			if opts.OnIteration != nil {
				opts.OnIteration(iter, res)
			}
			if opts.Callback != nil {
				opts.Callback(iter, x)
			}
			return x, stats, nil
		}
		applyA(tv, s)
		tt := vec.Dot(tv, tv)
		if tt == 0 {
			return x, stats, fmt.Errorf("solver: BiCGSTAB breakdown (t=0) at iteration %d: %w",
				iter, ErrNotConverged)
		}
		omega = vec.Dot(tv, s) / tt
		for i := range x {
			x[i] += alpha*p[i] + omega*s[i]
		}
		for i := range r {
			r[i] = s[i] - omega*tv[i]
		}
		stats.Residual = vec.Norm2(r) / normB
		if opts.OnIteration != nil {
			opts.OnIteration(iter, stats.Residual)
		}
		if opts.Probe != nil {
			opts.Probe(iter, stats.Residual, func() []float64 { return x })
		}
		if opts.Callback != nil {
			opts.Callback(iter, x)
		}
		if stats.Residual <= opts.Tol {
			stats.Converged = true
			stats.StopReason = StopTolerance
			return x, stats, nil
		}
		if opts.StopWhen != nil && opts.StopWhen(iter, stats.Residual) {
			stats.StopReason = StopEarly
			return x, stats, nil
		}
		if omega == 0 {
			return x, stats, fmt.Errorf("solver: BiCGSTAB breakdown (omega=0) at iteration %d: %w",
				iter, ErrNotConverged)
		}
	}
	stats.StopReason = StopMaxIter
	return x, stats, fmt.Errorf("after %d iterations (residual %.3g): %w",
		stats.Iterations, stats.Residual, ErrNotConverged)
}
