// Package solver implements the iterative linear solvers BePI builds on:
// power iteration for the RWR fixed point, and GMRES (Saad & Schultz) with
// optional left preconditioning (Saad's preconditioned variant, Appendix B
// of the paper) for the Schur-complement system and the full-system
// baseline.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"

	"bepi/internal/vec"
)

// Operator is anything that can multiply a vector: dst = A·x.
// *sparse.CSR satisfies it.
type Operator interface {
	MulVec(dst, x []float64)
}

// Preconditioner applies M⁻¹: dst = M⁻¹·src. dst and src may alias.
// *lu.ILU satisfies it.
type Preconditioner interface {
	Apply(dst, src []float64)
}

// identity is the trivial preconditioner.
type identity struct{}

// Apply copies src to dst (M = I).
func (identity) Apply(dst, src []float64) {
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
}

// StopReason records why an iterative solve returned.
type StopReason int

const (
	// StopNone is the zero value: the solve failed before any stopping rule
	// applied (breakdown, iteration limit on methods that do not report it,
	// context cancellation).
	StopNone StopReason = iota
	// StopTolerance means the residual met Tol — the ordinary outcome.
	StopTolerance
	// StopBreakdown means the Krylov recurrence hit an exact-solution
	// ("lucky") breakdown: the subspace closed and the iterate is exact to
	// working precision even though the measured residual may sit above Tol.
	StopBreakdown
	// StopEarly means Options.StopWhen asked for the halt: the caller's own
	// convergence criterion was met before the residual reached Tol.
	StopEarly
	// StopMaxIter means the iteration limit was exhausted; the solve
	// returned ErrNotConverged.
	StopMaxIter
)

// String names the stop reason for stats reporting.
func (r StopReason) String() string {
	switch r {
	case StopTolerance:
		return "tolerance"
	case StopBreakdown:
		return "breakdown"
	case StopEarly:
		return "early"
	case StopMaxIter:
		return "maxiter"
	default:
		return "none"
	}
}

// Stats reports how an iterative solve went.
type Stats struct {
	Iterations int     // matrix-vector products consumed
	Residual   float64 // final relative residual
	Converged  bool
	// StopReason says which rule ended the solve; in particular StopEarly
	// distinguishes a StopWhen halt (Converged false, nil error) from a
	// genuine tolerance stop.
	StopReason StopReason
}

// ErrNotConverged is wrapped by solvers that hit their iteration limit.
var ErrNotConverged = errors.New("solver: iteration limit reached before convergence")

// GMRESOptions configures a GMRES solve.
type GMRESOptions struct {
	// Tol is the relative-residual stopping tolerance (default 1e-9, the
	// paper's ε).
	Tol float64
	// MaxIter bounds the total number of Arnoldi steps (default 1000).
	MaxIter int
	// Restart, if positive, restarts GMRES every Restart iterations.
	// Zero means full GMRES, as the paper uses.
	Restart int
	// Precond, if non-nil, left-preconditions the system: M⁻¹A x = M⁻¹b.
	Precond Preconditioner
	// Callback, if non-nil, receives the current iterate after every
	// Arnoldi step. Assembling the iterate costs a triangular solve and a
	// basis combination per step; intended for accuracy experiments.
	Callback func(iter int, x []float64)
	// OnIteration, if non-nil, receives the iteration count and current
	// relative residual after every solver iteration. Unlike Callback it
	// does not assemble the iterate — it is a couple of loads per call —
	// so the serving path uses it for live convergence telemetry.
	OnIteration func(iter int, residual float64)
	// Probe, if non-nil, is invoked after every iteration like OnIteration,
	// but additionally receives a thunk that assembles the current iterate
	// on demand. Calling the thunk costs what Callback costs every step (a
	// triangular solve plus a basis combination for GMRES); not calling it
	// costs nothing, so a caller that inspects the iterate only on selected
	// iterations — the bounded top-k search — pays only for those. The
	// returned slice is valid until the solver's next iteration and must
	// not be mutated.
	Probe func(iter int, residual float64, iterate func() []float64)
	// StopWhen, if non-nil, is consulted after every iteration (after
	// OnIteration/Probe/Callback have observed it); returning true halts
	// the solve at the current iterate with a nil error, Converged false,
	// and Stats.StopReason = StopEarly. Meeting Tol on the same iteration
	// wins: the solve then reports an ordinary converged stop. This is the
	// caller-owned convergence criterion behind exact top-k early
	// termination.
	StopWhen func(iter int, residual float64) bool
	// Ctx, if non-nil, is checked once per iteration; when it is done the
	// solve aborts with an error wrapping ctx.Err(). This is how per-query
	// deadlines reach the innermost loop of the serving path.
	Ctx context.Context
	// Work, if non-nil, supplies the solve's vector buffers from a
	// reusable arena instead of fresh allocations. The returned solution
	// then points into Work and is only valid until the next solve that
	// uses it.
	Work *Workspace
}

// ctxErr reports the options' context error, or nil without a context.
func (o GMRESOptions) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

func (o GMRESOptions) withDefaults() GMRESOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	if o.Precond == nil {
		o.Precond = identity{}
	}
	return o
}

// GMRES solves A·x = b, returning the solution and solve statistics.
// The residual reported and tested against Tol is the (preconditioned)
// relative residual ‖M⁻¹(A·x − b)‖₂ / ‖M⁻¹b‖₂, matching the stopping rule
// of Algorithm 5 in the paper.
func GMRES(a Operator, b []float64, opts GMRESOptions) ([]float64, Stats, error) {
	opts = opts.withDefaults()
	n := len(b)
	ar := newArena(opts.Work, n)
	x := ar.takeZero()
	if n == 0 {
		return x, Stats{Converged: true, StopReason: StopTolerance}, nil
	}
	cycle := opts.Restart
	if cycle <= 0 || cycle > opts.MaxIter {
		cycle = opts.MaxIter
	}

	var stats Stats
	t := ar.take() // M⁻¹ b
	opts.Precond.Apply(t, b)
	normT := vec.Norm2(t)
	if normT == 0 {
		return x, Stats{Converged: true, StopReason: StopTolerance}, nil
	}

	scratch := ar.take()
	for stats.Iterations < opts.MaxIter {
		if err := opts.ctxErr(); err != nil {
			return x, stats, fmt.Errorf("solver: aborted after %d iterations: %w", stats.Iterations, err)
		}
		// Residual of the current iterate in the preconditioned norm.
		a.MulVec(scratch, x)
		vec.Sub(scratch, b, scratch) // b − A·x
		z := ar.take()
		opts.Precond.Apply(z, scratch)
		beta := vec.Norm2(z)
		stats.Residual = beta / normT
		if stats.Residual <= opts.Tol {
			stats.Converged = true
			stats.StopReason = StopTolerance
			return x, stats, nil
		}

		m := cycle
		if rem := opts.MaxIter - stats.Iterations; m > rem {
			m = rem
		}
		// Arnoldi basis and Hessenberg factorization with Givens updates.
		v := make([][]float64, 1, m+1)
		vec.Scale(1/beta, z)
		v[0] = z
		h := make([][]float64, 0, m) // h[j] has length j+2
		cs := make([]float64, 0, m)  // Givens cosines
		sn := make([]float64, 0, m)  // Givens sines
		g := make([]float64, 1, m+1) // rotated rhs
		g[0] = beta

		converged := false
		stopped := false
		steps := 0
		for j := 0; j < m; j++ {
			if err := opts.ctxErr(); err != nil {
				x = assemble(ar, x, v, h, g, steps)
				return x, stats, fmt.Errorf("solver: aborted after %d iterations: %w", stats.Iterations, err)
			}
			w := ar.take()
			a.MulVec(scratch, v[j])
			opts.Precond.Apply(w, scratch)
			// Modified Gram-Schmidt.
			hj := make([]float64, j+2)
			for i := 0; i <= j; i++ {
				hj[i] = vec.Dot(w, v[i])
				vec.AXPY(-hj[i], v[i], w)
			}
			hj[j+1] = vec.Norm2(w)
			breakdown := hj[j+1] < 1e-300
			if !breakdown {
				vec.Scale(1/hj[j+1], w)
				v = append(v, w)
			}
			// Apply accumulated rotations to the new column.
			for i := 0; i < j; i++ {
				hj[i], hj[i+1] = cs[i]*hj[i]+sn[i]*hj[i+1], -sn[i]*hj[i]+cs[i]*hj[i+1]
			}
			// New rotation to annihilate hj[j+1].
			c, s := givens(hj[j], hj[j+1])
			cs, sn = append(cs, c), append(sn, s)
			hj[j] = c*hj[j] + s*hj[j+1]
			hj[j+1] = 0
			h = append(h, hj)
			g = append(g, -s*g[j])
			g[j] = c * g[j]
			stats.Iterations++
			steps = j + 1
			stats.Residual = math.Abs(g[j+1]) / normT
			if opts.OnIteration != nil {
				opts.OnIteration(stats.Iterations, stats.Residual)
			}
			if opts.Probe != nil {
				opts.Probe(stats.Iterations, stats.Residual, func() []float64 {
					return assemble(arena{n: n}, x, v, h, g, steps)
				})
			}
			if opts.Callback != nil {
				xj := assemble(arena{n: n}, x, v, h, g, steps)
				opts.Callback(stats.Iterations, xj)
			}
			if stats.Residual <= opts.Tol || breakdown {
				converged = true
				break
			}
			if opts.StopWhen != nil && opts.StopWhen(stats.Iterations, stats.Residual) {
				stopped = true
				break
			}
		}
		// Update x with the minimizer over the Krylov space built so far.
		x = assemble(ar, x, v, h, g, steps)
		if converged {
			stats.Converged = true
			if stats.Residual <= opts.Tol {
				stats.StopReason = StopTolerance
			} else {
				stats.StopReason = StopBreakdown
			}
			return x, stats, nil
		}
		if stopped {
			stats.StopReason = StopEarly
			return x, stats, nil
		}
	}
	stats.StopReason = StopMaxIter
	return x, stats, fmt.Errorf("after %d iterations (residual %.3g): %w",
		stats.Iterations, stats.Residual, ErrNotConverged)
}

// assemble returns x + V·y where R·y = g is the triangular least-squares
// system accumulated by the Givens rotations (first `steps` columns). The
// result vector comes from the arena (a fresh allocation without one).
func assemble(ar arena, x []float64, v [][]float64, h [][]float64, g []float64, steps int) []float64 {
	y := make([]float64, steps)
	for i := steps - 1; i >= 0; i-- {
		s := g[i]
		for k := i + 1; k < steps; k++ {
			s -= h[k][i] * y[k]
		}
		// h[i][i] is the rotated diagonal.
		if h[i][i] == 0 {
			y[i] = 0
			continue
		}
		y[i] = s / h[i][i]
	}
	out := ar.take()
	copy(out, x)
	for k := 0; k < steps; k++ {
		vec.AXPY(y[k], v[k], out)
	}
	return out
}

// givens returns the rotation (c, s) with c·a + s·b = r, −s·a + c·b = 0.
func givens(a, b float64) (c, s float64) {
	if b == 0 {
		return 1, 0
	}
	if math.Abs(b) > math.Abs(a) {
		t := a / b
		s = 1 / math.Sqrt(1+t*t)
		return s * t, s
	}
	t := b / a
	c = 1 / math.Sqrt(1+t*t)
	return c, c * t
}

// PowerOptions configures a power-iteration solve.
type PowerOptions struct {
	Tol      float64 // ‖r⁽ⁱ⁾ − r⁽ⁱ⁻¹⁾‖₂ stopping threshold (default 1e-9)
	MaxIter  int     // default 1000
	Callback func(iter int, r []float64)
}

// PowerIteration computes the RWR vector by iterating
// r ← (1−c)·Ãᵀ·r + c·q until successive iterates differ by at most Tol.
// at must multiply by Ãᵀ (use sparse.CSR.MulVec on the transposed matrix, or
// wrap MulVecT). The returned vector is a fresh slice.
func PowerIteration(at Operator, q []float64, c float64, opts PowerOptions) ([]float64, Stats, error) {
	if opts.Tol <= 0 {
		opts.Tol = 1e-9
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 1000
	}
	n := len(q)
	r := make([]float64, n)
	copy(r, q) // start from q (any start converges; this matches c=1·q)
	next := make([]float64, n)
	var stats Stats
	for iter := 1; iter <= opts.MaxIter; iter++ {
		at.MulVec(next, r)
		for i := range next {
			next[i] = (1-c)*next[i] + c*q[i]
		}
		stats.Iterations = iter
		diff := vec.Dist2(next, r)
		r, next = next, r
		if opts.Callback != nil {
			opts.Callback(iter, r)
		}
		stats.Residual = diff
		if diff <= opts.Tol {
			stats.Converged = true
			return r, stats, nil
		}
	}
	return r, stats, fmt.Errorf("after %d iterations (diff %.3g): %w",
		stats.Iterations, stats.Residual, ErrNotConverged)
}
