package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bepi/internal/lu"
	"bepi/internal/sparse"
	"bepi/internal/vec"
)

func randDiagDominant(rng *rand.Rand, n int, density float64) *sparse.CSR {
	coo := sparse.NewCOO(n, n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				v := rng.NormFloat64()
				coo.Add(i, j, v)
				rowAbs[i] += math.Abs(v)
			}
		}
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, rowAbs[i]+1+rng.Float64())
	}
	return coo.ToCSR()
}

func residual(a Operator, x, b []float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(r, x)
	vec.Sub(r, b, r)
	return vec.Norm2(r) / vec.Norm2(b)
}

func TestGMRESSolvesRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(60)
		a := randDiagDominant(rng, n, 0.2)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, stats, err := GMRES(a, b, GMRESOptions{Tol: 1e-10})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !stats.Converged {
			t.Fatalf("trial %d: not converged", trial)
		}
		if r := residual(a, x, b); r > 1e-8 {
			t.Fatalf("trial %d: true residual %v", trial, r)
		}
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	a := sparse.Identity(5)
	x, stats, err := GMRES(a, make([]float64, 5), GMRESOptions{})
	if err != nil || !stats.Converged {
		t.Fatalf("err=%v stats=%+v", err, stats)
	}
	if vec.Norm2(x) != 0 {
		t.Fatal("zero rhs should give zero solution")
	}
}

func TestGMRESEmptySystem(t *testing.T) {
	a := sparse.Identity(0)
	x, stats, err := GMRES(a, nil, GMRESOptions{})
	if err != nil || !stats.Converged || len(x) != 0 {
		t.Fatalf("empty system: x=%v stats=%+v err=%v", x, stats, err)
	}
}

func TestGMRESIterationLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randDiagDominant(rng, 50, 0.3)
	b := make([]float64, 50)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, stats, err := GMRES(a, b, GMRESOptions{Tol: 1e-14, MaxIter: 2})
	if err == nil {
		t.Fatal("expected ErrNotConverged")
	}
	if stats.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2", stats.Iterations)
	}
}

func TestGMRESRestartedStillConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDiagDominant(rng, 60, 0.15)
	b := make([]float64, 60)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, stats, err := GMRES(a, b, GMRESOptions{Tol: 1e-9, Restart: 5, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged || residual(a, x, b) > 1e-7 {
		t.Fatalf("restarted GMRES failed: %+v", stats)
	}
}

func TestPreconditionedGMRESFewerIterations(t *testing.T) {
	// An ILU(0)-preconditioned solve must converge in (strictly) fewer
	// iterations than the unpreconditioned one on a non-trivial system —
	// the effect the paper measures in Table 4.
	rng := rand.New(rand.NewSource(4))
	a := randDiagDominant(rng, 200, 0.03)
	b := make([]float64, 200)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, plain, err := GMRES(a, b, GMRESOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := lu.FactorILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	x, cond, err := GMRES(a, b, GMRESOptions{Tol: 1e-10, Precond: pre})
	if err != nil {
		t.Fatal(err)
	}
	if cond.Iterations >= plain.Iterations {
		t.Fatalf("preconditioned %d iters >= plain %d", cond.Iterations, plain.Iterations)
	}
	if r := residual(a, x, b); r > 1e-7 {
		t.Fatalf("preconditioned residual %v", r)
	}
}

func TestGMRESCallbackSeesMonotoneImprovement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDiagDominant(rng, 40, 0.2)
	xTrue := make([]float64, 40)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, 40)
	a.MulVec(b, xTrue)
	var errs []float64
	_, _, err := GMRES(a, b, GMRESOptions{
		Tol: 1e-11,
		Callback: func(iter int, x []float64) {
			errs = append(errs, vec.Dist2(x, xTrue))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) < 2 {
		t.Fatalf("callback fired %d times", len(errs))
	}
	if errs[len(errs)-1] > 1e-7 {
		t.Fatalf("final error %v", errs[len(errs)-1])
	}
	if errs[len(errs)-1] > errs[0] {
		t.Fatal("error grew over the solve")
	}
}

// rwrSystem builds a row-normalized adjacency transpose and H = I−(1−c)Ãᵀ
// for a random graph-like matrix.
func rwrSystem(rng *rand.Rand, n int, c float64) (at, h *sparse.CSR) {
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		deg := 1 + rng.Intn(4)
		for d := 0; d < deg; d++ {
			coo.Add(i, rng.Intn(n), 1)
		}
	}
	a := coo.ToCSR().RowNormalize()
	at = a.Transpose()
	h = sparse.Identity(n).AddScaled(at, -(1 - c))
	return at, h
}

func TestPowerIterationMatchesDirectSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(40)
		c := 0.05 + 0.3*rng.Float64()
		at, h := rwrSystem(rng, n, c)
		q := make([]float64, n)
		q[rng.Intn(n)] = 1
		r, stats, err := PowerIteration(at, q, c, PowerOptions{Tol: 1e-12, MaxIter: 5000})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !stats.Converged {
			t.Fatalf("trial %d: not converged", trial)
		}
		// H r = c q must hold.
		hr := make([]float64, n)
		h.MulVec(hr, r)
		for i := range hr {
			if math.Abs(hr[i]-c*q[i]) > 1e-9 {
				t.Fatalf("trial %d: (Hr)[%d] = %v want %v", trial, i, hr[i], c*q[i])
			}
		}
	}
}

func TestPowerIterationCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	at, _ := rwrSystem(rng, 20, 0.1)
	q := make([]float64, 20)
	q[0] = 1
	var iters []int
	_, stats, err := PowerIteration(at, q, 0.1, PowerOptions{
		Tol: 1e-10, MaxIter: 2000,
		Callback: func(iter int, r []float64) {
			iters = append(iters, iter)
			if len(r) != 20 {
				t.Errorf("callback vector length %d", len(r))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != stats.Iterations {
		t.Fatalf("callback fired %d times, stats say %d", len(iters), stats.Iterations)
	}
	for i, it := range iters {
		if it != i+1 {
			t.Fatal("callback iterations not sequential")
		}
	}
}

func TestPowerIterationLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	at, _ := rwrSystem(rng, 30, 0.05)
	q := make([]float64, 30)
	q[0] = 1
	_, _, err := PowerIteration(at, q, 0.05, PowerOptions{Tol: 1e-16, MaxIter: 3})
	if err == nil {
		t.Fatal("expected ErrNotConverged")
	}
}

func TestPowerAndGMRESAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 8; trial++ {
		n := 10 + rng.Intn(50)
		c := 0.05
		at, h := rwrSystem(rng, n, c)
		q := make([]float64, n)
		q[rng.Intn(n)] = 1
		rp, _, err := PowerIteration(at, q, c, PowerOptions{Tol: 1e-12, MaxIter: 5000})
		if err != nil {
			t.Fatal(err)
		}
		cq := make([]float64, n)
		for i := range q {
			cq[i] = c * q[i]
		}
		rg, _, err := GMRES(h, cq, GMRESOptions{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		if d := vec.Dist2(rp, rg); d > 1e-8 {
			t.Fatalf("trial %d: power vs GMRES distance %v", trial, d)
		}
	}
}

// Property: GMRES solution satisfies the system within tolerance for
// arbitrary diagonally dominant systems.
func TestQuickGMRES(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		a := randDiagDominant(r, n, 0.3)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, stats, err := GMRES(a, b, GMRESOptions{Tol: 1e-9})
		if err != nil || !stats.Converged {
			return false
		}
		return residual(a, x, b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGivens(t *testing.T) {
	cases := [][2]float64{{3, 4}, {0, 1}, {1, 0}, {-2, 5}, {1e-30, 1}}
	for _, tc := range cases {
		c, s := givens(tc[0], tc[1])
		if math.Abs(c*c+s*s-1) > 1e-12 {
			t.Fatalf("givens(%v,%v): c²+s² = %v", tc[0], tc[1], c*c+s*s)
		}
		if z := -s*tc[0] + c*tc[1]; math.Abs(z) > 1e-12*(math.Abs(tc[0])+math.Abs(tc[1])) {
			t.Fatalf("givens(%v,%v): residual %v", tc[0], tc[1], z)
		}
	}
}
