package solver

import (
	"math"
	"math/rand"
	"testing"

	"bepi/internal/vec"
)

// TestStopWhenHaltsGMRES checks that StopWhen ends the solve at the
// caller's criterion with a nil error, Converged false, and StopEarly.
func TestStopWhenHaltsGMRES(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 80
	a := randDiagDominant(rng, n, 0.15)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	full, fullStats, err := GMRES(a, b, GMRESOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("full solve: %v", err)
	}
	const loose = 1e-3
	var stopIter int
	x, stats, err := GMRES(a, b, GMRESOptions{
		Tol: 1e-12,
		StopWhen: func(iter int, residual float64) bool {
			stopIter = iter
			return residual <= loose
		},
	})
	if err != nil {
		t.Fatalf("stopped solve: %v", err)
	}
	if stats.Converged {
		t.Fatalf("early-stopped solve reported Converged")
	}
	if stats.StopReason != StopEarly {
		t.Fatalf("StopReason = %v, want StopEarly", stats.StopReason)
	}
	if stats.Iterations != stopIter {
		t.Fatalf("stopped at iteration %d but stats say %d", stopIter, stats.Iterations)
	}
	if stats.Iterations >= fullStats.Iterations {
		t.Fatalf("early stop used %d iterations, full solve %d", stats.Iterations, fullStats.Iterations)
	}
	// The returned iterate must be the one the residual was measured on.
	if r := residual(a, x, b); r > 10*loose {
		t.Fatalf("stopped iterate residual %v, asked to stop at %v", r, loose)
	}
	if fullStats.StopReason != StopTolerance {
		t.Fatalf("full solve StopReason = %v, want StopTolerance", fullStats.StopReason)
	}
	_ = full
}

// TestStopWhenToleranceWins: meeting Tol on the same iteration StopWhen
// fires must report an ordinary converged stop, not StopEarly.
func TestStopWhenToleranceWins(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 40
	a := randDiagDominant(rng, n, 0.2)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, stats, err := GMRES(a, b, GMRESOptions{
		Tol:      1e-8,
		StopWhen: func(int, float64) bool { return true },
	})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if stats.Converged {
		// StopWhen fires on iteration 1, long before 1e-8; the only way to
		// be converged here is a one-iteration exact solve, which this
		// random system is not.
		t.Fatalf("expected StopWhen to fire before tolerance")
	}
	if stats.Iterations != 1 || stats.StopReason != StopEarly {
		t.Fatalf("iterations=%d reason=%v, want 1/StopEarly", stats.Iterations, stats.StopReason)
	}

	// Now a trivially converging system: Tol met on the very check StopWhen
	// would also pass — tolerance must win.
	d := make(diagOp, 4)
	for i := range d {
		d[i] = 1
	}
	rhs := []float64{1, 2, 3, 4}
	_, stats, err = GMRES(d, rhs, GMRESOptions{
		Tol:      1e-9,
		StopWhen: func(int, float64) bool { return true },
	})
	if err != nil {
		t.Fatalf("identity solve: %v", err)
	}
	if !stats.Converged || stats.StopReason == StopEarly {
		t.Fatalf("converged=%v reason=%v, want converged with non-early reason", stats.Converged, stats.StopReason)
	}
}

// TestStopWhenProbeIterate: the Probe thunk must assemble the same iterate
// Callback sees, and only cost when called.
func TestStopWhenProbeIterate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 50
	a := randDiagDominant(rng, n, 0.2)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	byCallback := map[int][]float64{}
	_, _, err := GMRES(a, b, GMRESOptions{
		Tol: 1e-10,
		Callback: func(iter int, x []float64) {
			byCallback[iter] = append([]float64(nil), x...)
		},
	})
	if err != nil {
		t.Fatalf("callback solve: %v", err)
	}
	probed := 0
	_, _, err = GMRES(a, b, GMRESOptions{
		Tol: 1e-10,
		Probe: func(iter int, residual float64, iterate func() []float64) {
			if iter%3 != 0 {
				return
			}
			probed++
			got := iterate()
			want := byCallback[iter]
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("iteration %d: probe iterate differs from Callback iterate at %d: %v vs %v",
						iter, i, got[i], want[i])
				}
			}
		},
	})
	if err != nil {
		t.Fatalf("probe solve: %v", err)
	}
	if probed == 0 {
		t.Fatalf("probe never sampled an iterate")
	}
}

// TestStopWhenHaltsBiCGSTAB mirrors the GMRES halt test for the
// short-recurrence solver.
func TestStopWhenHaltsBiCGSTAB(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 80
	a := randDiagDominant(rng, n, 0.15)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, fullStats, err := BiCGSTAB(a, b, GMRESOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("full solve: %v", err)
	}
	const loose = 1e-3
	probes := 0
	x, stats, err := BiCGSTAB(a, b, GMRESOptions{
		Tol: 1e-12,
		Probe: func(iter int, residual float64, iterate func() []float64) {
			probes++
			if got := vec.Norm2(iterate()); got == 0 {
				t.Fatalf("iteration %d: probe saw a zero iterate", iter)
			}
		},
		StopWhen: func(iter int, residual float64) bool { return residual <= loose },
	})
	if err != nil {
		t.Fatalf("stopped solve: %v", err)
	}
	if stats.Converged || stats.StopReason != StopEarly {
		t.Fatalf("converged=%v reason=%v, want early stop", stats.Converged, stats.StopReason)
	}
	if stats.Iterations >= fullStats.Iterations {
		t.Fatalf("early stop used %d iterations, full solve %d", stats.Iterations, fullStats.Iterations)
	}
	if probes != stats.Iterations {
		t.Fatalf("probe fired %d times over %d iterations", probes, stats.Iterations)
	}
	if r := residual(a, x, b); r > 10*loose {
		t.Fatalf("stopped iterate residual %v, asked to stop at %v", r, loose)
	}
	if fullStats.StopReason != StopTolerance {
		t.Fatalf("full solve StopReason = %v, want StopTolerance", fullStats.StopReason)
	}
}

// TestStopReasonMaxIter: exhausting the iteration budget reports
// StopMaxIter alongside ErrNotConverged.
func TestStopReasonMaxIter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 60
	a := randDiagDominant(rng, n, 0.2)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, stats, err := GMRES(a, b, GMRESOptions{Tol: 1e-14, MaxIter: 2})
	if err == nil {
		t.Fatalf("expected iteration-limit error")
	}
	if stats.StopReason != StopMaxIter {
		t.Fatalf("StopReason = %v, want StopMaxIter", stats.StopReason)
	}
	if _, stats, err = BiCGSTAB(a, b, GMRESOptions{Tol: 1e-14, MaxIter: 1}); err == nil || stats.StopReason != StopMaxIter {
		t.Fatalf("BiCGSTAB: err=%v reason=%v, want limit error + StopMaxIter", err, stats.StopReason)
	}
}

// TestStopReasonString pins the names stats reporting uses.
func TestStopReasonString(t *testing.T) {
	want := map[StopReason]string{
		StopNone:      "none",
		StopTolerance: "tolerance",
		StopBreakdown: "breakdown",
		StopEarly:     "early",
		StopMaxIter:   "maxiter",
	}
	for r, s := range want {
		if r.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(r), r.String(), s)
		}
	}
}
