package solver

import (
	"math"
	"testing"
)

// diagOp is a diagonal operator for solver unit tests.
type diagOp []float64

func (d diagOp) MulVec(dst, x []float64) {
	for i := range dst {
		dst[i] = d[i] * x[i]
	}
}

// TestOnIteration checks the cheap per-iteration hook: it must fire once
// per iteration with a monotonically increasing count, and its last
// residual must match the returned stats — for both solvers.
func TestOnIteration(t *testing.T) {
	n := 50
	a := make(diagOp, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = 1 + float64(i%7)
		b[i] = float64(i + 1)
	}
	run := func(name string, solve func(Operator, []float64, GMRESOptions) ([]float64, Stats, error)) {
		var iters []int
		var lastRes float64
		opts := GMRESOptions{
			Tol: 1e-10,
			OnIteration: func(iter int, residual float64) {
				iters = append(iters, iter)
				lastRes = residual
			},
		}
		_, stats, err := solve(a, b, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(iters) == 0 {
			t.Fatalf("%s: hook never fired", name)
		}
		for i, it := range iters {
			if it != i+1 {
				t.Fatalf("%s: iteration sequence %v not 1..n", name, iters)
			}
		}
		if iters[len(iters)-1] != stats.Iterations {
			t.Fatalf("%s: hook saw %d iterations, stats %d", name, iters[len(iters)-1], stats.Iterations)
		}
		if math.Abs(lastRes-stats.Residual) > 1e-15 {
			t.Fatalf("%s: hook residual %g, stats %g", name, lastRes, stats.Residual)
		}
	}
	run("GMRES", GMRES)
	run("BiCGSTAB", BiCGSTAB)
}
