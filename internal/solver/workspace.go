package solver

// Workspace recycles the n-length vectors an iterative solve allocates —
// for GMRES that is dominated by the stored Krylov basis (one n-vector per
// Arnoldi step), for BiCGSTAB the fixed set of recurrence vectors. A
// workspace is owned by one solve at a time (it is not safe for concurrent
// use) but is reused across solves, so a query-serving worker that runs one
// solve after another stops allocating on the hot path.
//
// Vectors handed out by take() may hold stale data from a previous solve;
// callers must fully overwrite them (or use takeZero). Solutions returned
// by a solver running on a workspace point into the workspace and are only
// valid until the next solve that uses it — copy them out if they must
// survive.
type Workspace struct {
	n    int
	buf  [][]float64
	next int
}

// reset prepares the workspace to hand out vectors of length n, recycling
// any buffers of a matching length from earlier solves.
func (w *Workspace) reset(n int) {
	if w.n != n {
		w.buf = w.buf[:0]
		w.n = n
	}
	w.next = 0
}

// arena adapts an optional workspace: with a nil workspace every take is a
// fresh allocation, preserving the historical allocate-per-solve behavior.
type arena struct {
	ws *Workspace
	n  int
}

func newArena(ws *Workspace, n int) arena {
	if ws != nil {
		ws.reset(n)
	}
	return arena{ws: ws, n: n}
}

// take returns an n-length vector with unspecified contents.
func (a arena) take() []float64 {
	if a.ws == nil {
		return make([]float64, a.n)
	}
	w := a.ws
	if w.next < len(w.buf) {
		v := w.buf[w.next]
		w.next++
		return v
	}
	v := make([]float64, w.n)
	w.buf = append(w.buf, v)
	w.next++
	return v
}

// takeZero returns an n-length vector of zeros.
func (a arena) takeZero() []float64 {
	v := a.take()
	for i := range v {
		v[i] = 0
	}
	return v
}
