package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"bepi"
)

// Dynamic-update endpoints (available when the server was built with
// NewDynamic; a static server answers them with 409):
//
//	POST /edges        buffer edge insertions/deletions (and new nodes)
//	POST /flush        start a background rebuild; 202 + rebuild id
//	GET  /flush/{id}   poll a rebuild's status
//
// Updates are buffered and invisible to queries until a flush swaps the
// rebuilt engine in; queries keep completing against the old index for the
// whole rebuild.

// EdgeJSON is one edge endpoint pair in the /edges payload.
type EdgeJSON struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// EdgesRequest is the POST /edges payload. Add and Remove are buffered
// update lists; AddNodes grows the node-id space by that many fresh
// (initially dead-end) nodes before the edges are applied.
type EdgesRequest struct {
	Add      []EdgeJSON `json:"add,omitempty"`
	Remove   []EdgeJSON `json:"remove,omitempty"`
	AddNodes int        `json:"add_nodes,omitempty"`
}

// EdgesResponse acknowledges buffered updates.
type EdgesResponse struct {
	// Nodes is the node count the next rebuild will index.
	Nodes int `json:"nodes"`
	// Pending is the number of buffered updates with real work to do.
	Pending int `json:"pending"`
	// Generation is the currently serving index generation; it does not
	// change until a flush completes.
	Generation uint64 `json:"generation"`
}

// RebuildJSON is a bepi.RebuildStatus in JSON form (for POST /flush and
// GET /flush/{id}). Generation is always present: while the rebuild runs it
// is the generation still serving queries; once settled, the generation
// after the rebuild — "state" carries the lifecycle, not a zero sentinel.
// Mode reports which path the rebuild took (full, delta-spoke, delta-hub,
// noop) once it has settled.
type RebuildJSON struct {
	ID         uint64  `json:"id"`
	State      string  `json:"state"` // running | done | failed
	NoOp       bool    `json:"noop,omitempty"`
	Applied    int     `json:"applied"`
	Generation uint64  `json:"generation"`
	Mode       string  `json:"mode,omitempty"`
	Drift      float64 `json:"drift,omitempty"`
	DurationMS float64 `json:"duration_ms"`
	Error      string  `json:"error,omitempty"`
}

func rebuildJSON(st bepi.RebuildStatus) RebuildJSON {
	j := RebuildJSON{
		ID:         st.ID,
		State:      string(st.State),
		NoOp:       st.NoOp,
		Applied:    st.Applied,
		Generation: st.Generation,
		Mode:       string(st.Mode),
		Drift:      st.Drift,
		DurationMS: float64(st.Duration.Microseconds()) / 1000,
	}
	if st.Err != nil {
		j.Error = st.Err.Error()
	}
	return j
}

// requireDynamic rejects dynamic-only endpoints on a static server.
func (s *Server) requireDynamic(w http.ResponseWriter) bool {
	if s.core.dyn == nil {
		s.fail(w, http.StatusConflict, "server is serving a static index; restart with -graph for online updates")
		return false
	}
	return true
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if !s.requireDynamic(w) {
		return
	}
	var req EdgesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	if req.AddNodes < 0 {
		s.fail(w, http.StatusBadRequest, "add_nodes must be >= 0, got %d", req.AddNodes)
		return
	}
	if len(req.Add) == 0 && len(req.Remove) == 0 && req.AddNodes == 0 {
		s.fail(w, http.StatusBadRequest, "empty update: provide add, remove, or add_nodes")
		return
	}
	for i := 0; i < req.AddNodes; i++ {
		s.core.dyn.AddNode()
	}
	for _, e := range req.Add {
		if err := s.core.dyn.AddEdge(e.Src, e.Dst); err != nil {
			s.fail(w, http.StatusBadRequest, "add %d->%d: %v", e.Src, e.Dst, err)
			return
		}
	}
	for _, e := range req.Remove {
		if err := s.core.dyn.RemoveEdge(e.Src, e.Dst); err != nil {
			s.fail(w, http.StatusBadRequest, "remove %d->%d: %v", e.Src, e.Dst, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, EdgesResponse{
		Nodes:      s.core.dyn.N(),
		Pending:    s.core.dyn.Pending(),
		Generation: s.core.dyn.Generation(),
	})
}

// handleFlush starts (or joins) a background rebuild and returns 202 with
// its id immediately; poll GET /flush/{id} for completion. The serving
// engine keeps answering queries until the rebuilt one swaps in.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if !s.requireDynamic(w) {
		return
	}
	rb := s.core.dyn.StartFlush()
	st := rb.Status()
	// Flight-recorder bookend: rebuild_start here, rebuild_swap/rebuild_fail
	// from the OnRebuild hook when the background build resolves.
	s.core.exec.Observer().Events.Record("rebuild_start", "", map[string]string{
		"id":      strconv.FormatUint(st.ID, 10),
		"applied": strconv.Itoa(st.Applied),
	})
	writeJSON(w, http.StatusAccepted, rebuildJSON(st))
}

func (s *Server) handleFlushStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if !s.requireDynamic(w) {
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/flush/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad rebuild id %q", idStr)
		return
	}
	st, ok := s.core.dyn.RebuildStatus(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown rebuild id %d (history is bounded)", id)
		return
	}
	writeJSON(w, http.StatusOK, rebuildJSON(st))
}
