// Package server exposes a preprocessed BePI index over HTTP/JSON — the
// "many queries against one index" serving shape the paper's preprocessing
// phase exists for. The package splits into a transport-agnostic serving
// core (Core: query/top-k/personalized/metrics logic over a qexec
// executor) and a thin HTTP binding (Server), so the same engine can
// simultaneously serve public HTTP traffic and the cluster coordinator's
// in-process replica path (internal/cluster). All query traffic runs
// through the internal/qexec execution subsystem (worker pool with pooled
// workspaces → batch scheduler → LRU cache + singleflight → admission
// control), so concurrent requests coalesce, hot seeds hit the cache, and
// overload sheds with 429 (plus a Retry-After hint) instead of piling up
// goroutines.
//
// Endpoints:
//
//	GET  /healthz                          readiness: generation, index
//	                                       hash, queue depth, rebuild
//	                                       in-flight
//	GET  /stats                            index statistics
//	GET  /metrics                          traffic + qexec counters, latency
//	                                       quantiles, prep stats (JSON;
//	                                       Prometheus text when Accept says
//	                                       text/plain or ?format=prometheus)
//	GET  /metrics.prom                     always Prometheus text format
//	GET  /metrics/snapshot                 mergeable metrics snapshot (JSON;
//	                                       fetched by the cluster coordinator
//	                                       for fleet-wide aggregation)
//	GET  /debug/traces?n=K                 recent per-query stage traces
//	GET  /debug/traces?trace=ID            traces belonging to one trace ID
//	GET  /debug/events?n=K                 flight-recorder events, newest first
//	GET  /query?seed=N&topk=K              top-K ranking for a seed (bound-pruned)
//	GET  /query?seed=N&topk=K&exact=true   same set from a full-tolerance solve
//	GET  /query?seed=N&full=true           the full score vector
//	GET  /query?seed=N&debug=1             adds solver/stage detail
//	GET  /query?seed=N&trace=1             forces a trace; the X-Bepi-Trace
//	                                       response header carries its ID
//	POST /personalized {"weights":{...}}   multi-seed PPR ranking
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"bepi"
	"bepi/internal/obs"
	"bepi/internal/qexec"
)

// Server is the http.Handler binding over a serving Core.
type Server struct {
	core *Core
	mux  *http.ServeMux
}

// New builds a server over a preprocessed engine with default execution
// settings. Call Close to stop the execution pool.
func New(eng *bepi.Engine) *Server { return NewWithConfig(eng, qexec.Config{}) }

// NewWithConfig builds a server with explicit query-execution settings
// (pool size, batch window, cache entries, queue depth, per-query timeout).
func NewWithConfig(eng *bepi.Engine, cfg qexec.Config) *Server {
	return NewFromCore(NewCore(eng, cfg))
}

// NewDynamic builds a server over a dynamic (online-update) index: the
// /edges and /flush endpoints buffer updates and trigger background
// rebuilds, and every successful rebuild atomically swaps the serving
// engine, purges the executor's score cache, and bumps the index
// generation — queries in flight keep completing on the old engine, and no
// stale cached score survives the swap.
func NewDynamic(d *bepi.Dynamic, cfg qexec.Config) *Server {
	return NewFromCore(NewDynamicCore(d, cfg))
}

// NewFromCore binds HTTP handlers over an existing serving core — the path
// used when the core is shared with another transport (e.g. a cluster
// replica that also answers in-process coordinator traffic). Closing the
// server closes the core.
func NewFromCore(c *Core) *Server {
	s := &Server{core: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.prom", s.handleMetricsProm)
	s.mux.HandleFunc("/metrics/snapshot", s.handleMetricsSnapshot)
	s.mux.HandleFunc("/debug/traces", s.handleTraces)
	s.mux.HandleFunc("/debug/events", s.handleEvents)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/personalized", s.handlePersonalized)
	s.mux.HandleFunc("/edges", s.handleEdges)
	s.mux.HandleFunc("/flush", s.handleFlush)
	s.mux.HandleFunc("/flush/", s.handleFlushStatus)
	return s
}

// Core exposes the transport-agnostic serving core.
func (s *Server) Core() *Core { return s.core }

// Dynamic returns the underlying dynamic index, or nil for a static one.
func (s *Server) Dynamic() *bepi.Dynamic { return s.core.Dynamic() }

// Executor exposes the execution subsystem (for tests and shutdown hooks).
func (s *Server) Executor() *qexec.Executor { return s.core.Executor() }

// Close drains and stops the query-execution pool. In-flight requests
// finish; new ones fail with 503.
func (s *Server) Close() { s.core.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		s.handleMetricsProm(w, r)
		return
	}
	writeJSON(w, http.StatusOK, s.core.Metrics())
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	// Admission-control rejections carry a Retry-After hint so clients (the
	// cluster coordinator in particular) back off instead of hot-retrying.
	if ra := RetryAfterSeconds(status); ra > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ra))
	}
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.core.errors.Add(1)
	writeError(w, status, format, args...)
}

// failCore writes an error already counted by the core, mapping it to its
// status (429 for shed load, 503 for deadline/shutdown, 400 for validation,
// 500 otherwise) with a Retry-After hint where one applies.
func (s *Server) failCore(w http.ResponseWriter, err error) {
	status := StatusOf(err)
	switch status {
	case http.StatusTooManyRequests:
		writeError(w, status, "overloaded: %v", err)
	case http.StatusServiceUnavailable:
		if err == context.DeadlineExceeded {
			writeError(w, status, "query deadline exceeded")
		} else {
			writeError(w, status, "server unavailable: %v", err)
		}
	default:
		writeError(w, status, "%v", err)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.core.Health())
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Nodes          int     `json:"nodes"`
	Spokes         int     `json:"spokes"`
	Hubs           int     `json:"hubs"`
	Deadends       int     `json:"deadends"`
	SchurNNZ       int     `json:"schur_nnz"`
	IndexBytes     int64   `json:"index_bytes"`
	HubRatio       float64 `json:"hub_ratio"`
	RestartProb    float64 `json:"restart_prob"`
	Tolerance      float64 `json:"tolerance"`
	Variant        string  `json:"variant"`
	Preconditioned bool    `json:"preconditioned"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.core.Stats())
}

// RankedEntry is one row of a ranking response.
type RankedEntry struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// QueryResponse is the /query payload. Generation and IndexHash tag the
// engine the scores were computed under (the coordinator's merge guard).
type QueryResponse struct {
	Seed       int           `json:"seed"`
	Top        []RankedEntry `json:"top,omitempty"`
	Scores     []float64     `json:"scores,omitempty"`
	Iterations int           `json:"iterations"`
	DurationMS float64       `json:"duration_ms"`
	Cached     bool          `json:"cached,omitempty"`
	// EarlyStopped means the ranking came from a bound-certified
	// early-stopped solve: the top-k SET is exact, the scores shown are
	// within the certified error radius of the true values.
	EarlyStopped bool        `json:"early_stopped,omitempty"`
	Generation   uint64      `json:"generation"`
	IndexHash    string      `json:"index_hash,omitempty"`
	Debug        *QueryDebug `json:"debug,omitempty"`
}

// QueryDebug is the per-query solver and stage detail returned when the
// request asks for ?debug=1.
type QueryDebug struct {
	Iterations int     `json:"iterations"`
	Residual   float64 `json:"residual"`
	Cached     bool    `json:"cached"`
	Coalesced  bool    `json:"coalesced"`
	// Engine stage wall times in milliseconds (zero for cache hits, which
	// never reach the engine). Shared phases report the whole batch's time;
	// solve_ms is this query's own Schur solve.
	StageMS map[string]float64 `json:"stage_ms,omitempty"`
}

func queryDebug(res qexec.Result) *QueryDebug {
	d := &QueryDebug{
		Iterations: res.Stats.Iterations,
		Residual:   res.Stats.Residual,
		Cached:     res.Cached,
		Coalesced:  res.Coalesced,
	}
	st := res.Stats.Stages
	if !res.Cached && st.Solve > 0 {
		ms := func(t time.Duration) float64 { return float64(t.Microseconds()) / 1000 }
		d.StageMS = map[string]float64{
			"permute_ms": ms(st.Permute),
			"forward_ms": ms(st.Forward),
			"solve_ms":   ms(st.Solve),
			"back_ms":    ms(st.Back),
		}
	}
	return d
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	seedStr := r.URL.Query().Get("seed")
	seed, err := strconv.Atoi(seedStr)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "seed %q is not an integer", seedStr)
		return
	}
	req := QueryRequest{
		Seed:  seed,
		Full:  r.URL.Query().Get("full") == "true",
		Exact: r.URL.Query().Get("exact") == "true",
		Debug: r.URL.Query().Get("debug") == "1",
	}
	if v := r.URL.Query().Get("topk"); v != "" {
		req.TopK, err = strconv.Atoi(v)
		if err != nil || req.TopK < 0 {
			s.fail(w, http.StatusBadRequest, "bad topk %q", v)
			return
		}
	}
	ctx, traceID := traceContext(r)
	if traceID != "" {
		w.Header().Set(obs.TraceHeader, traceID)
	}
	resp, err := s.core.Query(ctx, req)
	if err != nil {
		s.failCore(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// traceContext resolves the request's tracing context. A propagated
// X-Bepi-Trace header wins: the upstream root already decided this request is
// traced, and the executor adopts its trace ID so the shard's spans join the
// caller's tree. Otherwise ?trace=1 mints a fresh trace ID, making a single
// ad-hoc request traceable regardless of the sampling rate. The returned
// trace ID (if any) is echoed back in the X-Bepi-Trace response header so the
// caller knows what to ask /debug/traces?trace=<id> for.
func traceContext(r *http.Request) (context.Context, string) {
	ctx := r.Context()
	if tc, ok := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader)); ok {
		return obs.WithTrace(ctx, tc), tc.TraceID
	}
	if r.URL.Query().Get("trace") == "1" {
		tc := obs.TraceContext{TraceID: obs.NewTraceID()}
		return obs.WithTrace(ctx, tc), tc.TraceID
	}
	return ctx, ""
}

// PersonalizedRequest is the /personalized request body.
type PersonalizedRequest struct {
	// Weights maps node id (as a JSON string key) to restart weight.
	Weights map[string]float64 `json:"weights"`
	TopK    int                `json:"topk"`
}

func (s *Server) handlePersonalized(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req PersonalizedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	weights := make(map[int]float64, len(req.Weights))
	for k, v := range req.Weights {
		node, err := strconv.Atoi(k)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad node id %q", k)
			return
		}
		weights[node] = v
	}
	ctx, traceID := traceContext(r)
	if traceID != "" {
		w.Header().Set(obs.TraceHeader, traceID)
	}
	resp, err := s.core.Personalized(ctx, weights, req.TopK)
	if err != nil {
		s.failCore(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
