// Package server exposes a preprocessed BePI index over HTTP/JSON — the
// "many queries against one index" serving shape the paper's preprocessing
// phase exists for. The handler is stdlib net/http only; all query traffic
// runs through the internal/qexec execution subsystem (worker pool with
// pooled workspaces → batch scheduler → LRU cache + singleflight →
// admission control), so concurrent requests coalesce, hot seeds hit the
// cache, and overload sheds with 429 instead of piling up goroutines.
//
// Endpoints:
//
//	GET  /healthz                          liveness probe
//	GET  /stats                            index statistics
//	GET  /metrics                          traffic + qexec counters, latency
//	                                       quantiles, prep stats (JSON;
//	                                       Prometheus text when Accept says
//	                                       text/plain or ?format=prometheus)
//	GET  /metrics.prom                     always Prometheus text format
//	GET  /debug/traces?n=K                 recent per-query stage traces
//	GET  /query?seed=N&topk=K              top-K ranking for a seed
//	GET  /query?seed=N&full=true           the full score vector
//	GET  /query?seed=N&debug=1             adds solver/stage detail
//	POST /personalized {"weights":{...}}   multi-seed PPR ranking
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"bepi"
	"bepi/internal/core"
	"bepi/internal/qexec"
)

// Server is an http.Handler serving RWR queries from one engine through a
// qexec.Executor. In dynamic mode (NewDynamic) the engine is replaced
// in-place when a background rebuild swaps, so it is held behind an atomic
// pointer; handlers snapshot it once per request.
type Server struct {
	eng  atomic.Pointer[bepi.Engine]
	dyn  *bepi.Dynamic // nil for a static index
	exec *qexec.Executor
	mux  *http.ServeMux

	// Served-traffic counters (atomic; exposed at /metrics).
	queries      atomic.Int64
	personalized atomic.Int64
	errors       atomic.Int64
	queryNanos   atomic.Int64
}

// New builds a server over a preprocessed engine with default execution
// settings. Call Close to stop the execution pool.
func New(eng *bepi.Engine) *Server { return NewWithConfig(eng, qexec.Config{}) }

// NewWithConfig builds a server with explicit query-execution settings
// (pool size, batch window, cache entries, queue depth, per-query timeout).
func NewWithConfig(eng *bepi.Engine, cfg qexec.Config) *Server {
	s := &Server{
		exec: qexec.New(eng.Internal(), cfg),
		mux:  http.NewServeMux(),
	}
	s.eng.Store(eng)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.prom", s.handleMetricsProm)
	s.mux.HandleFunc("/debug/traces", s.handleTraces)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/personalized", s.handlePersonalized)
	s.mux.HandleFunc("/edges", s.handleEdges)
	s.mux.HandleFunc("/flush", s.handleFlush)
	s.mux.HandleFunc("/flush/", s.handleFlushStatus)
	return s
}

// NewDynamic builds a server over a dynamic (online-update) index: the
// /edges and /flush endpoints buffer updates and trigger background
// rebuilds, and every successful rebuild atomically swaps the serving
// engine, purges the executor's score cache, and bumps the index
// generation — queries in flight keep completing on the old engine, and no
// stale cached score survives the swap.
func NewDynamic(d *bepi.Dynamic, cfg qexec.Config) *Server {
	s := NewWithConfig(d.Engine(), cfg)
	s.dyn = d
	d.OnSwap(func(eng *bepi.Engine, gen uint64, rebuild time.Duration) {
		s.eng.Store(eng)
		s.exec.SwapEngine(eng.Internal())
		s.exec.Observer().Rebuild.Observe(rebuild.Seconds())
	})
	return s
}

// engine snapshots the currently serving engine.
func (s *Server) engine() *bepi.Engine { return s.eng.Load() }

// Dynamic returns the underlying dynamic index, or nil for a static one.
func (s *Server) Dynamic() *bepi.Dynamic { return s.dyn }

// Executor exposes the execution subsystem (for tests and shutdown hooks).
func (s *Server) Executor() *qexec.Executor { return s.exec }

// Close drains and stops the query-execution pool. In-flight requests
// finish; new ones fail with 503.
func (s *Server) Close() { s.exec.Close() }

// MetricsResponse is the /metrics payload.
type MetricsResponse struct {
	Queries         int64   `json:"queries"`
	Personalized    int64   `json:"personalized"`
	Errors          int64   `json:"errors"`
	AvgQueryMS      float64 `json:"avg_query_ms"`
	IndexBytes      int64   `json:"index_bytes"`
	PreprocessMS    float64 `json:"preprocess_ms"`
	QueriesPerIndex float64 `json:"queries_per_preprocess"`

	// Query-execution subsystem counters.
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheEntries  int     `json:"cache_entries"`
	Coalesced     int64   `json:"coalesced"`
	Shed          int64   `json:"shed"`
	Batches       int64   `json:"batches"`
	Executed      int64   `json:"executed"`
	BatchSizeHist []int64 `json:"batch_size_hist"` // buckets ≤1, ≤2, ≤4, ≤8, ≤16, +Inf
	Queued        int     `json:"queued"`
	HitRate       float64 `json:"hit_rate"`
	AvgBatchSize  float64 `json:"avg_batch_size"`

	// Observability layer: solver progress, latency quantiles, slow queries.
	SolverIters  int64          `json:"solver_iters_total"`
	SlowQueries  int64          `json:"slow_queries"`
	QueryLatency LatencySummary `json:"query_latency"`
	QueueWait    LatencySummary `json:"queue_wait"`

	// Dynamic-update subsystem (generation is 1 and the rest zero for a
	// static index).
	Generation     uint64         `json:"generation"`
	EngineSwaps    int64          `json:"engine_swaps"`
	SolvePanics    int64          `json:"solve_panics"`
	PendingUpdates int            `json:"pending_updates"`
	RebuildLatency LatencySummary `json:"rebuild_latency"`

	// Prep is the preprocessing stage/size breakdown (core.PrepStats).
	Prep PrepMetrics `json:"prep"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		s.handleMetricsProm(w, r)
		return
	}
	eng := s.engine()
	q := s.queries.Load() + s.personalized.Load()
	var avg float64
	if q > 0 {
		avg = float64(s.queryNanos.Load()) / float64(q) / 1e6
	}
	prepMS := float64(eng.PreprocessTime().Microseconds()) / 1000
	var ratio float64
	if prepMS > 0 {
		ratio = float64(q) * avg / prepMS
	}
	xm := s.exec.Metrics()
	o := s.exec.Observer()
	st := eng.Internal().PrepStats()
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	var slow int64
	if o.SlowLog != nil {
		slow = o.SlowLog.Count()
	}
	var pending int
	if s.dyn != nil {
		pending = s.dyn.Pending()
	}
	writeJSON(w, http.StatusOK, MetricsResponse{
		Queries:         s.queries.Load(),
		Personalized:    s.personalized.Load(),
		Errors:          s.errors.Load(),
		AvgQueryMS:      avg,
		IndexBytes:      eng.MemoryBytes(),
		PreprocessMS:    prepMS,
		QueriesPerIndex: ratio,
		CacheHits:       xm.CacheHits,
		CacheMisses:     xm.CacheMisses,
		CacheEntries:    xm.CacheEntries,
		Coalesced:       xm.Coalesced,
		Shed:            xm.Shed,
		Batches:         xm.Batches,
		Executed:        xm.Executed,
		BatchSizeHist:   xm.BatchSizeHist[:],
		Queued:          xm.Queued,
		HitRate:         xm.HitRate(),
		AvgBatchSize:    xm.AvgBatchSize(),
		SolverIters:     o.SolverIters.Load(),
		SlowQueries:     slow,
		QueryLatency:    summarize(o.QueryLatency),
		QueueWait:       summarize(o.QueueWait),
		Generation:      xm.Generation,
		EngineSwaps:     xm.EngineSwaps,
		SolvePanics:     xm.SolvePanics,
		PendingUpdates:  pending,
		RebuildLatency:  summarize(o.Rebuild),
		Prep: PrepMetrics{
			TotalMS:     ms(st.Total),
			ReorderMS:   ms(st.Reorder),
			BuildHMS:    ms(st.BuildH),
			FactorH11MS: ms(st.FactorH11),
			SchurMS:     ms(st.Schur),
			ILUMS:       ms(st.ILU),
			Nodes:       st.N,
			Edges:       st.M,
			Spokes:      st.N1,
			Hubs:        st.N2,
			Deadends:    st.N3,
			Blocks:      st.Blocks,
			SchurNNZ:    st.SchurNNZ,
			HubRatio:    st.HubRatio,
			Workers:     st.Workers,
		},
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.errors.Add(1)
	writeError(w, status, format, args...)
}

// failQuery maps an execution error to the right status: shed load is 429,
// deadline/shutdown are 503, anything else is a 500.
func (s *Server) failQuery(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, qexec.ErrOverloaded):
		s.fail(w, http.StatusTooManyRequests, "overloaded: %v", err)
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, http.StatusServiceUnavailable, "query deadline exceeded")
	case errors.Is(err, qexec.ErrClosed), errors.Is(err, context.Canceled):
		s.fail(w, http.StatusServiceUnavailable, "server shutting down: %v", err)
	default:
		s.fail(w, http.StatusInternalServerError, "query failed: %v", err)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "nodes": s.engine().N()})
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Nodes          int     `json:"nodes"`
	Spokes         int     `json:"spokes"`
	Hubs           int     `json:"hubs"`
	Deadends       int     `json:"deadends"`
	SchurNNZ       int     `json:"schur_nnz"`
	IndexBytes     int64   `json:"index_bytes"`
	HubRatio       float64 `json:"hub_ratio"`
	RestartProb    float64 `json:"restart_prob"`
	Tolerance      float64 `json:"tolerance"`
	Variant        string  `json:"variant"`
	Preconditioned bool    `json:"preconditioned"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	eng := s.engine()
	st := eng.Internal().PrepStats()
	opts := eng.Internal().Options()
	writeJSON(w, http.StatusOK, StatsResponse{
		Nodes:          eng.N(),
		Spokes:         st.N1,
		Hubs:           st.N2,
		Deadends:       st.N3,
		SchurNNZ:       st.SchurNNZ,
		IndexBytes:     eng.MemoryBytes(),
		HubRatio:       st.HubRatio,
		RestartProb:    opts.C,
		Tolerance:      opts.Tol,
		Variant:        opts.Variant.String(),
		Preconditioned: eng.Internal().Preconditioned(),
	})
}

// RankedEntry is one row of a ranking response.
type RankedEntry struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// QueryResponse is the /query payload.
type QueryResponse struct {
	Seed       int           `json:"seed"`
	Top        []RankedEntry `json:"top,omitempty"`
	Scores     []float64     `json:"scores,omitempty"`
	Iterations int           `json:"iterations"`
	DurationMS float64       `json:"duration_ms"`
	Cached     bool          `json:"cached,omitempty"`
	Debug      *QueryDebug   `json:"debug,omitempty"`
}

// QueryDebug is the per-query solver and stage detail returned when the
// request asks for ?debug=1.
type QueryDebug struct {
	Iterations int     `json:"iterations"`
	Residual   float64 `json:"residual"`
	Cached     bool    `json:"cached"`
	Coalesced  bool    `json:"coalesced"`
	// Engine stage wall times in milliseconds (zero for cache hits, which
	// never reach the engine). Shared phases report the whole batch's time;
	// solve_ms is this query's own Schur solve.
	StageMS map[string]float64 `json:"stage_ms,omitempty"`
}

func queryDebug(res qexec.Result) *QueryDebug {
	d := &QueryDebug{
		Iterations: res.Stats.Iterations,
		Residual:   res.Stats.Residual,
		Cached:     res.Cached,
		Coalesced:  res.Coalesced,
	}
	st := res.Stats.Stages
	if !res.Cached && st.Solve > 0 {
		ms := func(t time.Duration) float64 { return float64(t.Microseconds()) / 1000 }
		d.StageMS = map[string]float64{
			"permute_ms": ms(st.Permute),
			"forward_ms": ms(st.Forward),
			"solve_ms":   ms(st.Solve),
			"back_ms":    ms(st.Back),
		}
	}
	return d
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	seedStr := r.URL.Query().Get("seed")
	seed, err := strconv.Atoi(seedStr)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "seed %q is not an integer", seedStr)
		return
	}
	if n := s.engine().N(); seed < 0 || seed >= n {
		s.fail(w, http.StatusBadRequest, "seed %d out of range [0,%d)", seed, n)
		return
	}
	topk := 10
	if v := r.URL.Query().Get("topk"); v != "" {
		topk, err = strconv.Atoi(v)
		if err != nil || topk < 0 {
			s.fail(w, http.StatusBadRequest, "bad topk %q", v)
			return
		}
	}
	full := r.URL.Query().Get("full") == "true"
	start := time.Now()
	var res qexec.Result
	var top []core.Ranked
	if full {
		res, err = s.exec.Query(r.Context(), seed)
	} else {
		// One solve serves both the scores and the ranking; the cached
		// vector is ranked without touching the engine again. Ranking runs
		// inside the executor so traces carry the "rank" span.
		top, res, err = s.exec.TopK(r.Context(), seed, topk)
	}
	if err != nil {
		s.failQuery(w, err)
		return
	}
	s.queries.Add(1)
	s.queryNanos.Add(time.Since(start).Nanoseconds())
	resp := QueryResponse{
		Seed:       seed,
		Iterations: res.Stats.Iterations,
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
		Cached:     res.Cached,
	}
	if r.URL.Query().Get("debug") == "1" {
		resp.Debug = queryDebug(res)
	}
	if full {
		resp.Scores = res.Scores
	} else {
		resp.Top = make([]RankedEntry, len(top))
		for i, t := range top {
			resp.Top[i] = RankedEntry{Node: t.Node, Score: t.Score}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// PersonalizedRequest is the /personalized request body.
type PersonalizedRequest struct {
	// Weights maps node id (as a JSON string key) to restart weight.
	Weights map[string]float64 `json:"weights"`
	TopK    int                `json:"topk"`
}

func (s *Server) handlePersonalized(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req PersonalizedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Weights) == 0 {
		s.fail(w, http.StatusBadRequest, "weights must be non-empty")
		return
	}
	q := make([]float64, s.engine().N())
	var sum float64
	seeds := map[int]bool{}
	for k, v := range req.Weights {
		node, err := strconv.Atoi(k)
		if err != nil || node < 0 || node >= len(q) {
			s.fail(w, http.StatusBadRequest, "bad node id %q", k)
			return
		}
		if v < 0 {
			s.fail(w, http.StatusBadRequest, "negative weight for node %s", k)
			return
		}
		q[node] += v
		sum += v
		seeds[node] = true
	}
	if sum <= 0 {
		s.fail(w, http.StatusBadRequest, "weights must sum to a positive value")
		return
	}
	for i := range q {
		q[i] /= sum
	}
	topk := req.TopK
	if topk <= 0 {
		topk = 10
	}
	start := time.Now()
	res, err := s.exec.Personalized(r.Context(), q)
	if err != nil {
		s.failQuery(w, err)
		return
	}
	s.personalized.Add(1)
	s.queryNanos.Add(time.Since(start).Nanoseconds())
	scores := res.Scores
	top := core.RankTopKFunc(scores, topk, func(node int) bool {
		return seeds[node] || scores[node] <= 0
	})
	entries := make([]RankedEntry, len(top))
	for i, t := range top {
		entries[i] = RankedEntry{Node: t.Node, Score: t.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"top":         entries,
		"duration_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}
