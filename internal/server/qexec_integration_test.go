package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"bepi"
	"bepi/internal/qexec"
)

// TestMixedTrafficConcurrency hammers /query and /personalized from many
// goroutines through the qexec path and checks every score against the
// exact engine answer plus a clean shutdown. Run under -race this covers
// the whole serving stack.
func TestMixedTrafficConcurrency(t *testing.T) {
	g := bepi.RMAT(8, 6, 5)
	eng, err := bepi.New(g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(eng, qexec.Config{MaxBatch: 4, CacheEntries: 8})

	const seeds = 10
	wantSeed := make([][]float64, seeds)
	wantPPR := make([][]float64, seeds)
	for i := 0; i < seeds; i++ {
		if wantSeed[i], err = eng.Query(i); err != nil {
			t.Fatal(err)
		}
		q := make([]float64, eng.N())
		q[i], q[i+20] = 0.25, 0.75
		if wantPPR[i], err = eng.Personalized(q); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 12
	const opsEach = 25
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for op := 0; op < opsEach; op++ {
				i := (w*5 + op) % seeds
				if (w+op)%3 == 0 {
					body := fmt.Sprintf(`{"weights":{"%d":0.25,"%d":0.75},"topk":5}`, i, i+20)
					req := httptest.NewRequest(http.MethodPost, "/personalized", bytes.NewReader([]byte(body)))
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("personalized %d: status %d: %s", i, rec.Code, rec.Body.String())
						return
					}
					var resp struct {
						Top []RankedEntry `json:"top"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						t.Error(err)
						return
					}
					for _, e := range resp.Top {
						if math.Abs(e.Score-wantPPR[i][e.Node]) > 1e-12 {
							t.Errorf("personalized %d node %d: got %v want %v", i, e.Node, e.Score, wantPPR[i][e.Node])
							return
						}
					}
				} else {
					req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/query?seed=%d&full=true", i), nil)
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("query %d: status %d: %s", i, rec.Code, rec.Body.String())
						return
					}
					var resp QueryResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						t.Error(err)
						return
					}
					for u, v := range resp.Scores {
						if math.Abs(v-wantSeed[i][u]) > 1e-12 {
							t.Errorf("query %d node %d: got %v want %v", i, u, v, wantSeed[i][u])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()

	// After shutdown an uncached query sheds with 503 instead of
	// panicking. (Cached seeds keep serving — the cache outlives the pool.)
	req := httptest.NewRequest(http.MethodGet, "/query?seed=200", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown query: status %d want 503", rec.Code)
	}
}

// TestQexecMetricsExposed checks /metrics carries the execution-subsystem
// counters: a repeated seed must show up as a cache hit. The warmup query
// asks for exact=true so its full-tolerance vector enters the cache (a
// bound-pruned query may stop early, and early-stopped vectors are never
// cached); the repeat is a default bounded query served by ranking that
// cached vector.
func TestQexecMetricsExposed(t *testing.T) {
	s, _ := testServer(t)
	defer s.Close()
	get(t, s, "/query?seed=4&exact=true")
	rec, body := get(t, s, "/query?seed=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if body["cached"] != true {
		t.Fatalf("repeat seed not served from cache: %v", body)
	}
	_, metrics := get(t, s, "/metrics")
	if int(metrics["cache_hits"].(float64)) < 1 {
		t.Fatalf("cache_hits = %v, want ≥ 1", metrics["cache_hits"])
	}
	if int(metrics["executed"].(float64)) < 1 {
		t.Fatalf("executed = %v, want ≥ 1", metrics["executed"])
	}
	if _, ok := metrics["batch_size_hist"].([]any); !ok {
		t.Fatalf("batch_size_hist missing: %v", metrics)
	}
}

// TestOverloadReturns429 floods a depth-1 queue behind a single worker and
// checks that excess requests are shed with 429 and counted in /metrics.
// The burst uses requests whose client context is already canceled: the
// handler submits them (each occupies a queue slot until a worker collects
// it) but returns without blocking, so a single goroutine can outpace the
// pool deterministically instead of racing the scheduler.
func TestOverloadReturns429(t *testing.T) {
	g := bepi.RMAT(8, 6, 5)
	eng, err := bepi.New(g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(eng, qexec.Config{
		Workers:      1,
		MaxBatch:     2,
		QueueDepth:   1,
		CacheEntries: -1,
	})
	defer s.Close()

	gone, cancel := context.WithCancel(context.Background())
	cancel()
	total, shed := 0, 0
	for attempt := 0; attempt < 10 && shed == 0; attempt++ {
		const N = 32
		for i := 0; i < N; i++ {
			body := fmt.Sprintf(`{"weights":{"%d":1}}`, i)
			req := httptest.NewRequest(http.MethodPost, "/personalized", bytes.NewReader([]byte(body)))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req.WithContext(gone))
			total++
			switch rec.Code {
			case http.StatusServiceUnavailable: // accepted, then client-gone
			case http.StatusTooManyRequests:
				shed++
			default:
				t.Fatalf("unexpected status %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
	if shed == 0 {
		t.Fatal("flooding a depth-1 queue shed nothing across 10 bursts")
	}
	_, metrics := get(t, s, "/metrics")
	if int(metrics["shed"].(float64)) != shed {
		t.Fatalf("shed counter %v, callers saw %d", metrics["shed"], shed)
	}
	if got := int(metrics["errors"].(float64)); got != total {
		t.Fatalf("errors = %d, want %d (every burst request failed)", got, total)
	}
}

// TestPersonalizedErrorsCounted locks in the /metrics fix: bad
// /personalized requests must increment the error counter like bad /query
// requests always did.
func TestPersonalizedErrorsCounted(t *testing.T) {
	s, _ := testServer(t)
	defer s.Close()
	for _, body := range []string{`not json`, `{"weights":{}}`, `{"weights":{"1":-1}}`} {
		req := httptest.NewRequest(http.MethodPost, "/personalized", bytes.NewReader([]byte(body)))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d", body, rec.Code)
		}
	}
	_, metrics := get(t, s, "/metrics")
	if got := int(metrics["errors"].(float64)); got != 3 {
		t.Fatalf("errors = %d, want 3", got)
	}
}
