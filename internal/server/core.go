package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bepi"
	"bepi/internal/core"
	"bepi/internal/obs"
	"bepi/internal/qexec"
	"bepi/internal/sparse"
)

// Core is the transport-agnostic serving core: the query/top-k/metrics
// logic that used to live inside the HTTP handlers, factored out so the
// same engine can serve two transports at once — the public HTTP binding
// (Server) and the cluster coordinator's in-process replica path
// (internal/cluster.LocalBackend). Core methods speak plain requests and
// responses; transport concerns (JSON decoding, status codes, headers)
// stay in the bindings, which map Core errors through StatusOf.
//
// Every response that carries scores is tagged with the (index hash,
// generation) pair it was computed under, so a coordinator gathering
// partial results from several replicas can refuse to merge across an
// engine swap.
type Core struct {
	eng  atomic.Pointer[bepi.Engine]
	dyn  *bepi.Dynamic // nil for a static index
	exec *qexec.Executor

	// hashes maps engine generation → index fingerprint, so a result tagged
	// with an older generation (a solve that finished after a swap) is
	// paired with the hash of the engine it was actually computed on, not
	// the current one. Bounded to the last few generations.
	hmu    sync.Mutex
	hashes map[uint64]string

	// Served-traffic counters (atomic; exposed at /metrics).
	queries      atomic.Int64
	personalized atomic.Int64
	errors       atomic.Int64
	queryNanos   atomic.Int64

	// Dynamic-rebuild bookkeeping (atomic; exposed at /metrics).
	// deltaApplied counts rebuilds absorbed incrementally (delta-spoke or
	// delta-hub mode); lastRebuildMode holds the mode of the most recent
	// settled rebuild as a bepi.RebuildMode string.
	deltaApplied    atomic.Int64
	lastRebuildMode atomic.Value
}

// NewCore builds a serving core over a static preprocessed engine. Call
// Close to stop the execution pool.
func NewCore(eng *bepi.Engine, cfg qexec.Config) *Core {
	c := &Core{
		exec:   qexec.New(eng.Internal(), cfg),
		hashes: make(map[uint64]string),
	}
	c.eng.Store(eng)
	c.recordHash(c.exec.Generation(), eng)
	return c
}

// NewDynamicCore builds a serving core over a dynamic (online-update)
// index: every successful background rebuild atomically swaps the serving
// engine, purges the executor's score cache, bumps the generation, and
// records the new index fingerprint.
func NewDynamicCore(d *bepi.Dynamic, cfg qexec.Config) *Core {
	c := NewCore(d.Engine(), cfg)
	c.dyn = d
	d.OnSwap(func(eng *bepi.Engine, gen uint64, rebuild time.Duration) {
		c.eng.Store(eng)
		c.exec.SwapEngine(eng.Internal())
		c.recordHash(c.exec.Generation(), eng)
		c.exec.Observer().Rebuild.Observe(rebuild.Seconds())
	})
	// Flight-recorder events for rebuild outcomes. OnSwap covers the
	// engine-swap bookkeeping above; OnRebuild additionally fires for
	// failed rebuilds, which never swap but are exactly what an incident
	// review needs to see.
	d.OnRebuild(func(id, gen uint64, rebuild time.Duration, mode bepi.RebuildMode, err error) {
		ev := c.exec.Observer().Events
		fields := map[string]string{
			"id":         strconv.FormatUint(id, 10),
			"generation": strconv.FormatUint(gen, 10),
			"duration":   rebuild.String(),
			"mode":       string(mode),
		}
		if err != nil {
			fields["error"] = err.Error()
			ev.Record("rebuild_fail", "", fields)
			return
		}
		c.lastRebuildMode.Store(string(mode))
		if mode == bepi.RebuildModeDeltaSpoke || mode == bepi.RebuildModeDeltaHub {
			c.deltaApplied.Add(1)
		}
		ev.Record("rebuild_swap", "", fields)
	})
	return c
}

// BuildInfo reports the running build's identity: module version, Go
// toolchain, and whether the serving engine uses the compact (CSR32) matrix
// layout.
func (c *Core) BuildInfo() obs.BuildInfo {
	compact := "off"
	if c.Engine().Internal().Compacted() {
		compact = "on"
	}
	return obs.BuildInfo{Version: bepi.Version, GoVersion: runtime.Version(), Compact: compact}
}

// MetricsSnapshot exports this core's metrics in the mergeable form the
// cluster coordinator aggregates: every observer histogram keyed by its
// Prometheus family name, the cumulative counters, and build identity.
// Served at GET /metrics/snapshot.
func (c *Core) MetricsSnapshot() obs.MetricsSnapshot {
	o := c.exec.Observer()
	xm := c.exec.Metrics()
	var slow int64
	if o.SlowLog != nil {
		slow = o.SlowLog.Count()
	}
	return obs.MetricsSnapshot{
		TakenAt:    time.Now(),
		Histograms: o.HistogramSnapshots(),
		Counters: map[string]int64{
			"queries":           c.queries.Load(),
			"personalized":      c.personalized.Load(),
			"errors":            c.errors.Load(),
			"cache_hits":        xm.CacheHits,
			"cache_misses":      xm.CacheMisses,
			"coalesced":         xm.Coalesced,
			"shed":              xm.Shed,
			"engine_swaps":      xm.EngineSwaps,
			"solve_panics":      xm.SolvePanics,
			"topk_solves":       xm.TopKSolves,
			"topk_early_stops":  xm.EarlyStops,
			"slow_queries":      slow,
			"solver_iterations": o.SolverIters.Load(),
			"kernel_bytes":      o.KernelBytes.Load(),
			"kernel_seconds_ns": o.KernelNanos.Load(),
			"delta_applied":     c.deltaApplied.Load(),
		},
		Build: c.BuildInfo(),
	}
}

// Engine snapshots the currently serving engine.
func (c *Core) Engine() *bepi.Engine { return c.eng.Load() }

// Dynamic returns the underlying dynamic index, or nil for a static one.
func (c *Core) Dynamic() *bepi.Dynamic { return c.dyn }

// Executor exposes the execution subsystem (for bindings and tests).
func (c *Core) Executor() *qexec.Executor { return c.exec }

// Close drains and stops the query-execution pool.
func (c *Core) Close() { c.exec.Close() }

// IndexFingerprint hashes the quantities that determine an engine's
// answers — graph size, partition, Schur structure, and solver options —
// into a short hex tag. Two replicas that preprocessed the same graph with
// the same options fingerprint identically regardless of matrix layout
// (compact vs wide CSR produce bit-identical scores); any edge update
// changes it. The cluster coordinator uses equality of this tag (plus the
// generation) as its merge guard.
func IndexFingerprint(eng *bepi.Engine) string {
	st := eng.Internal().PrepStats()
	opts := eng.Internal().Options()
	h := fnv.New64a()
	for _, v := range []uint64{
		uint64(st.N), uint64(st.M), uint64(st.N1), uint64(st.N2),
		uint64(st.N3), uint64(st.Blocks), uint64(st.SchurNNZ),
		math.Float64bits(st.HubRatio),
		math.Float64bits(opts.C), math.Float64bits(opts.Tol),
		uint64(opts.Variant),
	} {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func (c *Core) recordHash(gen uint64, eng *bepi.Engine) {
	fp := IndexFingerprint(eng)
	c.hmu.Lock()
	c.hashes[gen] = fp
	for g := range c.hashes {
		if g+8 < gen {
			delete(c.hashes, g)
		}
	}
	c.hmu.Unlock()
}

// hashFor returns the index fingerprint recorded for a generation (empty
// when the generation has aged out of the window).
func (c *Core) hashFor(gen uint64) string {
	c.hmu.Lock()
	defer c.hmu.Unlock()
	return c.hashes[gen]
}

// Generation returns the engine generation currently being served.
func (c *Core) Generation() uint64 { return c.exec.Generation() }

// IndexHash returns the fingerprint of the engine currently being served.
func (c *Core) IndexHash() string { return c.hashFor(c.exec.Generation()) }

// RebuildInFlight reports whether a background index rebuild is running.
func (c *Core) RebuildInFlight() bool {
	if c.dyn == nil {
		return false
	}
	r := c.dyn.LastRebuild()
	return r != nil && r.Status().State == bepi.RebuildRunning
}

// HealthResponse is the /healthz readiness payload: enough for a load
// balancer or the cluster coordinator's health checker to route around a
// replica that is rebuilding or backed up.
type HealthResponse struct {
	Status     string `json:"status"`
	Nodes      int    `json:"nodes"`
	Generation uint64 `json:"generation"`
	IndexHash  string `json:"index_hash"`
	// QueueDepth is the current admission-queue occupancy (gauge).
	QueueDepth int `json:"queue_depth"`
	// RebuildInFlight is true while a background rebuild is running; the
	// replica keeps answering from the previous index for its duration.
	RebuildInFlight bool `json:"rebuild_in_flight"`
	// PendingUpdates counts buffered edge updates (dynamic mode only).
	PendingUpdates int `json:"pending_updates,omitempty"`
}

// Health reports the core's readiness state.
func (c *Core) Health() HealthResponse {
	h := HealthResponse{
		Status:          "ok",
		Nodes:           c.Engine().N(),
		Generation:      c.Generation(),
		IndexHash:       c.IndexHash(),
		QueueDepth:      c.exec.Metrics().Queued,
		RebuildInFlight: c.RebuildInFlight(),
	}
	if c.dyn != nil {
		h.PendingUpdates = c.dyn.Pending()
	}
	return h
}

// StatusError is an error with an HTTP-shaped status code, returned by
// Core methods for request-level failures (bad seed, bad weights) so every
// transport maps them identically.
type StatusError struct {
	Status int
	Msg    string
}

func (e *StatusError) Error() string { return e.Msg }

func badRequest(format string, args ...any) error {
	return &StatusError{Status: http.StatusBadRequest, Msg: fmt.Sprintf(format, args...)}
}

// StatusOf maps a Core (or qexec) error to its HTTP status: shed load is
// 429, deadline/shutdown are 503, validation errors carry their own
// status, anything else is a 500.
func StatusOf(err error) int {
	var se *StatusError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &se):
		return se.Status
	case errors.Is(err, qexec.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, qexec.ErrClosed),
		errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// RetryAfterSeconds is the back-off hint attached to admission-control
// rejections: 429 means the queue is momentarily full (retry quickly, the
// queue drains at solve speed); 503 means shutdown or deadline trouble
// (back off harder). Zero means no hint.
func RetryAfterSeconds(status int) int {
	switch status {
	case http.StatusTooManyRequests:
		return 1
	case http.StatusServiceUnavailable:
		return 2
	}
	return 0
}

// QueryRequest is one single-seed query through the core.
type QueryRequest struct {
	Seed int
	// TopK bounds the ranking length (default 10); ignored when Full.
	TopK int
	// Full returns the whole score vector instead of a ranking.
	Full bool
	// Exact forces the ranking to come from a full-tolerance solve instead
	// of the default bound-pruned search. Both return the identical top-k
	// SET; Exact additionally guarantees the reported scores are at full
	// solver tolerance (the cluster tier's weighted merges need that).
	Exact bool
	// Debug attaches solver/stage detail to the response.
	Debug bool
}

// Query answers a single-seed query: a ranking by default, the full score
// vector when req.Full. The returned scores may be shared with the
// executor's cache and must be treated as read-only.
func (c *Core) Query(ctx context.Context, req QueryRequest) (QueryResponse, error) {
	if n := c.Engine().N(); req.Seed < 0 || req.Seed >= n {
		c.errors.Add(1)
		return QueryResponse{}, badRequest("seed %d out of range [0,%d)", req.Seed, n)
	}
	topk := req.TopK
	if topk == 0 {
		topk = 10
	}
	if topk < 0 {
		c.errors.Add(1)
		return QueryResponse{}, badRequest("bad topk %d", topk)
	}
	start := time.Now()
	var res qexec.Result
	var top []core.Ranked
	var err error
	switch {
	case req.Full:
		res, err = c.exec.Query(ctx, req.Seed)
	case req.Exact:
		// Full-tolerance solve + rank: exact scores, not just the exact set.
		top, res, err = c.exec.TopKFull(ctx, req.Seed, topk)
	default:
		// Bound-pruned search: the Schur solve stops as soon as the top-k
		// set is certified, a cached full vector is ranked without touching
		// the engine. Ranking runs inside the executor so traces carry the
		// "rank" span.
		top, res, err = c.exec.TopK(ctx, req.Seed, topk)
	}
	if err != nil {
		c.errors.Add(1)
		return QueryResponse{}, err
	}
	c.queries.Add(1)
	c.queryNanos.Add(time.Since(start).Nanoseconds())
	resp := QueryResponse{
		Seed:         req.Seed,
		Iterations:   res.Stats.Iterations,
		DurationMS:   float64(time.Since(start).Microseconds()) / 1000,
		Cached:       res.Cached,
		EarlyStopped: res.EarlyStopped,
		Generation:   res.Generation,
		IndexHash:    c.hashFor(res.Generation),
	}
	if req.Debug {
		resp.Debug = queryDebug(res)
	}
	if req.Full {
		resp.Scores = res.Scores
	} else {
		resp.Top = make([]RankedEntry, len(top))
		for i, t := range top {
			resp.Top[i] = RankedEntry{Node: t.Node, Score: t.Score}
		}
	}
	return resp, nil
}

// PersonalizedResponse is the /personalized payload.
type PersonalizedResponse struct {
	Top        []RankedEntry `json:"top"`
	DurationMS float64       `json:"duration_ms"`
	Generation uint64        `json:"generation"`
	IndexHash  string        `json:"index_hash,omitempty"`
}

// Personalized answers a multi-seed PPR query from a node→weight map. The
// weights are validated and normalized here so both transports enforce the
// same rules; seeds themselves are excluded from the ranking.
func (c *Core) Personalized(ctx context.Context, weights map[int]float64, topk int) (PersonalizedResponse, error) {
	if len(weights) == 0 {
		c.errors.Add(1)
		return PersonalizedResponse{}, badRequest("weights must be non-empty")
	}
	q := make([]float64, c.Engine().N())
	var sum float64
	seeds := map[int]bool{}
	for node, v := range weights {
		if node < 0 || node >= len(q) {
			c.errors.Add(1)
			return PersonalizedResponse{}, badRequest("node id %d out of range [0,%d)", node, len(q))
		}
		if v < 0 {
			c.errors.Add(1)
			return PersonalizedResponse{}, badRequest("negative weight for node %d", node)
		}
		q[node] += v
		sum += v
		seeds[node] = true
	}
	if sum <= 0 {
		c.errors.Add(1)
		return PersonalizedResponse{}, badRequest("weights must sum to a positive value")
	}
	for i := range q {
		q[i] /= sum
	}
	if topk <= 0 {
		topk = 10
	}
	start := time.Now()
	res, err := c.exec.Personalized(ctx, q)
	if err != nil {
		c.errors.Add(1)
		return PersonalizedResponse{}, err
	}
	c.personalized.Add(1)
	c.queryNanos.Add(time.Since(start).Nanoseconds())
	scores := res.Scores
	top := core.RankTopKFunc(scores, topk, func(node int) bool {
		return seeds[node] || scores[node] <= 0
	})
	entries := make([]RankedEntry, len(top))
	for i, t := range top {
		entries[i] = RankedEntry{Node: t.Node, Score: t.Score}
	}
	return PersonalizedResponse{
		Top:        entries,
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
		Generation: res.Generation,
		IndexHash:  c.hashFor(res.Generation),
	}, nil
}

// MetricsResponse is the /metrics payload.
type MetricsResponse struct {
	Queries         int64   `json:"queries"`
	Personalized    int64   `json:"personalized"`
	Errors          int64   `json:"errors"`
	AvgQueryMS      float64 `json:"avg_query_ms"`
	IndexBytes      int64   `json:"index_bytes"`
	PreprocessMS    float64 `json:"preprocess_ms"`
	QueriesPerIndex float64 `json:"queries_per_preprocess"`

	// Query-execution subsystem counters.
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheEntries  int     `json:"cache_entries"`
	Coalesced     int64   `json:"coalesced"`
	Shed          int64   `json:"shed"`
	Batches       int64   `json:"batches"`
	Executed      int64   `json:"executed"`
	BatchSizeHist []int64 `json:"batch_size_hist"` // buckets ≤1, ≤2, ≤4, ≤8, ≤16, +Inf
	Queued        int     `json:"queued"`
	HitRate       float64 `json:"hit_rate"`
	AvgBatchSize  float64 `json:"avg_batch_size"`

	// Bounded top-k path: how many queries took it, how many of those the
	// certificate stopped early, and the distribution of iterations saved.
	TopKSolves int64            `json:"topk_solves"`
	EarlyStops int64            `json:"topk_early_stops"`
	TopKSaved  IterationSummary `json:"topk_iters_saved"`

	// Observability layer: solver progress, latency quantiles, slow queries.
	SolverIters  int64          `json:"solver_iters_total"`
	SlowQueries  int64          `json:"slow_queries"`
	QueryLatency LatencySummary `json:"query_latency"`
	QueueWait    LatencySummary `json:"queue_wait"`

	// Dynamic-update subsystem (generation is 1 and the rest zero for a
	// static index).
	Generation     uint64         `json:"generation"`
	EngineSwaps    int64          `json:"engine_swaps"`
	SolvePanics    int64          `json:"solve_panics"`
	PendingUpdates int            `json:"pending_updates"`
	RebuildLatency LatencySummary `json:"rebuild_latency"`

	// Prep is the preprocessing stage/size breakdown (core.PrepStats).
	Prep PrepMetrics `json:"prep"`

	// Kernel is the achieved-bandwidth view of the solve kernels: bytes and
	// seconds accumulated by the kernel hook, their ratio, and the measured
	// STREAM roof it is judged against.
	Kernel KernelMetrics `json:"kernel"`
}

// KernelMetrics reports how close the observed solve kernels run to the
// machine's memory-bandwidth roof.
type KernelMetrics struct {
	// Bytes and Seconds accumulate over every observed Schur-operator and
	// preconditioner application.
	Bytes   int64   `json:"bytes"`
	Seconds float64 `json:"seconds"`
	// AchievedBytesPerSec is Bytes/Seconds (0 before any kernel ran).
	AchievedBytesPerSec float64 `json:"achieved_bytes_per_second"`
	// StreamBytesPerSec is the host's one-shot STREAM-triad roof.
	StreamBytesPerSec float64 `json:"stream_bytes_per_second"`
	// PctOfStream is 100·Achieved/Stream.
	PctOfStream float64 `json:"pct_of_stream"`
	// PrefetchDistance is the gather prefetch lookahead in effect (0 = off).
	PrefetchDistance int `json:"prefetch_distance"`
}

// Stats reports the index statistics (the /stats payload).
func (c *Core) Stats() StatsResponse {
	eng := c.Engine()
	st := eng.Internal().PrepStats()
	opts := eng.Internal().Options()
	return StatsResponse{
		Nodes:          eng.N(),
		Spokes:         st.N1,
		Hubs:           st.N2,
		Deadends:       st.N3,
		SchurNNZ:       st.SchurNNZ,
		IndexBytes:     eng.MemoryBytes(),
		HubRatio:       st.HubRatio,
		RestartProb:    opts.C,
		Tolerance:      opts.Tol,
		Variant:        opts.Variant.String(),
		Preconditioned: eng.Internal().Preconditioned(),
	}
}

// Metrics assembles the full metrics snapshot (the /metrics JSON payload).
func (c *Core) Metrics() MetricsResponse {
	eng := c.Engine()
	q := c.queries.Load() + c.personalized.Load()
	var avg float64
	if q > 0 {
		avg = float64(c.queryNanos.Load()) / float64(q) / 1e6
	}
	prepMS := float64(eng.PreprocessTime().Microseconds()) / 1000
	var ratio float64
	if prepMS > 0 {
		ratio = float64(q) * avg / prepMS
	}
	xm := c.exec.Metrics()
	o := c.exec.Observer()
	st := eng.Internal().PrepStats()
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	var slow int64
	if o.SlowLog != nil {
		slow = o.SlowLog.Count()
	}
	var pending int
	if c.dyn != nil {
		pending = c.dyn.Pending()
	}
	return MetricsResponse{
		Queries:         c.queries.Load(),
		Personalized:    c.personalized.Load(),
		Errors:          c.errors.Load(),
		AvgQueryMS:      avg,
		IndexBytes:      eng.MemoryBytes(),
		PreprocessMS:    prepMS,
		QueriesPerIndex: ratio,
		CacheHits:       xm.CacheHits,
		CacheMisses:     xm.CacheMisses,
		CacheEntries:    xm.CacheEntries,
		Coalesced:       xm.Coalesced,
		Shed:            xm.Shed,
		Batches:         xm.Batches,
		Executed:        xm.Executed,
		BatchSizeHist:   xm.BatchSizeHist[:],
		Queued:          xm.Queued,
		HitRate:         xm.HitRate(),
		AvgBatchSize:    xm.AvgBatchSize(),
		TopKSolves:      xm.TopKSolves,
		EarlyStops:      xm.EarlyStops,
		TopKSaved:       summarizeIters(o.TopKSaved),
		SolverIters:     o.SolverIters.Load(),
		SlowQueries:     slow,
		QueryLatency:    summarize(o.QueryLatency),
		QueueWait:       summarize(o.QueueWait),
		Generation:      xm.Generation,
		EngineSwaps:     xm.EngineSwaps,
		SolvePanics:     xm.SolvePanics,
		PendingUpdates:  pending,
		RebuildLatency:  summarize(o.Rebuild),
		Prep: PrepMetrics{
			TotalMS:     ms(st.Total),
			ReorderMS:   ms(st.Reorder),
			BuildHMS:    ms(st.BuildH),
			FactorH11MS: ms(st.FactorH11),
			SchurMS:     ms(st.Schur),
			ILUMS:       ms(st.ILU),
			Nodes:       st.N,
			Edges:       st.M,
			Spokes:      st.N1,
			Hubs:        st.N2,
			Deadends:    st.N3,
			Blocks:      st.Blocks,
			SchurNNZ:    st.SchurNNZ,
			HubRatio:    st.HubRatio,
			Workers:     st.Workers,
		},
		Kernel: kernelMetrics(o),
	}
}

// kernelMetrics assembles the achieved-vs-roof bandwidth view from the
// observer's kernel counters and the process-wide probes.
func kernelMetrics(o *obs.Observer) KernelMetrics {
	k := KernelMetrics{
		Bytes:               o.KernelBytes.Load(),
		Seconds:             float64(o.KernelNanos.Load()) / 1e9,
		AchievedBytesPerSec: o.AchievedBandwidth(),
		StreamBytesPerSec:   sparse.StreamBandwidth(),
		PrefetchDistance:    sparse.PrefetchDistance(),
	}
	if k.StreamBytesPerSec > 0 {
		k.PctOfStream = 100 * k.AchievedBytesPerSec / k.StreamBytesPerSec
	}
	return k
}
