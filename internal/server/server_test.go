package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"bepi"
	"bepi/internal/obs"
	"bepi/internal/qexec"
)

func testServer(t *testing.T) (*Server, *bepi.Engine) {
	t.Helper()
	g := bepi.RMAT(8, 6, 5)
	eng, err := bepi.New(g)
	if err != nil {
		t.Fatal(err)
	}
	// Trace every query (the default samples 1-in-N) so trace assertions
	// are deterministic.
	s := NewWithConfig(eng, qexec.Config{Obs: obs.New(obs.Options{})})
	return s, eng
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: invalid JSON %q: %v", path, rec.Body.String(), err)
	}
	return rec, body
}

func TestHealthz(t *testing.T) {
	s, eng := testServer(t)
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if body["status"] != "ok" || int(body["nodes"].(float64)) != eng.N() {
		t.Fatalf("body %v", body)
	}
}

func TestStats(t *testing.T) {
	s, eng := testServer(t)
	rec, body := get(t, s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if int(body["nodes"].(float64)) != eng.N() {
		t.Fatalf("nodes %v", body["nodes"])
	}
	if body["variant"] != "BePI" || body["preconditioned"] != true {
		t.Fatalf("variant fields wrong: %v", body)
	}
	spokes := int(body["spokes"].(float64))
	hubs := int(body["hubs"].(float64))
	deadends := int(body["deadends"].(float64))
	if spokes+hubs+deadends != eng.N() {
		t.Fatal("partition does not sum to n")
	}
}

func TestQueryTopK(t *testing.T) {
	s, _ := testServer(t)
	rec, body := get(t, s, "/query?seed=1&topk=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	top := body["top"].([]any)
	if len(top) != 5 {
		t.Fatalf("top has %d entries", len(top))
	}
	prev := 1.0
	for _, e := range top {
		ent := e.(map[string]any)
		score := ent["score"].(float64)
		if score > prev {
			t.Fatal("top not sorted")
		}
		prev = score
	}
}

// TestQueryExactParam checks the ?exact=true escape hatch: the ranking
// must name the same node set as the default bound-pruned path, and an
// exact response is never marked early-stopped.
func TestQueryExactParam(t *testing.T) {
	s, _ := testServer(t)
	rec, exact := get(t, s, "/query?seed=6&topk=8&exact=true")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, exact)
	}
	if exact["early_stopped"] == true {
		t.Fatalf("exact query marked early_stopped: %v", exact)
	}
	set := map[float64]bool{}
	for _, e := range exact["top"].([]any) {
		set[e.(map[string]any)["node"].(float64)] = true
	}
	// Fresh server so the bounded query can't just rank the cached vector.
	s2, _ := testServer(t)
	_, bounded := get(t, s2, "/query?seed=6&topk=8")
	top := bounded["top"].([]any)
	if len(top) != len(set) {
		t.Fatalf("bounded top has %d entries, exact %d", len(top), len(set))
	}
	for _, e := range top {
		if node := e.(map[string]any)["node"].(float64); !set[node] {
			t.Fatalf("bounded top-k node %v not in exact set %v", node, exact["top"])
		}
	}
	_, metrics := get(t, s2, "/metrics")
	if _, ok := metrics["topk_solves"]; !ok {
		t.Fatalf("metrics lack topk_solves: %v", metrics)
	}
	if _, ok := metrics["topk_iters_saved"]; !ok {
		t.Fatalf("metrics lack topk_iters_saved: %v", metrics)
	}
}

func TestQueryFullVector(t *testing.T) {
	s, eng := testServer(t)
	rec, body := get(t, s, "/query?seed=2&full=true")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	scores := body["scores"].([]any)
	if len(scores) != eng.N() {
		t.Fatalf("scores length %d want %d", len(scores), eng.N())
	}
	want, err := eng.Query(2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range scores {
		if diff := v.(float64) - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("score[%d] differs", i)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	s, eng := testServer(t)
	cases := []struct {
		path string
		code int
	}{
		{"/query?seed=abc", http.StatusBadRequest},
		{"/query?seed=-1", http.StatusBadRequest},
		{fmt.Sprintf("/query?seed=%d", eng.N()), http.StatusBadRequest},
		{"/query?seed=1&topk=-2", http.StatusBadRequest},
		{"/query", http.StatusBadRequest},
	}
	for _, c := range cases {
		rec, body := get(t, s, c.path)
		if rec.Code != c.code {
			t.Errorf("%s: status %d want %d", c.path, rec.Code, c.code)
		}
		if body["error"] == "" {
			t.Errorf("%s: missing error message", c.path)
		}
	}
	// Wrong method.
	req := httptest.NewRequest(http.MethodPost, "/query?seed=1", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /query status %d", rec.Code)
	}
}

func TestPersonalized(t *testing.T) {
	s, eng := testServer(t)
	body, _ := json.Marshal(PersonalizedRequest{
		Weights: map[string]float64{"1": 1, "2": 3},
		TopK:    7,
	})
	req := httptest.NewRequest(http.MethodPost, "/personalized", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	top := resp["top"].([]any)
	if len(top) == 0 || len(top) > 7 {
		t.Fatalf("top has %d entries", len(top))
	}
	for _, e := range top {
		node := int(e.(map[string]any)["node"].(float64))
		if node == 1 || node == 2 {
			t.Fatal("seeds must be excluded from the ranking")
		}
		if node < 0 || node >= eng.N() {
			t.Fatal("node out of range")
		}
	}
}

func TestPersonalizedValidation(t *testing.T) {
	s, _ := testServer(t)
	bad := []string{
		`not json`,
		`{"weights":{}}`,
		`{"weights":{"abc":1}}`,
		`{"weights":{"99999":1}}`,
		`{"weights":{"1":-1}}`,
		`{"weights":{"1":0}}`,
	}
	for _, b := range bad {
		req := httptest.NewRequest(http.MethodPost, "/personalized", bytes.NewReader([]byte(b)))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d want 400", b, rec.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/personalized", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /personalized status %d", rec.Code)
	}
}

func TestMetrics(t *testing.T) {
	s, _ := testServer(t)
	// Two good queries, one bad one.
	get(t, s, "/query?seed=1")
	get(t, s, "/query?seed=2")
	get(t, s, "/query?seed=notanumber")
	rec, body := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if int(body["queries"].(float64)) != 2 {
		t.Fatalf("queries = %v", body["queries"])
	}
	if int(body["errors"].(float64)) != 1 {
		t.Fatalf("errors = %v", body["errors"])
	}
	if body["avg_query_ms"].(float64) <= 0 {
		t.Fatal("avg query time missing")
	}
	if body["index_bytes"].(float64) <= 0 {
		t.Fatal("index bytes missing")
	}
}

func TestPersonalizedMatchesEngine(t *testing.T) {
	s, eng := testServer(t)
	body := []byte(`{"weights":{"3":0.5,"7":0.5},"topk":3}`)
	req := httptest.NewRequest(http.MethodPost, "/personalized", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	q := make([]float64, eng.N())
	q[3], q[7] = 0.5, 0.5
	want, err := eng.Personalized(q)
	if err != nil {
		t.Fatal(err)
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	top := resp["top"].([]any)
	first := top[0].(map[string]any)
	node := int(first["node"].(float64))
	score := first["score"].(float64)
	if diff := score - want[node]; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("server score %v, engine %v", score, want[node])
	}
}
