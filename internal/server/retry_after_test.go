package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"bepi/internal/qexec"
)

// TestRetryAfterOnRejection: admission-control rejections (429) and
// unavailability (503) carry a Retry-After hint; client errors don't.
func TestRetryAfterOnRejection(t *testing.T) {
	for _, tc := range []struct {
		status int
		want   string
	}{
		{http.StatusTooManyRequests, "1"},
		{http.StatusServiceUnavailable, "2"},
		{http.StatusBadRequest, ""},
		{http.StatusInternalServerError, ""},
	} {
		rec := httptest.NewRecorder()
		writeError(rec, tc.status, "x")
		if got := rec.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("status %d: Retry-After = %q, want %q", tc.status, got, tc.want)
		}
	}
}

// TestRetryAfterOnClosedExecutor: a real rejection path — querying a closed
// server — answers 503 with the Retry-After header set.
func TestRetryAfterOnClosedExecutor(t *testing.T) {
	s, _ := testServer(t)
	s.Close()
	req := httptest.NewRequest(http.MethodGet, "/query?seed=1", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestStatusOf: the transport-agnostic error mapping the HTTP binding and
// the cluster LocalBackend both rely on.
func TestStatusOf(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want int
	}{
		{qexec.ErrOverloaded, http.StatusTooManyRequests},
		{qexec.ErrClosed, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusServiceUnavailable},
		{badRequest("x"), http.StatusBadRequest},
	} {
		if got := StatusOf(tc.err); got != tc.want {
			t.Errorf("StatusOf(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestHealthzReadinessFields: the readiness payload carries the generation,
// index hash, queue depth and rebuild flag the coordinator keys on.
func TestHealthzReadinessFields(t *testing.T) {
	s, _ := testServer(t)
	defer s.Close()
	_, body := get(t, s, "/healthz")
	if _, ok := body["generation"]; !ok {
		t.Fatalf("healthz missing generation: %v", body)
	}
	if h, ok := body["index_hash"].(string); !ok || h == "" {
		t.Fatalf("healthz missing index_hash: %v", body)
	}
	if _, ok := body["queue_depth"]; !ok {
		t.Fatalf("healthz missing queue_depth: %v", body)
	}
	if v, ok := body["rebuild_in_flight"]; !ok || v != false {
		t.Fatalf("healthz rebuild_in_flight = %v, want false on a static index", v)
	}
	if body["generation"].(float64) != 1 {
		t.Fatalf("initial generation = %v, want 1", body["generation"])
	}
}

// TestQueryResponseTagged: /query responses carry the (generation,
// index hash) tag the cluster merge guard compares.
func TestQueryResponseTagged(t *testing.T) {
	s, _ := testServer(t)
	defer s.Close()
	_, body := get(t, s, "/query?seed=1&topk=3")
	if body["generation"].(float64) != 1 {
		t.Fatalf("generation = %v, want 1", body["generation"])
	}
	if h, ok := body["index_hash"].(string); !ok || h == "" {
		t.Fatalf("query response missing index_hash: %v", body)
	}
}
