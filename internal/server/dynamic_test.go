package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bepi"
	"bepi/internal/qexec"
)

func testDynamicServer(t *testing.T) (*Server, *bepi.Dynamic) {
	t.Helper()
	g := bepi.RMAT(8, 6, 5)
	d, err := bepi.NewDynamic(g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewDynamic(d, qexec.Config{})
	t.Cleanup(s.Close)
	return s, d
}

func post(t *testing.T, s *Server, path string, payload any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if payload != nil {
		if err := json.NewEncoder(&buf).Encode(payload); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: invalid JSON %q: %v", path, rec.Body.String(), err)
	}
	return rec, body
}

// waitFlush polls GET /flush/{id} until the rebuild settles.
func waitFlush(t *testing.T, s *Server, id uint64) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec, body := get(t, s, fmt.Sprintf("/flush/%d", id))
		if rec.Code != http.StatusOK {
			t.Fatalf("/flush/%d: status %d body %v", id, rec.Code, body)
		}
		if body["state"] != string(bepi.RebuildRunning) {
			return body
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("rebuild %d never settled", id)
	return nil
}

// TestDynamicEndpointsEndToEnd drives the full online-update flow over
// HTTP: buffer edges, start an async flush, poll its status, and check the
// swapped-in engine serves the new edge — including past the score cache.
func TestDynamicEndpointsEndToEnd(t *testing.T) {
	s, d := testDynamicServer(t)
	n := d.N()

	// Prime the cache for a seed, so a stale hit after the swap would show.
	rec, before := get(t, s, "/query?seed=0&full=true")
	if rec.Code != http.StatusOK {
		t.Fatalf("query: status %d", rec.Code)
	}
	if rec, _ := get(t, s, "/query?seed=0&full=true"); rec.Code != http.StatusOK {
		t.Fatalf("repeat query: status %d", rec.Code)
	}

	// One new node plus edges both ways: guaranteed real (non-no-op) work.
	rec, body := post(t, s, "/edges", EdgesRequest{
		AddNodes: 1,
		Add:      []EdgeJSON{{Src: 0, Dst: n}, {Src: n, Dst: 0}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/edges: status %d body %v", rec.Code, body)
	}
	if int(body["nodes"].(float64)) != n+1 {
		t.Fatalf("nodes = %v, want %d", body["nodes"], n+1)
	}
	// Two edge updates plus one unflushed node: node growth is pending
	// work too (a growth-only buffer must still trigger a rebuild).
	if int(body["pending"].(float64)) != 3 {
		t.Fatalf("pending = %v, want 3", body["pending"])
	}
	genBefore := uint64(body["generation"].(float64))

	rec, body = post(t, s, "/flush", nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("/flush: status %d body %v", rec.Code, body)
	}
	id := uint64(body["id"].(float64))

	final := waitFlush(t, s, id)
	if final["state"] != string(bepi.RebuildDone) {
		t.Fatalf("rebuild state %v (error %v)", final["state"], final["error"])
	}
	if gen := uint64(final["generation"].(float64)); gen != genBefore+1 {
		t.Fatalf("generation %d -> %d, want +1", genBefore, gen)
	}
	if int(final["applied"].(float64)) != 2 {
		t.Fatalf("applied = %v, want 2", final["applied"])
	}

	// The executor's cache was generation-invalidated: the same seed must
	// be re-solved on the new engine and score the new node.
	rec, after := get(t, s, "/query?seed=0&full=true")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-flush query: status %d", rec.Code)
	}
	if after["cached"] == true {
		t.Fatal("post-swap query served from the pre-swap cache")
	}
	scores := after["scores"].([]any)
	if len(scores) != n+1 {
		t.Fatalf("post-flush scores length %d, want %d", len(scores), n+1)
	}
	if scores[n].(float64) <= 0 {
		t.Fatal("new node unreachable after flush")
	}
	if len(before["scores"].([]any)) == len(scores) {
		t.Fatal("test setup: pre-flush vector already had the new node")
	}

	// Metrics reflect the dynamic subsystem.
	rec, m := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if uint64(m["generation"].(float64)) != genBefore+1 {
		t.Fatalf("metrics generation %v, want %d", m["generation"], genBefore+1)
	}
	if int64(m["engine_swaps"].(float64)) != 1 {
		t.Fatalf("metrics engine_swaps %v, want 1", m["engine_swaps"])
	}
	if int(m["pending_updates"].(float64)) != 0 {
		t.Fatalf("metrics pending_updates %v, want 0", m["pending_updates"])
	}

	// Prometheus exposition includes the new families.
	req := httptest.NewRequest(http.MethodGet, "/metrics.prom", nil)
	prec := httptest.NewRecorder()
	s.ServeHTTP(prec, req)
	for _, fam := range []string{"bepi_index_generation", "bepi_pending_updates", "bepi_rebuild_seconds", "bepi_engine_swaps_total"} {
		if !bytes.Contains(prec.Body.Bytes(), []byte(fam)) {
			t.Fatalf("prometheus exposition missing %s", fam)
		}
	}
}

// TestFlushStatusErrors covers the /flush/{id} edge cases.
func TestFlushStatusErrors(t *testing.T) {
	s, _ := testDynamicServer(t)
	if rec, _ := get(t, s, "/flush/notanumber"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id: status %d", rec.Code)
	}
	if rec, _ := get(t, s, "/flush/999"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", rec.Code)
	}
}

// TestEdgesValidation covers /edges error paths.
func TestEdgesValidation(t *testing.T) {
	s, d := testDynamicServer(t)
	if rec, _ := post(t, s, "/edges", EdgesRequest{}); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty update: status %d", rec.Code)
	}
	if rec, _ := post(t, s, "/edges", EdgesRequest{Add: []EdgeJSON{{Src: 0, Dst: 1 << 30}}}); rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range edge: status %d", rec.Code)
	}
	if rec, _ := post(t, s, "/edges", EdgesRequest{AddNodes: -1}); rec.Code != http.StatusBadRequest {
		t.Fatalf("negative add_nodes: status %d", rec.Code)
	}
	if p := d.Pending(); p != 0 {
		t.Fatalf("failed updates left %d pending", p)
	}
	req := httptest.NewRequest(http.MethodGet, "/edges", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /edges: status %d", rec.Code)
	}
}

// TestDynamicEndpointsOnStaticServer checks a static server answers the
// dynamic endpoints with 409 rather than a panic or a silent no-op.
func TestDynamicEndpointsOnStaticServer(t *testing.T) {
	s, _ := testServer(t)
	defer s.Close()
	if rec, _ := post(t, s, "/edges", EdgesRequest{Add: []EdgeJSON{{Src: 0, Dst: 1}}}); rec.Code != http.StatusConflict {
		t.Fatalf("/edges on static server: status %d", rec.Code)
	}
	if rec, _ := post(t, s, "/flush", nil); rec.Code != http.StatusConflict {
		t.Fatalf("/flush on static server: status %d", rec.Code)
	}
	if rec, _ := get(t, s, "/flush/1"); rec.Code != http.StatusConflict {
		t.Fatalf("/flush/1 on static server: status %d", rec.Code)
	}
}
