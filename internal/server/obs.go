package server

import (
	"net/http"
	"strconv"
	"strings"

	"bepi"
	"bepi/internal/obs"
	"bepi/internal/qexec"
	"bepi/internal/sparse"
)

// wantsProm reports whether the /metrics request asked for the Prometheus
// text format: a Prometheus scraper advertises text/plain (or the
// OpenMetrics type) in Accept, and `?format=prometheus` forces it. The
// JSON default keeps the endpoint's pre-existing shape for dashboards.
func wantsProm(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// handleMetricsProm writes the full Prometheus exposition: served-traffic
// counters, qexec counters and histograms, preprocessing stats, and Go
// runtime health.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	s.writeProm(p)
	if err := p.Err(); err != nil {
		// Too late for a status change; surface the bug in the body where
		// the scraper's parse failure will point at it.
		http.Error(w, "exposition error: "+err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) writeProm(p *obs.PromWriter) {
	// Build identity and (degenerate single-process) ring shape, so fleet
	// dashboards can target shards and coordinators with the same queries.
	obs.WriteBuildInfo(p, s.core.BuildInfo())
	p.Gauge("bepi_ring_members", "Replicas on the consistent-hash ring (1 for a standalone shard).", 1)
	p.GaugeVec("bepi_shard_healthy", "1 when the shard is serving (per-shard from the coordinator).", "shard",
		map[string]float64{"local": 1})

	// Served traffic.
	p.Counter("bepi_queries_total", "Single-seed queries served.", float64(s.core.queries.Load()))
	p.Counter("bepi_personalized_total", "Personalized (multi-seed) queries served.", float64(s.core.personalized.Load()))
	p.Counter("bepi_errors_total", "Requests answered with an error status.", float64(s.core.errors.Load()))

	// Query-execution subsystem counters.
	xm := s.core.exec.Metrics()
	p.Counter("bepi_cache_hits_total", "Queries answered from the score cache.", float64(xm.CacheHits))
	p.Counter("bepi_cache_misses_total", "Queries past the cache.", float64(xm.CacheMisses))
	p.Counter("bepi_coalesced_total", "Queries that rode an identical in-flight solve.", float64(xm.Coalesced))
	p.Counter("bepi_shed_total", "Requests shed by admission control.", float64(xm.Shed))
	p.Gauge("bepi_cache_entries", "Cached score vectors.", float64(xm.CacheEntries))
	p.Gauge("bepi_queue_depth", "Requests waiting in the admission queue.", float64(xm.Queued))
	p.CounterHist("bepi_batch_size", "Queries coalesced per multi-RHS engine solve.",
		qexec.BatchBuckets(), xm.BatchSizeHist[:], float64(xm.Executed))

	// Observer histograms and live counters.
	o := s.core.exec.Observer()
	p.Counter("bepi_solver_iterations_total", "Iterative-solver iterations across all solves.", float64(o.SolverIters.Load()))
	if sl := o.SlowLog; sl != nil {
		p.Counter("bepi_slow_queries_total", "Queries slower than the slow-query threshold.", float64(sl.Count()))
	}
	if o.QueryLatency != nil {
		p.Histogram("bepi_query_latency_seconds", "End-to-end executor latency per query.", o.QueryLatency.Snapshot())
	}
	if o.BatchLatency != nil {
		p.Histogram("bepi_batch_solve_seconds", "Wall time of each multi-RHS engine solve.", o.BatchLatency.Snapshot())
	}
	if o.QueueWait != nil {
		p.Histogram("bepi_queue_wait_seconds", "Admission-queue wait per solved query.", o.QueueWait.Snapshot())
	}
	if o.Iterations != nil {
		p.Histogram("bepi_query_iterations", "Schur-solver iterations per solved query.", o.Iterations.Snapshot())
	}
	if o.Residual != nil {
		p.Histogram("bepi_query_residual", "Final relative residual per solved query.", o.Residual.Snapshot())
	}
	if o.SchurApply != nil {
		p.Histogram("bepi_schur_apply_seconds", "Wall time per Schur-operator application.", o.SchurApply.Snapshot())
	}
	if o.PrecondApply != nil {
		p.Histogram("bepi_precond_apply_seconds", "Wall time per ILU preconditioner application.", o.PrecondApply.Snapshot())
	}
	p.Counter("bepi_kernel_bytes_total", "Bytes streamed by the observed solve kernels.", float64(o.KernelBytes.Load()))
	p.Counter("bepi_kernel_seconds_total", "Wall seconds spent in the observed solve kernels.", float64(o.KernelNanos.Load())/1e9)
	p.Gauge("bepi_kernel_achieved_bytes_per_second", "Achieved memory bandwidth of the observed solve kernels (cumulative bytes over seconds).", o.AchievedBandwidth())
	p.Gauge("bepi_stream_bytes_per_second", "Measured STREAM-triad memory-bandwidth roof of this host.", sparse.StreamBandwidth())

	// Bounded top-k path.
	p.Counter("bepi_topk_solves_total", "Queries solved through the bounded top-k path.", float64(xm.TopKSolves))
	p.Counter("bepi_topk_early_stops_total", "Bounded top-k solves stopped early by the certificate.", float64(xm.EarlyStops))
	if o.TopKSaved != nil {
		p.Histogram("bepi_topk_iters_saved", "Estimated solver iterations saved per early-stopped top-k solve.", o.TopKSaved.Snapshot())
	}

	// Dynamic-update subsystem: rebuild cost, buffered updates, and the
	// generation the executor is serving from.
	if o.Rebuild != nil {
		p.Histogram("bepi_rebuild_seconds", "Wall time of each background index rebuild.", o.Rebuild.Snapshot())
	}
	if s.core.dyn != nil {
		p.Gauge("bepi_pending_updates", "Updates (edges and nodes) buffered since the last rebuild.", float64(s.core.dyn.Pending()))
		p.Counter("bepi_delta_applied_total", "Rebuilds absorbed incrementally by the delta path (spoke or hub mode).", float64(s.core.deltaApplied.Load()))
		// One-hot mode gauge: which path produced the serving index's most
		// recent rebuild.
		modes := map[string]float64{
			string(bepi.RebuildModeFull):       0,
			string(bepi.RebuildModeDeltaSpoke): 0,
			string(bepi.RebuildModeDeltaHub):   0,
			string(bepi.RebuildModeNoop):       0,
		}
		if m, ok := s.core.lastRebuildMode.Load().(string); ok && m != "" {
			modes[m] = 1
		}
		p.GaugeVec("bepi_rebuild_mode", "Mode of the most recent settled rebuild (one-hot).", "mode", modes)
		p.Gauge("bepi_hub_drift", "Accumulated hub-delta drift of the serving engine (see WithMaxHubDrift).", s.core.Engine().Drift())
	}
	p.Gauge("bepi_index_generation", "Serving-engine generation (bumped on every swap).", float64(xm.Generation))
	p.Counter("bepi_engine_swaps_total", "Engine swaps applied by the executor.", float64(xm.EngineSwaps))
	p.Counter("bepi_solve_panics_total", "Engine solves recovered by the panic barrier.", float64(xm.SolvePanics))

	// Index and preprocessing (Table 2 / Figure 1 quantities, live).
	eng := s.core.Engine()
	st := eng.Internal().PrepStats()
	p.Gauge("bepi_index_bytes", "Preprocessed index size.", float64(eng.MemoryBytes()))
	p.Gauge("bepi_nodes", "Graph nodes.", float64(st.N))
	p.Gauge("bepi_edges", "Graph edges.", float64(st.M))
	p.Gauge("bepi_schur_nnz", "Nonzeros in the Schur complement.", float64(st.SchurNNZ))
	p.Gauge("bepi_hub_ratio", "Hub selection ratio k.", st.HubRatio)
	p.Gauge("bepi_prep_workers", "Effective parallel workers during preprocessing.", float64(st.Workers))
	p.GaugeVec("bepi_partition_size", "Nodes per block of the hub-and-spoke reordering.", "block",
		map[string]float64{
			"spokes":   float64(st.N1),
			"hubs":     float64(st.N2),
			"deadends": float64(st.N3),
		})
	p.GaugeVec("bepi_prep_stage_seconds", "Preprocessing wall time by stage.", "stage",
		map[string]float64{
			"reorder":    st.Reorder.Seconds(),
			"build_h":    st.BuildH.Seconds(),
			"factor_h11": st.FactorH11.Seconds(),
			"schur":      st.Schur.Seconds(),
			"ilu":        st.ILU.Seconds(),
			"total":      st.Total.Seconds(),
		})

	obs.WriteGoStats(p)
}

// TraceResponse is the /debug/traces payload.
type TraceResponse struct {
	Count  int         `json:"count"`
	Traces []obs.Trace `json:"traces"`
}

// maxDebugItems caps how many traces or events one debug request returns,
// whatever ?n= asks for — debug endpoints must never serialize an unbounded
// response while the serving path is under load.
const maxDebugItems = 512

// debugCount parses the `?n=` item count for a debug endpoint: default def,
// hard-capped at maxDebugItems. The bool is false (after a 400 was written)
// when the parameter is malformed.
func debugCount(w http.ResponseWriter, r *http.Request, def int) (int, bool) {
	n := def
	if v := r.URL.Query().Get("n"); v != "" {
		var err error
		n, err = strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad n %q", v)
			return 0, false
		}
	}
	if n == 0 || n > maxDebugItems {
		n = maxDebugItems
	}
	return n, true
}

// handleTraces serves finished query traces, newest first. `?n=` bounds the
// count (default 50, hard cap maxDebugItems); `?trace=ID` filters to the
// records of one distributed trace (the shape the cluster coordinator
// fetches when assembling a cross-process trace tree).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if r.Context().Err() != nil {
		return // client already gone: skip the ring scan and the write
	}
	n, ok := debugCount(w, r, 50)
	if !ok {
		return
	}
	tracer := s.core.exec.Observer().Tracer
	var traces []obs.Trace
	if id := r.URL.Query().Get("trace"); id != "" {
		traces = tracer.ByTraceID(id, n)
	} else {
		traces = tracer.Recent(n)
	}
	if traces == nil {
		traces = []obs.Trace{} // tracing disabled: an empty list, not null
	}
	writeJSON(w, http.StatusOK, TraceResponse{Count: len(traces), Traces: traces})
}

// EventResponse is the /debug/events payload.
type EventResponse struct {
	Count  int         `json:"count"`
	Events []obs.Event `json:"events"`
}

// handleEvents serves the flight recorder: recent structured operational
// events, newest first. `?n=` bounds the count (default 100, hard cap
// maxDebugItems).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if r.Context().Err() != nil {
		return
	}
	n, ok := debugCount(w, r, 100)
	if !ok {
		return
	}
	events := s.core.exec.Observer().Events.Recent(n)
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, EventResponse{Count: len(events), Events: events})
}

// handleMetricsSnapshot serves this process's mergeable metrics export — the
// payload the cluster coordinator fetches and folds into fleet-wide
// quantiles.
func (s *Server) handleMetricsSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.core.MetricsSnapshot())
}

// LatencySummary is the JSON quantile summary of one latency histogram.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
}

// IterationSummary is the JSON quantile summary of an iteration-count
// histogram (dimensionless, unlike LatencySummary's milliseconds).
type IterationSummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func summarizeIters(h *obs.Histogram) IterationSummary {
	s := h.Snapshot()
	return IterationSummary{
		Count: int64(s.Count),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
	}
}

func summarize(h *obs.Histogram) LatencySummary {
	s := h.Snapshot()
	return LatencySummary{
		Count: int64(s.Count),
		P50MS: s.Quantile(0.50) * 1e3,
		P90MS: s.Quantile(0.90) * 1e3,
		P99MS: s.Quantile(0.99) * 1e3,
	}
}

// PrepMetrics is core.PrepStats in the /metrics JSON payload: stage wall
// times plus the partition sizes preprocessing decided on.
type PrepMetrics struct {
	TotalMS     float64 `json:"total_ms"`
	ReorderMS   float64 `json:"reorder_ms"`
	BuildHMS    float64 `json:"build_h_ms"`
	FactorH11MS float64 `json:"factor_h11_ms"`
	SchurMS     float64 `json:"schur_ms"`
	ILUMS       float64 `json:"ilu_ms"`
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	Spokes      int     `json:"spokes"`
	Hubs        int     `json:"hubs"`
	Deadends    int     `json:"deadends"`
	Blocks      int     `json:"blocks"`
	SchurNNZ    int     `json:"schur_nnz"`
	HubRatio    float64 `json:"hub_ratio"`
	Workers     int     `json:"workers"`
}
