package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// promFamily is one parsed metric family of a text exposition.
type promFamily struct {
	typ     string
	samples map[string]float64 // "name{labels}" → value
}

// parseProm parses the Prometheus text format strictly enough to catch the
// mistakes a real scraper rejects: samples without a preceding TYPE,
// duplicate family declarations, and unparsable sample lines.
func parseProm(t *testing.T, body string) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	var cur string
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			// checked via the TYPE line that must follow
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: bad TYPE line %q", ln+1, line)
			}
			if _, dup := fams[f[2]]; dup {
				t.Fatalf("line %d: duplicate family %q", ln+1, f[2])
			}
			cur = f[2]
			fams[cur] = &promFamily{typ: f[3], samples: map[string]float64{}}
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		default:
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("line %d: bad sample %q", ln+1, line)
			}
			key, val := line[:sp], line[sp+1:]
			name := key
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			if cur == "" || !strings.HasPrefix(name, cur) {
				t.Fatalf("line %d: sample %q outside its family (current %q)", ln+1, key, cur)
			}
			v, err := strconv.ParseFloat(strings.ReplaceAll(val, "+Inf", "Inf"), 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, val, err)
			}
			fams[cur].samples[key] = v
		}
	}
	return fams
}

// TestMetricsPrometheus drives traffic, scrapes /metrics.prom, and checks
// the exposition parses with all expected families, no duplicates, and a
// self-consistent latency histogram.
func TestMetricsPrometheus(t *testing.T) {
	s, _ := testServer(t)
	defer s.Close()
	get(t, s, "/query?seed=1&exact=true") // cacheable full-tolerance solve
	get(t, s, "/query?seed=1")            // cache hit
	get(t, s, "/query?seed=2")

	req := httptest.NewRequest(http.MethodGet, "/metrics.prom", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	fams := parseProm(t, rec.Body.String())

	for _, want := range []struct{ name, typ string }{
		{"bepi_queries_total", "counter"},
		{"bepi_cache_hits_total", "counter"},
		{"bepi_cache_misses_total", "counter"},
		{"bepi_shed_total", "counter"},
		{"bepi_solver_iterations_total", "counter"},
		{"bepi_batch_size", "histogram"},
		{"bepi_query_latency_seconds", "histogram"},
		{"bepi_queue_wait_seconds", "histogram"},
		{"bepi_query_iterations", "histogram"},
		{"bepi_query_residual", "histogram"},
		{"bepi_schur_apply_seconds", "histogram"},
		{"bepi_precond_apply_seconds", "histogram"},
		{"bepi_kernel_bytes_total", "counter"},
		{"bepi_index_bytes", "gauge"},
		{"bepi_schur_nnz", "gauge"},
		{"bepi_partition_size", "gauge"},
		{"bepi_prep_stage_seconds", "gauge"},
		{"go_goroutines", "gauge"},
		{"go_gc_cycles_total", "counter"},
	} {
		f, ok := fams[want.name]
		if !ok {
			t.Errorf("family %s missing", want.name)
			continue
		}
		if f.typ != want.typ {
			t.Errorf("family %s has type %s, want %s", want.name, f.typ, want.typ)
		}
	}

	if v := fams["bepi_queries_total"].samples["bepi_queries_total"]; v != 3 {
		t.Errorf("bepi_queries_total = %v, want 3", v)
	}
	if v := fams["bepi_cache_hits_total"].samples["bepi_cache_hits_total"]; v < 1 {
		t.Errorf("bepi_cache_hits_total = %v, want ≥ 1", v)
	}
	lat := fams["bepi_query_latency_seconds"]
	count := lat.samples["bepi_query_latency_seconds_count"]
	inf := lat.samples[`bepi_query_latency_seconds_bucket{le="+Inf"}`]
	if count != 3 || inf != count {
		t.Errorf("latency histogram: count=%v +Inf bucket=%v, want both 3", count, inf)
	}
	if lat.samples["bepi_query_latency_seconds_sum"] <= 0 {
		t.Error("latency histogram sum not positive")
	}
	if fams["bepi_schur_apply_seconds"].samples["bepi_schur_apply_seconds_count"] < 1 {
		t.Error("no Schur-operator applications observed")
	}
	if fams["bepi_kernel_bytes_total"].samples["bepi_kernel_bytes_total"] <= 0 {
		t.Error("kernel bytes counter not positive")
	}
	stages := fams["bepi_prep_stage_seconds"]
	for _, stage := range []string{"reorder", "build_h", "factor_h11", "schur", "total"} {
		if _, ok := stages.samples[`bepi_prep_stage_seconds{stage="`+stage+`"}`]; !ok {
			t.Errorf("prep stage %q missing from exposition", stage)
		}
	}
}

// TestMetricsContentNegotiation checks that /metrics answers JSON by
// default and Prometheus text when the scraper asks for it.
func TestMetricsContentNegotiation(t *testing.T) {
	s, _ := testServer(t)
	defer s.Close()
	for _, tc := range []struct {
		path, accept string
		wantProm     bool
	}{
		{"/metrics", "", false},
		{"/metrics", "application/json", false},
		{"/metrics", "text/plain", true},
		{"/metrics", "application/openmetrics-text; version=1.0.0", true},
		{"/metrics?format=prometheus", "", true},
		{"/metrics.prom", "", true},
	} {
		req := httptest.NewRequest(http.MethodGet, tc.path, nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		isProm := strings.HasPrefix(rec.Header().Get("Content-Type"), "text/plain")
		if isProm != tc.wantProm {
			t.Errorf("%s (Accept=%q): prometheus=%v, want %v", tc.path, tc.accept, isProm, tc.wantProm)
		}
	}
}

// TestDebugTraces checks that served queries show up at /debug/traces with
// their stage spans.
func TestDebugTraces(t *testing.T) {
	s, _ := testServer(t)
	defer s.Close()
	// exact=true pins the solve to the full path: its vector is always
	// cached (bound-pruned solves may stop early and skip the cache) and
	// its trace carries the executor-side "rank" span (the bounded path
	// ranks inside the engine batch instead).
	get(t, s, "/query?seed=3&exact=true")
	get(t, s, "/query?seed=3") // hit: ranks the cached full vector
	rec, body := get(t, s, "/debug/traces?n=10")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if int(body["count"].(float64)) != 2 {
		t.Fatalf("count = %v, want 2", body["count"])
	}
	traces := body["traces"].([]any)
	// Newest first: the cache hit, then the solve.
	hit := traces[0].(map[string]any)
	if hit["cached"] != true {
		t.Errorf("newest trace not marked cached: %v", hit)
	}
	miss := traces[1].(map[string]any)
	names := map[string]bool{}
	for _, sp := range miss["spans"].([]any) {
		names[sp.(map[string]any)["name"].(string)] = true
	}
	for _, want := range []string{"cache", "admission", "batch", "solve", "rank"} {
		if !names[want] {
			t.Errorf("solve trace lacks %q span (have %v)", want, names)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/debug/traces?n=bogus", nil)
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", rec2.Code)
	}
}

// TestQueryDebugParam checks the ?debug=1 solver/stage detail block.
func TestQueryDebugParam(t *testing.T) {
	s, _ := testServer(t)
	defer s.Close()
	// exact=true makes the warmup's full-tolerance vector cacheable, so the
	// replay below is a deterministic hit (a bound-pruned solve may stop
	// early, and early-stopped vectors never enter the cache).
	_, body := get(t, s, "/query?seed=4&debug=1&exact=true")
	dbg, ok := body["debug"].(map[string]any)
	if !ok {
		t.Fatalf("no debug block: %v", body)
	}
	if dbg["iterations"].(float64) < 1 {
		t.Errorf("debug iterations = %v", dbg["iterations"])
	}
	if dbg["residual"].(float64) <= 0 {
		t.Errorf("debug residual = %v", dbg["residual"])
	}
	stages, ok := dbg["stage_ms"].(map[string]any)
	if !ok {
		t.Fatalf("no stage_ms: %v", dbg)
	}
	if stages["solve_ms"].(float64) <= 0 {
		t.Errorf("solve_ms = %v", stages["solve_ms"])
	}
	// Cached replay: debug says cached, no engine stages.
	_, body = get(t, s, "/query?seed=4&debug=1")
	dbg = body["debug"].(map[string]any)
	if dbg["cached"] != true {
		t.Errorf("second query debug not cached: %v", dbg)
	}
	if _, has := dbg["stage_ms"]; has {
		t.Errorf("cached query reports engine stages: %v", dbg)
	}
	// Without the param there is no debug block.
	_, body = get(t, s, "/query?seed=4")
	if _, has := body["debug"]; has {
		t.Error("debug block present without ?debug=1")
	}
}

// TestMetricsJSONObservability checks the JSON /metrics additions: prep
// stats and latency quantiles.
func TestMetricsJSONObservability(t *testing.T) {
	s, _ := testServer(t)
	defer s.Close()
	// exact=true warmup guarantees a cacheable full-tolerance vector (a
	// bound-pruned solve may stop early and skip the cache); the repeat is
	// then a deterministic hit.
	get(t, s, "/query?seed=5&exact=true")
	get(t, s, "/query?seed=5")
	_, body := get(t, s, "/metrics")
	prep, ok := body["prep"].(map[string]any)
	if !ok {
		t.Fatalf("no prep block: %v", body)
	}
	if prep["total_ms"].(float64) <= 0 || prep["nodes"].(float64) <= 0 {
		t.Errorf("prep stats empty: %v", prep)
	}
	lat, ok := body["query_latency"].(map[string]any)
	if !ok {
		t.Fatalf("no query_latency block: %v", body)
	}
	if lat["count"].(float64) != 2 {
		t.Errorf("query_latency count = %v, want 2", lat["count"])
	}
	if lat["p50_ms"].(float64) <= 0 || lat["p99_ms"].(float64) < lat["p50_ms"].(float64) {
		t.Errorf("quantiles inconsistent: %v", lat)
	}
	if body["hit_rate"].(float64) != 0.5 {
		t.Errorf("hit_rate = %v, want 0.5", body["hit_rate"])
	}
	if body["solver_iters_total"].(float64) < 1 {
		t.Errorf("solver_iters_total = %v", body["solver_iters_total"])
	}
}
