// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§4 and appendices I–K) on synthetic
// stand-ins for the paper's datasets. Each experiment returns a Table that
// renders as aligned text (the cmd/bepi-bench output) or CSV.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Note   string // one-line explanation under the title
	Header []string
	Rows   [][]string
}

// AddRow appends a row (variadic convenience).
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, w2 := range widths {
		total += w2 + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (header + rows; title/note omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FmtDuration renders a duration compactly for tables.
func FmtDuration(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// FmtBytes renders a byte count with binary units.
func FmtBytes(b int64) string {
	switch {
	case b < 0:
		return "-"
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	}
}

// FmtCount renders an integer with thousands separators.
func FmtCount(n int) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}
