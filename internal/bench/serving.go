package bench

import (
	"fmt"
	"sync"
	"time"

	"bepi/internal/core"
	"bepi/internal/obs"
	"bepi/internal/qexec"
)

// servingClients is how many concurrent query clients the serving
// experiment models; enough to keep the batch scheduler coalescing.
const servingClients = 8

// servingQueries returns the measured query count per dataset.
func servingQueries(s Size) int {
	switch s {
	case Full:
		return 5000
	case Small:
		return 1000
	default:
		return 200
	}
}

// servingSeed is the workload's seed stream: three quarters of queries hit
// 16 popular seeds, the rest spread over the graph. Deterministic in i.
func servingSeed(i, n int) int {
	if i%4 != 3 {
		return (i * 7) % min(16, n)
	}
	return (i * 131) % n
}

// Serving measures the qexec serving layer in steady state on each suite
// dataset: throughput and latency quantiles under a hot-set workload from
// concurrent clients. The cache is warmed first and the warmup excluded
// from the rates via Metrics.Delta, so the hit rate is the steady-state
// one rather than an average polluted by the cold start.
func Serving(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Steady-state serving (qexec over BePI)",
		Note: fmt.Sprintf("%d concurrent clients, hot-set workload; warmup excluded via metric deltas; engine layout: %s",
			servingClients, layoutName(cfg.Compact)),
		Header: []string{"dataset", "queries", "qps", "p50", "p99", "hit rate", "batch sz", "coalesced", "shed"},
	}
	for _, d := range Suite(cfg.Size) {
		e, err := core.Preprocess(d.G, core.Options{
			Variant: core.VariantFull, Tol: cfg.Tol, Parallelism: cfg.Parallelism,
			MemoryBudget: cfg.Budget.Memory, Deadline: cfg.Budget.Deadline,
			Compact: cfg.Compact,
		})
		if err != nil {
			t.AddRow(d.Name, classifyCell(err), "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		// Histograms only: tracing off so the measurement is the serving
		// path, not the trace ring.
		o := obs.New(obs.Options{TraceCapacity: -1})
		ex := qexec.New(e, qexec.Config{Obs: o})
		n := e.N()

		// Warm the hot set, then snapshot: the Delta below subtracts this.
		for i := 0; i < 64; i++ {
			if _, err := ex.Query(nil, servingSeed(i, n)); err != nil {
				ex.Close()
				return nil, fmt.Errorf("bench: serving warmup on %s: %w", d.Name, err)
			}
		}
		warm := ex.Metrics()
		warmLat := o.QueryLatency.Snapshot()

		total := servingQueries(cfg.Size)
		perClient := total / servingClients
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < servingClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					// Interleave the clients' positions in the stream.
					_, _ = ex.Query(nil, servingSeed(c*perClient+i, n))
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		dm := ex.Metrics().Delta(warm)
		lat := deltaSnapshot(o.QueryLatency.Snapshot(), warmLat)
		ex.Close()

		ran := servingClients * perClient
		t.AddRow(d.Name,
			fmt.Sprintf("%d", ran),
			fmt.Sprintf("%.0f", float64(ran)/elapsed.Seconds()),
			FmtDuration(time.Duration(lat.Quantile(0.50)*float64(time.Second))),
			FmtDuration(time.Duration(lat.Quantile(0.99)*float64(time.Second))),
			fmt.Sprintf("%.1f%%", 100*dm.HitRate()),
			fmt.Sprintf("%.2f", dm.AvgBatchSize()),
			fmt.Sprintf("%d", dm.Coalesced),
			fmt.Sprintf("%d", dm.Shed))
	}
	return []*Table{t}, nil
}

// deltaSnapshot subtracts an earlier snapshot of the same histogram, so
// quantiles cover only the measured window.
func deltaSnapshot(now, prev obs.HistSnapshot) obs.HistSnapshot {
	d := obs.HistSnapshot{Name: now.Name, Bounds: now.Bounds, Counts: make([]uint64, len(now.Counts))}
	for i := range now.Counts {
		d.Counts[i] = now.Counts[i] - prev.Counts[i]
		d.Count += d.Counts[i]
	}
	d.Sum = now.Sum - prev.Sum
	return d
}
