package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"bepi/internal/core"
	"bepi/internal/gen"
	"bepi/internal/graph"
	"bepi/internal/method"
)

// Dataset is a named benchmark graph. The suite members are synthetic
// stand-ins for the paper's real-world datasets (Table 2): community-
// overlaid R-MAT graphs (gen.Hybrid) with the same structural family —
// power-law hub-and-spoke degrees, dense core communities that slow
// random-walk mixing, and a sizeable deadend share — at increasing scale.
type Dataset struct {
	Name string
	G    *graph.Graph
}

// Size selects how big the experiment suite is.
type Size string

// Suite sizes. Tiny keeps unit tests and `go test -bench` fast; Small is a
// laptop-minutes run; Full is the EXPERIMENTS.md configuration.
const (
	Tiny  Size = "tiny"
	Small Size = "small"
	Full  Size = "full"
)

// suiteSpec maps each paper dataset name to the (scale, edgeFactor) of its
// synthetic stand-in at each size.
type suiteSpec struct {
	name      string
	scale, ef [3]int // tiny, small, full
}

var suiteSpecs = []suiteSpec{
	{"slashdot-syn", [3]int{7, 9, 13}, [3]int{5, 6, 8}},
	{"wikipedia-syn", [3]int{8, 10, 13}, [3]int{5, 8, 16}},
	{"baidu-syn", [3]int{0, 11, 14}, [3]int{0, 8, 8}},
	{"flickr-syn", [3]int{0, 12, 14}, [3]int{0, 10, 14}},
	{"livejournal-syn", [3]int{0, 0, 15}, [3]int{0, 0, 14}},
	{"wikilink-syn", [3]int{0, 0, 15}, [3]int{0, 0, 30}},
	{"twitter-syn", [3]int{0, 0, 16}, [3]int{0, 0, 22}},
	{"friendster-syn", [3]int{0, 0, 16}, [3]int{0, 0, 38}},
}

func sizeIdx(s Size) int {
	switch s {
	case Small:
		return 1
	case Full:
		return 2
	default:
		return 0
	}
}

// SuiteGraph generates one suite dataset by name at the given size;
// deterministic in the name.
func SuiteGraph(name string, size Size) (Dataset, error) {
	idx := sizeIdx(size)
	for i, spec := range suiteSpecs {
		if spec.name != name {
			continue
		}
		if spec.scale[idx] == 0 {
			return Dataset{}, fmt.Errorf("bench: dataset %s not present at size %s", name, size)
		}
		g := gen.Hybrid(gen.DefaultHybrid(spec.scale[idx], spec.ef[idx], int64(1000+i)))
		return Dataset{Name: spec.name, G: g}, nil
	}
	return Dataset{}, fmt.Errorf("bench: unknown dataset %s", name)
}

// Suite generates the benchmark datasets at the given size, smallest first.
func Suite(size Size) []Dataset {
	idx := sizeIdx(size)
	var out []Dataset
	for i, spec := range suiteSpecs {
		if spec.scale[idx] == 0 {
			continue
		}
		g := gen.Hybrid(gen.DefaultHybrid(spec.scale[idx], spec.ef[idx], int64(1000+i)))
		out = append(out, Dataset{Name: spec.name, G: g})
	}
	return out
}

// Config parameterizes a harness run.
type Config struct {
	Size  Size
	Seeds int // query seeds per dataset (paper: 30)
	Tol   float64
	// Parallelism caps preprocessing/kernel workers (0 = shared
	// GOMAXPROCS pool, 1 = serial).
	Parallelism int
	// Budget bounds preprocessing; zero values scale with Size (see
	// withDefaults).
	Budget method.Budget
	// Compact selects the matrix layout of engines built by the kernels
	// and serving experiments: CompactAuto/CompactOn (default) use the
	// compact CSR32 form, CompactOff the wide CSR form. Exposed on the
	// bepi-bench command line as -compact.
	Compact core.CompactMode
}

func (c Config) withDefaults() Config {
	if c.Size == "" {
		c.Size = Tiny
	}
	if c.Seeds <= 0 {
		switch c.Size {
		case Full:
			c.Seeds = 30
		case Small:
			c.Seeds = 10
		default:
			c.Seeds = 3
		}
	}
	if c.Tol <= 0 {
		c.Tol = 1e-9
	}
	if c.Budget.Memory == 0 {
		switch c.Size {
		case Full:
			c.Budget.Memory = 192 << 20 // 192 MiB of preprocessed data
		case Small:
			c.Budget.Memory = 24 << 20
		default:
			c.Budget.Memory = 6 << 20
		}
	}
	if c.Budget.Deadline == 0 {
		switch c.Size {
		case Full:
			c.Budget.Deadline = 120 * time.Second
		case Small:
			c.Budget.Deadline = 30 * time.Second
		default:
			c.Budget.Deadline = 10 * time.Second
		}
	}
	return c
}

// methodConfig converts the harness config into a method config.
func (c Config) methodConfig() method.Config {
	return method.Config{Tol: c.Tol, Parallelism: c.Parallelism, Budget: c.Budget}
}

// Outcome classifies how a method fared on a dataset.
type Outcome string

// Outcomes, matching the paper's bar annotations.
const (
	OK  Outcome = "ok"
	OOM Outcome = "o.o.m."
	OOT Outcome = "o.o.t."
	ERR Outcome = "error"
)

// Result is the measurement of one method on one dataset.
type Result struct {
	Method   string
	Dataset  string
	Outcome  Outcome
	PrepTime time.Duration
	Memory   int64
	AvgQuery time.Duration
	AvgIters float64
	Err      error
}

// queryCell renders the average query time or the failure marker.
func (r Result) queryCell() string {
	if r.Outcome != OK {
		return string(r.Outcome)
	}
	return FmtDuration(r.AvgQuery)
}

func (r Result) prepCell() string {
	if r.Outcome != OK {
		return string(r.Outcome)
	}
	return FmtDuration(r.PrepTime)
}

func (r Result) memCell() string {
	if r.Outcome != OK {
		return string(r.Outcome)
	}
	return FmtBytes(r.Memory)
}

// QuerySeeds returns the deterministic query seeds used for a dataset.
func QuerySeeds(g *graph.Graph, count int, salt int64) []int {
	rng := rand.New(rand.NewSource(7700 + salt))
	seeds := make([]int, count)
	for i := range seeds {
		seeds[i] = rng.Intn(g.N())
	}
	return seeds
}

// RunOne preprocesses a method on a dataset and measures its average query
// time over the given seeds, classifying budget failures.
func RunOne(m method.Method, d Dataset, seeds []int) Result {
	res := Result{Method: m.Name(), Dataset: d.Name}
	if err := m.Preprocess(d.G); err != nil {
		res.Err = err
		switch {
		case errors.Is(err, method.ErrOutOfMemory):
			res.Outcome = OOM
		case errors.Is(err, method.ErrOutOfTime):
			res.Outcome = OOT
		default:
			res.Outcome = ERR
		}
		return res
	}
	res.Outcome = OK
	res.PrepTime = m.PrepTime()
	res.Memory = m.MemoryBytes()
	var total time.Duration
	var iters int
	for _, s := range seeds {
		_, info, err := m.Query(s)
		if err != nil {
			res.Outcome = ERR
			res.Err = err
			return res
		}
		total += info.Duration
		iters += info.Iterations
	}
	if len(seeds) > 0 {
		res.AvgQuery = total / time.Duration(len(seeds))
		res.AvgIters = float64(iters) / float64(len(seeds))
	}
	return res
}

// PreprocessingMethods returns the methods compared in Figures 1(a)/1(b):
// BePI and the preprocessing baselines.
func PreprocessingMethods(cfg method.Config) []method.Method {
	return []method.Method{
		method.NewBePI(cfg),
		method.NewBear(cfg),
		method.NewLU(cfg),
	}
}

// AllMethods returns the methods compared in Figure 1(c): the
// preprocessing family plus the iterative baselines.
func AllMethods(cfg method.Config) []method.Method {
	return []method.Method{
		method.NewBePI(cfg),
		method.NewFullGMRES(cfg),
		method.NewPower(cfg),
		method.NewBear(cfg),
		method.NewLU(cfg),
	}
}

// VariantMethods returns BePI-B, BePI-S and BePI for the Figure 6 ablation.
func VariantMethods(cfg method.Config) []method.Method {
	return []method.Method{
		method.NewBePIB(cfg),
		method.NewBePIS(cfg),
		method.NewBePI(cfg),
	}
}
