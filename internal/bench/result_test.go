package bench

import (
	"errors"
	"testing"
	"time"

	"bepi/internal/graph"
	"bepi/internal/method"
)

// failingMethod fails preprocessing with a chosen error.
type failingMethod struct{ err error }

func (f failingMethod) Name() string                  { return "fail" }
func (f failingMethod) IsPreprocessing() bool         { return true }
func (f failingMethod) Preprocess(*graph.Graph) error { return f.err }
func (f failingMethod) Query(int) ([]float64, method.QueryInfo, error) {
	return nil, method.QueryInfo{}, nil
}
func (f failingMethod) PrepTime() time.Duration { return 0 }
func (f failingMethod) MemoryBytes() int64      { return 0 }

func TestRunOneClassifiesOutcomes(t *testing.T) {
	d := Suite(Tiny)[0]
	cases := []struct {
		err  error
		want Outcome
	}{
		{method.ErrOutOfMemory, OOM},
		{errors.Join(method.ErrOutOfTime, errors.New("detail")), OOT},
		{errors.New("something else"), ERR},
	}
	for _, c := range cases {
		res := RunOne(failingMethod{err: c.err}, d, []int{0})
		if res.Outcome != c.want {
			t.Errorf("err %v: outcome %v want %v", c.err, res.Outcome, c.want)
		}
		if res.Err == nil {
			t.Error("error not recorded")
		}
	}
}

func TestResultCells(t *testing.T) {
	ok := Result{Outcome: OK, PrepTime: time.Second, Memory: 1 << 20, AvgQuery: time.Millisecond}
	if ok.prepCell() != "1.00s" || ok.memCell() != "1.0MiB" || ok.queryCell() != "1.00ms" {
		t.Fatalf("ok cells: %q %q %q", ok.prepCell(), ok.memCell(), ok.queryCell())
	}
	bad := Result{Outcome: OOM}
	if bad.prepCell() != "o.o.m." || bad.memCell() != "o.o.m." || bad.queryCell() != "o.o.m." {
		t.Fatal("failure cells should show the outcome marker")
	}
}

func TestRunOneMeasuresQueries(t *testing.T) {
	d := Suite(Tiny)[0]
	m := method.NewBePI(method.Config{})
	res := RunOne(m, d, QuerySeeds(d.G, 3, 9))
	if res.Outcome != OK {
		t.Fatalf("outcome %v (%v)", res.Outcome, res.Err)
	}
	if res.PrepTime <= 0 || res.Memory <= 0 || res.AvgQuery <= 0 {
		t.Fatalf("missing measurements: %+v", res)
	}
}
