package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bepi"
	"bepi/internal/cluster"
	"bepi/internal/core"
	"bepi/internal/graph"
	"bepi/internal/obs"
	"bepi/internal/qexec"
	"bepi/internal/server"
)

// clusterReplicaCounts are the fleet sizes the cluster experiment sweeps.
var clusterReplicaCounts = []int{1, 2, 4}

// clusterClients is the closed-loop client count.
const clusterClients = 16

// clusterHotSeeds is the hot-set size — deliberately larger than one
// replica's cache (clusterCacheEntries), so a single replica cannot hold
// the working set while a sharded fleet can: seed-affine routing gives each
// replica a disjoint shard of the hot set, and the aggregate cache capacity
// grows with the fleet.
const clusterHotSeeds = 64

// clusterCacheEntries is each replica's LRU capacity. At 1 replica the
// 64-seed hot set thrashes a 24-entry cache; at 4 replicas each shard
// (~16 seeds) fits entirely.
const clusterCacheEntries = 24

// clusterSeed draws from the hot set pseudo-randomly (a cyclic sweep is
// LRU's worst case and would collapse the 1-replica hit rate to zero; the
// random draw gives the smooth cap/workingset hit rate real traffic shows).
func clusterSeed(i, n int) int {
	h := uint64(i) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return int(h % uint64(min(clusterHotSeeds, n)))
}

// clusterQueries returns the measured query count per replica sweep.
func clusterQueries(s Size) int {
	return 4 * servingQueries(s)
}

// publicGraph rebuilds an internal benchmark graph through the public API,
// which is what the serving core (and therefore a cluster replica) accepts.
func publicGraph(g *graph.Graph) (*bepi.Graph, error) {
	internal := g.Edges()
	edges := make([]bepi.Edge, len(internal))
	for i, e := range internal {
		edges[i] = bepi.Edge{Src: e.Src, Dst: e.Dst}
	}
	return bepi.NewGraph(g.N(), edges)
}

// Cluster measures the sharded serving tier: closed-loop throughput of the
// coordinator over 1, 2 and 4 in-process replicas on a hot-set workload
// that exceeds one replica's cache. Every replica shares one engine (the
// index is identical across a real fleet too) but owns its executor —
// worker pool, LRU cache, singleflight — so the sweep measures exactly
// what sharding buys: consistent-hash routing splits the hot set into
// disjoint per-replica shards, the aggregate cache capacity grows with the
// fleet, and the hit rate (and with it qps, since a miss is a full Schur
// solve) climbs as replicas are added. Spraying seeds randomly instead of
// affinity-routing would duplicate the working set in every cache and
// forfeit the capacity win.
func Cluster(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	suite := Suite(cfg.Size)
	d := suite[len(suite)-1]
	t := &Table{
		Title: "Sharded serving (cluster coordinator over in-process replicas)",
		Note: fmt.Sprintf("dataset %s; %d closed-loop clients; %d hot seeds vs %d-entry per-replica caches, seed-affine routing; warmup excluded",
			d.Name, clusterClients, clusterHotSeeds, clusterCacheEntries),
		Header: []string{"replicas", "queries", "qps", "speedup", "hit rate", "p50", "p99", "retries"},
	}

	pg, err := publicGraph(d.G)
	if err != nil {
		return nil, fmt.Errorf("bench: cluster graph: %w", err)
	}
	engOpts := []bepi.Option{bepi.WithTolerance(cfg.Tol), bepi.WithCompact(cfg.Compact != core.CompactOff)}
	if cfg.Parallelism != 0 {
		engOpts = append(engOpts, bepi.WithParallelism(cfg.Parallelism))
	}
	eng, err := bepi.New(pg, engOpts...)
	if err != nil {
		return nil, fmt.Errorf("bench: cluster preprocess %s: %w", d.Name, err)
	}
	n := eng.N()
	total := clusterQueries(cfg.Size)
	perClient := total / clusterClients

	var baseQPS float64
	for _, replicas := range clusterReplicaCounts {
		cores := make([]*server.Core, replicas)
		backends := make([]cluster.Backend, replicas)
		lats := make([]*obs.Histogram, replicas)
		for i := range cores {
			o := obs.New(obs.Options{TraceCapacity: -1})
			lats[i] = o.QueryLatency
			cores[i] = server.NewCore(eng, qexec.Config{Obs: o, CacheEntries: clusterCacheEntries})
			backends[i] = cluster.NewLocalBackend(fmt.Sprintf("replica-%d", i), cores[i])
		}
		coord, err := cluster.New(backends, cluster.Config{HealthInterval: -1})
		if err != nil {
			return nil, err
		}

		ctx := context.Background()
		for i := 0; i < 2*clusterHotSeeds; i++ {
			if _, err := coord.Query(ctx, clusterSeed(i, n), 10, false); err != nil {
				return nil, fmt.Errorf("bench: cluster warmup: %w", err)
			}
		}
		warm := make([]qexec.Metrics, replicas)
		warmLat := make([]obs.HistSnapshot, replicas)
		for i, c := range cores {
			warm[i] = c.Executor().Metrics()
			warmLat[i] = lats[i].Snapshot()
		}

		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clusterClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					_, _ = coord.Query(ctx, clusterSeed(c*perClient+i, n), 10, false)
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)

		var hits, misses, retries int64
		lat := obs.HistSnapshot{}
		for i, c := range cores {
			dm := c.Executor().Metrics().Delta(warm[i])
			hits += dm.CacheHits
			misses += dm.CacheMisses
			ds := deltaSnapshot(lats[i].Snapshot(), warmLat[i])
			if i == 0 {
				lat = ds
			} else {
				for b := range lat.Counts {
					lat.Counts[b] += ds.Counts[b]
				}
				lat.Count += ds.Count
				lat.Sum += ds.Sum
			}
		}
		for _, rs := range coord.Replicas() {
			retries += rs.Retries
		}
		coord.Close()
		for _, c := range cores {
			c.Close()
		}

		ran := clusterClients * perClient
		qps := float64(ran) / elapsed.Seconds()
		if replicas == clusterReplicaCounts[0] {
			baseQPS = qps
		}
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		t.AddRow(fmt.Sprintf("%d", replicas),
			fmt.Sprintf("%d", ran),
			fmt.Sprintf("%.0f", qps),
			fmt.Sprintf("%.2fx", qps/baseQPS),
			fmt.Sprintf("%.1f%%", 100*hitRate),
			FmtDuration(time.Duration(lat.Quantile(0.50)*float64(time.Second))),
			FmtDuration(time.Duration(lat.Quantile(0.99)*float64(time.Second))),
			fmt.Sprintf("%d", retries))
	}
	return []*Table{t}, nil
}
