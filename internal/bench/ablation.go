package bench

import (
	"fmt"
	"time"

	"bepi/internal/core"
	"bepi/internal/lu"
	"bepi/internal/montecarlo"
	"bepi/internal/reorder"
	"bepi/internal/vec"
)

// Extra ablation experiments beyond the paper's figures, covering the
// design choices DESIGN.md calls out: the Schur solver, the GMRES restart
// length, and the H11 factorization strategy.

// AblationExperiments returns the beyond-paper ablations.
func AblationExperiments() []Experiment {
	return []Experiment{
		{"abl-solver", "Ablation: GMRES vs BiCGSTAB for the Schur solve", AblationSolver},
		{"abl-restart", "Ablation: GMRES restart length vs query time", AblationRestart},
		{"abl-h11", "Ablation: per-block dense LU vs sparse LU for H11", AblationH11},
		{"abl-mc", "Ablation: exact BePI vs Monte Carlo approximation (§5 context)", AblationMonteCarlo},
		{"abl-reorder", "Ablation: iterated SlashBurn vs one-shot hub removal", AblationReorder},
	}
}

// AblationReorder quantifies why SlashBurn iterates: capping it at one
// slash-and-burn round leaves the giant component in the hub region,
// inflating n2 and |S| — the exact costs Theorems 1–3 tie query and memory
// performance to.
func AblationReorder(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Ablation: SlashBurn iteration budget (k=0.2)",
		Note:   "one-shot hub removal dumps the residual GCC into the hub region",
		Header: []string{"dataset", "iterations", "n1", "n2", "|S|", "prep time"},
	}
	datasets := Suite(cfg.Size)
	if len(datasets) > 4 {
		datasets = datasets[:4]
	}
	for _, d := range datasets {
		for _, cap := range []int{1, 3, 0} {
			label := fmt.Sprintf("%d", cap)
			if cap == 0 {
				label = "unlimited"
			}
			start := time.Now()
			ord := reorder.HubAndSpokeIters(d.G, 0.2, cap)
			h := core.BuildH(d.G, ord.Perm, core.DefaultC)
			n1, n2 := ord.N1, ord.N2
			l := n1 + n2
			h11 := h.Block(0, n1, 0, n1)
			f, err := lu.FactorBlockDiag(h11, ord.Blocks)
			if err != nil {
				return nil, fmt.Errorf("%s cap %d: %w", d.Name, cap, err)
			}
			s := core.SchurComplement(h.Block(n1, l, n1, l), h.Block(n1, l, 0, n1), h.Block(0, n1, n1, l), f)
			t.AddRow(d.Name, label, FmtCount(n1), FmtCount(n2),
				FmtCount(s.NNZ()), FmtDuration(time.Since(start)))
		}
	}
	return []*Table{t}, nil
}

// AblationSolver compares GMRES against BiCGSTAB as the per-query Schur
// solver (both ILU(0)-preconditioned).
func AblationSolver(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Ablation: Schur solver (both ILU(0)-preconditioned)",
		Note:   "GMRES is the paper's choice; BiCGSTAB does 2 mat-vecs/iter but stores no Krylov basis",
		Header: []string{"dataset", "query GMRES", "iters", "query BiCGSTAB", "iters"},
	}
	for di, d := range Suite(cfg.Size) {
		seeds := QuerySeeds(d.G, cfg.Seeds, int64(di))
		row := []string{d.Name}
		for _, slv := range []core.SchurSolver{core.SolverGMRES, core.SolverBiCGSTAB} {
			e, err := core.Preprocess(d.G, core.Options{
				Variant: core.VariantFull, Tol: cfg.Tol, Solver: slv, MaxIter: 4000,
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", d.Name, slv, err)
			}
			var total time.Duration
			var iters int
			for _, s := range seeds {
				_, st, err := e.Query(s)
				if err != nil {
					return nil, fmt.Errorf("%s/%v seed %d: %w", d.Name, slv, s, err)
				}
				total += st.Duration
				iters += st.Iterations
			}
			row = append(row,
				FmtDuration(total/time.Duration(len(seeds))),
				fmt.Sprintf("%.1f", float64(iters)/float64(len(seeds))))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// AblationRestart measures how restarting GMRES (shorter Krylov bases)
// trades iterations for memory on the Schur solve.
func AblationRestart(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	restarts := []int{0, 5, 10, 20}
	t := &Table{
		Title:  "Ablation: GMRES restart length",
		Note:   "restart 0 = full GMRES (the paper's configuration)",
		Header: []string{"dataset", "restart", "query time", "iters"},
	}
	datasets := Suite(cfg.Size)
	if len(datasets) > 2 {
		datasets = datasets[:2]
	}
	for di, d := range datasets {
		seeds := QuerySeeds(d.G, cfg.Seeds, int64(di))
		for _, rs := range restarts {
			e, err := core.Preprocess(d.G, core.Options{
				Variant: core.VariantFull, Tol: cfg.Tol,
				GMRESRestart: rs, MaxIter: 4000,
			})
			if err != nil {
				return nil, fmt.Errorf("%s restart %d: %w", d.Name, rs, err)
			}
			var total time.Duration
			var iters int
			for _, s := range seeds {
				_, st, err := e.Query(s)
				if err != nil {
					return nil, fmt.Errorf("%s restart %d seed %d: %w", d.Name, rs, s, err)
				}
				total += st.Duration
				iters += st.Iterations
			}
			label := fmt.Sprintf("%d", rs)
			if rs == 0 {
				label = "full"
			}
			t.AddRow(d.Name, label,
				FmtDuration(total/time.Duration(len(seeds))),
				fmt.Sprintf("%.1f", float64(iters)/float64(len(seeds))))
		}
	}
	return []*Table{t}, nil
}

// AblationMonteCarlo contrasts exact BePI queries with Monte Carlo RWR
// estimation at several walk budgets: the approximate family the paper
// surveys (§5) trades unbounded accuracy for preprocessing-free queries.
// The table shows why applications needing exact scores prefer BePI: error
// shrinks only as 1/√walks while cost grows linearly.
func AblationMonteCarlo(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Ablation: exact BePI vs Monte Carlo estimation",
		Note:   "error = L2 distance to BePI's (exact) result, averaged over seeds",
		Header: []string{"dataset", "walks", "MC query", "MC L2 error", "BePI query"},
	}
	walkBudgets := []int{1_000, 10_000, 100_000}
	datasets := Suite(cfg.Size)
	if len(datasets) > 2 {
		datasets = datasets[:2]
	}
	for di, d := range datasets {
		e, err := core.Preprocess(d.G, core.Options{Tol: cfg.Tol, Parallelism: cfg.Parallelism})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		est, err := montecarlo.New(d.G, core.DefaultC, 555)
		if err != nil {
			return nil, err
		}
		seeds := QuerySeeds(d.G, minI2(cfg.Seeds, 5), int64(di))
		var bepiTotal time.Duration
		exact := make([][]float64, len(seeds))
		for i, s := range seeds {
			r, st, err := e.Query(s)
			if err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", d.Name, s, err)
			}
			exact[i] = r
			bepiTotal += st.Duration
		}
		bepiAvg := bepiTotal / time.Duration(len(seeds))
		for _, w := range walkBudgets {
			var mcTotal time.Duration
			var errSum float64
			for i, s := range seeds {
				start := time.Now()
				r, err := est.Query(s, w)
				if err != nil {
					return nil, err
				}
				mcTotal += time.Since(start)
				errSum += vec.Dist2(r, exact[i])
			}
			t.AddRow(d.Name, FmtCount(w),
				FmtDuration(mcTotal/time.Duration(len(seeds))),
				fmt.Sprintf("%.2e", errSum/float64(len(seeds))),
				FmtDuration(bepiAvg))
		}
	}
	return []*Table{t}, nil
}

func minI2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// AblationH11 compares the two ways to make H11 solvable: the paper's
// per-block dense LU against a Gilbert–Peierls sparse LU of the whole
// block-diagonal matrix.
func AblationH11(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Ablation: H11 factorization strategy",
		Note:   "factor time and storage for H11 = the spoke block after SlashBurn (k=0.2)",
		Header: []string{"dataset", "n1", "blocks", "blockLU time", "blockLU bytes", "sparseLU time", "sparseLU bytes"},
	}
	for _, d := range Suite(cfg.Size) {
		ord := reorder.HubAndSpoke(d.G, 0.2)
		h := core.BuildH(d.G, ord.Perm, core.DefaultC)
		h11 := h.Block(0, ord.N1, 0, ord.N1)

		t0 := time.Now()
		blk, err := lu.FactorBlockDiag(h11, ord.Blocks)
		if err != nil {
			return nil, fmt.Errorf("%s blockLU: %w", d.Name, err)
		}
		blkTime := time.Since(t0)

		t0 = time.Now()
		sp, err := lu.FactorSparse(h11, 0)
		if err != nil {
			return nil, fmt.Errorf("%s sparseLU: %w", d.Name, err)
		}
		spTime := time.Since(t0)

		t.AddRow(d.Name, FmtCount(ord.N1), FmtCount(len(ord.Blocks)),
			FmtDuration(blkTime), FmtBytes(blk.MemoryBytes()),
			FmtDuration(spTime), FmtBytes(sp.MemoryBytes()))
	}
	return []*Table{t}, nil
}
