package bench

import (
	"fmt"
	"runtime"
	"time"

	"bepi/internal/core"
	"bepi/internal/lu"
	"bepi/internal/par"
	"bepi/internal/sparse"
)

// kernelReps returns how many times each micro-kernel is applied per
// measurement at the given suite size.
func kernelReps(s Size) int {
	switch s {
	case Full:
		return 200
	case Small:
		return 50
	default:
		return 20
	}
}

// timeKernel measures the average wall time of reps applications of f.
func timeKernel(reps int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start) / time.Duration(reps)
}

// Kernels is the beyond-paper kernel A/B experiment: per dataset it
// measures the three optimizations of the bandwidth-lean kernel layer in
// isolation — the compact CSR32 layout against wide CSR (index memory and
// SpMV time on the explicit Schur complement), the fused implicit Schur
// operator against the explicit solve on the end-to-end query path, and
// the level-scheduled parallel ILU(0) triangular sweeps against the serial
// ones. Config.Compact (bepi-bench -compact) selects the layout of the
// engines used for the query-time A/B, so both layouts can be compared
// end to end.
func Kernels(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	reps := kernelReps(cfg.Size)
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	core.WarmupKernels()
	stream := sparse.StreamBandwidth()

	mem := &Table{
		Title:  "Kernel memory: wide CSR vs compact CSR32",
		Note:   "whole-engine index bytes; values are float64 in both layouts, only index widths differ",
		Header: []string{"dataset", "index wide", "index compact", "saving"},
	}
	tim := &Table{
		Title: "Kernel timings: layout, fusion, level-scheduled ILU",
		Note: fmt.Sprintf("avg of %d applications; queries avg over %d seeds; ILU leveled uses %d workers; query layout: %s; prefetch distance %d; STREAM roof %s/s",
			reps, cfg.Seeds, workers, layoutName(cfg.Compact), sparse.PrefetchDistance(), FmtBytes(int64(stream))),
		Header: []string{"dataset", "S·x wide", "S·x compact", "query explicit", "query fused", "ILU serial", "ILU leveled"},
	}
	bat := &Table{
		Title: "Batched S·x: row-outer baseline vs RHS-interleaved",
		Note: fmt.Sprintf("avg of %d serial applications on the wide layout; achieved counts matrix bytes + 8 B per in/out vector element per RHS; roof = STREAM triad %s/s",
			reps, FmtBytes(int64(stream))),
		Header: []string{"dataset", "width", "row-outer", "interleaved", "speedup", "achieved", "% of STREAM"},
	}

	datasets := Suite(cfg.Size)
	if len(datasets) > 3 {
		datasets = datasets[:3]
	}
	for di, d := range datasets {
		opts := core.Options{
			Variant: core.VariantFull, Tol: cfg.Tol, Parallelism: cfg.Parallelism,
			MemoryBudget: cfg.Budget.Memory, Deadline: cfg.Budget.Deadline,
			Compact: cfg.Compact,
		}
		e, err := core.Preprocess(d.G, opts)
		if err != nil {
			mem.AddRow(d.Name, classifyCell(err), "-", "-")
			tim.AddRow(d.Name, classifyCell(err), "-", "-", "-", "-", "-")
			continue
		}

		// Memory A/B: the same engine in both layouts, restored afterwards
		// to the layout Config.Compact asked for.
		e.SetCompact(false)
		wideBytes := e.MemoryBytes()
		e.SetCompact(true)
		compBytes := e.MemoryBytes()
		e.SetCompact(cfg.Compact != core.CompactOff)
		mem.AddRow(d.Name, FmtBytes(wideBytes), FmtBytes(compBytes),
			fmt.Sprintf("%.1f%%", 100*(1-float64(compBytes)/float64(wideBytes))))

		// Explicit Schur SpMV, wide vs compact layout.
		s := e.Schur()
		c32 := sparse.Compact(s)
		x := make([]float64, s.Cols())
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		y := make([]float64, s.Rows())
		spmvWide := timeKernel(reps, func() { s.MulVec(y, x) })
		spmvComp := timeKernel(reps, func() { c32.MulVec(y, x) })

		// Batched S·x A/B: the frozen row-outer kernel vs the shipped
		// RHS-interleaved MulVecBatch, serial on a pool-free clone so both
		// sides measure pure kernel time. Outputs are bit-identical; only
		// the traversal differs.
		sk := s.Clone()
		for _, width := range []int{4, 16} {
			xs := make([][]float64, width)
			ys := make([][]float64, width)
			for k := range xs {
				xs[k] = make([]float64, sk.Cols())
				for i := range xs[k] {
					xs[k][i] = float64((i+3*k)%7) - 3
				}
				ys[k] = make([]float64, sk.Rows())
			}
			tBase := timeKernel(reps, func() { rowOuterBatch(sk, ys, xs) })
			tInter := timeKernel(reps, func() { sk.MulVecBatch(ys, xs) })
			bytes := sk.MemoryBytes() + int64(width)*8*int64(sk.Rows()+sk.Cols())
			achieved := float64(bytes) / tInter.Seconds()
			pct := "-"
			if stream > 0 {
				pct = fmt.Sprintf("%.1f%%", 100*achieved/stream)
			}
			bat.AddRow(d.Name, fmt.Sprintf("%d", width),
				FmtDuration(tBase), FmtDuration(tInter),
				fmt.Sprintf("%.2fx", tBase.Seconds()/tInter.Seconds()),
				FmtBytes(int64(achieved))+"/s", pct)
		}

		// Query path, explicit S vs fused implicit operator; both engines
		// share the layout selected by Config.Compact.
		iopts := opts
		iopts.ImplicitSchur = true
		imp, err := core.Preprocess(d.G, iopts)
		if err != nil {
			tim.AddRow(d.Name, FmtDuration(spmvWide), FmtDuration(spmvComp),
				"-", classifyCell(err), "-", "-")
			continue
		}
		seeds := QuerySeeds(d.G, cfg.Seeds, int64(di))
		queryAvg := func(eng *core.Engine) (time.Duration, error) {
			start := time.Now()
			for _, seed := range seeds {
				if _, _, err := eng.Query(seed); err != nil {
					return 0, err
				}
			}
			return time.Since(start) / time.Duration(len(seeds)), nil
		}
		qExplicit, err := queryAvg(e)
		if err != nil {
			return nil, fmt.Errorf("bench: kernels explicit query on %s: %w", d.Name, err)
		}
		qFused, err := queryAvg(imp)
		if err != nil {
			return nil, fmt.Errorf("bench: kernels fused query on %s: %w", d.Name, err)
		}

		// ILU(0) triangular sweeps: serial vs level-scheduled parallel.
		ilu, err := lu.FactorILU0(s)
		if err != nil {
			return nil, fmt.Errorf("bench: kernels ILU on %s: %w", d.Name, err)
		}
		src := make([]float64, s.Rows())
		for i := range src {
			src[i] = float64(i%5) - 2
		}
		dst := make([]float64, s.Rows())
		iluSerial := timeKernel(reps, func() { ilu.Apply(dst, src) })
		ilu.SetPool(par.NewPool(workers))
		iluLeveled := timeKernel(reps, func() { ilu.Apply(dst, src) })

		tim.AddRow(d.Name,
			FmtDuration(spmvWide), FmtDuration(spmvComp),
			FmtDuration(qExplicit), FmtDuration(qFused),
			FmtDuration(iluSerial), FmtDuration(iluLeveled))
	}
	return []*Table{mem, tim, bat}, nil
}

// rowOuterBatch is the frozen pre-interleaving MulVecBatch kernel, kept as
// the benchmark baseline: rows outer, one RHS at a time through the
// four-lane loop. Bit-identical outputs to MulVecBatch — the interleaved
// kernel changed only the traversal, never any per-RHS accumulation order.
func rowOuterBatch(m *sparse.CSR, dst, x [][]float64) {
	rowPtr, col, val := m.RowPtr(), m.ColIdx(), m.Values()
	for i := 0; i < m.Rows(); i++ {
		cols := col[rowPtr[i]:rowPtr[i+1]]
		vals := val[rowPtr[i]:rowPtr[i+1]]
		for k := range x {
			xk := x[k]
			var s0, s1, s2, s3 float64
			p := 0
			for ; p+4 <= len(cols); p += 4 {
				s0 += vals[p] * xk[cols[p]]
				s1 += vals[p+1] * xk[cols[p+1]]
				s2 += vals[p+2] * xk[cols[p+2]]
				s3 += vals[p+3] * xk[cols[p+3]]
			}
			for ; p < len(cols); p++ {
				s0 += vals[p] * xk[cols[p]]
			}
			dst[k][i] = (s0 + s1) + (s2 + s3)
		}
	}
}

// layoutName renders the CompactMode selected for query-path engines.
func layoutName(m core.CompactMode) string {
	if m == core.CompactOff {
		return "wide CSR"
	}
	return "compact CSR32"
}
