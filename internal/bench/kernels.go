package bench

import (
	"fmt"
	"runtime"
	"time"

	"bepi/internal/core"
	"bepi/internal/lu"
	"bepi/internal/par"
	"bepi/internal/sparse"
)

// kernelReps returns how many times each micro-kernel is applied per
// measurement at the given suite size.
func kernelReps(s Size) int {
	switch s {
	case Full:
		return 200
	case Small:
		return 50
	default:
		return 20
	}
}

// timeKernel measures the average wall time of reps applications of f.
func timeKernel(reps int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start) / time.Duration(reps)
}

// Kernels is the beyond-paper kernel A/B experiment: per dataset it
// measures the three optimizations of the bandwidth-lean kernel layer in
// isolation — the compact CSR32 layout against wide CSR (index memory and
// SpMV time on the explicit Schur complement), the fused implicit Schur
// operator against the explicit solve on the end-to-end query path, and
// the level-scheduled parallel ILU(0) triangular sweeps against the serial
// ones. Config.Compact (bepi-bench -compact) selects the layout of the
// engines used for the query-time A/B, so both layouts can be compared
// end to end.
func Kernels(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	reps := kernelReps(cfg.Size)
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	mem := &Table{
		Title:  "Kernel memory: wide CSR vs compact CSR32",
		Note:   "whole-engine index bytes; values are float64 in both layouts, only index widths differ",
		Header: []string{"dataset", "index wide", "index compact", "saving"},
	}
	tim := &Table{
		Title: "Kernel timings: layout, fusion, level-scheduled ILU",
		Note: fmt.Sprintf("avg of %d applications; queries avg over %d seeds; ILU leveled uses %d workers; query layout: %s",
			reps, cfg.Seeds, workers, layoutName(cfg.Compact)),
		Header: []string{"dataset", "S·x wide", "S·x compact", "query explicit", "query fused", "ILU serial", "ILU leveled"},
	}

	datasets := Suite(cfg.Size)
	if len(datasets) > 3 {
		datasets = datasets[:3]
	}
	for di, d := range datasets {
		opts := core.Options{
			Variant: core.VariantFull, Tol: cfg.Tol, Parallelism: cfg.Parallelism,
			MemoryBudget: cfg.Budget.Memory, Deadline: cfg.Budget.Deadline,
			Compact: cfg.Compact,
		}
		e, err := core.Preprocess(d.G, opts)
		if err != nil {
			mem.AddRow(d.Name, classifyCell(err), "-", "-")
			tim.AddRow(d.Name, classifyCell(err), "-", "-", "-", "-", "-")
			continue
		}

		// Memory A/B: the same engine in both layouts, restored afterwards
		// to the layout Config.Compact asked for.
		e.SetCompact(false)
		wideBytes := e.MemoryBytes()
		e.SetCompact(true)
		compBytes := e.MemoryBytes()
		e.SetCompact(cfg.Compact != core.CompactOff)
		mem.AddRow(d.Name, FmtBytes(wideBytes), FmtBytes(compBytes),
			fmt.Sprintf("%.1f%%", 100*(1-float64(compBytes)/float64(wideBytes))))

		// Explicit Schur SpMV, wide vs compact layout.
		s := e.Schur()
		c32 := sparse.Compact(s)
		x := make([]float64, s.Cols())
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		y := make([]float64, s.Rows())
		spmvWide := timeKernel(reps, func() { s.MulVec(y, x) })
		spmvComp := timeKernel(reps, func() { c32.MulVec(y, x) })

		// Query path, explicit S vs fused implicit operator; both engines
		// share the layout selected by Config.Compact.
		iopts := opts
		iopts.ImplicitSchur = true
		imp, err := core.Preprocess(d.G, iopts)
		if err != nil {
			tim.AddRow(d.Name, FmtDuration(spmvWide), FmtDuration(spmvComp),
				"-", classifyCell(err), "-", "-")
			continue
		}
		seeds := QuerySeeds(d.G, cfg.Seeds, int64(di))
		queryAvg := func(eng *core.Engine) (time.Duration, error) {
			start := time.Now()
			for _, seed := range seeds {
				if _, _, err := eng.Query(seed); err != nil {
					return 0, err
				}
			}
			return time.Since(start) / time.Duration(len(seeds)), nil
		}
		qExplicit, err := queryAvg(e)
		if err != nil {
			return nil, fmt.Errorf("bench: kernels explicit query on %s: %w", d.Name, err)
		}
		qFused, err := queryAvg(imp)
		if err != nil {
			return nil, fmt.Errorf("bench: kernels fused query on %s: %w", d.Name, err)
		}

		// ILU(0) triangular sweeps: serial vs level-scheduled parallel.
		ilu, err := lu.FactorILU0(s)
		if err != nil {
			return nil, fmt.Errorf("bench: kernels ILU on %s: %w", d.Name, err)
		}
		src := make([]float64, s.Rows())
		for i := range src {
			src[i] = float64(i%5) - 2
		}
		dst := make([]float64, s.Rows())
		iluSerial := timeKernel(reps, func() { ilu.Apply(dst, src) })
		ilu.SetPool(par.NewPool(workers))
		iluLeveled := timeKernel(reps, func() { ilu.Apply(dst, src) })

		tim.AddRow(d.Name,
			FmtDuration(spmvWide), FmtDuration(spmvComp),
			FmtDuration(qExplicit), FmtDuration(qFused),
			FmtDuration(iluSerial), FmtDuration(iluLeveled))
	}
	return []*Table{mem, tim}, nil
}

// layoutName renders the CompactMode selected for query-path engines.
func layoutName(m core.CompactMode) string {
	if m == core.CompactOff {
		return "wide CSR"
	}
	return "compact CSR32"
}
