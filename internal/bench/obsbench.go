package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bepi"
	"bepi/internal/cluster"
	"bepi/internal/core"
	"bepi/internal/obs"
	"bepi/internal/qexec"
	"bepi/internal/server"
)

// obsClients is the closed-loop client count for the observability
// overhead experiment.
const obsClients = 8

// obsReplicas is the fleet size; two replicas exercise routing, header-free
// local dispatch and per-replica histogram recording without dominating the
// run with solve time.
const obsReplicas = 2

// obsPasses alternates enabled/disabled runs this many times and keeps each
// mode's best qps, so a one-off scheduler hiccup cannot masquerade as
// observability overhead.
const obsPasses = 3

// obsQPS runs one closed-loop pass against a fresh fleet wired with the
// given per-replica observers and coordinator observer, returning the
// steady-state qps (warmup excluded from timing by running it before the
// clock starts).
func obsQPS(eng *bepi.Engine, mkObs func(i int) *obs.Observer, coordObs *obs.Observer, total int) (float64, error) {
	n := eng.N()
	cores := make([]*server.Core, obsReplicas)
	backends := make([]cluster.Backend, obsReplicas)
	for i := range cores {
		cores[i] = server.NewCore(eng, qexec.Config{Obs: mkObs(i), CacheEntries: clusterCacheEntries})
		backends[i] = cluster.NewLocalBackend(fmt.Sprintf("replica-%d", i), cores[i])
	}
	coord, err := cluster.New(backends, cluster.Config{HealthInterval: -1, Obs: coordObs})
	if err != nil {
		return 0, err
	}
	defer func() {
		coord.Close()
		for _, c := range cores {
			c.Close()
		}
	}()

	ctx := context.Background()
	for i := 0; i < 2*clusterHotSeeds; i++ {
		if _, err := coord.Query(ctx, clusterSeed(i, n), 10, false); err != nil {
			return 0, fmt.Errorf("warmup: %w", err)
		}
	}

	perClient := total / obsClients
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < obsClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				_, _ = coord.Query(ctx, clusterSeed(c*perClient+i, n), 10, false)
			}
		}(c)
	}
	wg.Wait()
	return float64(obsClients*perClient) / time.Since(start).Seconds(), nil
}

// Obs measures what the observability layer costs on the serving hot path:
// the same coordinator-over-replicas workload as the cluster experiment,
// once with everything on at production defaults (histograms, sampled
// tracing, flight recorder, slow-query log disabled as in a default deploy)
// and once with obs.Disabled end to end. The contract the tentpole design
// leans on — lock-free histograms, sampled tracing, an atomic ring for
// events — is that the enabled run stays within ~2% of disabled; the table
// makes the number regenerable so a regression shows up as data, not vibes.
func Obs(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	suite := Suite(cfg.Size)
	d := suite[len(suite)-1]

	pg, err := publicGraph(d.G)
	if err != nil {
		return nil, fmt.Errorf("bench: obs graph: %w", err)
	}
	engOpts := []bepi.Option{bepi.WithTolerance(cfg.Tol), bepi.WithCompact(cfg.Compact != core.CompactOff)}
	if cfg.Parallelism != 0 {
		engOpts = append(engOpts, bepi.WithParallelism(cfg.Parallelism))
	}
	eng, err := bepi.New(pg, engOpts...)
	if err != nil {
		return nil, fmt.Errorf("bench: obs preprocess %s: %w", d.Name, err)
	}

	total := clusterQueries(cfg.Size)
	modes := []struct {
		name  string
		shard func(i int) *obs.Observer
		coord *obs.Observer
	}{
		{"disabled", func(int) *obs.Observer { return obs.Disabled }, obs.Disabled},
		{"enabled", func(int) *obs.Observer { return obs.New(obs.Options{}) },
			obs.New(obs.Options{TraceSample: qexec.DefaultTraceSample})},
	}
	best := make([]float64, len(modes))
	for pass := 0; pass < obsPasses; pass++ {
		for mi, m := range modes {
			qps, err := obsQPS(eng, m.shard, m.coord, total)
			if err != nil {
				return nil, fmt.Errorf("bench: obs %s pass %d: %w", m.name, pass, err)
			}
			if qps > best[mi] {
				best[mi] = qps
			}
		}
	}

	overhead := 100 * (1 - best[1]/best[0])
	t := &Table{
		Title: "Observability overhead (coordinator over in-process replicas)",
		Note: fmt.Sprintf("dataset %s; %d clients, %d queries/mode, best of %d alternating passes; target ≤2%% overhead",
			d.Name, obsClients, total, obsPasses),
		Header: []string{"observability", "qps", "overhead"},
	}
	t.AddRow("disabled", fmt.Sprintf("%.0f", best[0]), "-")
	t.AddRow("enabled (histograms + sampled traces + flight recorder)",
		fmt.Sprintf("%.0f", best[1]), fmt.Sprintf("%.1f%%", overhead))
	return []*Table{t}, nil
}
