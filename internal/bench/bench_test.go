package bench

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"bepi/internal/core"
)

func TestSuiteSizes(t *testing.T) {
	tiny := Suite(Tiny)
	if len(tiny) != 2 {
		t.Fatalf("tiny suite has %d datasets", len(tiny))
	}
	small := Suite(Small)
	if len(small) != 4 {
		t.Fatalf("small suite has %d datasets", len(small))
	}
	for i := 1; i < len(small); i++ {
		if small[i].G.N() < small[i-1].G.N() {
			t.Fatal("suite not ordered smallest first")
		}
	}
}

func TestSuiteGraphLookup(t *testing.T) {
	d, err := SuiteGraph("slashdot-syn", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if d.G.N() != 128 {
		t.Fatalf("N = %d", d.G.N())
	}
	if _, err := SuiteGraph("nope", Tiny); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if _, err := SuiteGraph("friendster-syn", Tiny); err == nil {
		t.Fatal("expected error for dataset absent at tiny size")
	}
}

func TestQuerySeedsDeterministic(t *testing.T) {
	g := Suite(Tiny)[0].G
	a := QuerySeeds(g, 5, 1)
	b := QuerySeeds(g, 5, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("seeds not deterministic")
		}
		if a[i] < 0 || a[i] >= g.N() {
			t.Fatal("seed out of range")
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"col", "value"},
	}
	tb.AddRow("a", "1")
	tb.AddRow("bbbb", "22")
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "a note", "col", "bbbb"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	var csvBuf bytes.Buffer
	if err := tb.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csvBuf.String(), "\n"); got != 3 {
		t.Fatalf("CSV lines = %d", got)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{FmtDuration(0), "0"},
		{FmtDuration(1500 * time.Nanosecond), "1.5µs"},
		{FmtDuration(2500 * time.Microsecond), "2.50ms"},
		{FmtDuration(3 * time.Second), "3.00s"},
		{FmtBytes(512), "512B"},
		{FmtBytes(2 << 10), "2.0KiB"},
		{FmtBytes(3 << 20), "3.0MiB"},
		{FmtBytes(5 << 30), "5.00GiB"},
		{FmtCount(999), "999"},
		{FmtCount(1234567), "1,234,567"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 3·x^1.5 exactly.
	xs := []float64{10, 100, 1000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	if s := loglogSlope(xs, ys); s < 1.49 || s > 1.51 {
		t.Fatalf("slope = %v, want 1.5", s)
	}
	if s := loglogSlope([]float64{1}, []float64{1}); !math.IsNaN(s) {
		t.Fatal("expected NaN for single point")
	}
}

// TestEveryExperimentRunsAtTinySize is the harness integration test: all
// twelve tables/figures must run end to end and produce non-empty tables.
func TestEveryExperimentRunsAtTinySize(t *testing.T) {
	cfg := Config{Size: Tiny, Seeds: 2}
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.Name, func(t *testing.T) {
			tables, err := exp.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", exp.Name, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", exp.Name)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: table %q is empty", exp.Name, tb.Title)
				}
				if len(tb.Header) == 0 {
					t.Fatalf("%s: table %q has no header", exp.Name, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Fatalf("%s: table %q row width %d != header %d",
							exp.Name, tb.Title, len(row), len(tb.Header))
					}
				}
				var buf bytes.Buffer
				if err := tb.Fprint(&buf); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestFindExperiment(t *testing.T) {
	if _, ok := FindExperiment("fig1"); !ok {
		t.Fatal("fig1 missing")
	}
	if _, ok := FindExperiment("abl-solver"); !ok {
		t.Fatal("ablation missing")
	}
	if _, ok := FindExperiment("nope"); ok {
		t.Fatal("unexpected experiment")
	}
}

// TestAblationsRunAtTinySize exercises the beyond-paper ablations.
func TestAblationsRunAtTinySize(t *testing.T) {
	cfg := Config{Size: Tiny, Seeds: 2}
	for _, exp := range AblationExperiments() {
		exp := exp
		t.Run(exp.Name, func(t *testing.T) {
			tables, err := exp.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", exp.Name, err)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: table %q is empty", exp.Name, tb.Title)
				}
			}
		})
	}
}

func TestFig4UShape(t *testing.T) {
	// The defining property of Figure 4: at small k the cross term
	// dominates; it must shrink as k grows.
	tables, err := Fig4(Config{Size: Tiny, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) < 3 {
		t.Fatalf("too few rows: %d", len(rows))
	}
	// Compare the cross term of the first dataset at the lowest and
	// highest k.
	first := parseCount(t, rows[0][5])
	var lastSameDataset []string
	for _, r := range rows {
		if r[0] == rows[0][0] {
			lastSameDataset = r
		}
	}
	last := parseCount(t, lastSameDataset[5])
	if last >= first {
		t.Fatalf("cross term did not shrink with k: %d → %d", first, last)
	}
}

func parseCount(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(strings.ReplaceAll(s, ",", ""))
	if err != nil {
		t.Fatalf("parsing count %q: %v", s, err)
	}
	return v
}

// TestKernelsLayoutAB runs the kernels experiment in both matrix layouts
// (the bepi-bench -compact A/B) and checks the memory table reports a
// strictly positive saving for the compact one.
func TestKernelsLayoutAB(t *testing.T) {
	for _, mode := range []core.CompactMode{core.CompactOn, core.CompactOff} {
		tables, err := Kernels(Config{Size: Tiny, Seeds: 2, Compact: mode})
		if err != nil {
			t.Fatalf("compact=%v: %v", mode, err)
		}
		if len(tables) != 3 {
			t.Fatalf("compact=%v: got %d tables, want 3", mode, len(tables))
		}
		mem := tables[0]
		for _, row := range mem.Rows {
			saving := strings.TrimSuffix(row[3], "%")
			v, err := strconv.ParseFloat(saving, 64)
			if err != nil {
				t.Fatalf("compact=%v: bad saving cell %q: %v", mode, row[3], err)
			}
			if v <= 0 {
				t.Fatalf("compact=%v: dataset %s reports no index saving (%v%%)", mode, row[0], v)
			}
		}
	}
}
