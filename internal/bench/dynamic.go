package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bepi"
)

// dynamicClients is how many concurrent query clients hammer the index
// while it rebuilds.
const dynamicClients = 4

// dynamicScale returns the R-MAT (scale, edgeFactor) of the dynamic
// experiment's graph per suite size — big enough that a full BePI
// re-preprocessing takes visible wall time next to a single query.
func dynamicScale(s Size) (int, int) {
	switch s {
	case Full:
		return 16, 12
	case Small:
		return 14, 10
	default:
		return 11, 8
	}
}

// durQuantile returns the q-quantile of a latency sample (sorts in place).
func durQuantile(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	i := int(q * float64(len(d)-1))
	return d[i]
}

// Dynamic is the registered "dynamic" experiment: the stop-the-world vs
// background flush comparison, followed by the continuous-update-stream
// workload contrasting incremental (delta) flushes with a full preprocess.
func Dynamic(cfg Config) ([]*Table, error) {
	tables, err := DynamicRebuild(cfg)
	if err != nil {
		return nil, err
	}
	dt, err := DynamicDeltaStream(cfg)
	if err != nil {
		return nil, err
	}
	return append(tables, dt...), nil
}

// DynamicRebuild measures query latency while the index rebuilds after
// buffered edge updates, contrasting the old stop-the-world flush (the
// whole rebuild runs under the write lock, emulated here by wrapping the
// same index in an RWMutex) with the background flush (snapshot under the
// lock, preprocess outside it, atomic swap). The stop-the-world row's
// in-rebuild p99 is the rebuild duration; the background row's stays near
// the steady-state query cost.
func DynamicRebuild(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	scale, ef := dynamicScale(cfg.Size)
	t := &Table{
		Title: "Query latency during a dynamic-index rebuild",
		Note: fmt.Sprintf("R-MAT scale %d, edge factor %d; %d concurrent clients querying while a flush rebuilds; stop-the-world emulates the pre-rework Flush (rebuild under the write lock)",
			scale, ef, dynamicClients),
		Header: []string{"flush mode", "rebuild", "queries during", "steady p50", "steady p99", "during p50", "during p99", "during worst"},
	}

	for _, mode := range []string{"stop-the-world", "background"} {
		g := bepi.RMAT(scale, ef, 42)
		d, err := bepi.NewDynamic(g, bepi.WithTolerance(cfg.Tol))
		if err != nil {
			t.AddRow(mode, classifyCell(err), "-", "-", "-", "-", "-", "-")
			continue
		}
		n := d.N()

		// The stop-the-world emulation routes queries and the flush through
		// one RWMutex, the way the pre-rework Flush serialized them.
		var mu sync.RWMutex
		stw := mode == "stop-the-world"
		query := func(seed int) error {
			if stw {
				mu.RLock()
				defer mu.RUnlock()
			}
			_, err := d.Query(seed)
			return err
		}

		// Steady state: latency with no rebuild in flight.
		var steady []time.Duration
		for i := 0; i < 32; i++ {
			qs := time.Now()
			if err := query(i % n); err != nil {
				return nil, fmt.Errorf("bench: dynamic steady query: %w", err)
			}
			steady = append(steady, time.Since(qs))
		}

		// Real buffered work: a fresh node with edges is never a no-op.
		id := d.AddNode()
		if err := d.AddEdge(0, id); err != nil {
			return nil, fmt.Errorf("bench: dynamic buffer: %w", err)
		}
		if err := d.AddEdge(id, 0); err != nil {
			return nil, fmt.Errorf("bench: dynamic buffer: %w", err)
		}

		// Clients query for the whole rebuild; each sample is one query
		// issued while the flush was (or appeared) in flight.
		during := make([][]time.Duration, dynamicClients)
		done := make(chan struct{})
		var wg, ready sync.WaitGroup
		var qerr error
		var qerrOnce sync.Once
		ready.Add(dynamicClients)
		for c := 0; c < dynamicClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				// One unrecorded query, so every client is warm and
				// mid-loop before the flush starts.
				if err := query(c % n); err != nil {
					qerrOnce.Do(func() { qerr = err })
					ready.Done()
					return
				}
				ready.Done()
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					qs := time.Now()
					if err := query((c*131 + i) % n); err != nil {
						qerrOnce.Do(func() { qerr = err })
						return
					}
					during[c] = append(during[c], time.Since(qs))
				}
			}(c)
		}
		ready.Wait()

		rs := time.Now()
		var flushErr error
		if stw {
			mu.Lock()
			flushErr = d.Flush()
			mu.Unlock()
		} else {
			flushErr = d.Flush()
		}
		rebuild := time.Since(rs)
		close(done)
		wg.Wait()
		if flushErr != nil {
			return nil, fmt.Errorf("bench: dynamic flush (%s): %w", mode, flushErr)
		}
		if qerr != nil {
			return nil, fmt.Errorf("bench: dynamic query (%s): %w", mode, qerr)
		}

		var all []time.Duration
		for _, ds := range during {
			all = append(all, ds...)
		}
		t.AddRow(mode,
			FmtDuration(rebuild),
			fmt.Sprintf("%d", len(all)),
			FmtDuration(durQuantile(steady, 0.50)),
			FmtDuration(durQuantile(steady, 0.99)),
			FmtDuration(durQuantile(all, 0.50)),
			FmtDuration(durQuantile(all, 0.99)),
			FmtDuration(durQuantile(all, 1.0)))
	}
	return []*Table{t}, nil
}

// deltaStreamScale returns the R-MAT (scale, edgeFactor) of the
// continuous-update-stream experiment. Full matches the EXPERIMENTS.md
// setting (scale-15).
func deltaStreamScale(s Size) (int, int) {
	switch s {
	case Full:
		return 15, 12
	case Small:
		return 13, 10
	default:
		return 10, 8
	}
}

// deltaStreamSizes returns the per-batch delta sizes, scaled down with the
// graph so small suites never delete a meaningful fraction of the edges.
func deltaStreamSizes(s Size) []int {
	switch s {
	case Full:
		return []int{1, 64, 4096}
	case Small:
		return []int{1, 64, 1024}
	default:
		return []int{1, 16, 128}
	}
}

// DynamicDeltaStream drives a continuous update stream through one dynamic
// index: per batch it deletes K spoke-sourced edges, flushes, and records
// the rebuild mode and wall time, plus query latency sampled while the
// rebuild is in flight. Deletions are restricted to sources that (a) stay
// non-deadend and (b) are spokes under the engine's ordering, so every
// batch stays on the delta-spoke path — the one whose cost must be
// proportional to the delta, not the graph (the Woodbury hub path is
// exercised by the unit tests). The full baseline is measured through the
// same Flush machinery under the same query load, forced onto the full
// path by an update the ordering cannot absorb (a new node with an
// out-edge); it runs after the delta batches so the full rebuild's fresh
// ordering never perturbs their delta classification, but is reported
// first as the baseline row.
func DynamicDeltaStream(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	scale, ef := deltaStreamScale(cfg.Size)
	g := bepi.RMAT(scale, ef, 42)

	d, err := bepi.NewDynamic(g, bepi.WithTolerance(cfg.Tol))
	if err != nil {
		return nil, fmt.Errorf("bench: delta stream preprocess: %w", err)
	}
	ord := d.Engine().Internal().Ordering()

	t := &Table{
		Title: "Incremental rebuild: delta flush vs full rebuild",
		Note: fmt.Sprintf("R-MAT scale %d, edge factor %d; each batch deletes K spoke-sourced edges from the same live index and flushes; the full row is a flush forced onto the full-rebuild path (new node with an out-edge), measured through the same machinery and query load",
			scale, ef),
		Header: []string{"delta edges", "mode", "flush", "vs full", "queries during", "during p50", "during p99"},
	}

	// Deletable edges: spoke sources (every existing spoke→spoke edge lies
	// inside one H11 block, so deletion can't cross blocks) with enough
	// remaining out-degree that no source ever becomes a deadend.
	deg := make(map[int]int)
	var pool []bepi.Edge
	for _, e := range g.Edges() {
		if ord.Perm[e.Src] < ord.N1 {
			pool = append(pool, e)
		}
	}
	// Deterministic spread over the pool without favoring low node ids.
	for i, j := range randPerm(len(pool)) {
		pool[i], pool[j] = pool[j], pool[i]
	}
	next := 0
	pick := func(k int) ([]bepi.Edge, error) {
		var ops []bepi.Edge
		for ; next < len(pool) && len(ops) < k; next++ {
			e := pool[next]
			if _, ok := deg[e.Src]; !ok {
				deg[e.Src] = g.OutDegree(e.Src)
			}
			if deg[e.Src] < 2 {
				continue
			}
			deg[e.Src]--
			ops = append(ops, e)
		}
		if len(ops) < k {
			return nil, fmt.Errorf("bench: delta stream: only %d of %d deletable edges at scale %d", len(ops), k, scale)
		}
		return ops, nil
	}

	// flushAndSample runs one background flush with a single client
	// sampling query latency for as long as the rebuild is in flight (tiny
	// deltas settle before the first query lands).
	flushAndSample := func() (bepi.RebuildStatus, []time.Duration, error) {
		n := d.N()
		r := d.StartFlush()
		var during []time.Duration
		qdone := make(chan error, 1)
		go func() {
			for i := 0; ; i++ {
				select {
				case <-r.Done():
					qdone <- nil
					return
				default:
				}
				qs := time.Now()
				if _, err := d.Query((i * 131) % n); err != nil {
					qdone <- err
					return
				}
				during = append(during, time.Since(qs))
			}
		}()
		flushErr := r.Wait()
		if err := <-qdone; err != nil {
			return bepi.RebuildStatus{}, nil, fmt.Errorf("bench: delta stream query: %w", err)
		}
		if flushErr != nil {
			return bepi.RebuildStatus{}, nil, fmt.Errorf("bench: delta stream flush: %w", flushErr)
		}
		return r.Status(), during, nil
	}

	type batch struct {
		label  string
		st     bepi.RebuildStatus
		during []time.Duration
	}
	var batches []batch
	for _, k := range deltaStreamSizes(cfg.Size) {
		ops, err := pick(k)
		if err != nil {
			return nil, err
		}
		for _, e := range ops {
			if err := d.RemoveEdge(e.Src, e.Dst); err != nil {
				return nil, fmt.Errorf("bench: delta stream buffer: %w", err)
			}
		}
		st, during, err := flushAndSample()
		if err != nil {
			return nil, err
		}
		batches = append(batches, batch{fmt.Sprintf("%d", k), st, during})
	}

	// The forced-full baseline: a new node with an out-edge is refused by
	// the incremental path, so this flush runs the complete preprocessing
	// pipeline (SlashBurn, factorization, Schur, ILU) under the same query
	// load the delta batches saw.
	id := d.AddNode()
	if err := d.AddEdge(id, 0); err != nil {
		return nil, fmt.Errorf("bench: delta stream baseline edge: %w", err)
	}
	fullSt, fullDuring, err := flushAndSample()
	if err != nil {
		return nil, err
	}
	if fullSt.Mode != bepi.RebuildModeFull {
		return nil, fmt.Errorf("bench: delta stream baseline took the %q path, want full", fullSt.Mode)
	}
	batches = append([]batch{{"1 (+1 node)", fullSt, fullDuring}}, batches...)

	for _, b := range batches {
		p50, p99 := "-", "-"
		if len(b.during) > 0 {
			p50 = FmtDuration(durQuantile(b.during, 0.50))
			p99 = FmtDuration(durQuantile(b.during, 0.99))
		}
		t.AddRow(b.label,
			string(b.st.Mode),
			FmtDuration(b.st.Duration),
			fmt.Sprintf("%.1f×", float64(fullSt.Duration)/float64(b.st.Duration)),
			fmt.Sprintf("%d", len(b.during)),
			p50, p99)
	}
	return []*Table{t}, nil
}

// randPerm is a tiny deterministic Fisher-Yates index stream (LCG-driven)
// so the experiment needs no RNG state shared with other tables.
func randPerm(n int) []int {
	js := make([]int, n)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range js {
		state = state*6364136223846793005 + 1442695040888963407
		js[i] = int(state % uint64(i+1))
	}
	return js
}
