package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bepi"
)

// dynamicClients is how many concurrent query clients hammer the index
// while it rebuilds.
const dynamicClients = 4

// dynamicScale returns the R-MAT (scale, edgeFactor) of the dynamic
// experiment's graph per suite size — big enough that a full BePI
// re-preprocessing takes visible wall time next to a single query.
func dynamicScale(s Size) (int, int) {
	switch s {
	case Full:
		return 16, 12
	case Small:
		return 14, 10
	default:
		return 11, 8
	}
}

// durQuantile returns the q-quantile of a latency sample (sorts in place).
func durQuantile(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	i := int(q * float64(len(d)-1))
	return d[i]
}

// DynamicRebuild measures query latency while the index rebuilds after
// buffered edge updates, contrasting the old stop-the-world flush (the
// whole rebuild runs under the write lock, emulated here by wrapping the
// same index in an RWMutex) with the background flush (snapshot under the
// lock, preprocess outside it, atomic swap). The stop-the-world row's
// in-rebuild p99 is the rebuild duration; the background row's stays near
// the steady-state query cost.
func DynamicRebuild(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	scale, ef := dynamicScale(cfg.Size)
	t := &Table{
		Title: "Query latency during a dynamic-index rebuild",
		Note: fmt.Sprintf("R-MAT scale %d, edge factor %d; %d concurrent clients querying while a flush rebuilds; stop-the-world emulates the pre-rework Flush (rebuild under the write lock)",
			scale, ef, dynamicClients),
		Header: []string{"flush mode", "rebuild", "queries during", "steady p50", "steady p99", "during p50", "during p99", "during worst"},
	}

	for _, mode := range []string{"stop-the-world", "background"} {
		g := bepi.RMAT(scale, ef, 42)
		d, err := bepi.NewDynamic(g, bepi.WithTolerance(cfg.Tol))
		if err != nil {
			t.AddRow(mode, classifyCell(err), "-", "-", "-", "-", "-", "-")
			continue
		}
		n := d.N()

		// The stop-the-world emulation routes queries and the flush through
		// one RWMutex, the way the pre-rework Flush serialized them.
		var mu sync.RWMutex
		stw := mode == "stop-the-world"
		query := func(seed int) error {
			if stw {
				mu.RLock()
				defer mu.RUnlock()
			}
			_, err := d.Query(seed)
			return err
		}

		// Steady state: latency with no rebuild in flight.
		var steady []time.Duration
		for i := 0; i < 32; i++ {
			qs := time.Now()
			if err := query(i % n); err != nil {
				return nil, fmt.Errorf("bench: dynamic steady query: %w", err)
			}
			steady = append(steady, time.Since(qs))
		}

		// Real buffered work: a fresh node with edges is never a no-op.
		id := d.AddNode()
		if err := d.AddEdge(0, id); err != nil {
			return nil, fmt.Errorf("bench: dynamic buffer: %w", err)
		}
		if err := d.AddEdge(id, 0); err != nil {
			return nil, fmt.Errorf("bench: dynamic buffer: %w", err)
		}

		// Clients query for the whole rebuild; each sample is one query
		// issued while the flush was (or appeared) in flight.
		during := make([][]time.Duration, dynamicClients)
		done := make(chan struct{})
		var wg, ready sync.WaitGroup
		var qerr error
		var qerrOnce sync.Once
		ready.Add(dynamicClients)
		for c := 0; c < dynamicClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				// One unrecorded query, so every client is warm and
				// mid-loop before the flush starts.
				if err := query(c % n); err != nil {
					qerrOnce.Do(func() { qerr = err })
					ready.Done()
					return
				}
				ready.Done()
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					qs := time.Now()
					if err := query((c*131 + i) % n); err != nil {
						qerrOnce.Do(func() { qerr = err })
						return
					}
					during[c] = append(during[c], time.Since(qs))
				}
			}(c)
		}
		ready.Wait()

		rs := time.Now()
		var flushErr error
		if stw {
			mu.Lock()
			flushErr = d.Flush()
			mu.Unlock()
		} else {
			flushErr = d.Flush()
		}
		rebuild := time.Since(rs)
		close(done)
		wg.Wait()
		if flushErr != nil {
			return nil, fmt.Errorf("bench: dynamic flush (%s): %w", mode, flushErr)
		}
		if qerr != nil {
			return nil, fmt.Errorf("bench: dynamic query (%s): %w", mode, qerr)
		}

		var all []time.Duration
		for _, ds := range during {
			all = append(all, ds...)
		}
		t.AddRow(mode,
			FmtDuration(rebuild),
			fmt.Sprintf("%d", len(all)),
			FmtDuration(durQuantile(steady, 0.50)),
			FmtDuration(durQuantile(steady, 0.99)),
			FmtDuration(durQuantile(all, 0.50)),
			FmtDuration(durQuantile(all, 0.99)),
			FmtDuration(durQuantile(all, 1.0)))
	}
	return []*Table{t}, nil
}
