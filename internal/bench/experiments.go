package bench

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bepi/internal/core"
	"bepi/internal/eig"
	"bepi/internal/gen"
	"bepi/internal/method"
	"bepi/internal/reorder"
	"bepi/internal/solver"
	"bepi/internal/vec"
)

// Experiment is one regenerable table/figure of the paper.
type Experiment struct {
	Name string // id used on the bepi-bench command line
	Desc string // what it reproduces
	Run  func(Config) ([]*Table, error)
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Table 2: dataset statistics (n, m, n1, n2, n3 per method)", Table2},
		{"fig1", "Figure 1: preprocessing time, preprocessed memory, query time across methods", Fig1},
		{"table3", "Table 3: |S| under BePI-B vs BePI-S hub-ratio policies", Table3},
		{"table4", "Table 4: average GMRES iterations, BePI-S vs BePI", Table4},
		{"fig4", "Figure 4: |S|, |H22|, |H21·H11⁻¹·H12| vs hub selection ratio k", Fig4},
		{"fig5", "Figure 5: scalability vs number of edges (prefix subgraphs)", Fig5},
		{"fig6", "Figure 6: ablation BePI-B vs BePI-S vs BePI", Fig6},
		{"fig7", "Figure 7: eigenvalue dispersion of S vs preconditioned S", Fig7},
		{"fig8", "Figure 8: effect of hub selection ratio k on BePI's costs", Fig8},
		{"fig10", "Figure 10 (App. I): L2 error vs iterations on a small graph", Fig10},
		{"fig11", "Figure 11 (App. J): BePI vs Bear head to head", Fig11},
		{"fig12", "Figure 12 (App. K): total running time (preprocessing + 30 queries)", Fig12},
		{"prepstages", "Beyond paper: per-stage preprocessing wall times and parallel worker count", PrepStages},
		{"serving", "Beyond paper: steady-state serving throughput, latency quantiles, cache hit rate", Serving},
		{"kernels", "Beyond paper: compact CSR32 vs wide CSR, fused vs explicit Schur operator, serial vs leveled ILU sweeps", Kernels},
		{"dynamic", "Beyond paper: query latency during a dynamic-index rebuild, stop-the-world vs background flush, plus incremental delta-flush vs full preprocess under a continuous update stream", Dynamic},
		{"cluster", "Beyond paper: sharded serving — coordinator qps and cache hit rate at 1/2/4 in-process replicas", Cluster},
		{"topk", "Beyond paper: exact top-k early termination — bound-pruned vs full-tolerance latency per k", TopK},
		{"obs", "Beyond paper: observability overhead — coordinator qps with histograms/traces/events on vs obs.Disabled", Obs},
	}
}

// PrepStages breaks preprocessing time down by stage (reorder, build H,
// factor H11, Schur, ILU) per dataset and reports the effective parallel
// worker count, so kernel-level speedups from -parallelism are visible per
// stage rather than only in the total.
func PrepStages(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Preprocessing stage timings (full BePI)",
		Note:   "wall time per Algorithm 1/3 stage; workers = engine pool size (-parallelism)",
		Header: []string{"dataset", "workers", "reorder", "build H", "factor H11", "Schur", "ILU", "total"},
	}
	for _, d := range Suite(cfg.Size) {
		e, err := core.Preprocess(d.G, core.Options{
			Variant: core.VariantFull, Tol: cfg.Tol, Parallelism: cfg.Parallelism,
			MemoryBudget: cfg.Budget.Memory, Deadline: cfg.Budget.Deadline,
		})
		if err != nil {
			t.AddRow(d.Name, classifyCell(err), "-", "-", "-", "-", "-", "-")
			continue
		}
		st := e.PrepStats()
		t.AddRow(d.Name, fmt.Sprintf("%d", st.Workers),
			FmtDuration(st.Reorder), FmtDuration(st.BuildH),
			FmtDuration(st.FactorH11), FmtDuration(st.Schur),
			FmtDuration(st.ILU), FmtDuration(st.Total))
	}
	return []*Table{t}, nil
}

// FindExperiment looks an experiment up by name, searching both the paper
// experiments and the beyond-paper ablations.
func FindExperiment(name string) (Experiment, bool) {
	for _, e := range append(Experiments(), AblationExperiments()...) {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Table2 reproduces the dataset-statistics table: for each dataset, the
// node/edge counts and the partition sizes (n1, n2, n3) under both
// hub-ratio policies.
func Table2(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Table 2: dataset statistics",
		Note:   "synthetic R-MAT stand-ins; k column = BePI-S/BePI hub ratio; n1/n2 reported for BePI-B (k=0.001) and BePI",
		Header: []string{"dataset", "n", "m", "k", "n1(BePI-B)", "n1(BePI)", "n2(BePI-B)", "n2(BePI)", "n3"},
	}
	for _, d := range Suite(cfg.Size) {
		pb := reorder.HubAndSpoke(d.G, 0.001)
		ps := reorder.HubAndSpoke(d.G, 0.2)
		t.AddRow(d.Name, FmtCount(d.G.N()), FmtCount(d.G.M()), "0.20",
			FmtCount(pb.N1), FmtCount(ps.N1),
			FmtCount(pb.N2), FmtCount(ps.N2),
			FmtCount(ps.N3))
	}
	return []*Table{t}, nil
}

// Fig1 reproduces the headline comparison: (a) preprocessing time and
// (b) preprocessed-data memory for the preprocessing methods, and (c) query
// time for all methods. Bars the paper omits (out of memory/time) appear as
// o.o.m. / o.o.t. cells.
func Fig1(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	mcfg := cfg.methodConfig()
	datasets := Suite(cfg.Size)

	prep := &Table{
		Title:  "Figure 1(a): preprocessing time",
		Header: []string{"dataset", "BePI", "Bear", "LU"},
	}
	mem := &Table{
		Title:  "Figure 1(b): memory for preprocessed data",
		Header: []string{"dataset", "BePI", "Bear", "LU"},
	}
	query := &Table{
		Title:  "Figure 1(c): query time (avg over seeds)",
		Header: []string{"dataset", "BePI", "GMRES", "Power", "Bear", "LU"},
	}
	for di, d := range datasets {
		seeds := QuerySeeds(d.G, cfg.Seeds, int64(di))
		results := map[string]Result{}
		for _, m := range AllMethods(mcfg) {
			results[m.Name()] = RunOne(m, d, seeds)
		}
		prep.AddRow(d.Name,
			results["BePI"].prepCell(), results["Bear"].prepCell(), results["LU"].prepCell())
		mem.AddRow(d.Name,
			results["BePI"].memCell(), results["Bear"].memCell(), results["LU"].memCell())
		query.AddRow(d.Name,
			results["BePI"].queryCell(), results["GMRES"].queryCell(),
			results["Power"].queryCell(), results["Bear"].queryCell(),
			results["LU"].queryCell())
	}
	return []*Table{prep, mem, query}, nil
}

// Table3 reproduces the Schur-sparsification table: |S| under the BePI-B
// hub-ratio policy versus the |S|-minimizing BePI-S/BePI policy.
func Table3(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Table 3: number of non-zeros of S",
		Header: []string{"dataset", "|S| (BePI-B)", "|S| (BePI-S/BePI)", "ratio"},
	}
	for _, d := range Suite(cfg.Size) {
		cellB, nnzB := schurNNZCell(d, core.VariantB, 0.001, cfg)
		cellS, nnzS := schurNNZCell(d, core.VariantS, 0.2, cfg)
		ratio := "-"
		if nnzB > 0 && nnzS > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(nnzB)/float64(nnzS))
		}
		t.AddRow(d.Name, cellB, cellS, ratio)
	}
	return []*Table{t}, nil
}

func schurNNZCell(d Dataset, v core.Variant, k float64, cfg Config) (string, int) {
	e, err := core.Preprocess(d.G, core.Options{
		Variant: v, HubRatio: k, Tol: cfg.Tol, Parallelism: cfg.Parallelism,
		MemoryBudget: cfg.Budget.Memory, Deadline: cfg.Budget.Deadline,
	})
	if err != nil {
		return classifyCell(err), 0
	}
	nnz := e.PrepStats().SchurNNZ
	return FmtCount(nnz), nnz
}

func classifyCell(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, core.ErrMemoryBudget), errors.Is(err, method.ErrOutOfMemory):
		return string(OOM)
	case errors.Is(err, core.ErrDeadline), errors.Is(err, method.ErrOutOfTime):
		return string(OOT)
	default:
		return string(ERR)
	}
}

// Table4 reproduces the preconditioning-iterations table: average GMRES
// iterations to solve the Schur system, BePI-S (plain) vs BePI (ILU).
func Table4(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	mcfg := cfg.methodConfig()
	t := &Table{
		Title:  "Table 4: average iterations for r2",
		Header: []string{"dataset", "iters (BePI-S)", "iters (BePI)", "ratio"},
	}
	for di, d := range Suite(cfg.Size) {
		seeds := QuerySeeds(d.G, cfg.Seeds, int64(di))
		rs := RunOne(method.NewBePIS(mcfg), d, seeds)
		rf := RunOne(method.NewBePI(mcfg), d, seeds)
		if rs.Outcome != OK || rf.Outcome != OK {
			t.AddRow(d.Name, string(rs.Outcome), string(rf.Outcome), "-")
			continue
		}
		t.AddRow(d.Name,
			fmt.Sprintf("%.1f", rs.AvgIters),
			fmt.Sprintf("%.1f", rf.AvgIters),
			fmt.Sprintf("%.1fx", rs.AvgIters/math.Max(rf.AvgIters, 1e-9)))
	}
	return []*Table{t}, nil
}

// Fig4 reproduces the hub-ratio trade-off curves: |S|, |H22| and
// |H21·H11⁻¹·H12| as k sweeps.
func Fig4(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ks := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	maxDatasets := 4
	if cfg.Size == Tiny {
		ks = []float64{0.1, 0.3, 0.5}
		maxDatasets = 2
	}
	t := &Table{
		Title:  "Figure 4: Schur-complement sparsity vs hub selection ratio",
		Note:   "|S| should be U-shaped in k: |H22| grows while |H21·H11⁻¹·H12| shrinks",
		Header: []string{"dataset", "k", "n2", "|S|", "|H22|", "|H21·H11⁻¹·H12|"},
	}
	datasets := Suite(cfg.Size)
	if len(datasets) > maxDatasets {
		datasets = datasets[:maxDatasets]
	}
	for _, d := range datasets {
		for _, k := range ks {
			p, err := core.ProfileSchur(d.G, k, core.DefaultC)
			if err != nil {
				return nil, fmt.Errorf("%s at k=%v: %w", d.Name, k, err)
			}
			t.AddRow(d.Name, fmt.Sprintf("%.2f", k), FmtCount(p.N2),
				FmtCount(p.SchurNNZ), FmtCount(p.H22NNZ), FmtCount(p.CrossNNZ))
		}
	}
	return []*Table{t}, nil
}

// Fig5 reproduces the scalability experiment: principal (node-prefix)
// subgraphs of the largest suite dataset — the paper's "upper left part of
// the adjacency matrix" protocol — measuring preprocessing time, memory and
// query time per method, with the fitted log-log slope (in the edge count)
// for BePI.
func Fig5(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	suite := Suite(cfg.Size)
	base := suite[len(suite)-1]
	fracs := []float64{0.125, 0.25, 0.5, 1.0}
	mcfg := cfg.methodConfig()

	prep := &Table{
		Title:  "Figure 5(a): preprocessing time vs edges",
		Header: []string{"edges", "BePI", "Bear", "LU"},
	}
	mem := &Table{
		Title:  "Figure 5(b): preprocessed memory vs edges",
		Header: []string{"edges", "BePI", "Bear", "LU"},
	}
	query := &Table{
		Title:  "Figure 5(c): query time vs edges",
		Header: []string{"edges", "BePI", "GMRES", "Power", "Bear", "LU"},
	}
	var xs, prepYs, memYs, queryYs []float64
	for fi, f := range fracs {
		x := int(f * float64(base.G.N()))
		sub := Dataset{Name: fmt.Sprintf("%s[%d]", base.Name, x), G: base.G.NodePrefix(x)}
		if sub.G.N() == 0 || sub.G.M() == 0 {
			continue
		}
		seeds := QuerySeeds(sub.G, cfg.Seeds, int64(fi))
		results := map[string]Result{}
		for _, mm := range AllMethods(mcfg) {
			results[mm.Name()] = RunOne(mm, sub, seeds)
		}
		edges := FmtCount(sub.G.M())
		prep.AddRow(edges, results["BePI"].prepCell(), results["Bear"].prepCell(), results["LU"].prepCell())
		mem.AddRow(edges, results["BePI"].memCell(), results["Bear"].memCell(), results["LU"].memCell())
		query.AddRow(edges,
			results["BePI"].queryCell(), results["GMRES"].queryCell(),
			results["Power"].queryCell(), results["Bear"].queryCell(), results["LU"].queryCell())
		if r := results["BePI"]; r.Outcome == OK {
			xs = append(xs, float64(sub.G.M()))
			prepYs = append(prepYs, r.PrepTime.Seconds())
			memYs = append(memYs, float64(r.Memory))
			queryYs = append(queryYs, r.AvgQuery.Seconds())
		}
	}
	prep.Note = fmt.Sprintf("BePI log-log slope: %.2f (paper: 1.01)", loglogSlope(xs, prepYs))
	mem.Note = fmt.Sprintf("BePI log-log slope: %.2f (paper: 0.99)", loglogSlope(xs, memYs))
	query.Note = fmt.Sprintf("BePI log-log slope: %.2f (paper: 1.1)", loglogSlope(xs, queryYs))
	return []*Table{prep, mem, query}, nil
}

// loglogSlope fits y = a·x^s by least squares in log space and returns s.
func loglogSlope(xs, ys []float64) float64 {
	if len(xs) < 2 || len(xs) != len(ys) {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	fn := float64(n)
	return (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
}

// Fig6 reproduces the optimization ablation: BePI-B vs BePI-S vs BePI on
// preprocessing time, memory and query time.
func Fig6(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	mcfg := cfg.methodConfig()
	prep := &Table{
		Title:  "Figure 6(a): effect of optimizations on preprocessing time",
		Header: []string{"dataset", "BePI-B", "BePI-S", "BePI"},
	}
	mem := &Table{
		Title:  "Figure 6(b): effect on preprocessed memory",
		Header: []string{"dataset", "BePI-B", "BePI-S", "BePI"},
	}
	query := &Table{
		Title:  "Figure 6(c): effect on query time",
		Header: []string{"dataset", "BePI-B", "BePI-S", "BePI"},
	}
	for di, d := range Suite(cfg.Size) {
		seeds := QuerySeeds(d.G, cfg.Seeds, int64(di))
		cells := map[string]Result{}
		for _, m := range VariantMethods(mcfg) {
			cells[m.Name()] = RunOne(m, d, seeds)
		}
		prep.AddRow(d.Name, cells["BePI-B"].prepCell(), cells["BePI-S"].prepCell(), cells["BePI"].prepCell())
		mem.AddRow(d.Name, cells["BePI-B"].memCell(), cells["BePI-S"].memCell(), cells["BePI"].memCell())
		query.AddRow(d.Name, cells["BePI-B"].queryCell(), cells["BePI-S"].queryCell(), cells["BePI"].queryCell())
	}
	return []*Table{prep, mem, query}, nil
}

// Fig7 reproduces the spectrum experiment: Ritz values of the Schur
// complement with and without ILU preconditioning; preconditioning must
// shrink the dispersion and move the cluster to ≈1.
func Fig7(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Figure 7: eigenvalue clustering of the (preconditioned) Schur complement",
		Note:   "dispersion = RMS distance of Ritz values from their centroid",
		Header: []string{"dataset", "ritz m", "centroid(S)", "disp(S)", "centroid(M⁻¹S)", "disp(M⁻¹S)", "tightening"},
	}
	datasets := Suite(cfg.Size)
	if len(datasets) > 3 {
		datasets = datasets[:3]
	}
	for _, d := range datasets {
		e, err := core.Preprocess(d.G, core.Options{Variant: core.VariantFull, Tol: cfg.Tol, Parallelism: cfg.Parallelism})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		s := e.Schur()
		m := 200
		if cfg.Size == Tiny {
			m = 40
		}
		if m > s.Rows() {
			m = s.Rows()
		}
		plain := eig.RitzValues(s, nil, s.Rows(), m, 99)
		cond := eig.RitzValues(s, e.ILU(), s.Rows(), m, 99)
		cp, dp := eig.Dispersion(plain)
		cc, dc := eig.Dispersion(cond)
		t.AddRow(d.Name, fmt.Sprintf("%d", m),
			fmtComplex(cp), fmt.Sprintf("%.4f", dp),
			fmtComplex(cc), fmt.Sprintf("%.4f", dc),
			fmt.Sprintf("%.1fx", dp/math.Max(dc, 1e-12)))
	}
	return []*Table{t}, nil
}

func fmtComplex(c complex128) string {
	if math.Abs(imag(c)) < 1e-9 {
		return fmt.Sprintf("%.3f", real(c))
	}
	return fmt.Sprintf("%.3f%+.3fi", real(c), imag(c))
}

// Fig8 reproduces the hub-ratio sensitivity sweep on full BePI:
// preprocessing time, memory and query time as k varies.
func Fig8(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ks := []float64{0.1, 0.2, 0.3, 0.5, 0.7}
	maxDatasets := 4
	if cfg.Size == Tiny {
		ks = []float64{0.1, 0.3, 0.6}
		maxDatasets = 2
	}
	t := &Table{
		Title:  "Figure 8: effect of the hub selection ratio k on BePI",
		Note:   "preprocessing cost falls with k; query time is best near k≈0.2–0.3",
		Header: []string{"dataset", "k", "prep time", "memory", "query time", "iters"},
	}
	datasets := Suite(cfg.Size)
	if len(datasets) > maxDatasets {
		datasets = datasets[:maxDatasets]
	}
	mcfg := cfg.methodConfig()
	for di, d := range datasets {
		seeds := QuerySeeds(d.G, cfg.Seeds, int64(di))
		for _, k := range ks {
			m := method.NewBePI(mcfg)
			m.SetHubRatio(k)
			r := RunOne(m, d, seeds)
			if r.Outcome != OK {
				t.AddRow(d.Name, fmt.Sprintf("%.2f", k), string(r.Outcome), "-", "-", "-")
				continue
			}
			t.AddRow(d.Name, fmt.Sprintf("%.2f", k),
				FmtDuration(r.PrepTime), FmtBytes(r.Memory),
				FmtDuration(r.AvgQuery), fmt.Sprintf("%.1f", r.AvgIters))
		}
	}
	return []*Table{t}, nil
}

// Fig10 reproduces the Appendix-I accuracy experiment: L2 error against the
// exact dense solution after each iteration, for BePI, power iteration and
// full-system GMRES, on a small social-network stand-in (241 nodes, like
// the Physicians dataset).
func Fig10(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	g := gen.WattsStrogatz(241, 4, 0.1, 77)
	const seedCount = 10
	seeds := QuerySeeds(g, seedCount, 10)
	maxIter := 60

	sum := map[string][]float64{
		"BePI":  make([]float64, maxIter+1),
		"Power": make([]float64, maxIter+1),
		"GMRES": make([]float64, maxIter+1),
	}
	last := map[string][]float64{}
	for name := range sum {
		last[name] = make([]float64, seedCount)
	}
	record := func(name string, si, iter int, errNorm float64) {
		if iter <= maxIter {
			sum[name][iter] += errNorm
		}
		last[name][si] = errNorm
	}

	e, err := core.Preprocess(g, core.Options{Variant: core.VariantFull, Tol: cfg.Tol, Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	at := core.RowNormalizedAdjacencyT(g)
	h := core.BuildH(g, nil, core.DefaultC)
	maxSeen := 0
	for si, s := range seeds {
		exact, err := core.ExactDense(g, core.DefaultC, s)
		if err != nil {
			return nil, err
		}
		fill := func(name string, from int) {
			// Carry the converged error forward so curves stay comparable.
			for it := from + 1; it <= maxIter; it++ {
				sum[name][it] += last[name][si]
			}
		}
		var bepiLast int
		if _, _, err := e.QueryWithCallback(s, func(iter int, r []float64) {
			record("BePI", si, iter, vec.Dist2(r, exact))
			bepiLast = iter
		}); err != nil {
			return nil, err
		}
		fill("BePI", bepiLast)
		if bepiLast > maxSeen {
			maxSeen = bepiLast
		}

		q := make([]float64, g.N())
		q[s] = 1
		var pLast int
		if _, _, err := solver.PowerIteration(at, q, core.DefaultC, solver.PowerOptions{
			Tol: cfg.Tol, MaxIter: maxIter,
			Callback: func(iter int, r []float64) {
				record("Power", si, iter, vec.Dist2(r, exact))
				pLast = iter
			},
		}); err != nil && !errors.Is(err, solver.ErrNotConverged) {
			return nil, err
		}
		fill("Power", pLast)
		if pLast > maxSeen {
			maxSeen = pLast
		}

		cq := make([]float64, g.N())
		cq[s] = core.DefaultC
		var gLast int
		if _, _, err := solver.GMRES(h, cq, solver.GMRESOptions{
			Tol: cfg.Tol, MaxIter: maxIter,
			Callback: func(iter int, x []float64) {
				record("GMRES", si, iter, vec.Dist2(x, exact))
				gLast = iter
			},
		}); err != nil && !errors.Is(err, solver.ErrNotConverged) {
			return nil, err
		}
		fill("GMRES", gLast)
		if gLast > maxSeen {
			maxSeen = gLast
		}
	}
	if maxSeen > maxIter {
		maxSeen = maxIter
	}
	t := &Table{
		Title:  "Figure 10: L2 error vs iterations (241-node small-world graph)",
		Note:   fmt.Sprintf("mean over %d seeds; BePI iterations are Schur-system GMRES steps", seedCount),
		Header: []string{"iteration", "BePI", "Power", "GMRES"},
	}
	for it := 1; it <= maxSeen; it++ {
		t.AddRow(fmt.Sprintf("%d", it),
			fmt.Sprintf("%.3e", sum["BePI"][it]/seedCount),
			fmt.Sprintf("%.3e", sum["Power"][it]/seedCount),
			fmt.Sprintf("%.3e", sum["GMRES"][it]/seedCount))
	}
	return []*Table{t}, nil
}

// Fig11 reproduces the Appendix-J head-to-head against Bear on graphs small
// enough for Bear to finish.
func Fig11(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	mcfg := cfg.methodConfig()
	datasets := Suite(cfg.Size)
	if len(datasets) > 4 {
		datasets = datasets[:4]
	}
	t := &Table{
		Title:  "Figure 11: BePI vs Bear",
		Header: []string{"dataset", "prep BePI", "prep Bear", "mem BePI", "mem Bear", "query BePI", "query Bear"},
	}
	for di, d := range datasets {
		seeds := QuerySeeds(d.G, cfg.Seeds, int64(di))
		rb := RunOne(method.NewBePI(mcfg), d, seeds)
		rr := RunOne(method.NewBear(mcfg), d, seeds)
		t.AddRow(d.Name,
			rb.prepCell(), rr.prepCell(),
			rb.memCell(), rr.memCell(),
			rb.queryCell(), rr.queryCell())
	}
	return []*Table{t}, nil
}

// Fig12 reproduces the total-time comparison: preprocessing plus the full
// query workload for preprocessing methods, query workload only for
// iterative methods.
func Fig12(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	mcfg := cfg.methodConfig()
	t := &Table{
		Title:  "Figure 12: total running time",
		Note:   fmt.Sprintf("preprocessing + %d queries for preprocessing methods; %d queries for iterative ones", cfg.Seeds, cfg.Seeds),
		Header: []string{"dataset", "BePI", "GMRES", "Power", "Bear", "LU"},
	}
	for di, d := range Suite(cfg.Size) {
		seeds := QuerySeeds(d.G, cfg.Seeds, int64(di))
		row := []string{d.Name}
		for _, m := range AllMethods(mcfg) {
			r := RunOne(m, d, seeds)
			if r.Outcome != OK {
				row = append(row, string(r.Outcome))
				continue
			}
			total := r.AvgQuery * time.Duration(len(seeds))
			if m.IsPreprocessing() {
				total += r.PrepTime
			}
			row = append(row, FmtDuration(total))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}
