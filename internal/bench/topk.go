package bench

import (
	"fmt"
	"sort"
	"time"

	"bepi/internal/core"
	"bepi/internal/gen"
)

// topkScale maps the suite size to the skewed-RMAT scale the top-k
// experiment runs on (the full size is the scale-15 configuration the
// acceptance numbers quote).
func topkScale(s Size) int {
	switch s {
	case Full:
		return 15
	case Small:
		return 12
	default:
		return 9
	}
}

// topkQueries is the measured query count per k.
func topkQueries(s Size) int {
	switch s {
	case Full:
		return 100
	case Small:
		return 60
	default:
		return 30
	}
}

// topkVariants are the engine configurations the experiment contrasts:
// VariantFull is the production default, where the ILU-preconditioned
// solve converges in a handful of iterations and the early stop can only
// shave the tail of an already-short solve; VariantB keeps the fused
// (implicit) Schur operator but no preconditioner, so each iteration
// costs a full H12/H11⁻¹/H21 traversal and the solve runs 2-3x longer —
// the regime the k-dash-style certificate is built for; VariantS
// materializes a small sparsified S whose iterations are nearly free, so
// even large iteration savings barely move the total.
var topkVariants = []struct {
	name    string
	variant core.Variant
}{
	{"full+ILU", core.VariantFull},
	{"no-precond", core.VariantB},
	{"sparse-S", core.VariantS},
}

// medianRatio returns the median of the paired latency ratios (0 when
// empty). Sorts in place.
func medianRatio(rs []float64) float64 {
	if len(rs) == 0 {
		return 0
	}
	sort.Float64s(rs)
	return rs[len(rs)/2]
}

func fmtRatio(r float64) string {
	if r == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", r)
}

// TopK measures the bound-pruned exact top-k search against the
// full-tolerance baseline on a skewed RMAT graph: per engine variant and
// per k, the latency quantiles of Engine.TopK (full Schur solve, then
// rank) vs Engine.TopKBounded (solve halts on the k-th-gap certificate),
// the paired per-seed speedup, how often the certificate fired, the mean
// iterations it saved, and — the point of the exercise — that every
// bounded result named the exact same node set as the full solve.
func TopK(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	scale := topkScale(cfg.Size)
	g := gen.RMAT(gen.DefaultRMAT(scale, 8, 42))
	queries := topkQueries(cfg.Size)

	t := &Table{
		Title: fmt.Sprintf("Exact top-k early termination (skewed RMAT scale %d)", scale),
		Note: "full = solve to tolerance then rank; bounded = stop on the calibrated k-th-gap " +
			"certificate; sets verifies the bounded node set equals the full solve's for every " +
			"query. spd = median over seeds of that seed's full/bounded latency ratio (paired, " +
			"so the ~half of RMAT seeds with trivial 0-iteration solves can't mask the rest); " +
			"stop spd = the same median over early-stopped seeds only. Savings track solver " +
			"iterations: the ILU-preconditioned solve converges in a handful of iterations so " +
			"the stop shaves only its tail; the unpreconditioned fused-operator solve (BePI-B) " +
			"runs long enough for the certificate to pay; the sparsified-S solve iterates on a " +
			"small matrix whose iterations are nearly free.",
		Header: []string{"variant", "k", "full p50", "full p99", "bounded p50", "bounded p99",
			"spd", "stop spd", "early stop", "iters saved", "sets"},
	}
	for _, v := range topkVariants {
		e, err := core.Preprocess(g, core.Options{
			Variant: v.variant, Tol: cfg.Tol, HubRatio: 0.2,
			Parallelism: cfg.Parallelism, Compact: cfg.Compact,
			MemoryBudget: cfg.Budget.Memory, Deadline: cfg.Budget.Deadline,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: topk preprocess %s: %w", v.name, err)
		}
		// One calibration pass outside the timed region, like a server would.
		if err := e.CalibrateBound(); err != nil {
			return nil, fmt.Errorf("bench: topk calibration %s: %w", v.name, err)
		}
		n := e.N()
		for _, k := range []int{1, 10, 100} {
			fullLat := make([]time.Duration, 0, queries)
			boundLat := make([]time.Duration, 0, queries)
			ratios := make([]float64, 0, queries)
			stopRatios := make([]float64, 0, queries)
			early, savedSum, mismatches := 0, 0, 0
			for i := 0; i < queries; i++ {
				seed := (i * 131) % n

				// Both paths are timed as the min over a few repeats: at
				// these scales a query is a few hundred microseconds and
				// scheduler jitter would otherwise dominate the comparison.
				var want []core.Ranked
				var got []core.Ranked
				var stats core.TopKStats
				var err error
				fullBest, boundBest := time.Duration(0), time.Duration(0)
				for rep := 0; rep < 3; rep++ {
					start := time.Now()
					want, err = e.TopK(seed, k)
					if err != nil {
						return nil, fmt.Errorf("bench: topk full solve seed %d: %w", seed, err)
					}
					if d := time.Since(start); rep == 0 || d < fullBest {
						fullBest = d
					}

					start = time.Now()
					got, stats, err = e.TopKBounded(seed, k)
					if err != nil {
						return nil, fmt.Errorf("bench: topk bounded solve seed %d: %w", seed, err)
					}
					if d := time.Since(start); rep == 0 || d < boundBest {
						boundBest = d
					}
				}
				fullLat = append(fullLat, fullBest)
				boundLat = append(boundLat, boundBest)
				if boundBest > 0 {
					r := float64(fullBest) / float64(boundBest)
					ratios = append(ratios, r)
					if stats.EarlyStopped {
						stopRatios = append(stopRatios, r)
					}
				}

				if stats.EarlyStopped {
					early++
					savedSum += stats.SavedIters
				}
				set := make(map[int]bool, len(want))
				for _, r := range want {
					set[r.Node] = true
				}
				if len(got) != len(want) {
					mismatches++
				} else {
					for _, r := range got {
						if !set[r.Node] {
							mismatches++
							break
						}
					}
				}
			}
			fp50, bp50 := durQuantile(fullLat, 0.50), durQuantile(boundLat, 0.50)
			saved := "-"
			if early > 0 {
				saved = fmt.Sprintf("%.0f", float64(savedSum)/float64(early))
			}
			sets := "exact"
			if mismatches > 0 {
				sets = fmt.Sprintf("MISMATCH×%d", mismatches)
			}
			t.AddRow(v.name,
				fmt.Sprintf("%d", k),
				FmtDuration(fp50), FmtDuration(durQuantile(fullLat, 0.99)),
				FmtDuration(bp50), FmtDuration(durQuantile(boundLat, 0.99)),
				fmtRatio(medianRatio(ratios)), fmtRatio(medianRatio(stopRatios)),
				fmt.Sprintf("%.0f%%", 100*float64(early)/float64(queries)),
				saved,
				sets)
		}
	}
	return []*Table{t}, nil
}
