package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named stage of a query's life, as an offset from the trace
// start. The serving path emits: "cache" (lookup), "coalesce" (waiting on
// an identical in-flight solve), "admission" (bounded queue, enqueue to
// worker pickup), "batch" (batch assembly: pickup to solve start), "solve"
// (the multi-RHS engine call), and "rank" (top-k extraction).
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	// Tags annotate spans that fan out (replica, attempt, status, ...).
	Tags map[string]string `json:"tags,omitempty"`
}

// Trace is the completed record of one query through the execution
// subsystem. In a cluster, one distributed trace is a set of Trace records
// sharing a TraceID: the coordinator's root record (ParentID 0) plus one
// record per shard request, each parented on the coordinator span that
// issued it. GET /debug/traces on the coordinator joins them into a tree.
type Trace struct {
	ID   uint64    `json:"id"`
	Kind string    `json:"kind"` // "query" | "personalized"
	Seed int       `json:"seed"` // -1 for personalized queries
	Time time.Time `json:"time"` // trace start

	// TraceID names the distributed trace this record belongs to; SpanID
	// names this record within it; ParentID is the SpanID of the record
	// (possibly on another machine) that caused it, 0 for a root.
	TraceID  string `json:"trace_id,omitempty"`
	SpanID   uint64 `json:"span_id,omitempty"`
	ParentID uint64 `json:"parent_id,omitempty"`
	// Tags annotate the whole record (generation, replica, ...).
	Tags map[string]string `json:"tags,omitempty"`

	Total      time.Duration `json:"total_ns"`
	Cached     bool          `json:"cached,omitempty"`
	Coalesced  bool          `json:"coalesced,omitempty"`
	BatchSize  int           `json:"batch_size,omitempty"`
	Iterations int           `json:"iterations,omitempty"`
	Residual   float64       `json:"residual,omitempty"`
	Err        string        `json:"error,omitempty"`

	Spans []Span `json:"spans"`
}

// Tracer samples queries into ActiveTraces and keeps the most recent
// finished traces in a bounded ring buffer.
type Tracer struct {
	clock  Clock
	sample uint64
	n      atomic.Uint64 // Begin calls; doubles as the trace id source

	mu   sync.Mutex
	ring []Trace
	size int // traces stored (≤ len(ring))
	pos  int // next write index
}

// NewTracer builds a tracer with the given ring capacity, sampling one in
// every `sample` queries (≤ 1 means every query). clock nil means time.Now.
func NewTracer(capacity, sample int, clock Clock) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	if sample < 1 {
		sample = 1
	}
	return &Tracer{clock: clock, sample: uint64(sample), ring: make([]Trace, capacity)}
}

// Begin starts a trace for one query, or returns nil when the query is not
// sampled (every ActiveTrace method is nil-safe, so callers never branch).
// A nil tracer never samples.
func (t *Tracer) Begin(kind string, seed int) *ActiveTrace {
	if t == nil {
		return nil
	}
	n := t.n.Add(1)
	if (n-1)%t.sample != 0 {
		return nil
	}
	return t.begin(n, kind, seed, TraceContext{TraceID: NewTraceID()})
}

// BeginCtx starts a trace honoring a propagated trace context: when ctx
// carries a TraceContext (set by WithTrace from an X-Bepi-Trace header or a
// coordinator root span), the query is traced unconditionally — the
// sampling decision was already made at the root — and the record adopts
// the context's trace ID with the context's span as its parent. Without a
// context it behaves exactly like Begin.
func (t *Tracer) BeginCtx(ctx context.Context, kind string, seed int) *ActiveTrace {
	if t == nil {
		return nil
	}
	tc, ok := TraceFrom(ctx)
	if !ok {
		return t.Begin(kind, seed)
	}
	return t.begin(t.n.Add(1), kind, seed, tc)
}

func (t *Tracer) begin(n uint64, kind string, seed int, tc TraceContext) *ActiveTrace {
	start := t.clock.now()
	return &ActiveTrace{
		t:     t,
		start: start,
		tr: Trace{
			ID:       n,
			Kind:     kind,
			Seed:     seed,
			Time:     start,
			TraceID:  tc.TraceID,
			SpanID:   newSpanID(),
			ParentID: tc.SpanID,
			Spans:    make([]Span, 0, 8),
		},
	}
}

// Recent returns up to max finished traces, newest first. Pass max ≤ 0 for
// the whole ring.
func (t *Tracer) Recent(max int) []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.size
	if max > 0 && max < n {
		n = max
	}
	out := make([]Trace, n)
	for i := 0; i < n; i++ {
		// pos-1 is the newest entry.
		out[i] = t.ring[((t.pos-1-i)%len(t.ring)+len(t.ring))%len(t.ring)]
	}
	return out
}

// ByTraceID returns up to max finished records belonging to the given
// distributed trace, newest first. Pass max ≤ 0 for all matches in the
// ring.
func (t *Tracer) ByTraceID(id string, max int) []Trace {
	if t == nil || id == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Trace
	for i := 0; i < t.size; i++ {
		tr := t.ring[((t.pos-1-i)%len(t.ring)+len(t.ring))%len(t.ring)]
		if tr.TraceID != id {
			continue
		}
		out = append(out, tr)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Capacity returns the ring size (0 for a nil tracer) — the hard upper
// bound on what Recent and ByTraceID can return.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// ActiveTrace is a trace being recorded. A small mutex guards the record:
// the qexec path hands the trace between goroutines with happens-before
// edges, but the cluster coordinator appends attempt spans from concurrent
// scatter-gather goroutines, so mutation must be internally synchronized.
// All methods are no-ops on a nil receiver.
type ActiveTrace struct {
	t     *Tracer
	start time.Time
	mu    sync.Mutex
	tr    Trace
}

// Context returns the propagation context for requests this trace causes:
// child records adopt the trace ID and parent on this record's span.
func (a *ActiveTrace) Context() TraceContext {
	if a == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: a.tr.TraceID, SpanID: a.tr.SpanID}
}

// AddSpan records a stage that ran from `from` to `to` (tracer-clock
// timestamps).
func (a *ActiveTrace) AddSpan(name string, from, to time.Time) {
	a.AddSpanTags(name, from, to, nil)
}

// AddSpanTags records a stage with annotations (replica, attempt, ...).
func (a *ActiveTrace) AddSpanTags(name string, from, to time.Time, tags map[string]string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.tr.Spans = append(a.tr.Spans, Span{Name: name, Start: from.Sub(a.start), Dur: to.Sub(from), Tags: tags})
	a.mu.Unlock()
}

// SetTag annotates the whole record.
func (a *ActiveTrace) SetTag(key, value string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.tr.Tags == nil {
		a.tr.Tags = make(map[string]string, 4)
	}
	a.tr.Tags[key] = value
	a.mu.Unlock()
}

// SetCached marks the query as served from the score cache.
func (a *ActiveTrace) SetCached() {
	if a != nil {
		a.mu.Lock()
		a.tr.Cached = true
		a.mu.Unlock()
	}
}

// SetCoalesced marks the query as having ridden an in-flight solve.
func (a *ActiveTrace) SetCoalesced() {
	if a != nil {
		a.mu.Lock()
		a.tr.Coalesced = true
		a.mu.Unlock()
	}
}

// SetBatch records how many queries shared this query's engine solve.
func (a *ActiveTrace) SetBatch(k int) {
	if a != nil {
		a.mu.Lock()
		a.tr.BatchSize = k
		a.mu.Unlock()
	}
}

// SetSolve records the iterative solver's outcome for this query.
func (a *ActiveTrace) SetSolve(iterations int, residual float64) {
	if a != nil {
		a.mu.Lock()
		a.tr.Iterations = iterations
		a.tr.Residual = residual
		a.mu.Unlock()
	}
}

// SetErr records a failure.
func (a *ActiveTrace) SetErr(err error) {
	if a != nil && err != nil {
		a.mu.Lock()
		a.tr.Err = err.Error()
		a.mu.Unlock()
	}
}

// Spans exposes a copy of the spans recorded so far (for the slow-query
// log).
func (a *ActiveTrace) Spans() []Span {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Span, len(a.tr.Spans))
	copy(out, a.tr.Spans)
	return out
}

// TraceID exposes the distributed trace ID ("" when untraced or nil).
func (a *ActiveTrace) TraceID() string {
	if a == nil {
		return ""
	}
	return a.tr.TraceID
}

// Finish stamps the total duration and publishes the trace into the ring.
// Call it at most once, after every goroutine holding the trace is done
// with it.
func (a *ActiveTrace) Finish(end time.Time) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.tr.Total = end.Sub(a.start)
	tr := a.tr
	a.mu.Unlock()
	t := a.t
	t.mu.Lock()
	t.ring[t.pos] = tr
	t.pos = (t.pos + 1) % len(t.ring)
	if t.size < len(t.ring) {
		t.size++
	}
	t.mu.Unlock()
}
