package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named stage of a query's life, as an offset from the trace
// start. The serving path emits: "cache" (lookup), "coalesce" (waiting on
// an identical in-flight solve), "admission" (bounded queue, enqueue to
// worker pickup), "batch" (batch assembly: pickup to solve start), "solve"
// (the multi-RHS engine call), and "rank" (top-k extraction).
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Trace is the completed record of one query through the execution
// subsystem.
type Trace struct {
	ID   uint64    `json:"id"`
	Kind string    `json:"kind"` // "query" | "personalized"
	Seed int       `json:"seed"` // -1 for personalized queries
	Time time.Time `json:"time"` // trace start

	Total      time.Duration `json:"total_ns"`
	Cached     bool          `json:"cached,omitempty"`
	Coalesced  bool          `json:"coalesced,omitempty"`
	BatchSize  int           `json:"batch_size,omitempty"`
	Iterations int           `json:"iterations,omitempty"`
	Residual   float64       `json:"residual,omitempty"`
	Err        string        `json:"error,omitempty"`

	Spans []Span `json:"spans"`
}

// Tracer samples queries into ActiveTraces and keeps the most recent
// finished traces in a bounded ring buffer.
type Tracer struct {
	clock  Clock
	sample uint64
	n      atomic.Uint64 // Begin calls; doubles as the trace id source

	mu   sync.Mutex
	ring []Trace
	size int // traces stored (≤ len(ring))
	pos  int // next write index
}

// NewTracer builds a tracer with the given ring capacity, sampling one in
// every `sample` queries (≤ 1 means every query). clock nil means time.Now.
func NewTracer(capacity, sample int, clock Clock) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	if sample < 1 {
		sample = 1
	}
	return &Tracer{clock: clock, sample: uint64(sample), ring: make([]Trace, capacity)}
}

// Begin starts a trace for one query, or returns nil when the query is not
// sampled (every ActiveTrace method is nil-safe, so callers never branch).
// A nil tracer never samples.
func (t *Tracer) Begin(kind string, seed int) *ActiveTrace {
	if t == nil {
		return nil
	}
	n := t.n.Add(1)
	if (n-1)%t.sample != 0 {
		return nil
	}
	start := t.clock.now()
	return &ActiveTrace{
		t:     t,
		start: start,
		tr: Trace{
			ID:    n,
			Kind:  kind,
			Seed:  seed,
			Time:  start,
			Spans: make([]Span, 0, 8),
		},
	}
}

// Recent returns up to max finished traces, newest first. Pass max ≤ 0 for
// the whole ring.
func (t *Tracer) Recent(max int) []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.size
	if max > 0 && max < n {
		n = max
	}
	out := make([]Trace, n)
	for i := 0; i < n; i++ {
		// pos-1 is the newest entry.
		out[i] = t.ring[((t.pos-1-i)%len(t.ring)+len(t.ring))%len(t.ring)]
	}
	return out
}

// ActiveTrace is a trace being recorded. It is not internally synchronized:
// the serving path hands it from the requester goroutine to the worker and
// back with channel happens-before edges, which is exactly the ordering its
// appends need. All methods are no-ops on a nil receiver.
type ActiveTrace struct {
	t     *Tracer
	start time.Time
	tr    Trace
}

// AddSpan records a stage that ran from `from` to `to` (tracer-clock
// timestamps).
func (a *ActiveTrace) AddSpan(name string, from, to time.Time) {
	if a == nil {
		return
	}
	a.tr.Spans = append(a.tr.Spans, Span{Name: name, Start: from.Sub(a.start), Dur: to.Sub(from)})
}

// SetCached marks the query as served from the score cache.
func (a *ActiveTrace) SetCached() {
	if a != nil {
		a.tr.Cached = true
	}
}

// SetCoalesced marks the query as having ridden an in-flight solve.
func (a *ActiveTrace) SetCoalesced() {
	if a != nil {
		a.tr.Coalesced = true
	}
}

// SetBatch records how many queries shared this query's engine solve.
func (a *ActiveTrace) SetBatch(k int) {
	if a != nil {
		a.tr.BatchSize = k
	}
}

// SetSolve records the iterative solver's outcome for this query.
func (a *ActiveTrace) SetSolve(iterations int, residual float64) {
	if a != nil {
		a.tr.Iterations = iterations
		a.tr.Residual = residual
	}
}

// SetErr records a failure.
func (a *ActiveTrace) SetErr(err error) {
	if a != nil && err != nil {
		a.tr.Err = err.Error()
	}
}

// Spans exposes the spans recorded so far (for the slow-query log).
func (a *ActiveTrace) Spans() []Span {
	if a == nil {
		return nil
	}
	return a.tr.Spans
}

// Finish stamps the total duration and publishes the trace into the ring.
// Call it at most once, after every goroutine holding the trace is done
// with it.
func (a *ActiveTrace) Finish(end time.Time) {
	if a == nil {
		return
	}
	a.tr.Total = end.Sub(a.start)
	t := a.t
	t.mu.Lock()
	t.ring[t.pos] = a.tr
	t.pos = (t.pos + 1) % len(t.ring)
	if t.size < len(t.ring) {
		t.size++
	}
	t.mu.Unlock()
}
