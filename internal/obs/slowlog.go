package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// SlowLog emits a structured log record for every query slower than its
// threshold. It exists so that the one query in ten thousand that missed
// its latency budget leaves evidence — which stage ate the time, how many
// solver iterations it took, whether it fought the cache — without anyone
// having had a profiler attached.
type SlowLog struct {
	log       *slog.Logger
	threshold time.Duration
	count     atomic.Int64
}

// NewSlowLog builds a slow-query log at the given threshold. logger nil
// means slog.Default().
func NewSlowLog(logger *slog.Logger, threshold time.Duration) *SlowLog {
	if logger == nil {
		logger = slog.Default()
	}
	return &SlowLog{log: logger, threshold: threshold}
}

// Threshold returns the configured threshold (0 for a nil log).
func (s *SlowLog) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.threshold
}

// Slow reports whether d crosses the threshold; false on a nil log, so the
// caller only assembles the record's attributes for queries that will
// actually be logged.
func (s *SlowLog) Slow(d time.Duration) bool {
	return s != nil && d >= s.threshold
}

// Count reports how many slow queries have been logged.
func (s *SlowLog) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// Log writes one slow-query record. traceID correlates the line with
// /debug/traces and /debug/events ("" when the query was untraced); spans
// may be nil (e.g. when the query was not sampled by the tracer), otherwise
// the per-stage breakdown is emitted inline so the one line is actionable
// without a second lookup.
func (s *SlowLog) Log(kind string, seed int, traceID string, total time.Duration,
	cached, coalesced bool, iterations int, residual float64, err error, spans []Span) {
	if s == nil {
		return
	}
	s.count.Add(1)
	attrs := []slog.Attr{
		slog.String("kind", kind),
		slog.Int("seed", seed),
		slog.Duration("total", total),
		slog.Duration("threshold", s.threshold),
		slog.Bool("cached", cached),
		slog.Bool("coalesced", coalesced),
		slog.Int("iterations", iterations),
		slog.Float64("residual", residual),
	}
	if traceID != "" {
		attrs = append(attrs, slog.String("trace_id", traceID))
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	if len(spans) > 0 {
		stage := make([]any, 0, len(spans))
		for _, sp := range spans {
			stage = append(stage, slog.Duration(sp.Name, sp.Dur))
		}
		attrs = append(attrs, slog.Group("stages", stage...))
	}
	s.log.LogAttrs(context.Background(), slog.LevelWarn, "slow query", attrs...)
}
