package obs

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a deterministic clock advancing a fixed step per reading.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func TestTraceSpansDeterministicClock(t *testing.T) {
	base := time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)
	clk := &fakeClock{t: base, step: time.Millisecond}
	tr := NewTracer(4, 1, clk.now)

	at := tr.Begin("query", 7) // reads the clock once: start = base+1ms
	if at == nil {
		t.Fatal("sample=1 must trace every query")
	}
	t0 := clk.now() // base+2ms
	t1 := clk.now() // base+3ms
	at.AddSpan("cache", t0, t1)
	t2 := clk.now() // base+4ms
	at.AddSpan("solve", t1, t2)
	at.SetBatch(3)
	at.SetSolve(21, 1e-10)
	at.SetErr(errors.New("boom"))
	at.Finish(clk.now()) // base+5ms

	got := tr.Recent(0)
	if len(got) != 1 {
		t.Fatalf("recent: %d traces", len(got))
	}
	g := got[0]
	if g.Kind != "query" || g.Seed != 7 || g.ID != 1 {
		t.Fatalf("identity wrong: %+v", g)
	}
	if g.Total != 4*time.Millisecond {
		t.Fatalf("total %v want 4ms", g.Total)
	}
	want := []Span{
		{Name: "cache", Start: time.Millisecond, Dur: time.Millisecond},
		{Name: "solve", Start: 2 * time.Millisecond, Dur: time.Millisecond},
	}
	if len(g.Spans) != len(want) {
		t.Fatalf("spans %v", g.Spans)
	}
	for i, w := range want {
		sp := g.Spans[i]
		if sp.Name != w.Name || sp.Start != w.Start || sp.Dur != w.Dur {
			t.Errorf("span %d: got %+v want %+v", i, sp, w)
		}
	}
	if g.BatchSize != 3 || g.Iterations != 21 || g.Residual != 1e-10 || g.Err != "boom" {
		t.Fatalf("fields wrong: %+v", g)
	}
	if !g.Time.Equal(base.Add(time.Millisecond)) {
		t.Fatalf("start time %v", g.Time)
	}
}

func TestTracerRingWrapsNewestFirst(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Microsecond}
	tr := NewTracer(3, 1, clk.now)
	for i := 0; i < 5; i++ {
		at := tr.Begin("query", i)
		at.Finish(clk.now())
	}
	got := tr.Recent(0)
	if len(got) != 3 {
		t.Fatalf("ring holds %d", len(got))
	}
	for i, wantSeed := range []int{4, 3, 2} {
		if got[i].Seed != wantSeed {
			t.Errorf("recent[%d].Seed = %d want %d", i, got[i].Seed, wantSeed)
		}
	}
	if got2 := tr.Recent(2); len(got2) != 2 || got2[0].Seed != 4 {
		t.Fatalf("limited recent wrong: %v", got2)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(8, 3, nil)
	var sampled int
	for i := 0; i < 9; i++ {
		if at := tr.Begin("query", i); at != nil {
			sampled++
			at.Finish(time.Now())
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 at rate 3", sampled)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Tracer
	at := tr.Begin("query", 0)
	if at != nil {
		t.Fatal("nil tracer must not sample")
	}
	// Every ActiveTrace method must be a no-op on nil.
	at.AddSpan("x", time.Now(), time.Now())
	at.SetCached()
	at.SetCoalesced()
	at.SetBatch(1)
	at.SetSolve(1, 0)
	at.SetErr(errors.New("x"))
	at.Finish(time.Now())
	if at.Spans() != nil {
		t.Fatal("nil spans")
	}
	if tr.Recent(10) != nil {
		t.Fatal("nil tracer recent")
	}
}
