package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free fixed-bucket histogram. Bucket i counts values
// v ≤ Bounds[i] (the first bound that fits); one extra bucket catches the
// overflow (+Inf). Record is a binary search plus two atomic updates, cheap
// enough for the per-query hot path; Snapshot reads the buckets without
// stopping writers, so a snapshot taken under concurrent recording is a
// consistent-enough point-in-time view (each bucket is atomically read, the
// set of buckets is not read as one atomic unit).
type Histogram struct {
	name   string
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last = overflow
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// The name is used by the Prometheus exporter's HELP text and the bench
// tables.
func NewHistogram(name string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		name:   name,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. It is safe for concurrent use and a no-op on a
// nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Name returns the label the histogram was built with.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// HistSnapshot is a point-in-time copy of a histogram's state. It is the
// histogram's mergeable exported form: because every process builds a given
// metric over identical bounds, snapshots travel as JSON (shards serve them
// at /metrics/snapshot) and fleet-wide quantiles come from Merge-ing the
// per-shard snapshots — histogram merging is exact (bucket counts add),
// unlike quantile merging.
type HistSnapshot struct {
	Name   string    `json:"name,omitempty"`
	Bounds []float64 `json:"bounds"` // bucket upper bounds; one implicit +Inf bucket follows
	Counts []uint64  `json:"counts"` // per-bucket counts, len(Bounds)+1
	Count  uint64    `json:"count"`  // total observations (sum of Counts)
	Sum    float64   `json:"sum"`    // sum of observed values
}

// Merge returns the snapshot of the union of the two observation streams.
// Both snapshots must have identical bounds (the standard bucket layouts in
// this package guarantee that for same-named metrics); merging with a zero
// snapshot returns the other operand. An error is returned on a bounds
// mismatch rather than silently misbinning.
func (s HistSnapshot) Merge(o HistSnapshot) (HistSnapshot, error) {
	if s.Count == 0 && len(s.Bounds) == 0 {
		return o, nil
	}
	if o.Count == 0 && len(o.Bounds) == 0 {
		return s, nil
	}
	if len(s.Bounds) != len(o.Bounds) {
		return HistSnapshot{}, fmt.Errorf("obs: merge %q: %d bounds vs %d", s.Name, len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return HistSnapshot{}, fmt.Errorf("obs: merge %q: bound[%d] %g vs %g", s.Name, i, s.Bounds[i], o.Bounds[i])
		}
	}
	m := HistSnapshot{
		Name:   s.Name,
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	copy(m.Counts, s.Counts)
	for i := range o.Counts {
		if i < len(m.Counts) {
			m.Counts[i] += o.Counts[i]
		}
	}
	return m, nil
}

// Snapshot copies the histogram's current state. Safe under concurrent
// Observe calls; returns a zero snapshot for a nil histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Name:   h.name,
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding the target rank. Values in the overflow bucket
// report the largest finite bound; an empty histogram reports 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(s.Counts)-1 {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns Sum/Count, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// LogBuckets returns upper bounds log-spaced from lo up to at least hi with
// `per` buckets per decade. lo and hi must be positive, per ≥ 1.
func LogBuckets(lo, hi float64, per int) []float64 {
	if lo <= 0 || hi <= lo || per < 1 {
		panic("obs: LogBuckets needs 0 < lo < hi and per ≥ 1")
	}
	ratio := math.Pow(10, 1/float64(per))
	var b []float64
	for v := lo; ; v *= ratio {
		b = append(b, v)
		if v >= hi {
			return b
		}
	}
}

// LatencyBuckets spans 1µs to 60s in seconds, five buckets per decade —
// wide enough for a cache hit and a cold billion-edge solve alike.
func LatencyBuckets() []float64 { return LogBuckets(1e-6, 60, 5) }

// IterationBuckets covers iterative-solver iteration counts: the paper's
// experiments sit at 4-70 GMRES iterations, MaxIter defaults to 1000.
func IterationBuckets() []float64 {
	return []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024}
}

// ResidualBuckets covers final relative residuals from the default
// tolerance (1e-9) regime up to non-convergence.
func ResidualBuckets() []float64 { return LogBuckets(1e-13, 1, 2) }
