package obs

import (
	"sync/atomic"
	"time"
)

// Event is one entry in the flight recorder: a structured, timestamped
// operational occurrence (shard ejected, retry, engine swap, admission
// rejection, ...) with an optional trace-ID correlation so /debug/events
// and /debug/traces join on the same key.
type Event struct {
	Seq     uint64            `json:"seq"`
	Time    time.Time         `json:"time"`
	Kind    string            `json:"kind"`
	TraceID string            `json:"trace_id,omitempty"`
	Fields  map[string]string `json:"fields,omitempty"`
}

// EventLog is an always-on bounded flight recorder. Record is lock-free —
// one atomic counter bump plus one atomic pointer store into a power-of-two
// ring — so it is safe to call from retry loops, health checks, and the
// admission fast path without a mutex ever appearing on a serving path.
// Readers snapshot pointers without stopping writers; an entry being
// overwritten concurrently is simply skipped or read in its old, fully
// consistent form (pointers are published whole).
type EventLog struct {
	clock Clock
	seq   atomic.Uint64
	ring  []atomic.Pointer[Event]
	mask  uint64
}

// DefaultEventCapacity is the flight-recorder ring size used by New: large
// enough to hold the interesting prefix of an incident (events are rare —
// per-anomaly, not per-query), small enough to serialize in one response.
const DefaultEventCapacity = 1024

// NewEventLog builds a recorder holding the last `capacity` events
// (rounded up to a power of two; ≤ 0 selects DefaultEventCapacity). clock
// nil means time.Now.
func NewEventLog(capacity int, clock Clock) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &EventLog{clock: clock, ring: make([]atomic.Pointer[Event], n), mask: uint64(n - 1)}
}

// Record appends one event. traceID may be "" (no correlation); fields may
// be nil. Nil-safe, so a disabled observer costs one branch.
func (l *EventLog) Record(kind, traceID string, fields map[string]string) {
	if l == nil {
		return
	}
	seq := l.seq.Add(1)
	ev := &Event{Seq: seq, Time: l.clock.now(), Kind: kind, TraceID: traceID, Fields: fields}
	l.ring[(seq-1)&l.mask].Store(ev)
}

// Count reports how many events were ever recorded (recorded, not
// retained — the ring holds the most recent Capacity of them).
func (l *EventLog) Count() uint64 {
	if l == nil {
		return 0
	}
	return l.seq.Load()
}

// Capacity returns the ring size (0 for a nil log).
func (l *EventLog) Capacity() int {
	if l == nil {
		return 0
	}
	return len(l.ring)
}

// Recent returns up to max events, newest first. Pass max ≤ 0 for the whole
// ring. Taken under concurrent Record calls the result is a consistent
// point-in-time sample: each returned event is whole, ordering is by
// sequence number, and entries that were overwritten mid-scan are dropped
// rather than duplicated.
func (l *EventLog) Recent(max int) []Event {
	if l == nil {
		return nil
	}
	head := l.seq.Load()
	n := uint64(len(l.ring))
	if head < n {
		n = head
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]Event, 0, n)
	lastSeq := head + 1
	for i := uint64(0); i < uint64(len(l.ring)) && uint64(len(out)) < n; i++ {
		seq := head - i
		if seq == 0 {
			break
		}
		ev := l.ring[(seq-1)&l.mask].Load()
		// A slot may hold a newer event than the one we targeted if a
		// writer lapped us; keep the scan monotone by sequence instead of
		// emitting out-of-order duplicates.
		if ev == nil || ev.Seq >= lastSeq {
			continue
		}
		out = append(out, *ev)
		lastSeq = ev.Seq
	}
	return out
}
