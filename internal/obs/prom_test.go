package obs

import (
	"math"
	"strings"
	"testing"
)

func TestPromWriterFamilies(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("requests_total", "Total requests.", 42)
	p.Gauge("up", "Whether up.", 1)
	p.GaugeVec("stage_seconds", "Stage times.", "stage", map[string]float64{
		"reorder": 0.5, "build": 1.25,
	})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Total requests.\n",
		"# TYPE requests_total counter\n",
		"requests_total 42\n",
		"# TYPE up gauge\n",
		"up 1\n",
		`stage_seconds{stage="build"} 1.25` + "\n",
		`stage_seconds{stage="reorder"} 0.5` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Labeled samples must be sorted (build before reorder).
	if strings.Index(out, `stage="build"`) > strings.Index(out, `stage="reorder"`) {
		t.Error("labeled samples not sorted")
	}
}

func TestPromWriterHistogram(t *testing.T) {
	h := NewHistogram("lat", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(2)
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Histogram("lat_seconds", "Latency.", h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1` + "\n",
		`lat_seconds_bucket{le="1"} 3` + "\n",
		`lat_seconds_bucket{le="+Inf"} 4` + "\n",
		"lat_seconds_sum 3.05\n",
		"lat_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPromWriterCounterHist(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.CounterHist("batch_size", "Batch sizes.", []int{1, 2}, []int64{5, 3, 2}, math.NaN())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`batch_size_bucket{le="1"} 5`,
		`batch_size_bucket{le="2"} 8`,
		`batch_size_bucket{le="+Inf"} 10`,
		"batch_size_count 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "batch_size_sum") {
		t.Error("NaN sum must be omitted")
	}
}

func TestPromWriterRejectsDuplicatesAndBadNames(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("x_total", "X.", 1)
	p.Counter("x_total", "X again.", 2)
	if p.Err() == nil {
		t.Fatal("duplicate family not rejected")
	}
	p2 := NewPromWriter(&strings.Builder{})
	p2.Gauge("1bad", "Bad.", 0)
	if p2.Err() == nil {
		t.Fatal("invalid name not rejected")
	}
	p3 := NewPromWriter(&strings.Builder{})
	p3.Gauge("bad name", "Bad.", 0)
	if p3.Err() == nil {
		t.Fatal("space in name not rejected")
	}
}

func TestWriteGoStats(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	WriteGoStats(p)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"go_goroutines", "go_mem_heap_alloc_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %s", want)
		}
	}
}
