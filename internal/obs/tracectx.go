package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync/atomic"
)

// TraceHeader is the HTTP header that carries a trace context across
// process boundaries: the cluster coordinator sets it on every fan-out
// request it traces, and a shard that receives it records its own spans
// under the same trace ID so the coordinator can reassemble the tree.
const TraceHeader = "X-Bepi-Trace"

// TraceContext identifies a position in a distributed trace: the trace the
// request belongs to and the span that caused this request (the parent of
// whatever span the receiver opens). The zero value means "not traced".
type TraceContext struct {
	TraceID string // hex, process-unique prefix + counter; "" = not traced
	SpanID  uint64 // parent span on the sending side; 0 = root
}

// Valid reports whether the context identifies a trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" }

// HeaderValue encodes the context for the X-Bepi-Trace header as
// "<traceID>-<parent span hex>".
func (tc TraceContext) HeaderValue() string {
	return fmt.Sprintf("%s-%016x", tc.TraceID, tc.SpanID)
}

// ParseTraceHeader decodes an X-Bepi-Trace header value. It accepts the
// full "<traceID>-<span>" form and a bare trace ID (parent 0); ok is false
// for an empty or malformed value.
func ParseTraceHeader(v string) (tc TraceContext, ok bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return TraceContext{}, false
	}
	id, span := v, ""
	if i := strings.LastIndexByte(v, '-'); i > 0 {
		id, span = v[:i], v[i+1:]
	}
	if !isHex(id) {
		return TraceContext{}, false
	}
	tc.TraceID = id
	if span != "" {
		if _, err := fmt.Sscanf(span, "%x", &tc.SpanID); err != nil {
			return TraceContext{}, false
		}
	}
	return tc, true
}

func isHex(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

type traceCtxKey struct{}

// WithTrace returns a context carrying tc. A request whose context carries
// a valid TraceContext is always traced (sampling is bypassed), so the
// sampling decision made at the tree's root governs the whole tree.
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom extracts the TraceContext from ctx, if any.
func TraceFrom(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// Trace and span IDs: a per-process random prefix keeps IDs from different
// machines distinct, an atomic counter keeps them distinct within the
// process, and a splitmix64 finalizer spreads span IDs so collisions within
// a trace are vanishingly unlikely.
var (
	idPrefix = rand.Uint64()
	idSeq    atomic.Uint64
)

// NewTraceID mints a fresh trace ID (16 hex digits).
func NewTraceID() string {
	return fmt.Sprintf("%016x", splitmix64(idPrefix+idSeq.Add(1)))
}

// newSpanID mints a span ID unique within the process.
func newSpanID() uint64 {
	// Offset the stream so span IDs never collide with trace IDs minted
	// from the same counter.
	return splitmix64((idPrefix ^ 0x9e3779b97f4a7c15) + idSeq.Add(1))
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
