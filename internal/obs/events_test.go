package obs

import (
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestEventLogRecordRecent(t *testing.T) {
	clk := &fakeClock{t: time.Unix(100, 0), step: time.Second}
	l := NewEventLog(8, clk.now)
	l.Record("shard_ejected", "", map[string]string{"shard": "a"})
	l.Record("retry", "deadbeef00000001", map[string]string{"attempt": "2"})

	if l.Count() != 2 {
		t.Fatalf("count %d", l.Count())
	}
	got := l.Recent(0)
	if len(got) != 2 {
		t.Fatalf("recent: %d events", len(got))
	}
	if got[0].Kind != "retry" || got[0].TraceID != "deadbeef00000001" || got[0].Fields["attempt"] != "2" {
		t.Fatalf("newest wrong: %+v", got[0])
	}
	if got[1].Kind != "shard_ejected" || got[1].Seq != 1 {
		t.Fatalf("oldest wrong: %+v", got[1])
	}
	if got[0].Seq <= got[1].Seq {
		t.Fatalf("order not newest-first: %d then %d", got[0].Seq, got[1].Seq)
	}
	if got2 := l.Recent(1); len(got2) != 1 || got2[0].Kind != "retry" {
		t.Fatalf("limited recent wrong: %+v", got2)
	}
}

func TestEventLogWrapKeepsNewest(t *testing.T) {
	l := NewEventLog(4, nil)
	for i := 1; i <= 10; i++ {
		l.Record("e", "", map[string]string{"i": strconv.Itoa(i)})
	}
	got := l.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d", len(got))
	}
	for i, want := range []uint64{10, 9, 8, 7} {
		if got[i].Seq != want {
			t.Fatalf("recent[%d].Seq = %d want %d", i, got[i].Seq, want)
		}
	}
}

func TestEventLogCapacityRoundsUp(t *testing.T) {
	if c := NewEventLog(5, nil).Capacity(); c != 8 {
		t.Fatalf("capacity %d want 8", c)
	}
	if c := NewEventLog(0, nil).Capacity(); c != DefaultEventCapacity {
		t.Fatalf("default capacity %d want %d", c, DefaultEventCapacity)
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Record("x", "", nil)
	if l.Recent(10) != nil || l.Count() != 0 || l.Capacity() != 0 {
		t.Fatal("nil EventLog must be inert")
	}
}

// TestEventLogConcurrentRecordRecent hammers Record from many goroutines
// while readers call Recent — the lock-free ring's race regression (run
// under -race by the race-par make target). Recent under concurrent lapping
// must stay monotone by sequence and never return a torn event.
func TestEventLogConcurrentRecordRecent(t *testing.T) {
	l := NewEventLog(64, nil)
	const writers = 8
	const perWriter = 500
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := l.Recent(0)
				for i := 1; i < len(got); i++ {
					if got[i-1].Seq <= got[i].Seq {
						t.Errorf("not monotone: seq %d then %d", got[i-1].Seq, got[i].Seq)
						return
					}
				}
				for _, e := range got {
					if e.Kind == "" || e.Fields["w"] == "" {
						t.Errorf("torn event: %+v", e)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Record("concurrent", "", map[string]string{"w": strconv.Itoa(w)})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := l.Count(); got != writers*perWriter {
		t.Fatalf("count %d want %d", got, writers*perWriter)
	}
	if got := l.Recent(0); len(got) != l.Capacity() {
		t.Fatalf("full ring returns %d want %d", len(got), l.Capacity())
	}
}
