package obs

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestHistogramMergePropertyConcat is the merge correctness property: for
// observation streams recorded on separate histograms with identical
// bounds, the merged snapshot must be indistinguishable from a single
// histogram that saw the concatenated stream — identical bucket counts,
// hence identical quantiles at every q (merging is exact, not approximate).
func TestHistogramMergePropertyConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bounds := LatencyBuckets()
	shards := []*Histogram{
		NewHistogram("s0", bounds),
		NewHistogram("s1", bounds),
		NewHistogram("s2", bounds),
	}
	all := NewHistogram("all", bounds)

	const n = 5000
	var sum float64
	for i := 0; i < n; i++ {
		// Log-uniform over the bucket range plus a few overflow values.
		v := math.Pow(10, -6+7.2*rng.Float64())
		shards[i%len(shards)].Observe(v)
		all.Observe(v)
		sum += v
	}

	merged := HistSnapshot{}
	for _, h := range shards {
		var err error
		merged, err = merged.Merge(h.Snapshot())
		if err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}
	want := all.Snapshot()
	if merged.Count != want.Count || merged.Count != n {
		t.Fatalf("merged count %d want %d", merged.Count, want.Count)
	}
	for i := range want.Counts {
		if merged.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: merged %d want %d", i, merged.Counts[i], want.Counts[i])
		}
	}
	// Sums accumulate in different orders; equality is up to rounding.
	if d := math.Abs(merged.Sum-sum) / sum; d > 1e-9 {
		t.Fatalf("merged sum %g want %g (rel err %g)", merged.Sum, sum, d)
	}
	for q := 0.01; q < 1; q += 0.07 {
		if got, want := merged.Quantile(q), want.Quantile(q); got != want {
			t.Fatalf("q=%.2f: merged %g concat %g", q, got, want)
		}
	}
}

func TestHistogramMergeZeroIdentity(t *testing.T) {
	h := NewHistogram("h", IterationBuckets())
	h.Observe(5)
	s := h.Snapshot()
	if m, err := (HistSnapshot{}).Merge(s); err != nil || m.Count != 1 {
		t.Fatalf("zero.Merge(s) = %+v, %v", m, err)
	}
	if m, err := s.Merge(HistSnapshot{}); err != nil || m.Count != 1 {
		t.Fatalf("s.Merge(zero) = %+v, %v", m, err)
	}
}

func TestHistogramMergeBoundsMismatch(t *testing.T) {
	a := NewHistogram("a", []float64{1, 2, 3})
	b := NewHistogram("b", []float64{1, 2, 4})
	c := NewHistogram("c", []float64{1, 2})
	a.Observe(1)
	b.Observe(1)
	c.Observe(1)
	if _, err := a.Snapshot().Merge(b.Snapshot()); err == nil {
		t.Fatal("differing bound values must refuse to merge")
	}
	if _, err := a.Snapshot().Merge(c.Snapshot()); err == nil {
		t.Fatal("differing bound counts must refuse to merge")
	}
}

func TestMergeMetricsSnapshots(t *testing.T) {
	mk := func(replica string, bounds []float64, vals ...float64) MetricsSnapshot {
		h := NewHistogram(FamilyQueryLatency, bounds)
		for _, v := range vals {
			h.Observe(v)
		}
		return MetricsSnapshot{
			Replica:    replica,
			TakenAt:    time.Unix(int64(len(vals)), 0),
			Histograms: map[string]HistSnapshot{FamilyQueryLatency: h.Snapshot()},
			Counters:   map[string]int64{"queries": int64(len(vals))},
		}
	}
	a := mk("a", LatencyBuckets(), 0.001, 0.002)
	b := mk("b", LatencyBuckets(), 0.004)
	merged, mismatched := MergeMetricsSnapshots([]MetricsSnapshot{a, b})
	if len(mismatched) != 0 {
		t.Fatalf("mismatched: %v", mismatched)
	}
	if got := merged.Histograms[FamilyQueryLatency].Count; got != 3 {
		t.Fatalf("merged family count %d want 3", got)
	}
	if merged.Counters["queries"] != 3 {
		t.Fatalf("merged counter %d want 3", merged.Counters["queries"])
	}
	if !merged.TakenAt.Equal(time.Unix(2, 0)) {
		t.Fatalf("TakenAt %v want the newest", merged.TakenAt)
	}

	// A shard with different bounds poisons only that family, reported.
	c := mk("c", []float64{1, 2, 3}, 1)
	merged, mismatched = MergeMetricsSnapshots([]MetricsSnapshot{a, b, c})
	if len(mismatched) != 1 || mismatched[0] != FamilyQueryLatency {
		t.Fatalf("mismatched: %v", mismatched)
	}
	if _, ok := merged.Histograms[FamilyQueryLatency]; ok {
		t.Fatal("mismatched family must be dropped, not misbinned")
	}
	if merged.Counters["queries"] != 4 {
		t.Fatalf("counters must still merge: %d", merged.Counters["queries"])
	}
}

func TestHistogramSnapshotsFamilies(t *testing.T) {
	o := New(Options{})
	o.QueryLatency.Observe(0.001)
	o.Rebuild.Observe(1.5)
	snaps := o.HistogramSnapshots()
	if len(snaps) != 9 {
		t.Fatalf("families: %d want 9", len(snaps))
	}
	if snaps[FamilyQueryLatency].Count != 1 || snaps[FamilyRebuild].Count != 1 {
		t.Fatalf("family counts wrong: %+v", snaps)
	}
	var disabled *Observer
	if got := disabled.HistogramSnapshots(); len(got) != 0 {
		t.Fatalf("nil observer families: %d", len(got))
	}
}
