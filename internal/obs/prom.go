package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// PromWriter emits the Prometheus text exposition format (version 0.0.4).
// It tracks family names and rejects duplicates, so an exposition
// assembled from several subsystems cannot silently emit a family twice —
// the failure mode Prometheus itself rejects at scrape time.
type PromWriter struct {
	w    io.Writer
	seen map[string]bool
	err  error
}

// NewPromWriter wraps w. Check Err after writing every family.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

// Err returns the first error encountered (I/O, invalid name, or duplicate
// family).
func (p *PromWriter) Err() error { return p.err }

// validName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (p *PromWriter) family(name, typ, help string) bool {
	if p.err != nil {
		return false
	}
	if !validName(name) {
		p.err = fmt.Errorf("obs: invalid metric name %q", name)
		return false
	}
	if p.seen[name] {
		p.err = fmt.Errorf("obs: duplicate metric family %q", name)
		return false
	}
	p.seen[name] = true
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n",
		name, strings.ReplaceAll(help, "\n", " "), name, typ)
	return p.err == nil
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (p *PromWriter) sample(name, labels string, v float64) {
	if p.err != nil {
		return
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, p.err = fmt.Fprintf(p.w, "%s%s %s\n", name, labels, promFloat(v))
}

// Counter writes a single-sample counter family.
func (p *PromWriter) Counter(name, help string, v float64) {
	if p.family(name, "counter", help) {
		p.sample(name, "", v)
	}
}

// Gauge writes a single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, v float64) {
	if p.family(name, "gauge", help) {
		p.sample(name, "", v)
	}
}

// GaugeVec writes one gauge family with a sample per value of the given
// label, in sorted label order for a reproducible exposition.
func (p *PromWriter) GaugeVec(name, help, label string, vals map[string]float64) {
	if !p.family(name, "gauge", help) {
		return
	}
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.sample(name, fmt.Sprintf("%s=%q", label, k), vals[k])
	}
}

// InfoGauge writes a gauge family with one constant-1 sample carrying the
// given labels (the `foo_build_info` idiom: the values live in the labels).
// Labels are written in sorted key order for a reproducible exposition.
func (p *PromWriter) InfoGauge(name, help string, labels map[string]string) {
	if !p.family(name, "gauge", help) {
		return
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	p.sample(name, strings.Join(parts, ","), 1)
}

// WriteBuildInfo emits the standard bepi_build_info gauge from a BuildInfo.
func WriteBuildInfo(p *PromWriter, b BuildInfo) {
	p.InfoGauge("bepi_build_info", "Build identity; the values are in the labels.",
		map[string]string{
			"version":    b.Version,
			"go_version": b.GoVersion,
			"compact":    b.Compact,
		})
}

// CounterVec writes one counter family with a sample per value of the
// given label, in sorted label order for a reproducible exposition.
func (p *PromWriter) CounterVec(name, help, label string, vals map[string]float64) {
	if !p.family(name, "counter", help) {
		return
	}
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.sample(name, fmt.Sprintf("%s=%q", label, k), vals[k])
	}
}

// Histogram writes a snapshot as a Prometheus histogram family: cumulative
// `le` buckets, then _sum and _count.
func (p *PromWriter) Histogram(name, help string, s HistSnapshot) {
	if !p.family(name, "histogram", help) {
		return
	}
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		p.sample(name+"_bucket", fmt.Sprintf("le=%q", promFloat(b)), float64(cum))
	}
	p.sample(name+"_bucket", `le="+Inf"`, float64(s.Count))
	p.sample(name+"_sum", "", s.Sum)
	p.sample(name+"_count", "", float64(s.Count))
}

// CounterHist writes an integer bucket histogram (e.g. qexec's batch-size
// counters) as a Prometheus histogram family. counts are per-bucket with a
// final overflow bucket, matching Histogram's layout; sum is the total of
// the observed values when known (pass NaN to omit _sum).
func (p *PromWriter) CounterHist(name, help string, bounds []int, counts []int64, sum float64) {
	if !p.family(name, "histogram", help) {
		return
	}
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		p.sample(name+"_bucket", fmt.Sprintf("le=%q", promFloat(float64(b))), float64(cum))
	}
	cum += counts[len(bounds)]
	p.sample(name+"_bucket", `le="+Inf"`, float64(cum))
	if !math.IsNaN(sum) {
		p.sample(name+"_sum", "", sum)
	}
	p.sample(name+"_count", "", float64(cum))
}

// WriteGoStats emits Go runtime health: goroutines, heap, GC activity.
func WriteGoStats(p *PromWriter) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	p.Gauge("go_goroutines", "Number of goroutines.", float64(runtime.NumGoroutine()))
	p.Gauge("go_mem_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(m.HeapAlloc))
	p.Gauge("go_mem_heap_sys_bytes", "Heap memory obtained from the OS.", float64(m.HeapSys))
	p.Gauge("go_mem_heap_objects", "Number of allocated heap objects.", float64(m.HeapObjects))
	p.Counter("go_mem_alloc_bytes_total", "Cumulative bytes allocated.", float64(m.TotalAlloc))
	p.Counter("go_gc_cycles_total", "Completed GC cycles.", float64(m.NumGC))
	p.Counter("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.", float64(m.PauseTotalNs)/1e9)
	p.Gauge("go_gc_next_target_bytes", "Heap size at which the next GC runs.", float64(m.NextGC))
	p.Gauge("go_maxprocs", "GOMAXPROCS.", float64(runtime.GOMAXPROCS(0)))
}
