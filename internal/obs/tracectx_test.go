package obs

import (
	"context"
	"testing"
	"time"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: "deadbeefcafef00d", SpanID: 0x1234}
	got, ok := ParseTraceHeader(tc.HeaderValue())
	if !ok || got != tc {
		t.Fatalf("round trip: %+v ok=%v want %+v", got, ok, tc)
	}

	// Bare trace ID: parent defaults to root.
	got, ok = ParseTraceHeader("deadbeefcafef00d")
	if !ok || got.TraceID != "deadbeefcafef00d" || got.SpanID != 0 {
		t.Fatalf("bare id: %+v ok=%v", got, ok)
	}

	for _, bad := range []string{"", "   ", "not-hex-zzz", "xyz", "deadbeef-zz"} {
		if _, ok := ParseTraceHeader(bad); ok {
			t.Errorf("ParseTraceHeader(%q) accepted", bad)
		}
	}
}

func TestWithTraceFrom(t *testing.T) {
	if _, ok := TraceFrom(context.Background()); ok {
		t.Fatal("empty context must carry no trace")
	}
	if _, ok := TraceFrom(nil); ok {
		t.Fatal("nil context must carry no trace")
	}
	tc := TraceContext{TraceID: NewTraceID(), SpanID: 7}
	got, ok := TraceFrom(WithTrace(context.Background(), tc))
	if !ok || got != tc {
		t.Fatalf("got %+v ok=%v want %+v", got, ok, tc)
	}
	// An invalid (zero) context does not count as traced.
	if _, ok := TraceFrom(WithTrace(context.Background(), TraceContext{})); ok {
		t.Fatal("zero TraceContext must not report as traced")
	}
}

func TestNewTraceIDDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 || !isHex(id) {
			t.Fatalf("bad trace id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

// TestBeginCtxAdoptsPropagatedTrace is the whole-tree sampling contract: a
// tracer that would not sample this query on its own MUST trace it when the
// context carries a propagated trace, recording under the remote trace ID
// with the remote span as parent.
func TestBeginCtxAdoptsPropagatedTrace(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	tr := NewTracer(8, 1000000, clk.now) // samples the 1st query, then ~nothing
	tr.Begin("warmup", 0).Finish(clk.now())

	if at := tr.BeginCtx(context.Background(), "query", 1); at != nil {
		t.Fatal("unsampled query without propagated trace must not trace")
	}

	tc := TraceContext{TraceID: "feedface00000001", SpanID: 42}
	at := tr.BeginCtx(WithTrace(context.Background(), tc), "query", 1)
	if at == nil {
		t.Fatal("propagated trace must force tracing")
	}
	child := at.Context()
	if child.TraceID != tc.TraceID {
		t.Fatalf("child trace id %q want %q", child.TraceID, tc.TraceID)
	}
	if child.SpanID == 0 || child.SpanID == tc.SpanID {
		t.Fatalf("child span id %d must be fresh (parent %d)", child.SpanID, tc.SpanID)
	}
	at.Finish(clk.now())

	got := tr.ByTraceID(tc.TraceID, 0)
	if len(got) != 1 {
		t.Fatalf("ByTraceID: %d records", len(got))
	}
	if got[0].ParentID != tc.SpanID || got[0].SpanID != child.SpanID {
		t.Fatalf("linkage wrong: %+v", got[0])
	}
}

func TestBeginAssignsFreshTraceID(t *testing.T) {
	tr := NewTracer(8, 1, nil)
	at := tr.Begin("query", 3)
	if at == nil {
		t.Fatal("sample=1 must trace")
	}
	tc := at.Context()
	if !tc.Valid() || tc.SpanID == 0 {
		t.Fatalf("root record must carry ids: %+v", tc)
	}
	at.Finish(time.Now())
	got := tr.ByTraceID(tc.TraceID, 0)
	if len(got) != 1 || got[0].ParentID != 0 {
		t.Fatalf("root record wrong: %+v", got)
	}
}

func TestByTraceIDNewestFirst(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	tr := NewTracer(8, 1, clk.now)
	tc := TraceContext{TraceID: "abc123", SpanID: 1}
	ctx := WithTrace(context.Background(), tc)
	for i := 0; i < 3; i++ {
		at := tr.BeginCtx(ctx, "query", i)
		at.Finish(clk.now())
	}
	other := tr.Begin("query", 99)
	other.Finish(clk.now())

	got := tr.ByTraceID("abc123", 0)
	if len(got) != 3 {
		t.Fatalf("ByTraceID: %d records want 3", len(got))
	}
	if got[0].Seed != 2 || got[2].Seed != 0 {
		t.Fatalf("not newest-first: %+v", got)
	}
	if got2 := tr.ByTraceID("abc123", 2); len(got2) != 2 {
		t.Fatalf("capped ByTraceID: %d", len(got2))
	}
	if miss := tr.ByTraceID("ffffffffffffffff", 0); len(miss) != 0 {
		t.Fatalf("unknown trace id: %+v", miss)
	}
}
