package obs

import (
	"bytes"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	sl := NewSlowLog(logger, 100*time.Millisecond)

	if sl.Slow(50 * time.Millisecond) {
		t.Fatal("below threshold must not be slow")
	}
	if !sl.Slow(100 * time.Millisecond) {
		t.Fatal("at threshold must be slow")
	}
	spans := []Span{{Name: "solve", Start: 0, Dur: 90 * time.Millisecond}}
	sl.Log("query", 42, "deadbeefcafe0001", 120*time.Millisecond, false, true, 17, 3e-10, errors.New("late"), spans)
	out := buf.String()
	for _, want := range []string{
		`"msg":"slow query"`, `"kind":"query"`, `"seed":42`,
		`"iterations":17`, `"coalesced":true`, `"error":"late"`, `"solve":`,
		`"trace_id":"deadbeefcafe0001"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in %s", want, out)
		}
	}
	if sl.Count() != 1 {
		t.Fatalf("count %d", sl.Count())
	}
	if sl.Threshold() != 100*time.Millisecond {
		t.Fatalf("threshold %v", sl.Threshold())
	}
}

func TestSlowLogNilSafe(t *testing.T) {
	var sl *SlowLog
	if sl.Slow(time.Hour) {
		t.Fatal("nil log is never slow")
	}
	sl.Log("query", 0, "", time.Hour, false, false, 0, 0, nil, nil)
	if sl.Count() != 0 || sl.Threshold() != 0 {
		t.Fatal("nil accessors")
	}
}

func TestObserverDefaultsAndDisabled(t *testing.T) {
	o := New(Options{})
	if o.QueryLatency == nil || o.Tracer == nil {
		t.Fatal("defaults missing")
	}
	if o.SlowLog != nil {
		t.Fatal("slow log must be off by default")
	}
	if o.Now().IsZero() {
		t.Fatal("default clock")
	}
	o2 := New(Options{SlowQuery: time.Second, TraceCapacity: -1})
	if o2.SlowLog == nil || o2.Tracer != nil {
		t.Fatal("slow log on / tracing off expected")
	}
	// Disabled and nil observers must be inert but usable.
	Disabled.QueryLatency.Observe(1)
	Disabled.Tracer.Begin("query", 0).Finish(Disabled.Now())
	var nilObs *Observer
	if nilObs.Now().IsZero() {
		t.Fatal("nil observer clock")
	}
}
