package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("test", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 2} // ≤1: {0.5, 1}; ≤10: {1.5, 10}; ≤100: {99, 100}; +Inf: {101, 1e9}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Errorf("count %d want 8", s.Count)
	}
	wantSum := 0.5 + 1 + 1.5 + 10 + 99 + 100 + 101 + 1e9
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Errorf("sum %v want %v", s.Sum, wantSum)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if s := h.Snapshot(); s.Count != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must snapshot empty")
	}
	if h.Name() != "" {
		t.Fatal("nil histogram name")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("q", []float64{10, 20, 30, 40})
	// 100 observations uniform over (0, 40]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	s := h.Snapshot()
	for _, c := range []struct{ q, want, tol float64 }{
		{0.5, 20, 1},
		{0.9, 36, 1},
		{0.99, 39.6, 1},
		{0, 0, 1},
		{1, 40, 1e-9},
	} {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > c.tol {
			t.Errorf("p%g = %v, want %v ± %v", c.q*100, got, c.want, c.tol)
		}
	}
	// Everything in overflow → largest finite bound.
	o := NewHistogram("o", []float64{1})
	o.Observe(5)
	if got := o.Snapshot().Quantile(0.5); got != 1 {
		t.Errorf("overflow quantile %v want 1", got)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram("m", []float64{10})
	h.Observe(2)
	h.Observe(4)
	if got := h.Snapshot().Mean(); got != 3 {
		t.Fatalf("mean %v", got)
	}
	if (HistSnapshot{}).Mean() != 0 {
		t.Fatal("empty mean")
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-6, 1, 5)
	if b[0] != 1e-6 {
		t.Fatalf("first bound %v", b[0])
	}
	if last := b[len(b)-1]; last < 1 {
		t.Fatalf("last bound %v does not reach hi", last)
	}
	for i := 1; i < len(b); i++ {
		ratio := b[i] / b[i-1]
		if math.Abs(ratio-math.Pow(10, 0.2)) > 1e-9 {
			t.Fatalf("ratio %v at %d not log-spaced", ratio, i)
		}
	}
	// The standard bucket sets must satisfy NewHistogram's ordering check.
	NewHistogram("lat", LatencyBuckets())
	NewHistogram("iter", IterationBuckets())
	NewHistogram("res", ResidualBuckets())
}

// TestHistogramConcurrent hammers Observe from many goroutines while
// snapshots are taken — the record-vs-snapshot race coverage for the
// lock-free implementation. Run under -race (wired into `make race-par`).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("conc", LatencyBuckets())
	const goroutines, per = 8, 5000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent snapshot reader
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				var sum uint64
				for _, c := range s.Counts {
					sum += c
				}
				if sum != s.Count {
					t.Error("snapshot count does not equal bucket total")
					return
				}
			}
		}
	}()
	var writers sync.WaitGroup
	writers.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer writers.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) * 1e-7)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count %d want %d", s.Count, goroutines*per)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("bench", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram("bench", LatencyBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) * 1e-6)
			i++
		}
	})
}
