package obs

import "time"

// Canonical histogram family names shared by the shard exposition, the
// /metrics/snapshot payload, and the coordinator's fleet aggregation. A
// merged family is only meaningful because every process builds it over the
// identical bucket layout (see the *Buckets constructors).
const (
	FamilyQueryLatency = "bepi_query_latency_seconds"
	FamilyBatchSolve   = "bepi_batch_solve_seconds"
	FamilyQueueWait    = "bepi_queue_wait_seconds"
	FamilyIterations   = "bepi_query_iterations"
	FamilyResidual     = "bepi_query_residual"
	FamilySchurApply   = "bepi_schur_apply_seconds"
	FamilyPrecondApply = "bepi_precond_apply_seconds"
	FamilyTopKSaved    = "bepi_topk_iters_saved"
	FamilyRebuild      = "bepi_rebuild_seconds"
)

// MetricsSnapshot is one process's mergeable metrics export: every
// histogram as a HistSnapshot keyed by canonical family name, plus counters
// and build identity. Shards serve it at GET /metrics/snapshot; the
// coordinator fetches and merges them into fleet-wide quantiles.
type MetricsSnapshot struct {
	Replica    string                  `json:"replica,omitempty"`
	TakenAt    time.Time               `json:"taken_at"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Counters   map[string]int64        `json:"counters,omitempty"`
	Build      BuildInfo               `json:"build,omitempty"`
}

// BuildInfo identifies what is running where — surfaced as the
// bepi_build_info gauge and carried on snapshots so a mixed-version fleet
// is visible at the coordinator.
type BuildInfo struct {
	Version   string `json:"version,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	Compact   string `json:"compact,omitempty"`
}

// HistogramSnapshots exports every histogram the observer carries, keyed by
// canonical family name. Nil-valued histograms (and a nil observer) yield
// an empty map entry-wise — absent, not zero.
func (o *Observer) HistogramSnapshots() map[string]HistSnapshot {
	out := make(map[string]HistSnapshot, 9)
	if o == nil {
		return out
	}
	put := func(family string, h *Histogram) {
		if h != nil {
			out[family] = h.Snapshot()
		}
	}
	put(FamilyQueryLatency, o.QueryLatency)
	put(FamilyBatchSolve, o.BatchLatency)
	put(FamilyQueueWait, o.QueueWait)
	put(FamilyIterations, o.Iterations)
	put(FamilyResidual, o.Residual)
	put(FamilySchurApply, o.SchurApply)
	put(FamilyPrecondApply, o.PrecondApply)
	put(FamilyTopKSaved, o.TopKSaved)
	put(FamilyRebuild, o.Rebuild)
	return out
}

// MergeMetricsSnapshots folds per-process snapshots into one fleet-wide
// snapshot: histogram families merge bucket-wise (families present in only
// some snapshots still merge — an empty operand is the identity), counters
// add. Families whose bounds disagree across snapshots are dropped with
// their name returned in mismatched, never silently misbinned.
func MergeMetricsSnapshots(snaps []MetricsSnapshot) (merged MetricsSnapshot, mismatched []string) {
	merged.Histograms = make(map[string]HistSnapshot)
	merged.Counters = make(map[string]int64)
	bad := make(map[string]bool)
	for _, s := range snaps {
		if s.TakenAt.After(merged.TakenAt) {
			merged.TakenAt = s.TakenAt
		}
		for family, h := range s.Histograms {
			if bad[family] {
				continue
			}
			m, err := merged.Histograms[family].Merge(h)
			if err != nil {
				bad[family] = true
				delete(merged.Histograms, family)
				mismatched = append(mismatched, family)
				continue
			}
			merged.Histograms[family] = m
		}
		for name, v := range s.Counters {
			merged.Counters[name] += v
		}
	}
	return merged, mismatched
}
