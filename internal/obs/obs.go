// Package obs is the serving system's observability layer: dependency-free
// telemetry primitives threaded through every layer between a socket and
// the Schur-complement solve.
//
//   - Histogram: lock-free fixed-bucket (log-spaced) histograms for query
//     latency, batch-solve latency, queue wait, GMRES iteration counts and
//     final residuals, with p50/p90/p99 snapshot summaries;
//   - Tracer: per-query trace records with stage spans (admission, cache
//     lookup, coalesce wait, batch assembly, solve, top-k rank) captured
//     against an injected clock and kept in a bounded ring buffer
//     (served at GET /debug/traces);
//   - PromWriter: Prometheus text-format exposition (served at
//     GET /metrics with content negotiation, and at /metrics.prom);
//   - SlowLog: a structured (log/slog) slow-query log with a configurable
//     threshold.
//
// Everything is nil-safe: a nil *Histogram, *Tracer or *SlowLog is a no-op,
// so the Disabled observer turns the whole layer off without branching at
// call sites. The hot-path cost of a fully enabled observer is a few atomic
// adds per query (see BenchmarkObserveQuery and the qexec/noobs benchmark
// variant); the paper's per-query time claims (Figs. 6-8) stay measurable
// in production because this instrumentation is always on.
package obs

import (
	"log/slog"
	"sync/atomic"
	"time"
)

// Clock is the time source injected into the tracer and the executors so
// span tests are deterministic. The zero value (nil) means time.Now.
type Clock func() time.Time

// now resolves a possibly-nil clock.
func (c Clock) now() time.Time {
	if c == nil {
		return time.Now()
	}
	return c()
}

// Observer bundles the telemetry sinks for one query-execution subsystem.
// Fields may be nil individually (each sink is nil-safe); Disabled is the
// all-nil instance.
type Observer struct {
	// Clock is the time source for latency measurements and trace spans.
	// Nil means time.Now.
	Clock Clock

	// QueryLatency observes end-to-end executor latency per query, in
	// seconds (cache hits included).
	QueryLatency *Histogram
	// BatchLatency observes the wall time of each multi-RHS engine solve,
	// in seconds.
	BatchLatency *Histogram
	// QueueWait observes the time each solved query spent in the admission
	// queue before a worker picked it up, in seconds.
	QueueWait *Histogram
	// Iterations observes the iterative Schur solver's iteration count per
	// solved query.
	Iterations *Histogram
	// Residual observes the solver's final relative residual per solved
	// query.
	Residual *Histogram
	// SchurApply observes the wall time of each Schur-operator application
	// (one SpMV with the explicit S, or the fused
	// H22·x − H21·(H11⁻¹·(H12·x)) chain), in seconds — the dominant
	// per-iteration kernel.
	SchurApply *Histogram
	// PrecondApply observes the wall time of each ILU(0) preconditioner
	// application (the two triangular sweeps), in seconds.
	PrecondApply *Histogram
	// TopKSaved observes, for each early-stopped bounded top-k solve, the
	// estimated number of Schur iterations the certificate avoided — the
	// direct measure of what bound pruning buys per query.
	TopKSaved *Histogram
	// Rebuild observes the wall time of each background index rebuild
	// (graph construction + full BePI preprocessing) on the dynamic-update
	// path, in seconds. Queries are expected to keep completing while
	// these run; compare its quantiles against QueryLatency's to verify
	// rebuilds never show up as query stalls.
	Rebuild *Histogram

	// KernelBytes accumulates the bytes each observed kernel application
	// streams (matrix arrays plus vectors), so bandwidth pressure is
	// visible as a rate alongside the time histograms.
	KernelBytes atomic.Int64

	// KernelNanos accumulates the wall time of those same kernel
	// applications. Pairing it with KernelBytes makes the achieved memory
	// bandwidth (bytes over seconds) derivable at scrape time, locally or
	// across fleet-merged snapshots, and comparable against the machine's
	// measured STREAM roof.
	KernelNanos atomic.Int64

	// SolverIters counts solver iterations as they happen (incremented from
	// the solver's per-iteration hook), so convergence progress of long
	// solves is visible between queries.
	SolverIters atomic.Int64

	// Tracer records per-query stage spans into a bounded ring buffer.
	Tracer *Tracer
	// SlowLog logs queries slower than its threshold through log/slog.
	SlowLog *SlowLog
	// Events is the always-on flight recorder: a lock-free bounded ring of
	// structured operational events (engine swaps, admission rejections,
	// shard ejections, retries) served at GET /debug/events and correlated
	// with traces by trace ID.
	Events *EventLog
}

// Disabled is an observer with every sink turned off. Pass it where a nil
// Observer would select the defaults instead.
var Disabled = &Observer{}

// AchievedBandwidth returns the cumulative achieved memory bandwidth of the
// observed solve kernels in bytes/second — KernelBytes over KernelNanos —
// or 0 before any kernel application was observed. Divide by the machine's
// STREAM roof (sparse.StreamBandwidth) to judge kernels against hardware.
func (o *Observer) AchievedBandwidth() float64 {
	ns := o.KernelNanos.Load()
	if ns <= 0 {
		return 0
	}
	return float64(o.KernelBytes.Load()) / (float64(ns) / 1e9)
}

// Options configures New. Zero values select the defaults.
type Options struct {
	// Clock overrides the time source (nil = time.Now).
	Clock Clock
	// TraceCapacity bounds the trace ring buffer; default 256, negative
	// disables tracing.
	TraceCapacity int
	// TraceSample traces every TraceSample-th query; default 1 (all).
	TraceSample int
	// EventCapacity bounds the flight-recorder ring; default
	// DefaultEventCapacity, negative disables the recorder.
	EventCapacity int
	// SlowQuery, when positive, enables the slow-query log at that
	// threshold.
	SlowQuery time.Duration
	// Logger receives slow-query records; default slog.Default().
	Logger *slog.Logger
}

// New builds a fully wired observer: the standard histograms (including the
// per-kernel ones), a trace ring, and (when Options.SlowQuery is positive) a
// slow-query log.
func New(opts Options) *Observer {
	o := &Observer{
		Clock:        opts.Clock,
		QueryLatency: NewHistogram("query latency (s)", LatencyBuckets()),
		BatchLatency: NewHistogram("batch solve latency (s)", LatencyBuckets()),
		QueueWait:    NewHistogram("queue wait (s)", LatencyBuckets()),
		Iterations:   NewHistogram("solver iterations", IterationBuckets()),
		Residual:     NewHistogram("final residual", ResidualBuckets()),
		SchurApply:   NewHistogram("Schur operator apply (s)", LatencyBuckets()),
		TopKSaved:    NewHistogram("top-k iterations saved", IterationBuckets()),
		PrecondApply: NewHistogram("ILU preconditioner apply (s)", LatencyBuckets()),
		Rebuild:      NewHistogram("index rebuild (s)", LatencyBuckets()),
	}
	cap := opts.TraceCapacity
	if cap == 0 {
		cap = 256
	}
	if cap > 0 {
		o.Tracer = NewTracer(cap, opts.TraceSample, opts.Clock)
	}
	if opts.EventCapacity >= 0 {
		o.Events = NewEventLog(opts.EventCapacity, opts.Clock)
	}
	if opts.SlowQuery > 0 {
		o.SlowLog = NewSlowLog(opts.Logger, opts.SlowQuery)
	}
	return o
}

// Now reads the observer's clock (time.Now for a nil observer or clock).
func (o *Observer) Now() time.Time {
	if o == nil {
		return time.Now()
	}
	return o.Clock.now()
}
