package cluster

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// healthLoop probes every replica each HealthInterval until Close.
func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.CheckNow(context.Background())
		}
	}
}

// CheckNow runs one synchronous probe round over all replicas, applying
// ejection and readmission transitions. The background checker calls it on
// every tick; tests call it directly for deterministic membership changes.
func (c *Coordinator) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	results := make([]error, len(c.names))
	healths := make([]Health, len(c.names))
	for i, name := range c.names {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
			defer cancel()
			healths[i], results[i] = rep.backend.Health(pctx)
		}(i, c.replicas[name])
	}
	wg.Wait()

	// Transitions are applied under mu so concurrent CheckNow calls (tests
	// racing the background loop) serialize their ring swaps.
	c.mu.Lock()
	defer c.mu.Unlock()
	ring := c.ring.Load()
	changed := false
	for i, name := range c.names {
		rep := c.replicas[name]
		if results[i] == nil {
			h := healths[i]
			rep.lastHealth.Store(&h)
			rep.consecFail = 0
			rep.consecOK++
			if !rep.healthy.Load() && rep.consecOK >= c.cfg.ReadmitThreshold {
				rep.healthy.Store(true)
				rep.readmissions.Add(1)
				c.obs.Events.Record("shard_readmitted", "", map[string]string{
					"shard":     name,
					"consec_ok": strconv.Itoa(rep.consecOK),
				})
				ring = ring.With(name)
				changed = true
			}
		} else {
			rep.consecOK = 0
			rep.consecFail++
			if rep.healthy.Load() && rep.consecFail >= c.cfg.FailThreshold {
				rep.healthy.Store(false)
				rep.ejections.Add(1)
				c.obs.Events.Record("shard_ejected", "", map[string]string{
					"shard":       name,
					"consec_fail": strconv.Itoa(rep.consecFail),
					"cause":       results[i].Error(),
				})
				ring = ring.Without(name)
				changed = true
			}
		}
	}
	if changed {
		c.ring.Store(ring)
	}
}

// ReplicaStatus is one replica's row in the coordinator's /replicas view.
type ReplicaStatus struct {
	Name            string  `json:"name"`
	Healthy         bool    `json:"healthy"`
	Generation      uint64  `json:"generation"`
	IndexHash       string  `json:"index_hash,omitempty"`
	QueueDepth      int     `json:"queue_depth"`
	RebuildInFlight bool    `json:"rebuild_in_flight"`
	Routed          int64   `json:"routed"`
	Errors          int64   `json:"errors"`
	Retries         int64   `json:"retries"`
	Ejections       int64   `json:"ejections"`
	Readmissions    int64   `json:"readmissions"`
	P50MS           float64 `json:"p50_ms"`
	P99MS           float64 `json:"p99_ms"`
}

// Replicas returns per-replica routing and health state, sorted by name.
func (c *Coordinator) Replicas() []ReplicaStatus {
	out := make([]ReplicaStatus, 0, len(c.names))
	for _, name := range c.names {
		rep := c.replicas[name]
		st := ReplicaStatus{
			Name:         name,
			Healthy:      rep.healthy.Load(),
			Routed:       rep.routed.Load(),
			Errors:       rep.errs.Load(),
			Retries:      rep.retries.Load(),
			Ejections:    rep.ejections.Load(),
			Readmissions: rep.readmissions.Load(),
		}
		if h := rep.lastHealth.Load(); h != nil {
			st.Generation = h.Generation
			st.IndexHash = h.IndexHash
			st.QueueDepth = h.QueueDepth
			st.RebuildInFlight = h.RebuildInFlight
		}
		snap := rep.latency.Snapshot()
		if snap.Count > 0 {
			st.P50MS = snap.Quantile(0.5) * 1e3
			st.P99MS = snap.Quantile(0.99) * 1e3
		}
		out = append(out, st)
	}
	return out
}
