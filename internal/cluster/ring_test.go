package cluster

import (
	"fmt"
	"testing"
)

const ringTestSeeds = 20000

// TestRingDeterministicPlacement: placement depends only on the member set
// and vnode count, never on construction order.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing([]string{"r0", "r1", "r2", "r3"}, 64)
	b := NewRing([]string{"r3", "r1", "r0", "r2", "r2"}, 64) // shuffled + dup
	for seed := 0; seed < ringTestSeeds; seed++ {
		if a.Owner(seed) != b.Owner(seed) {
			t.Fatalf("seed %d: owner %q vs %q for the same member set", seed, a.Owner(seed), b.Owner(seed))
		}
	}
}

// TestRingRemovalMovesOnlyOrphanedKeys is the consistent-hashing contract
// on member removal: every key owned by a survivor keeps its owner; only
// the removed member's keys move.
func TestRingRemovalMovesOnlyOrphanedKeys(t *testing.T) {
	full := NewRing([]string{"r0", "r1", "r2", "r3"}, 64)
	smaller := full.Without("r2")
	moved := 0
	for seed := 0; seed < ringTestSeeds; seed++ {
		before, after := full.Owner(seed), smaller.Owner(seed)
		if before != "r2" && after != before {
			t.Fatalf("seed %d moved %q→%q though %q survived", seed, before, after, before)
		}
		if before == "r2" {
			moved++
			if after == "r2" {
				t.Fatalf("seed %d still owned by removed member", seed)
			}
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; test is vacuous")
	}
}

// TestRingAdditionMovesBoundedFraction: adding one member to N moves only
// the keys the newcomer claims — close to 1/(N+1) of them and none between
// survivors.
func TestRingAdditionMovesBoundedFraction(t *testing.T) {
	base := NewRing([]string{"r0", "r1", "r2", "r3"}, 64)
	grown := base.With("r4")
	moved := 0
	for seed := 0; seed < ringTestSeeds; seed++ {
		before, after := base.Owner(seed), grown.Owner(seed)
		if after != before {
			if after != "r4" {
				t.Fatalf("seed %d moved %q→%q, not to the new member", seed, before, after)
			}
			moved++
		}
	}
	frac := float64(moved) / ringTestSeeds
	// Ideal share is 1/5; vnode placement is hash-random, so allow a wide
	// but still "bounded movement" band.
	if frac < 0.05 || frac > 0.40 {
		t.Fatalf("added member claimed %.1f%% of keys, want ~20%%", 100*frac)
	}
}

// TestRingBalance: with enough vnodes no member owns a pathological share.
func TestRingBalance(t *testing.T) {
	members := []string{"r0", "r1", "r2", "r3"}
	r := NewRing(members, 64)
	counts := map[string]int{}
	for seed := 0; seed < ringTestSeeds; seed++ {
		counts[r.Owner(seed)]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / ringTestSeeds
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys (counts %v)", m, 100*frac, counts)
		}
	}
}

// TestRingSuccessors: the retry order starts at the owner, lists distinct
// members, and on single-member rings is just that member.
func TestRingSuccessors(t *testing.T) {
	r := NewRing([]string{"r0", "r1", "r2"}, 32)
	for seed := 0; seed < 100; seed++ {
		succ := r.Successors(seed, 5)
		if len(succ) != 3 {
			t.Fatalf("seed %d: got %d successors, want all 3", seed, len(succ))
		}
		if succ[0] != r.Owner(seed) {
			t.Fatalf("seed %d: retry order starts at %q, owner is %q", seed, succ[0], r.Owner(seed))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("seed %d: duplicate member %q in %v", seed, m, succ)
			}
			seen[m] = true
		}
	}
	one := NewRing([]string{"solo"}, 8)
	if got := one.Successors(7, 3); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("single-member successors = %v", got)
	}
	if NewRing(nil, 8).Owner(1) != "" {
		t.Fatal("empty ring must own nothing")
	}
}

// TestRingWithWithout: With/Without round-trip back to the same placement.
func TestRingWithWithout(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 32)
	rt := r.Without("b").With("b")
	for seed := 0; seed < 1000; seed++ {
		if r.Owner(seed) != rt.Owner(seed) {
			t.Fatalf("seed %d: owner changed across Without/With round trip", seed)
		}
	}
	if r.With("a") != r {
		t.Fatal("With(existing) should return the same ring")
	}
	if r.Without("zzz") != r {
		t.Fatal("Without(absent) should return the same ring")
	}
}

func BenchmarkRingOwner(b *testing.B) {
	members := make([]string, 16)
	for i := range members {
		members[i] = fmt.Sprintf("replica-%d", i)
	}
	r := NewRing(members, DefaultVnodes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(i)
	}
}
