package cluster

import (
	"context"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"bepi"
	"bepi/internal/obs"
	"bepi/internal/server"
	"bepi/internal/sparse"
)

// maxDebugItems caps how many traces or events one coordinator debug
// request returns, whatever ?n= asks for.
const maxDebugItems = 512

// traceContext resolves a coordinator request's tracing context, mirroring
// the shard server: a propagated X-Bepi-Trace header wins (this coordinator
// may itself sit behind another tier), otherwise ?trace=1 forces a fresh
// trace. The resolved trace ID is echoed in the X-Bepi-Trace response
// header so the caller knows what to ask /debug/traces?trace=<id> for.
func traceContext(w http.ResponseWriter, r *http.Request) context.Context {
	ctx := r.Context()
	tc, ok := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	if !ok {
		if r.URL.Query().Get("trace") != "1" {
			return ctx
		}
		tc = obs.TraceContext{TraceID: obs.NewTraceID()}
	}
	w.Header().Set(obs.TraceHeader, tc.TraceID)
	return obs.WithTrace(ctx, tc)
}

// TraceNode is one process's trace record with the records it parented
// nested under it — one node of the cross-process trace tree.
type TraceNode struct {
	obs.Trace
	// Source is the process the record came from: "coordinator" or the
	// replica's ring name.
	Source   string       `json:"source"`
	Children []*TraceNode `json:"children,omitempty"`
}

// TraceTree assembles the distributed trace tree for one trace ID: the
// coordinator's own records plus every replica's (fetched concurrently from
// backends supporting TraceSource), linked by parent span ID. Records whose
// parent never arrived (evicted from a ring, or the fetch failed) are
// promoted to roots rather than dropped. The second return is the total
// record count.
func (c *Coordinator) TraceTree(ctx context.Context, traceID string, max int) ([]*TraceNode, int) {
	nodes := make([]*TraceNode, 0, 8)
	for _, t := range c.obs.Tracer.ByTraceID(traceID, max) {
		nodes = append(nodes, &TraceNode{Trace: t, Source: "coordinator"})
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range c.names {
		ts, ok := c.replicas[name].backend.(TraceSource)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(name string, ts TraceSource) {
			defer wg.Done()
			fctx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
			defer cancel()
			traces, err := ts.Traces(fctx, traceID, max)
			if err != nil {
				return // a missing shard degrades the tree, never fails it
			}
			mu.Lock()
			for _, t := range traces {
				nodes = append(nodes, &TraceNode{Trace: t, Source: name})
			}
			mu.Unlock()
		}(name, ts)
	}
	wg.Wait()

	// Link children under parents; chronological order at every level.
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Time.Before(nodes[j].Time) })
	bySpan := make(map[uint64]*TraceNode, len(nodes))
	for _, n := range nodes {
		if n.SpanID != 0 {
			bySpan[n.SpanID] = n
		}
	}
	var roots []*TraceNode
	for _, n := range nodes {
		if p, ok := bySpan[n.ParentID]; ok && n.ParentID != 0 && p != n {
			p.Children = append(p.Children, n)
			continue
		}
		roots = append(roots, n)
	}
	return roots, len(nodes)
}

// TraceTreeResponse is the coordinator's /debug/traces?trace=ID payload:
// the trace's records joined into a tree by parent span.
type TraceTreeResponse struct {
	TraceID string       `json:"trace_id"`
	Count   int          `json:"count"`
	Roots   []*TraceNode `json:"roots"`
}

// handleTraces serves the coordinator's recent trace records (flat, newest
// first), or — with ?trace=ID — the assembled cross-process tree for one
// distributed trace.
func (h *Handler) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use GET"})
		return
	}
	if r.Context().Err() != nil {
		return
	}
	n := 50
	if v := r.URL.Query().Get("n"); v != "" {
		var err error
		n, err = strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad n " + strconv.Quote(v)})
			return
		}
	}
	if n == 0 || n > maxDebugItems {
		n = maxDebugItems
	}
	if id := r.URL.Query().Get("trace"); id != "" {
		roots, count := h.coord.TraceTree(r.Context(), id, n)
		if roots == nil {
			roots = []*TraceNode{}
		}
		writeJSON(w, http.StatusOK, TraceTreeResponse{TraceID: id, Count: count, Roots: roots})
		return
	}
	traces := h.coord.Observer().Tracer.Recent(n)
	if traces == nil {
		traces = []obs.Trace{}
	}
	writeJSON(w, http.StatusOK, server.TraceResponse{Count: len(traces), Traces: traces})
}

// handleEvents serves the coordinator's flight recorder, newest first.
func (h *Handler) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use GET"})
		return
	}
	if r.Context().Err() != nil {
		return
	}
	n := 100
	if v := r.URL.Query().Get("n"); v != "" {
		var err error
		n, err = strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad n " + strconv.Quote(v)})
			return
		}
	}
	if n == 0 || n > maxDebugItems {
		n = maxDebugItems
	}
	events := h.coord.Observer().Events.Recent(n)
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, server.EventResponse{Count: len(events), Events: events})
}

// FleetSnapshots fetches the mergeable metrics snapshot from every replica
// whose backend supports SnapshotSource, concurrently under the attempt
// timeout. Failed or unsupported replicas are skipped — aggregation
// degrades, it never fails a scrape. Results are sorted by replica name.
func (c *Coordinator) FleetSnapshots(ctx context.Context) []obs.MetricsSnapshot {
	out := make([]obs.MetricsSnapshot, 0, len(c.names))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range c.names {
		ss, ok := c.replicas[name].backend.(SnapshotSource)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(name string, ss SnapshotSource) {
			defer wg.Done()
			fctx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
			defer cancel()
			s, err := ss.MetricsSnapshot(fctx)
			if err != nil {
				return
			}
			if s.Replica == "" {
				s.Replica = name
			}
			mu.Lock()
			out = append(out, s)
			mu.Unlock()
		}(name, ss)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i].Replica < out[j].Replica })
	return out
}

// ShardQuantiles is one process's query-latency summary inside the fleet
// aggregation (milliseconds, from the mergeable histogram).
type ShardQuantiles struct {
	Shard string  `json:"shard,omitempty"`
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// FleetMetrics is the fleet-wide aggregation in the coordinator's /metrics
// JSON: per-shard query-latency quantiles plus the same quantiles over the
// bucket-wise merged histogram. Merged quantiles are exact to within bucket
// resolution because every shard shares the identical bucket layout.
type FleetMetrics struct {
	Shards []ShardQuantiles `json:"shards"`
	Merged ShardQuantiles   `json:"merged"`
	// MismatchedFamilies lists histogram families dropped from the merge
	// because shards disagreed on bucket bounds (a mixed-version fleet).
	MismatchedFamilies []string `json:"mismatched_families,omitempty"`
	// Kernel is the fleet-merged achieved-bandwidth view: summed kernel
	// bytes over summed kernel seconds from the shard snapshots, judged
	// against the coordinator host's own STREAM roof (shards may differ;
	// per-shard roofs live on the shards' /metrics).
	Kernel *KernelBandwidth `json:"kernel,omitempty"`
}

// KernelBandwidth is the fleet-level kernel bandwidth summary.
type KernelBandwidth struct {
	Bytes               int64   `json:"bytes"`
	Seconds             float64 `json:"seconds"`
	AchievedBytesPerSec float64 `json:"achieved_bytes_per_second"`
	StreamBytesPerSec   float64 `json:"stream_bytes_per_second"`
	PctOfStream         float64 `json:"pct_of_stream"`
}

// kernelBandwidth derives the fleet kernel summary from merged snapshot
// counters (nil when no shard reported kernel counters).
func kernelBandwidth(merged obs.MetricsSnapshot) *KernelBandwidth {
	bytes := merged.Counters["kernel_bytes"]
	ns := merged.Counters["kernel_seconds_ns"]
	if bytes == 0 && ns == 0 {
		return nil
	}
	k := &KernelBandwidth{
		Bytes:             bytes,
		Seconds:           float64(ns) / 1e9,
		StreamBytesPerSec: sparse.StreamBandwidth(),
	}
	if ns > 0 {
		k.AchievedBytesPerSec = float64(bytes) / (float64(ns) / 1e9)
	}
	if k.StreamBytesPerSec > 0 {
		k.PctOfStream = 100 * k.AchievedBytesPerSec / k.StreamBytesPerSec
	}
	return k
}

func quantilesOf(shard string, s obs.HistSnapshot) ShardQuantiles {
	return ShardQuantiles{
		Shard: shard,
		Count: s.Count,
		P50MS: s.Quantile(0.50) * 1e3,
		P99MS: s.Quantile(0.99) * 1e3,
	}
}

// fleetMetrics aggregates replica snapshots into the JSON fleet view.
func fleetMetrics(snaps []obs.MetricsSnapshot) *FleetMetrics {
	if len(snaps) == 0 {
		return nil
	}
	merged, mismatched := obs.MergeMetricsSnapshots(snaps)
	sort.Strings(mismatched)
	fm := &FleetMetrics{
		Merged:             quantilesOf("", merged.Histograms[obs.FamilyQueryLatency]),
		MismatchedFamilies: mismatched,
		Kernel:             kernelBandwidth(merged),
	}
	for _, s := range snaps {
		fm.Shards = append(fm.Shards, quantilesOf(s.Replica, s.Histograms[obs.FamilyQueryLatency]))
	}
	return fm
}

// writeFleetProm writes the fleet-aggregated families: build identity, ring
// shape, per-shard health and latency quantiles, and every bucket-wise
// merged histogram under a bepi_fleet_ prefix.
func (h *Handler) writeFleetProm(p *obs.PromWriter, snaps []obs.MetricsSnapshot) {
	c := h.coord
	obs.WriteBuildInfo(p, obs.BuildInfo{Version: bepi.Version, GoVersion: runtime.Version(), Compact: "n/a"})
	p.Gauge("bepi_ring_members", "Healthy replicas on the consistent-hash ring.", float64(c.Ring().Len()))
	healthy := make(map[string]float64, len(c.names))
	for _, name := range c.names {
		if c.replicas[name].healthy.Load() {
			healthy[name] = 1
		} else {
			healthy[name] = 0
		}
	}
	p.GaugeVec("bepi_shard_healthy", "1 when the shard is on the ring.", "shard", healthy)

	// Fleet-total routing counters (summed across replicas) and the
	// generation-guard counters.
	var retries, ejections, readmissions int64
	for _, name := range c.names {
		rep := c.replicas[name]
		retries += rep.retries.Load()
		ejections += rep.ejections.Load()
		readmissions += rep.readmissions.Load()
	}
	p.Counter("bepi_cluster_retries_total", "Query attempts retried on a ring successor.", float64(retries))
	p.Counter("bepi_cluster_ejections_total", "Health-check ejections across the fleet.", float64(ejections))
	p.Counter("bepi_cluster_readmissions_total", "Health-check readmissions across the fleet.", float64(readmissions))
	p.Counter("bepi_cluster_refetches_total", "Partials re-fetched to converge a merge on one generation.", float64(c.refetches.Load()))

	if len(snaps) == 0 {
		return
	}
	merged, _ := obs.MergeMetricsSnapshots(snaps)
	// Fleet-merged achieved kernel bandwidth: summed bytes over summed
	// seconds across shards. The STREAM roof is the coordinator host's own
	// probe — a like-for-like fraction only on homogeneous fleets.
	if k := kernelBandwidth(merged); k != nil {
		p.Gauge("bepi_kernel_achieved_bytes_per_second", "Fleet-merged achieved solve-kernel bandwidth (summed bytes over summed seconds).", k.AchievedBytesPerSec)
		p.Gauge("bepi_stream_bytes_per_second", "Measured STREAM-triad roof of the coordinator host.", k.StreamBytesPerSec)
	}
	// Incremental-rebuild adoption across the fleet (shards sum their
	// delta-mode rebuild counts into the mergeable snapshot).
	p.Counter("bepi_delta_applied_total", "Rebuilds absorbed incrementally by the delta path across the fleet.", float64(merged.Counters["delta_applied"]))
	p50 := make(map[string]float64, len(snaps))
	p99 := make(map[string]float64, len(snaps))
	for _, s := range snaps {
		q := quantilesOf(s.Replica, s.Histograms[obs.FamilyQueryLatency])
		p50[s.Replica] = q.P50MS / 1e3
		p99[s.Replica] = q.P99MS / 1e3
	}
	p.GaugeVec("bepi_shard_query_latency_p50_seconds", "Per-shard query-latency p50.", "shard", p50)
	p.GaugeVec("bepi_shard_query_latency_p99_seconds", "Per-shard query-latency p99.", "shard", p99)
	families := make([]string, 0, len(merged.Histograms))
	for f := range merged.Histograms {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, f := range families {
		// bepi_query_latency_seconds → bepi_fleet_query_latency_seconds:
		// the same family, bucket-wise summed across the fleet.
		p.Histogram("bepi_fleet_"+f[len("bepi_"):], "Fleet-merged "+f+" (bucket-wise sum over shards).",
			merged.Histograms[f])
	}
}

// snapshotCtx bounds how long a /metrics scrape waits on replica snapshot
// fan-out before serving what it has.
func snapshotCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), 5*time.Second)
}
