package cluster

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"bepi/internal/server"
)

// fakeBackend is a scriptable replica for coordinator tests.
type fakeBackend struct {
	name string
	n    int // nodes in the pretend graph

	mu         sync.Mutex
	hash       string
	gen        uint64
	staleLeft  int // answer this many queries with staleTag first
	staleTag   Tag
	failStatus int   // non-zero: Query fails with this status
	failLeft   int   // -1 = fail forever, else countdown
	healthErr  error // non-nil: Health fails
	queried    int
}

func newFake(name string, n int) *fakeBackend {
	return &fakeBackend{name: name, n: n, hash: "abc", gen: 1, failLeft: -1}
}

func (f *fakeBackend) Name() string { return f.name }

// setFail scripts the next k queries (k = -1: all) to fail with status.
func (f *fakeBackend) setFail(status, k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failStatus = status
	f.failLeft = k
}

func (f *fakeBackend) setTag(hash string, gen uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hash, f.gen = hash, gen
}

func (f *fakeBackend) queries() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.queried
}

func (f *fakeBackend) Query(ctx context.Context, seed, topk int, full, exact bool) (Partial, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.queried++
	if f.failStatus != 0 && f.failLeft != 0 {
		if f.failLeft > 0 {
			f.failLeft--
		}
		return Partial{}, &BackendError{Replica: f.name, Status: f.failStatus, Msg: "scripted failure"}
	}
	p := Partial{Seed: seed, Replica: f.name, Generation: f.gen, IndexHash: f.hash}
	if f.staleLeft > 0 {
		f.staleLeft--
		p.Generation, p.IndexHash = f.staleTag.Gen, f.staleTag.Hash
	}
	// A recognizable per-seed answer so merge results are checkable:
	// 0.5 at the seed, 0.25 at its ring neighbour, zero elsewhere.
	if full {
		p.Scores = make([]float64, f.n)
		p.Scores[seed%f.n] = 0.5
		p.Scores[(seed+1)%f.n] = 0.25
	} else {
		p.Top = []server.RankedEntry{
			{Node: seed % f.n, Score: 0.5},
			{Node: (seed + 1) % f.n, Score: 0.25},
		}
		if topk > 0 && topk < len(p.Top) {
			p.Top = p.Top[:topk]
		}
	}
	return p, nil
}

func (f *fakeBackend) Health(ctx context.Context) (Health, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.healthErr != nil {
		return Health{}, f.healthErr
	}
	return Health{Nodes: f.n, Generation: f.gen, IndexHash: f.hash}, nil
}

// testConfig keeps retries fast and the background checker off so tests
// drive membership deterministically via CheckNow.
func testConfig() Config {
	return Config{HealthInterval: -1, RetryBackoff: time.Millisecond}
}

func newTestCoordinator(t *testing.T, cfg Config, fakes ...*fakeBackend) *Coordinator {
	t.Helper()
	backends := make([]Backend, len(fakes))
	for i, f := range fakes {
		backends[i] = f
	}
	c, err := New(backends, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestCoordinatorAffinity: every query for a seed lands on the seed's ring
// owner, and repeated queries never wander.
func TestCoordinatorAffinity(t *testing.T) {
	fakes := []*fakeBackend{newFake("r0", 100), newFake("r1", 100), newFake("r2", 100)}
	c := newTestCoordinator(t, testConfig(), fakes...)
	for seed := 0; seed < 200; seed++ {
		want := c.Ring().Owner(seed)
		for rep := 0; rep < 3; rep++ {
			p, err := c.Query(context.Background(), seed, 10, false)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if p.Replica != want {
				t.Fatalf("seed %d served by %q, owner is %q", seed, p.Replica, want)
			}
		}
	}
}

// TestCoordinatorRetryToSuccessor: a failing owner is retried on the ring
// successor; the answer comes back and the retry is counted.
func TestCoordinatorRetryToSuccessor(t *testing.T) {
	fakes := map[string]*fakeBackend{
		"r0": newFake("r0", 10), "r1": newFake("r1", 10), "r2": newFake("r2", 10),
	}
	c := newTestCoordinator(t, testConfig(), fakes["r0"], fakes["r1"], fakes["r2"])
	seed := 0
	order := c.Ring().Successors(seed, 3)
	fakes[order[0]].setFail(http.StatusServiceUnavailable, -1)

	p, err := c.Query(context.Background(), seed, 10, false)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if p.Replica != order[1] {
		t.Fatalf("served by %q, want first successor %q", p.Replica, order[1])
	}
	var retried int64
	for _, rs := range c.Replicas() {
		retried += rs.Retries
	}
	if retried == 0 {
		t.Fatal("retry not counted")
	}
}

// TestCoordinatorNonRetryableFailsFast: validation errors (4xx) never walk
// the ring — the successor would reject identically.
func TestCoordinatorNonRetryableFailsFast(t *testing.T) {
	fakes := []*fakeBackend{newFake("r0", 10), newFake("r1", 10)}
	for _, f := range fakes {
		f.setFail(http.StatusBadRequest, -1)
	}
	c := newTestCoordinator(t, testConfig(), fakes...)
	_, err := c.Query(context.Background(), 3, 10, false)
	var be *BackendError
	if !errors.As(err, &be) || be.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 BackendError", err)
	}
	if total := fakes[0].queries() + fakes[1].queries(); total != 1 {
		t.Fatalf("%d attempts for a non-retryable error, want 1", total)
	}
}

// TestCoordinatorBatchPartialFailure: with retries disabled, seeds owned by
// a broken replica fail individually; the batch degrades instead of failing
// and reports which shards answered.
func TestCoordinatorBatchPartialFailure(t *testing.T) {
	fakes := map[string]*fakeBackend{
		"r0": newFake("r0", 100), "r1": newFake("r1", 100), "r2": newFake("r2", 100),
	}
	cfg := testConfig()
	cfg.Retries = -1 // no retry: failures must surface as degraded entries
	c := newTestCoordinator(t, cfg, fakes["r0"], fakes["r1"], fakes["r2"])
	bad := c.Ring().Owner(0)
	fakes[bad].setFail(http.StatusInternalServerError, -1)

	seeds := make([]int, 60)
	for i := range seeds {
		seeds[i] = i
	}
	res, err := c.Batch(context.Background(), seeds, 5)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if !res.Degraded {
		t.Fatal("batch with a dead shard must be degraded")
	}
	if len(res.ShardsFailed) != 1 || res.ShardsFailed[0] != bad {
		t.Fatalf("ShardsFailed = %v, want [%s]", res.ShardsFailed, bad)
	}
	if len(res.ShardsOK) != 2 {
		t.Fatalf("ShardsOK = %v, want the two live shards", res.ShardsOK)
	}
	ring := c.Ring()
	for i, seed := range seeds {
		owner := ring.Owner(seed)
		if owner == bad {
			if res.Results[i] != nil || res.Errs[i] == nil {
				t.Fatalf("seed %d owned by dead shard: want a per-seed error", seed)
			}
		} else if res.Results[i] == nil {
			t.Fatalf("seed %d owned by live shard %q failed: %v", seed, owner, res.Errs[i])
		}
	}
}

// TestCoordinatorEjectionReadmission: consecutive health-probe failures
// eject a replica from the ring (its keys move to survivors); consecutive
// successes readmit it (keys move back).
func TestCoordinatorEjectionReadmission(t *testing.T) {
	fakes := map[string]*fakeBackend{
		"r0": newFake("r0", 100), "r1": newFake("r1", 100), "r2": newFake("r2", 100),
	}
	c := newTestCoordinator(t, testConfig(), fakes["r0"], fakes["r1"], fakes["r2"])
	victim := c.Ring().Owner(42)
	fakes[victim].mu.Lock()
	fakes[victim].healthErr = errors.New("probe refused")
	fakes[victim].mu.Unlock()

	ctx := context.Background()
	for i := 0; i < c.cfg.FailThreshold-1; i++ {
		c.CheckNow(ctx)
		if !c.Ring().Has(victim) {
			t.Fatalf("ejected after %d failures, threshold is %d", i+1, c.cfg.FailThreshold)
		}
	}
	c.CheckNow(ctx)
	if c.Ring().Has(victim) {
		t.Fatal("not ejected at FailThreshold")
	}
	// Ejected replica's keys now route to survivors.
	p, err := c.Query(ctx, 42, 10, false)
	if err != nil {
		t.Fatalf("Query after ejection: %v", err)
	}
	if p.Replica == victim {
		t.Fatal("query routed to ejected replica")
	}

	fakes[victim].mu.Lock()
	fakes[victim].healthErr = nil
	fakes[victim].mu.Unlock()
	for i := 0; i < c.cfg.ReadmitThreshold; i++ {
		c.CheckNow(ctx)
	}
	if !c.Ring().Has(victim) {
		t.Fatal("not readmitted after ReadmitThreshold successes")
	}
	p, err = c.Query(ctx, 42, 10, false)
	if err != nil {
		t.Fatalf("Query after readmission: %v", err)
	}
	if p.Replica != victim {
		t.Fatalf("seed 42 served by %q after readmission, want owner %q back", p.Replica, victim)
	}
	var ej, re int64
	for _, rs := range c.Replicas() {
		ej += rs.Ejections
		re += rs.Readmissions
	}
	if ej != 1 || re != 1 {
		t.Fatalf("ejections=%d readmissions=%d, want 1/1", ej, re)
	}
}

// TestCoordinatorAllEjected: an empty ring answers ErrNoReplicas instead of
// hanging or panicking.
func TestCoordinatorAllEjected(t *testing.T) {
	f := newFake("r0", 10)
	f.healthErr = errors.New("down")
	c := newTestCoordinator(t, testConfig(), f)
	for i := 0; i < c.cfg.FailThreshold; i++ {
		c.CheckNow(context.Background())
	}
	if _, err := c.Query(context.Background(), 1, 10, false); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v, want ErrNoReplicas", err)
	}
	if _, err := c.Batch(context.Background(), []int{1}, 10); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("batch err = %v, want ErrNoReplicas", err)
	}
}

// TestCoordinatorPersonalizedMerge: the linearity merge sums weighted
// per-seed vectors from the owning replicas under one tag.
func TestCoordinatorPersonalizedMerge(t *testing.T) {
	fakes := []*fakeBackend{newFake("r0", 10), newFake("r1", 10), newFake("r2", 10)}
	c := newTestCoordinator(t, testConfig(), fakes...)
	m, err := c.Personalized(context.Background(), map[int]float64{2: 1, 7: 3}, 5)
	if err != nil {
		t.Fatalf("Personalized: %v", err)
	}
	if m.Tag.Hash != "abc" || m.Tag.Gen != 1 {
		t.Fatalf("tag = %v, want abc@g1", m.Tag)
	}
	// Seeds 2 and 7 contribute 0.5 at themselves (excluded as seeds) and
	// 0.25 at seed+1; weights normalize to 1/4 and 3/4.
	want3, want8 := 0.25*0.25, 0.75*0.25
	got := map[int]float64{}
	for _, e := range m.Top {
		got[e.Node] = e.Score
	}
	if len(got) != 2 {
		t.Fatalf("top = %v, want nodes 3 and 8 only", m.Top)
	}
	const eps = 1e-12
	if d := got[3] - want3; d > eps || d < -eps {
		t.Fatalf("node 3 score %v, want %v", got[3], want3)
	}
	if d := got[8] - want8; d > eps || d < -eps {
		t.Fatalf("node 8 score %v, want %v", got[8], want8)
	}
}

// TestCoordinatorGenerationMixRefused is the merge-guard regression: when
// replicas persistently disagree on (index hash, generation) — a rolling
// rebuild window — the personalized merge must refuse rather than sum
// scores from two different indexes.
func TestCoordinatorGenerationMixRefused(t *testing.T) {
	fakes := []*fakeBackend{newFake("r0", 10), newFake("r1", 10), newFake("r2", 10)}
	c := newTestCoordinator(t, testConfig(), fakes...)
	// Seeds 0..9 spread across replicas; find two owned by different
	// replicas and put their owners on different generations.
	ring := c.Ring()
	seedA := 0
	seedB := -1
	for s := 1; s < 10; s++ {
		if ring.Owner(s) != ring.Owner(seedA) {
			seedB = s
			break
		}
	}
	if seedB < 0 {
		t.Skip("all probe seeds landed on one replica")
	}
	for _, f := range fakes {
		if f.name == ring.Owner(seedB) {
			f.setTag("abc", 2) // one generation ahead, persistently
		}
	}
	_, err := c.Personalized(context.Background(), map[int]float64{seedA: 1, seedB: 1}, 5)
	if !errors.Is(err, ErrGenerationMix) {
		t.Fatalf("err = %v, want ErrGenerationMix", err)
	}
}

// TestCoordinatorGenerationMixHealedByRefetch: a transient mix — the
// minority replica finishes its swap between the first gather and the
// re-fetch — converges instead of failing.
func TestCoordinatorGenerationMixHealedByRefetch(t *testing.T) {
	fakes := []*fakeBackend{newFake("r0", 10), newFake("r1", 10), newFake("r2", 10)}
	c := newTestCoordinator(t, testConfig(), fakes...)
	ring := c.Ring()
	seedA := 0
	seedB := -1
	for s := 1; s < 10; s++ {
		if ring.Owner(s) != ring.Owner(seedA) {
			seedB = s
			break
		}
	}
	if seedB < 0 {
		t.Skip("all probe seeds landed on one replica")
	}
	// Everyone is on generation 2, but seedB's owner answers its first
	// query with the pre-swap tag — the shape of a swap completing between
	// the first gather and the re-fetch.
	for _, f := range fakes {
		f.setTag("abc", 2)
		if f.name == ring.Owner(seedB) {
			f.mu.Lock()
			f.staleLeft = 1
			f.staleTag = Tag{Hash: "abc", Gen: 1}
			f.mu.Unlock()
		}
	}
	m, err := c.Personalized(context.Background(), map[int]float64{seedA: 1, seedB: 1}, 5)
	if err != nil {
		t.Fatalf("Personalized: %v", err)
	}
	if m.Refetched == 0 {
		t.Fatal("expected the stale partial to be re-fetched")
	}
	if m.Tag.Gen != 2 {
		t.Fatalf("merged at generation %d, want the post-swap generation 2", m.Tag.Gen)
	}
}
