package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bepi/internal/core"
	"bepi/internal/obs"
	"bepi/internal/qexec"
	"bepi/internal/server"
)

// Errors reported by the coordinator.
var (
	// ErrNoReplicas means every replica is ejected (or none were
	// configured); the cluster cannot answer.
	ErrNoReplicas = errors.New("cluster: no healthy replicas")
	// ErrGenerationMix means a scatter-gather merge could not assemble
	// partials from a single engine generation — a rebuild was swapping
	// engines mid-gather and the retry pass still straddled it. The query
	// is safe to retry.
	ErrGenerationMix = errors.New("cluster: partial results span index generations, refusing to merge")
)

// Config tunes the coordinator. Zero values select defaults.
type Config struct {
	// Vnodes is the virtual-node count per replica (default DefaultVnodes).
	Vnodes int
	// HealthInterval is the probe period of the background health checker
	// (default 2s; negative disables the background loop — probes then run
	// only via CheckNow, which tests use for determinism).
	HealthInterval time.Duration
	// FailThreshold is how many consecutive probe failures eject a replica
	// from the ring (default 3).
	FailThreshold int
	// ReadmitThreshold is how many consecutive probe successes readmit an
	// ejected replica (default 2).
	ReadmitThreshold int
	// Retries bounds how many ring successors a failed query is retried on
	// (default 2; 0 disables retry).
	Retries int
	// RetryBackoff is the base wait before each retry, doubling per
	// attempt; a replica's Retry-After hint overrides it when longer
	// (default 5ms). The wait honors the caller's context.
	RetryBackoff time.Duration
	// AttemptTimeout bounds each replica attempt (default 10s). A timed-out
	// attempt counts as a retryable replica failure (504), not a caller
	// cancellation.
	AttemptTimeout time.Duration
	// FullVectorMerge forces Personalized to gather full score vectors and
	// merge them (the pre-rank-merge behavior) instead of attempting the
	// top-k rank merge first. Both produce bit-identical results — the rank
	// merge falls back to the full merge whenever it cannot certify
	// exactness — so this is an A-B/debugging knob, not a correctness one.
	FullVectorMerge bool
	// Obs is the coordinator's observability bundle: its tracer opens the
	// root span of every distributed trace (replicas attach under it via
	// the propagated X-Bepi-Trace context), and its flight recorder logs
	// routing events (retries, ejections, generation mixes). Nil selects a
	// default enabled observer sampling 1 query in DefaultTraceSample;
	// pass obs.Disabled to turn the layer off.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ReadmitThreshold <= 0 {
		c.ReadmitThreshold = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 10 * time.Second
	}
	if c.Obs == nil {
		c.Obs = obs.New(obs.Options{TraceSample: qexec.DefaultTraceSample})
	}
	return c
}

// replica is the coordinator's per-backend state: health-checker counters
// (touched only by the checker goroutine), the last health report, and
// routing metrics.
type replica struct {
	name    string
	backend Backend

	healthy    atomic.Bool
	consecFail int // health-checker goroutine only
	consecOK   int // health-checker goroutine only
	lastHealth atomic.Pointer[Health]

	routed       atomic.Int64
	errs         atomic.Int64
	retries      atomic.Int64
	ejections    atomic.Int64
	readmissions atomic.Int64
	latency      *obs.Histogram
}

// Coordinator fronts a fixed set of replica backends with consistent-hash
// routing, health-driven ring membership, and generation-aware
// scatter-gather. It is safe for concurrent use.
type Coordinator struct {
	cfg      Config
	replicas map[string]*replica // immutable after New
	names    []string            // sorted

	ring atomic.Pointer[Ring]
	mu   sync.Mutex // serializes ring membership transitions

	// obs carries the coordinator's tracer (root spans of distributed
	// traces) and flight recorder. Never nil after New.
	obs *obs.Observer

	// Scatter-gather counters.
	batches    atomic.Int64
	merges     atomic.Int64
	mixRefused atomic.Int64
	degraded   atomic.Int64
	// refetches counts partials re-queried to converge a gather on one
	// engine generation (the minority side of a mid-gather swap).
	refetches atomic.Int64
	// Rank-merge counters: merges answered from per-shard top-k lists, how
	// often the candidate lists had to be escalated (re-fetched wider), and
	// how often the merge gave up and fell back to full vectors.
	rankMerges      atomic.Int64
	rankEscalations atomic.Int64
	fullFallbacks   atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a coordinator over the given backends and starts its health
// checker (unless disabled). All replicas start healthy and on the ring;
// the first probe round corrects that within one HealthInterval. Call
// Close to stop the checker.
func New(backends []Backend, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(backends) == 0 {
		return nil, fmt.Errorf("cluster: at least one replica backend is required")
	}
	c := &Coordinator{
		cfg:      cfg,
		obs:      cfg.Obs,
		replicas: make(map[string]*replica, len(backends)),
		stop:     make(chan struct{}),
	}
	for _, b := range backends {
		if _, dup := c.replicas[b.Name()]; dup {
			return nil, fmt.Errorf("cluster: duplicate replica name %q", b.Name())
		}
		r := &replica{
			name:    b.Name(),
			backend: b,
			latency: obs.NewHistogram("replica_latency", obs.LatencyBuckets()),
		}
		r.healthy.Store(true)
		c.replicas[b.Name()] = r
		c.names = append(c.names, b.Name())
	}
	sort.Strings(c.names)
	c.ring.Store(NewRing(c.names, cfg.Vnodes))
	if cfg.HealthInterval > 0 {
		c.wg.Add(1)
		go c.healthLoop()
	}
	return c, nil
}

// Close stops the health checker. It does not close the backends.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Ring returns the current routing ring (healthy members only).
func (c *Coordinator) Ring() *Ring { return c.ring.Load() }

// Observer exposes the coordinator's observability bundle (tracer + flight
// recorder) for the HTTP handler and tests.
func (c *Coordinator) Observer() *obs.Observer { return c.obs }

// beginTrace opens the coordinator-side trace record for one cluster
// operation and returns a context carrying its trace context, so replica
// attempts — and the shard processes behind them, via the propagated
// X-Bepi-Trace header — record under the same trace ID with this record as
// their parent span. Inside an already-traced context (a batch fan-out leg,
// or a request that arrived with X-Bepi-Trace) the record is forced
// regardless of sampling: the root decided this query is traced.
func (c *Coordinator) beginTrace(ctx context.Context, kind string, seed int) (*obs.ActiveTrace, context.Context) {
	at := c.obs.Tracer.BeginCtx(ctx, kind, seed)
	if at == nil {
		return nil, ctx
	}
	return at, obs.WithTrace(ctx, at.Context())
}

// Query answers a single-seed query, routing to the seed's ring owner for
// cache affinity and retrying ring successors (with back-off honoring the
// replica's Retry-After hint) on retryable failures.
func (c *Coordinator) Query(ctx context.Context, seed, topk int, full bool) (Partial, error) {
	return c.query(ctx, seed, topk, full, false)
}

// query is Query with the exact flag threaded through to the replica: a
// top-k fetch with exact set comes from a full-tolerance solve (the rank
// merge requires exact scores), otherwise replicas serve the bound-pruned
// fast path.
func (c *Coordinator) query(ctx context.Context, seed, topk int, full, exact bool) (Partial, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	at, ctx := c.beginTrace(ctx, "cluster.query", seed)
	p, err := c.route(ctx, at, seed, topk, full, exact)
	if at != nil {
		if err != nil {
			at.SetErr(err)
		} else {
			at.SetTag("shard", p.Replica)
			at.SetTag("generation", strconv.FormatUint(p.Generation, 10))
			if p.Cached {
				at.SetCached()
			}
		}
		at.Finish(c.obs.Now())
	}
	return p, err
}

// route walks the seed's ring successors: the owner first, then up to
// Retries fallbacks, each behind a back-off. Every attempt (and every
// back-off wait) becomes a span on the coordinator's trace record, tagged
// with the shard and attempt number; retries and exhausted routes go to the
// flight recorder.
func (c *Coordinator) route(ctx context.Context, at *obs.ActiveTrace, seed, topk int, full, exact bool) (Partial, error) {
	ring := c.ring.Load()
	if ring.Len() == 0 {
		return Partial{}, ErrNoReplicas
	}
	order := ring.Successors(seed, c.cfg.Retries+1)
	var lastErr error
	for i, name := range order {
		if i > 0 {
			c.replicas[name].retries.Add(1)
			c.obs.Events.Record("retry", at.TraceID(), map[string]string{
				"seed":    strconv.Itoa(seed),
				"shard":   name,
				"attempt": strconv.Itoa(i + 1),
				"cause":   lastErr.Error(),
			})
			bStart := c.obs.Now()
			if err := c.backoff(ctx, i, lastErr); err != nil {
				return Partial{}, err
			}
			at.AddSpan("backoff", bStart, c.obs.Now())
		}
		aStart := c.obs.Now()
		p, err := c.queryReplica(ctx, c.replicas[name], seed, topk, full, exact)
		at.AddSpanTags("attempt", aStart, c.obs.Now(), map[string]string{
			"shard":   name,
			"attempt": strconv.Itoa(i + 1),
		})
		if err == nil {
			return p, nil
		}
		lastErr = err
		if !Retryable(err) {
			break
		}
	}
	return Partial{}, lastErr
}

// backoff waits before retry attempt i (1-based): the replica's
// Retry-After hint when it gave one, otherwise exponential from
// RetryBackoff, aborting early if the caller's context dies.
func (c *Coordinator) backoff(ctx context.Context, attempt int, lastErr error) error {
	wait := c.cfg.RetryBackoff << (attempt - 1)
	if ra := RetryAfterOf(lastErr); ra > wait {
		wait = ra
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// queryReplica runs one attempt against one replica under the per-attempt
// timeout, recording routing metrics. An attempt-timeout is reported as a
// retryable 504 BackendError rather than a caller cancellation.
func (c *Coordinator) queryReplica(ctx context.Context, rep *replica, seed, topk int, full, exact bool) (Partial, error) {
	rep.routed.Add(1)
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	start := time.Now()
	p, err := rep.backend.Query(actx, seed, topk, full, exact)
	rep.latency.Observe(time.Since(start).Seconds())
	if err != nil {
		rep.errs.Add(1)
		if actx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			return Partial{}, &BackendError{
				Replica: rep.name,
				Status:  http.StatusGatewayTimeout,
				Msg:     fmt.Sprintf("attempt timed out after %v", c.cfg.AttemptTimeout),
			}
		}
		return Partial{}, err
	}
	return p, nil
}

// BatchResult is the gathered answer to a multi-seed batch query.
// Results[i] answers Seeds[i] (nil when that seed failed on the owner and
// every retried successor). Degraded is true when any seed failed; the
// ShardsOK/ShardsFailed sets say which replicas answered and which were
// involved in failures. MixedTags is true when the per-seed rankings came
// from more than one (index hash, generation) — batch entries are
// independent rankings, never merged, so a mix is reported rather than
// refused.
type BatchResult struct {
	Seeds        []int
	Results      []*Partial
	Errs         []error
	ShardsOK     []string
	ShardsFailed []string
	Degraded     bool
	MixedTags    bool
}

// Batch scatter-gathers independent single-seed queries: each seed routes
// to its own ring owner (preserving cache affinity) concurrently, and
// per-replica failures degrade the response instead of failing it.
func (c *Coordinator) Batch(ctx context.Context, seeds []int, topk int) (BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.ring.Load().Len() == 0 {
		return BatchResult{}, ErrNoReplicas
	}
	c.batches.Add(1)
	at, ctx := c.beginTrace(ctx, "cluster.batch", len(seeds))
	res := BatchResult{
		Seeds:   seeds,
		Results: make([]*Partial, len(seeds)),
		Errs:    make([]error, len(seeds)),
	}
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i, seed int) {
			defer wg.Done()
			p, err := c.Query(ctx, seed, topk, false)
			if err != nil {
				res.Errs[i] = err
				return
			}
			res.Results[i] = &p
		}(i, seed)
	}
	wg.Wait()

	okShards := map[string]bool{}
	failShards := map[string]bool{}
	tags := map[Tag]bool{}
	for i, p := range res.Results {
		if p == nil {
			res.Degraded = true
			var be *BackendError
			if errors.As(res.Errs[i], &be) {
				failShards[be.Replica] = true
			}
			continue
		}
		okShards[p.Replica] = true
		tags[p.Tag()] = true
	}
	if res.Degraded {
		c.degraded.Add(1)
		c.obs.Events.Record("degraded_batch", at.TraceID(), map[string]string{
			"seeds":  strconv.Itoa(len(seeds)),
			"failed": strconv.Itoa(len(failShards)),
		})
	}
	res.MixedTags = len(tags) > 1
	if res.MixedTags {
		c.obs.Events.Record("generation_mix", at.TraceID(), map[string]string{
			"kind": "batch", "tags": strconv.Itoa(len(tags)),
		})
	}
	res.ShardsOK = sortedKeys(okShards)
	res.ShardsFailed = sortedKeys(failShards)
	if at != nil {
		at.SetBatch(len(seeds))
		at.SetTag("shards_ok", strconv.Itoa(len(res.ShardsOK)))
		if res.Degraded {
			at.SetTag("degraded", "true")
		}
		at.Finish(c.obs.Now())
	}
	return res, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merged is a personalized query assembled from per-seed partials.
type Merged struct {
	Top []server.RankedEntry
	// Tag is the single (index hash, generation) every merged partial
	// carried.
	Tag Tag
	// Replicas are the shards that contributed partials.
	Replicas []string
	// Refetched counts partials re-queried to converge on one tag.
	Refetched int
	// CacheHits counts partials served from replica caches.
	CacheHits int
	// Mode says how the merge was assembled: "rank" (per-shard top-k lists,
	// first candidate width), "rank-escalated" (lists had to be re-fetched
	// wider once), or "full" (full score vectors — the fallback, or forced
	// by Config.FullVectorMerge). All modes return identical rankings.
	Mode string
}

// Personalized answers a multi-seed PPR query by linear decomposition:
// RWR is linear in the restart vector, so ppr(Σᵢ wᵢ·eᵢ) = Σᵢ wᵢ·ppr(eᵢ),
// and each single-seed solve routes to the replica that owns that seed —
// exactly the per-seed cache the affinity routing has been warming.
//
// By default the coordinator gathers per-seed top-k' RANKINGS (k' a small
// multiple of the requested k, with exact full-tolerance scores) instead
// of full score vectors, and merges them threshold-algorithm style: a
// node's merged lower bound sums the list entries that name it, its upper
// bound adds each absent list's tail score. When the k selected nodes are
// covered by every list and their exact merged scores strictly clear
// every other candidate's upper bound (and the all-tails bound on unseen
// nodes), the ranking is provably identical to the full-vector merge —
// and moved k'·|seeds| ranked entries over the wire instead of
// |seeds|·N scores. If the certificate does not close, the candidate
// lists are re-fetched once at 4× the width; if it still does not close
// (massive ties, near-uniform scores), the coordinator falls back to the
// full-vector merge, so exactness never depends on the fast path.
//
// Merging is generation-guarded in every mode: every partial must carry
// the same (index hash, generation) tag. If a rebuild swaps engines
// mid-gather, the minority partials are re-fetched once (a swapped
// replica answers the re-fetch from its new engine); if the gather still
// straddles generations — e.g. a rolling rebuild where some replicas
// haven't swapped yet — the merge is refused with ErrGenerationMix rather
// than ever summing scores from two different indexes.
func (c *Coordinator) Personalized(ctx context.Context, weights map[int]float64, topk int) (Merged, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.ring.Load().Len() == 0 {
		return Merged{}, ErrNoReplicas
	}
	if len(weights) == 0 {
		return Merged{}, &BackendError{Status: http.StatusBadRequest, Msg: "weights must be non-empty"}
	}
	var sum float64
	for node, w := range weights {
		if w < 0 {
			return Merged{}, &BackendError{Status: http.StatusBadRequest, Msg: fmt.Sprintf("negative weight for node %d", node)}
		}
		sum += w
	}
	if sum <= 0 {
		return Merged{}, &BackendError{Status: http.StatusBadRequest, Msg: "weights must sum to a positive value"}
	}

	seeds := make([]int, 0, len(weights))
	for node := range weights {
		seeds = append(seeds, node)
	}
	sort.Ints(seeds)
	if topk <= 0 {
		topk = 10
	}

	at, ctx := c.beginTrace(ctx, "cluster.personalized", len(seeds))
	m, err := c.merge(ctx, weights, sum, seeds, topk)
	if at != nil {
		if err != nil {
			at.SetErr(err)
		} else {
			at.SetBatch(len(seeds))
			at.SetTag("mode", m.Mode)
			at.SetTag("generation", strconv.FormatUint(m.Tag.Gen, 10))
			if m.Refetched > 0 {
				at.SetTag("refetched", strconv.Itoa(m.Refetched))
			}
		}
		at.Finish(c.obs.Now())
	}
	return m, err
}

// merge runs the personalized merge under an already-opened trace context:
// the rank merge first (unless disabled), the full-vector merge as the
// certified-exact fallback.
func (c *Coordinator) merge(ctx context.Context, weights map[int]float64, sum float64, seeds []int, topk int) (Merged, error) {
	if !c.cfg.FullVectorMerge {
		if m, ok, err := c.rankMerge(ctx, weights, sum, seeds, topk); err != nil {
			return Merged{}, err
		} else if ok {
			return m, nil
		}
		c.fullFallbacks.Add(1)
	}
	return c.fullMerge(ctx, weights, sum, seeds, topk)
}

// gather fetches one partial per seed concurrently (ranking of width topk
// when full is false, the whole score vector otherwise) and enforces the
// generation guard: every partial must end up under one (index hash,
// generation) tag, with one re-fetch pass for the minority side of a
// mid-gather engine swap. A failed partial fails the gather — a weighted
// sum missing one component is silently wrong (unlike Batch, whose
// entries are independent).
func (c *Coordinator) gather(ctx context.Context, seeds []int, topk int, full, exact bool) ([]Partial, int, error) {
	partials := make([]Partial, len(seeds))
	errs := make([]error, len(seeds))
	fetch := func(idxs []int) {
		var wg sync.WaitGroup
		for _, i := range idxs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				partials[i], errs[i] = c.query(ctx, seeds[i], topk, full, exact)
			}(i)
		}
		wg.Wait()
	}
	all := make([]int, len(seeds))
	for i := range all {
		all[i] = i
	}
	fetch(all)
	for i, err := range errs {
		if err != nil {
			return nil, 0, fmt.Errorf("cluster: partial for seed %d: %w", seeds[i], err)
		}
	}
	refetched := 0
	stale := mismatched(partials)
	if len(stale) > 0 {
		refetched = len(stale)
		c.refetches.Add(int64(refetched))
		traceID := ""
		if tc, ok := obs.TraceFrom(ctx); ok {
			traceID = tc.TraceID
		}
		c.obs.Events.Record("generation_refetch", traceID, map[string]string{
			"partials": strconv.Itoa(len(partials)),
			"stale":    strconv.Itoa(refetched),
		})
		fetch(stale)
		for _, i := range stale {
			if errs[i] != nil {
				return nil, 0, fmt.Errorf("cluster: re-fetch for seed %d: %w", seeds[i], errs[i])
			}
		}
		if len(mismatched(partials)) > 0 {
			c.mixRefused.Add(1)
			c.obs.Events.Record("generation_mix", traceID, map[string]string{
				"kind": "merge", "partials": strconv.Itoa(len(partials)),
			})
			return nil, 0, ErrGenerationMix
		}
	}
	return partials, refetched, nil
}

// fullMerge is the full-vector merge: gather every seed's whole score
// vector, weighted-sum them, rank. The reference path the rank merge must
// match bit-for-bit.
func (c *Coordinator) fullMerge(ctx context.Context, weights map[int]float64, sum float64, seeds []int, topk int) (Merged, error) {
	partials, refetched, err := c.gather(ctx, seeds, 0, true, false)
	if err != nil {
		return Merged{}, err
	}
	c.merges.Add(1)
	merged := make([]float64, len(partials[0].Scores))
	shards := map[string]bool{}
	hits := 0
	for i, p := range partials {
		w := weights[seeds[i]] / sum
		if len(p.Scores) != len(merged) {
			// Same tag implies same node count; a length mismatch means a
			// replica is serving a different graph under the same tag.
			return Merged{}, fmt.Errorf("cluster: replica %s returned %d scores, want %d",
				p.Replica, len(p.Scores), len(merged))
		}
		for n, s := range p.Scores {
			merged[n] += w * s
		}
		shards[p.Replica] = true
		if p.Cached {
			hits++
		}
	}
	isSeed := make(map[int]bool, len(seeds))
	for _, s := range seeds {
		isSeed[s] = true
	}
	ranked := core.RankTopKFunc(merged, topk, func(node int) bool {
		return isSeed[node] || merged[node] <= 0
	})
	top := make([]server.RankedEntry, len(ranked))
	for i, t := range ranked {
		top[i] = server.RankedEntry{Node: t.Node, Score: t.Score}
	}
	return Merged{
		Top:       top,
		Tag:       partials[0].Tag(),
		Replicas:  sortedKeys(shards),
		Refetched: refetched,
		CacheHits: hits,
		Mode:      "full",
	}, nil
}

// rankMergeBaseWidth is the minimum per-seed candidate-list width the rank
// merge fetches; wider lists close the certificate more often at the cost
// of bandwidth, and the width also scales with the requested k.
const rankMergeBaseWidth = 64

// rankMerge attempts the threshold-algorithm merge over per-seed top-k'
// lists with exact scores. ok=false (with nil error) means the exactness
// certificate did not close even after one escalation and the caller
// should fall back to the full-vector merge.
func (c *Coordinator) rankMerge(ctx context.Context, weights map[int]float64, sum float64, seeds []int, topk int) (Merged, bool, error) {
	width := 4 * topk
	if width < rankMergeBaseWidth {
		width = rankMergeBaseWidth
	}
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			width *= 4
			c.rankEscalations.Add(1)
		}
		partials, refetched, err := c.gather(ctx, seeds, width, false, true)
		if err != nil {
			return Merged{}, false, err
		}
		top, ok := mergeRanked(partials, seeds, weights, sum, width, topk)
		if !ok {
			continue
		}
		c.merges.Add(1)
		c.rankMerges.Add(1)
		shards := map[string]bool{}
		hits := 0
		for _, p := range partials {
			shards[p.Replica] = true
			if p.Cached {
				hits++
			}
		}
		mode := "rank"
		if attempt > 0 {
			mode = "rank-escalated"
		}
		return Merged{
			Top:       top,
			Tag:       partials[0].Tag(),
			Replicas:  sortedKeys(shards),
			Refetched: refetched,
			CacheHits: hits,
			Mode:      mode,
		}, true, nil
	}
	return Merged{}, false, nil
}

// mergeRanked runs the bounded merge over per-seed candidate lists and
// reports whether the result is certified identical to the full-vector
// merge.
//
// Bounds: node n's merged score is Σᵢ wᵢ·sᵢ(n) with every sᵢ(n) ≥ 0.
// For lists that contain n the term is exact; a list of full width that
// omits n bounds its term by wᵢ·tᵢ (tᵢ = the list's weakest score), and a
// list shorter than the requested width is the replica's complete ranking,
// so omission there means the term is exactly 0 (n is that list's
// excluded seed — and seeds are excluded from the merged ranking anyway).
// The certificate demands (a) each selected node appears in every list,
// making its merged score exact — and summed in ascending-seed order, the
// same floating-point accumulation order as the full merge, hence
// bit-identical; and (b) the weakest selected score strictly exceeds
// every unselected candidate's upper bound and the all-tails bound on
// nodes no list surfaced. Strictness makes ties uncertifiable by design:
// equal-score sets fall back to the full merge rather than risk a
// tie-break on approximate information.
func mergeRanked(partials []Partial, seeds []int, weights map[int]float64, sum float64, width, topk int) ([]server.RankedEntry, bool) {
	m := len(partials)
	// Per-list weighted tail bounds and the bound on wholly unseen nodes.
	tails := make([]float64, m)
	unseenUB := 0.0
	for i, p := range partials {
		if len(p.Top) >= width && len(p.Top) > 0 {
			tails[i] = weights[seeds[i]] / sum * p.Top[len(p.Top)-1].Score
		}
		unseenUB += tails[i]
	}

	// Candidate table: per-list exact scores for every node any list names.
	// Missing entries are NaN (a zero score is meaningful and must not be
	// confused with absence).
	cands := map[int][]float64{}
	for i, p := range partials {
		for _, e := range p.Top {
			sc, ok := cands[e.Node]
			if !ok {
				sc = make([]float64, m)
				for j := range sc {
					sc[j] = math.NaN()
				}
				cands[e.Node] = sc
			}
			sc[i] = e.Score
		}
	}

	isSeed := make(map[int]bool, len(seeds))
	for _, s := range seeds {
		isSeed[s] = true
	}

	type bound struct {
		lb      float64 // exact when covered
		ub      float64
		covered bool
	}
	bounds := make(map[int]bound, len(cands))
	sel := make([]core.Ranked, 0, len(cands))
	for node, sc := range cands {
		if isSeed[node] {
			continue
		}
		b := bound{covered: true}
		for i := 0; i < m; i++ {
			if math.IsNaN(sc[i]) {
				// Absent from a full-width list: bounded by its tail.
				// Absent from a short list: the list was complete, the
				// score is exactly zero (contributes to neither bound).
				b.ub += tails[i]
				if tails[i] > 0 {
					b.covered = false
				}
				continue
			}
			// Same expression and ascending-seed order as the full merge's
			// accumulation — covered nodes get bit-identical sums.
			b.lb += weights[seeds[i]] / sum * sc[i]
		}
		b.ub += b.lb
		bounds[node] = b
		sel = append(sel, core.Ranked{Node: node, Score: b.lb})
	}

	// Select the k best by lower bound under the system's total order.
	sort.Slice(sel, func(i, j int) bool { return sel[i].Outranks(sel[j]) })
	if len(sel) < topk {
		if unseenUB > 0 {
			// Not enough candidates to fill the ranking, and whether more
			// exist below the tails is unknowable from truncated lists.
			return nil, false
		}
		// Every list came back shorter than requested — each is a complete
		// ranking, so the candidate table is exhaustive and exact. The full
		// merge would return this same short ranking (it too drops
		// non-positive scores).
		topk = len(sel)
		for topk > 0 && sel[topk-1].Score <= 0 {
			topk--
		}
		if topk == 0 {
			return nil, false
		}
	}
	selected := sel[:topk]
	kth := selected[topk-1]
	if kth.Score <= unseenUB {
		return nil, false
	}
	for _, s := range selected {
		if b := bounds[s.Node]; !b.covered || b.lb <= 0 {
			return nil, false
		}
	}
	for _, u := range sel[topk:] {
		if kth.Score <= bounds[u.Node].ub {
			return nil, false
		}
	}

	top := make([]server.RankedEntry, topk)
	for i, s := range selected {
		top[i] = server.RankedEntry{Node: s.Node, Score: s.Score}
	}
	return top, true
}

// mismatched returns the indexes of partials whose tag disagrees with the
// most common tag (ties break toward the higher generation, i.e. the
// post-swap side of a rebuild).
func mismatched(partials []Partial) []int {
	counts := map[Tag]int{}
	for _, p := range partials {
		counts[p.Tag()]++
	}
	if len(counts) <= 1 {
		return nil
	}
	var want Tag
	best := -1
	for tag, n := range counts {
		if n > best || (n == best && tag.Gen > want.Gen) {
			want, best = tag, n
		}
	}
	var out []int
	for i, p := range partials {
		if p.Tag() != want {
			out = append(out, i)
		}
	}
	return out
}
