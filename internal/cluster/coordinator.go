package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bepi/internal/core"
	"bepi/internal/obs"
	"bepi/internal/server"
)

// Errors reported by the coordinator.
var (
	// ErrNoReplicas means every replica is ejected (or none were
	// configured); the cluster cannot answer.
	ErrNoReplicas = errors.New("cluster: no healthy replicas")
	// ErrGenerationMix means a scatter-gather merge could not assemble
	// partials from a single engine generation — a rebuild was swapping
	// engines mid-gather and the retry pass still straddled it. The query
	// is safe to retry.
	ErrGenerationMix = errors.New("cluster: partial results span index generations, refusing to merge")
)

// Config tunes the coordinator. Zero values select defaults.
type Config struct {
	// Vnodes is the virtual-node count per replica (default DefaultVnodes).
	Vnodes int
	// HealthInterval is the probe period of the background health checker
	// (default 2s; negative disables the background loop — probes then run
	// only via CheckNow, which tests use for determinism).
	HealthInterval time.Duration
	// FailThreshold is how many consecutive probe failures eject a replica
	// from the ring (default 3).
	FailThreshold int
	// ReadmitThreshold is how many consecutive probe successes readmit an
	// ejected replica (default 2).
	ReadmitThreshold int
	// Retries bounds how many ring successors a failed query is retried on
	// (default 2; 0 disables retry).
	Retries int
	// RetryBackoff is the base wait before each retry, doubling per
	// attempt; a replica's Retry-After hint overrides it when longer
	// (default 5ms). The wait honors the caller's context.
	RetryBackoff time.Duration
	// AttemptTimeout bounds each replica attempt (default 10s). A timed-out
	// attempt counts as a retryable replica failure (504), not a caller
	// cancellation.
	AttemptTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ReadmitThreshold <= 0 {
		c.ReadmitThreshold = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 10 * time.Second
	}
	return c
}

// replica is the coordinator's per-backend state: health-checker counters
// (touched only by the checker goroutine), the last health report, and
// routing metrics.
type replica struct {
	name    string
	backend Backend

	healthy    atomic.Bool
	consecFail int // health-checker goroutine only
	consecOK   int // health-checker goroutine only
	lastHealth atomic.Pointer[Health]

	routed       atomic.Int64
	errs         atomic.Int64
	retries      atomic.Int64
	ejections    atomic.Int64
	readmissions atomic.Int64
	latency      *obs.Histogram
}

// Coordinator fronts a fixed set of replica backends with consistent-hash
// routing, health-driven ring membership, and generation-aware
// scatter-gather. It is safe for concurrent use.
type Coordinator struct {
	cfg      Config
	replicas map[string]*replica // immutable after New
	names    []string            // sorted

	ring atomic.Pointer[Ring]
	mu   sync.Mutex // serializes ring membership transitions

	// Scatter-gather counters.
	batches    atomic.Int64
	merges     atomic.Int64
	mixRefused atomic.Int64
	degraded   atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a coordinator over the given backends and starts its health
// checker (unless disabled). All replicas start healthy and on the ring;
// the first probe round corrects that within one HealthInterval. Call
// Close to stop the checker.
func New(backends []Backend, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(backends) == 0 {
		return nil, fmt.Errorf("cluster: at least one replica backend is required")
	}
	c := &Coordinator{
		cfg:      cfg,
		replicas: make(map[string]*replica, len(backends)),
		stop:     make(chan struct{}),
	}
	for _, b := range backends {
		if _, dup := c.replicas[b.Name()]; dup {
			return nil, fmt.Errorf("cluster: duplicate replica name %q", b.Name())
		}
		r := &replica{
			name:    b.Name(),
			backend: b,
			latency: obs.NewHistogram("replica_latency", obs.LatencyBuckets()),
		}
		r.healthy.Store(true)
		c.replicas[b.Name()] = r
		c.names = append(c.names, b.Name())
	}
	sort.Strings(c.names)
	c.ring.Store(NewRing(c.names, cfg.Vnodes))
	if cfg.HealthInterval > 0 {
		c.wg.Add(1)
		go c.healthLoop()
	}
	return c, nil
}

// Close stops the health checker. It does not close the backends.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Ring returns the current routing ring (healthy members only).
func (c *Coordinator) Ring() *Ring { return c.ring.Load() }

// Query answers a single-seed query, routing to the seed's ring owner for
// cache affinity and retrying ring successors (with back-off honoring the
// replica's Retry-After hint) on retryable failures.
func (c *Coordinator) Query(ctx context.Context, seed, topk int, full bool) (Partial, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ring := c.ring.Load()
	if ring.Len() == 0 {
		return Partial{}, ErrNoReplicas
	}
	order := ring.Successors(seed, c.cfg.Retries+1)
	var lastErr error
	for i, name := range order {
		if i > 0 {
			c.replicas[name].retries.Add(1)
			if err := c.backoff(ctx, i, lastErr); err != nil {
				return Partial{}, err
			}
		}
		p, err := c.queryReplica(ctx, c.replicas[name], seed, topk, full)
		if err == nil {
			return p, nil
		}
		lastErr = err
		if !Retryable(err) {
			break
		}
	}
	return Partial{}, lastErr
}

// backoff waits before retry attempt i (1-based): the replica's
// Retry-After hint when it gave one, otherwise exponential from
// RetryBackoff, aborting early if the caller's context dies.
func (c *Coordinator) backoff(ctx context.Context, attempt int, lastErr error) error {
	wait := c.cfg.RetryBackoff << (attempt - 1)
	if ra := RetryAfterOf(lastErr); ra > wait {
		wait = ra
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// queryReplica runs one attempt against one replica under the per-attempt
// timeout, recording routing metrics. An attempt-timeout is reported as a
// retryable 504 BackendError rather than a caller cancellation.
func (c *Coordinator) queryReplica(ctx context.Context, rep *replica, seed, topk int, full bool) (Partial, error) {
	rep.routed.Add(1)
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	start := time.Now()
	p, err := rep.backend.Query(actx, seed, topk, full)
	rep.latency.Observe(time.Since(start).Seconds())
	if err != nil {
		rep.errs.Add(1)
		if actx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			return Partial{}, &BackendError{
				Replica: rep.name,
				Status:  http.StatusGatewayTimeout,
				Msg:     fmt.Sprintf("attempt timed out after %v", c.cfg.AttemptTimeout),
			}
		}
		return Partial{}, err
	}
	return p, nil
}

// BatchResult is the gathered answer to a multi-seed batch query.
// Results[i] answers Seeds[i] (nil when that seed failed on the owner and
// every retried successor). Degraded is true when any seed failed; the
// ShardsOK/ShardsFailed sets say which replicas answered and which were
// involved in failures. MixedTags is true when the per-seed rankings came
// from more than one (index hash, generation) — batch entries are
// independent rankings, never merged, so a mix is reported rather than
// refused.
type BatchResult struct {
	Seeds        []int
	Results      []*Partial
	Errs         []error
	ShardsOK     []string
	ShardsFailed []string
	Degraded     bool
	MixedTags    bool
}

// Batch scatter-gathers independent single-seed queries: each seed routes
// to its own ring owner (preserving cache affinity) concurrently, and
// per-replica failures degrade the response instead of failing it.
func (c *Coordinator) Batch(ctx context.Context, seeds []int, topk int) (BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.ring.Load().Len() == 0 {
		return BatchResult{}, ErrNoReplicas
	}
	c.batches.Add(1)
	res := BatchResult{
		Seeds:   seeds,
		Results: make([]*Partial, len(seeds)),
		Errs:    make([]error, len(seeds)),
	}
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i, seed int) {
			defer wg.Done()
			p, err := c.Query(ctx, seed, topk, false)
			if err != nil {
				res.Errs[i] = err
				return
			}
			res.Results[i] = &p
		}(i, seed)
	}
	wg.Wait()

	okShards := map[string]bool{}
	failShards := map[string]bool{}
	tags := map[Tag]bool{}
	for i, p := range res.Results {
		if p == nil {
			res.Degraded = true
			var be *BackendError
			if errors.As(res.Errs[i], &be) {
				failShards[be.Replica] = true
			}
			continue
		}
		okShards[p.Replica] = true
		tags[p.Tag()] = true
	}
	if res.Degraded {
		c.degraded.Add(1)
	}
	res.MixedTags = len(tags) > 1
	res.ShardsOK = sortedKeys(okShards)
	res.ShardsFailed = sortedKeys(failShards)
	return res, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merged is a personalized query assembled from per-seed partials.
type Merged struct {
	Top []server.RankedEntry
	// Tag is the single (index hash, generation) every merged partial
	// carried.
	Tag Tag
	// Replicas are the shards that contributed partials.
	Replicas []string
	// Refetched counts partials re-queried to converge on one tag.
	Refetched int
	// CacheHits counts partials served from replica caches.
	CacheHits int
}

// Personalized answers a multi-seed PPR query by linear decomposition:
// RWR is linear in the restart vector, so ppr(Σᵢ wᵢ·eᵢ) = Σᵢ wᵢ·ppr(eᵢ),
// and each single-seed solve routes to the replica that owns that seed —
// exactly the per-seed cache the affinity routing has been warming. The
// gathered score vectors are merged by weighted sum and ranked.
//
// Merging is generation-guarded: every partial must carry the same
// (index hash, generation) tag. If a rebuild swaps engines mid-gather,
// the minority partials are re-fetched once (a swapped replica answers
// the re-fetch from its new engine); if the gather still straddles
// generations — e.g. a rolling rebuild where some replicas haven't
// swapped yet — the merge is refused with ErrGenerationMix rather than
// ever summing scores from two different indexes.
func (c *Coordinator) Personalized(ctx context.Context, weights map[int]float64, topk int) (Merged, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.ring.Load().Len() == 0 {
		return Merged{}, ErrNoReplicas
	}
	if len(weights) == 0 {
		return Merged{}, &BackendError{Status: http.StatusBadRequest, Msg: "weights must be non-empty"}
	}
	var sum float64
	for node, w := range weights {
		if w < 0 {
			return Merged{}, &BackendError{Status: http.StatusBadRequest, Msg: fmt.Sprintf("negative weight for node %d", node)}
		}
		sum += w
	}
	if sum <= 0 {
		return Merged{}, &BackendError{Status: http.StatusBadRequest, Msg: "weights must sum to a positive value"}
	}

	seeds := make([]int, 0, len(weights))
	for node := range weights {
		seeds = append(seeds, node)
	}
	sort.Ints(seeds)

	partials := make([]Partial, len(seeds))
	errs := make([]error, len(seeds))
	fetch := func(idxs []int) {
		var wg sync.WaitGroup
		for _, i := range idxs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				partials[i], errs[i] = c.Query(ctx, seeds[i], 0, true)
			}(i)
		}
		wg.Wait()
	}
	all := make([]int, len(seeds))
	for i := range all {
		all[i] = i
	}
	fetch(all)
	for i, err := range errs {
		if err != nil {
			// A weighted sum missing one component is silently wrong, so a
			// failed partial fails the whole query (unlike Batch, whose
			// entries are independent).
			return Merged{}, fmt.Errorf("cluster: partial for seed %d: %w", seeds[i], err)
		}
	}

	// Generation guard: converge on the single most common tag, re-fetching
	// disagreeing partials once (post-swap replicas answer fresh), then
	// refuse if the gather still spans generations.
	refetched := 0
	stale := mismatched(partials)
	if len(stale) > 0 {
		refetched = len(stale)
		fetch(stale)
		for _, i := range stale {
			if errs[i] != nil {
				return Merged{}, fmt.Errorf("cluster: re-fetch for seed %d: %w", seeds[i], errs[i])
			}
		}
		if len(mismatched(partials)) > 0 {
			c.mixRefused.Add(1)
			return Merged{}, ErrGenerationMix
		}
	}

	c.merges.Add(1)
	merged := make([]float64, len(partials[0].Scores))
	shards := map[string]bool{}
	hits := 0
	for i, p := range partials {
		w := weights[seeds[i]] / sum
		if len(p.Scores) != len(merged) {
			// Same tag implies same node count; a length mismatch means a
			// replica is serving a different graph under the same tag.
			return Merged{}, fmt.Errorf("cluster: replica %s returned %d scores, want %d",
				p.Replica, len(p.Scores), len(merged))
		}
		for n, s := range p.Scores {
			merged[n] += w * s
		}
		shards[p.Replica] = true
		if p.Cached {
			hits++
		}
	}
	if topk <= 0 {
		topk = 10
	}
	isSeed := make(map[int]bool, len(seeds))
	for _, s := range seeds {
		isSeed[s] = true
	}
	ranked := core.RankTopKFunc(merged, topk, func(node int) bool {
		return isSeed[node] || merged[node] <= 0
	})
	top := make([]server.RankedEntry, len(ranked))
	for i, t := range ranked {
		top[i] = server.RankedEntry{Node: t.Node, Score: t.Score}
	}
	return Merged{
		Top:       top,
		Tag:       partials[0].Tag(),
		Replicas:  sortedKeys(shards),
		Refetched: refetched,
		CacheHits: hits,
	}, nil
}

// mismatched returns the indexes of partials whose tag disagrees with the
// most common tag (ties break toward the higher generation, i.e. the
// post-swap side of a rebuild).
func mismatched(partials []Partial) []int {
	counts := map[Tag]int{}
	for _, p := range partials {
		counts[p.Tag()]++
	}
	if len(counts) <= 1 {
		return nil
	}
	var want Tag
	best := -1
	for tag, n := range counts {
		if n > best || (n == best && tag.Gen > want.Gen) {
			want, best = tag, n
		}
	}
	var out []int
	for i, p := range partials {
		if p.Tag() != want {
			out = append(out, i)
		}
	}
	return out
}
