package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"bepi/internal/obs"
	"bepi/internal/server"
)

// Health is a replica's readiness report: the (index hash, generation)
// pair it is serving plus load signals the coordinator's health checker
// and router use.
type Health struct {
	Nodes           int
	Generation      uint64
	IndexHash       string
	QueueDepth      int
	RebuildInFlight bool
}

// Partial is one replica's answer to a single-seed query: a ranking (and,
// for scatter-gather merges, the full score vector) tagged with the
// engine identity it was computed under. Scores may be shared with the
// replica's cache and MUST be treated as read-only.
type Partial struct {
	Seed       int
	Replica    string
	Top        []server.RankedEntry
	Scores     []float64
	Iterations int
	Cached     bool
	// EarlyStopped means the replica's bound-pruned solve stopped on its
	// certificate: the ranking SET is exact but the scores are within the
	// certified radius, not at full tolerance. Exact fetches never set it.
	EarlyStopped bool
	Generation   uint64
	IndexHash    string
	DurationMS   float64
}

// Tag returns the partial's merge key: the (index hash, generation) pair.
func (p Partial) Tag() Tag { return Tag{Hash: p.IndexHash, Gen: p.Generation} }

// Tag identifies one engine incarnation: the index fingerprint (content
// identity, comparable across replicas) and the generation (swap counter,
// comparable across replicas that apply the same update stream — and, per
// replica, the authoritative "did an engine swap happen under this
// query" signal). The scatter-gather merge requires all partials to share
// one tag.
type Tag struct {
	Hash string
	Gen  uint64
}

func (t Tag) String() string { return fmt.Sprintf("%s@g%d", t.Hash, t.Gen) }

// Backend is one replica as the coordinator sees it: a name (its ring
// identity) plus the query and health-check calls. Implementations must be
// safe for concurrent use.
type Backend interface {
	Name() string
	// Query answers a single-seed query; full requests the whole score
	// vector (used by the full-vector scatter-gather merge), otherwise a
	// top-k ranking — bound-pruned by default, from a full-tolerance solve
	// when exact is set (the rank merge needs exact scores for its
	// bit-identical weighted sums).
	Query(ctx context.Context, seed, topk int, full, exact bool) (Partial, error)
	// Health probes the replica's readiness.
	Health(ctx context.Context) (Health, error)
}

// TraceSource is an optional Backend capability: fetch the replica's trace
// records belonging to one distributed trace. The coordinator's
// /debug/traces?trace=ID handler fans out over it to assemble the
// cross-process trace tree.
type TraceSource interface {
	Traces(ctx context.Context, traceID string, max int) ([]obs.Trace, error)
}

// SnapshotSource is an optional Backend capability: fetch the replica's
// mergeable metrics snapshot for fleet-wide aggregation at the coordinator.
type SnapshotSource interface {
	MetricsSnapshot(ctx context.Context) (obs.MetricsSnapshot, error)
}

// BackendError is a replica-side failure with its HTTP-shaped status and
// the replica's back-off hint, so the coordinator can decide between
// retrying the ring successor and failing fast.
type BackendError struct {
	Replica    string
	Status     int
	RetryAfter time.Duration
	Msg        string
}

func (e *BackendError) Error() string {
	return fmt.Sprintf("replica %s: %s (status %d)", e.Replica, e.Msg, e.Status)
}

// Retryable reports whether an error is worth retrying on the ring
// successor: replica overload (429), unavailability (5xx), and transport
// errors are; validation errors (4xx) are not — the successor would reject
// them identically. The caller's own expired/canceled context is final.
func Retryable(err error) bool {
	var be *BackendError
	if errors.As(err, &be) {
		switch be.Status {
		case http.StatusTooManyRequests,
			http.StatusInternalServerError,
			http.StatusBadGateway,
			http.StatusServiceUnavailable,
			http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Transport-level failure (connection refused, reset, timeout): the
	// replica may be down; its successor is the right next stop.
	return err != nil
}

// RetryAfterOf returns the replica's back-off hint, or 0.
func RetryAfterOf(err error) time.Duration {
	var be *BackendError
	if errors.As(err, &be) {
		return be.RetryAfter
	}
	return 0
}

// LocalBackend serves coordinator traffic from an in-process server.Core —
// the zero-copy replica path used by tests and the `cluster` bench
// experiment, and the reason the serving core is transport-agnostic.
type LocalBackend struct {
	name string
	core *server.Core
}

// NewLocalBackend wraps a serving core as a named replica.
func NewLocalBackend(name string, c *server.Core) *LocalBackend {
	return &LocalBackend{name: name, core: c}
}

// Name implements Backend.
func (b *LocalBackend) Name() string { return b.name }

// Core exposes the wrapped serving core (for tests and benches).
func (b *LocalBackend) Core() *server.Core { return b.core }

// Query implements Backend over the core's transport-agnostic query path.
func (b *LocalBackend) Query(ctx context.Context, seed, topk int, full, exact bool) (Partial, error) {
	resp, err := b.core.Query(ctx, server.QueryRequest{Seed: seed, TopK: topk, Full: full, Exact: exact})
	if err != nil {
		status := server.StatusOf(err)
		return Partial{}, &BackendError{
			Replica:    b.name,
			Status:     status,
			RetryAfter: time.Duration(server.RetryAfterSeconds(status)) * time.Second,
			Msg:        err.Error(),
		}
	}
	return Partial{
		Seed:         resp.Seed,
		Replica:      b.name,
		Top:          resp.Top,
		Scores:       resp.Scores,
		Iterations:   resp.Iterations,
		Cached:       resp.Cached,
		EarlyStopped: resp.EarlyStopped,
		Generation:   resp.Generation,
		IndexHash:    resp.IndexHash,
		DurationMS:   resp.DurationMS,
	}, nil
}

// Traces implements TraceSource over the core's in-process trace ring.
func (b *LocalBackend) Traces(ctx context.Context, traceID string, max int) ([]obs.Trace, error) {
	return b.core.Executor().Observer().Tracer.ByTraceID(traceID, max), nil
}

// MetricsSnapshot implements SnapshotSource over the in-process core.
func (b *LocalBackend) MetricsSnapshot(ctx context.Context) (obs.MetricsSnapshot, error) {
	s := b.core.MetricsSnapshot()
	s.Replica = b.name
	return s, nil
}

// Health implements Backend.
func (b *LocalBackend) Health(ctx context.Context) (Health, error) {
	h := b.core.Health()
	return Health{
		Nodes:           h.Nodes,
		Generation:      h.Generation,
		IndexHash:       h.IndexHash,
		QueueDepth:      h.QueueDepth,
		RebuildInFlight: h.RebuildInFlight,
	}, nil
}

// HTTPBackend serves coordinator traffic from a remote bepi-serve replica
// over its public HTTP endpoints (/query, /healthz).
type HTTPBackend struct {
	name   string
	base   string
	client *http.Client
}

// NewHTTPBackend wraps a replica address ("host:port" or a full URL) as a
// backend. A nil client selects a dedicated one with sane keep-alive
// defaults; the per-request deadline comes from the caller's context.
func NewHTTPBackend(addr string, client *http.Client) *HTTPBackend {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if client == nil {
		client = &http.Client{}
	}
	return &HTTPBackend{name: addr, base: base, client: client}
}

// Name implements Backend.
func (b *HTTPBackend) Name() string { return b.name }

// get issues a GET and decodes the JSON body into out, mapping non-200
// statuses (and their Retry-After hints) to BackendError. A trace context on
// ctx is forwarded as the X-Bepi-Trace header, so the shard's executor
// records its spans under the coordinator's trace.
func (b *HTTPBackend) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+path, nil)
	if err != nil {
		return err
	}
	if tc, ok := obs.TraceFrom(ctx); ok {
		req.Header.Set(obs.TraceHeader, tc.HeaderValue())
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		msg := strings.TrimSpace(string(body))
		var decoded struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &decoded) == nil && decoded.Error != "" {
			msg = decoded.Error
		}
		var ra time.Duration
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
				ra = time.Duration(secs) * time.Second
			}
		}
		return &BackendError{Replica: b.name, Status: resp.StatusCode, RetryAfter: ra, Msg: msg}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Query implements Backend over GET /query.
func (b *HTTPBackend) Query(ctx context.Context, seed, topk int, full, exact bool) (Partial, error) {
	v := url.Values{}
	v.Set("seed", strconv.Itoa(seed))
	if topk > 0 {
		v.Set("topk", strconv.Itoa(topk))
	}
	if full {
		v.Set("full", "true")
	}
	if exact {
		v.Set("exact", "true")
	}
	var resp server.QueryResponse
	if err := b.get(ctx, "/query?"+v.Encode(), &resp); err != nil {
		return Partial{}, err
	}
	return Partial{
		Seed:         resp.Seed,
		Replica:      b.name,
		Top:          resp.Top,
		Scores:       resp.Scores,
		Iterations:   resp.Iterations,
		Cached:       resp.Cached,
		EarlyStopped: resp.EarlyStopped,
		Generation:   resp.Generation,
		IndexHash:    resp.IndexHash,
		DurationMS:   resp.DurationMS,
	}, nil
}

// Traces implements TraceSource over GET /debug/traces?trace=ID.
func (b *HTTPBackend) Traces(ctx context.Context, traceID string, max int) ([]obs.Trace, error) {
	v := url.Values{}
	v.Set("trace", traceID)
	if max > 0 {
		v.Set("n", strconv.Itoa(max))
	}
	var resp server.TraceResponse
	if err := b.get(ctx, "/debug/traces?"+v.Encode(), &resp); err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// MetricsSnapshot implements SnapshotSource over GET /metrics/snapshot.
func (b *HTTPBackend) MetricsSnapshot(ctx context.Context) (obs.MetricsSnapshot, error) {
	var s obs.MetricsSnapshot
	if err := b.get(ctx, "/metrics/snapshot", &s); err != nil {
		return obs.MetricsSnapshot{}, err
	}
	if s.Replica == "" {
		s.Replica = b.name
	}
	return s, nil
}

// Health implements Backend over GET /healthz.
func (b *HTTPBackend) Health(ctx context.Context) (Health, error) {
	var h server.HealthResponse
	if err := b.get(ctx, "/healthz", &h); err != nil {
		return Health{}, err
	}
	return Health{
		Nodes:           h.Nodes,
		Generation:      h.Generation,
		IndexHash:       h.IndexHash,
		QueueDepth:      h.QueueDepth,
		RebuildInFlight: h.RebuildInFlight,
	}, nil
}
