package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"bepi"
	"bepi/internal/qexec"
	"bepi/internal/server"
)

// rankMergeBackends builds real LocalBackend replicas over one skewed RMAT
// graph, the setting the rank merge is designed for.
func rankMergeBackends(t *testing.T, replicas int) []Backend {
	t.Helper()
	g := bepi.RMAT(8, 6, 5)
	backends := make([]Backend, replicas)
	for i := 0; i < replicas; i++ {
		eng, err := bepi.New(g)
		if err != nil {
			t.Fatal(err)
		}
		core := server.NewCore(eng, qexec.Config{})
		t.Cleanup(core.Close)
		backends[i] = NewLocalBackend(fmt.Sprintf("replica-%d", i), core)
	}
	return backends
}

// TestPersonalizedRankMergeMatchesFull is the exactness regression for the
// list-based merge: for every topk, the rank merge must return the
// bit-identical ranking (nodes AND scores) of a coordinator forced onto
// the full-vector merge over the same replicas.
func TestPersonalizedRankMergeMatchesFull(t *testing.T) {
	backends := rankMergeBackends(t, 3)
	rank, err := New(backends, Config{HealthInterval: -1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rank.Close()
	fullCfg := Config{HealthInterval: -1, RetryBackoff: time.Millisecond, FullVectorMerge: true}
	full, err := New(backends, fullCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()

	weights := map[int]float64{3: 1, 17: 2, 40: 0.5}
	for _, topk := range []int{1, 5, 10} {
		got, err := rank.Personalized(context.Background(), weights, topk)
		if err != nil {
			t.Fatalf("topk %d rank merge: %v", topk, err)
		}
		want, err := full.Personalized(context.Background(), weights, topk)
		if err != nil {
			t.Fatalf("topk %d full merge: %v", topk, err)
		}
		if want.Mode != "full" {
			t.Fatalf("forced coordinator merged in mode %q, want full", want.Mode)
		}
		if len(got.Top) != len(want.Top) {
			t.Fatalf("topk %d: rank merge %d entries, full merge %d", topk, len(got.Top), len(want.Top))
		}
		for i := range got.Top {
			// Bit-identical: same node, same float64, no tolerance.
			if got.Top[i] != want.Top[i] {
				t.Fatalf("topk %d entry %d: rank %+v, full %+v (mode %q)",
					topk, i, got.Top[i], want.Top[i], got.Mode)
			}
		}
	}
	// The point of the exercise: the default coordinator must actually be
	// taking the list path on this workload, not falling back every time.
	if rank.rankMerges.Load() == 0 {
		t.Fatalf("no rank merges recorded (escalations=%d fallbacks=%d)",
			rank.rankEscalations.Load(), rank.fullFallbacks.Load())
	}
	if full.rankMerges.Load() != 0 {
		t.Fatal("FullVectorMerge coordinator used the rank path")
	}
}

// flatBackend answers every node with the same score — the pathological
// all-ties workload where the rank certificate must refuse (ties are never
// certified from lists) and the coordinator must fall back to the
// full-vector merge instead of guessing.
type flatBackend struct {
	name string
	n    int
}

func (f *flatBackend) Name() string { return f.name }

func (f *flatBackend) Query(ctx context.Context, seed, topk int, full, exact bool) (Partial, error) {
	p := Partial{Seed: seed, Replica: f.name, Generation: 1, IndexHash: "flat"}
	if full {
		p.Scores = make([]float64, f.n)
		for i := range p.Scores {
			p.Scores[i] = 0.1
		}
		return p, nil
	}
	k := topk
	if k <= 0 || k > f.n {
		k = f.n
	}
	p.Top = make([]server.RankedEntry, k)
	for i := 0; i < k; i++ {
		p.Top[i] = server.RankedEntry{Node: i, Score: 0.1}
	}
	return p, nil
}

func (f *flatBackend) Health(ctx context.Context) (Health, error) {
	return Health{Nodes: f.n, Generation: 1, IndexHash: "flat"}, nil
}

func TestPersonalizedRankMergeFallsBackOnTies(t *testing.T) {
	// n exceeds the escalated width for topk=16 (4·16=64, then 256)? No —
	// n sits between the first width (64: truncated lists, tail bounds tie
	// with the boundary) and the escalated width (256: complete lists, but
	// the k-th and (k+1)-th scores still tie exactly), so both attempts
	// must refuse and the merge must land on the full path.
	c, err := New([]Backend{&flatBackend{name: "r0", n: 100}},
		Config{HealthInterval: -1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m, err := c.Personalized(context.Background(), map[int]float64{0: 1, 1: 1}, 16)
	if err != nil {
		t.Fatalf("Personalized: %v", err)
	}
	if m.Mode != "full" {
		t.Fatalf("mode %q, want full fallback on an all-ties workload", m.Mode)
	}
	if len(m.Top) != 16 {
		t.Fatalf("top has %d entries, want 16", len(m.Top))
	}
	// Deterministic tie-break: ascending node ids, seeds 0 and 1 excluded.
	for i, e := range m.Top {
		if e.Node != i+2 {
			t.Fatalf("entry %d is node %d, want %d (tie-break by id, seeds excluded)", i, e.Node, i+2)
		}
	}
	if c.rankEscalations.Load() != 1 || c.fullFallbacks.Load() != 1 {
		t.Fatalf("escalations=%d fallbacks=%d, want 1/1",
			c.rankEscalations.Load(), c.fullFallbacks.Load())
	}
	if c.rankMerges.Load() != 0 {
		t.Fatal("an all-ties merge must not be served from lists")
	}
}
