package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bepi"
	"bepi/internal/obs"
	"bepi/internal/qexec"
	"bepi/internal/server"
)

// traceTestFleet stands up `replicas` real shard servers over loopback HTTP
// and a coordinator routing to them through HTTPBackend — the full
// cross-process propagation path (context → X-Bepi-Trace header → shard
// executor) minus the network.
func traceTestFleet(t *testing.T, n, replicas int, cfg Config) (*Coordinator, []*bepi.Dynamic, func()) {
	t.Helper()
	g := swapTestGraph(t, n)
	var cleanups []func()
	dyns := make([]*bepi.Dynamic, replicas)
	backends := make([]Backend, replicas)
	for i := 0; i < replicas; i++ {
		d, err := bepi.NewDynamic(g)
		if err != nil {
			t.Fatalf("NewDynamic: %v", err)
		}
		dyns[i] = d
		srv := server.NewDynamic(d, qexec.Config{})
		hs := httptest.NewServer(srv)
		cleanups = append(cleanups, hs.Close, srv.Close)
		backends[i] = NewHTTPBackend(strings.TrimPrefix(hs.URL, "http://"), nil)
	}
	coord, err := New(backends, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cleanups = append(cleanups, coord.Close)
	return coord, dyns, func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
}

// TestClusterDistributedTraceTreeHTTP is the tentpole's end-to-end
// acceptance check: one ?trace=1 query through the coordinator's HTTP
// handler must yield, at GET /debug/traces?trace=<id>, a single tree under
// one trace ID whose root is the coordinator's routing record (attempt
// spans tagged with the owning shard) and whose child is that shard's qexec
// record carrying the engine's solve-stage spans.
func TestClusterDistributedTraceTreeHTTP(t *testing.T) {
	coord, _, cleanup := traceTestFleet(t, 40, 2, Config{
		HealthInterval: -1,
		RetryBackoff:   time.Millisecond,
		Obs:            obs.New(obs.Options{TraceSample: 1}),
	})
	defer cleanup()

	ch := httptest.NewServer(NewHandler(coord))
	defer ch.Close()

	// exact=true forces a full-tolerance solve through the batch worker, so
	// the shard record carries engine stage spans, not just a cache probe.
	resp, err := http.Get(ch.URL + "/query?seed=3&topk=4&exact=true&trace=1")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get(obs.TraceHeader)
	if traceID == "" {
		t.Fatal("?trace=1 must echo the trace ID in X-Bepi-Trace")
	}

	tr, err := http.Get(ch.URL + "/debug/traces?trace=" + traceID)
	if err != nil {
		t.Fatalf("debug/traces: %v", err)
	}
	defer tr.Body.Close()
	var tree TraceTreeResponse
	if err := json.NewDecoder(tr.Body).Decode(&tree); err != nil {
		t.Fatalf("decode tree: %v", err)
	}
	if tree.TraceID != traceID || tree.Count < 2 {
		t.Fatalf("tree: id=%q count=%d (want the coordinator and shard records)", tree.TraceID, tree.Count)
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("roots: %d want exactly 1 (all records under one tree)", len(tree.Roots))
	}
	root := tree.Roots[0]
	if root.Source != "coordinator" || root.Kind != "cluster.query" || root.TraceID != traceID {
		t.Fatalf("root wrong: source=%q kind=%q trace=%q", root.Source, root.Kind, root.TraceID)
	}
	owner := root.Tags["shard"]
	if owner == "" {
		t.Fatalf("root missing shard tag: %+v", root.Tags)
	}
	var attempt *obs.Span
	for i := range root.Spans {
		if root.Spans[i].Name == "attempt" {
			attempt = &root.Spans[i]
		}
	}
	if attempt == nil || attempt.Tags["shard"] != owner {
		t.Fatalf("root attempt span wrong: %+v", root.Spans)
	}
	if len(root.Children) == 0 {
		t.Fatalf("coordinator record has no shard children (count=%d)", tree.Count)
	}
	shardRec := root.Children[0]
	if shardRec.Source != owner {
		t.Fatalf("child from %q want owning shard %q", shardRec.Source, owner)
	}
	if shardRec.TraceID != traceID || shardRec.ParentID != root.SpanID {
		t.Fatalf("child linkage wrong: trace=%q parent=%d rootspan=%d",
			shardRec.TraceID, shardRec.ParentID, root.SpanID)
	}
	spans := map[string]bool{}
	for _, sp := range shardRec.Spans {
		spans[sp.Name] = true
	}
	if !spans["solve"] || !spans["schur"] {
		t.Fatalf("shard record missing solve-stage spans: %+v", shardRec.Spans)
	}
}

// TestClusterFleetMergedQuantilesProm checks the metrics-aggregation leg:
// the coordinator's /metrics.prom must expose fleet-merged histograms whose
// total count equals the sum of the per-shard snapshots (bucket-wise
// merging is exact), alongside the build-info and ring gauges on both
// tiers.
func TestClusterFleetMergedQuantilesProm(t *testing.T) {
	const n = 40
	g := swapTestGraph(t, n)
	cores := make([]*server.Core, 2)
	backends := make([]Backend, 2)
	for i := range cores {
		d, err := bepi.NewDynamic(g)
		if err != nil {
			t.Fatalf("NewDynamic: %v", err)
		}
		cores[i] = server.NewDynamicCore(d, qexec.Config{})
		defer cores[i].Close()
		backends[i] = NewLocalBackend(fmt.Sprintf("replica-%d", i), cores[i])
	}
	coord, err := New(backends, Config{HealthInterval: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer coord.Close()

	for seed := 0; seed < 12; seed++ {
		if _, err := coord.Query(context.Background(), seed, 5, false); err != nil {
			t.Fatalf("query %d: %v", seed, err)
		}
	}

	snaps := coord.FleetSnapshots(context.Background())
	if len(snaps) != 2 {
		t.Fatalf("snapshots: %d want 2", len(snaps))
	}
	var total uint64
	var loQ, hiQ float64
	for i, s := range snaps {
		h := s.Histograms[obs.FamilyQueryLatency]
		total += h.Count
		q := h.Quantile(0.5)
		if i == 0 || q < loQ {
			loQ = q
		}
		if q > hiQ {
			hiQ = q
		}
	}
	if total != 12 {
		t.Fatalf("per-shard latency counts sum to %d want 12", total)
	}
	merged, mismatched := obs.MergeMetricsSnapshots(snaps)
	if len(mismatched) != 0 {
		t.Fatalf("mismatched families: %v", mismatched)
	}
	mh := merged.Histograms[obs.FamilyQueryLatency]
	if mh.Count != total {
		t.Fatalf("merged count %d want %d", mh.Count, total)
	}
	// The union's median must lie within the envelope of the shard medians
	// (to bucket resolution — counts merge exactly, so this is exact here).
	if q := mh.Quantile(0.5); q < loQ || q > hiQ {
		t.Fatalf("merged p50 %g outside shard envelope [%g, %g]", q, loQ, hiQ)
	}

	// The exposition carries the fleet families and identity gauges.
	rec := httptest.NewRecorder()
	NewHandler(coord).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics.prom", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"bepi_build_info{",
		"bepi_ring_members 2",
		`bepi_shard_healthy{shard="replica-0"} 1`,
		"bepi_fleet_query_latency_seconds_count 12",
		"bepi_fleet_query_latency_seconds_bucket",
		"bepi_shard_query_latency_p50_seconds{",
		"bepi_cluster_retries_total",
		"bepi_cluster_refetches_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics.prom missing %q", want)
		}
	}

	// The shard-side exposition carries the same identity gauges.
	rec = httptest.NewRecorder()
	server.NewFromCore(cores[0]).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics.prom", nil))
	body = rec.Body.String()
	for _, want := range []string{"bepi_build_info{", "bepi_ring_members 1", `bepi_shard_healthy{shard="local"} 1`} {
		if !strings.Contains(body, want) {
			t.Errorf("shard /metrics.prom missing %q", want)
		}
	}
}

// TestClusterTraceConcurrentSwapHTTP runs traced queries through
// HTTPBackends while background rebuilds swap shard engines — the -race
// regression for trace propagation: header forwarding, forced shard
// tracing, and concurrent span appends must survive engine swaps, and a
// completed trace must still assemble into a tree afterwards.
func TestClusterTraceConcurrentSwapHTTP(t *testing.T) {
	const n = 40
	coord, dyns, cleanup := traceTestFleet(t, n, 2, Config{
		HealthInterval: -1,
		RetryBackoff:   time.Millisecond,
		Obs:            obs.New(obs.Options{TraceSample: 1}),
	})
	defer cleanup()

	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	done := make(chan struct{})
	var updErr atomic.Value
	go func() {
		defer close(done)
		for r := 0; r < rounds; r++ {
			src, dst := r%n, (r*7+11)%n
			for _, d := range dyns {
				if err := d.AddEdge(src, dst); err != nil {
					updErr.Store(fmt.Errorf("AddEdge: %w", err))
					return
				}
			}
			for _, d := range dyns {
				if err := d.StartFlush().Wait(); err != nil {
					updErr.Store(fmt.Errorf("rebuild: %w", err))
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	var qErr atomic.Value
	var traced atomic.Int64
	var lastTrace atomic.Value
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				if iter >= 6 {
					select {
					case <-done:
						return
					default:
					}
				}
				tc := obs.TraceContext{TraceID: obs.NewTraceID()}
				ctx := obs.WithTrace(context.Background(), tc)
				if _, err := coord.Query(ctx, (w*7+iter)%n, 5, false); err != nil {
					qErr.Store(fmt.Errorf("query: %w", err))
					return
				}
				traced.Add(1)
				lastTrace.Store(tc.TraceID)
			}
		}(w)
	}
	wg.Wait()
	if err := updErr.Load(); err != nil {
		t.Fatal(err)
	}
	if err := qErr.Load(); err != nil {
		t.Fatal(err)
	}
	for i, d := range dyns {
		if d.Generation() == 1 {
			t.Fatalf("replica %d never swapped; the test exercised nothing", i)
		}
	}

	// Any completed trace must assemble: a coordinator root plus the owning
	// shard's record under the same ID, fetched over HTTP TraceSource.
	id := lastTrace.Load().(string)
	roots, count := coord.TraceTree(context.Background(), id, 0)
	if count < 2 || len(roots) != 1 || len(roots[0].Children) == 0 {
		t.Fatalf("trace %s did not assemble: count=%d roots=%d", id, count, len(roots))
	}
	t.Logf("traced=%d queries, final tree count=%d", traced.Load(), count)
}
