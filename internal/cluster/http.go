package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"bepi/internal/obs"
	"bepi/internal/server"
)

// Handler is the coordinator's HTTP binding — what `bepi-serve -coordinator`
// listens with.
//
// Endpoints:
//
//	GET  /query?seed=N&topk=K             routed single-seed query
//	     (&full=true for the score vector, &exact=true to force a
//	     full-tolerance solve instead of the bound-pruned top-k path)
//	POST /batch {"seeds":[...],"topk":K}  scatter-gather batch (degraded
//	                                      responses report failed shards)
//	POST /personalized {"weights":{...}}  linearity-decomposed PPR merge
//	GET  /healthz                         coordinator readiness
//	GET  /replicas                        per-replica health/routing state
//	GET  /metrics, /metrics.prom          routing + fleet-merged metrics
//	                                      (JSON/Prometheus)
//	GET  /debug/traces?trace=ID           assembled cross-process trace tree
//	GET  /debug/traces?n=K                coordinator's recent trace records
//	GET  /debug/events?n=K                coordinator flight recorder
//
// Adding `?trace=1` to /query, /batch, or /personalized forces a distributed
// trace for that request; the X-Bepi-Trace response header carries its ID.
type Handler struct {
	coord *Coordinator
	mux   *http.ServeMux
}

// NewHandler binds HTTP routes over a coordinator.
func NewHandler(c *Coordinator) *Handler {
	h := &Handler{coord: c, mux: http.NewServeMux()}
	h.mux.HandleFunc("/query", h.handleQuery)
	h.mux.HandleFunc("/batch", h.handleBatch)
	h.mux.HandleFunc("/personalized", h.handlePersonalized)
	h.mux.HandleFunc("/healthz", h.handleHealth)
	h.mux.HandleFunc("/replicas", h.handleReplicas)
	h.mux.HandleFunc("/metrics", h.handleMetrics)
	h.mux.HandleFunc("/metrics.prom", h.handleMetricsProm)
	h.mux.HandleFunc("/debug/traces", h.handleTraces)
	h.mux.HandleFunc("/debug/events", h.handleEvents)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps coordinator errors onto HTTP: replica errors keep their
// status (and Retry-After hint), a generation mix and an empty ring are
// retryable-soon conditions (503 + Retry-After).
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	retryAfter := 0
	var be *BackendError
	switch {
	case errors.As(err, &be):
		status = be.Status
		if be.RetryAfter > 0 {
			retryAfter = int(be.RetryAfter.Seconds())
		} else {
			retryAfter = server.RetryAfterSeconds(status)
		}
	case errors.Is(err, ErrGenerationMix), errors.Is(err, ErrNoReplicas):
		status = http.StatusServiceUnavailable
		retryAfter = server.RetryAfterSeconds(status)
	}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use GET"})
		return
	}
	seedStr := r.URL.Query().Get("seed")
	seed, err := strconv.Atoi(seedStr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("seed %q is not an integer", seedStr)})
		return
	}
	topk := 0
	if v := r.URL.Query().Get("topk"); v != "" {
		if topk, err = strconv.Atoi(v); err != nil || topk < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad topk %q", v)})
			return
		}
	}
	p, err := h.coord.query(traceContext(w, r), seed, topk,
		r.URL.Query().Get("full") == "true",
		r.URL.Query().Get("exact") == "true")
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// BatchRequest is the /batch request body.
type BatchRequest struct {
	Seeds []int `json:"seeds"`
	TopK  int   `json:"topk"`
}

// batchEntry is one seed's row in the /batch response.
type batchEntry struct {
	Seed       int                  `json:"seed"`
	Top        []server.RankedEntry `json:"top,omitempty"`
	Replica    string               `json:"replica,omitempty"`
	Generation uint64               `json:"generation,omitempty"`
	IndexHash  string               `json:"index_hash,omitempty"`
	Cached     bool                 `json:"cached,omitempty"`
	Error      string               `json:"error,omitempty"`
}

// BatchResponse is the /batch payload.
type BatchResponse struct {
	Results      []batchEntry `json:"results"`
	Degraded     bool         `json:"degraded"`
	MixedTags    bool         `json:"mixed_tags,omitempty"`
	ShardsOK     []string     `json:"shards_ok"`
	ShardsFailed []string     `json:"shards_failed,omitempty"`
}

func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use POST"})
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
		return
	}
	if len(req.Seeds) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "seeds must be non-empty"})
		return
	}
	res, err := h.coord.Batch(traceContext(w, r), req.Seeds, req.TopK)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := BatchResponse{
		Results:      make([]batchEntry, len(res.Seeds)),
		Degraded:     res.Degraded,
		MixedTags:    res.MixedTags,
		ShardsOK:     res.ShardsOK,
		ShardsFailed: res.ShardsFailed,
	}
	for i, seed := range res.Seeds {
		e := batchEntry{Seed: seed}
		if p := res.Results[i]; p != nil {
			e.Top = p.Top
			e.Replica = p.Replica
			e.Generation = p.Generation
			e.IndexHash = p.IndexHash
			e.Cached = p.Cached
		} else if res.Errs[i] != nil {
			e.Error = res.Errs[i].Error()
		}
		resp.Results[i] = e
	}
	// A fully failed batch is an error; a partially failed one is a 200
	// with degraded=true — the caller decides whether partial coverage is
	// acceptable.
	status := http.StatusOK
	if len(resp.ShardsOK) == 0 && res.Degraded {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(server.RetryAfterSeconds(status)))
	}
	writeJSON(w, status, resp)
}

// PersonalizedResponse is the /personalized payload.
type PersonalizedResponse struct {
	Top        []server.RankedEntry `json:"top"`
	Generation uint64               `json:"generation"`
	IndexHash  string               `json:"index_hash,omitempty"`
	Replicas   []string             `json:"replicas"`
	Refetched  int                  `json:"refetched,omitempty"`
	CacheHits  int                  `json:"cache_hits"`
	// Mode is how the merge was assembled: "rank", "rank-escalated", or
	// "full". All modes return identical rankings.
	Mode string `json:"mode,omitempty"`
}

func (h *Handler) handlePersonalized(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use POST"})
		return
	}
	var req server.PersonalizedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
		return
	}
	weights := make(map[int]float64, len(req.Weights))
	for k, v := range req.Weights {
		node, err := strconv.Atoi(k)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad node id %q", k)})
			return
		}
		weights[node] = v
	}
	m, err := h.coord.Personalized(traceContext(w, r), weights, req.TopK)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PersonalizedResponse{
		Top:        m.Top,
		Generation: m.Tag.Gen,
		IndexHash:  m.Tag.Hash,
		Replicas:   m.Replicas,
		Refetched:  m.Refetched,
		CacheHits:  m.CacheHits,
		Mode:       m.Mode,
	})
}

// HealthResponse is the coordinator's /healthz payload.
type HealthResponse struct {
	Status          string `json:"status"`
	Replicas        int    `json:"replicas"`
	HealthyReplicas int    `json:"healthy_replicas"`
}

func (h *Handler) handleHealth(w http.ResponseWriter, r *http.Request) {
	ring := h.coord.Ring()
	resp := HealthResponse{
		Status:          "ok",
		Replicas:        len(h.coord.names),
		HealthyReplicas: ring.Len(),
	}
	status := http.StatusOK
	switch {
	case ring.Len() == 0:
		resp.Status = "unavailable"
		status = http.StatusServiceUnavailable
	case ring.Len() < len(h.coord.names):
		resp.Status = "degraded"
	}
	writeJSON(w, status, resp)
}

func (h *Handler) handleReplicas(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.coord.Replicas())
}

// MetricsResponse is the coordinator's /metrics JSON payload.
type MetricsResponse struct {
	Batches          int64           `json:"batches"`
	Merges           int64           `json:"merges"`
	RankMerges       int64           `json:"rank_merges"`
	RankEscalations  int64           `json:"rank_escalations"`
	FullFallbacks    int64           `json:"full_fallbacks"`
	MixRefused       int64           `json:"generation_mix_refused"`
	Refetches        int64           `json:"generation_refetches"`
	DegradedBatches  int64           `json:"degraded_batches"`
	Replicas         []ReplicaStatus `json:"replicas"`
	RingMembers      []string        `json:"ring_members"`
	ConfiguredVnodes int             `json:"vnodes"`
	// Fleet is the fleet-wide latency aggregation over replica
	// /metrics/snapshot payloads (absent when no backend supports it).
	Fleet *FleetMetrics `json:"fleet,omitempty"`
}

func (h *Handler) metrics() MetricsResponse {
	return MetricsResponse{
		Batches:          h.coord.batches.Load(),
		Merges:           h.coord.merges.Load(),
		RankMerges:       h.coord.rankMerges.Load(),
		RankEscalations:  h.coord.rankEscalations.Load(),
		FullFallbacks:    h.coord.fullFallbacks.Load(),
		MixRefused:       h.coord.mixRefused.Load(),
		Refetches:        h.coord.refetches.Load(),
		DegradedBatches:  h.coord.degraded.Load(),
		Replicas:         h.coord.Replicas(),
		RingMembers:      h.coord.Ring().Members(),
		ConfiguredVnodes: h.coord.cfg.Vnodes,
	}
}

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "text/plain") ||
		r.URL.Query().Get("format") == "prometheus" {
		h.handleMetricsProm(w, r)
		return
	}
	if r.Context().Err() != nil {
		return
	}
	m := h.metrics()
	ctx, cancel := snapshotCtx(r)
	m.Fleet = fleetMetrics(h.coord.FleetSnapshots(ctx))
	cancel()
	writeJSON(w, http.StatusOK, m)
}

func (h *Handler) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	if r.Context().Err() != nil {
		return
	}
	ctx, cancel := snapshotCtx(r)
	snaps := h.coord.FleetSnapshots(ctx)
	cancel()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	h.writeFleetProm(p, snaps)
	m := h.metrics()
	p.Counter("bepi_cluster_batches_total", "Scatter-gather batch queries.", float64(m.Batches))
	p.Counter("bepi_cluster_merges_total", "Personalized merges completed.", float64(m.Merges))
	p.Counter("bepi_cluster_rank_merges_total",
		"Personalized merges served from per-shard top-k lists.", float64(m.RankMerges))
	p.Counter("bepi_cluster_rank_escalations_total",
		"Rank merges that re-fetched wider candidate lists.", float64(m.RankEscalations))
	p.Counter("bepi_cluster_full_fallbacks_total",
		"Personalized merges that fell back to full score vectors.", float64(m.FullFallbacks))
	p.Counter("bepi_cluster_generation_mix_refused_total",
		"Merges refused because partials spanned index generations.", float64(m.MixRefused))
	p.Counter("bepi_cluster_degraded_batches_total", "Batches with at least one failed seed.", float64(m.DegradedBatches))
	p.Gauge("bepi_cluster_ring_size", "Healthy replicas on the ring.", float64(len(m.RingMembers)))

	routed := map[string]float64{}
	errs := map[string]float64{}
	retries := map[string]float64{}
	ejections := map[string]float64{}
	readmissions := map[string]float64{}
	healthy := map[string]float64{}
	gen := map[string]float64{}
	for _, rs := range m.Replicas {
		routed[rs.Name] = float64(rs.Routed)
		errs[rs.Name] = float64(rs.Errors)
		retries[rs.Name] = float64(rs.Retries)
		ejections[rs.Name] = float64(rs.Ejections)
		readmissions[rs.Name] = float64(rs.Readmissions)
		if rs.Healthy {
			healthy[rs.Name] = 1
		} else {
			healthy[rs.Name] = 0
		}
		gen[rs.Name] = float64(rs.Generation)
	}
	p.CounterVec("bepi_cluster_replica_routed_total", "Queries routed per replica.", "replica", routed)
	p.CounterVec("bepi_cluster_replica_errors_total", "Failed replica attempts.", "replica", errs)
	p.CounterVec("bepi_cluster_replica_retries_total", "Retry attempts landing on this replica.", "replica", retries)
	p.CounterVec("bepi_cluster_replica_ejections_total", "Health-check ejections.", "replica", ejections)
	p.CounterVec("bepi_cluster_replica_readmissions_total", "Health-check readmissions.", "replica", readmissions)
	p.GaugeVec("bepi_cluster_replica_healthy", "1 if the replica is on the ring.", "replica", healthy)
	p.GaugeVec("bepi_cluster_replica_generation", "Replica's last reported index generation.", "replica", gen)
	for _, name := range h.coord.names {
		rep := h.coord.replicas[name]
		p.Histogram("bepi_cluster_replica_latency_seconds_"+promSafe(name),
			"Attempt latency for replica "+name+".", rep.latency.Snapshot())
	}
	obs.WriteGoStats(p)
}

// promSafe rewrites a replica name (often host:port) into a metric-name
// suffix.
func promSafe(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
