// Package cluster is the sharded serving tier: a coordinator that fronts N
// replica serving cores (in-process or remote bepi-serve instances) with
// seed-affine consistent-hash routing, generation-aware scatter-gather for
// multi-seed queries, and replica health checking with ejection and
// readmission.
//
// Routing is keyed by seed so repeated queries for a seed land on the same
// replica, maximizing that replica's LRU+singleflight hit rate — on a
// hot-seed workload a routed cluster serves almost entirely from per-
// replica caches. Consistent hashing bounds key movement when membership
// changes: ejecting or readmitting one replica only moves the keys it
// owns, never reshuffling traffic between surviving replicas.
//
// Replicas tag every response and health check with their (index hash,
// generation) pair. The coordinator records the tags and — crucially — the
// scatter-gather merge path refuses to combine score vectors whose tags
// differ, so a personalized query decomposed across replicas can never mix
// scores from two sides of an engine rebuild (see Coordinator.Personalized).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the default number of virtual nodes each replica
// contributes to the ring. More vnodes smooth the key distribution at the
// cost of a larger (still tiny) sorted point array.
const DefaultVnodes = 64

// ringPoint is one virtual node: a position on the hash circle owned by a
// member.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring. Membership changes build a
// new ring (With/Without) rather than mutating, so readers never lock: the
// coordinator swaps an atomic pointer. Placement is deterministic in the
// member names and vnode count alone — two coordinators configured with
// the same replica set route every seed identically.
type Ring struct {
	vnodes  int
	members []string    // sorted, for Members and determinism
	points  []ringPoint // sorted by hash
}

// NewRing builds a ring over the given members with vnodes virtual nodes
// each (0 selects DefaultVnodes). Duplicate member names are collapsed.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{vnodes: vnodes}
	for _, m := range members {
		if seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
	}
	sort.Strings(r.members)
	r.points = make([]ringPoint, 0, len(r.members)*vnodes)
	for _, m := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m, v), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (vanishingly rare) tie-break by name so
		// placement stays deterministic regardless of insertion order.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// pointHash positions one virtual node of a member on the circle. The
// FNV-1a digest of short, similar names is not uniform enough on its own
// (vnode arcs end up badly unbalanced), so it goes through the same
// finalizer as keyHash.
func pointHash(member string, vnode int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", member, vnode)
	return mix64(h.Sum64())
}

// keyHash maps a seed onto the circle. The seed's bits are mixed so
// sequential seeds spread uniformly instead of clustering.
func keyHash(seed int) uint64 {
	return mix64(uint64(seed) + 0x9e3779b97f4a7c15)
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche bijection.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the sorted member names (read-only).
func (r *Ring) Members() []string { return r.members }

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// Owner returns the member owning a seed: the first virtual node at or
// clockwise after the seed's position. Empty string on an empty ring.
func (r *Ring) Owner(seed int) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(keyHash(seed))].member
}

// search finds the index of the first point at or after h, wrapping to 0.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Successors returns up to k distinct members in ring order starting at
// the seed's owner — the retry order for a failed query: the owner first,
// then the members that would inherit the seed if the owner left the ring.
func (r *Ring) Successors(seed, k int) []string {
	if len(r.points) == 0 || k <= 0 {
		return nil
	}
	if k > len(r.members) {
		k = len(r.members)
	}
	out := make([]string, 0, k)
	seen := make(map[string]bool, k)
	start := r.search(keyHash(seed))
	for i := 0; len(out) < k && i < len(r.points); i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// With returns a new ring with member added (no-op copy if present).
func (r *Ring) With(member string) *Ring {
	if r.Has(member) {
		return r
	}
	return NewRing(append([]string{member}, r.members...), r.vnodes)
}

// Without returns a new ring with member removed (no-op copy if absent).
func (r *Ring) Without(member string) *Ring {
	if !r.Has(member) {
		return r
	}
	rest := make([]string, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != member {
			rest = append(rest, m)
		}
	}
	return NewRing(rest, r.vnodes)
}
