package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bepi"
	"bepi/internal/qexec"
	"bepi/internal/server"
)

// swapTestGraph builds a small connected graph through the public API.
func swapTestGraph(t *testing.T, n int) *bepi.Graph {
	t.Helper()
	var edges []bepi.Edge
	for i := 0; i < n; i++ {
		edges = append(edges,
			bepi.Edge{Src: i, Dst: (i + 1) % n},
			bepi.Edge{Src: i, Dst: (i*3 + 1) % n})
	}
	g, err := bepi.NewGraph(n, edges)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	return g
}

// TestClusterGenerationSwapNeverMixes is the end-to-end merge-guard
// regression: real dynamic replicas rebuild and swap engines while
// personalized scatter-gather merges run against them concurrently. Every
// merge that succeeds must have gathered all its partials under one
// (index hash, generation); a gather straddling a swap may only surface as
// ErrGenerationMix, never as silently mixed scores. Run under -race this
// also exercises the swap path against concurrent routing.
func TestClusterGenerationSwapNeverMixes(t *testing.T) {
	const n = 40
	const replicas = 2
	g := swapTestGraph(t, n)

	dyns := make([]*bepi.Dynamic, replicas)
	backends := make([]Backend, replicas)
	for i := 0; i < replicas; i++ {
		d, err := bepi.NewDynamic(g)
		if err != nil {
			t.Fatalf("NewDynamic: %v", err)
		}
		dyns[i] = d
		core := server.NewDynamicCore(d, qexec.Config{})
		defer core.Close()
		backends[i] = NewLocalBackend(fmt.Sprintf("replica-%d", i), core)
	}
	coord, err := New(backends, Config{HealthInterval: -1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer coord.Close()

	rounds := 4
	if testing.Short() {
		rounds = 2
	}

	// Updater: apply the same update stream to every replica and rebuild.
	// The rebuilds race each other and the queriers, so between the two
	// Wait calls the fleet is genuinely split across generations.
	done := make(chan struct{})
	var updErr atomic.Value
	go func() {
		defer close(done)
		for r := 0; r < rounds; r++ {
			src, dst := r%n, (r*7+11)%n
			for _, d := range dyns {
				if err := d.AddEdge(src, dst); err != nil {
					updErr.Store(fmt.Errorf("AddEdge: %w", err))
					return
				}
			}
			rebuilds := make([]*bepi.Rebuild, replicas)
			for i, d := range dyns {
				rebuilds[i] = d.StartFlush()
			}
			for _, rb := range rebuilds {
				if err := rb.Wait(); err != nil {
					updErr.Store(fmt.Errorf("rebuild: %w", err))
					return
				}
			}
		}
	}()

	// Queriers: personalized merges across seeds owned by both replicas.
	weights := map[int]float64{}
	ring := coord.Ring()
	first := ring.Owner(0)
	weights[0] = 1
	for s := 1; s < n && len(weights) < 4; s++ {
		if ring.Owner(s) != first || len(weights) >= 2 {
			weights[s] = 1
		}
	}
	var (
		wg       sync.WaitGroup
		merges   atomic.Int64
		mixes    atomic.Int64
		failures atomic.Value
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A minimum iteration count keeps the merge path exercised even
			// when the rebuild rounds finish faster than the first query.
			for iter := 0; ; iter++ {
				if iter >= 8 {
					select {
					case <-done:
						return
					default:
					}
				}
				m, err := coord.Personalized(context.Background(), weights, 5)
				switch {
				case err == nil:
					merges.Add(1)
					if m.Tag.Hash == "" {
						failures.Store(fmt.Errorf("merge succeeded with an empty tag"))
						return
					}
				case errors.Is(err, ErrGenerationMix):
					// The honest answer during a rolling swap window.
					mixes.Add(1)
				default:
					failures.Store(fmt.Errorf("personalized: %w", err))
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := updErr.Load(); err != nil {
		t.Fatal(err)
	}
	if err := failures.Load(); err != nil {
		t.Fatal(err)
	}
	// Steady state after all replicas applied the same update stream: tags
	// agree again, so the merge must succeed, at the final generation.
	m, err := coord.Personalized(context.Background(), weights, 5)
	if err != nil {
		t.Fatalf("steady-state personalized after swaps: %v", err)
	}
	merges.Add(1)
	if want := dyns[0].Generation(); m.Tag.Gen != want {
		// Dynamic and executor generations both start at 1 and bump per swap.
		t.Fatalf("steady-state merge at generation %d, want %d", m.Tag.Gen, want)
	}
	if merges.Load() == 0 {
		t.Fatal("no successful merges at all")
	}
	for i, d := range dyns {
		if d.Generation() == 1 {
			t.Fatalf("replica %d never swapped; the test exercised nothing", i)
		}
	}
	t.Logf("merges=%d generation-mix refusals=%d final gens=[%d %d]",
		merges.Load(), mixes.Load(), dyns[0].Generation(), dyns[1].Generation())
}

// TestClusterSwapSingleQueryTagged: a routed single query during a swap is
// always tagged with the generation of the engine that actually served it —
// the (gen, hash) pair a merge would key on.
func TestClusterSwapSingleQueryTagged(t *testing.T) {
	const n = 30
	g := swapTestGraph(t, n)
	d, err := bepi.NewDynamic(g)
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	core := server.NewDynamicCore(d, qexec.Config{})
	defer core.Close()
	coord, err := New([]Backend{NewLocalBackend("r0", core)}, Config{HealthInterval: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer coord.Close()

	ctx := context.Background()
	p, err := coord.Query(ctx, 3, 5, false)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if p.Generation != 1 || p.IndexHash == "" {
		t.Fatalf("pre-swap tag = %v, want g1 (executor generations start at 1) with a hash", p.Tag())
	}
	if err := d.AddEdge(1, 17); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	p2, err := coord.Query(ctx, 3, 5, false)
	if err != nil {
		t.Fatalf("Query after swap: %v", err)
	}
	if p2.Generation != p.Generation+1 {
		t.Fatalf("post-swap generation = %d, want %d", p2.Generation, p.Generation+1)
	}
	if p2.IndexHash == "" || p2.IndexHash == p.IndexHash {
		t.Fatalf("post-swap hash %q should differ from pre-swap %q (the graph changed)",
			p2.IndexHash, p.IndexHash)
	}
}
