// Package gen produces the deterministic synthetic graphs that stand in for
// the paper's real-world datasets (Slashdot … Friendster). The primary
// generator is R-MAT/Kronecker, which reproduces the two structural
// properties BePI exploits: a power-law (hub-and-spoke) degree distribution
// and, with deadend injection, a sizeable deadend fraction. Erdős–Rényi,
// Barabási–Albert and Watts–Strogatz generators are provided for contrast
// workloads and the small-graph accuracy experiment (Appendix I).
package gen

import (
	"math/rand"

	"bepi/internal/graph"
)

// RMATConfig parameterizes the R-MAT generator.
type RMATConfig struct {
	Scale        int     // number of nodes is 2^Scale
	EdgeFactor   int     // target edges = EdgeFactor * 2^Scale (before dedupe)
	A, B, C      float64 // quadrant probabilities; D = 1−A−B−C
	DeadendFrac  float64 // fraction of nodes whose out-edges are removed
	Seed         int64
	NoiseEnabled bool // per-level probability jitter, smooths degree dist.
}

// DefaultRMAT returns the standard R-MAT parameterization (a=0.57, b=0.19,
// c=0.19) with a 20% injected deadend fraction, roughly matching the
// deadend share of the paper's web graphs (Table 2).
func DefaultRMAT(scale, edgeFactor int, seed int64) RMATConfig {
	return RMATConfig{
		Scale:        scale,
		EdgeFactor:   edgeFactor,
		A:            0.57,
		B:            0.19,
		C:            0.19,
		DeadendFrac:  0.20,
		Seed:         seed,
		NoiseEnabled: true,
	}
}

// RMAT generates a directed R-MAT graph.
func RMAT(cfg RMATConfig) *graph.Graph {
	n := 1 << cfg.Scale
	m := cfg.EdgeFactor * n
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := 1 - cfg.A - cfg.B - cfg.C
	edges := make([]graph.Edge, 0, m)
	for e := 0; e < m; e++ {
		src, dst := 0, 0
		a, b, c := cfg.A, cfg.B, cfg.C
		for level := 0; level < cfg.Scale; level++ {
			if cfg.NoiseEnabled {
				// ±10% multiplicative jitter per level, renormalized.
				ja := a * (0.9 + 0.2*rng.Float64())
				jb := b * (0.9 + 0.2*rng.Float64())
				jc := c * (0.9 + 0.2*rng.Float64())
				jd := d * (0.9 + 0.2*rng.Float64())
				tot := ja + jb + jc + jd
				ja, jb, jc = ja/tot, jb/tot, jc/tot
				a, b, c = ja, jb, jc
			}
			r := rng.Float64()
			src <<= 1
			dst <<= 1
			switch {
			case r < a:
				// top-left: nothing to add
			case r < a+b:
				dst |= 1
			case r < a+b+c:
				src |= 1
			default:
				src |= 1
				dst |= 1
			}
			a, b, c = cfg.A, cfg.B, cfg.C
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst})
	}
	edges = injectDeadends(edges, n, cfg.DeadendFrac, rng)
	return graph.MustNew(n, edges)
}

// injectDeadends removes all out-edges of a uniform random subset of nodes
// so the resulting graph has (at least) the requested deadend fraction.
func injectDeadends(edges []graph.Edge, n int, frac float64, rng *rand.Rand) []graph.Edge {
	if frac <= 0 {
		return edges
	}
	k := int(frac * float64(n))
	if k == 0 {
		return edges
	}
	dead := make(map[int]bool, k)
	for _, u := range rng.Perm(n)[:k] {
		dead[u] = true
	}
	out := edges[:0]
	for _, e := range edges {
		if !dead[e.Src] {
			out = append(out, e)
		}
	}
	return out
}

// HybridConfig parameterizes the community-overlaid R-MAT generator used by
// the benchmark suite. Plain R-MAT reproduces the hub-and-spoke degree
// structure of the paper's datasets but yields Schur complements that are
// *too well conditioned*: plain GMRES converges in a handful of iterations,
// hiding the preconditioning effect of Tables 4/Figure 6(c). Real web and
// social graphs additionally have dense local communities in their core,
// which slow random-walk mixing. Hybrid plants such communities over a
// random core subset on top of R-MAT, then injects deadends, matching both
// structural properties at once.
type HybridConfig struct {
	RMAT        RMATConfig // deadend fraction here is ignored (applied last)
	CoreFrac    float64    // fraction of nodes carrying community overlay
	GroupSize   int        // planted community size
	PIn         float64    // within-community edge probability
	DeadendFrac float64    // out-edge removal applied after the overlay
}

// DefaultHybrid returns the benchmark-suite parameterization: standard
// R-MAT plus 80-node communities at p=0.3 over 30% of the nodes, and a 20%
// deadend share. The community density is calibrated so the Schur system's
// plain-GMRES iteration counts land in the range the paper measures on its
// real datasets (Table 4: 24–70), which is what makes the preconditioning
// experiments meaningful.
func DefaultHybrid(scale, edgeFactor int, seed int64) HybridConfig {
	return HybridConfig{
		RMAT:        DefaultRMAT(scale, edgeFactor, seed),
		CoreFrac:    0.30,
		GroupSize:   80,
		PIn:         0.3,
		DeadendFrac: 0.20,
	}
}

// Hybrid generates a community-overlaid R-MAT graph.
func Hybrid(cfg HybridConfig) *graph.Graph {
	rc := cfg.RMAT
	rc.DeadendFrac = 0
	g := RMAT(rc)
	n := g.N()
	rng := rand.New(rand.NewSource(rc.Seed + 7777))
	edges := g.Edges()
	if cfg.GroupSize > 1 && cfg.CoreFrac > 0 && cfg.PIn > 0 {
		perm := rng.Perm(n)
		coreN := int(cfg.CoreFrac * float64(n))
		for start := 0; start+cfg.GroupSize <= coreN; start += cfg.GroupSize {
			grp := perm[start : start+cfg.GroupSize]
			for i, u := range grp {
				for _, v := range grp[i+1:] {
					if rng.Float64() < cfg.PIn {
						edges = append(edges,
							graph.Edge{Src: u, Dst: v},
							graph.Edge{Src: v, Dst: u})
					}
				}
			}
		}
	}
	edges = injectDeadends(edges, n, cfg.DeadendFrac, rng)
	return graph.MustNew(n, edges)
}

// ErdosRenyi generates a directed G(n, m) graph with m edges drawn
// uniformly (duplicates collapse in graph construction).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for e := 0; e < m; e++ {
		edges = append(edges, graph.Edge{Src: rng.Intn(n), Dst: rng.Intn(n)})
	}
	return graph.MustNew(n, edges)
}

// BarabasiAlbert generates a preferential-attachment graph: each new node
// attaches to mPer existing nodes with probability proportional to degree;
// edges are added in both directions so the graph has no trivial deadends.
func BarabasiAlbert(n, mPer int, seed int64) *graph.Graph {
	if mPer < 1 {
		mPer = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	// Repeated-endpoints list implements preferential attachment in O(1).
	var targets []int
	core := mPer + 1
	if core > n {
		core = n
	}
	for u := 0; u < core; u++ {
		for v := 0; v < u; v++ {
			edges = append(edges, graph.Edge{Src: u, Dst: v}, graph.Edge{Src: v, Dst: u})
			targets = append(targets, u, v)
		}
	}
	for u := core; u < n; u++ {
		chosen := make(map[int]bool, mPer)
		for len(chosen) < mPer {
			var v int
			if len(targets) == 0 {
				v = rng.Intn(u)
			} else {
				v = targets[rng.Intn(len(targets))]
			}
			if v != u {
				chosen[v] = true
			}
		}
		for v := range chosen {
			edges = append(edges, graph.Edge{Src: u, Dst: v}, graph.Edge{Src: v, Dst: u})
			targets = append(targets, u, v)
		}
	}
	return graph.MustNew(n, edges)
}

// WattsStrogatz generates a small-world graph: a ring lattice where every
// node connects to its k nearest neighbors on each side, with each edge
// rewired with probability beta. Edges are symmetric. Used for the
// Appendix-I accuracy experiment's small social-network stand-in.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				for {
					w := rng.Intn(n)
					if w != u {
						v = w
						break
					}
				}
			}
			edges = append(edges, graph.Edge{Src: u, Dst: v}, graph.Edge{Src: v, Dst: u})
		}
	}
	return graph.MustNew(n, edges)
}

// Figure2 returns the 8-node example graph of the paper's Figure 2
// (undirected; edges stored in both directions). Node u1 is index 0.
func Figure2() *graph.Graph {
	und := [][2]int{
		{0, 1}, // u1–u2
		{0, 2}, // u1–u3
		{0, 3}, // u1–u4
		{0, 4}, // u1–u5
		{1, 5}, // u2–u6
		{1, 6}, // u2–u7
		{3, 7}, // u4–u8
		{4, 7}, // u5–u8
	}
	var edges []graph.Edge
	for _, e := range und {
		edges = append(edges,
			graph.Edge{Src: e[0], Dst: e[1]},
			graph.Edge{Src: e[1], Dst: e[0]})
	}
	return graph.MustNew(8, edges)
}
