package gen

import (
	"sort"
	"testing"
)

func TestRMATDeterministic(t *testing.T) {
	cfg := DefaultRMAT(8, 8, 7)
	a := RMAT(cfg)
	b := RMAT(cfg)
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("same seed produced different graphs")
	}
	for u := 0; u < a.N(); u++ {
		la, lb := a.OutNeighbors(u), b.OutNeighbors(u)
		if len(la) != len(lb) {
			t.Fatalf("node %d: neighbor count differs", u)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("node %d: neighbor differs", u)
			}
		}
	}
	c := RMAT(DefaultRMAT(8, 8, 8))
	if c.M() == a.M() && func() bool {
		for u := 0; u < a.N(); u++ {
			if len(a.OutNeighbors(u)) != len(c.OutNeighbors(u)) {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestRMATShape(t *testing.T) {
	cfg := DefaultRMAT(10, 8, 1)
	g := RMAT(cfg)
	if g.N() != 1024 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() == 0 || g.M() > 8*1024 {
		t.Fatalf("M = %d out of range", g.M())
	}
	// Deadend fraction should be at least the injected fraction.
	if frac := float64(len(g.Deadends())) / float64(g.N()); frac < cfg.DeadendFrac*0.9 {
		t.Fatalf("deadend fraction %.3f < injected %.3f", frac, cfg.DeadendFrac)
	}
}

func TestRMATPowerLaw(t *testing.T) {
	// A power-law graph must have a heavy tail: the max in-degree should be
	// far above the average in-degree.
	g := RMAT(DefaultRMAT(11, 16, 3))
	maxIn, sumIn := 0, 0
	for u := 0; u < g.N(); u++ {
		d := g.InDegree(u)
		sumIn += d
		if d > maxIn {
			maxIn = d
		}
	}
	avg := float64(sumIn) / float64(g.N())
	if float64(maxIn) < 10*avg {
		t.Fatalf("max in-degree %d not heavy-tailed vs avg %.2f", maxIn, avg)
	}
}

func TestHybridStructure(t *testing.T) {
	cfg := DefaultHybrid(10, 8, 4)
	g := Hybrid(cfg)
	if g.N() != 1024 {
		t.Fatalf("N = %d", g.N())
	}
	// Overlay adds edges beyond plain R-MAT.
	plain := RMAT(cfg.RMAT)
	if g.M() <= plain.M()/2 {
		t.Fatalf("hybrid M=%d vs plain M=%d", g.M(), plain.M())
	}
	// Deadend share is applied after the overlay.
	if frac := float64(len(g.Deadends())) / float64(g.N()); frac < cfg.DeadendFrac*0.9 {
		t.Fatalf("deadend fraction %.3f < %.3f", frac, cfg.DeadendFrac)
	}
	// Deterministic.
	h2 := Hybrid(cfg)
	if h2.M() != g.M() {
		t.Fatal("hybrid not deterministic")
	}
	// Heavy tail survives the overlay.
	maxIn, sumIn := 0, 0
	for u := 0; u < g.N(); u++ {
		d := g.InDegree(u)
		sumIn += d
		if d > maxIn {
			maxIn = d
		}
	}
	if float64(maxIn) < 5*float64(sumIn)/float64(g.N()) {
		t.Fatalf("max in-degree %d not heavy-tailed", maxIn)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 500, 1)
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() == 0 || g.M() > 500 {
		t.Fatalf("M = %d", g.M())
	}
	// ER graphs should NOT be heavy tailed: max degree near average.
	maxOut := 0
	for u := 0; u < g.N(); u++ {
		if d := g.OutDegree(u); d > maxOut {
			maxOut = d
		}
	}
	if maxOut > 30 {
		t.Fatalf("ER max out-degree %d too large", maxOut)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 2)
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	if len(g.Deadends()) != 0 {
		t.Fatal("BA graph should have no deadends (symmetric edges)")
	}
	// Symmetry.
	for u := 0; u < g.N(); u++ {
		for _, v := range g.OutNeighbors(u) {
			if !g.HasEdge(v, u) {
				t.Fatalf("asymmetric edge (%d,%d)", u, v)
			}
		}
	}
	// Preferential attachment should concentrate degree.
	degs := make([]int, g.N())
	for u := range degs {
		degs[u] = g.OutDegree(u)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	if degs[0] < 3*degs[len(degs)/2] {
		t.Fatalf("BA top degree %d vs median %d not skewed", degs[0], degs[len(degs)/2])
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(241, 4, 0.1, 5)
	if g.N() != 241 {
		t.Fatalf("N = %d", g.N())
	}
	if len(g.Deadends()) != 0 {
		t.Fatal("WS graph should have no deadends")
	}
	_, sizes := g.UndirectedComponents()
	if len(sizes) != 1 {
		t.Fatalf("WS graph should be connected at beta=0.1, got %d components", len(sizes))
	}
}

func TestFigure2(t *testing.T) {
	g := Figure2()
	if g.N() != 8 || g.M() != 16 {
		t.Fatalf("Figure2 = %v", g)
	}
	// u8 (index 7) is connected to u4 and u5 (indexes 3 and 4), as the
	// paper's discussion requires.
	if !g.HasEdge(7, 3) || !g.HasEdge(7, 4) || g.HasEdge(7, 0) {
		t.Fatal("Figure2 structure wrong")
	}
}
