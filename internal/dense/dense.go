// Package dense provides a compact row-major dense matrix used by the
// per-block LU factorization of H11, the Bear baseline's explicit Schur
// inverse, the Hessenberg eigen-solver, and the exact ground-truth solves in
// tests and Appendix-I style experiments.
package dense

import (
	"fmt"
	"math"
)

// Matrix is a row-major dense matrix.
type Matrix struct {
	R, C int
	Data []float64 // len R*C, Data[i*C+j] = element (i, j)
}

// New returns a zero R×C matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", r, c))
	}
	return &Matrix{R: r, C: c, Data: make([]float64, r*c)}
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// FromRows builds a matrix from row slices (all the same length).
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("dense: ragged row %d", i))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes dst = M·x.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(dst) != m.R || len(x) != m.C {
		panic("dense: MulVec dimension mismatch")
	}
	for i := 0; i < m.R; i++ {
		row := m.Data[i*m.C : (i+1)*m.C]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Mul returns M·B as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.C != b.R {
		panic(fmt.Sprintf("dense: Mul inner dims %d vs %d", m.C, b.R))
	}
	out := New(m.R, b.C)
	for i := 0; i < m.R; i++ {
		arow := m.Data[i*m.C : (i+1)*m.C]
		orow := out.Data[i*b.C : (i+1)*b.C]
		for t, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Data[t*b.C : (t+1)*b.C]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// Transpose returns Mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.Data[j*m.R+i] = m.Data[i*m.C+j]
		}
	}
	return out
}

// MaxAbsDiff returns max |m_ij − b_ij|; shapes must match.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.R != b.R || m.C != b.C {
		panic("dense: MaxAbsDiff shape mismatch")
	}
	var mx float64
	for i, v := range m.Data {
		if d := math.Abs(v - b.Data[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// LU factors a square matrix in place into L (unit lower, strict part) and U
// (upper including diagonal) without pivoting. It returns an error if a
// pivot underflows. Pivot-free LU is numerically safe for the strictly
// diagonally dominant systems this repository factors (H and its diagonal
// blocks for any restart probability 0 < c < 1).
func (m *Matrix) LU() error {
	if m.R != m.C {
		panic("dense: LU requires a square matrix")
	}
	n := m.R
	for k := 0; k < n; k++ {
		piv := m.Data[k*n+k]
		if math.Abs(piv) < 1e-300 {
			return fmt.Errorf("dense: zero pivot at %d", k)
		}
		inv := 1 / piv
		for i := k + 1; i < n; i++ {
			l := m.Data[i*n+k] * inv
			m.Data[i*n+k] = l
			if l == 0 {
				continue
			}
			rowK := m.Data[k*n+k+1 : k*n+n]
			rowI := m.Data[i*n+k+1 : i*n+n]
			for j, u := range rowK {
				rowI[j] -= l * u
			}
		}
	}
	return nil
}

// LUSolve solves (LU)x = b in place on b, where m holds packed LU factors
// from LU().
func (m *Matrix) LUSolve(b []float64) {
	n := m.R
	if len(b) != n {
		panic("dense: LUSolve length mismatch")
	}
	// Forward: L y = b (unit diagonal).
	for i := 1; i < n; i++ {
		row := m.Data[i*n : i*n+i]
		var s float64
		for j, l := range row {
			s += l * b[j]
		}
		b[i] -= s
	}
	// Backward: U x = y.
	for i := n - 1; i >= 0; i-- {
		row := m.Data[i*n : (i+1)*n]
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * b[j]
		}
		b[i] = s / row[i]
	}
}

// LUSolveT solves (LU)ᵀx = b in place on b, where m holds packed LU
// factors from LU(). Used for singular-value estimation, which needs
// solves with the transpose.
func (m *Matrix) LUSolveT(b []float64) {
	n := m.R
	if len(b) != n {
		panic("dense: LUSolveT length mismatch")
	}
	// Forward: Uᵀ y = b (lower triangular with U's diagonal).
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= m.Data[j*n+i] * b[j]
		}
		b[i] = s / m.Data[i*n+i]
	}
	// Backward: Lᵀ x = y (unit upper triangular).
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= m.Data[j*n+i] * b[j]
		}
		b[i] = s
	}
}

// Solve computes x with A·x = b using a fresh LU factorization (A is not
// modified). Intended for small systems and ground-truth computation.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	lu := m.Clone()
	if err := lu.LU(); err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	copy(x, b)
	lu.LUSolve(x)
	return x, nil
}

// Inverse returns A⁻¹ computed column-by-column from an LU factorization.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.R != m.C {
		panic("dense: Inverse requires a square matrix")
	}
	n := m.R
	lu := m.Clone()
	if err := lu.LU(); err != nil {
		return nil, err
	}
	inv := New(n, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
		lu.LUSolve(col)
		for i := 0; i < n; i++ {
			inv.Data[i*n+j] = col[i]
		}
	}
	return inv, nil
}

// MemoryBytes reports the storage footprint of the matrix values.
func (m *Matrix) MemoryBytes() int64 { return int64(len(m.Data)) * 8 }

// String returns a short shape description.
func (m *Matrix) String() string { return fmt.Sprintf("Dense{%dx%d}", m.R, m.C) }
