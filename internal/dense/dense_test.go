package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randDiagDominant returns a random strictly diagonally dominant matrix,
// the class pivot-free LU is guaranteed stable on.
func randDiagDominant(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		var off float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.NormFloat64()
			m.Set(i, j, v)
			off += math.Abs(v)
		}
		m.Set(i, i, off+1+rng.Float64())
	}
	return m
}

func TestIdentityAndAt(t *testing.T) {
	id := Identity(3)
	if id.At(0, 0) != 1 || id.At(0, 1) != 0 {
		t.Fatal("identity wrong")
	}
	id.Set(0, 1, 7)
	if id.At(0, 1) != 7 {
		t.Fatal("Set/At wrong")
	}
}

func TestFromRowsAndRow(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.R != 2 || m.C != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromRows wrong")
	}
	r := m.Row(1)
	r[1] = 9
	if m.At(1, 1) != 9 {
		t.Fatal("Row is not a view")
	}
}

func TestMulVecAndMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if c.MaxAbsDiff(want) != 0 {
		t.Fatalf("Mul = %+v", c)
	}
	y := make([]float64, 2)
	a.MulVec(y, []float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.R != 3 || at.C != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatal("Transpose wrong")
	}
	if a.Transpose().Transpose().MaxAbsDiff(a) != 0 {
		t.Fatal("double transpose changed matrix")
	}
}

func TestLUReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(25)
		a := randDiagDominant(rng, n)
		lu := a.Clone()
		if err := lu.LU(); err != nil {
			t.Fatalf("LU: %v", err)
		}
		// Rebuild L·U and compare with A.
		prod := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				// L[i][k] for k<i, 1 at k=i; U[k][j] for k<=j.
				kmax := i
				if j < i {
					kmax = j
				}
				for k := 0; k <= kmax; k++ {
					var l float64
					if k < i {
						l = lu.At(i, k)
					} else {
						l = 1
					}
					if k <= j {
						s += l * lu.At(k, j)
					}
				}
				prod.Set(i, j, s)
			}
		}
		if d := prod.MaxAbsDiff(a); d > 1e-9 {
			t.Fatalf("trial %d: ‖LU−A‖∞ = %v", trial, d)
		}
	}
}

func TestSolveMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		a := randDiagDominant(rng, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, xTrue)
		x, err := a.Solve(b)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(20)
		a := randDiagDominant(rng, n)
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		prod := a.Mul(inv)
		if d := prod.MaxAbsDiff(Identity(n)); d > 1e-8 {
			t.Fatalf("trial %d: ‖A·A⁻¹−I‖∞ = %v", trial, d)
		}
	}
}

func TestLUSolveTMatchesTransposeSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(20)
		a := randDiagDominant(rng, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.Transpose().MulVec(b, xTrue)
		lu := a.Clone()
		if err := lu.LU(); err != nil {
			t.Fatal(err)
		}
		lu.LUSolveT(b)
		for i := range b {
			if math.Abs(b[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("trial %d: LUSolveT[%d] = %v want %v", trial, i, b[i], xTrue[i])
			}
		}
	}
}

func TestLUZeroPivot(t *testing.T) {
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	if err := a.LU(); err == nil {
		t.Fatal("expected zero-pivot error")
	}
}

func TestMemoryBytes(t *testing.T) {
	if New(3, 4).MemoryBytes() != 96 {
		t.Fatal("MemoryBytes wrong")
	}
}

// Property: Solve(A, A·x) == x for diagonally dominant A.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(15)
		a := randDiagDominant(r, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, x)
		got, err := a.Solve(b)
		if err != nil {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-x[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
