// Package reorder implements the node-reordering strategies BePI relies on:
// deadend separation (§3.2.1), the SlashBurn hub-and-spoke method
// (Appendix A of the paper; Kang & Faloutsos, ICDM 2011), and the
// degree-based ordering used by the LU-decomposition baseline. The composed
// ordering makes the reordered H matrix take the form of Figure 3(d): a
// block-diagonal spoke block H11, hub blocks, and a trailing deadend
// identity block.
package reorder

import (
	"fmt"
	"sort"

	"bepi/internal/graph"
)

// Ordering describes a permutation of the graph's nodes and the partition
// sizes that the permutation induces on H.
type Ordering struct {
	// Perm maps old node id to new node id; Inv is its inverse.
	Perm, Inv []int
	// N1, N2 and N3 are the number of spokes, hubs and deadends. New ids
	// [0,N1) are spokes, [N1,N1+N2) hubs, [N1+N2,N1+N2+N3) deadends.
	N1, N2, N3 int
	// Blocks holds the sizes of the diagonal blocks of H11 (one per spoke
	// component), in new-id order; they sum to N1.
	Blocks []int
}

// Validate checks internal consistency; it returns an error describing the
// first violated invariant, or nil.
func (o *Ordering) Validate() error {
	n := len(o.Perm)
	if len(o.Inv) != n {
		return fmt.Errorf("reorder: inv length %d want %d", len(o.Inv), n)
	}
	if o.N1+o.N2+o.N3 != n {
		return fmt.Errorf("reorder: partition %d+%d+%d != %d", o.N1, o.N2, o.N3, n)
	}
	seen := make([]bool, n)
	for old, nw := range o.Perm {
		if nw < 0 || nw >= n {
			return fmt.Errorf("reorder: perm[%d]=%d out of range", old, nw)
		}
		if seen[nw] {
			return fmt.Errorf("reorder: perm not a bijection at %d", nw)
		}
		seen[nw] = true
		if o.Inv[nw] != old {
			return fmt.Errorf("reorder: inv[%d]=%d want %d", nw, o.Inv[nw], old)
		}
	}
	total := 0
	for i, b := range o.Blocks {
		if b <= 0 {
			return fmt.Errorf("reorder: block %d has size %d", i, b)
		}
		total += b
	}
	if total != o.N1 {
		return fmt.Errorf("reorder: block sizes sum to %d want %d", total, o.N1)
	}
	return nil
}

// HubAndSpoke computes the full BePI ordering: deadends are moved to the
// tail, and the non-deadend subgraph is permuted by SlashBurn with hub
// selection ratio k so that spokes (small disconnected components after hub
// removal) come first and hubs last.
func HubAndSpoke(g *graph.Graph, k float64) *Ordering {
	return HubAndSpokeIters(g, k, 0)
}

// HubAndSpokeIters is HubAndSpoke with a cap on SlashBurn iterations
// (0 = unlimited). With maxIters = 1 it degenerates to one-shot hub
// removal — the GCC left after the first slash joins the hub region instead
// of being burned further — which the reordering ablation uses to show why
// SlashBurn's recursion earns its cost.
func HubAndSpokeIters(g *graph.Graph, k float64, maxIters int) *Ordering {
	if k <= 0 || k >= 1 {
		panic(fmt.Sprintf("reorder: hub selection ratio %v out of (0,1)", k))
	}
	n := g.N()
	// Deadend separation. nonDead keeps original relative order, so the
	// local SlashBurn ids are stable and deterministic.
	isDead := make([]bool, n)
	for _, u := range g.Deadends() {
		isDead[u] = true
	}
	var nonDead, dead []int
	for u := 0; u < n; u++ {
		if isDead[u] {
			dead = append(dead, u)
		} else {
			nonDead = append(nonDead, u)
		}
	}
	sb := slashBurn(g, nonDead, k, maxIters)
	perm := make([]int, n)
	inv := make([]int, n)
	for localOld, localNew := range sb.perm {
		perm[nonDead[localOld]] = localNew
	}
	base := len(nonDead)
	for i, u := range dead {
		perm[u] = base + i
	}
	for old, nw := range perm {
		inv[nw] = old
	}
	return &Ordering{
		Perm: perm, Inv: inv,
		N1: sb.n1, N2: sb.n2, N3: len(dead),
		Blocks: sb.blocks,
	}
}

// sbResult is the SlashBurn output in local (non-deadend) id space.
type sbResult struct {
	perm   []int // perm[localOld] = localNew
	n1, n2 int
	blocks []int
}

// slashBurn runs SlashBurn on the undirected view of the subgraph induced by
// the given nodes. hubsPerIter = ceil(k·|nodes|) high-degree nodes are
// slashed per iteration; the procedure recurses on the giant connected
// component until it is no larger than one slash, at which point the
// remainder joins the hub region.
func slashBurn(g *graph.Graph, nodes []int, k float64, maxIters int) *sbResult {
	nn := len(nodes)
	res := &sbResult{perm: make([]int, nn)}
	if nn == 0 {
		return res
	}
	localID := make([]int, g.N())
	for i := range localID {
		localID[i] = -1
	}
	for i, u := range nodes {
		localID[u] = i
	}
	// Build the undirected adjacency restricted to `nodes` in local ids,
	// with duplicate (u,v)+(v,u) pairs collapsed via sort+dedupe (a map is
	// far too slow at millions of edges).
	type pair struct{ a, b int }
	pairs := make([]pair, 0, g.M())
	for _, u := range nodes {
		lu := localID[u]
		for _, v := range g.OutNeighbors(u) {
			lv := localID[v]
			if lv < 0 || lu == lv {
				continue
			}
			a, b := lu, lv
			if a > b {
				a, b = b, a
			}
			pairs = append(pairs, pair{a, b})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	uniq := pairs[:0]
	for i, p := range pairs {
		if i == 0 || p != pairs[i-1] {
			uniq = append(uniq, p)
		}
	}
	deg := make([]int, nn)
	for _, p := range uniq {
		deg[p.a]++
		deg[p.b]++
	}
	ptr := make([]int, nn+1)
	for i := 0; i < nn; i++ {
		ptr[i+1] = ptr[i] + deg[i]
	}
	adj := make([]int, ptr[nn])
	next := make([]int, nn)
	copy(next, ptr[:nn])
	for _, p := range uniq {
		adj[next[p.a]] = p.b
		next[p.a]++
		adj[next[p.b]] = p.a
		next[p.b]++
	}

	hubsPerIter := int(k * float64(nn))
	if k*float64(nn) > float64(hubsPerIter) {
		hubsPerIter++
	}
	if hubsPerIter < 1 {
		hubsPerIter = 1
	}

	alive := make([]bool, nn)
	curDeg := make([]int, nn)
	copy(curDeg, deg)
	// current holds the nodes of the graph SlashBurn currently operates on
	// (initially everything; after the first iteration, the previous GCC).
	current := make([]int, nn)
	for i := range current {
		alive[i] = true
		current[i] = i
	}

	low := 0       // next spoke id (assigned from the bottom)
	high := nn - 1 // next hub id (assigned from the top)

	removeNode := func(u int) {
		alive[u] = false
		for p := ptr[u]; p < ptr[u+1]; p++ {
			v := adj[p]
			if alive[v] {
				curDeg[v]--
			}
		}
	}

	var queue []int
	visitedIter := make([]int, nn) // BFS stamp: iteration index when visited
	for i := range visitedIter {
		visitedIter[i] = -1
	}
	iter := 0
	for len(current) > 0 {
		iter++
		if maxIters > 0 && iter > maxIters {
			// Iteration cap reached: the rest of the graph joins the hub
			// region, highest degree first.
			sort.Slice(current, func(a, b int) bool {
				if curDeg[current[a]] != curDeg[current[b]] {
					return curDeg[current[a]] > curDeg[current[b]]
				}
				return current[a] < current[b]
			})
			for _, u := range current {
				res.perm[u] = high
				high--
				res.n2++
				removeNode(u)
			}
			break
		}
		// 1. Slash: remove the hubsPerIter highest-degree nodes of the
		// current graph, assigning them the highest free ids in
		// decreasing-degree order.
		h := hubsPerIter
		if h > len(current) {
			h = len(current)
		}
		cand := append([]int(nil), current...)
		sort.Slice(cand, func(a, b int) bool {
			if curDeg[cand[a]] != curDeg[cand[b]] {
				return curDeg[cand[a]] > curDeg[cand[b]]
			}
			return cand[a] < cand[b]
		})
		hubs := cand[:h]
		for _, u := range hubs {
			res.perm[u] = high
			high--
			res.n2++
			removeNode(u)
		}
		if h == len(current) {
			break
		}
		// 2. Burn: find components of the remainder; all but the largest
		// are spokes and leave the graph with the lowest free ids, one
		// contiguous block per component.
		remaining := cand[h:]
		var comps [][]int
		for _, s := range remaining {
			if visitedIter[s] == iter {
				continue
			}
			queue = append(queue[:0], s)
			visitedIter[s] = iter
			var members []int
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				members = append(members, u)
				for p := ptr[u]; p < ptr[u+1]; p++ {
					v := adj[p]
					if !alive[v] {
						continue
					}
					if visitedIter[v] != iter {
						visitedIter[v] = iter
						queue = append(queue, v)
					}
				}
			}
			comps = append(comps, members)
		}
		gcc := 0
		for i := 1; i < len(comps); i++ {
			if len(comps[i]) > len(comps[gcc]) {
				gcc = i
			}
		}
		for i, members := range comps {
			if i == gcc {
				continue
			}
			sort.Ints(members)
			for _, u := range members {
				res.perm[u] = low
				low++
				res.n1++
				removeNode(u)
			}
			res.blocks = append(res.blocks, len(members))
		}
		// 3. Recurse on the GCC while it is larger than one slash.
		current = comps[gcc]
		if len(current) <= hubsPerIter {
			// Remainder joins the hub region, highest degree first.
			sort.Slice(current, func(a, b int) bool {
				if curDeg[current[a]] != curDeg[current[b]] {
					return curDeg[current[a]] > curDeg[current[b]]
				}
				return current[a] < current[b]
			})
			for _, u := range current {
				res.perm[u] = high
				high--
				res.n2++
				removeNode(u)
			}
			break
		}
	}
	if low != nn-res.n2 || res.n1+res.n2 != nn {
		panic(fmt.Sprintf("reorder: slashburn accounting n1=%d n2=%d nn=%d low=%d", res.n1, res.n2, nn, low))
	}
	return res
}

// DeadendOnly returns an ordering that only separates deadends (all
// non-deadends form a single "hub" partition with N1 = 0). Used by tests
// and by methods that do not exploit the hub-and-spoke structure.
func DeadendOnly(g *graph.Graph) *Ordering {
	n := g.N()
	isDead := make([]bool, n)
	for _, u := range g.Deadends() {
		isDead[u] = true
	}
	perm := make([]int, n)
	inv := make([]int, n)
	lo, hi := 0, 0
	for u := 0; u < n; u++ {
		if !isDead[u] {
			perm[u] = lo
			lo++
		}
	}
	hi = lo
	for u := 0; u < n; u++ {
		if isDead[u] {
			perm[u] = hi
			hi++
		}
	}
	for old, nw := range perm {
		inv[nw] = old
	}
	return &Ordering{Perm: perm, Inv: inv, N1: 0, N2: lo, N3: n - lo}
}

// ByDegree returns a permutation ordering nodes by ascending total degree
// (in+out), the fill-reducing heuristic used by the LU-decomposition
// baseline of Fujiwara et al.
func ByDegree(g *graph.Graph) []int {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da := g.OutDegree(order[a]) + g.InDegree(order[a])
		db := g.OutDegree(order[b]) + g.InDegree(order[b])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	perm := make([]int, n)
	for newID, old := range order {
		perm[old] = newID
	}
	return perm
}
