package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bepi/internal/gen"
	"bepi/internal/graph"
)

// blockOf maps a spoke new-id to its block index given block sizes.
func blockOf(blocks []int, n1 int) []int {
	of := make([]int, n1)
	pos := 0
	for b, size := range blocks {
		for i := 0; i < size; i++ {
			of[pos] = b
			pos++
		}
	}
	return of
}

// checkOrdering asserts every structural invariant of a BePI ordering on g.
func checkOrdering(t *testing.T, g *graph.Graph, o *Ordering) {
	t.Helper()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	n := g.N()
	if len(o.Perm) != n {
		t.Fatalf("perm length %d want %d", len(o.Perm), n)
	}
	// Deadends must occupy exactly the tail [N1+N2, n).
	deadStart := o.N1 + o.N2
	for u := 0; u < n; u++ {
		isDead := g.OutDegree(u) == 0
		if isDead != (o.Perm[u] >= deadStart) {
			t.Fatalf("node %d (dead=%v) mapped to %d, deadStart=%d", u, isDead, o.Perm[u], deadStart)
		}
	}
	// No edge (in either direction) may connect two different spoke blocks:
	// that is exactly the H11 block-diagonality invariant.
	of := blockOf(o.Blocks, o.N1)
	for u := 0; u < n; u++ {
		pu := o.Perm[u]
		for _, v := range g.OutNeighbors(u) {
			pv := o.Perm[v]
			if pu < o.N1 && pv < o.N1 && of[pu] != of[pv] {
				t.Fatalf("edge (%d,%d) crosses spoke blocks %d and %d", u, v, of[pu], of[pv])
			}
		}
	}
}

func TestHubAndSpokeOnRMAT(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 6, 1))
	o := HubAndSpoke(g, 0.2)
	checkOrdering(t, g, o)
	if o.N1 == 0 {
		t.Fatal("expected some spokes on a power-law graph")
	}
	if o.N2 == 0 {
		t.Fatal("expected some hubs")
	}
	if o.N3 == 0 {
		t.Fatal("expected deadends (injected by generator)")
	}
}

func TestHubAndSpokeSmallKProducesMoreSpokes(t *testing.T) {
	// A smaller hub ratio slashes fewer nodes per iteration, so the spoke
	// region grows more slowly but the hub count at the end should be
	// smaller (the paper's Table 2: n2 grows with k).
	g := gen.RMAT(gen.DefaultRMAT(10, 6, 2))
	small := HubAndSpoke(g, 0.01)
	large := HubAndSpoke(g, 0.3)
	checkOrdering(t, g, small)
	checkOrdering(t, g, large)
	if small.N2 >= large.N2 {
		t.Fatalf("n2 with k=0.01 (%d) should be below n2 with k=0.3 (%d)", small.N2, large.N2)
	}
}

func TestHubAndSpokeStarGraph(t *testing.T) {
	// Star: node 0 is the hub; removing it disconnects all leaves.
	var edges []graph.Edge
	n := 50
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: v}, graph.Edge{Src: v, Dst: 0})
	}
	g := graph.MustNew(n, edges)
	o := HubAndSpoke(g, 0.02) // one hub per iteration
	checkOrdering(t, g, o)
	if o.Perm[0] != n-1 {
		t.Fatalf("star center should be the last hub, got new id %d", o.Perm[0])
	}
	// 48 leaves burn as singleton spokes; the final GCC (one leaf) joins the
	// hub region per SlashBurn's termination rule, so n2 = 2.
	if o.N1 != n-2 || len(o.Blocks) != n-2 || o.N2 != 2 {
		t.Fatalf("got n1=%d blocks=%d n2=%d, want n1=%d blocks=%d n2=2", o.N1, len(o.Blocks), o.N2, n-2, n-2)
	}
}

func TestHubAndSpokeAllDeadends(t *testing.T) {
	g := graph.MustNew(5, nil)
	o := HubAndSpoke(g, 0.3)
	checkOrdering(t, g, o)
	if o.N3 != 5 || o.N1 != 0 || o.N2 != 0 {
		t.Fatalf("got n1=%d n2=%d n3=%d", o.N1, o.N2, o.N3)
	}
}

func TestHubAndSpokeInvalidK(t *testing.T) {
	g := graph.MustNew(2, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}})
	for _, k := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%v: expected panic", k)
				}
			}()
			HubAndSpoke(g, k)
		}()
	}
}

func TestDeadendOnly(t *testing.T) {
	g := graph.MustNew(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 3}})
	o := DeadendOnly(g)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.N3 != 2 || o.N2 != 2 || o.N1 != 0 {
		t.Fatalf("got n1=%d n2=%d n3=%d", o.N1, o.N2, o.N3)
	}
	// Nodes 2, 3 are deadends; they must map to 2, 3 in some order.
	if o.Perm[2] < 2 || o.Perm[3] < 2 {
		t.Fatalf("deadends not in tail: %v", o.Perm)
	}
}

func TestByDegree(t *testing.T) {
	g := graph.MustNew(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 3, Dst: 0},
	})
	perm := ByDegree(g)
	// Node 0 has degree 6, all others 2; node 0 must come last.
	if perm[0] != 3 {
		t.Fatalf("highest-degree node mapped to %d, want 3", perm[0])
	}
	seen := make([]bool, 4)
	for _, p := range perm {
		if seen[p] {
			t.Fatal("ByDegree not a bijection")
		}
		seen[p] = true
	}
}

// Property: HubAndSpoke produces a valid ordering with the block-diagonality
// invariant on arbitrary random graphs.
func TestQuickHubAndSpokeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		m := r.Intn(4 * n)
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{Src: r.Intn(n), Dst: r.Intn(n)}
		}
		g := graph.MustNew(n, edges)
		k := 0.05 + 0.4*r.Float64()
		o := HubAndSpoke(g, k)
		if o.Validate() != nil {
			return false
		}
		of := blockOf(o.Blocks, o.N1)
		deadStart := o.N1 + o.N2
		for u := 0; u < n; u++ {
			if (g.OutDegree(u) == 0) != (o.Perm[u] >= deadStart) {
				return false
			}
			pu := o.Perm[u]
			for _, v := range g.OutNeighbors(u) {
				pv := o.Perm[v]
				if pu < o.N1 && pv < o.N1 && of[pu] != of[pv] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestHubAndSpokeIterationCap(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 6, 2))
	one := HubAndSpokeIters(g, 0.05, 1)
	checkOrdering(t, g, one)
	full := HubAndSpokeIters(g, 0.05, 0)
	checkOrdering(t, g, full)
	// One-shot ordering dumps the residual GCC into the hub region, so it
	// must have strictly more hubs (and fewer spokes) than full SlashBurn.
	if one.N2 <= full.N2 {
		t.Fatalf("capped n2=%d should exceed full n2=%d", one.N2, full.N2)
	}
	if one.N1 >= full.N1 {
		t.Fatalf("capped n1=%d should be below full n1=%d", one.N1, full.N1)
	}
}

func TestHubAndSpokeDeterministic(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 5, 3))
	a := HubAndSpoke(g, 0.2)
	b := HubAndSpoke(g, 0.2)
	for i := range a.Perm {
		if a.Perm[i] != b.Perm[i] {
			t.Fatal("HubAndSpoke is nondeterministic")
		}
	}
}
