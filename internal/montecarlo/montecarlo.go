// Package montecarlo implements Monte Carlo estimation of RWR scores, the
// approximate family the paper surveys in §5 (Fogaras et al., Bahmani et
// al.). It exists as a contrast to BePI: no preprocessing and sublinear
// per-estimate cost, but only O(1/√W) accuracy in the number of simulated
// walks W — which is why the paper's applications, needing exact scores,
// motivate BePI instead. The estimator uses the endpoint identity: the RWR
// score r(u) equals the probability that a walk which terminates with
// probability c at each step (and dies at deadends) ends at u.
package montecarlo

import (
	"fmt"
	"math/rand"

	"bepi/internal/graph"
)

// Estimator simulates restart walks on a graph.
type Estimator struct {
	g    *graph.Graph
	c    float64
	seed int64
}

// New returns an estimator with restart probability c (0 < c < 1).
func New(g *graph.Graph, c float64, seed int64) (*Estimator, error) {
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("montecarlo: restart probability %v out of (0,1)", c)
	}
	return &Estimator{g: g, c: c, seed: seed}, nil
}

// Query estimates the RWR vector for the seed node using walks simulated
// random walks. The estimates are unbiased; their standard error scales as
// O(1/√walks).
func (e *Estimator) Query(seedNode, walks int) ([]float64, error) {
	n := e.g.N()
	if seedNode < 0 || seedNode >= n {
		return nil, fmt.Errorf("montecarlo: seed %d out of range [0,%d)", seedNode, n)
	}
	if walks <= 0 {
		return nil, fmt.Errorf("montecarlo: walks must be positive, got %d", walks)
	}
	rng := rand.New(rand.NewSource(e.seed))
	counts := make([]int, n)
	for w := 0; w < walks; w++ {
		u := seedNode
		for {
			if rng.Float64() < e.c {
				counts[u]++
				break
			}
			nbrs := e.g.OutNeighbors(u)
			if len(nbrs) == 0 {
				// Dead walk: in the linear RWR formulation this mass
				// simply vanishes (H's trailing identity block).
				break
			}
			u = nbrs[rng.Intn(len(nbrs))]
		}
	}
	r := make([]float64, n)
	inv := 1 / float64(walks)
	for u, cnt := range counts {
		r[u] = float64(cnt) * inv
	}
	return r, nil
}

// TopK estimates the k highest-scoring nodes (excluding the seed).
func (e *Estimator) TopK(seedNode, walks, k int) ([]Ranked, error) {
	r, err := e.Query(seedNode, walks)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, 0, k+1)
	for node, s := range r {
		if node == seedNode || s == 0 {
			continue
		}
		pos := len(out)
		for pos > 0 && (out[pos-1].Score < s || (out[pos-1].Score == s && out[pos-1].Node > node)) {
			pos--
		}
		if pos >= k {
			continue
		}
		out = append(out, Ranked{})
		copy(out[pos+1:], out[pos:])
		out[pos] = Ranked{Node: node, Score: s}
		if len(out) > k {
			out = out[:k]
		}
	}
	return out, nil
}

// Ranked is a node with its estimated score.
type Ranked struct {
	Node  int
	Score float64
}
