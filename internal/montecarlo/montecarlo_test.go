package montecarlo

import (
	"math"
	"math/rand"
	"testing"

	"bepi/internal/core"
	"bepi/internal/gen"
	"bepi/internal/graph"
	"bepi/internal/vec"
)

func TestEstimatorValidation(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{Src: 0, Dst: 1}})
	if _, err := New(g, 0, 1); err == nil {
		t.Fatal("expected error for c=0")
	}
	if _, err := New(g, 1, 1); err == nil {
		t.Fatal("expected error for c=1")
	}
	e, err := New(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(-1, 10); err == nil {
		t.Fatal("expected error for bad seed")
	}
	if _, err := e.Query(0, 0); err == nil {
		t.Fatal("expected error for zero walks")
	}
}

func TestEstimatesConvergeToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 40
	edges := make([]graph.Edge, 0, 200)
	for i := 0; i < 200; i++ {
		edges = append(edges, graph.Edge{Src: rng.Intn(n), Dst: rng.Intn(n)})
	}
	g := graph.MustNew(n, edges)
	seed := 3
	exact, err := core.ExactDense(g, core.DefaultC, seed)
	if err != nil {
		t.Fatal(err)
	}
	est, err := New(g, core.DefaultC, 11)
	if err != nil {
		t.Fatal(err)
	}
	small, err := est.Query(seed, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	big, err := est.Query(seed, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	errSmall := vec.Dist2(small, exact)
	errBig := vec.Dist2(big, exact)
	if errBig >= errSmall {
		t.Fatalf("more walks did not reduce error: %v vs %v", errBig, errSmall)
	}
	// 100× more walks should cut the L2 error roughly 10×; allow slack.
	if errBig > errSmall/3 {
		t.Fatalf("error only improved %v → %v over 100× walks", errSmall, errBig)
	}
	// The estimate mass must be a probability-like quantity.
	if s := vec.Sum(big); s < 0 || s > 1+1e-12 {
		t.Fatalf("estimate mass %v", s)
	}
}

func TestTopKOverlapWithBePI(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 6, 9))
	seedNode := -1
	for u := 0; u < g.N(); u++ {
		if g.OutDegree(u) > 2 {
			seedNode = u
			break
		}
	}
	if seedNode < 0 {
		t.Fatal("no suitable seed")
	}
	eng, err := core.Preprocess(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exactTop, err := eng.TopK(seedNode, 10)
	if err != nil {
		t.Fatal(err)
	}
	est, err := New(g, core.DefaultC, 12)
	if err != nil {
		t.Fatal(err)
	}
	mcTop, err := est.TopK(seedNode, 300_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{}
	for _, r := range exactTop {
		want[r.Node] = true
	}
	overlap := 0
	for _, r := range mcTop {
		if want[r.Node] {
			overlap++
		}
	}
	if overlap < 5 {
		t.Fatalf("top-10 overlap with exact only %d/10", overlap)
	}
}

func TestDeadendSeedLosesMass(t *testing.T) {
	// From a deadend seed, every non-restart step dies immediately, so the
	// estimate is a point mass ≈ c at the seed.
	g := graph.MustNew(2, []graph.Edge{{Src: 1, Dst: 0}})
	est, err := New(g, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := est.Query(0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r[0]-0.2) > 0.01 || r[1] != 0 {
		t.Fatalf("deadend estimate %v, want ≈[0.2 0]", r)
	}
}
