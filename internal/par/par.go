// Package par is the shared parallel runtime under BePI's preprocessing
// stages and sparse kernels: a bounded goroutine pool, a chunked
// index-range scheduler with deterministic chunk boundaries, and
// per-chunk scratch arenas.
//
// Design constraints, in order:
//
//  1. Determinism. Chunk boundaries depend only on the input size (or
//     weight prefix) and the part count, never on scheduling. Every kernel
//     built on top of this package writes disjoint output ranges and keeps
//     its per-element accumulation order unchanged, so parallel results
//     are bit-identical to the serial path at any worker count.
//  2. No deadlocks under nesting. A parallel stage may call another
//     parallel stage (ChooseHubRatio profiles candidates concurrently and
//     each profile runs a parallel Schur build). Pool slots are therefore
//     acquired with a non-blocking try: a chunk that cannot get a slot
//     immediately runs inline on the submitting goroutine. The submitter
//     never blocks waiting for capacity it might itself be holding.
//  3. Bounded concurrency. At most Workers chunks of any pool run on
//     spawned goroutines at a time, however many stages share it. One
//     engine-level Parallelism knob therefore caps the compute fan-out of
//     preprocessing and of all query kernels together.
package par

import (
	"runtime"
	"sync"
)

// Pool bounds how many chunks may execute on spawned goroutines at once.
// A Pool is safe for concurrent use by any number of goroutines and may be
// shared between engines; the zero-cost way to get one is Shared.
//
// A nil *Pool is valid everywhere and means "run serially".
type Pool struct {
	workers int
	sem     chan struct{} // nil when workers == 1 or sticky

	// sticky, when non-nil, holds the persistent per-worker task channels
	// of a sticky pool (NewStickyPool). Chunk c > 0 of every ForBounds is
	// first offered to worker (c-1) mod len(sticky), so repeated kernel
	// invocations with the same partition land each chunk on the same
	// goroutine (and, when pinned, the same OS thread). That keeps a
	// chunk's output range and first-touched matrix pages local to one
	// worker across applies — the NUMA story behind CSR.FirstTouch.
	sticky []chan func()
	pinned bool
	closed sync.Once
}

// NewPool returns a pool that runs at most workers chunks concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0). A one-worker pool executes
// everything inline on the caller.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.sem = make(chan struct{}, workers)
	}
	return p
}

// NewStickyPool returns a pool whose workers are persistent goroutines with
// a deterministic chunk→worker assignment (see the sticky field). With pin
// set, each worker wires itself to an OS thread via runtime.LockOSThread so
// the OS scheduler cannot migrate it between first-touching pages and
// streaming them later. Dispatch stays non-blocking: a chunk whose owner is
// busy runs inline on the submitter, so the no-deadlock-under-nesting rule
// holds and results remain bit-identical (chunks write disjoint ranges
// regardless of where they run).
//
// Idle workers cost a parked goroutine each; Close releases them. Using the
// pool after Close panics, so only close a pool no kernel will touch again.
func NewStickyPool(workers int, pin bool) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, pinned: pin && workers > 1}
	if workers > 1 {
		p.sticky = make([]chan func(), workers-1)
		for w := range p.sticky {
			ch := make(chan func())
			p.sticky[w] = ch
			go stickyWorker(ch, p.pinned)
		}
	}
	return p
}

func stickyWorker(ch <-chan func(), pin bool) {
	if pin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	for f := range ch {
		f()
	}
}

// Sticky reports whether the pool has persistent sticky workers.
func (p *Pool) Sticky() bool { return p != nil && p.sticky != nil }

// Pinned reports whether the pool's sticky workers are locked to OS threads.
func (p *Pool) Pinned() bool { return p != nil && p.pinned }

// Close shuts down a sticky pool's persistent workers. It is idempotent and
// a no-op on nil or non-sticky pools. The caller must ensure no ForBounds is
// in flight and none will follow: dispatching on a closed pool panics.
func (p *Pool) Close() {
	if p == nil || p.sticky == nil {
		return
	}
	p.closed.Do(func() {
		for _, ch := range p.sticky {
			close(ch)
		}
	})
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool, sized to runtime.GOMAXPROCS(0) at
// first use. Engines built with Parallelism == 0 share it, so any number of
// concurrent preprocessing runs and query streams together stay bounded by
// one machine-sized budget.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPool(0) })
	return sharedPool
}

// Workers returns the pool's concurrency bound; 1 for a nil pool.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ChunkBounds splits [0, n) into parts contiguous chunks of near-equal
// length and returns the parts+1 boundary offsets. Deterministic in (n,
// parts): bounds[c] = c*n/parts, so the first n%parts chunks are one longer.
// parts is clamped to [1, n] (to 1 when n == 0).
func ChunkBounds(n, parts int) []int {
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	bounds := make([]int, parts+1)
	for c := 1; c <= parts; c++ {
		bounds[c] = c * n / parts
	}
	return bounds
}

// BoundsByPrefix splits [0, n) into parts contiguous chunks of near-equal
// total weight, where prefix is the length-(n+1) cumulative weight array
// (prefix[i] = total weight of items [0, i), as in a CSR row-pointer
// array). Deterministic in (prefix, parts). Empty chunks are avoided:
// every chunk spans at least one item while items remain, so bounds are
// strictly increasing and parts is clamped to [1, n].
func BoundsByPrefix(prefix []int, parts int) []int {
	return BoundsByPrefixOf(prefix, parts)
}

// BoundsByPrefixOf is BoundsByPrefix generalized over the prefix element
// type, so compact row-pointer arrays (int32 or int64, as stored by
// sparse.CSR32) drive the same nnz-balanced partition without widening to
// []int first. The boundaries are identical to BoundsByPrefix on the
// widened prefix.
func BoundsByPrefixOf[T int | int32 | int64](prefix []T, parts int) []int {
	n := len(prefix) - 1
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	total := int64(prefix[n]) - int64(prefix[0])
	bounds := make([]int, parts+1)
	bounds[parts] = n
	at := 0
	for c := 1; c < parts; c++ {
		// Last boundary whose cumulative weight stays within the c-th
		// equal share.
		target := int64(prefix[0]) + total*int64(c)/int64(parts)
		for at < n && int64(prefix[at+1]) <= target {
			at++
		}
		// Leave enough items for the remaining chunks to be non-empty.
		if hi := n - (parts - c); at > hi {
			at = hi
		}
		if lo := bounds[c-1] + 1; at < lo {
			at = lo
		}
		bounds[c] = at
	}
	return bounds
}

// For splits [0, n) into Workers() evenly sized chunks and runs
// fn(chunk, lo, hi) for each, returning when all chunks are done. Chunk 0
// always runs on the calling goroutine; the rest run on pool goroutines as
// capacity allows and inline otherwise. A nil or one-worker pool runs a
// single chunk fn(0, 0, n) inline.
func (p *Pool) For(n int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.Workers() == 1 {
		fn(0, 0, n)
		return
	}
	p.ForBounds(ChunkBounds(n, p.workers), fn)
}

// ForBounds is For with caller-supplied chunk boundaries (e.g. from
// BoundsByPrefix for weight-balanced partitions). bounds must be
// non-decreasing; chunk c covers [bounds[c], bounds[c+1]).
func (p *Pool) ForBounds(bounds []int, fn func(chunk, lo, hi int)) {
	parts := len(bounds) - 1
	if parts <= 0 {
		return
	}
	if parts == 1 || p.Workers() == 1 {
		for c := 0; c < parts; c++ {
			fn(c, bounds[c], bounds[c+1])
		}
		return
	}
	if p.sticky != nil {
		p.forBoundsSticky(bounds, parts, fn)
		return
	}
	var wg sync.WaitGroup
	var inline []int
	for c := 1; c < parts; c++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(c int) {
				defer func() {
					<-p.sem
					wg.Done()
				}()
				fn(c, bounds[c], bounds[c+1])
			}(c)
		default:
			// Pool saturated (possibly by our own caller chain): run this
			// chunk on the submitter rather than wait — see the package
			// comment on nesting.
			inline = append(inline, c)
		}
	}
	fn(0, bounds[0], bounds[1])
	for _, c := range inline {
		fn(c, bounds[c], bounds[c+1])
	}
	wg.Wait()
}

// forBoundsSticky dispatches chunk c to its owning persistent worker. The
// send is non-blocking — an unbuffered channel accepts only when the worker
// is parked in receive — so a busy owner (another stage holding it, or more
// chunks than workers) degrades to inline execution on the submitter
// instead of blocking, exactly like the semaphore path.
func (p *Pool) forBoundsSticky(bounds []int, parts int, fn func(chunk, lo, hi int)) {
	var wg sync.WaitGroup
	var inline []int
	for c := 1; c < parts; c++ {
		c := c
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(c, bounds[c], bounds[c+1])
		}
		select {
		case p.sticky[(c-1)%len(p.sticky)] <- task:
		default:
			wg.Done()
			inline = append(inline, c)
		}
	}
	fn(0, bounds[0], bounds[1])
	for _, c := range inline {
		fn(c, bounds[c], bounds[c+1])
	}
	wg.Wait()
}

// Each runs fn(i) for every i in [0, n), distributing contiguous index
// ranges over the pool. Iteration order within a chunk is ascending.
func (p *Pool) Each(n int, fn func(i int)) {
	p.For(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Arena hands out one lazily built scratch value per chunk index, so a
// parallel kernel can reuse accumulators across chunks without sharing
// them between concurrently running ones. Get is safe for concurrent use
// by distinct chunk indices — exactly the access pattern of For — and an
// Arena may be reused across sequential For invocations on the same pool.
type Arena[T any] struct {
	mk    func() T
	slots []T
	built []bool
}

// NewArena returns an arena with parts slots; mk builds a slot's scratch
// value on first use.
func NewArena[T any](parts int, mk func() T) *Arena[T] {
	if parts < 1 {
		parts = 1
	}
	return &Arena[T]{mk: mk, slots: make([]T, parts), built: make([]bool, parts)}
}

// Get returns chunk's scratch value, building it on first use.
func (a *Arena[T]) Get(chunk int) T {
	if !a.built[chunk] {
		a.slots[chunk] = a.mk()
		a.built[chunk] = true
	}
	return a.slots[chunk]
}
