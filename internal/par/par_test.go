package par

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// checkBounds asserts the structural invariants every bounds slice must
// satisfy: starts at 0, ends at n, and (for n > 0) strictly increasing so no
// chunk is empty.
func checkBounds(t *testing.T, bounds []int, n int) {
	t.Helper()
	if bounds[0] != 0 || bounds[len(bounds)-1] != n {
		t.Fatalf("bounds %v do not cover [0,%d)", bounds, n)
	}
	for c := 1; c < len(bounds); c++ {
		if n > 0 && bounds[c] <= bounds[c-1] {
			t.Fatalf("bounds %v: empty or inverted chunk %d", bounds, c-1)
		}
	}
}

func TestChunkBounds(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 1}, {1, 8}, {5, 2}, {7, 7}, {10, 3}, {100, 7}, {3, 0}, {3, -2},
	} {
		bounds := ChunkBounds(tc.n, tc.parts)
		checkBounds(t, bounds, tc.n)
		if tc.n > 0 && tc.parts >= 1 && tc.parts <= tc.n && len(bounds) != tc.parts+1 {
			t.Fatalf("ChunkBounds(%d,%d) = %v, want %d chunks", tc.n, tc.parts, bounds, tc.parts)
		}
		// Near-equal: chunk lengths differ by at most one.
		min, max := tc.n+1, -1
		for c := 1; c < len(bounds); c++ {
			l := bounds[c] - bounds[c-1]
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if tc.n > 0 && max-min > 1 {
			t.Fatalf("ChunkBounds(%d,%d) = %v: lengths range [%d,%d]", tc.n, tc.parts, bounds, min, max)
		}
	}
}

func TestBoundsByPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		prefix := make([]int, n+1)
		for i := 1; i <= n; i++ {
			// Weights include zeros and the occasional heavy item, like CSR
			// rows of a power-law graph.
			w := rng.Intn(4)
			if rng.Intn(10) == 0 {
				w = 1000
			}
			prefix[i] = prefix[i-1] + w
		}
		parts := 1 + rng.Intn(12)
		bounds := BoundsByPrefix(prefix, parts)
		checkBounds(t, bounds, n)
		want := parts
		if want > n {
			want = n
		}
		if len(bounds) != want+1 {
			t.Fatalf("BoundsByPrefix(n=%d, parts=%d) produced %d chunks, want %d",
				n, parts, len(bounds)-1, want)
		}
		// Deterministic: same inputs, same bounds.
		again := BoundsByPrefix(prefix, parts)
		for i := range bounds {
			if bounds[i] != again[i] {
				t.Fatalf("BoundsByPrefix not deterministic: %v vs %v", bounds, again)
			}
		}
	}
}

// TestBoundsByPrefixOfMatchesWide: the int32/int64 instantiations must pick
// exactly the boundaries of the []int version on the same weights.
func TestBoundsByPrefixOfMatchesWide(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(60)
		prefix := make([]int, n+1)
		p32 := make([]int32, n+1)
		p64 := make([]int64, n+1)
		for i := 1; i <= n; i++ {
			prefix[i] = prefix[i-1] + rng.Intn(5)
			p32[i] = int32(prefix[i])
			p64[i] = int64(prefix[i])
		}
		parts := 1 + rng.Intn(10)
		want := BoundsByPrefix(prefix, parts)
		for i, got := range [][]int{BoundsByPrefixOf(p32, parts), BoundsByPrefixOf(p64, parts)} {
			if len(got) != len(want) {
				t.Fatalf("variant %d: %v vs %v", i, got, want)
			}
			for c := range got {
				if got[c] != want[c] {
					t.Fatalf("variant %d differs: %v vs %v", i, got, want)
				}
			}
		}
	}
}

func TestBoundsByPrefixBalances(t *testing.T) {
	// Uniform weights must reduce to near-equal chunks.
	n, parts := 1000, 8
	prefix := make([]int, n+1)
	for i := 1; i <= n; i++ {
		prefix[i] = i * 3
	}
	bounds := BoundsByPrefix(prefix, parts)
	for c := 1; c < len(bounds); c++ {
		l := bounds[c] - bounds[c-1]
		if l < n/parts-1 || l > n/parts+1 {
			t.Fatalf("uniform weights gave unbalanced bounds %v", bounds)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 3, 1000} {
			counts := make([]int32, n)
			p.For(n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestEachCoversEveryIndexOnce(t *testing.T) {
	p := NewPool(8)
	const n = 5000
	counts := make([]int32, n)
	p.Each(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", p.Workers())
	}
	calls := 0
	p.For(10, func(chunk, lo, hi int) {
		calls++
		if chunk != 0 || lo != 0 || hi != 10 {
			t.Fatalf("nil pool chunk (%d,%d,%d), want (0,0,10)", chunk, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("nil pool made %d calls, want 1", calls)
	}
}

// TestNestedForNoDeadlock exercises the try-acquire design: every level of a
// deeply nested parallel call chain shares one small pool. With blocking
// acquisition this deadlocks (outer chunks hold all slots while inner calls
// wait); with the inline fallback it must complete.
func TestNestedForNoDeadlock(t *testing.T) {
	p := NewPool(2)
	var total int64
	p.For(8, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p.For(8, func(_, lo2, hi2 int) {
				for j := lo2; j < hi2; j++ {
					p.Each(4, func(int) { atomic.AddInt64(&total, 1) })
				}
			})
		}
	})
	if total != 8*8*4 {
		t.Fatalf("nested For total = %d, want %d", total, 8*8*4)
	}
}

// TestSharedPoolConcurrentFor stresses many goroutines driving For on one
// pool at once — the shape of concurrent engine preprocessing runs sharing
// Shared(). Run under -race this also checks the scheduler's own state.
func TestSharedPoolConcurrentFor(t *testing.T) {
	p := Shared()
	const goroutines, n = 16, 2000
	var wg sync.WaitGroup
	totals := make([]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				var sum int64
				p.For(n, func(_, lo, hi int) {
					var local int64
					for i := lo; i < hi; i++ {
						local += int64(i)
					}
					atomic.AddInt64(&sum, local)
				})
				totals[g] = sum
			}
		}(g)
	}
	wg.Wait()
	want := int64(n) * int64(n-1) / 2
	for g, got := range totals {
		if got != want {
			t.Fatalf("goroutine %d sum = %d, want %d", g, got, want)
		}
	}
}

func TestArenaPerChunkScratch(t *testing.T) {
	p := NewPool(4)
	built := int32(0)
	arena := NewArena(4, func() []int {
		atomic.AddInt32(&built, 1)
		return make([]int, 8)
	})
	// Two sequential For rounds reuse the same per-chunk slots.
	for round := 0; round < 2; round++ {
		p.For(4000, func(chunk, lo, hi int) {
			s := arena.Get(chunk)
			s[0]++ // safe: one goroutine per chunk index at a time
		})
	}
	if built > 4 {
		t.Fatalf("arena built %d scratch values for 4 slots", built)
	}
	sum := 0
	for c := 0; c < 4; c++ {
		sum += arena.Get(c)[0]
	}
	// Each round visits every chunk that actually ran; with 4000 items and 4
	// workers, all 4 chunks run each round.
	if sum != 8 {
		t.Fatalf("arena uses summed to %d, want 8", sum)
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if w := NewPool(0).Workers(); w < 1 {
		t.Fatalf("NewPool(0).Workers() = %d", w)
	}
	if w := NewPool(-3).Workers(); w < 1 {
		t.Fatalf("NewPool(-3).Workers() = %d", w)
	}
	if w := NewPool(6).Workers(); w != 6 {
		t.Fatalf("NewPool(6).Workers() = %d, want 6", w)
	}
	if Shared() != Shared() {
		t.Fatal("Shared() is not a singleton")
	}
}
