package par

import (
	"sync/atomic"
	"testing"
)

// TestStickyPoolCoversEveryIndexOnce: the sticky dispatch path must visit
// every index exactly once at any worker count, like the semaphore path.
func TestStickyPoolCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewStickyPool(workers, false)
		for _, n := range []int{0, 1, 3, 1000} {
			counts := make([]int32, n)
			p.For(n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
	}
}

// TestStickyPoolMoreChunksThanWorkers drives ForBounds with far more chunks
// than workers, so the modular chunk→worker assignment wraps and the inline
// fallback fires for chunks whose owner is busy.
func TestStickyPoolMoreChunksThanWorkers(t *testing.T) {
	p := NewStickyPool(3, false)
	defer p.Close()
	const n, parts = 700, 29
	bounds := ChunkBounds(n, parts)
	counts := make([]int32, n)
	for rep := 0; rep < 20; rep++ {
		p.ForBounds(bounds, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
	}
	for i, c := range counts {
		if c != 20 {
			t.Fatalf("index %d visited %d times, want 20", i, c)
		}
	}
}

// TestStickyPoolNestedNoDeadlock: the non-blocking offer must preserve the
// inline-fallback guarantee when a sticky worker's task itself dispatches on
// the same pool.
func TestStickyPoolNestedNoDeadlock(t *testing.T) {
	p := NewStickyPool(2, false)
	defer p.Close()
	var total int64
	p.For(8, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p.For(8, func(_, lo2, hi2 int) {
				for j := lo2; j < hi2; j++ {
					p.Each(4, func(int) { atomic.AddInt64(&total, 1) })
				}
			})
		}
	})
	if total != 8*8*4 {
		t.Fatalf("nested For total = %d, want %d", total, 8*8*4)
	}
}

// TestStickyPoolPinned: pinning is a placement hint, not a semantic change —
// a pinned pool must produce the same coverage, and the accessors must
// report the configuration.
func TestStickyPoolPinned(t *testing.T) {
	p := NewStickyPool(4, true)
	defer p.Close()
	if !p.Sticky() || !p.Pinned() {
		t.Fatalf("Sticky()=%v Pinned()=%v, want true,true", p.Sticky(), p.Pinned())
	}
	const n = 2000
	counts := make([]int32, n)
	for rep := 0; rep < 10; rep++ {
		p.Each(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	}
	for i, c := range counts {
		if c != 10 {
			t.Fatalf("pinned pool: index %d visited %d times", i, c)
		}
	}
}

// TestStickyPoolAccessors covers the degenerate configurations: one-worker
// sticky pools run inline (no workers to pin), plain pools and nil pools
// are never sticky, and Close is idempotent and safe on all of them.
func TestStickyPoolAccessors(t *testing.T) {
	one := NewStickyPool(1, true)
	if one.Sticky() || one.Pinned() {
		t.Fatalf("one-worker sticky pool: Sticky()=%v Pinned()=%v, want false,false",
			one.Sticky(), one.Pinned())
	}
	calls := 0
	one.For(5, func(chunk, lo, hi int) { calls++ })
	if calls != 1 {
		t.Fatalf("one-worker sticky pool made %d calls, want 1", calls)
	}

	plain := NewPool(4)
	if plain.Sticky() || plain.Pinned() {
		t.Fatal("plain pool claims to be sticky or pinned")
	}
	var nilPool *Pool
	if nilPool.Sticky() || nilPool.Pinned() {
		t.Fatal("nil pool claims to be sticky or pinned")
	}

	// Close: idempotent on sticky pools, a no-op everywhere else.
	p := NewStickyPool(4, false)
	p.Close()
	p.Close()
	one.Close()
	plain.Close()
	nilPool.Close()

	if NewStickyPool(0, false).Workers() < 1 {
		t.Fatal("NewStickyPool(0) must default to GOMAXPROCS")
	}
}

// TestStickyPoolConcurrentFor stresses many goroutines sharing one sticky
// pool: the per-worker channels are contended, so most chunks fall back
// inline, and every submission must still complete with the right sum.
func TestStickyPoolConcurrentFor(t *testing.T) {
	p := NewStickyPool(4, false)
	defer p.Close()
	const goroutines, n = 8, 2000
	done := make(chan int64, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			var sum int64
			for rep := 0; rep < 5; rep++ {
				sum = 0
				p.For(n, func(_, lo, hi int) {
					var local int64
					for i := lo; i < hi; i++ {
						local += int64(i)
					}
					atomic.AddInt64(&sum, local)
				})
			}
			done <- sum
		}()
	}
	want := int64(n) * int64(n-1) / 2
	for g := 0; g < goroutines; g++ {
		if got := <-done; got != want {
			t.Fatalf("concurrent sticky For sum = %d, want %d", got, want)
		}
	}
}
