package graph

import (
	"fmt"
	"sort"
)

// WithEdgeDeltas returns a new graph with n nodes (n ≥ g.N(); the extra
// nodes are appended with no edges) whose edge set is g's with del removed
// and add inserted. The receiver is unchanged and shares no storage with the
// result, and the result is identical to New(n, merged edge list) — rows
// stay sorted and deduplicated — at O(M + changes) cost instead of
// O(M log M). Inserting an edge the graph already has, deleting one it
// lacks, or listing the same edge twice (including in both lists — the
// batch is a set of net changes, not a sequential log) is an error: callers
// hold the exact change set, and a silent collapse would desynchronize it
// from the graph.
func (g *Graph) WithEdgeDeltas(n int, add, del []Edge) (*Graph, error) {
	if n < g.n {
		return nil, fmt.Errorf("graph: node count shrank %d → %d", g.n, n)
	}
	for _, e := range add {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range n=%d", e.Src, e.Dst, n)
		}
	}
	for _, e := range del {
		if e.Src < 0 || e.Src >= g.n || e.Dst < 0 || e.Dst >= g.n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range n=%d", e.Src, e.Dst, g.n)
		}
	}

	type rowDelta struct{ add, del []int }
	rows := make(map[int]*rowDelta, len(add)+len(del))
	rowOf := func(src int) *rowDelta {
		rd := rows[src]
		if rd == nil {
			rd = &rowDelta{}
			rows[src] = rd
		}
		return rd
	}
	for _, e := range add {
		rd := rowOf(e.Src)
		rd.add = append(rd.add, e.Dst)
	}
	for _, e := range del {
		rd := rowOf(e.Src)
		rd.del = append(rd.del, e.Dst)
	}
	for src, rd := range rows {
		sort.Ints(rd.add)
		sort.Ints(rd.del)
		for p := 1; p < len(rd.add); p++ {
			if rd.add[p] == rd.add[p-1] {
				return nil, fmt.Errorf("graph: duplicate insert (%d,%d)", src, rd.add[p])
			}
		}
		for p := 1; p < len(rd.del); p++ {
			if rd.del[p] == rd.del[p-1] {
				return nil, fmt.Errorf("graph: duplicate delete (%d,%d)", src, rd.del[p])
			}
		}
	}

	outPtr := make([]int, n+1)
	adj := make([]int, 0, g.M()+len(add))
	inDeg := make([]int, n)
	copy(inDeg, g.inDeg)
	for _, e := range del {
		inDeg[e.Dst]--
	}
	for _, e := range add {
		inDeg[e.Dst]++
	}
	for i := 0; i < n; i++ {
		var old []int
		if i < g.n {
			old = g.OutNeighbors(i)
		}
		rd := rows[i]
		if rd == nil {
			adj = append(adj, old...)
			outPtr[i+1] = len(adj)
			continue
		}
		ai, di := 0, 0
		for _, v := range old {
			for ai < len(rd.add) && rd.add[ai] < v {
				adj = append(adj, rd.add[ai])
				ai++
			}
			if ai < len(rd.add) && rd.add[ai] == v {
				return nil, fmt.Errorf("graph: insert of existing edge (%d,%d)", i, v)
			}
			for di < len(rd.del) && rd.del[di] < v {
				return nil, fmt.Errorf("graph: delete of missing edge (%d,%d)", i, rd.del[di])
			}
			if di < len(rd.del) && rd.del[di] == v {
				di++
				continue
			}
			adj = append(adj, v)
		}
		adj = append(adj, rd.add[ai:]...)
		if di < len(rd.del) {
			return nil, fmt.Errorf("graph: delete of missing edge (%d,%d)", i, rd.del[di])
		}
		outPtr[i+1] = len(adj)
	}
	return &Graph{n: n, outPtr: outPtr, outAdj: adj, inDeg: inDeg}, nil
}
