// Package graph provides the directed-graph representation used by the BePI
// reproduction: construction from edge lists, adjacency in CSR form, degree
// and deadend accounting, undirected connected components, and subgraph
// extraction for the scalability experiments.
package graph

import (
	"fmt"
	"sort"

	"bepi/internal/sparse"
)

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst int
}

// Graph is an immutable directed graph over nodes 0..N-1 with out-adjacency
// stored in CSR layout. Parallel edges are collapsed and self-loops kept.
type Graph struct {
	n      int
	outPtr []int // len n+1
	outAdj []int // concatenated sorted out-neighbor lists
	inDeg  []int
}

// New builds a graph with n nodes from the given edges. Edges referencing
// nodes outside [0, n) cause an error. Duplicate edges are collapsed.
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	for _, e := range edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range n=%d", e.Src, e.Dst, n)
		}
	}
	outPtr := make([]int, n+1)
	for _, e := range edges {
		outPtr[e.Src+1]++
	}
	for i := 0; i < n; i++ {
		outPtr[i+1] += outPtr[i]
	}
	adj := make([]int, len(edges))
	next := make([]int, n)
	copy(next, outPtr[:n])
	for _, e := range edges {
		adj[next[e.Src]] = e.Dst
		next[e.Src]++
	}
	// Sort and dedupe each neighbor list.
	out := 0
	newPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		lst := adj[outPtr[i]:outPtr[i+1]]
		sort.Ints(lst)
		start := out
		for _, v := range lst {
			if out > start && adj[out-1] == v {
				continue
			}
			adj[out] = v
			out++
		}
		newPtr[i+1] = out
	}
	adj = adj[:out]
	inDeg := make([]int, n)
	for _, v := range adj {
		inDeg[v]++
	}
	return &Graph{n: n, outPtr: newPtr, outAdj: adj, inDeg: inDeg}, nil
}

// MustNew is New but panics on error; for tests and generators that
// construct edges they know are valid.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of (deduplicated) directed edges.
func (g *Graph) M() int { return len(g.outAdj) }

// OutNeighbors returns the sorted out-neighbor list of node u (shared
// storage; do not mutate).
func (g *Graph) OutNeighbors(u int) []int { return g.outAdj[g.outPtr[u]:g.outPtr[u+1]] }

// OutDegree returns the out-degree of node u.
func (g *Graph) OutDegree(u int) int { return g.outPtr[u+1] - g.outPtr[u] }

// InDegree returns the in-degree of node u.
func (g *Graph) InDegree(u int) int { return g.inDeg[u] }

// HasEdge reports whether the directed edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	lst := g.OutNeighbors(u)
	p := sort.SearchInts(lst, v)
	return p < len(lst) && lst[p] == v
}

// Edges returns all edges in (src, dst) order.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.M())
	for u := 0; u < g.n; u++ {
		for _, v := range g.OutNeighbors(u) {
			edges = append(edges, Edge{u, v})
		}
	}
	return edges
}

// Deadends returns the sorted list of nodes with no out-edges.
func (g *Graph) Deadends() []int {
	var d []int
	for u := 0; u < g.n; u++ {
		if g.OutDegree(u) == 0 {
			d = append(d, u)
		}
	}
	return d
}

// Adjacency returns the n×n adjacency matrix A with A[u][v] = 1 for each
// edge (u, v).
func (g *Graph) Adjacency() *sparse.CSR {
	rowPtr := make([]int, g.n+1)
	copy(rowPtr, g.outPtr)
	col := make([]int, len(g.outAdj))
	copy(col, g.outAdj)
	val := make([]float64, len(col))
	for i := range val {
		val[i] = 1
	}
	return sparse.NewCSR(g.n, g.n, rowPtr, col, val)
}

// UndirectedComponents treats edges as undirected and returns the component
// id of every node plus the component sizes. Component ids are assigned in
// discovery (BFS from node 0 upward) order.
func (g *Graph) UndirectedComponents() (compOf []int, sizes []int) {
	und := g.undirectedAdj()
	compOf = make([]int, g.n)
	for i := range compOf {
		compOf[i] = -1
	}
	var queue []int
	for s := 0; s < g.n; s++ {
		if compOf[s] >= 0 {
			continue
		}
		id := len(sizes)
		size := 0
		queue = append(queue[:0], s)
		compOf[s] = id
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			size++
			for _, v := range und.neighbors(u) {
				if compOf[v] < 0 {
					compOf[v] = id
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return compOf, sizes
}

// undirected is a symmetric adjacency built once for BFS traversals.
type undirected struct {
	ptr []int
	adj []int
}

func (u *undirected) neighbors(v int) []int { return u.adj[u.ptr[v]:u.ptr[v+1]] }

func (g *Graph) undirectedAdj() *undirected {
	deg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.OutNeighbors(u) {
			deg[u]++
			if v != u {
				deg[v]++
			}
		}
	}
	ptr := make([]int, g.n+1)
	for i := 0; i < g.n; i++ {
		ptr[i+1] = ptr[i] + deg[i]
	}
	adj := make([]int, ptr[g.n])
	next := make([]int, g.n)
	copy(next, ptr[:g.n])
	for u := 0; u < g.n; u++ {
		for _, v := range g.OutNeighbors(u) {
			adj[next[u]] = v
			next[u]++
			if v != u {
				adj[next[v]] = u
				next[v]++
			}
		}
	}
	return &undirected{ptr: ptr, adj: adj}
}

// EdgePrefix returns the subgraph induced by the first m edges in (src, dst)
// lexicographic order, over the same node set. This mirrors the paper's
// scalability protocol of taking principal submatrices with a target edge
// count (§4.4).
func (g *Graph) EdgePrefix(m int) *Graph {
	if m < 0 || m > g.M() {
		panic(fmt.Sprintf("graph: EdgePrefix %d out of range [0,%d]", m, g.M()))
	}
	edges := g.Edges()[:m]
	// Restrict to the principal submatrix: keep only nodes < maxNode+1 where
	// maxNode is the largest endpoint referenced, matching the paper's
	// "upper left part of the adjacency matrix" protocol.
	maxNode := -1
	for _, e := range edges {
		if e.Src > maxNode {
			maxNode = e.Src
		}
		if e.Dst > maxNode {
			maxNode = e.Dst
		}
	}
	return MustNew(maxNode+1, edges)
}

// NodePrefix returns the principal subgraph on nodes [0, x): the upper-left
// part of the adjacency matrix, the paper's scalability protocol (§4.4).
func (g *Graph) NodePrefix(x int) *Graph {
	if x < 0 || x > g.n {
		panic(fmt.Sprintf("graph: NodePrefix %d out of range [0,%d]", x, g.n))
	}
	var edges []Edge
	for u := 0; u < x; u++ {
		for _, v := range g.OutNeighbors(u) {
			if v < x {
				edges = append(edges, Edge{u, v})
			}
		}
	}
	return MustNew(x, edges)
}

// InducedSubgraph returns the subgraph on the given nodes (relabelled
// 0..len(nodes)-1 in the given order) keeping only edges with both endpoints
// in the set.
func (g *Graph) InducedSubgraph(nodes []int) *Graph {
	newID := make(map[int]int, len(nodes))
	for i, u := range nodes {
		newID[u] = i
	}
	var edges []Edge
	for _, u := range nodes {
		for _, v := range g.OutNeighbors(u) {
			if j, ok := newID[v]; ok {
				edges = append(edges, Edge{newID[u], j})
			}
		}
	}
	return MustNew(len(nodes), edges)
}

// Relabel returns a graph in which old node i becomes perm[i].
func (g *Graph) Relabel(perm []int) *Graph {
	if len(perm) != g.n {
		panic(fmt.Sprintf("graph: perm length %d want %d", len(perm), g.n))
	}
	edges := make([]Edge, 0, g.M())
	for u := 0; u < g.n; u++ {
		for _, v := range g.OutNeighbors(u) {
			edges = append(edges, Edge{perm[u], perm[v]})
		}
	}
	return MustNew(g.n, edges)
}

// String returns a short description.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{n=%d, m=%d, deadends=%d}", g.n, g.M(), len(g.Deadends()))
}
