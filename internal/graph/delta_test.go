package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestWithEdgeDeltasMatchesNew patches random graphs with random edge
// deltas (including node growth) and checks the result is structurally
// identical to a from-scratch New over the merged edge list.
func TestWithEdgeDeltasMatchesNew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if rng.Float64() < 0.15 {
					edges = append(edges, Edge{u, v})
				}
			}
		}
		g := MustNew(n, edges)

		have := map[Edge]bool{}
		for _, e := range g.Edges() {
			have[e] = true
		}
		var add, del []Edge
		deleted := map[Edge]bool{}
		for e := range have {
			if rng.Float64() < 0.2 {
				del = append(del, e)
				deleted[e] = true
				delete(have, e)
			}
		}
		n2 := n
		if rng.Float64() < 0.3 {
			n2 += 1 + rng.Intn(3)
		}
		for i := 0; i < rng.Intn(8); i++ {
			// Re-inserting an edge deleted in the same batch is refused (the
			// batch is not a sequential log), so the generator avoids it.
			e := Edge{rng.Intn(n2), rng.Intn(n2)}
			if !have[e] && !deleted[e] {
				have[e] = true
				add = append(add, e)
			}
		}

		got, err := g.WithEdgeDeltas(n2, add, del)
		if err != nil {
			t.Fatal(err)
		}
		merged := make([]Edge, 0, len(have))
		for e := range have {
			merged = append(merged, e)
		}
		want := MustNew(n2, merged)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: patched graph differs from rebuilt graph\n got %v\nwant %v", trial, got, want)
		}
	}
}

func TestWithEdgeDeltasErrors(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1}, {1, 2}})
	cases := []struct {
		name     string
		n        int
		add, del []Edge
	}{
		{"shrink", 2, nil, nil},
		{"add out of range", 3, []Edge{{0, 3}}, nil},
		{"del out of range", 3, nil, []Edge{{3, 0}}},
		{"insert existing", 3, []Edge{{0, 1}}, nil},
		{"delete missing", 3, nil, []Edge{{0, 2}}},
		{"delete missing past row end", 3, nil, []Edge{{1, 0}}},
		{"duplicate insert", 3, []Edge{{0, 2}, {0, 2}}, nil},
		{"duplicate delete", 3, nil, []Edge{{0, 1}, {0, 1}}},
	}
	for _, tc := range cases {
		if _, err := g.WithEdgeDeltas(tc.n, tc.add, tc.del); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// The receiver survives every failed patch untouched.
	if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("receiver mutated by failed patches")
	}
}
