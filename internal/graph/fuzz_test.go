package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the text parser never panics and that accepted
// graphs round-trip through WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% other\n\n3\t4\n")
	f.Add("a b\n")
	f.Add("-1 0\n")
	f.Add("99999999999999999999 0\n")
	f.Add("0 1 extra fields are fine\n")

	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if g.N() < 0 || g.M() < 0 {
			t.Fatal("negative sizes accepted")
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if back.M() != g.M() {
			t.Fatalf("round trip changed edges: %d vs %d", back.M(), g.M())
		}
	})
}
