package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bepi/internal/sparse"
)

// ReadEdgeList parses a whitespace-separated "src dst" edge list, one edge
// per line. Lines beginning with '#' or '%' are comments. Node ids may be
// arbitrary non-negative integers; the graph is sized to the largest id
// seen plus one, so sparse id spaces produce isolated nodes (which are
// deadends, as in the paper's datasets).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %q", lineNo, line)
		}
		src, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src %q: %w", lineNo, fields[0], err)
		}
		dst, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst %q: %w", lineNo, fields[1], err)
		}
		if src < 0 || dst < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		if src > maxID {
			maxID = src
		}
		if dst > maxID {
			maxID = dst
		}
		edges = append(edges, Edge{src, dst})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	return New(maxID+1, edges)
}

// ReadMatrixMarketGraph parses a MatrixMarket coordinate stream as a
// directed graph: every stored entry (i, j) becomes the edge i→j (values
// are ignored; symmetric inputs yield both directions). Many public graph
// datasets ship in this format.
func ReadMatrixMarketGraph(r io.Reader) (*Graph, error) {
	m, err := sparse.ReadMatrixMarket(r)
	if err != nil {
		return nil, err
	}
	n := m.Rows()
	if m.Cols() > n {
		n = m.Cols()
	}
	edges := make([]Edge, 0, m.NNZ())
	cols := m.ColIdx()
	for i := 0; i < m.Rows(); i++ {
		s, e := m.RowRange(i)
		for p := s; p < e; p++ {
			edges = append(edges, Edge{Src: i, Dst: cols[p]})
		}
	}
	return New(n, edges)
}

// WriteMatrixMarket writes the graph's adjacency pattern in MatrixMarket
// coordinate format.
func (g *Graph) WriteMatrixMarket(w io.Writer) error {
	return g.Adjacency().WriteMatrixMarket(w)
}

// WriteEdgeList writes the graph as a "src dst" edge list.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.OutNeighbors(u) {
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
