package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := New(6, []Edge{
		{0, 1}, {0, 2}, {1, 2}, {2, 0}, {3, 4},
		{0, 1}, // duplicate, must collapse
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewBasics(t *testing.T) {
	g := testGraph(t)
	if g.N() != 6 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 5 {
		t.Fatalf("M = %d (duplicate not collapsed?)", g.M())
	}
	if got := g.OutNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("OutNeighbors(0) = %v", got)
	}
	if g.OutDegree(5) != 0 || g.InDegree(2) != 2 {
		t.Fatal("degree accounting wrong")
	}
	if !g.HasEdge(2, 0) || g.HasEdge(0, 3) {
		t.Fatal("HasEdge wrong")
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	if _, err := New(2, []Edge{{0, 2}}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := New(-1, nil); err == nil {
		t.Fatal("expected error for negative n")
	}
}

func TestDeadends(t *testing.T) {
	g := testGraph(t)
	d := g.Deadends()
	if len(d) != 2 || d[0] != 4 || d[1] != 5 {
		t.Fatalf("Deadends = %v", d)
	}
}

func TestAdjacency(t *testing.T) {
	g := testGraph(t)
	a := g.Adjacency()
	if a.Rows() != 6 || a.NNZ() != 5 {
		t.Fatalf("adjacency %v", a)
	}
	if a.At(0, 1) != 1 || a.At(1, 0) != 0 {
		t.Fatal("adjacency entries wrong")
	}
}

func TestUndirectedComponents(t *testing.T) {
	g := testGraph(t)
	comp, sizes := g.UndirectedComponents()
	if len(sizes) != 3 {
		t.Fatalf("components = %d, want 3 (sizes %v)", len(sizes), sizes)
	}
	if comp[0] != comp[1] || comp[0] != comp[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Fatal("3,4 should be their own component")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatal("5 should be isolated")
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != g.N() {
		t.Fatalf("component sizes sum to %d, want %d", total, g.N())
	}
}

func TestEdgePrefix(t *testing.T) {
	g := testGraph(t)
	sub := g.EdgePrefix(3)
	if sub.M() != 3 {
		t.Fatalf("prefix M = %d", sub.M())
	}
	// First three edges lexicographically: (0,1),(0,2),(1,2) → max node 2.
	if sub.N() != 3 {
		t.Fatalf("prefix N = %d", sub.N())
	}
	if g.EdgePrefix(0).N() != 0 {
		t.Fatal("empty prefix should have no nodes")
	}
}

func TestNodePrefix(t *testing.T) {
	g := testGraph(t)
	sub := g.NodePrefix(3)
	if sub.N() != 3 {
		t.Fatalf("N = %d", sub.N())
	}
	// Edges among {0,1,2}: (0,1),(0,2),(1,2),(2,0).
	if sub.M() != 4 {
		t.Fatalf("M = %d", sub.M())
	}
	if !sub.HasEdge(2, 0) || sub.HasEdge(0, 3) {
		t.Fatal("NodePrefix edges wrong")
	}
	if g.NodePrefix(0).N() != 0 {
		t.Fatal("empty prefix")
	}
	full := g.NodePrefix(g.N())
	if full.M() != g.M() {
		t.Fatal("full prefix should keep all edges")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range prefix")
		}
	}()
	g.NodePrefix(g.N() + 1)
}

func TestInducedSubgraph(t *testing.T) {
	g := testGraph(t)
	sub := g.InducedSubgraph([]int{2, 0, 1})
	// Relabel: 2→0, 0→1, 1→2. Edges among {0,1,2}: (0,1),(0,2),(1,2),(2,0).
	if sub.N() != 3 || sub.M() != 4 {
		t.Fatalf("induced %v", sub)
	}
	if !sub.HasEdge(0, 1) { // old (2,0)
		t.Fatal("missing relabelled edge")
	}
}

func TestRelabel(t *testing.T) {
	g := testGraph(t)
	perm := []int{5, 4, 3, 2, 1, 0}
	r := g.Relabel(perm)
	if r.M() != g.M() {
		t.Fatal("relabel changed edge count")
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.OutNeighbors(u) {
			if !r.HasEdge(perm[u], perm[v]) {
				t.Fatalf("edge (%d,%d) missing after relabel", perm[u], perm[v])
			}
		}
	}
}

func TestReadWriteEdgeList(t *testing.T) {
	in := `# a comment
% another comment
0 1
1	2
2 0

3 3
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("parsed %v", g)
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatal("edge list round trip changed graph")
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.OutNeighbors(u) {
			if !back.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) lost in round trip", u, v)
			}
		}
	}
}

func TestMatrixMarketGraphRoundTrip(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := g.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarketGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d want n=%d m=%d", back.N(), back.M(), g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.OutNeighbors(u) {
			if !back.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) lost", u, v)
			}
		}
	}
}

func TestReadMatrixMarketGraphSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
3 3 2
2 1
3 2
`
	g, err := ReadMatrixMarketGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 {
		t.Fatalf("M = %d, want 4 (symmetric expansion)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("symmetric edges missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{"0", "a b", "0 b", "-1 2"}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

// Property: component ids partition the nodes and edges never cross
// components (in the undirected sense).
func TestQuickComponentsArePartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		m := r.Intn(3 * n)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{r.Intn(n), r.Intn(n)}
		}
		g := MustNew(n, edges)
		comp, sizes := g.UndirectedComponents()
		count := make([]int, len(sizes))
		for _, c := range comp {
			if c < 0 || c >= len(sizes) {
				return false
			}
			count[c]++
		}
		for i := range sizes {
			if count[i] != sizes[i] {
				return false
			}
		}
		for u := 0; u < n; u++ {
			for _, v := range g.OutNeighbors(u) {
				if comp[u] != comp[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
