// Package eig computes approximate spectra of (optionally preconditioned)
// sparse operators via Arnoldi projection followed by a shifted complex
// Hessenberg QR iteration. The paper's Figure 7 uses the resulting Ritz
// values to show that ILU preconditioning clusters the Schur complement's
// eigenvalues tightly around 1, which is why preconditioned GMRES converges
// in a fraction of the iterations (Table 4).
package eig

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"

	"bepi/internal/solver"
	"bepi/internal/vec"
)

// Arnoldi runs m steps of the Arnoldi iteration on the n-dimensional
// operator a (preconditioned by pre if non-nil), returning the square upper
// Hessenberg projection H_m (size k×k with k ≤ m; smaller on breakdown).
// The starting vector is pseudo-random with the given seed.
func Arnoldi(a solver.Operator, pre solver.Preconditioner, n, m int, seed int64) [][]complex128 {
	if m > n {
		m = n
	}
	if m <= 0 || n == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	v0 := make([]float64, n)
	for i := range v0 {
		v0[i] = rng.NormFloat64()
	}
	vec.Scale(1/vec.Norm2(v0), v0)

	basis := [][]float64{v0}
	// h[j][i] = entry (i, j) of the Hessenberg matrix, column-major while
	// building (column j has j+2 entries).
	hcols := make([][]float64, 0, m)
	scratch := make([]float64, n)
	steps := 0
	for j := 0; j < m; j++ {
		w := make([]float64, n)
		if pre != nil {
			a.MulVec(scratch, basis[j])
			pre.Apply(w, scratch)
		} else {
			a.MulVec(w, basis[j])
		}
		col := make([]float64, j+2)
		for i := 0; i <= j; i++ {
			col[i] = vec.Dot(w, basis[i])
			vec.AXPY(-col[i], basis[i], w)
		}
		col[j+1] = vec.Norm2(w)
		hcols = append(hcols, col)
		steps = j + 1
		if col[j+1] < 1e-12 {
			break
		}
		vec.Scale(1/col[j+1], w)
		basis = append(basis, w)
	}
	// Square k×k Hessenberg (discard the trailing subdiagonal entry).
	k := steps
	h := make([][]complex128, k)
	for i := range h {
		h[i] = make([]complex128, k)
	}
	for j := 0; j < k; j++ {
		top := j + 1
		if top >= k {
			top = k - 1
		}
		for i := 0; i <= top; i++ {
			h[i][j] = complex(hcols[j][i], 0)
		}
	}
	return h
}

// HessenbergEigenvalues returns the eigenvalues of a (complex) upper
// Hessenberg matrix using the shifted QR iteration with Wilkinson shifts
// and bottom deflation. The input is modified in place.
func HessenbergEigenvalues(h [][]complex128) []complex128 {
	n := len(h)
	eigs := make([]complex128, 0, n)
	act := n
	const maxSweeps = 100
	stall := 0
	for act > 0 {
		if act == 1 {
			eigs = append(eigs, h[0][0])
			act = 0
			break
		}
		// Deflate converged bottom entries.
		sub := cmplx.Abs(h[act-1][act-2])
		scale := cmplx.Abs(h[act-2][act-2]) + cmplx.Abs(h[act-1][act-1])
		if sub <= 1e-14*(scale+1e-300) {
			eigs = append(eigs, h[act-1][act-1])
			act--
			stall = 0
			continue
		}
		// Wilkinson shift: trailing 2×2 eigenvalue nearest h[act-1][act-1].
		mu := wilkinson(h[act-2][act-2], h[act-2][act-1], h[act-1][act-2], h[act-1][act-1])
		if stall > 0 && stall%10 == 0 {
			// Exceptional shift to break rare cycling.
			mu = complex(cmplx.Abs(h[act-1][act-2])+cmplx.Abs(h[act-2][act-3%act]), 0)
		}
		qrStep(h, act, mu)
		stall++
		if stall > maxSweeps*n {
			// Give up on the remaining block: report its diagonal.
			for i := 0; i < act; i++ {
				eigs = append(eigs, h[i][i])
			}
			act = 0
		}
	}
	return eigs
}

// wilkinson returns the eigenvalue of [[a, b], [c, d]] closer to d.
func wilkinson(a, b, c, d complex128) complex128 {
	tr := a + d
	det := a*d - b*c
	disc := cmplx.Sqrt(tr*tr - 4*det)
	l1 := (tr + disc) / 2
	l2 := (tr - disc) / 2
	if cmplx.Abs(l1-d) < cmplx.Abs(l2-d) {
		return l1
	}
	return l2
}

// qrStep performs one explicit shifted QR sweep on the leading act×act
// block of the Hessenberg matrix h: H ← RQ + μI where QR = H − μI.
func qrStep(h [][]complex128, act int, mu complex128) {
	for i := 0; i < act; i++ {
		h[i][i] -= mu
	}
	cs := make([]float64, act-1)
	sn := make([]complex128, act-1)
	// Forward pass: zero the subdiagonal (compute R = Q* H).
	for k := 0; k < act-1; k++ {
		c, s := givensC(h[k][k], h[k+1][k])
		cs[k], sn[k] = c, s
		for j := k; j < act; j++ {
			a, b := h[k][j], h[k+1][j]
			h[k][j] = complex(c, 0)*a + s*b
			h[k+1][j] = -cmplx.Conj(s)*a + complex(c, 0)*b
		}
	}
	// Backward pass: H = R Q (apply rotations on the right).
	for k := 0; k < act-1; k++ {
		c, s := cs[k], sn[k]
		top := k + 2
		if top > act {
			top = act
		}
		for i := 0; i < top; i++ {
			a, b := h[i][k], h[i][k+1]
			h[i][k] = a*complex(c, 0) + b*cmplx.Conj(s)
			h[i][k+1] = -a*s + b*complex(c, 0)
		}
	}
	for i := 0; i < act; i++ {
		h[i][i] += mu
	}
}

// givensC returns c (real) and s (complex) with |c|²+|s|² = 1 such that
// [c s; -conj(s) c]·[a; b] = [r; 0].
func givensC(a, b complex128) (float64, complex128) {
	if b == 0 {
		return 1, 0
	}
	if a == 0 {
		return 0, b / complex(cmplx.Abs(b), 0)
	}
	ta := cmplx.Abs(a)
	d := math.Hypot(ta, cmplx.Abs(b))
	c := ta / d
	s := (a / complex(ta, 0)) * cmplx.Conj(b) / complex(d, 0)
	return c, s
}

// RitzValues returns up to m approximate eigenvalues of the operator
// (preconditioned by pre if non-nil), sorted by decreasing magnitude.
func RitzValues(a solver.Operator, pre solver.Preconditioner, n, m int, seed int64) []complex128 {
	h := Arnoldi(a, pre, n, m, seed)
	if len(h) == 0 {
		return nil
	}
	eigs := HessenbergEigenvalues(h)
	sort.Slice(eigs, func(i, j int) bool { return cmplx.Abs(eigs[i]) > cmplx.Abs(eigs[j]) })
	return eigs
}

// Dispersion summarizes how tightly a set of eigenvalues clusters: it
// returns the centroid and the root-mean-square distance from it. The
// paper's Figure 7 argument is that preconditioning shrinks this dispersion
// dramatically.
func Dispersion(eigs []complex128) (centroid complex128, rms float64) {
	if len(eigs) == 0 {
		return 0, 0
	}
	var sum complex128
	for _, e := range eigs {
		sum += e
	}
	centroid = sum / complex(float64(len(eigs)), 0)
	var ss float64
	for _, e := range eigs {
		d := cmplx.Abs(e - centroid)
		ss += d * d
	}
	return centroid, math.Sqrt(ss / float64(len(eigs)))
}
