package eig

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"

	"bepi/internal/lu"
	"bepi/internal/sparse"
)

func toHess(rows [][]float64) [][]complex128 {
	h := make([][]complex128, len(rows))
	for i, r := range rows {
		h[i] = make([]complex128, len(r))
		for j, v := range r {
			h[i][j] = complex(v, 0)
		}
	}
	return h
}

func sortByAbs(e []complex128) {
	sort.Slice(e, func(i, j int) bool { return cmplx.Abs(e[i]) > cmplx.Abs(e[j]) })
}

func TestHessenbergEigenDiagonal(t *testing.T) {
	h := toHess([][]float64{{3, 1, 0}, {0, -2, 5}, {0, 0, 7}})
	eigs := HessenbergEigenvalues(h)
	sortByAbs(eigs)
	want := []float64{7, 3, -2}
	for i, w := range want {
		if cmplx.Abs(eigs[i]-complex(w, 0)) > 1e-10 {
			t.Fatalf("eig[%d] = %v, want %v", i, eigs[i], w)
		}
	}
}

func TestHessenbergEigenRotation(t *testing.T) {
	// [[0, -1], [1, 0]] has eigenvalues ±i.
	eigs := HessenbergEigenvalues(toHess([][]float64{{0, -1}, {1, 0}}))
	if len(eigs) != 2 {
		t.Fatalf("got %d eigenvalues", len(eigs))
	}
	for _, e := range eigs {
		if math.Abs(real(e)) > 1e-10 || math.Abs(math.Abs(imag(e))-1) > 1e-10 {
			t.Fatalf("eigenvalue %v, want ±i", e)
		}
	}
	if imag(eigs[0])*imag(eigs[1]) > 0 {
		t.Fatal("expected a conjugate pair")
	}
}

func TestHessenbergEigenKnown3x3(t *testing.T) {
	// Companion matrix of x³ − 6x² + 11x − 6 = (x−1)(x−2)(x−3).
	h := toHess([][]float64{
		{6, -11, 6},
		{1, 0, 0},
		{0, 1, 0},
	})
	eigs := HessenbergEigenvalues(h)
	sortByAbs(eigs)
	want := []float64{3, 2, 1}
	for i, w := range want {
		if cmplx.Abs(eigs[i]-complex(w, 0)) > 1e-8 {
			t.Fatalf("eig[%d] = %v, want %v", i, eigs[i], w)
		}
	}
}

func TestHessenbergEigenTridiagonalKnownSpectrum(t *testing.T) {
	// The n×n tridiagonal (2, -1) matrix has eigenvalues
	// 2 − 2cos(kπ/(n+1)), k = 1..n.
	n := 12
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		rows[i][i] = 2
		if i > 0 {
			rows[i][i-1] = -1
		}
		if i < n-1 {
			rows[i][i+1] = -1
		}
	}
	eigs := HessenbergEigenvalues(toHess(rows))
	got := make([]float64, n)
	for i, e := range eigs {
		if math.Abs(imag(e)) > 1e-9 {
			t.Fatalf("unexpected complex eigenvalue %v", e)
		}
		got[i] = real(e)
	}
	sort.Float64s(got)
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(got[k-1]-want) > 1e-8 {
			t.Fatalf("eig %d = %v, want %v", k, got[k-1], want)
		}
	}
}

func TestArnoldiFullDimensionExact(t *testing.T) {
	// With m = n, the Ritz values are the exact eigenvalues.
	rng := rand.New(rand.NewSource(1))
	n := 10
	d := make([]float64, n)
	for i := range d {
		d[i] = 1 + rng.Float64()*9
	}
	a := sparse.Diagonal(d)
	ritz := RitzValues(a, nil, n, n, 7)
	if len(ritz) != n {
		t.Fatalf("got %d ritz values", len(ritz))
	}
	sort.Float64s(d)
	got := make([]float64, n)
	for i, e := range ritz {
		got[i] = real(e)
	}
	sort.Float64s(got)
	for i := range d {
		if math.Abs(got[i]-d[i]) > 1e-7 {
			t.Fatalf("ritz[%d] = %v, want %v", i, got[i], d[i])
		}
	}
}

func TestRitzTopEigenvalueOfDiagonal(t *testing.T) {
	// Arnoldi with m << n should still capture the extreme eigenvalue well.
	n := 400
	d := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range d {
		d[i] = rng.Float64()
	}
	d[123] = 25 // dominant outlier
	a := sparse.Diagonal(d)
	ritz := RitzValues(a, nil, n, 30, 3)
	if len(ritz) == 0 {
		t.Fatal("no ritz values")
	}
	if math.Abs(real(ritz[0])-25) > 1e-6 {
		t.Fatalf("top ritz %v, want 25", ritz[0])
	}
}

func TestPreconditioningTightensSpectrum(t *testing.T) {
	// The Figure 7 effect: ILU(0)-preconditioned operators have Ritz values
	// clustered near 1 with far smaller dispersion.
	rng := rand.New(rand.NewSource(3))
	n := 300
	coo := sparse.NewCOO(n, n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for d := 0; d < 6; d++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.NormFloat64() * 0.3
			coo.Add(i, j, v)
			rowAbs[i] += math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, rowAbs[i]+1+3*rng.Float64())
	}
	s := coo.ToCSR()
	plain := RitzValues(s, nil, n, 60, 11)
	pre, err := lu.FactorILU0(s)
	if err != nil {
		t.Fatal(err)
	}
	cond := RitzValues(s, pre, n, 60, 11)
	_, dPlain := Dispersion(plain)
	_, dCond := Dispersion(cond)
	if dCond >= dPlain {
		t.Fatalf("preconditioned dispersion %v >= plain %v", dCond, dPlain)
	}
}

func TestDispersionKnownValues(t *testing.T) {
	// {1, -1}: centroid 0, RMS distance 1.
	c, r := Dispersion([]complex128{1, -1})
	if cmplx.Abs(c) > 1e-15 || math.Abs(r-1) > 1e-15 {
		t.Fatalf("centroid %v rms %v", c, r)
	}
	// Identical points: zero dispersion.
	c, r = Dispersion([]complex128{2 + 3i, 2 + 3i, 2 + 3i})
	if cmplx.Abs(c-(2+3i)) > 1e-15 || r != 0 {
		t.Fatalf("centroid %v rms %v", c, r)
	}
	// {i, -i}: centroid 0, RMS 1.
	c, r = Dispersion([]complex128{1i, -1i})
	if cmplx.Abs(c) > 1e-15 || math.Abs(r-1) > 1e-15 {
		t.Fatalf("centroid %v rms %v", c, r)
	}
}

func TestGivensCProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		b := complex(rng.NormFloat64(), rng.NormFloat64())
		switch trial % 5 {
		case 1:
			a = 0
		case 2:
			b = 0
		}
		c, s := givensC(a, b)
		// Unitarity: c² + |s|² = 1.
		if math.Abs(c*c+real(s*cmplx.Conj(s))-1) > 1e-12 {
			t.Fatalf("trial %d: not unitary", trial)
		}
		// Annihilation: −conj(s)·a + c·b = 0.
		z := -cmplx.Conj(s)*a + complex(c, 0)*b
		if cmplx.Abs(z) > 1e-12*(cmplx.Abs(a)+cmplx.Abs(b)+1e-300) {
			t.Fatalf("trial %d: residual %v", trial, z)
		}
		// Norm preservation: |c·a + s·b| = √(|a|²+|b|²).
		r := complex(c, 0)*a + s*b
		want := math.Hypot(cmplx.Abs(a), cmplx.Abs(b))
		if math.Abs(cmplx.Abs(r)-want) > 1e-12*(want+1e-300) {
			t.Fatalf("trial %d: |r| = %v want %v", trial, cmplx.Abs(r), want)
		}
	}
}

func TestDispersionEmpty(t *testing.T) {
	c, r := Dispersion(nil)
	if c != 0 || r != 0 {
		t.Fatal("empty dispersion should be zero")
	}
}

func TestArnoldiEmptyAndTiny(t *testing.T) {
	if h := Arnoldi(sparse.Identity(0), nil, 0, 10, 1); h != nil {
		t.Fatal("expected nil for empty operator")
	}
	h := Arnoldi(sparse.Identity(3), nil, 3, 10, 1)
	// Identity causes immediate breakdown after one step.
	if len(h) != 1 || cmplx.Abs(h[0][0]-1) > 1e-12 {
		t.Fatalf("identity Arnoldi = %v", h)
	}
}
