// Package vec provides the small set of dense-vector kernels shared by the
// iterative solvers and the BePI engine.
package vec

import "math"

// Dot returns the inner product of x and y (lengths must match).
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vec: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow for extreme values.
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the max-abs entry of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm1 returns the sum of absolute entries of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// AXPY computes y += alpha·x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("vec: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst (lengths must match).
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("vec: Copy length mismatch")
	}
	copy(dst, src)
}

// Sub computes dst = x − y.
func Sub(dst, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("vec: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Add computes dst = x + y.
func Add(dst, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("vec: Add length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// Zero sets every entry of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Sum returns the sum of entries of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Dist2 returns the Euclidean distance between x and y.
func Dist2(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vec: Dist2 length mismatch")
	}
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// ArgMax returns the index of the largest entry (first on ties), or -1 for
// an empty vector.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}
