package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v", got)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if !almostEq(Norm2(x), 5, 1e-15) {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if NormInf(x) != 4 {
		t.Fatalf("NormInf = %v", NormInf(x))
	}
	if Norm1(x) != 7 {
		t.Fatalf("Norm1 = %v", Norm1(x))
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2(nil) != 0")
	}
}

func TestNorm2NoOverflow(t *testing.T) {
	x := []float64{1e200, 1e200}
	want := 1e200 * math.Sqrt2
	if math.IsInf(Norm2(x), 1) || !almostEq(Norm2(x)/want, 1, 1e-12) {
		t.Fatalf("Norm2 overflowed: %v", Norm2(x))
	}
}

func TestAXPYScaleCopySubAdd(t *testing.T) {
	y := []float64{1, 1, 1}
	AXPY(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("AXPY = %v", y)
		}
	}
	Scale(0.5, y)
	if y[2] != 3.5 {
		t.Fatalf("Scale = %v", y)
	}
	dst := make([]float64, 3)
	Copy(dst, y)
	if dst[0] != 1.5 {
		t.Fatalf("Copy = %v", dst)
	}
	Sub(dst, y, y)
	if Norm2(dst) != 0 {
		t.Fatalf("Sub(y,y) = %v", dst)
	}
	Add(dst, y, y)
	if dst[0] != 3 {
		t.Fatalf("Add = %v", dst)
	}
}

func TestZeroSumDist(t *testing.T) {
	x := []float64{1, 2, 3}
	if Sum(x) != 6 {
		t.Fatalf("Sum = %v", Sum(x))
	}
	if !almostEq(Dist2([]float64{0, 0}, []float64{3, 4}), 5, 1e-15) {
		t.Fatal("Dist2 wrong")
	}
	Zero(x)
	if Sum(x) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax(nil) != -1")
	}
	if ArgMax([]float64{1, 5, 5, 2}) != 1 {
		t.Fatal("ArgMax ties should return first")
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	cases := []func(){
		func() { Dot([]float64{1}, []float64{1, 2}) },
		func() { AXPY(1, []float64{1}, []float64{1, 2}) },
		func() { Copy([]float64{1}, []float64{1, 2}) },
		func() { Sub([]float64{1}, []float64{1}, []float64{1, 2}) },
		func() { Dist2([]float64{1}, []float64{1, 2}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: Cauchy-Schwarz |x·y| <= ‖x‖‖y‖.
func TestQuickCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = r.NormFloat64(), r.NormFloat64()
		}
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality ‖x+y‖ <= ‖x‖+‖y‖.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32)
		x := make([]float64, n)
		y := make([]float64, n)
		s := make([]float64, n)
		for i := range x {
			x[i], y[i] = r.NormFloat64(), r.NormFloat64()
		}
		Add(s, x, y)
		return Norm2(s) <= Norm2(x)+Norm2(y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
