package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"bepi/internal/gen"
	"bepi/internal/graph"
	"bepi/internal/lu"
	"bepi/internal/par"
	"bepi/internal/reorder"
)

// schurBothWays builds the Schur complement of g serially and over a pool
// and reports whether the parallel build is bit-identical. Graphs whose
// ordering has no spokes or no hubs are skipped (nothing to eliminate).
func schurBothWays(t *testing.T, g *graph.Graph, k float64, workers int) bool {
	t.Helper()
	ord := reorder.HubAndSpoke(g, k)
	if ord.N1 == 0 || ord.N2 == 0 {
		return false
	}
	h := BuildH(g, ord.Perm, DefaultC)
	n1, l := ord.N1, ord.N1+ord.N2
	h11 := h.Block(0, n1, 0, n1)
	h12 := h.Block(0, n1, n1, l)
	h21 := h.Block(n1, l, 0, n1)
	h22 := h.Block(n1, l, n1, l)
	f, err := lu.FactorBlockDiag(h11, ord.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	want := SchurComplement(h22, h21, h12, f)
	got := SchurComplementT(h22, h21.Transpose(), h12.Transpose(), f, par.NewPool(workers))
	if !got.Equal(want) {
		t.Fatalf("parallel Schur (workers=%d) differs from serial on n=%d m=%d", workers, g.N(), g.M())
	}
	return true
}

// TestSchurComplementParallelMatchesSerialRMAT checks bit-identity of the
// column-partitioned Schur build on power-law graphs at several widths.
func TestSchurComplementParallelMatchesSerialRMAT(t *testing.T) {
	for _, scale := range []int{8, 10} {
		g := gen.RMAT(gen.DefaultRMAT(scale, 8, int64(scale)))
		for _, workers := range []int{2, 5, 16} {
			if !schurBothWays(t, g, 0.2, workers) {
				t.Fatalf("scale %d produced a degenerate ordering", scale)
			}
		}
	}
}

// TestSchurComplementParallelMatchesSerialPathological drives the parallel
// build through shapes that stress the partitioner: a star (one hub owning
// every edge), a chain (blocks of size 1, sparse coupling), a clique plus
// pendant spokes, and a heavy-deadend random graph.
func TestSchurComplementParallelMatchesSerialPathological(t *testing.T) {
	var cases []*graph.Graph

	// Star: node 0 is the single hub, everything else spokes.
	n := 400
	var edges []graph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{Src: i, Dst: 0}, graph.Edge{Src: 0, Dst: i})
	}
	cases = append(cases, graph.MustNew(n, edges))

	// Chain: 0→1→…→n-1 with a few back edges.
	edges = nil
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{Src: i, Dst: i + 1})
		if i%7 == 0 {
			edges = append(edges, graph.Edge{Src: i + 1, Dst: i})
		}
	}
	cases = append(cases, graph.MustNew(n, edges))

	// Clique core with pendant spokes: hubs are dense among themselves.
	edges = nil
	core := 20
	for i := 0; i < core; i++ {
		for j := 0; j < core; j++ {
			if i != j {
				edges = append(edges, graph.Edge{Src: i, Dst: j})
			}
		}
	}
	for i := core; i < n; i++ {
		edges = append(edges, graph.Edge{Src: i, Dst: i % core}, graph.Edge{Src: i % core, Dst: i})
	}
	cases = append(cases, graph.MustNew(n, edges))

	// Random with a large deadend share.
	rng := rand.New(rand.NewSource(99))
	cases = append(cases, randGraph(rng, 300))

	ran := 0
	for ci, g := range cases {
		for _, k := range []float64{0.05, 0.3} {
			if schurBothWays(t, g, k, 8) {
				ran++
			} else {
				t.Logf("case %d k=%v skipped (degenerate ordering)", ci, k)
			}
		}
	}
	if ran == 0 {
		t.Fatal("every pathological case degenerated; test checked nothing")
	}
}

// TestPreprocessParallelismBitIdentical preprocesses the same graph
// serially and with a 4-worker pool and requires the stored matrices and
// every query answer to be bit-identical.
func TestPreprocessParallelismBitIdentical(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 5))
	serial, err := Preprocess(g, Options{Variant: VariantFull, Tol: 1e-10, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parl, err := Preprocess(g, Options{Variant: VariantFull, Tol: 1e-10, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sw, pw := serial.PrepStats().Workers, parl.PrepStats().Workers; sw != 1 || pw != 4 {
		t.Fatalf("PrepStats.Workers = %d / %d, want 1 / 4", sw, pw)
	}
	if !parl.Schur().Equal(serial.Schur()) {
		t.Fatal("parallel preprocessing built a different Schur complement")
	}
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 5; q++ {
		seed := rng.Intn(g.N())
		want, wst, err := serial.Query(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, gst, err := parl.Query(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if gst.Iterations != wst.Iterations {
			t.Fatalf("seed %d: %d iterations parallel vs %d serial", seed, gst.Iterations, wst.Iterations)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("seed %d: r[%d] = %v parallel vs %v serial", seed, i, got[i], want[i])
			}
		}
	}
}

// TestChooseHubRatioPoolMatchesSerial checks the concurrent candidate
// profiling returns exactly the serial selection.
func TestChooseHubRatioPoolMatchesSerial(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 6, 7))
	candidates := []float64{0.05, 0.1, 0.2, 0.3, 0.5}
	wantK, wantProfiles, err := ChooseHubRatioPool(g, candidates, DefaultC, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotK, gotProfiles, err := ChooseHubRatioPool(g, candidates, DefaultC, par.NewPool(4))
	if err != nil {
		t.Fatal(err)
	}
	if gotK != wantK {
		t.Fatalf("ChooseHubRatioPool picked k=%v, serial picked %v", gotK, wantK)
	}
	if len(gotProfiles) != len(wantProfiles) {
		t.Fatalf("profile count %d vs %d", len(gotProfiles), len(wantProfiles))
	}
	for i := range gotProfiles {
		if gotProfiles[i] != wantProfiles[i] {
			t.Fatalf("profile %d: %+v vs %+v", i, gotProfiles[i], wantProfiles[i])
		}
	}
}

// TestConcurrentEngineBuildsSharedPool preprocesses several graphs at once
// with the default Parallelism (the process-wide shared pool) and checks
// each result against its own serial build. Primarily a -race target: it
// exercises pool sharing between concurrent Schur builds, factorizations
// and query streams.
func TestConcurrentEngineBuildsSharedPool(t *testing.T) {
	const builders = 4
	graphs := make([]*graph.Graph, builders)
	serials := make([]*Engine, builders)
	for i := range graphs {
		graphs[i] = gen.RMAT(gen.DefaultRMAT(8, 6, int64(40+i)))
		e, err := Preprocess(graphs[i], Options{Variant: VariantFull, Tol: 1e-9, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		serials[i] = e
	}
	var wg sync.WaitGroup
	errs := make([]error, builders)
	engines := make([]*Engine, builders)
	for i := 0; i < builders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := Preprocess(graphs[i], Options{Variant: VariantFull, Tol: 1e-9})
			if err != nil {
				errs[i] = err
				return
			}
			engines[i] = e
			// Queries run concurrently with the other builders too.
			for q := 0; q < 3; q++ {
				if _, _, err := e.Query(q * 11 % graphs[i].N()); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("builder %d: %v", i, err)
		}
	}
	for i := range engines {
		if !engines[i].Schur().Equal(serials[i].Schur()) {
			t.Fatalf("builder %d: shared-pool Schur differs from serial", i)
		}
		want, _, err := serials[i].Query(1)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := engines[i].Query(1)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("builder %d: r[%d] differs from serial", i, j)
			}
		}
	}
}
