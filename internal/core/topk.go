package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"bepi/internal/solver"
	"bepi/internal/vec"
)

// The bounded top-k search (after Fujiwara et al.'s K-dash, VLDB 2012,
// adapted to BePI's block-elimination solve) stops the iterative Schur
// solve as soon as the ranking is decided instead of running to the full
// residual tolerance. Each iteration it converts the solver's reported
// Schur residual into a score-error radius
//
//	δ = topkBoundSafety · factor · residual · ‖q̃2‖₂
//
// where factor is the engine's calibrated ℓ∞ error-to-residual ratio
// (topkFactor in bound.go): the worst per-node score error per unit of
// that same solver-reported residual metric, measured on instrumented
// reference solves against the engine-tolerance solution. Every node's current score is then within
// δ of its score in the vector Engine.TopK would rank: lower bound =
// score − δ, upper bound = score + δ. When the k-th candidate's lower
// bound clears the (k+1)-th's upper bound — i.e. the observed gap exceeds
// 2δ — no further iteration can change WHICH k nodes win, only their exact
// scores, so the solve halts and one ranking pass orders the candidates.
// (The Theorem-4 ℓ2 envelope in bound.go would give an a-priori valid δ,
// but at scale it is orders larger than real per-node errors and the
// certificate would never fire; the calibrated ratio is the same quantity
// measured instead of majorized.) Ties and near-uniform score
// distributions never separate, in which case the solve simply runs to the
// engine tolerance and the result is bit-identical to Engine.TopK.

// topkBoundSafety inflates the calibrated radius. The factor behind it is
// an empirical maximum over sampled reference solves, not an analytic
// envelope; the margin absorbs sampling error across seeds, the drift of
// the solvers' recurrence residuals, and iterate-to-iterate variation so
// the gap test stays a trustworthy certificate. Larger values delay the
// stop, never break correctness — and the final ranking pass re-ranks the
// reconstructed vector either way.
const topkBoundSafety = 2.0

// topkMaxCheckStride bounds how many solver iterations may pass before the
// checker re-attempts a gap measurement whose last ranking was not yet
// usable (iterate support still spreading): each full check costs a
// partial back-substitution plus a ranking pass — roughly the whole
// non-solve half of a query — so they must stay rare.
const topkMaxCheckStride = 8

// topkLearnResid is the solver-residual level at which the checker runs
// its first full check to learn the k-th gap. Earlier iterates rank
// half-formed scores: the measured gap would be noise and the check cost
// pure overhead. One full check learns the gap; afterwards the cheap
// per-iteration residual proxy decides when certification has become
// plausible and only then pays for another reconstruction.
const topkLearnResid = 1e-2

// topkMinHeadroom abandons certification attempts when the learned gap is
// so small that the certificate could only fire within this factor of the
// engine tolerance: at that residual the solve is one or two iterations
// from its natural stop, so a reconstruction-priced check would cost more
// than the iterations it could save (rank-100 gaps on power-law graphs
// live here). The solve then simply runs to tolerance — result unchanged.
const topkMinHeadroom = 1000

// TopKStats extends QueryStats with the bounded search's outcome.
type TopKStats struct {
	QueryStats
	// EarlyStopped reports that the solve halted on the k-th-gap
	// certificate before reaching the engine tolerance. When false the
	// scores are a full-tolerance solve — the search fell back (tiny gaps,
	// near-uniform scores, k covering all candidates, or an engine the
	// bound cannot be calibrated for) and the full vector is exact.
	EarlyStopped bool
	// BoundChecks counts gap checks performed.
	BoundChecks int
	// Bound is the certified per-node score-error radius at the last check.
	Bound float64
	// Gap is the k-th-to-(k+1)-th score gap at the last check.
	Gap float64
	// SavedIters estimates the solver iterations the early stop skipped,
	// extrapolating the observed geometric residual decay down to the
	// engine tolerance. Zero when the solve ran to tolerance.
	SavedIters int
}

// TopKBounded returns the exact top-k nodes for the seed (seed excluded,
// descending score, ties on lower node id — the same set and order
// semantics as Engine.TopK) while letting the Schur solve terminate as
// soon as the k-th gap is certified. The returned scores of early-stopped
// solves are within TopKStats.Bound of the true values; the SET of nodes
// is provably identical to the full solve's.
func (e *Engine) TopKBounded(seed, k int) ([]Ranked, TopKStats, error) {
	if seed < 0 || seed >= e.n {
		return nil, TopKStats{}, fmt.Errorf("core: seed %d out of range [0,%d)", seed, e.n)
	}
	q := make([]float64, e.n)
	q[seed] = 1
	tops, _, stats, errs := e.TopKBoundedBatch(nil, [][]float64{q}, []int{seed}, []int{k}, nil)
	return tops[0], stats[0], errs[0]
}

// TopKBoundedBatch answers a batch of bounded top-k queries in one
// block-elimination pass, sharing the permute/forward/back phases with
// QueryVectorBatch. qs[i] is the starting distribution, excludes[i] the
// node left out of ranking i (negative: none), ks[i] the requested k.
// Results are positional like QueryVectorBatch: tops[i]/res[i] are nil iff
// errs[i] is non-nil. res[i] is the full score vector in original ids —
// exact when !stats[i].EarlyStopped, otherwise within stats[i].Bound per
// node (callers must not treat early-stopped vectors as full-tolerance
// results). Each solve stops independently: a batch never waits on its
// slowest member beyond that member's own certificate.
func (e *Engine) TopKBoundedBatch(ctxs []context.Context, qs [][]float64, excludes, ks []int, ws *Workspace) ([][]Ranked, [][]float64, []TopKStats, []error) {
	K := len(qs)
	tops := make([][]Ranked, K)
	res := make([][]float64, K)
	stats := make([]TopKStats, K)
	errs := make([]error, K)
	if K == 0 {
		return tops, res, stats, errs
	}
	if len(excludes) != K || len(ks) != K {
		for i := range errs {
			errs[i] = fmt.Errorf("core: top-k batch shape mismatch: %d queries, %d excludes, %d ks",
				K, len(excludes), len(ks))
		}
		return tops, res, stats, errs
	}
	start := time.Now()
	if ws == nil || ws.e != e {
		ws = e.NewWorkspace()
	}
	ws.grow(K)
	ws.growTopK()

	// The calibrated factor computes lazily here on first use; engines that
	// cannot be calibrated (or have no hub block) serve full solves.
	// Woodbury-corrected engines serve full solves: the certificate probes
	// intermediate GMRES iterates, which live in the base system and only
	// become the updated graph's solution after the final correction.
	factor, ferr := e.topkFactor()
	bounded := ferr == nil && factor > 0 && e.ord.N2 > 0 && e.wood == nil

	active := e.admitBatch(ctxs, qs, errs)
	permuteDur := e.permutePhase(ws, qs, active)
	forwardDur := e.forwardPhase(ws, active)

	op, baseOpts := e.schurSolveOptions(context.Background(), e.schurOperator(ws), &ws.slv)
	solved := make([]int, 0, len(active))
	chks := make([]*tkChecker, K)
	for _, slot := range active {
		kk := ks[slot]
		cand := e.n
		if x := excludes[slot]; x >= 0 && x < e.n {
			cand--
		}
		opts := baseOpts
		opts.Ctx = batchCtx(ctxs, slot)
		var chk *tkChecker
		// A k that covers every candidate can't early-stop (there is no
		// (k+1)-th bound to clear) — run those to tolerance.
		if bounded && kk > 0 && kk < cand {
			chk = &tkChecker{e: e, ws: ws, slot: slot, k: kk, skip: -1, factor: factor,
				qt2Norm: vec.Norm2(ws.qt2s[slot]), nextCheck: 1}
			if x := excludes[slot]; x >= 0 && x < e.n {
				chk.skip = e.ord.Perm[x]
			}
			opts.Probe = chk.probe
			opts.StopWhen = chk.stop
		}
		tSolve := time.Now()
		r2, st, err := e.runSchurSolve(op, ws.qt2s[slot], opts)
		stats[slot].Iterations, stats[slot].Residual = st.Iterations, st.Residual
		stats[slot].Stages.Solve = time.Since(tSolve)
		if chk != nil {
			chks[slot] = chk
			stats[slot].BoundChecks, stats[slot].Bound, stats[slot].Gap = chk.checks, chk.delta, chk.gap
		}
		if err != nil {
			errs[slot] = fmt.Errorf("core: solving Schur system: %w", err)
			continue
		}
		if st.StopReason == solver.StopEarly {
			stats[slot].EarlyStopped = true
			stats[slot].SavedIters = estimateSavedIters(st, e.opts.Tol)
		}
		copy(ws.r2s[slot], r2)
		solved = append(solved, slot)
	}
	active = solved

	tPhase := time.Now()
	// Early-stopped slots skip the back phase's r1/r3 recomputation: the
	// solver's returned iterate is assembled by the same arithmetic as the
	// probe's, so the resolving gap check's reconstruction (already parked
	// in the slot's r1/r3 buffers) is bitwise current — only the unpermute
	// into original ids remains.
	recompute := make([]int, 0, len(active))
	for _, slot := range active {
		if c := chks[slot]; c != nil && c.resolved {
			res[slot] = e.unpermuteSlot(ws, slot)
		} else {
			recompute = append(recompute, slot)
		}
	}
	e.backPhase(ws, recompute, res)
	for _, slot := range active {
		// The final exact ranking pass over the reconstructed vector — in
		// original-id space, so order and tie-breaks match Engine.TopK.
		tops[slot] = RankTopK(res[slot], ks[slot], excludes[slot])
	}
	backDur := time.Since(tPhase)
	elapsed := time.Since(start)
	for i := range stats {
		stats[i].Duration = elapsed
		stats[i].Stages.Permute = permuteDur
		stats[i].Stages.Forward = forwardDur
		stats[i].Stages.Back = backDur
	}
	return tops, res, stats, errs
}

// tkChecker is the per-solve state of the bounded search: probe() turns
// selected iterates into (certified radius, current k-th gap) and stop()
// reports the verdict to the solver's StopWhen.
type tkChecker struct {
	e       *Engine
	ws      *Workspace
	slot    int
	k       int
	skip    int // permuted index excluded from ranking; -1 none
	factor  float64
	qt2Norm float64 // ‖q̃2‖₂, rescales the solver's relative residual

	resolved  bool
	gapKnown  bool
	checks    int
	nextCheck int
	delta     float64
	gap       float64
}

func (c *tkChecker) stop(iter int, residual float64) bool { return c.resolved }

func (c *tkChecker) probe(iter int, residual float64, iterate func() []float64) {
	if c.resolved || iter < c.nextCheck {
		return
	}
	e, ws := c.e, c.ws

	// Radius δ from the solver's reported residual, rescaled by ‖q̃2‖ — the
	// exact metric computeTopKFactor calibrated the factor against (safety
	// absorbs recurrence drift and sampling error), so it costs one
	// multiply per iteration. It doubles as the check gate: a full check
	// (iterate assembly + partial back-substitution + ranking pass) costs
	// roughly the whole non-solve half of a query, so it only runs once δ
	// says the certificate could actually fire (δ ≤ gap/2). Until a gap has
	// been learned the gate instead waits for the scores to form
	// (residual ≤ topkLearnResid). Exact ties never pass the gate — such
	// solves pay one learning check and then run to tolerance with one
	// multiply per iteration.
	delta := topkBoundSafety * c.factor * residual * c.qt2Norm
	if c.gapKnown {
		if delta > c.gap/2 {
			return
		}
	} else if residual > topkLearnResid && iter < topkMaxCheckStride {
		return
	}

	c.checks++
	r2 := iterate()
	c.delta = delta

	// Current full score snapshot (permuted order — only score values and
	// the k-th gap matter here; the final ranking re-ranks in original-id
	// space after the solve).
	e.reconstructSlot(ws, c.slot, r2, ws.tkScores)
	skip := c.skip
	top := RankTopKFunc(ws.tkScores[:e.n], c.k+1, func(i int) bool { return i == skip })
	if len(top) <= c.k {
		// The iterate shows at most k positive candidates. That is NOT a
		// certificate: early iterates can have small support that later
		// spreads, and a node whose true score lies in (0, δ) is invisible
		// now yet belongs in the full solve's ranking. Keep solving — at
		// tolerance the vector (and set) is bitwise the full solve's.
		c.gapKnown = false
		c.gap = 0
		c.nextCheck = iter + topkMaxCheckStride
		return
	}
	gap := top[c.k-1].Score - top[c.k].Score
	c.gap, c.gapKnown = gap, true
	// Separation certificate: gap > 2δ means even if the k-th true score
	// sits δ below its estimate and the (k+1)-th sits δ above, the k-th
	// still wins — the set can no longer change.
	if gap > 2*delta {
		c.resolved = true
		return
	}
	// Certification would need the residual down to gap/(2·safety·factor·
	// ‖q̃2‖); if that is within topkMinHeadroom of the tolerance, a check
	// there costs more than the last iterations it could skip — stop
	// chasing and let the solve run out (ties land here with gap 0).
	if gap < 2*topkBoundSafety*c.factor*c.qt2Norm*topkMinHeadroom*e.opts.Tol {
		c.nextCheck = math.MaxInt
		return
	}
	// Not separated: the gate re-arms on the fresh gap and lets the next
	// plausible iteration through.
	c.nextCheck = iter + 1
}

// reconstructSlot rebuilds the full permuted-order score vector for one
// batch slot from a mid-solve r2 iterate: r1 = H11⁻¹(c·q1 − H12·r2),
// r3 = c·q3 − H31·r1 − H32·r2, concatenated into out. It reuses the slot's
// r1/r3/tmp buffers (they are rewritten by the final back phase anyway)
// and must not touch the solver workspace — the solve is still running.
func (e *Engine) reconstructSlot(ws *Workspace, slot int, r2, out []float64) {
	n1, n2 := e.ord.N1, e.ord.N2
	l := n1 + n2
	c := e.opts.C
	qp := ws.qps[slot]
	r1, r3, tmp := ws.r1s[slot], ws.r3s[slot], ws.tmps[slot]

	e.h12.MulVec(r1, r2)
	for i := range r1 {
		r1[i] = c*qp[i] - r1[i]
	}
	e.h11LU.SolvePool(r1, e.pool)
	e.h31.MulVec(r3, r1)
	e.h32.MulVec(tmp, r2)
	q3 := qp[l:]
	for i := range r3 {
		r3[i] = c*q3[i] - r3[i] - tmp[i]
	}
	copy(out[:n1], r1)
	copy(out[n1:l], r2)
	copy(out[l:e.n], r3)
}

// estimateSavedIters extrapolates how many more iterations the solve would
// have needed to reach tol, assuming the geometric decay implied by the
// residual at the stopping point: total ≈ iters·log(tol)/log(residual).
func estimateSavedIters(st solver.Stats, tol float64) int {
	if st.Iterations <= 0 || st.Residual <= 0 || st.Residual >= 1 || tol <= 0 || st.Residual <= tol {
		return 0
	}
	est := float64(st.Iterations) * math.Log(tol) / math.Log(st.Residual)
	saved := int(math.Ceil(est)) - st.Iterations
	if saved < 0 {
		return 0
	}
	return saved
}
