package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"bepi/internal/lu"
	"bepi/internal/reorder"
	"bepi/internal/sparse"
)

// Index persistence: a preprocessed engine can be written to disk once and
// reloaded for later query sessions, which is the whole point of a
// preprocessing method. The layout is little-endian:
//
//	magic     uint32 'BPI1'
//	options   c, tol (float64), variant, maxIter, restart (int64), k (float64), solver (int64)
//	n, n1, n2, n3, nblocks  int64
//	perm      n × int64
//	blocks    nblocks × int64
//	h12, h21, h31, h32, schur   (sparse.CSR.WriteTo)
//	blockLU   (lu.BlockLU.WriteTo)
//
// The ILU preconditioner is not stored: recomputing ILU(0) from S on load is
// linear-ish in |S| and avoids format coupling.

const indexMagic = 0x42504931

// WriteTo serializes the engine. It implements io.WriterTo.
//
// Engines carrying a Woodbury correction refuse: their stored S is the base
// of a low-rank update, not the served graph's Schur complement, and the
// correction state is deliberately not part of the format. Run a full
// rebuild first. (Implicit-operator delta engines patch S in place and stay
// serializable.)
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	if e.wood != nil {
		return 0, errors.New("core: cannot serialize a Woodbury-corrected engine; run a full rebuild first")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	writeU64 := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		k, err := bw.Write(buf[:])
		n += int64(k)
		return err
	}
	writeI := func(v int) error { return writeU64(uint64(v)) }
	writeF := func(v float64) error { return writeU64(math.Float64bits(v)) }

	var magic [4]byte
	binary.LittleEndian.PutUint32(magic[:], indexMagic)
	k, err := bw.Write(magic[:])
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, step := range []func() error{
		func() error { return writeF(e.opts.C) },
		func() error { return writeF(e.opts.Tol) },
		func() error { return writeI(int(e.opts.Variant)) },
		func() error { return writeI(e.opts.MaxIter) },
		func() error { return writeI(e.opts.GMRESRestart) },
		func() error { return writeF(e.opts.HubRatio) },
		func() error { return writeI(int(e.opts.Solver)) },
		func() error { return writeI(e.n) },
		func() error { return writeI(e.ord.N1) },
		func() error { return writeI(e.ord.N2) },
		func() error { return writeI(e.ord.N3) },
		func() error { return writeI(len(e.ord.Blocks)) },
	} {
		if err := step(); err != nil {
			return n, err
		}
	}
	for _, p := range e.ord.Perm {
		if err := writeI(p); err != nil {
			return n, err
		}
	}
	for _, b := range e.ord.Blocks {
		if err := writeI(b); err != nil {
			return n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	// Matrices are serialized in the wide layout regardless of the in-memory
	// one, so the on-disk format is independent of Options.Compact.
	for _, m := range []mat{e.h12, e.h21, e.h31, e.h32, e.schur} {
		k, err := asCSR(m).WriteTo(w)
		n += k
		if err != nil {
			return n, err
		}
	}
	k2, err := e.h11LU.WriteTo(w)
	n += k2
	return n, err
}

// ReadEngine deserializes an engine written by WriteTo, recomputing the ILU
// preconditioner if the stored variant requires one.
func ReadEngine(r io.Reader) (*Engine, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading index magic: %w", err)
	}
	if binary.LittleEndian.Uint32(magic[:]) != indexMagic {
		return nil, fmt.Errorf("core: bad index magic %#x", binary.LittleEndian.Uint32(magic[:]))
	}
	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	readI := func() (int, error) {
		v, err := readU64()
		return int(v), err
	}
	readF := func() (float64, error) {
		v, err := readU64()
		return math.Float64frombits(v), err
	}

	e := &Engine{}
	var variant, nblocks int
	var err error
	if e.opts.C, err = readF(); err != nil {
		return nil, fmt.Errorf("core: reading options: %w", err)
	}
	if e.opts.Tol, err = readF(); err != nil {
		return nil, err
	}
	if variant, err = readI(); err != nil {
		return nil, err
	}
	e.opts.Variant = Variant(variant)
	if e.opts.MaxIter, err = readI(); err != nil {
		return nil, err
	}
	if e.opts.GMRESRestart, err = readI(); err != nil {
		return nil, err
	}
	if e.opts.HubRatio, err = readF(); err != nil {
		return nil, err
	}
	var slv int
	if slv, err = readI(); err != nil {
		return nil, err
	}
	e.opts.Solver = SchurSolver(slv)
	if e.n, err = readI(); err != nil {
		return nil, err
	}
	ord := &reorder.Ordering{}
	if ord.N1, err = readI(); err != nil {
		return nil, err
	}
	if ord.N2, err = readI(); err != nil {
		return nil, err
	}
	if ord.N3, err = readI(); err != nil {
		return nil, err
	}
	if nblocks, err = readI(); err != nil {
		return nil, err
	}
	if e.n < 0 || nblocks < 0 || ord.N1+ord.N2+ord.N3 != e.n {
		return nil, fmt.Errorf("core: corrupt index header (n=%d partition=%d+%d+%d)",
			e.n, ord.N1, ord.N2, ord.N3)
	}
	ord.Perm = make([]int, e.n)
	for i := range ord.Perm {
		if ord.Perm[i], err = readI(); err != nil {
			return nil, fmt.Errorf("core: reading permutation: %w", err)
		}
	}
	ord.Inv = make([]int, e.n)
	for old, nw := range ord.Perm {
		if nw < 0 || nw >= e.n {
			return nil, fmt.Errorf("core: corrupt permutation entry %d", nw)
		}
		ord.Inv[nw] = old
	}
	ord.Blocks = make([]int, nblocks)
	for i := range ord.Blocks {
		if ord.Blocks[i], err = readI(); err != nil {
			return nil, fmt.Errorf("core: reading blocks: %w", err)
		}
	}
	if err := ord.Validate(); err != nil {
		return nil, fmt.Errorf("core: stored ordering invalid: %w", err)
	}
	e.ord = ord

	mats := make([]*sparse.CSR, 5)
	for i := range mats {
		m, err := sparse.ReadCSR(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading matrix %d: %w", i, err)
		}
		mats[i] = m
	}
	e.h12, e.h21, e.h31, e.h32, e.schur = mats[0], mats[1], mats[2], mats[3], mats[4]
	if e.h11LU, err = lu.ReadBlockLU(br); err != nil {
		return nil, err
	}
	if e.opts.Variant == VariantFull {
		t0 := time.Now()
		if e.ilu, err = lu.FactorILU0(mats[4]); err != nil {
			return nil, fmt.Errorf("core: rebuilding ILU: %w", err)
		}
		e.prep.ILU = time.Since(t0)
	}
	e.prep.N = e.n
	e.prep.N1, e.prep.N2, e.prep.N3 = ord.N1, ord.N2, ord.N3
	e.prep.Blocks = nblocks
	e.prep.SchurNNZ = e.schur.NNZ()
	e.prep.HubRatio = e.opts.HubRatio
	// Parallelism and index compaction are runtime knobs, not part of the
	// index format: a loaded engine starts on the shared process-wide pool
	// with compacted indexes (the CompactAuto default); callers tune both
	// with SetParallelism / SetCompact before serving.
	e.pool = poolFor(0, false)
	e.setCompactMatrices(true)
	return e, nil
}
