package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"bepi/internal/gen"
)

// assertSameTopKSet fails unless bounded and full name the same node set.
// Order must match too: both paths rank with the same (score desc, id asc)
// total order, and the ordering among the exact set is part of the
// contract for full-tolerance results; for early-stopped results only the
// set is guaranteed, so order is checked just when requested.
func assertSameTopKSet(t *testing.T, tag string, full, bounded []Ranked, checkOrder bool) {
	t.Helper()
	if len(full) != len(bounded) {
		t.Fatalf("%s: size mismatch: full %d, bounded %d", tag, len(full), len(bounded))
	}
	fullSet := make(map[int]bool, len(full))
	for _, r := range full {
		fullSet[r.Node] = true
	}
	for _, r := range bounded {
		if !fullSet[r.Node] {
			t.Fatalf("%s: bounded returned node %d not in the full solve's top-k %v vs %v",
				tag, r.Node, bounded, full)
		}
	}
	if checkOrder {
		for i := range full {
			if full[i].Node != bounded[i].Node {
				t.Fatalf("%s: order mismatch at %d: full %v, bounded %v", tag, i, full, bounded)
			}
		}
	}
}

// TestTopKBoundedEquivalence is the exactness property test: on a skewed
// RMAT graph and on pathological near-uniform graphs (regular ring
// lattices, where scores tie and the bound can never separate them), the
// bounded search must return the identical top-k node set as Engine.TopK
// for every k in {1, 10, 100}, across seeds.
func TestTopKBoundedEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Engine
		seeds []int
	}{
		{
			name: "skewed-rmat",
			build: func() *Engine {
				g := gen.RMAT(gen.DefaultRMAT(9, 8, 42))
				e, err := Preprocess(g, Options{Variant: VariantFull, HubRatio: 0.2})
				if err != nil {
					t.Fatalf("Preprocess: %v", err)
				}
				return e
			},
			seeds: []int{0, 7, 123, 400},
		},
		{
			name: "near-uniform-ring",
			build: func() *Engine {
				// beta=0 Watts-Strogatz is a regular ring lattice: every
				// node is symmetric, scores are near-uniform with massive
				// tie classes — the adversarial case for a gap test.
				g := gen.WattsStrogatz(300, 6, 0, 7)
				e, err := Preprocess(g, Options{Variant: VariantFull, HubRatio: 0.2})
				if err != nil {
					t.Fatalf("Preprocess: %v", err)
				}
				return e
			},
			seeds: []int{0, 149},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.build()
			if err := e.CalibrateBound(); err != nil {
				t.Fatalf("CalibrateBound: %v", err)
			}
			sawEarlyStop := false
			for _, seed := range tc.seeds {
				for _, k := range []int{1, 10, 100} {
					full, err := e.TopK(seed, k)
					if err != nil {
						t.Fatalf("TopK(%d,%d): %v", seed, k, err)
					}
					bounded, stats, err := e.TopKBounded(seed, k)
					if err != nil {
						t.Fatalf("TopKBounded(%d,%d): %v", seed, k, err)
					}
					tag := fmt.Sprintf("seed %d k %d (early=%v checks=%d bound=%.3g gap=%.3g)",
						seed, k, stats.EarlyStopped, stats.BoundChecks, stats.Bound, stats.Gap)
					assertSameTopKSet(t, tag, full, bounded, !stats.EarlyStopped)
					if !stats.EarlyStopped {
						// A fallback solve runs the identical arithmetic as
						// the full path: scores must match bitwise.
						for i := range full {
							if math.Float64bits(full[i].Score) != math.Float64bits(bounded[i].Score) {
								t.Fatalf("%s: fallback score differs at %d: %v vs %v",
									tag, i, full[i], bounded[i])
							}
						}
					}
					sawEarlyStop = sawEarlyStop || stats.EarlyStopped
				}
			}
			if tc.name == "skewed-rmat" && !sawEarlyStop {
				t.Fatalf("bounded search never early-stopped on the skewed graph — the fast path is dead")
			}
		})
	}
}

// TestTopKBoundedBatchMixedK drives the batch entry point directly with
// heterogeneous ks — the shape qexec's k-class batches take.
func TestTopKBoundedBatchMixedK(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 6, 17))
	e, err := Preprocess(g, Options{Variant: VariantFull, HubRatio: 0.2})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	seeds := []int{1, 2, 3, 50}
	ks := []int{1, 10, 100, 5}
	qs := make([][]float64, len(seeds))
	for i, s := range seeds {
		q := make([]float64, e.N())
		q[s] = 1
		qs[i] = q
	}
	ws := e.NewWorkspace()
	tops, res, stats, errs := e.TopKBoundedBatch(nil, qs, seeds, ks, ws)
	for i, s := range seeds {
		if errs[i] != nil {
			t.Fatalf("slot %d: %v", i, errs[i])
		}
		if len(res[i]) != e.N() {
			t.Fatalf("slot %d: score vector length %d", i, len(res[i]))
		}
		full, err := e.TopK(s, ks[i])
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		assertSameTopKSet(t, fmt.Sprintf("slot %d", i), full, tops[i], !stats[i].EarlyStopped)
	}
	// Shape-mismatch batches must fail positionally, not panic.
	_, _, _, errs = e.TopKBoundedBatch(nil, qs, seeds[:2], ks, ws)
	for i := range errs {
		if errs[i] == nil {
			t.Fatalf("slot %d: expected shape-mismatch error", i)
		}
	}
}

// TestTopKBoundedParallelPool runs bounded queries concurrently on a
// pooled engine — the -race configuration the serving path uses, with the
// lazily calibrated bound factor racing across goroutines on purpose.
func TestTopKBoundedParallelPool(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 6, 23))
	e, err := Preprocess(g, Options{Variant: VariantFull, HubRatio: 0.2, Parallelism: 4})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				seed := (w*31 + i*7) % e.N()
				k := []int{1, 10, 100}[i%3]
				full, err := e.TopK(seed, k)
				if err != nil {
					errCh <- err
					return
				}
				bounded, _, err := e.TopKBounded(seed, k)
				if err != nil {
					errCh <- err
					return
				}
				if len(full) != len(bounded) {
					errCh <- fmt.Errorf("seed %d k %d: %d vs %d results", seed, k, len(full), len(bounded))
					return
				}
				set := map[int]bool{}
				for _, r := range full {
					set[r.Node] = true
				}
				for _, r := range bounded {
					if !set[r.Node] {
						errCh <- fmt.Errorf("seed %d k %d: node %d not in full top-k", seed, k, r.Node)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestRankTopKTieBreak pins the deterministic tie order: equal scores
// rank by ascending node id, regardless of heap internals or input size.
func TestRankTopKTieBreak(t *testing.T) {
	scores := []float64{0.5, 0.9, 0.5, 0.9, 0.5, 0.1, 0.9}
	got := RankTopK(scores, 5, -1)
	want := []Ranked{{1, 0.9}, {3, 0.9}, {6, 0.9}, {0, 0.5}, {2, 0.5}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, got[i], want[i])
		}
	}
	// The exported comparator must agree with the ranking order.
	for i := 0; i+1 < len(got); i++ {
		if !got[i].Outranks(got[i+1]) {
			t.Fatalf("Outranks disagrees with ranking at %d: %v vs %v", i, got[i], got[i+1])
		}
		if got[i+1].Outranks(got[i]) {
			t.Fatalf("Outranks not antisymmetric at %d", i)
		}
	}
}

// TestTopKBoundedStats sanity-checks the reported stats: an early stop
// must carry a positive certified bound, a larger gap, and a savings
// estimate; iteration counts must undercut the full solve.
func TestTopKBoundedStats(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 99))
	e, err := Preprocess(g, Options{Variant: VariantFull, HubRatio: 0.2})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	if err := e.CalibrateBound(); err != nil {
		t.Fatalf("CalibrateBound: %v", err)
	}
	var early *TopKStats
	var earlySeed int
	for seed := 0; seed < 32 && early == nil; seed++ {
		_, stats, err := e.TopKBounded(seed, 10)
		if err != nil {
			t.Fatalf("TopKBounded(%d): %v", seed, err)
		}
		if stats.EarlyStopped {
			s := stats
			early, earlySeed = &s, seed
		}
	}
	if early == nil {
		t.Fatalf("no early stop across 32 seeds on a skewed graph")
	}
	if early.Bound <= 0 || early.Gap <= 2*early.Bound {
		t.Fatalf("early stop without a valid certificate: bound=%v gap=%v", early.Bound, early.Gap)
	}
	if early.BoundChecks <= 0 {
		t.Fatalf("early stop with zero bound checks")
	}
	if early.SavedIters <= 0 {
		t.Fatalf("early stop reports no saved iterations")
	}
	_, fullStats, qerr := e.Query(earlySeed)
	if qerr != nil {
		t.Fatalf("Query: %v", qerr)
	}
	if early.Iterations >= fullStats.Iterations {
		t.Fatalf("early stop used %d iterations, full solve %d", early.Iterations, fullStats.Iterations)
	}
}
