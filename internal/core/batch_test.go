package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"bepi/internal/gen"
)

// TestQueryVectorBatchMatchesSingle checks that the batched multi-RHS path
// with a reused workspace reproduces the one-at-a-time path bit for bit:
// same SpMV and substitution orders, just amortized matrix traversals.
func TestQueryVectorBatchMatchesSingle(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 6, 7))
	e, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int{0, 3, 17, 42, 3} // includes a duplicate
	qs := make([][]float64, len(seeds))
	for i, s := range seeds {
		q := make([]float64, e.N())
		q[s] = 1
		qs[i] = q
	}
	ws := e.NewWorkspace()
	res, stats, errs := e.QueryVectorBatch(nil, qs, ws)
	for i, s := range seeds {
		if errs[i] != nil {
			t.Fatalf("batch item %d: %v", i, errs[i])
		}
		want, wstats, err := e.Query(s)
		if err != nil {
			t.Fatal(err)
		}
		for u := range want {
			if res[i][u] != want[u] {
				t.Fatalf("seed %d node %d: batch %v single %v", s, u, res[i][u], want[u])
			}
		}
		if stats[i].Iterations != wstats.Iterations {
			t.Fatalf("seed %d: batch took %d iterations, single %d", s, stats[i].Iterations, wstats.Iterations)
		}
	}

	// Workspace reuse across calls must not leak state between batches.
	res2, _, errs2 := e.QueryVectorBatch(nil, qs[:2], ws)
	for i := range res2 {
		if errs2[i] != nil {
			t.Fatal(errs2[i])
		}
		for u := range res2[i] {
			if res2[i][u] != res[i][u] {
				t.Fatalf("workspace reuse changed result for item %d", i)
			}
		}
	}
}

// TestQueryVectorBatchPartialFailure checks positional error isolation: a
// bad or pre-canceled item must not poison its batchmates.
func TestQueryVectorBatchPartialFailure(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(7, 5, 11))
	e, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := make([]float64, e.N())
	good[1] = 1
	bad := make([]float64, e.N()+3)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	ctxs := []context.Context{nil, nil, canceled}
	qs := [][]float64{good, bad, good}
	res, _, errs := e.QueryVectorBatch(ctxs, qs, nil)
	if errs[0] != nil || res[0] == nil {
		t.Fatalf("good item failed: %v", errs[0])
	}
	if errs[1] == nil || res[1] != nil {
		t.Fatal("length-mismatched item should fail positionally")
	}
	if errs[2] == nil || !errorsIsContext(errs[2]) || res[2] != nil {
		t.Fatalf("canceled item should carry its context error, got %v", errs[2])
	}
	want, _, err := e.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	var diff float64
	for u := range want {
		diff = math.Max(diff, math.Abs(res[0][u]-want[u]))
	}
	if diff > 1e-12 {
		t.Fatalf("good item diverged by %g", diff)
	}
}

func errorsIsContext(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// TestQueryContextCancel checks the deadline reaches the iterative solver.
func TestQueryContextCancel(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(7, 5, 13))
	e, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := make([]float64, e.N())
	q[0] = 1
	_, _, qerr := e.QueryVectorWS(ctx, q, nil)
	if qerr == nil {
		t.Fatal("canceled context should abort the query")
	}
}
