package core

import (
	"math"
	"math/rand"
	"testing"

	"bepi/internal/dense"
	"bepi/internal/lu"
	"bepi/internal/reorder"
)

// TestSchurComplementMatchesDense verifies the sparse, block-exploiting
// Schur construction against a dense S = H22 − H21·H11⁻¹·H12 computed with
// explicit inversion.
func TestSchurComplementMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(60)
		g := randGraph(rng, n)
		ord := reorder.HubAndSpoke(g, 0.15+0.3*rng.Float64())
		if ord.N1 == 0 || ord.N2 == 0 {
			continue
		}
		h := BuildH(g, ord.Perm, DefaultC)
		n1, n2 := ord.N1, ord.N2
		l := n1 + n2
		h11 := h.Block(0, n1, 0, n1)
		h12 := h.Block(0, n1, n1, l)
		h21 := h.Block(n1, l, 0, n1)
		h22 := h.Block(n1, l, n1, l)
		f, err := lu.FactorBlockDiag(h11, ord.Blocks)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := SchurComplement(h22, h21, h12, f)

		// Dense reference.
		d11 := dense.New(n1, n1)
		for i, row := range h11.ToDense() {
			copy(d11.Row(i), row)
		}
		inv, err := d11.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d12 := dense.New(n1, n2)
		for i, row := range h12.ToDense() {
			copy(d12.Row(i), row)
		}
		d21 := dense.New(n2, n1)
		for i, row := range h21.ToDense() {
			copy(d21.Row(i), row)
		}
		cross := d21.Mul(inv).Mul(d12)
		want := h22.ToDense()
		for i := 0; i < n2; i++ {
			for j := 0; j < n2; j++ {
				w := want[i][j] - cross.At(i, j)
				if math.Abs(got.At(i, j)-w) > 1e-9 {
					t.Fatalf("trial %d: S[%d][%d] = %v, want %v", trial, i, j, got.At(i, j), w)
				}
			}
		}
	}
}

// TestBuildHPermIdentity checks that a nil perm and an identity perm build
// the same matrix.
func TestBuildHPermIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	g := randGraph(rng, 50)
	id := make([]int, g.N())
	for i := range id {
		id[i] = i
	}
	a := BuildH(g, nil, DefaultC)
	b := BuildH(g, id, DefaultC)
	if !a.Equal(b) {
		t.Fatal("identity perm changed H")
	}
}

// TestBuildHDeadendColumns checks the structural fact behind the deadend
// reordering: the column of H for a deadend node is exactly e_j.
func TestBuildHDeadendColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	g := randGraph(rng, 60)
	h := BuildH(g, nil, DefaultC)
	ht := h.Transpose()
	for _, u := range g.Deadends() {
		s, e := ht.RowRange(u)
		if e-s != 1 || ht.ColIdx()[s] != u || ht.Values()[s] != 1 {
			t.Fatalf("deadend %d column is not e_%d", u, u)
		}
	}
}
