package core

import (
	"time"

	"bepi/internal/solver"
)

// Kernel names reported through SetKernelHook.
const (
	// KernelSchur is one application of the Schur operator (explicit SpMV
	// on S, or the fused implicit operator) inside an iterative solve.
	KernelSchur = "schur"
	// KernelPrecond is one application of the ILU(0) preconditioner.
	KernelPrecond = "precond"
)

// SchurOperator applies the Schur complement implicitly as the fused
// computation
//
//	dst = H22·x − H21·(H11⁻¹·(H12·x))
//
// without ever materializing S. A single owned temporary t (length n1)
// carries H12·x through the block back-substitution, and the trailing
// −H21·t lands directly in dst through the AddMulVec epilogue — no
// per-application allocations and one fewer full-vector pass than the
// unfused three-step formulation. It implements solver.Operator; each
// Workspace owns one, so concurrent solves never share a temporary.
type SchurOperator struct {
	e *Engine
	t []float64
}

// newSchurOperator builds a fused operator with its own temporary. The
// caller must have checked that the engine retains H22.
func (e *Engine) newSchurOperator() *SchurOperator {
	return &SchurOperator{e: e, t: make([]float64, e.ord.N1)}
}

// MulVec applies the fused operator.
func (s *SchurOperator) MulVec(dst, x []float64) {
	e := s.e
	e.h12.MulVec(s.t, x)
	e.h11LU.SolvePool(s.t, e.pool)
	e.h22.MulVec(dst, x)
	e.h21.AddMulVec(dst, -1, s.t)
}

// schurOperator returns the operator iterative solves run on: the
// explicit sparsified S by default, or the fused implicit operator when
// the engine was built with Options.ImplicitSchur. With a workspace the
// fused operator (and its temporary) is reused across that workspace's
// solves.
func (e *Engine) schurOperator(ws *Workspace) solver.Operator {
	if e.h22 == nil {
		return e.schur
	}
	if ws != nil {
		if ws.schurOp == nil {
			ws.schurOp = e.newSchurOperator()
		}
		return ws.schurOp
	}
	return e.newSchurOperator()
}

// schurApplyBytes approximates the bytes one Schur-operator application
// moves: the operand matrices (and LU factors, for the implicit form) at
// their stored width plus the input/output vector traffic.
func (e *Engine) schurApplyBytes() int64 {
	vecs := int64(16 * e.ord.N2)
	if e.h22 != nil {
		return e.h12.MemoryBytes() + e.h21.MemoryBytes() + e.h22.MemoryBytes() +
			e.h11LU.MemoryBytes() + vecs + int64(16*e.ord.N1)
	}
	return e.schur.MemoryBytes() + vecs
}

// timedOperator wraps an operator to report each application through the
// engine's kernel hook.
type timedOperator struct {
	op     solver.Operator
	hook   func(kernel string, seconds float64, bytes int64)
	kernel string
	bytes  int64
}

func (t *timedOperator) MulVec(dst, x []float64) {
	start := time.Now()
	t.op.MulVec(dst, x)
	t.hook(t.kernel, time.Since(start).Seconds(), t.bytes)
}

// timedPrecond is timedOperator for preconditioner applications.
type timedPrecond struct {
	pre    solver.Preconditioner
	hook   func(kernel string, seconds float64, bytes int64)
	kernel string
	bytes  int64
}

func (t *timedPrecond) Apply(dst, src []float64) {
	start := time.Now()
	t.pre.Apply(dst, src)
	t.hook(t.kernel, time.Since(start).Seconds(), t.bytes)
}
