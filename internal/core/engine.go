// Package core implements BePI itself: the preprocessing phase
// (Algorithms 1 and 3 of the paper — deadend + SlashBurn reordering, block
// partitioning of H, per-block LU of H11, Schur complement construction,
// and optional ILU(0) preconditioner), and the query phase (Algorithms 2
// and 4 — block elimination with an iterative Schur solve).
//
// The three published variants are exposed through Options.Variant:
//
//	VariantB    — block elimination + plain GMRES on S (BePI-B, §3.3)
//	VariantS    — + hub ratio chosen to sparsify S (BePI-S, §3.4)
//	VariantFull — + ILU(0)-preconditioned GMRES (BePI, §3.5)
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bepi/internal/graph"
	"bepi/internal/lu"
	"bepi/internal/par"
	"bepi/internal/reorder"
	"bepi/internal/sparse"
)

// Variant selects which of the paper's three algorithm versions to run.
type Variant int

const (
	// VariantFull is BePI, the complete algorithm: sparsified Schur
	// complement plus ILU(0) preconditioning. It is the zero value, so an
	// unconfigured Options runs full BePI.
	VariantFull Variant = iota
	// VariantB is BePI-B: block elimination with an unpreconditioned
	// iterative Schur solve and a small fixed hub ratio (paper uses 0.001).
	VariantB
	// VariantS is BePI-S: like BePI-B but with a hub ratio that sparsifies
	// the Schur complement (paper uses 0.2–0.3).
	VariantS
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantB:
		return "BePI-B"
	case VariantS:
		return "BePI-S"
	case VariantFull:
		return "BePI"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// DefaultC is the restart probability used throughout the paper's
// experiments.
const DefaultC = 0.05

// DefaultTol is the paper's error tolerance ε.
const DefaultTol = 1e-9

// Options configures preprocessing and querying.
type Options struct {
	// C is the restart probability (0 < C < 1); default 0.05.
	C float64
	// Tol is the iterative-solver tolerance ε; default 1e-9.
	Tol float64
	// Variant selects BePI-B, BePI-S or full BePI; default VariantFull.
	Variant Variant
	// HubRatio overrides the SlashBurn hub selection ratio k. Zero selects
	// the paper's defaults: 0.001 for BePI-B, 0.2 for BePI-S/BePI.
	HubRatio float64
	// MaxIter bounds GMRES iterations per query; default 1000.
	MaxIter int
	// GMRESRestart, if positive, restarts GMRES with that cycle length.
	// Zero (default) runs full GMRES as the paper does.
	GMRESRestart int
	// Solver selects the iterative method for the Schur system. The paper
	// uses GMRES (the default); BiCGSTAB is a short-recurrence alternative
	// provided for the solver-ablation experiment.
	Solver SchurSolver
	// MemoryBudget, if positive, aborts preprocessing with
	// ErrMemoryBudget when the preprocessed data would exceed this many
	// bytes. Models the paper's out-of-memory outcomes.
	MemoryBudget int64
	// Deadline, if positive, aborts preprocessing with ErrDeadline once
	// exceeded. Models the paper's 24-hour preprocessing timeout.
	Deadline time.Duration
	// Parallelism caps how many cores preprocessing and the query kernels
	// use. Zero (default) shares the process-wide GOMAXPROCS-sized pool
	// with every other engine; 1 forces serial execution; n > 1 gives the
	// engine its own n-worker pool. Parallel and serial execution produce
	// bit-identical results.
	Parallelism int
	// PinWorkers, with Parallelism > 1, locks each of the engine's
	// dedicated pool workers to an OS thread (runtime.LockOSThread), so the
	// scheduler cannot migrate a worker between first-touching its matrix
	// partition (FirstTouch) and streaming it on later applies — the
	// NUMA-friendly sticky placement. Ignored for the shared pool
	// (Parallelism == 0) and for serial execution. Results are unaffected.
	PinWorkers bool
	// Compact selects the storage layout of the preprocessed matrices
	// (H12/H21/H31/H32, the Schur complement, and the ILU factors).
	// CompactAuto — the zero value, i.e. the default — narrows the index
	// arrays to 32 bits after preprocessing, cutting their footprint and
	// the bytes every solve iteration streams roughly in half; query
	// results are bit-identical to the wide layout. CompactOff keeps the
	// wide CSR layout. The mode is a runtime knob (see SetCompact), not
	// part of the serialized index.
	Compact CompactMode
	// ImplicitSchur, when true, makes the iterative solver apply the Schur
	// complement as the fused operator H22·x − H21·(H11⁻¹·(H12·x)) instead
	// of an explicit SpMV on the precomputed S; the engine then retains the
	// H22 block. The explicit S is still built (the ILU preconditioner and
	// the accuracy bound need it). Default false — the explicit operator is
	// the paper's formulation and the bit-stable baseline. The flag applies
	// to engines built by Preprocess; a loaded index always serves the
	// explicit operator.
	ImplicitSchur bool
	// MaxHubDrift bounds how much hub-touching deltas may perturb the Schur
	// complement before ApplyDelta refuses and demands a full rebuild: the
	// drift score is ‖S_now − S̃_base‖F / ‖S̃_base‖F accumulated column-wise
	// across hub deltas (see Engine.Drift). Zero selects the default 0.1; a
	// negative value disables the hub-delta path entirely, so any
	// hub-touching delta falls back to a full rebuild.
	MaxHubDrift float64
}

// DefaultMaxHubDrift is the hub-drift threshold used when
// Options.MaxHubDrift is zero.
const DefaultMaxHubDrift = 0.1

// CompactMode selects between the wide CSR and compact CSR32 index layouts
// for the engine's stored matrices.
type CompactMode int

const (
	// CompactAuto (the default) compacts whenever the index range allows.
	CompactAuto CompactMode = iota
	// CompactOn compacts, like CompactAuto; the distinct value lets
	// configuration layers express an explicit choice.
	CompactOn
	// CompactOff keeps the wide layout.
	CompactOff
)

func (o Options) withDefaults() Options {
	if o.C <= 0 || o.C >= 1 {
		o.C = DefaultC
	}
	if o.Tol <= 0 {
		o.Tol = DefaultTol
	}
	if o.HubRatio == 0 {
		if o.Variant == VariantB {
			o.HubRatio = 0.001
		} else {
			o.HubRatio = 0.2
		}
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	if o.MaxHubDrift == 0 {
		o.MaxHubDrift = DefaultMaxHubDrift
	}
	return o
}

// SchurSolver names an iterative solver for the Schur-complement system.
type SchurSolver int

const (
	// SolverGMRES is the paper's choice (default).
	SolverGMRES SchurSolver = iota
	// SolverBiCGSTAB trades the stored Krylov basis for two mat-vecs per
	// iteration.
	SolverBiCGSTAB
)

// String returns the solver's display name.
func (s SchurSolver) String() string {
	switch s {
	case SolverBiCGSTAB:
		return "BiCGSTAB"
	default:
		return "GMRES"
	}
}

// Errors reported by preprocessing budget guards.
var (
	ErrMemoryBudget = errors.New("core: preprocessed data exceeds memory budget")
	ErrDeadline     = errors.New("core: preprocessing deadline exceeded")
)

// PrepStats records where preprocessing time went and the sizes that
// determine query cost.
type PrepStats struct {
	Total      time.Duration
	Reorder    time.Duration
	BuildH     time.Duration
	FactorH11  time.Duration
	Schur      time.Duration
	ILU        time.Duration
	N, M       int
	N1, N2, N3 int
	Blocks     int
	SchurNNZ   int
	HubRatio   float64
	// Workers is the effective parallel worker count the engine's pool
	// admits (1 = serial).
	Workers int
}

// QueryStats records the cost of one RWR query.
type QueryStats struct {
	Duration   time.Duration
	Iterations int
	Residual   float64
	// Stages breaks Duration down by pipeline phase. In a batched solve the
	// shared phases (everything except Solve) report the whole batch's
	// phase wall time — the latency that query actually experienced there.
	Stages StageTimings
}

// StageTimings is the engine-side phase breakdown of one query: where the
// time between entering QueryVectorBatch and returning the score vector
// went. Solve is per query (the iterative Schur solve runs per item); the
// other phases are shared across the batch.
type StageTimings struct {
	// Permute covers scattering q into the reordered space and forming
	// t1 = c·q1.
	Permute time.Duration
	// Forward covers the batched H11 back-substitution, the H21 SpMV, and
	// assembling q̃2 (Algorithm 4, line 3).
	Forward time.Duration
	// Solve is this query's iterative solve of S·r2 = q̃2 (line 4).
	Solve time.Duration
	// Back covers r1/r3 reconstruction and the un-permute into original
	// node ids (lines 5-7).
	Back time.Duration
}

// Engine is a preprocessed BePI index able to answer RWR queries for any
// seed node. It is safe for concurrent queries (all query state is local).
type Engine struct {
	opts Options
	n    int
	ord  *reorder.Ordering

	h12, h21, h31, h32 mat
	schur              mat
	h22                mat // retained only when opts.ImplicitSchur
	// h22x retains the H22 block on explicit-operator engines purely for the
	// incremental-rebuild path: ApplyDelta extracts affected H22 columns from
	// it in one sweep instead of reconstructing them from the graph per
	// column. Never read on the query path and not serialized — engines
	// loaded from disk fall back to the per-column graph reconstruction.
	h22x  mat
	h11LU *lu.BlockLU
	ilu   *lu.ILU // nil unless VariantFull

	pool *par.Pool // compute pool for kernels; nil means serial
	prep PrepStats

	// iterHook, when set, receives (iteration, residual) from inside every
	// iterative Schur solve — live convergence telemetry for the serving
	// layer. It must be safe for concurrent calls (solves run on many
	// workers) and cheap (it fires once per solver iteration).
	iterHook func(iter int, residual float64)

	// kernelHook, when set, receives one sample per hot-path kernel
	// application during iterative solves: the kernel name (KernelSchur,
	// KernelPrecond), its wall time, and the approximate bytes it moved.
	// Same contract as iterHook: concurrent-safe and cheap.
	kernelHook func(kernel string, seconds float64, bytes int64)

	// bnd caches the seed-independent factor of the Theorem-4 accuracy
	// bound, √((α‖H31‖+‖H32‖)² + α² + 1)/σmin(S): the norm and
	// singular-value estimates behind it cost dozens of GMRES solves on S,
	// so they run once per engine — lazily, under the Once — and every
	// per-seed bound then just scales the factor by that seed's ‖q̃2‖.
	// Compact/parallelism toggles keep it valid (their kernels are
	// bit-identical), and an engine swap replaces the whole Engine.
	bndOnce   sync.Once
	bndFactor float64
	bndErr    error

	// wood, when non-nil, is the Woodbury low-rank correction a hub-touching
	// delta installed over the explicit Schur operator: the stored schur (and
	// its ILU factors) remain the base S̃ the correction was built against,
	// and runSchurSolve applies the rank-r update after every iterative
	// solve. Engines with a correction cannot be serialized and do not serve
	// the bounded top-k certificate. Built by ApplyDelta (delta.go).
	wood *woodbury
	// driftCols tracks, per Schur column, the accumulated perturbation
	// ‖ΔS[:,j]‖₂ hub deltas have applied since the ILU factors (and, for
	// corrected engines, the stored S̃) were last exact; driftBase is
	// ‖S̃‖F at that point. Engine.Drift derives the relative score from them.
	driftCols map[int]float64
	driftBase float64

	// tk caches the calibrated ℓ∞ error-to-residual ratio the bounded
	// top-k certificate scales per-iteration residuals by. Unlike the
	// Theorem-4 ℓ2 envelope above (valid but orders too conservative for
	// per-node gap tests at scale), it is measured: reference solves record
	// the worst observed max-node score error per unit of true Schur
	// residual, and topkBoundSafety inflates it at check time. Computed
	// once per engine, lazily, under the Once.
	tkOnce   sync.Once
	tkFactor float64
	tkErr    error
}

// SetIterHook installs a per-iteration solver observer (nil removes it).
// Set it before serving queries; it must not race with in-flight solves.
func (e *Engine) SetIterHook(f func(iter int, residual float64)) { e.iterHook = f }

// SetKernelHook installs a per-kernel-application observer (nil removes
// it): each Schur-operator and preconditioner application during an
// iterative solve reports (kernel, seconds, bytes moved). Set it before
// serving queries; it must not race with in-flight solves.
func (e *Engine) SetKernelHook(f func(kernel string, seconds float64, bytes int64)) {
	e.kernelHook = f
}

// poolFor resolves the Parallelism option to a pool: 0 shares the
// process-wide pool, 1 is serial (nil pool), n > 1 is a dedicated sticky
// pool — persistent workers with a deterministic chunk assignment, locked
// to OS threads when pin is set.
func poolFor(parallelism int, pin bool) *par.Pool {
	switch {
	case parallelism == 1:
		return nil
	case parallelism > 1:
		return par.NewStickyPool(parallelism, pin)
	default:
		return par.Shared()
	}
}

// attachPool points every stored matrix (and the ILU factors) at the
// engine's pool so the query-path SpMVs and triangular sweeps
// row-partition across it, then first-touches each matrix: the row
// partition is cached, and on a sticky pool each worker rewrites its own
// partition segment so the pages it will stream every apply are placed
// local to it.
func (e *Engine) attachPool() {
	for _, m := range []mat{e.h12, e.h21, e.h31, e.h32, e.schur, e.h22} {
		if m != nil {
			matSetPool(m, e.pool)
			matFirstTouch(m)
		}
	}
	if e.ilu != nil {
		e.ilu.SetPool(e.pool)
	}
	e.prep.Workers = e.pool.Workers()
}

// WarmupKernels runs the process-wide kernel calibrations an engine's hot
// paths depend on: the prefetch-distance micro-probe (unless a distance was
// set explicitly). Executors call it once at construction; it is cheap
// after the first call.
func WarmupKernels() {
	sparse.AutoTunePrefetch()
}

// setCompactMatrices converts every stored matrix (and the ILU factors)
// to the requested layout in place. Narrowing shares the value slices, so
// only the index arrays are rebuilt; widening a compacted ILU re-factors
// it from the (widened) Schur complement, which reproduces the original
// factors exactly.
func (e *Engine) setCompactMatrices(on bool) {
	conv := widenMat
	if on {
		conv = compactMat
	}
	e.h12, e.h21, e.h31, e.h32 = conv(e.h12), conv(e.h21), conv(e.h31), conv(e.h32)
	e.schur = conv(e.schur)
	e.h22 = conv(e.h22)
	e.h22x = conv(e.h22x)
	if e.ilu != nil {
		if on {
			e.ilu.Compact()
		} else if e.ilu.Compacted() {
			if f, err := lu.FactorILU0(asCSR(e.schur)); err == nil {
				e.ilu = f
			}
		}
	}
	e.attachPool()
}

// SetCompact switches the engine between the wide CSR and compact CSR32
// layouts at runtime (the same knob as Options.Compact, for engines
// already built or loaded). It must not race with in-flight queries.
// Query results are bit-identical in either layout; only MemoryBytes and
// the bandwidth the kernels stream change.
func (e *Engine) SetCompact(on bool) {
	if on {
		e.opts.Compact = CompactOn
	} else {
		e.opts.Compact = CompactOff
	}
	e.setCompactMatrices(on)
}

// Compacted reports whether the stored matrices use the compact layout.
func (e *Engine) Compacted() bool {
	_, ok := e.schur.(*sparse.CSR32)
	return ok
}

// SetParallelism re-points the engine (and its matrices) at a pool for the
// given parallelism level, using the same resolution as
// Options.Parallelism. It is meant for right after loading a saved index;
// it must not race with in-flight queries.
func (e *Engine) SetParallelism(n int) {
	e.opts.Parallelism = n
	e.pool = poolFor(n, e.opts.PinWorkers)
	e.attachPool()
}

// SetPinWorkers records the worker-pinning preference (Options.PinWorkers)
// and, when the engine runs a dedicated pool, rebuilds it accordingly. Call
// before serving queries; it must not race with in-flight solves.
func (e *Engine) SetPinWorkers(on bool) {
	if e.opts.PinWorkers == on {
		return
	}
	e.opts.PinWorkers = on
	if e.opts.Parallelism > 1 {
		e.pool = poolFor(e.opts.Parallelism, on)
		e.attachPool()
	}
}

// Pool exposes the engine's compute pool (nil means serial).
func (e *Engine) Pool() *par.Pool { return e.pool }

// Preprocess runs Algorithm 1/3 on the graph and returns a query-ready
// engine.
func Preprocess(g *graph.Graph, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	start := time.Now()

	e := &Engine{opts: opts, n: g.N(), pool: poolFor(opts.Parallelism, opts.PinWorkers)}
	e.prep.N, e.prep.M = g.N(), g.M()
	e.prep.HubRatio = opts.HubRatio
	e.prep.Workers = e.pool.Workers()

	// 1. Node reordering: deadends to the tail, SlashBurn on the rest.
	t0 := time.Now()
	e.ord = reorder.HubAndSpoke(g, opts.HubRatio)
	e.prep.Reorder = time.Since(t0)
	if opts.Deadline > 0 && time.Since(start) > opts.Deadline {
		return nil, fmt.Errorf("after %v: %w", time.Since(start).Round(time.Millisecond), ErrDeadline)
	}
	return e.preprocessFrom(g, start)
}

// PreprocessWithOrdering runs preprocessing stages 2–6 (build H, partition,
// factor H11, Schur complement, ILU, compaction) under a caller-supplied
// node ordering, skipping the SlashBurn reordering stage entirely. It is the
// from-scratch reference for the delta-rebuild path: a spoke-only delta
// rebuild must be bit-identical to PreprocessWithOrdering of the updated
// graph under the reused ordering. The ordering must cover exactly g.N()
// nodes and pass its own validation.
func PreprocessWithOrdering(g *graph.Graph, opts Options, ord *reorder.Ordering) (*Engine, error) {
	opts = opts.withDefaults()
	if len(ord.Perm) != g.N() {
		return nil, fmt.Errorf("core: ordering covers %d nodes, graph has %d", len(ord.Perm), g.N())
	}
	if err := ord.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid ordering: %w", err)
	}
	start := time.Now()
	e := &Engine{opts: opts, n: g.N(), ord: ord, pool: poolFor(opts.Parallelism, opts.PinWorkers)}
	e.prep.N, e.prep.M = g.N(), g.M()
	e.prep.HubRatio = opts.HubRatio
	e.prep.Workers = e.pool.Workers()
	return e.preprocessFrom(g, start)
}

// preprocessFrom runs stages 2–6 of preprocessing on an engine whose
// ordering (e.ord) is already in place. start anchors the deadline budget
// and the Total stat.
func (e *Engine) preprocessFrom(g *graph.Graph, start time.Time) (*Engine, error) {
	opts := e.opts
	deadline := func() error {
		if opts.Deadline > 0 && time.Since(start) > opts.Deadline {
			return fmt.Errorf("after %v: %w", time.Since(start).Round(time.Millisecond), ErrDeadline)
		}
		return nil
	}
	e.prep.N1, e.prep.N2, e.prep.N3 = e.ord.N1, e.ord.N2, e.ord.N3
	e.prep.Blocks = len(e.ord.Blocks)

	// 2. Build the reordered H = I − (1−c)Ãᵀ and partition it.
	t0 := time.Now()
	h := BuildH(g, e.ord.Perm, opts.C)
	n1, n2 := e.ord.N1, e.ord.N2
	l := n1 + n2
	h11 := h.Block(0, n1, 0, n1)
	h12 := h.Block(0, n1, n1, l)
	h21 := h.Block(n1, l, 0, n1)
	h22 := h.Block(n1, l, n1, l)
	e.h12, e.h21 = h12, h21
	e.h31 = h.Block(l, e.n, 0, n1)
	e.h32 = h.Block(l, e.n, n1, l)
	if opts.ImplicitSchur {
		e.h22 = h22
	} else {
		e.h22x = h22
	}
	e.prep.BuildH = time.Since(t0)
	if err := deadline(); err != nil {
		return nil, err
	}

	// 3. Per-block LU of the block-diagonal H11, blocks in parallel.
	t0 = time.Now()
	var err error
	e.h11LU, err = lu.FactorBlockDiagPool(h11, e.ord.Blocks, e.pool)
	if err != nil {
		return nil, fmt.Errorf("core: factoring H11: %w", err)
	}
	e.prep.FactorH11 = time.Since(t0)
	if opts.MemoryBudget > 0 && e.h11LU.MemoryBytes() > opts.MemoryBudget {
		return nil, fmt.Errorf("H11 factors need %d bytes: %w", e.h11LU.MemoryBytes(), ErrMemoryBudget)
	}
	if err := deadline(); err != nil {
		return nil, err
	}

	// 4. Schur complement S = H22 − H21·H11⁻¹·H12, columns in parallel.
	// The engine already needs column views of H12/H21, so it builds the
	// transposes once here and hands them in instead of letting
	// SchurComplement rebuild them.
	t0 = time.Now()
	schur := SchurComplementT(h22, h21.Transpose(), h12.Transpose(), e.h11LU, e.pool)
	e.schur = schur
	e.prep.Schur = time.Since(t0)
	e.prep.SchurNNZ = schur.NNZ()
	if err := deadline(); err != nil {
		return nil, err
	}

	// 5. ILU(0) preconditioner for the full variant, factored from the wide
	// S before any index compaction.
	if opts.Variant == VariantFull {
		t0 = time.Now()
		e.ilu, err = lu.FactorILU0(schur)
		if err != nil {
			return nil, fmt.Errorf("core: ILU(0) of S: %w", err)
		}
		e.prep.ILU = time.Since(t0)
	}
	// 6. Narrow the index arrays (default on): the wide copies are dropped
	// here, so the budget check below sees the footprint queries will pay.
	if opts.Compact != CompactOff {
		e.setCompactMatrices(true)
	}
	e.prep.Total = time.Since(start)
	if opts.MemoryBudget > 0 && e.MemoryBytes() > opts.MemoryBudget {
		return nil, fmt.Errorf("preprocessed data needs %d bytes: %w", e.MemoryBytes(), ErrMemoryBudget)
	}
	e.attachPool()
	return e, nil
}

// BuildH constructs the reordered system matrix H = P(I − (1−c)Ãᵀ)Pᵀ
// directly from the graph in O(m): entry (perm[v], perm[u]) receives
// −(1−c)/outdeg(u) for every edge (u, v), and the diagonal is 1.
func BuildH(g *graph.Graph, perm []int, c float64) *sparse.CSR {
	n := g.N()
	coo := sparse.NewCOO(n, n)
	coo.Reserve(g.M() + n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	for u := 0; u < n; u++ {
		deg := g.OutDegree(u)
		if deg == 0 {
			continue
		}
		w := -(1 - c) / float64(deg)
		pu := u
		if perm != nil {
			pu = perm[u]
		}
		for _, v := range g.OutNeighbors(u) {
			pv := v
			if perm != nil {
				pv = perm[v]
			}
			coo.Add(pv, pu, w)
		}
	}
	return coo.ToCSR()
}

// SchurComplement computes S = H22 − H21·H11⁻¹·H12 column by column,
// exploiting the block-diagonal H11: each H12 column only activates the
// blocks it touches. It builds the column views (transposes) of H12/H21
// itself and runs serially; callers that already hold the transposes — the
// engine builds them once during preprocessing — should use
// SchurComplementT directly.
func SchurComplement(h22, h21, h12 *sparse.CSR, h11LU *lu.BlockLU) *sparse.CSR {
	return SchurComplementT(h22, h21.Transpose(), h12.Transpose(), h11LU, nil)
}

// schurScratch is the per-worker state of a parallel Schur build: a dense
// accumulator with last-touched column marks, a substitution scratch
// vector, and a COO shard collecting the worker's −H21·H11⁻¹·H12 entries.
type schurScratch struct {
	acc     []float64
	mark    []int
	scratch []float64
	touched []int
	coo     *sparse.COO
}

// SchurComplementT is SchurComplement over the pre-transposed column views
// h21T (n1×n2, row i = column i of H21) and h12T (n2×n1, row j = column j
// of H12), with the n2 columns partitioned across the pool. Each worker
// accumulates its columns with the serial algorithm into a private
// accumulator and COO shard; shards merge in deterministic chunk order.
// Per-column accumulation order is unchanged and every (i, j) entry is
// produced exactly once, so the result is bit-identical to the serial path
// at any worker count. A nil pool runs serially.
func SchurComplementT(h22, h21T, h12T *sparse.CSR, h11LU *lu.BlockLU, pool *par.Pool) *sparse.CSR {
	n2 := h22.Rows()
	parts := pool.Workers()
	if parts > 1 && n2 < 2 {
		parts = 1
	}
	arena := par.NewArena(parts, func() *schurScratch {
		mark := make([]int, n2)
		for i := range mark {
			mark[i] = -1
		}
		return &schurScratch{
			acc:     make([]float64, n2),
			mark:    mark,
			scratch: make([]float64, maxInt(h11LU.MaxBlockSize(), 1)),
			coo:     sparse.NewCOO(n2, n2),
		}
	})

	// Build Sᵀ row by row (row j of Sᵀ = column j of S): y = H21 ·
	// (H11⁻¹ · H12[:,j]) accumulated sparsely, then staged as −y; S = H22 +
	// (−H21·H11⁻¹·H12). Columns are independent: each touches only its own
	// chunk's scratch and shard.
	columnRange := func(chunk, jlo, jhi int) {
		w := arena.Get(chunk)
		for j := jlo; j < jhi; j++ {
			w.touched = w.touched[:0]
			s, e := h12T.RowRange(j)
			idx := h12T.ColIdx()[s:e]
			vals := h12T.Values()[s:e]
			h11LU.SolveSparse(idx, vals, w.scratch, func(row int, x float64) {
				rs, re := h21T.RowRange(row)
				cols := h21T.ColIdx()[rs:re]
				vs := h21T.Values()[rs:re]
				for p, i := range cols {
					if w.mark[i] != j {
						w.mark[i] = j
						w.acc[i] = 0
						w.touched = append(w.touched, i)
					}
					w.acc[i] += vs[p] * x
				}
			})
			for _, i := range w.touched {
				if w.acc[i] != 0 {
					w.coo.Add(i, j, -w.acc[i])
				}
			}
		}
	}

	if parts <= 1 {
		arena.Get(0).coo.Reserve(h22.NNZ())
		columnRange(0, 0, n2)
		return h22.Add(arena.Get(0).coo.ToCSR())
	}
	// Balance chunks by H12-column fill (the substitution fan-out driver).
	bounds := par.BoundsByPrefix(h12T.RowPtr(), parts)
	pool.ForBounds(bounds, columnRange)
	// Merge shards in chunk order. Entry order does not affect ToCSR's
	// result here — every (i, j) appears in exactly one shard — but a
	// deterministic order keeps the whole pipeline reproducible.
	merged := sparse.NewCOO(n2, n2)
	total := 0
	for c := 0; c < len(bounds)-1; c++ {
		total += arena.Get(c).coo.NNZ()
	}
	merged.Reserve(total)
	for c := 0; c < len(bounds)-1; c++ {
		merged.Append(arena.Get(c).coo)
	}
	return h22.Add(merged.ToCSR())
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// N returns the number of nodes the engine was built for.
func (e *Engine) N() int { return e.n }

// Options returns the (defaulted) options the engine was built with.
func (e *Engine) Options() Options { return e.opts }

// PrepStats returns preprocessing statistics.
func (e *Engine) PrepStats() PrepStats { return e.prep }

// Ordering exposes the node ordering (for experiments).
func (e *Engine) Ordering() *reorder.Ordering { return e.ord }

// Schur exposes the Schur complement (for experiments; read-only). When
// the engine stores the compact layout this is a widened copy.
func (e *Engine) Schur() *sparse.CSR { return asCSR(e.schur) }

// MemoryBytes reports the total footprint of the preprocessed data:
// the H11 LU factors, the partition blocks H12/H21/H31/H32 (plus H22 when
// the engine applies the Schur complement implicitly), the Schur
// complement, and (for full BePI) its ILU factors, all at their current
// index width. This is the quantity in Figure 1(b) of the paper.
func (e *Engine) MemoryBytes() int64 {
	total := e.h11LU.MemoryBytes() +
		e.h12.MemoryBytes() + e.h21.MemoryBytes() +
		e.h31.MemoryBytes() + e.h32.MemoryBytes() +
		e.schur.MemoryBytes()
	if e.h22 != nil {
		total += e.h22.MemoryBytes()
	}
	if e.h22x != nil {
		total += e.h22x.MemoryBytes()
	}
	if e.ilu != nil {
		total += e.ilu.MemoryBytes()
	}
	// Permutation arrays.
	total += int64(2 * e.n * 8)
	return total
}

// Preconditioned reports whether the engine applies an ILU preconditioner.
func (e *Engine) Preconditioned() bool { return e.ilu != nil }

// ILU exposes the ILU(0) factors of S (nil unless VariantFull), for the
// spectrum experiments.
func (e *Engine) ILU() *lu.ILU { return e.ilu }
