package core

import (
	"math"
	"testing"

	"bepi/internal/graph"
)

// TestAllDeadendGraph: with no edges at all, the RWR vector is exactly c·q.
func TestAllDeadendGraph(t *testing.T) {
	g := graph.MustNew(5, nil)
	e, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, st, err := e.Query(2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 0 {
		t.Fatalf("no Schur system to solve, got %d iterations", st.Iterations)
	}
	for i, v := range r {
		want := 0.0
		if i == 2 {
			want = DefaultC
		}
		if math.Abs(v-want) > 1e-15 {
			t.Fatalf("r[%d] = %v want %v", i, v, want)
		}
	}
}

// TestEmptyGraph: the degenerate zero-node graph round-trips cleanly.
func TestEmptyGraph(t *testing.T) {
	g := graph.MustNew(0, nil)
	e, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Query(0); err == nil {
		t.Fatal("expected range error on empty engine")
	}
	r, _, err := e.QueryVector(nil)
	if err != nil || len(r) != 0 {
		t.Fatalf("empty QueryVector: %v, %v", r, err)
	}
}

// TestSelfLoopOnlyGraph: a node whose only edge is a self-loop keeps all
// its probability mass.
func TestSelfLoopOnlyGraph(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{Src: 0, Dst: 0}})
	e, err := Preprocess(g, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := e.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r[0]-1) > 1e-9 {
		t.Fatalf("self-loop seed mass %v, want 1", r[0])
	}
	exact, err := ExactDense(g, DefaultC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r[0]-exact[0]) > 1e-9 {
		t.Fatalf("self-loop vs exact: %v vs %v", r[0], exact[0])
	}
}

// TestDeadendSeed: querying from a deadend gives c at the seed, zero
// elsewhere (the surfer's non-restart steps die immediately).
func TestDeadendSeed(t *testing.T) {
	g := graph.MustNew(4, []graph.Edge{{Src: 0, Dst: 3}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}})
	e, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := e.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range r {
		want := 0.0
		if i == 3 {
			want = DefaultC
		}
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("r[%d] = %v want %v", i, v, want)
		}
	}
}

// TestTwoNodeCycleClosedForm checks BePI against the hand-derived solution
// of the 2-cycle: r0 = c/(1−(1−c)²)·1, r1 = (1−c)·r0... solved exactly.
func TestTwoNodeCycleClosedForm(t *testing.T) {
	g := graph.MustNew(2, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}})
	c := 0.15
	e, err := Preprocess(g, Options{C: c, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := e.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	// H = [[1, −(1−c)], [−(1−c), 1]], H r = c e0 ⇒
	// r0 = c/(1−(1−c)²), r1 = (1−c)·r0.
	d := 1 - (1-c)*(1-c)
	want0 := c / d
	want1 := (1 - c) * want0
	if math.Abs(r[0]-want0) > 1e-10 || math.Abs(r[1]-want1) > 1e-10 {
		t.Fatalf("r = %v, want [%v %v]", r, want0, want1)
	}
	if math.Abs(r[0]+r[1]-1) > 1e-10 {
		t.Fatal("cycle should conserve probability mass")
	}
}
