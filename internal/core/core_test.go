package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bepi/internal/gen"
	"bepi/internal/graph"
	"bepi/internal/solver"
	"bepi/internal/vec"
)

// randGraph builds a random directed graph with some deadends.
func randGraph(rng *rand.Rand, n int) *graph.Graph {
	m := n + rng.Intn(4*n)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: rng.Intn(n), Dst: rng.Intn(n)}
	}
	// Force a few deadends by dropping out-edges of the last nodes.
	dead := 1 + n/10
	kept := edges[:0]
	for _, e := range edges {
		if e.Src < n-dead {
			kept = append(kept, e)
		}
	}
	return graph.MustNew(n, kept)
}

func engineFor(t *testing.T, g *graph.Graph, v Variant, k float64) *Engine {
	t.Helper()
	e, err := Preprocess(g, Options{Variant: v, HubRatio: k, Tol: 1e-11})
	if err != nil {
		t.Fatalf("Preprocess(%v): %v", v, err)
	}
	return e
}

func TestAllVariantsMatchExactDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		n := 20 + rng.Intn(80)
		g := randGraph(rng, n)
		seed := rng.Intn(n)
		want, err := ExactDense(g, DefaultC, seed)
		if err != nil {
			t.Fatalf("trial %d: exact: %v", trial, err)
		}
		for _, v := range []Variant{VariantB, VariantS, VariantFull} {
			e := engineFor(t, g, v, 0.2)
			got, stats, err := e.Query(seed)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, v, err)
			}
			if d := vec.Dist2(got, want); d > 1e-7 {
				t.Fatalf("trial %d %v: distance to exact %v (iters=%d)", trial, v, d, stats.Iterations)
			}
		}
	}
}

func TestBePIMatchesPowerIteration(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 6, 5))
	e := engineFor(t, g, VariantFull, 0.2)
	at := RowNormalizedAdjacencyT(g)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		seed := rng.Intn(g.N())
		got, _, err := e.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		q := make([]float64, g.N())
		q[seed] = 1
		want, _, err := solver.PowerIteration(at, q, DefaultC, solver.PowerOptions{Tol: 1e-12, MaxIter: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if d := vec.Dist2(got, want); d > 1e-7 {
			t.Fatalf("trial %d: BePI vs power distance %v", trial, d)
		}
	}
}

func TestPreconditioningReducesIterations(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	plain := engineFor(t, g, VariantS, 0.2)
	cond := engineFor(t, g, VariantFull, 0.2)
	rng := rand.New(rand.NewSource(3))
	var itPlain, itCond int
	for trial := 0; trial < 5; trial++ {
		seed := rng.Intn(g.N())
		_, sp, err := plain.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		_, sc, err := cond.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		itPlain += sp.Iterations
		itCond += sc.Iterations
	}
	if itCond >= itPlain {
		t.Fatalf("preconditioned iterations %d >= plain %d", itCond, itPlain)
	}
}

func TestBiCGSTABSolverMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		n := 30 + rng.Intn(60)
		g := randGraph(rng, n)
		seed := rng.Intn(n)
		e, err := Preprocess(g, Options{
			Variant: VariantFull, HubRatio: 0.2, Tol: 1e-11,
			Solver: SolverBiCGSTAB, MaxIter: 4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := e.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ExactDense(g, DefaultC, seed)
		if err != nil {
			t.Fatal(err)
		}
		if d := vec.Dist2(got, want); d > 1e-7 {
			t.Fatalf("trial %d: BiCGSTAB engine distance %v", trial, d)
		}
	}
}

func TestQueryVectorMultiSeedPPR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randGraph(rng, 60)
	e := engineFor(t, g, VariantFull, 0.2)
	// PPR with two seeds = average of the two single-seed solutions
	// (linearity of H r = c q).
	s1, s2 := 3, 41
	q := make([]float64, g.N())
	q[s1], q[s2] = 0.5, 0.5
	got, _, err := e.QueryVector(q)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := e.Query(s1)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := e.Query(s2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := 0.5*r1[i] + 0.5*r2[i]
		if math.Abs(got[i]-want) > 1e-8 {
			t.Fatalf("PPR[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randGraph(rng, 30)
	e := engineFor(t, g, VariantFull, 0.2)
	if _, _, err := e.Query(-1); err == nil {
		t.Fatal("expected error for negative seed")
	}
	if _, _, err := e.Query(g.N()); err == nil {
		t.Fatal("expected error for out-of-range seed")
	}
	if _, _, err := e.QueryVector(make([]float64, 3)); err == nil {
		t.Fatal("expected error for wrong-length query vector")
	}
}

func TestRWRScoresAreProbabilityLike(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randGraph(rng, 100)
	e := engineFor(t, g, VariantFull, 0.2)
	r, _, err := e.Query(7)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, v := range r {
		if v < -1e-12 {
			t.Fatalf("negative score r[%d] = %v", i, v)
		}
		sum += v
	}
	if sum <= 0 || sum > 1+1e-9 {
		t.Fatalf("score mass %v outside (0, 1]", sum)
	}
	if r[7] <= 0 {
		t.Fatal("seed's own score should be positive")
	}
}

func TestFigure2Ranking(t *testing.T) {
	g := gen.Figure2()
	e := engineFor(t, g, VariantFull, 0.3)
	r, _, err := e.Query(0) // u1
	if err != nil {
		t.Fatal(err)
	}
	// Qualitative shape from the paper's Figure 2: the seed u1 ranks first;
	// u8 (connected to u1 via both u4 and u5) outranks u6 and u7; u4 and u5
	// tie by symmetry, as do u6 and u7.
	if vec.ArgMax(r) != 0 {
		t.Fatalf("seed not top-ranked: %v", r)
	}
	if r[7] <= r[5] || r[7] <= r[6] {
		t.Fatalf("u8 (%v) should outrank u6 (%v)/u7 (%v)", r[7], r[5], r[6])
	}
	if math.Abs(r[3]-r[4]) > 1e-9 || math.Abs(r[5]-r[6]) > 1e-9 {
		t.Fatalf("symmetry broken: u4=%v u5=%v u6=%v u7=%v", r[3], r[4], r[5], r[6])
	}
}

func TestRankTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	top := RankTopK(scores, 3, 1) // exclude node 1
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].Node != 3 || top[1].Node != 2 || top[2].Node != 4 {
		t.Fatalf("order = %+v", top)
	}
	if got := RankTopK(scores, 0, -1); got != nil {
		t.Fatal("k=0 should return nil")
	}
	all := RankTopK(scores, 10, -1)
	if len(all) != 5 || all[0].Node != 1 || all[1].Node != 3 {
		t.Fatalf("ties should break on lower id: %+v", all)
	}
}

func TestTopK(t *testing.T) {
	g := gen.Figure2()
	e := engineFor(t, g, VariantFull, 0.3)
	top, err := e.TopK(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	for _, rk := range top {
		if rk.Node == 0 {
			t.Fatal("seed must be excluded")
		}
	}
	if top[0].Score < top[1].Score || top[1].Score < top[2].Score {
		t.Fatal("not sorted")
	}
}

func TestMemoryBudgetGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randGraph(rng, 200)
	_, err := Preprocess(g, Options{MemoryBudget: 64})
	if err == nil {
		t.Fatal("expected memory budget error")
	}
}

func TestDeadlineGuard(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 9))
	_, err := Preprocess(g, Options{Deadline: time.Nanosecond})
	if err == nil {
		t.Fatal("expected deadline error")
	}
}

func TestBuildHColumnDominance(t *testing.T) {
	// H must be strictly column diagonally dominant with margin ≥ c, the
	// property that justifies pivot-free factorizations (§3.6).
	rng := rand.New(rand.NewSource(8))
	g := randGraph(rng, 80)
	c := 0.05
	h := BuildH(g, nil, c)
	ht := h.Transpose() // rows of Hᵀ are columns of H
	colIdx := ht.ColIdx()
	vals := ht.Values()
	for j := 0; j < ht.Rows(); j++ {
		s, e := ht.RowRange(j)
		var diag, off float64
		for p := s; p < e; p++ {
			if colIdx[p] == j {
				diag += vals[p]
			} else {
				off += math.Abs(vals[p])
			}
		}
		if diag-off < c-1e-12 {
			t.Fatalf("column %d dominance margin %v < c", j, diag-off)
		}
	}
}

func TestProfileSchurAndChooseHubRatio(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 6, 11))
	p, err := ProfileSchur(g, 0.2, DefaultC)
	if err != nil {
		t.Fatal(err)
	}
	if p.SchurNNZ > p.H22NNZ+p.CrossNNZ {
		t.Fatalf("|S| = %d exceeds |H22| + |cross| = %d", p.SchurNNZ, p.H22NNZ+p.CrossNNZ)
	}
	if p.N1+p.N2+p.N3 != g.N() {
		t.Fatal("partition sizes wrong")
	}
	cands := []float64{0.1, 0.3}
	best, profiles, err := ChooseHubRatio(g, cands, DefaultC)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	found := false
	for _, k := range cands {
		if best == k {
			found = true
		}
	}
	if !found {
		t.Fatalf("best k %v not among candidates", best)
	}
	// The winner must have the smallest measured |S|.
	for _, p := range profiles {
		if p.K == best {
			for _, o := range profiles {
				if o.SchurNNZ < p.SchurNNZ {
					t.Fatal("ChooseHubRatio did not minimize |S|")
				}
			}
		}
	}
}

func TestAccuracyBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 4; trial++ {
		n := 30 + rng.Intn(50)
		g := randGraph(rng, n)
		tol := 1e-6
		e, err := Preprocess(g, Options{Variant: VariantFull, HubRatio: 0.2, Tol: tol})
		if err != nil {
			t.Fatal(err)
		}
		seed := rng.Intn(n)
		kappa, err := e.AccuracyBound(seed)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := e.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ExactDense(g, DefaultC, seed)
		if err != nil {
			t.Fatal(err)
		}
		errNorm := vec.Dist2(got, want)
		// The Theorem-4 bound with numerically estimated constants; allow a
		// 1.5× cushion for the σmin estimates.
		if errNorm > 1.5*kappa*tol {
			t.Fatalf("trial %d: error %v exceeds bound %v", trial, errNorm, kappa*tol)
		}
	}
}

func TestToleranceForTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randGraph(rng, 60)
	e := engineFor(t, g, VariantFull, 0.2)
	eps, err := e.ToleranceForTarget(5, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0 || eps > 1e-8 {
		t.Fatalf("calibrated ε = %v", eps)
	}
	if _, err := e.ToleranceForTarget(5, -1); err == nil {
		t.Fatal("expected error for non-positive target")
	}
}

func TestQueryWithCallbackConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randGraph(rng, 60)
	e := engineFor(t, g, VariantFull, 0.2)
	seed := 3
	want, err := ExactDense(g, DefaultC, seed)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr float64 = math.Inf(1)
	fired := 0
	got, _, err := e.QueryWithCallback(seed, func(iter int, r []float64) {
		fired++
		lastErr = vec.Dist2(r, want)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("callback never fired")
	}
	if lastErr > 1e-7 {
		t.Fatalf("last callback error %v", lastErr)
	}
	if d := vec.Dist2(got, want); d > 1e-7 {
		t.Fatalf("final distance %v", d)
	}
}

// Property: BePI agrees with the exact dense solution on arbitrary random
// graphs, seeds and variants.
func TestQuickBePIMatchesExact(t *testing.T) {
	f := func(s int64) bool {
		rng := rand.New(rand.NewSource(s))
		n := 10 + rng.Intn(40)
		g := randGraph(rng, n)
		seed := rng.Intn(n)
		variant := Variant(rng.Intn(3))
		k := 0.05 + 0.4*rng.Float64()
		e, err := Preprocess(g, Options{Variant: variant, HubRatio: k, Tol: 1e-11})
		if err != nil {
			return false
		}
		got, _, err := e.Query(seed)
		if err != nil {
			return false
		}
		want, err := ExactDense(g, DefaultC, seed)
		if err != nil {
			return false
		}
		return vec.Dist2(got, want) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPrepStatsPopulated(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 5, 13))
	e := engineFor(t, g, VariantFull, 0.2)
	st := e.PrepStats()
	if st.N != g.N() || st.M != g.M() {
		t.Fatal("graph sizes not recorded")
	}
	if st.N1+st.N2+st.N3 != g.N() {
		t.Fatal("partition sizes wrong")
	}
	if st.SchurNNZ != e.Schur().NNZ() {
		t.Fatal("schur nnz wrong")
	}
	if st.Total <= 0 {
		t.Fatal("total time not recorded")
	}
	if e.MemoryBytes() <= 0 {
		t.Fatal("memory accounting empty")
	}
	if !e.Preconditioned() {
		t.Fatal("full variant must be preconditioned")
	}
}
