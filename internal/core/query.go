package core

import (
	"fmt"
	"time"

	"bepi/internal/solver"
	"bepi/internal/vec"
)

// Query computes the RWR score vector for the given seed node
// (Algorithm 2/4). The returned vector is indexed by the original node ids.
func (e *Engine) Query(seed int) ([]float64, QueryStats, error) {
	if seed < 0 || seed >= e.n {
		return nil, QueryStats{}, fmt.Errorf("core: seed %d out of range [0,%d)", seed, e.n)
	}
	q := make([]float64, e.n)
	q[seed] = 1
	return e.QueryVector(q)
}

// QueryVector computes the personalized PageRank vector for an arbitrary
// starting distribution q (indexed by original node ids). RWR is the
// special case of a single-entry q; multi-seed q gives PPR, which the
// block-elimination machinery supports unchanged.
func (e *Engine) QueryVector(q []float64) ([]float64, QueryStats, error) {
	if len(q) != e.n {
		return nil, QueryStats{}, fmt.Errorf("core: query vector length %d want %d", len(q), e.n)
	}
	start := time.Now()
	n1, n2 := e.ord.N1, e.ord.N2
	l := n1 + n2
	c := e.opts.C

	// Permute q into the reordered space and split into q1, q2, q3.
	qp := make([]float64, e.n)
	for old, v := range q {
		if v != 0 {
			qp[e.ord.Perm[old]] = v
		}
	}
	q1 := qp[:n1]
	q2 := qp[n1:l]
	q3 := qp[l:]

	// q̃2 = c·q2 − H21·(H11⁻¹·(c·q1))   (Algorithm 4, line 3)
	t1 := make([]float64, n1)
	for i, v := range q1 {
		t1[i] = c * v
	}
	e.h11LU.Solve(t1)
	qt2 := make([]float64, n2)
	e.h21.MulVec(qt2, t1)
	for i := range qt2 {
		qt2[i] = c*q2[i] - qt2[i]
	}

	// Solve S·r2 = q̃2 with the (preconditioned) iterative solver (line 4).
	r2, stats, err := e.solveSchur(qt2, nil)
	if err != nil {
		return nil, QueryStats{Duration: time.Since(start), Iterations: stats.Iterations, Residual: stats.Residual},
			fmt.Errorf("core: solving Schur system: %w", err)
	}

	// r1 = H11⁻¹·(c·q1 − H12·r2)   (line 5)
	r1 := make([]float64, n1)
	e.h12.MulVec(r1, r2)
	for i := range r1 {
		r1[i] = c*q1[i] - r1[i]
	}
	e.h11LU.Solve(r1)

	// r3 = c·q3 − H31·r1 − H32·r2   (line 6)
	r3 := make([]float64, e.n-l)
	e.h31.MulVec(r3, r1)
	tmp := make([]float64, e.n-l)
	e.h32.MulVec(tmp, r2)
	for i := range r3 {
		r3[i] = c*q3[i] - r3[i] - tmp[i]
	}

	// Concatenate and un-permute back to original ids (line 7).
	r := make([]float64, e.n)
	for old := 0; old < e.n; old++ {
		nw := e.ord.Perm[old]
		switch {
		case nw < n1:
			r[old] = r1[nw]
		case nw < l:
			r[old] = r2[nw-n1]
		default:
			r[old] = r3[nw-l]
		}
	}
	return r, QueryStats{
		Duration:   time.Since(start),
		Iterations: stats.Iterations,
		Residual:   stats.Residual,
	}, nil
}

// solveSchur runs the configured iterative solver on S·r2 = q̃2.
func (e *Engine) solveSchur(qt2 []float64, cb func(int, []float64)) ([]float64, solver.Stats, error) {
	opts := solver.GMRESOptions{
		Tol:      e.opts.Tol,
		MaxIter:  e.opts.MaxIter,
		Restart:  e.opts.GMRESRestart,
		Callback: cb,
	}
	if e.ilu != nil {
		opts.Precond = e.ilu
	}
	if e.opts.Solver == SolverBiCGSTAB {
		return solver.BiCGSTAB(e.schur, qt2, opts)
	}
	return solver.GMRES(e.schur, qt2, opts)
}

// QueryWithCallback runs a query invoking cb with the fully assembled RWR
// vector (original ids) after every GMRES iteration on the Schur system.
// It exists for the Appendix-I accuracy-vs-iterations experiment; regular
// callers should use Query.
func (e *Engine) QueryWithCallback(seed int, cb func(iter int, r []float64)) ([]float64, QueryStats, error) {
	if seed < 0 || seed >= e.n {
		return nil, QueryStats{}, fmt.Errorf("core: seed %d out of range [0,%d)", seed, e.n)
	}
	n1, n2 := e.ord.N1, e.ord.N2
	l := n1 + n2
	c := e.opts.C
	qp := make([]float64, e.n)
	qp[e.ord.Perm[seed]] = 1
	q1 := qp[:n1]
	q2 := qp[n1:l]
	q3 := qp[l:]

	t1 := make([]float64, n1)
	for i, v := range q1 {
		t1[i] = c * v
	}
	e.h11LU.Solve(t1)
	qt2 := make([]float64, n2)
	e.h21.MulVec(qt2, t1)
	for i := range qt2 {
		qt2[i] = c*q2[i] - qt2[i]
	}

	assemble := func(r2 []float64) []float64 {
		r1 := make([]float64, n1)
		e.h12.MulVec(r1, r2)
		for i := range r1 {
			r1[i] = c*q1[i] - r1[i]
		}
		e.h11LU.Solve(r1)
		r3 := make([]float64, e.n-l)
		e.h31.MulVec(r3, r1)
		tmp := make([]float64, e.n-l)
		e.h32.MulVec(tmp, r2)
		for i := range r3 {
			r3[i] = c*q3[i] - r3[i] - tmp[i]
		}
		r := make([]float64, e.n)
		for old := 0; old < e.n; old++ {
			nw := e.ord.Perm[old]
			switch {
			case nw < n1:
				r[old] = r1[nw]
			case nw < l:
				r[old] = r2[nw-n1]
			default:
				r[old] = r3[nw-l]
			}
		}
		return r
	}

	start := time.Now()
	var solveCB func(int, []float64)
	if cb != nil {
		solveCB = func(iter int, r2 []float64) { cb(iter, assemble(r2)) }
	}
	r2, stats, err := e.solveSchur(qt2, solveCB)
	if err != nil {
		return nil, QueryStats{Duration: time.Since(start)}, fmt.Errorf("core: solving Schur system: %w", err)
	}
	r := assemble(r2)
	if vec.Norm2(r) == 0 && vec.Norm2(qp) != 0 && e.n > 0 {
		// Defensive: a zero result for a nonzero query indicates a bug.
		return nil, QueryStats{}, fmt.Errorf("core: zero RWR vector for nonzero query")
	}
	return r, QueryStats{Duration: time.Since(start), Iterations: stats.Iterations, Residual: stats.Residual}, nil
}

// TopK returns the k highest-scoring nodes for the seed, excluding the seed
// itself, as (node, score) pairs in descending score order.
func (e *Engine) TopK(seed, k int) ([]Ranked, error) {
	r, _, err := e.Query(seed)
	if err != nil {
		return nil, err
	}
	return RankTopK(r, k, seed), nil
}

// Ranked is a node with its RWR score.
type Ranked struct {
	Node  int
	Score float64
}

// RankTopK returns the k nodes with the highest scores, excluding `exclude`
// (pass a negative value to exclude nothing). Ties break on lower node id.
func RankTopK(scores []float64, k int, exclude int) []Ranked {
	if k <= 0 {
		return nil
	}
	// Simple selection: maintain a sorted slice of ≤ k entries (k is small
	// in practice; avoids pulling in container/heap for clarity).
	out := make([]Ranked, 0, k+1)
	for node, s := range scores {
		if node == exclude {
			continue
		}
		pos := len(out)
		for pos > 0 && (out[pos-1].Score < s || (out[pos-1].Score == s && out[pos-1].Node > node)) {
			pos--
		}
		if pos >= k {
			continue
		}
		out = append(out, Ranked{})
		copy(out[pos+1:], out[pos:])
		out[pos] = Ranked{Node: node, Score: s}
		if len(out) > k {
			out = out[:k]
		}
	}
	return out
}
