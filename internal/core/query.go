package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"bepi/internal/solver"
	"bepi/internal/vec"
)

// Query computes the RWR score vector for the given seed node
// (Algorithm 2/4). The returned vector is indexed by the original node ids.
func (e *Engine) Query(seed int) ([]float64, QueryStats, error) {
	if seed < 0 || seed >= e.n {
		return nil, QueryStats{}, fmt.Errorf("core: seed %d out of range [0,%d)", seed, e.n)
	}
	q := make([]float64, e.n)
	q[seed] = 1
	return e.QueryVector(q)
}

// QueryVector computes the personalized PageRank vector for an arbitrary
// starting distribution q (indexed by original node ids). RWR is the
// special case of a single-entry q; multi-seed q gives PPR, which the
// block-elimination machinery supports unchanged. It is the batch-of-one
// case of QueryVectorBatch.
func (e *Engine) QueryVector(q []float64) ([]float64, QueryStats, error) {
	return e.QueryVectorWS(context.Background(), q, nil)
}

// solveSchur runs the configured iterative solver on S·r2 = q̃2.
func (e *Engine) solveSchur(qt2 []float64, cb func(int, []float64)) ([]float64, solver.Stats, error) {
	return e.solveSchurCtx(context.Background(), qt2, e.schurOperator(nil), nil, cb)
}

// solveSchurCtx is solveSchur with a cancellation context threaded into the
// iterative solver, an explicit Schur operator (see Engine.schurOperator),
// and an optional reusable Krylov workspace. With a workspace, the returned
// solution points into it and is only valid until the next solve on that
// workspace.
func (e *Engine) solveSchurCtx(ctx context.Context, qt2 []float64, op solver.Operator, ws *solver.Workspace, cb func(int, []float64)) ([]float64, solver.Stats, error) {
	op, opts := e.schurSolveOptions(ctx, op, ws)
	opts.Callback = cb
	return e.runSchurSolve(op, qt2, opts)
}

// schurSolveOptions builds the solver options every Schur solve shares —
// tolerance, iteration budget, preconditioner, telemetry hooks — and wraps
// the operator/preconditioner with the kernel-timing shims when installed.
// Callers add their per-solve hooks (Callback, Probe, StopWhen) on top.
func (e *Engine) schurSolveOptions(ctx context.Context, op solver.Operator, ws *solver.Workspace) (solver.Operator, solver.GMRESOptions) {
	opts := solver.GMRESOptions{
		Tol:         e.opts.Tol,
		MaxIter:     e.opts.MaxIter,
		Restart:     e.opts.GMRESRestart,
		OnIteration: e.iterHook,
		Ctx:         ctx,
		Work:        ws,
	}
	if e.ilu != nil {
		opts.Precond = e.ilu
	}
	if hook := e.kernelHook; hook != nil {
		op = &timedOperator{op: op, hook: hook, kernel: KernelSchur, bytes: e.schurApplyBytes()}
		if opts.Precond != nil {
			opts.Precond = &timedPrecond{pre: opts.Precond, hook: hook, kernel: KernelPrecond,
				bytes: e.ilu.MemoryBytes() + int64(16*e.ord.N2)}
		}
	}
	return op, opts
}

// runSchurSolve dispatches the configured iterative method. On engines
// carrying a Woodbury correction (hub deltas absorbed over the explicit
// operator) the iteration runs against the stored base S̃ and the low-rank
// correction maps the result to the updated graph's solution; every Schur
// solve in the engine — queries, top-k, bound calibration — funnels through
// here, so all of them see the corrected system consistently.
func (e *Engine) runSchurSolve(op solver.Operator, qt2 []float64, opts solver.GMRESOptions) ([]float64, solver.Stats, error) {
	var (
		t2    []float64
		stats solver.Stats
		err   error
	)
	if e.opts.Solver == SolverBiCGSTAB {
		t2, stats, err = solver.BiCGSTAB(op, qt2, opts)
	} else {
		t2, stats, err = solver.GMRES(op, qt2, opts)
	}
	if err == nil && e.wood != nil {
		e.wood.correct(t2)
	}
	return t2, stats, err
}

// QueryWithCallback runs a query invoking cb with the fully assembled RWR
// vector (original ids) after every GMRES iteration on the Schur system.
// It exists for the Appendix-I accuracy-vs-iterations experiment; regular
// callers should use Query.
func (e *Engine) QueryWithCallback(seed int, cb func(iter int, r []float64)) ([]float64, QueryStats, error) {
	if seed < 0 || seed >= e.n {
		return nil, QueryStats{}, fmt.Errorf("core: seed %d out of range [0,%d)", seed, e.n)
	}
	n1, n2 := e.ord.N1, e.ord.N2
	l := n1 + n2
	c := e.opts.C
	qp := make([]float64, e.n)
	qp[e.ord.Perm[seed]] = 1
	q1 := qp[:n1]
	q2 := qp[n1:l]
	q3 := qp[l:]

	t1 := make([]float64, n1)
	for i, v := range q1 {
		t1[i] = c * v
	}
	e.h11LU.SolvePool(t1, e.pool)
	qt2 := make([]float64, n2)
	e.h21.MulVec(qt2, t1)
	for i := range qt2 {
		qt2[i] = c*q2[i] - qt2[i]
	}

	assemble := func(r2 []float64) []float64 {
		r1 := make([]float64, n1)
		e.h12.MulVec(r1, r2)
		for i := range r1 {
			r1[i] = c*q1[i] - r1[i]
		}
		e.h11LU.SolvePool(r1, e.pool)
		r3 := make([]float64, e.n-l)
		e.h31.MulVec(r3, r1)
		tmp := make([]float64, e.n-l)
		e.h32.MulVec(tmp, r2)
		for i := range r3 {
			r3[i] = c*q3[i] - r3[i] - tmp[i]
		}
		r := make([]float64, e.n)
		for old := 0; old < e.n; old++ {
			nw := e.ord.Perm[old]
			switch {
			case nw < n1:
				r[old] = r1[nw]
			case nw < l:
				r[old] = r2[nw-n1]
			default:
				r[old] = r3[nw-l]
			}
		}
		return r
	}

	start := time.Now()
	var solveCB func(int, []float64)
	if cb != nil {
		solveCB = func(iter int, r2 []float64) { cb(iter, assemble(r2)) }
	}
	r2, stats, err := e.solveSchur(qt2, solveCB)
	if err != nil {
		return nil, QueryStats{Duration: time.Since(start)}, fmt.Errorf("core: solving Schur system: %w", err)
	}
	r := assemble(r2)
	if vec.Norm2(r) == 0 && vec.Norm2(qp) != 0 && e.n > 0 {
		// Defensive: a zero result for a nonzero query indicates a bug.
		return nil, QueryStats{}, fmt.Errorf("core: zero RWR vector for nonzero query")
	}
	return r, QueryStats{Duration: time.Since(start), Iterations: stats.Iterations, Residual: stats.Residual}, nil
}

// TopK returns the k highest-scoring nodes for the seed, excluding the seed
// itself, as (node, score) pairs in descending score order.
func (e *Engine) TopK(seed, k int) ([]Ranked, error) {
	r, _, err := e.Query(seed)
	if err != nil {
		return nil, err
	}
	return RankTopK(r, k, seed), nil
}

// Ranked is a node with its RWR score.
type Ranked struct {
	Node  int
	Score float64
}

// RankTopK returns the k nodes with the highest scores, excluding `exclude`
// (pass a negative value to exclude nothing). Ties break on lower node id.
func RankTopK(scores []float64, k int, exclude int) []Ranked {
	return RankTopKFunc(scores, k, func(node int) bool { return node == exclude })
}

// Outranks reports whether a ranks strictly above b: higher score wins,
// ties break on lower node id. It is the total order every ranking in the
// system uses — Engine.TopK, the bounded top-k search, and the cluster
// tier's merge — so equal-score ties resolve identically on every replica
// and merged rankings are independent of arrival order.
func (a Ranked) Outranks(b Ranked) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Node < b.Node
}

// outranks is the free-function spelling the heap code below uses.
func outranks(a, b Ranked) bool { return a.Outranks(b) }

// RankTopKFunc returns the k highest-scoring nodes among those not skipped,
// in descending order (ties break on lower node id). It maintains a bounded
// min-heap of k candidates — O(n·log k) instead of the O(n·k)
// insertion-sort it replaces — and is shared by Engine.TopK and the HTTP
// handlers' multi-seed rankings. skip may be nil.
func RankTopKFunc(scores []float64, k int, skip func(node int) bool) []Ranked {
	if k <= 0 {
		return nil
	}
	// h is a min-heap on the outranks order: h[0] is the weakest candidate
	// kept so far, the first to be displaced by a better node.
	h := make([]Ranked, 0, k)
	for node, s := range scores {
		if skip != nil && skip(node) {
			continue
		}
		e := Ranked{Node: node, Score: s}
		if len(h) < k {
			h = append(h, e)
			// Sift up.
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if !outranks(h[p], h[i]) {
					break
				}
				h[p], h[i] = h[i], h[p]
				i = p
			}
			continue
		}
		if !outranks(e, h[0]) {
			continue
		}
		// Replace the weakest and sift down.
		h[0] = e
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			worst := i
			if l < len(h) && outranks(h[worst], h[l]) {
				worst = l
			}
			if r < len(h) && outranks(h[worst], h[r]) {
				worst = r
			}
			if worst == i {
				break
			}
			h[i], h[worst] = h[worst], h[i]
			i = worst
		}
	}
	sort.Slice(h, func(i, j int) bool { return outranks(h[i], h[j]) })
	return h
}
