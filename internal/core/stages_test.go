package core

import (
	"testing"
	"time"

	"bepi/internal/gen"
)

// TestQueryStageTimings checks that QueryVectorBatch fills the per-phase
// breakdown: every phase is measured, Solve is per-query, and the phases
// fit inside the total duration.
func TestQueryStageTimings(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 1))
	e, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([][]float64, 3)
	for k := range qs {
		q := make([]float64, e.N())
		q[k*3+1] = 1
		qs[k] = q
	}
	_, stats, errs := e.QueryVectorBatch(nil, qs, nil)
	for k, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", k, err)
		}
		st := stats[k].Stages
		if st.Solve <= 0 {
			t.Errorf("query %d: Solve stage not timed: %+v", k, st)
		}
		if st.Permute < 0 || st.Forward <= 0 || st.Back <= 0 {
			t.Errorf("query %d: phases not timed: %+v", k, st)
		}
		sum := st.Permute + st.Forward + st.Solve + st.Back
		if sum > stats[k].Duration+time.Millisecond {
			t.Errorf("query %d: stages %v exceed total %v", k, sum, stats[k].Duration)
		}
	}
	// Shared phases must be identical across the batch (one traversal
	// serves every query); Solve is per query.
	if stats[0].Stages.Forward != stats[1].Stages.Forward ||
		stats[0].Stages.Back != stats[2].Stages.Back {
		t.Error("shared phases must report the batch's phase time")
	}
}

// TestSetIterHook checks that the engine threads the solver's cheap
// per-iteration hook through the Schur solve.
func TestSetIterHook(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 8, 2))
	e, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	var last float64
	e.SetIterHook(func(iter int, residual float64) {
		calls++
		last = residual
	})
	_, stats, err := e.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	if calls != stats.Iterations {
		t.Fatalf("hook fired %d times, stats report %d iterations", calls, stats.Iterations)
	}
	if last != stats.Residual {
		t.Fatalf("hook residual %g, stats %g", last, stats.Residual)
	}
	// Removing the hook stops the calls.
	e.SetIterHook(nil)
	calls = 0
	if _, _, err := e.Query(4); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("hook fired after removal")
	}
}
