package core

import (
	"bytes"
	"testing"

	"bepi/internal/gen"
)

// FuzzReadEngine checks the index deserializer never panics on corrupt
// bytes and that any engine it accepts can answer a query.
func FuzzReadEngine(f *testing.F) {
	g := gen.RMAT(gen.DefaultRMAT(6, 4, 3))
	e, err := Preprocess(g, Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	f.Add([]byte{})
	corrupted := append([]byte(nil), valid...)
	corrupted[30] ^= 0x7F
	f.Add(corrupted)
	corrupted2 := append([]byte(nil), valid...)
	corrupted2[len(corrupted2)-9] ^= 0x7F
	f.Add(corrupted2)

	f.Fuzz(func(t *testing.T, data []byte) {
		eng, err := ReadEngine(bytes.NewReader(data))
		if err != nil {
			return
		}
		if eng.N() < 0 {
			t.Fatal("negative n accepted")
		}
		if eng.N() == 0 {
			return
		}
		// An accepted engine must at least answer without panicking;
		// numeric garbage values may legitimately fail to converge.
		_, _, _ = eng.Query(0)
	})
}
