package core

import (
	"math"
	"math/rand"
	"testing"

	"bepi/internal/gen"
)

// TestStickyPinnedEngineBitIdentical: an engine on a dedicated pool gets
// sticky workers and first-touched matrices, optionally pinned to OS
// threads — placement machinery that must leave every query answer
// bit-identical to the serial engine.
func TestStickyPinnedEngineBitIdentical(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 15))
	serial, err := Preprocess(g, Options{Variant: VariantFull, Tol: 1e-10, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := Preprocess(g, Options{Variant: VariantFull, Tol: 1e-10, Parallelism: 4, PinWorkers: true})
	if err != nil {
		t.Fatal(err)
	}
	if p := pinned.Pool(); !p.Sticky() || !p.Pinned() {
		t.Fatalf("Parallelism=4 PinWorkers=true: Sticky()=%v Pinned()=%v", p.Sticky(), p.Pinned())
	}
	rng := rand.New(rand.NewSource(17))
	for q := 0; q < 5; q++ {
		seed := rng.Intn(g.N())
		want, _, err := serial.Query(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, _, err := pinned.Query(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("seed %d: r[%d] = %v pinned vs %v serial", seed, i, got[i], want[i])
			}
		}
	}

	// Toggling the preference rebuilds the dedicated pool in place.
	pinned.SetPinWorkers(false)
	if p := pinned.Pool(); !p.Sticky() || p.Pinned() {
		t.Fatalf("after SetPinWorkers(false): Sticky()=%v Pinned()=%v", p.Sticky(), p.Pinned())
	}
	seed := rng.Intn(g.N())
	want, _, err := serial.Query(seed)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := pinned.Query(seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("after toggle: r[%d] = %v vs %v", i, got[i], want[i])
		}
	}
}
