package core

import (
	"testing"
	"time"

	"bepi/internal/gen"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.C != DefaultC || o.Tol != DefaultTol {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Variant != VariantFull {
		t.Fatalf("zero-value variant must be full BePI, got %v", o.Variant)
	}
	if o.HubRatio != 0.2 {
		t.Fatalf("full-variant hub ratio default %v", o.HubRatio)
	}
	if o.MaxIter != 1000 {
		t.Fatalf("MaxIter default %d", o.MaxIter)
	}

	b := Options{Variant: VariantB}.withDefaults()
	if b.HubRatio != 0.001 {
		t.Fatalf("BePI-B hub ratio default %v", b.HubRatio)
	}

	// Out-of-range values are replaced, explicit valid values kept.
	c := Options{C: 1.5, Tol: -1, HubRatio: 0.33, MaxIter: 7}.withDefaults()
	if c.C != DefaultC || c.Tol != DefaultTol || c.HubRatio != 0.33 || c.MaxIter != 7 {
		t.Fatalf("mixed defaults: %+v", c)
	}
}

func TestVariantString(t *testing.T) {
	cases := map[Variant]string{
		VariantFull: "BePI",
		VariantB:    "BePI-B",
		VariantS:    "BePI-S",
		Variant(99): "Variant(99)",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d.String() = %q want %q", int(v), v.String(), want)
		}
	}
}

func TestSchurSolverString(t *testing.T) {
	if SolverGMRES.String() != "GMRES" || SolverBiCGSTAB.String() != "BiCGSTAB" {
		t.Fatal("solver names wrong")
	}
}

func TestDeadlineHelper(t *testing.T) {
	// A generous deadline must not trigger.
	g := gen.Figure2()
	if _, err := Preprocess(g, Options{Deadline: time.Hour}); err != nil {
		t.Fatalf("hour deadline should pass: %v", err)
	}
}
