package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"bepi/internal/gen"
	"bepi/internal/lu"
	"bepi/internal/par"
	"bepi/internal/reorder"
	"bepi/internal/sparse"
)

// parBench holds the shared fixture for the parallel-kernel benchmarks: an
// R-MAT graph at the acceptance scale (~1e6 edges) carved into BePI's
// blocks. Built once, on first benchmark use only.
var parBench struct {
	once               sync.Once
	ord                *reorder.Ordering
	h11, h12, h21, h22 *sparse.CSR
	h12T, h21T         *sparse.CSR
	f                  *lu.BlockLU
}

func parBenchSetup(b *testing.B) {
	parBench.once.Do(func() {
		g := gen.RMAT(gen.DefaultRMAT(16, 16, 1)) // 65_536 nodes, ~1M edges
		ord := reorder.HubAndSpoke(g, 0.2)
		h := BuildH(g, ord.Perm, DefaultC)
		n1, l := ord.N1, ord.N1+ord.N2
		parBench.ord = ord
		parBench.h11 = h.Block(0, n1, 0, n1)
		parBench.h12 = h.Block(0, n1, n1, l)
		parBench.h21 = h.Block(n1, l, 0, n1)
		parBench.h22 = h.Block(n1, l, n1, l)
		parBench.h12T = parBench.h12.Transpose()
		parBench.h21T = parBench.h21.Transpose()
		f, err := lu.FactorBlockDiag(parBench.h11, ord.Blocks)
		if err != nil {
			panic(err)
		}
		parBench.f = f
	})
	if parBench.f == nil {
		b.Fatal("benchmark fixture failed to build")
	}
}

// benchWorkerCounts returns the ladder the acceptance criterion speaks of:
// serial, 2, 4, and every core. Duplicates (e.g. on a 4-core machine) are
// dropped.
func benchWorkerCounts() []int {
	counts := []int{1, 2, 4, runtime.NumCPU()}
	var out []int
	for _, c := range counts {
		dup := false
		for _, seen := range out {
			dup = dup || seen == c
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// runAtWidth pins GOMAXPROCS to the worker count for the sub-benchmark so
// "workers=1" really measures the serial machine, then restores it.
func runAtWidth(b *testing.B, fn func(b *testing.B, pool *par.Pool)) {
	for _, w := range benchWorkerCounts() {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(w)
			defer runtime.GOMAXPROCS(prev)
			var pool *par.Pool
			if w > 1 {
				pool = par.NewPool(w)
			}
			fn(b, pool)
		})
	}
}

// BenchmarkSchurComplement measures the column-partitioned Schur build
// S = H22 − H21·H11⁻¹·H12 on the ~1M-edge fixture.
func BenchmarkSchurComplement(b *testing.B) {
	parBenchSetup(b)
	runAtWidth(b, func(b *testing.B, pool *par.Pool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := SchurComplementT(parBench.h22, parBench.h21T, parBench.h12T, parBench.f, pool)
			if s.NNZ() == 0 {
				b.Fatal("empty Schur complement")
			}
		}
	})
}

// oldMulVec is the pre-fusion SpMV frozen for baseline comparison: wide
// CSR arrays walked by the original single-accumulator per-row loop.
func oldMulVec(m *sparse.CSR, dst, x []float64) {
	rowPtr, col, val := m.RowPtr(), m.ColIdx(), m.Values()
	for i := 0; i < m.Rows(); i++ {
		var s float64
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			s += val[p] * x[col[p]]
		}
		dst[i] = s
	}
}

// BenchmarkSchurOperator measures one application of the implicit Schur
// operator S·x = H22·x − H21·(H11⁻¹·(H12·x)) on the ~1M-edge fixture. The
// "baseline" case is the unfused formulation this operator replaces,
// frozen above as oldMulVec: wide CSR matrices, the single-accumulator
// row loop, temporaries allocated per application, and a separate
// full-vector subtraction pass. The "fused" cases run SchurOperator (one
// workspace-owned temporary, multi-lane kernels, AddMulVec epilogue) at
// increasing worker counts, with compact=true additionally narrowing the
// matrices to the CSR32 layout. Compare baseline against
// fused/compact=true/workers=N for the kernel win.
func BenchmarkSchurOperator(b *testing.B) {
	parBenchSetup(b)
	n1, n2 := parBench.ord.N1, parBench.ord.N2
	x := make([]float64, n2)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	dst := make([]float64, n2)
	applyBytes := func(h12, h21, h22 mat) int64 {
		return h12.MemoryBytes() + h21.MemoryBytes() + h22.MemoryBytes() +
			parBench.f.MemoryBytes() + int64(16*(n1+n2))
	}

	b.Run("baseline", func(b *testing.B) {
		b.SetBytes(applyBytes(parBench.h12, parBench.h21, parBench.h22))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := make([]float64, n1)
			oldMulVec(parBench.h12, t, x)
			parBench.f.Solve(t)
			u := make([]float64, n2)
			oldMulVec(parBench.h21, u, t)
			oldMulVec(parBench.h22, dst, x)
			for j := range dst {
				dst[j] -= u[j]
			}
		}
	})

	for _, compact := range []bool{false, true} {
		for _, w := range benchWorkerCounts() {
			w, compact := w, compact
			b.Run(fmt.Sprintf("fused/compact=%v/workers=%d", compact, w), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(w)
				defer runtime.GOMAXPROCS(prev)
				var pool *par.Pool
				if w > 1 {
					pool = par.NewPool(w)
				}
				e := &Engine{n: parBench.h11.Rows() + n2, ord: parBench.ord,
					h11LU: parBench.f, pool: pool}
				if compact {
					e.h12 = sparse.Compact(parBench.h12)
					e.h21 = sparse.Compact(parBench.h21)
					e.h22 = sparse.Compact(parBench.h22)
				} else {
					e.h12 = parBench.h12.Clone()
					e.h21 = parBench.h21.Clone()
					e.h22 = parBench.h22.Clone()
				}
				for _, m := range []mat{e.h12, e.h21, e.h22} {
					matSetPool(m, pool)
				}
				op := e.newSchurOperator()
				b.SetBytes(applyBytes(e.h12, e.h21, e.h22))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op.MulVec(dst, x)
				}
			})
		}
	}
}

// BenchmarkFactorBlockDiag measures the per-block dense LU of H11 with the
// independent blocks factored across the pool.
func BenchmarkFactorBlockDiag(b *testing.B) {
	parBenchSetup(b)
	runAtWidth(b, func(b *testing.B, pool *par.Pool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lu.FactorBlockDiagPool(parBench.h11, parBench.ord.Blocks, pool); err != nil {
				b.Fatal(err)
			}
		}
	})
}
