package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"bepi/internal/gen"
	"bepi/internal/lu"
	"bepi/internal/par"
	"bepi/internal/reorder"
	"bepi/internal/sparse"
)

// parBench holds the shared fixture for the parallel-kernel benchmarks: an
// R-MAT graph at the acceptance scale (~1e6 edges) carved into BePI's
// blocks. Built once, on first benchmark use only.
var parBench struct {
	once               sync.Once
	ord                *reorder.Ordering
	h11, h12, h21, h22 *sparse.CSR
	h12T, h21T         *sparse.CSR
	f                  *lu.BlockLU
}

func parBenchSetup(b *testing.B) {
	parBench.once.Do(func() {
		g := gen.RMAT(gen.DefaultRMAT(16, 16, 1)) // 65_536 nodes, ~1M edges
		ord := reorder.HubAndSpoke(g, 0.2)
		h := BuildH(g, ord.Perm, DefaultC)
		n1, l := ord.N1, ord.N1+ord.N2
		parBench.ord = ord
		parBench.h11 = h.Block(0, n1, 0, n1)
		parBench.h12 = h.Block(0, n1, n1, l)
		parBench.h21 = h.Block(n1, l, 0, n1)
		parBench.h22 = h.Block(n1, l, n1, l)
		parBench.h12T = parBench.h12.Transpose()
		parBench.h21T = parBench.h21.Transpose()
		f, err := lu.FactorBlockDiag(parBench.h11, ord.Blocks)
		if err != nil {
			panic(err)
		}
		parBench.f = f
	})
	if parBench.f == nil {
		b.Fatal("benchmark fixture failed to build")
	}
}

// benchWorkerCounts returns the ladder the acceptance criterion speaks of:
// serial, 2, 4, and every core. Duplicates (e.g. on a 4-core machine) are
// dropped.
func benchWorkerCounts() []int {
	counts := []int{1, 2, 4, runtime.NumCPU()}
	var out []int
	for _, c := range counts {
		dup := false
		for _, seen := range out {
			dup = dup || seen == c
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// runAtWidth pins GOMAXPROCS to the worker count for the sub-benchmark so
// "workers=1" really measures the serial machine, then restores it.
func runAtWidth(b *testing.B, fn func(b *testing.B, pool *par.Pool)) {
	for _, w := range benchWorkerCounts() {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(w)
			defer runtime.GOMAXPROCS(prev)
			var pool *par.Pool
			if w > 1 {
				pool = par.NewPool(w)
			}
			fn(b, pool)
		})
	}
}

// BenchmarkSchurComplement measures the column-partitioned Schur build
// S = H22 − H21·H11⁻¹·H12 on the ~1M-edge fixture.
func BenchmarkSchurComplement(b *testing.B) {
	parBenchSetup(b)
	runAtWidth(b, func(b *testing.B, pool *par.Pool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := SchurComplementT(parBench.h22, parBench.h21T, parBench.h12T, parBench.f, pool)
			if s.NNZ() == 0 {
				b.Fatal("empty Schur complement")
			}
		}
	})
}

// BenchmarkFactorBlockDiag measures the per-block dense LU of H11 with the
// independent blocks factored across the pool.
func BenchmarkFactorBlockDiag(b *testing.B) {
	parBenchSetup(b)
	runAtWidth(b, func(b *testing.B, pool *par.Pool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lu.FactorBlockDiagPool(parBench.h11, parBench.ord.Blocks, pool); err != nil {
				b.Fatal(err)
			}
		}
	})
}
