package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"bepi/internal/dense"
	"bepi/internal/graph"
	"bepi/internal/lu"
	"bepi/internal/reorder"
	"bepi/internal/solver"
	"bepi/internal/sparse"
)

// Incremental rebuilds. ApplyDelta turns an engine plus a small batch of
// edge updates into a new engine for the updated graph without re-running
// SlashBurn or the full factorization pipeline, exploiting the block
// structure the paper's reordering creates:
//
//   - An edge update with a spoke source u rescales column perm[u] of H,
//     which lives entirely inside u's H11 diagonal block plus the H21/H31
//     columns below it. Only that block's LU factors and the Schur columns
//     fed by the block change; everything else is reused byte-for-byte. The
//     changed Schur columns are recomputed with the exact per-column
//     algorithm SchurComplementT runs, so the patched engine is
//     bit-identical to PreprocessWithOrdering on the updated graph.
//   - An edge update with a hub source u rescales column perm[u]−n1 of
//     H12/H22/H32, perturbing exactly one column of S per hub source: a
//     rank-r update S' = S̃ + U·Vᵀ. Engines serving the explicit operator
//     absorb it with a Sherman–Morrison–Woodbury correction applied after
//     every Schur solve (stored S̃ and its ILU stay the base); engines built
//     with ImplicitSchur patch H12/H22/H32 directly — the fused operator is
//     then exact and only the ILU preconditioner goes stale. Either way a
//     drift score accumulates and, past Options.MaxHubDrift, ApplyDelta
//     refuses with ErrDriftExceeded so the caller runs a full rebuild.
//   - Anything that breaks the reused ordering's structure — a new node
//     with out-edges, a deadend gaining its first out-edge, a spoke edge
//     crossing H11 blocks — is refused with ErrDeltaFull.
//
// Pure node growth appends the new (necessarily deadend) nodes to the
// ordering's tail and pads H31/H32 with empty rows.

// EdgeDelta is one buffered graph update: insert or delete the edge
// Src → Dst.
type EdgeDelta struct {
	Src, Dst int
	Insert   bool
}

// DeltaClass summarizes how ApplyDelta absorbed (or refused) a delta.
type DeltaClass int

const (
	// DeltaSpoke: every op had a spoke source (or the delta was pure node
	// growth); the rebuild is exact — bit-identical to a full preprocess
	// under the reused ordering.
	DeltaSpoke DeltaClass = iota
	// DeltaHub: at least one op had a hub source; the Schur solve carries a
	// Woodbury correction (explicit operator) or a stale ILU (implicit).
	DeltaHub
	// DeltaFull: the delta cannot reuse the ordering; callers must run a
	// full rebuild.
	DeltaFull
)

// String names the class the way RebuildStatus.Mode reports it.
func (c DeltaClass) String() string {
	switch c {
	case DeltaSpoke:
		return "delta-spoke"
	case DeltaHub:
		return "delta-hub"
	default:
		return "full"
	}
}

// Errors ApplyDelta refuses with; both mean "run a full rebuild instead".
var (
	ErrDeltaFull     = errors.New("core: delta requires a full rebuild")
	ErrDriftExceeded = errors.New("core: accumulated hub drift exceeds MaxHubDrift")
)

// DeltaStats describes one ApplyDelta application.
type DeltaStats struct {
	Class           DeltaClass
	Ops             int
	NewNodes        int
	TouchedBlocks   int // H11 diagonal blocks re-factored
	AffectedColumns int // Schur columns recomputed
	Rank            int // columns carrying a Woodbury correction (explicit hub path)
	Drift           float64
	Duration        time.Duration
}

// colEntry is one stored entry of a matrix column, in ascending-row order
// within a column slice.
type colEntry struct {
	row int
	val float64
}

// woodbury is the rank-r correction a hub delta installs over the explicit
// Schur operator: solves run against the base S̃ (stored schur + ILU), then
// y ← y − Z·C⁻¹·y[J] maps the base solution to the updated graph's, where
// Z = S̃⁻¹U and C = I + VᵀZ is the LU-factored capacitance. All state is
// read-only after construction, so concurrent solves share it safely.
type woodbury struct {
	cols   []int              // J: corrected S columns, ascending
	z      [][]float64        // z[b] = S̃⁻¹·Δcol(cols[b]), length n2 each
	capLU  *dense.Matrix      // LU factors of C
	deltas map[int][]colEntry // Δ per corrected column vs base S̃
}

// correct applies the Woodbury update in place on a base-system solution.
func (w *woodbury) correct(y []float64) {
	r := len(w.cols)
	s := make([]float64, r)
	for a, j := range w.cols {
		s[a] = y[j]
	}
	w.capLU.LUSolve(s)
	for b, zb := range w.z {
		sb := s[b]
		if sb == 0 {
			continue
		}
		for i, zv := range zb {
			y[i] -= zv * sb
		}
	}
}

// Corrected reports whether the engine carries a Woodbury correction, i.e.
// its stored Schur complement is the base of a low-rank update rather than
// the updated graph's S. Corrected engines cannot be serialized and do not
// serve the bounded top-k certificate.
func (e *Engine) Corrected() bool { return e.wood != nil }

// Drift returns the accumulated hub-delta drift score
// ‖S_now − S̃_base‖F / ‖S̃_base‖F (an upper bound, for implicit engines,
// where per-delta column perturbations accumulate by triangle inequality).
// Zero on engines whose factors are exact for the graph they serve.
func (e *Engine) Drift() float64 {
	if e.driftBase == 0 || len(e.driftCols) == 0 {
		return 0
	}
	var s float64
	for _, d := range e.driftCols {
		s += d * d
	}
	return math.Sqrt(s) / e.driftBase
}

// srcDelta groups a delta's ops by source node.
type srcDelta struct {
	ins, del []int
}

// ApplyDelta builds a new engine for gNew — the updated graph — from the
// receiver plus the edge updates that turned the receiver's graph into
// gNew. The receiver is not modified and keeps serving; the returned engine
// shares every untouched matrix and LU factor with it.
//
// Preconditions: gNew.N() ≥ e.N(); ops lists the actual changes (an insert
// for an edge gNew lacks, or a delete for one it has, is refused); nodes
// beyond e.N() are new and must have no out-edges. ErrDeltaFull and
// ErrDriftExceeded mean the delta cannot be absorbed incrementally — run a
// full Preprocess instead. Any other error likewise leaves the receiver
// untouched.
func (e *Engine) ApplyDelta(gNew *graph.Graph, ops []EdgeDelta) (*Engine, DeltaStats, error) {
	start := time.Now()
	st := DeltaStats{Class: DeltaFull, Ops: len(ops)}
	if gNew.N() < e.n {
		return nil, st, fmt.Errorf("graph shrank %d → %d: %w", e.n, gNew.N(), ErrDeltaFull)
	}
	growth := gNew.N() - e.n
	st.NewNodes = growth

	// Extend the ordering over the new nodes: appended at the tail of the
	// deadend region in id order, exactly where HubAndSpoke would place
	// out-edge-free nodes that sort after every existing deadend.
	ord := e.ord
	if growth > 0 {
		perm := make([]int, gNew.N())
		inv := make([]int, gNew.N())
		copy(perm, e.ord.Perm)
		copy(inv, e.ord.Inv)
		for i := e.n; i < gNew.N(); i++ {
			perm[i], inv[i] = i, i
		}
		ord = &reorder.Ordering{
			Perm: perm, Inv: inv,
			N1: e.ord.N1, N2: e.ord.N2, N3: e.ord.N3 + growth,
			Blocks: e.ord.Blocks,
		}
	}
	n1, n2 := ord.N1, ord.N2
	l := n1 + n2

	// Group and classify. Sources must be pre-existing non-deadend nodes;
	// spoke sources may not reach spokes outside their own H11 block.
	srcs := make(map[int]*srcDelta)
	hub := false
	for _, op := range ops {
		if op.Src < 0 || op.Src >= gNew.N() || op.Dst < 0 || op.Dst >= gNew.N() {
			return nil, st, fmt.Errorf("op %d→%d out of range: %w", op.Src, op.Dst, ErrDeltaFull)
		}
		if op.Insert != gNew.HasEdge(op.Src, op.Dst) {
			return nil, st, fmt.Errorf("op %d→%d (insert=%v) inconsistent with updated graph: %w",
				op.Src, op.Dst, op.Insert, ErrDeltaFull)
		}
		if op.Src >= e.n {
			return nil, st, fmt.Errorf("new node %d has out-edges: %w", op.Src, ErrDeltaFull)
		}
		pu := ord.Perm[op.Src]
		if pu >= l {
			return nil, st, fmt.Errorf("deadend node %d gains an out-edge: %w", op.Src, ErrDeltaFull)
		}
		if pu >= n1 {
			hub = true
		}
		d := srcs[op.Src]
		if d == nil {
			d = &srcDelta{}
			srcs[op.Src] = d
		}
		if op.Insert {
			d.ins = append(d.ins, op.Dst)
		} else {
			d.del = append(d.del, op.Dst)
		}
	}
	if hub && e.opts.MaxHubDrift < 0 {
		return nil, st, fmt.Errorf("hub-delta path disabled (MaxHubDrift < 0): %w", ErrDeltaFull)
	}

	touched := make(map[int]bool)
	for u := range srcs {
		pu := ord.Perm[u]
		if pu >= n1 {
			continue
		}
		b := e.h11LU.BlockOf(pu)
		lo, hi := e.h11LU.BlockRange(b)
		for _, v := range gNew.OutNeighbors(u) {
			if pv := ord.Perm[v]; pv < n1 && (pv < lo || pv >= hi) {
				return nil, st, fmt.Errorf("edge %d→%d crosses H11 blocks: %w", u, v, ErrDeltaFull)
			}
		}
		touched[b] = true
	}
	st.TouchedBlocks = len(touched)
	if hub {
		st.Class = DeltaHub
	} else {
		st.Class = DeltaSpoke
	}

	// Translate each rescaled H column into entry edits on the stored
	// blocks. A source's whole current out-neighborhood is rewritten (a
	// degree change rescales every remaining entry), deleted targets are
	// removed, and H11 entries are skipped — touched blocks are rebuilt
	// dense from gNew below.
	c := e.opts.C
	var h21E, h31E, h12E, h22E, h32E []sparse.Edit
	hubCols := make(map[int]bool)
	for u, d := range srcs {
		pu := ord.Perm[u]
		deg := gNew.OutDegree(u)
		var w float64
		if deg > 0 {
			w = -(1 - c) / float64(deg)
		}
		route := func(pv int, val float64, del bool) {
			switch {
			case pu < n1: // spoke column
				switch {
				case pv < n1: // inside the rebuilt H11 block
				case pv < l:
					h21E = append(h21E, sparse.Edit{Row: pv - n1, Col: pu, Val: val, Delete: del})
				default:
					h31E = append(h31E, sparse.Edit{Row: pv - l, Col: pu, Val: val, Delete: del})
				}
			default: // hub column j = pu-n1
				j := pu - n1
				switch {
				case pv < n1:
					h12E = append(h12E, sparse.Edit{Row: pv, Col: j, Val: val, Delete: del})
				case pv < l:
					if pv-n1 == j {
						// Diagonal of H22 merges identity + self-loop; it
						// exists even without the self-loop, so deletion
						// means "revert to 1", never removal.
						if del {
							h22E = append(h22E, sparse.Edit{Row: j, Col: j, Val: 1})
						} else {
							h22E = append(h22E, sparse.Edit{Row: j, Col: j, Val: 1 + val})
						}
						return
					}
					h22E = append(h22E, sparse.Edit{Row: pv - n1, Col: j, Val: val, Delete: del})
				default:
					h32E = append(h32E, sparse.Edit{Row: pv - l, Col: j, Val: val, Delete: del})
				}
			}
		}
		for _, v := range d.del {
			route(ord.Perm[v], 0, true)
		}
		for _, v := range gNew.OutNeighbors(u) {
			route(ord.Perm[v], w, false)
		}
		if pu >= n1 {
			hubCols[pu-n1] = true
		}
	}

	// Copy-on-write patches. Only matrices with edits (or appended rows)
	// are rebuilt; the rest are shared with the serving engine.
	tPatch := time.Now()
	patch := func(m mat, appendRows int, edits []sparse.Edit) mat {
		if appendRows == 0 && len(edits) == 0 {
			return m
		}
		w := asCSR(m)
		if appendRows > 0 {
			w = w.WithRowsAppended(appendRows)
		}
		w = w.WithEdits(edits)
		if _, compact := m.(*sparse.CSR32); compact && fitsCompact(w) {
			return sparse.Compact(w)
		}
		return w
	}
	h12New := patch(e.h12, 0, h12E)
	h21New := patch(e.h21, 0, h21E)
	h31New := patch(e.h31, growth, h31E)
	h32New := patch(e.h32, growth, h32E)
	var h22New mat
	if e.h22 != nil {
		h22New = patch(e.h22, 0, h22E)
	}
	var h22xNew mat
	if e.h22x != nil {
		h22xNew = patch(e.h22x, 0, h22E)
	}
	patchDur := time.Since(tPatch)

	// Partial H11 refactorization: rebuild the touched diagonal blocks
	// dense from gNew (same per-cell arithmetic as BuildH + the CSR merge:
	// at most identity + one edge weight per cell, a commutative two-term
	// sum) and LU-factor only those.
	tFactor := time.Now()
	h11LUNew := e.h11LU
	if len(touched) > 0 {
		raw := make(map[int]*dense.Matrix, len(touched))
		for b := range touched {
			lo, hi := e.h11LU.BlockRange(b)
			blk := dense.New(hi-lo, hi-lo)
			for col := lo; col < hi; col++ {
				u := ord.Inv[col]
				deg := gNew.OutDegree(u)
				if deg == 0 {
					continue
				}
				w := -(1 - c) / float64(deg)
				for _, v := range gNew.OutNeighbors(u) {
					if pv := ord.Perm[v]; pv >= lo && pv < hi {
						blk.Set(pv-lo, col-lo, blk.At(pv-lo, col-lo)+w)
					}
				}
			}
			for i := 0; i < hi-lo; i++ {
				blk.Set(i, i, blk.At(i, i)+1)
			}
			raw[b] = blk
		}
		var err error
		h11LUNew, err = e.h11LU.RefactorBlocks(raw)
		if err != nil {
			return nil, st, fmt.Errorf("core: refactoring touched H11 blocks: %w", err)
		}
	}
	factorDur := time.Since(tFactor)

	// Affected Schur columns: every hub source's own column, plus every
	// column whose H12 support reaches a touched H11 block (those columns'
	// back-substitutions — and the H21 columns they gather through — run
	// through refactored blocks).
	affected := make(map[int]bool, len(hubCols))
	for j := range hubCols {
		affected[j] = true
	}
	h12W := asCSR(h12New)
	for b := range touched {
		lo, hi := e.h11LU.BlockRange(b)
		for i := lo; i < hi; i++ {
			s, en := h12W.RowRange(i)
			for p := s; p < en; p++ {
				affected[h12W.ColIdx()[p]] = true
			}
		}
	}
	cols := make([]int, 0, len(affected))
	for j := range affected {
		cols = append(cols, j)
	}
	sort.Ints(cols)
	st.AffectedColumns = len(cols)

	// Recompute each affected S column with SchurComplementT's per-column
	// algorithm, verbatim, against the patched blocks — same accumulation
	// order, same staging, same merge with the H22 column, explicit zeros
	// kept — so the recomputed columns are bit-identical to a from-scratch
	// Schur build.
	tSchur := time.Now()
	newCols := make(map[int][]colEntry, len(cols))
	if len(cols) > 0 {
		// Updated H22 columns: extracted in one sweep from the retained (and
		// just patched) H22 block when the engine kept one; reconstructed from
		// the graph per column otherwise (deserialized engines). The stored
		// block holds exactly the values BuildH assembled — the same two-term
		// sums h22Column reproduces — so both sources are bit-identical.
		var h22Cols map[int][]colEntry
		switch {
		case h22New != nil:
			h22Cols = extractColumns(asCSR(h22New), affected)
		case h22xNew != nil:
			h22Cols = extractColumns(asCSR(h22xNew), affected)
		}
		h12T := h12W.Transpose()
		h21T := asCSR(h21New).Transpose()
		scratch := make([]float64, maxInt(h11LUNew.MaxBlockSize(), 1))
		acc := make([]float64, n2)
		mark := make([]int, n2)
		for i := range mark {
			mark[i] = -1
		}
		var touchedIdx []int
		for _, j := range cols {
			touchedIdx = touchedIdx[:0]
			s, en := h12T.RowRange(j)
			idx := h12T.ColIdx()[s:en]
			vals := h12T.Values()[s:en]
			h11LUNew.SolveSparse(idx, vals, scratch, func(row int, x float64) {
				rs, re := h21T.RowRange(row)
				tcols := h21T.ColIdx()[rs:re]
				vs := h21T.Values()[rs:re]
				for p, i := range tcols {
					if mark[i] != j {
						mark[i] = j
						acc[i] = 0
						touchedIdx = append(touchedIdx, i)
					}
					acc[i] += vs[p] * x
				}
			})
			sort.Ints(touchedIdx)
			staged := make([]colEntry, 0, len(touchedIdx))
			for _, i := range touchedIdx {
				if acc[i] != 0 {
					staged = append(staged, colEntry{i, -acc[i]})
				}
			}
			hc, ok := h22Cols[j]
			if !ok {
				hc = h22Column(gNew, ord, c, j)
			}
			newCols[j] = mergeColumns(hc, staged)
			// Reset marks for the next column (stamp value is the column id,
			// which repeats never, but guard against j reuse across calls).
			for _, i := range touchedIdx {
				mark[i] = -1
			}
		}
	}
	schurDur := time.Since(tSchur)

	// Base/previous values of the affected columns from the stored S.
	schurW := asCSR(e.schur)
	oldCols := extractColumns(schurW, affected)

	ne := &Engine{
		opts: e.opts, n: gNew.N(), ord: ord,
		h12: h12New, h21: h21New, h31: h31New, h32: h32New,
		h22: h22New, h22x: h22xNew, schur: e.schur, h11LU: h11LUNew, ilu: e.ilu,
		pool: e.pool, prep: e.prep,
	}

	iluDur := time.Duration(0)
	useWood := e.h22 == nil && (hub || e.wood != nil)
	if useWood {
		// Explicit operator, hub-touched (or already corrected): stored S̃
		// and ILU stay the base; affected columns become (or update)
		// Woodbury corrections. Δ is always measured against the base S̃, so
		// repeated deltas never compound approximation error.
		if err := e.installWoodbury(ne, schurW, cols, newCols, oldCols); err != nil {
			return nil, st, err
		}
		st.Rank = len(ne.wood.cols)
	} else {
		// Exact path (spoke-only explicit, or any implicit delta): splice
		// the recomputed columns into the stored S.
		if len(cols) > 0 {
			var edits []sparse.Edit
			changedRows := make([]bool, n2)
			for _, j := range cols {
				edits = appendColumnEdits(edits, j, oldCols[j], newCols[j], changedRows)
			}
			sNew := schurW.WithEdits(edits)
			if hub && e.h22 != nil && e.ilu != nil {
				// Implicit hub path: the fused operator and the patched S are
				// exact; only the ILU preconditioner is left stale. Account
				// the staleness per column and refuse past the threshold.
				dc := make(map[int]float64, len(e.driftCols)+len(cols))
				for j, d := range e.driftCols {
					dc[j] = d
				}
				db := e.driftBase
				if db == 0 {
					db = schurW.FrobeniusNorm()
					if db == 0 {
						db = 1
					}
				}
				for _, j := range cols {
					dc[j] += colNorm(diffColumns(newCols[j], oldCols[j]))
				}
				var sum float64
				for _, d := range dc {
					sum += d * d
				}
				if drift := math.Sqrt(sum) / db; drift > e.opts.MaxHubDrift {
					return nil, st, fmt.Errorf("drift %.3g > %.3g: %w", drift, e.opts.MaxHubDrift, ErrDriftExceeded)
				}
				ne.driftCols, ne.driftBase = dc, db
			} else if e.ilu != nil {
				// Exact spoke path: re-factor ILU(0) from the patched wide S
				// — the same source Preprocess factors from — restoring full
				// exactness (and resetting any implicit-path drift). When the
				// serving ILU matches the stored S (no accumulated drift), the
				// partial refactorization reuses every factor row outside the
				// edited rows' dirty closure; a drifted implicit engine's ILU
				// is stale, so it re-factors from scratch.
				tILU := time.Now()
				var ilu *lu.ILU
				var err error
				if e.driftCols == nil {
					ilu, err = e.ilu.RefactorRows(sNew, changedRows)
				} else {
					ilu, err = lu.FactorILU0(sNew)
				}
				if err != nil {
					return nil, st, fmt.Errorf("core: re-factoring ILU(0) of patched S: %w", err)
				}
				if e.Compacted() {
					ilu.Compact()
				}
				ne.ilu = ilu
				iluDur = time.Since(tILU)
			}
			if _, compact := e.schur.(*sparse.CSR32); compact && fitsCompact(sNew) {
				ne.schur = sparse.Compact(sNew)
			} else {
				ne.schur = sNew
			}
		}
		if !hub {
			// Fully exact again: no residual drift.
			ne.driftCols, ne.driftBase = nil, 0
			if e.h22 != nil && e.driftCols != nil && e.ilu != nil && len(cols) == 0 {
				// A pure-growth delta on a drifted implicit engine keeps the
				// stale ILU; carry the drift forward.
				ne.driftCols, ne.driftBase = e.driftCols, e.driftBase
			}
		}
	}

	// Attach the pool to the matrices this delta rebuilt; shared ones are
	// already attached (and must not be re-first-touched while the old
	// engine is serving from them).
	for _, m := range []mat{ne.h12, ne.h21, ne.h31, ne.h32, ne.h22, ne.schur} {
		if m == nil {
			continue
		}
		switch m {
		case e.h12, e.h21, e.h31, e.h32, e.h22, e.schur:
		default:
			matSetPool(m, ne.pool)
			matFirstTouch(m)
		}
	}
	if ne.ilu != nil && ne.ilu != e.ilu {
		ne.ilu.SetPool(ne.pool)
	}

	ne.prep.N, ne.prep.M, ne.prep.N3 = gNew.N(), gNew.M(), ord.N3
	ne.prep.Reorder = 0
	ne.prep.BuildH = patchDur
	ne.prep.FactorH11 = factorDur
	ne.prep.Schur = schurDur
	ne.prep.ILU = iluDur
	ne.prep.SchurNNZ = ne.schur.NNZ()
	ne.prep.Total = time.Since(start)
	st.Drift = ne.Drift()
	st.Duration = ne.prep.Total
	return ne, st, nil
}

// installWoodbury builds ne.wood: previous corrections not re-affected by
// this delta keep their Δ and solved Z column; affected columns get a fresh
// Δ against the base S̃ and a fresh solve.
func (e *Engine) installWoodbury(ne *Engine, baseS *sparse.CSR, cols []int, newCols, oldCols map[int][]colEntry) error {
	n2 := e.ord.N2
	deltas := make(map[int][]colEntry)
	oldZ := make(map[int][]float64)
	if e.wood != nil {
		for j, d := range e.wood.deltas {
			deltas[j] = d
		}
		for b, j := range e.wood.cols {
			oldZ[j] = e.wood.z[b]
		}
	}
	for _, j := range cols {
		deltas[j] = diffColumns(newCols[j], oldCols[j])
		delete(oldZ, j) // Δ changed: the cached solve is stale
	}

	// Drift check before any solve work: Δ is against the fixed base, so
	// the column norms compose exactly into ‖S_now − S̃‖F.
	db := e.driftBase
	if db == 0 {
		db = baseS.FrobeniusNorm()
		if db == 0 {
			db = 1
		}
	}
	dc := make(map[int]float64, len(deltas))
	var sum float64
	for j, d := range deltas {
		nrm := colNorm(d)
		dc[j] = nrm
		sum += nrm * nrm
	}
	drift := math.Sqrt(sum) / db
	if drift > e.opts.MaxHubDrift {
		return fmt.Errorf("drift %.3g > %.3g: %w", drift, e.opts.MaxHubDrift, ErrDriftExceeded)
	}

	allCols := make([]int, 0, len(deltas))
	for j := range deltas {
		allCols = append(allCols, j)
	}
	sort.Ints(allCols)

	// Z = S̃⁻¹·U, one preconditioned solve per changed column against the
	// base operator — the correction itself is what makes these solves (and
	// every later query) land on the updated graph's solution.
	zopts := solver.GMRESOptions{Tol: e.opts.Tol, MaxIter: e.opts.MaxIter, Restart: e.opts.GMRESRestart}
	if e.ilu != nil {
		zopts.Precond = e.ilu
	}
	z := make([][]float64, len(allCols))
	rhs := make([]float64, n2)
	for b, j := range allCols {
		if zj, ok := oldZ[j]; ok {
			z[b] = zj
			continue
		}
		for i := range rhs {
			rhs[i] = 0
		}
		for _, ce := range deltas[j] {
			rhs[ce.row] = ce.val
		}
		zj, _, err := solver.GMRES(e.schur, rhs, zopts)
		if err != nil {
			return fmt.Errorf("core: Woodbury solve for S column %d: %w", j, err)
		}
		z[b] = zj
	}

	// Capacitance C = I + VᵀZ, C[a][b] = δ_ab + z_b[j_a]; r×r and dense.
	r := len(allCols)
	capM := dense.New(r, r)
	for a := 0; a < r; a++ {
		for b := 0; b < r; b++ {
			v := z[b][allCols[a]]
			if a == b {
				v++
			}
			capM.Set(a, b, v)
		}
	}
	if err := capM.LU(); err != nil {
		return fmt.Errorf("core: Woodbury capacitance singular: %w", err)
	}
	ne.wood = &woodbury{cols: allCols, z: z, capLU: capM, deltas: deltas}
	ne.driftCols, ne.driftBase = dc, db
	return nil
}

// h22Column builds column j of the reordered H22 straight from the graph:
// the identity diagonal plus −(1−c)/outdeg(u) for every hub out-neighbor of
// the hub node u owning the column, duplicates (the self-loop) merged by
// the same two-term sum the CSR build produces.
func h22Column(g *graph.Graph, ord *reorder.Ordering, c float64, j int) []colEntry {
	n1 := ord.N1
	l := n1 + ord.N2
	u := ord.Inv[n1+j]
	out := []colEntry{{j, 1}}
	deg := g.OutDegree(u)
	if deg > 0 {
		w := -(1 - c) / float64(deg)
		for _, v := range g.OutNeighbors(u) {
			if pv := ord.Perm[v]; pv >= n1 && pv < l {
				out = append(out, colEntry{pv - n1, w})
			}
		}
	}
	// Insertion sort: hub columns are short, and the reflection-based
	// sort.Slice showed up in per-flush profiles at 347 columns a delta.
	// Stable, so the duplicate diagonal keeps its 1 + w summation order
	// (commutative anyway — the merged value is bit-identical either way).
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && out[b].row < out[b-1].row; b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	merged := out[:0]
	for _, ce := range out {
		if len(merged) > 0 && merged[len(merged)-1].row == ce.row {
			merged[len(merged)-1].val += ce.val
		} else {
			merged = append(merged, ce)
		}
	}
	return merged
}

// mergeColumns merges an H22 column with the staged −H21·H11⁻¹·H12 column
// entries with exactly sparse.CSR.Add's two-pointer semantics (same sum
// expression, explicit zeros kept).
func mergeColumns(h22col, staged []colEntry) []colEntry {
	out := make([]colEntry, 0, len(h22col)+len(staged))
	pa, pb := 0, 0
	for pa < len(h22col) || pb < len(staged) {
		switch {
		case pb >= len(staged) || (pa < len(h22col) && h22col[pa].row < staged[pb].row):
			out = append(out, h22col[pa])
			pa++
		case pa >= len(h22col) || staged[pb].row < h22col[pa].row:
			out = append(out, staged[pb])
			pb++
		default:
			out = append(out, colEntry{h22col[pa].row, h22col[pa].val + staged[pb].val})
			pa++
			pb++
		}
	}
	return out
}

// diffColumns returns newCol − oldCol as a sparse column (entries whose
// difference is exactly zero are dropped — they contribute nothing to the
// correction or the drift).
func diffColumns(newCol, oldCol []colEntry) []colEntry {
	var out []colEntry
	pa, pb := 0, 0
	for pa < len(newCol) || pb < len(oldCol) {
		switch {
		case pb >= len(oldCol) || (pa < len(newCol) && newCol[pa].row < oldCol[pb].row):
			if newCol[pa].val != 0 {
				out = append(out, newCol[pa])
			}
			pa++
		case pa >= len(newCol) || oldCol[pb].row < newCol[pa].row:
			if oldCol[pb].val != 0 {
				out = append(out, colEntry{oldCol[pb].row, -oldCol[pb].val})
			}
			pb++
		default:
			if d := newCol[pa].val - oldCol[pb].val; d != 0 {
				out = append(out, colEntry{newCol[pa].row, d})
			}
			pa++
			pb++
		}
	}
	return out
}

// colNorm returns the ℓ2 norm of a sparse column.
func colNorm(col []colEntry) float64 {
	var s float64
	for _, ce := range col {
		s += ce.val * ce.val
	}
	return math.Sqrt(s)
}

// extractColumns collects the stored entries of the wanted columns in one
// row-major sweep; each column comes out in ascending-row order. A dense
// slot mask stands in for the map during the sweep — a hash lookup per
// stored entry dominated the delta-rebuild profile.
func extractColumns(m *sparse.CSR, want map[int]bool) map[int][]colEntry {
	out := make(map[int][]colEntry, len(want))
	if len(want) == 0 {
		return out
	}
	slot := make([]int, m.Cols())
	order := make([]int, 0, len(want))
	for j := range want {
		order = append(order, j)
		slot[j] = len(order) // 1-based; 0 means unwanted
	}
	// Count pass, then fill into one backing array: wanted columns are a
	// minority but can be long, and growing each slice by append re-copies
	// enough to show in per-flush profiles.
	counts := make([]int, len(order)+1)
	cols := m.ColIdx()
	vals := m.Values()
	nnz := m.NNZ()
	for p := 0; p < nnz; p++ {
		if sl := slot[cols[p]]; sl != 0 {
			counts[sl]++
		}
	}
	for k := 1; k <= len(order); k++ {
		counts[k] += counts[k-1]
	}
	buf := make([]colEntry, counts[len(order)])
	starts := make([]int, len(order))
	copy(starts, counts[:len(order)])
	fill := make([]int, len(order))
	copy(fill, starts)
	for i := 0; i < m.Rows(); i++ {
		s, en := m.RowRange(i)
		for p := s; p < en; p++ {
			if sl := slot[cols[p]]; sl != 0 {
				buf[fill[sl-1]] = colEntry{i, vals[p]}
				fill[sl-1]++
			}
		}
	}
	for k, j := range order {
		out[j] = buf[starts[k]:fill[k]:fill[k]]
	}
	return out
}

// appendColumnEdits emits the WithEdits batch replacing column j's old
// entries with the new ones, skipping entries that are already bitwise
// equal — an affected column usually overlaps its predecessor almost
// everywhere, and both the splice cost and the partial ILU(0)
// refactorization's dirty set scale with the edits actually emitted. Every
// edited row is flagged in changed (length n2), which feeds RefactorRows.
func appendColumnEdits(edits []sparse.Edit, j int, oldCol, newCol []colEntry, changed []bool) []sparse.Edit {
	pa, pb := 0, 0
	for pa < len(oldCol) || pb < len(newCol) {
		switch {
		case pb >= len(newCol) || (pa < len(oldCol) && oldCol[pa].row < newCol[pb].row):
			edits = append(edits, sparse.Edit{Row: oldCol[pa].row, Col: j, Delete: true})
			changed[oldCol[pa].row] = true
			pa++
		case pa >= len(oldCol) || newCol[pb].row < oldCol[pa].row:
			edits = append(edits, sparse.Edit{Row: newCol[pb].row, Col: j, Val: newCol[pb].val})
			changed[newCol[pb].row] = true
			pb++
		default:
			if math.Float64bits(oldCol[pa].val) != math.Float64bits(newCol[pb].val) {
				edits = append(edits, sparse.Edit{Row: newCol[pb].row, Col: j, Val: newCol[pb].val})
				changed[newCol[pb].row] = true
			}
			pa++
			pb++
		}
	}
	return edits
}
