package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"bepi/internal/gen"
	"bepi/internal/graph"
	"bepi/internal/vec"
)

// applyOpsToGraph materializes the updated graph a delta describes.
func applyOpsToGraph(g *graph.Graph, n int, ops []EdgeDelta) *graph.Graph {
	set := make(map[[2]int]bool)
	for _, e := range g.Edges() {
		set[[2]int{e.Src, e.Dst}] = true
	}
	for _, op := range ops {
		if op.Insert {
			set[[2]int{op.Src, op.Dst}] = true
		} else {
			delete(set, [2]int{op.Src, op.Dst})
		}
	}
	edges := make([]graph.Edge, 0, len(set))
	for k := range set {
		edges = append(edges, graph.Edge{Src: k[0], Dst: k[1]})
	}
	return graph.MustNew(n, edges)
}

// genSpokeDeltaOps builds a batch of ops every one of which ApplyDelta can
// absorb exactly: spoke sources, targets confined to the source's own H11
// block or to hubs/deadends.
func genSpokeDeltaOps(rng *rand.Rand, g *graph.Graph, e *Engine, count int) []EdgeDelta {
	ord := e.ord
	n1 := ord.N1
	var spokes []int
	for u := 0; u < g.N(); u++ {
		if ord.Perm[u] < n1 {
			spokes = append(spokes, u)
		}
	}
	if len(spokes) == 0 {
		return nil
	}
	var ops []EdgeDelta
	used := make(map[[2]int]bool)
	for guard := 0; len(ops) < count && guard < 100*count; guard++ {
		u := spokes[rng.Intn(len(spokes))]
		if rng.Intn(2) == 0 && g.OutDegree(u) > 1 {
			nbrs := g.OutNeighbors(u)
			v := nbrs[rng.Intn(len(nbrs))]
			if used[[2]int{u, v}] {
				continue
			}
			used[[2]int{u, v}] = true
			ops = append(ops, EdgeDelta{Src: u, Dst: v, Insert: false})
			continue
		}
		b := e.h11LU.BlockOf(ord.Perm[u])
		lo, hi := e.h11LU.BlockRange(b)
		var pv int
		if rng.Intn(2) == 0 {
			pv = lo + rng.Intn(hi-lo)
		} else {
			pv = n1 + rng.Intn(g.N()-n1)
		}
		v := ord.Inv[pv]
		if g.HasEdge(u, v) || used[[2]int{u, v}] {
			continue
		}
		used[[2]int{u, v}] = true
		ops = append(ops, EdgeDelta{Src: u, Dst: v, Insert: true})
	}
	return ops
}

// genHubDeltaOps builds ops whose sources are hubs (targets unconstrained).
func genHubDeltaOps(rng *rand.Rand, g *graph.Graph, e *Engine, count int) []EdgeDelta {
	ord := e.ord
	n1, l := ord.N1, ord.N1+ord.N2
	var hubs []int
	for u := 0; u < g.N(); u++ {
		if p := ord.Perm[u]; p >= n1 && p < l {
			hubs = append(hubs, u)
		}
	}
	if len(hubs) == 0 {
		return nil
	}
	var ops []EdgeDelta
	used := make(map[[2]int]bool)
	for guard := 0; len(ops) < count && guard < 100*count; guard++ {
		u := hubs[rng.Intn(len(hubs))]
		if rng.Intn(2) == 0 && g.OutDegree(u) > 1 {
			nbrs := g.OutNeighbors(u)
			v := nbrs[rng.Intn(len(nbrs))]
			if used[[2]int{u, v}] {
				continue
			}
			used[[2]int{u, v}] = true
			ops = append(ops, EdgeDelta{Src: u, Dst: v, Insert: false})
			continue
		}
		v := rng.Intn(g.N())
		if g.HasEdge(u, v) || used[[2]int{u, v}] {
			continue
		}
		used[[2]int{u, v}] = true
		ops = append(ops, EdgeDelta{Src: u, Dst: v, Insert: true})
	}
	return ops
}

// matBitsEqual compares two stored matrices entry-for-entry including the
// exact float bits and the sparsity pattern (explicit zeros included).
func matBitsEqual(t *testing.T, name string, a, b mat) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch", name)
	}
	if a == nil {
		return
	}
	aw, bw := asCSR(a), asCSR(b)
	if aw.Rows() != bw.Rows() || aw.Cols() != bw.Cols() || aw.NNZ() != bw.NNZ() {
		t.Fatalf("%s: shape/nnz mismatch %dx%d/%d vs %dx%d/%d",
			name, aw.Rows(), aw.Cols(), aw.NNZ(), bw.Rows(), bw.Cols(), bw.NNZ())
	}
	for i := 0; i < aw.Rows(); i++ {
		as, ae := aw.RowRange(i)
		bs, be := bw.RowRange(i)
		if ae-as != be-bs {
			t.Fatalf("%s: row %d length differs", name, i)
		}
		for k := 0; k < ae-as; k++ {
			if aw.ColIdx()[as+k] != bw.ColIdx()[bs+k] {
				t.Fatalf("%s: row %d pattern differs", name, i)
			}
			av, bv := aw.Values()[as+k], bw.Values()[bs+k]
			if math.Float64bits(av) != math.Float64bits(bv) {
				t.Fatalf("%s: row %d col %d: %v vs %v (bits differ)", name, i, aw.ColIdx()[as+k], av, bv)
			}
		}
	}
}

// requireQueryBitsEqual runs queries on both engines and demands
// bit-identical result vectors — the strongest end-to-end check, covering
// the factors, the ILU, and the solve trajectory.
func requireQueryBitsEqual(t *testing.T, a, b *Engine, seeds []int) {
	t.Helper()
	for _, s := range seeds {
		ra, _, err := a.Query(s)
		if err != nil {
			t.Fatalf("seed %d: delta engine: %v", s, err)
		}
		rb, _, err := b.Query(s)
		if err != nil {
			t.Fatalf("seed %d: reference engine: %v", s, err)
		}
		for i := range ra {
			if math.Float64bits(ra[i]) != math.Float64bits(rb[i]) {
				t.Fatalf("seed %d: result differs at %d: %v vs %v", s, i, ra[i], rb[i])
			}
		}
	}
}

// TestDeltaSpokeBitIdentical is the core property: a spoke-only delta
// rebuild is bit-identical to a full preprocess of the updated graph under
// the reused ordering — matrices, Schur complement, and query results — on
// an RMAT graph and a pathological near-uniform one, across operator
// variants, implicit/explicit, and both storage layouts.
func TestDeltaSpokeBitIdentical(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat": gen.RMAT(gen.DefaultRMAT(8, 6, 17)),
		"ws":   gen.WattsStrogatz(300, 6, 0.05, 3),
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"full", Options{Variant: VariantFull, HubRatio: 0.2, Tol: 1e-10}},
		{"full-implicit", Options{Variant: VariantFull, HubRatio: 0.2, Tol: 1e-10, ImplicitSchur: true}},
		{"full-wide", Options{Variant: VariantFull, HubRatio: 0.2, Tol: 1e-10, Compact: CompactOff}},
		{"b", Options{Variant: VariantB, HubRatio: 0.01, Tol: 1e-10}},
	}
	for gname, g := range graphs {
		for _, tc := range cases {
			t.Run(gname+"/"+tc.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(91))
				e0, err := Preprocess(g, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				ops := genSpokeDeltaOps(rng, g, e0, 12)
				if len(ops) == 0 {
					t.Skip("no spoke ops generable")
				}
				gNew := applyOpsToGraph(g, g.N(), ops)
				e1, st, err := e0.ApplyDelta(gNew, ops)
				if err != nil {
					t.Fatalf("ApplyDelta: %v", err)
				}
				if st.Class != DeltaSpoke {
					t.Fatalf("class %v, want DeltaSpoke", st.Class)
				}
				if st.TouchedBlocks == 0 || st.AffectedColumns == 0 {
					t.Fatalf("stats %+v: expected touched blocks and affected columns", st)
				}
				if e1.Corrected() || e1.Drift() != 0 {
					t.Fatalf("spoke delta left correction state: corrected=%v drift=%v", e1.Corrected(), e1.Drift())
				}
				ref, err := PreprocessWithOrdering(gNew, tc.opts, e1.ord)
				if err != nil {
					t.Fatalf("reference preprocess: %v", err)
				}
				matBitsEqual(t, "h12", e1.h12, ref.h12)
				matBitsEqual(t, "h21", e1.h21, ref.h21)
				matBitsEqual(t, "h31", e1.h31, ref.h31)
				matBitsEqual(t, "h32", e1.h32, ref.h32)
				matBitsEqual(t, "h22", e1.h22, ref.h22)
				matBitsEqual(t, "schur", e1.schur, ref.schur)
				requireQueryBitsEqual(t, e1, ref, []int{0, 1, g.N() / 2, g.N() - 1})
			})
		}
	}
}

// TestDeltaSequentialSpoke chains two spoke deltas and checks the second
// result is still bit-identical to a from-scratch preprocess — patches
// compose without error accumulation.
func TestDeltaSequentialSpoke(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 6, 29))
	opts := Options{Variant: VariantFull, HubRatio: 0.2, Tol: 1e-10}
	e0, err := Preprocess(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	ops1 := genSpokeDeltaOps(rng, g, e0, 6)
	g1 := applyOpsToGraph(g, g.N(), ops1)
	e1, _, err := e0.ApplyDelta(g1, ops1)
	if err != nil {
		t.Fatal(err)
	}
	ops2 := genSpokeDeltaOps(rng, g1, e1, 6)
	g2 := applyOpsToGraph(g1, g1.N(), ops2)
	e2, _, err := e1.ApplyDelta(g2, ops2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := PreprocessWithOrdering(g2, opts, e2.ord)
	if err != nil {
		t.Fatal(err)
	}
	matBitsEqual(t, "schur", e2.schur, ref.schur)
	requireQueryBitsEqual(t, e2, ref, []int{2, g.N() / 3})
}

// TestDeltaNodeGrowth checks pure node growth plus spoke edges toward the
// new nodes: the ordering grows an identity tail, H31/H32 gain rows, and
// the result matches a full preprocess bit-for-bit. It also pins the
// satellite bug: a growth-only delta (no ops) must still produce an engine
// covering the new nodes.
func TestDeltaNodeGrowth(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 6, 33))
	opts := Options{Variant: VariantFull, HubRatio: 0.2, Tol: 1e-10}
	e0, err := Preprocess(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Growth only: three nodes, no edges.
	gGrow := graph.MustNew(g.N()+3, g.Edges())
	e1, st, err := e0.ApplyDelta(gGrow, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Class != DeltaSpoke || st.NewNodes != 3 {
		t.Fatalf("stats %+v, want spoke class with 3 new nodes", st)
	}
	if e1.N() != g.N()+3 {
		t.Fatalf("engine covers %d nodes, want %d", e1.N(), g.N()+3)
	}
	r, _, err := e1.Query(g.N() + 1) // seed at a brand-new node
	if err != nil {
		t.Fatal(err)
	}
	if r[g.N()+1] <= 0 {
		t.Fatal("new node got no restart mass")
	}

	// Growth plus spoke edges pointing at the new (deadend) nodes.
	rng := rand.New(rand.NewSource(8))
	var ops []EdgeDelta
	for u := 0; u < g.N() && len(ops) < 4; u++ {
		if e0.ord.Perm[u] < e0.ord.N1 && !g.HasEdge(u, g.N()+len(ops)) {
			ops = append(ops, EdgeDelta{Src: u, Dst: g.N() + len(ops), Insert: true})
		}
	}
	_ = rng
	gNew := applyOpsToGraph(g, g.N()+3, ops[:3])
	e2, st2, err := e0.ApplyDelta(gNew, ops[:3])
	if err != nil {
		t.Fatal(err)
	}
	if st2.Class != DeltaSpoke {
		t.Fatalf("class %v, want DeltaSpoke", st2.Class)
	}
	ref, err := PreprocessWithOrdering(gNew, opts, e2.ord)
	if err != nil {
		t.Fatal(err)
	}
	matBitsEqual(t, "h31", e2.h31, ref.h31)
	matBitsEqual(t, "schur", e2.schur, ref.schur)
	requireQueryBitsEqual(t, e2, ref, []int{0, g.N() + 2})
}

// TestDeltaHubWoodbury checks the hub path on the explicit operator: the
// corrected engine answers within solver tolerance of a full rebuild, with
// identical top-k sets, reports its correction state, and refuses to
// serialize.
func TestDeltaHubWoodbury(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 6, 41))
	opts := Options{Variant: VariantFull, HubRatio: 0.2, Tol: 1e-10}
	e0, err := Preprocess(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	ops := genHubDeltaOps(rng, g, e0, 5)
	if len(ops) == 0 {
		t.Skip("no hubs")
	}
	gNew := applyOpsToGraph(g, g.N(), ops)
	e1, st, err := e0.ApplyDelta(gNew, ops)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if st.Class != DeltaHub || st.Rank == 0 {
		t.Fatalf("stats %+v, want hub class with positive rank", st)
	}
	if !e1.Corrected() {
		t.Fatal("hub delta on explicit operator must install a Woodbury correction")
	}
	if e1.Drift() <= 0 || st.Drift != e1.Drift() {
		t.Fatalf("drift %v (stats %v), want positive and consistent", e1.Drift(), st.Drift)
	}
	if _, err := e1.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("corrected engine serialized; want refusal")
	}

	ref, err := Preprocess(gNew, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int{0, 3, g.N() / 2} {
		got, _, err := e1.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ref.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		if d := vec.Dist2(got, want); d > 1e-7 {
			t.Fatalf("seed %d: corrected query off by %v", seed, d)
		}
		const k = 10
		tk1, err := e1.TopK(seed, k)
		if err != nil {
			t.Fatal(err)
		}
		tk2, err := ref.TopK(seed, k)
		if err != nil {
			t.Fatal(err)
		}
		s1 := make(map[int]bool, k)
		for _, r := range tk1 {
			s1[r.Node] = true
		}
		for _, r := range tk2 {
			if !s1[r.Node] {
				t.Fatalf("seed %d: top-%d sets differ (missing node %d)", seed, k, r.Node)
			}
		}
	}

	// Bounded top-k must fall back to full solves (certificate invalid on
	// corrected iterates) yet still return the right set.
	tb, _, err := e1.TopKBounded(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ref.TopK(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr {
		if tb[i].Node != tr[i].Node {
			t.Fatalf("bounded top-k on corrected engine: rank %d node %d want %d", i, tb[i].Node, tr[i].Node)
		}
	}
}

// TestDeltaHubImplicitExact checks the hub path on an implicit-operator
// engine: S and the fused operator are patched exactly (no Woodbury), only
// drift accrues for the stale ILU, and the engine still serializes.
func TestDeltaHubImplicitExact(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 6, 43))
	opts := Options{Variant: VariantFull, HubRatio: 0.2, Tol: 1e-10, ImplicitSchur: true}
	e0, err := Preprocess(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	ops := genHubDeltaOps(rng, g, e0, 4)
	if len(ops) == 0 {
		t.Skip("no hubs")
	}
	gNew := applyOpsToGraph(g, g.N(), ops)
	e1, st, err := e0.ApplyDelta(gNew, ops)
	if err != nil {
		t.Fatal(err)
	}
	if st.Class != DeltaHub || e1.Corrected() {
		t.Fatalf("implicit hub delta: class=%v corrected=%v, want DeltaHub uncorrected", st.Class, e1.Corrected())
	}
	if e1.Drift() <= 0 {
		t.Fatal("implicit hub delta should accrue ILU drift")
	}
	// The patched S must equal the reference bit-for-bit even though the
	// solve trajectory differs (stale preconditioner).
	ref, err := PreprocessWithOrdering(gNew, opts, e1.ord)
	if err != nil {
		t.Fatal(err)
	}
	matBitsEqual(t, "schur", e1.schur, ref.schur)
	matBitsEqual(t, "h22", e1.h22, ref.h22)
	got, _, err := e1.Query(2)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ref.Query(2)
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.Dist2(got, want); d > 1e-7 {
		t.Fatalf("implicit corrected query off by %v", d)
	}
	if _, err := e1.WriteTo(&bytes.Buffer{}); err != nil {
		t.Fatalf("implicit delta engine must stay serializable: %v", err)
	}

	// A follow-up spoke delta re-factors the ILU and clears the drift.
	ops2 := genSpokeDeltaOps(rng, gNew, e1, 3)
	if len(ops2) > 0 {
		g2 := applyOpsToGraph(gNew, gNew.N(), ops2)
		e2, _, err := e1.ApplyDelta(g2, ops2)
		if err != nil {
			t.Fatal(err)
		}
		if e2.Drift() != 0 {
			t.Fatalf("spoke delta should reset drift, got %v", e2.Drift())
		}
	}
}

// TestDeltaDriftFallback checks the rebuild-demand paths: a tiny threshold
// rejects hub deltas with ErrDriftExceeded, and a negative MaxHubDrift
// disables the hub path outright.
func TestDeltaDriftFallback(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 6, 47))
	rng := rand.New(rand.NewSource(23))
	for _, implicit := range []bool{false, true} {
		opts := Options{Variant: VariantFull, HubRatio: 0.2, Tol: 1e-10,
			ImplicitSchur: implicit, MaxHubDrift: 1e-15}
		e0, err := Preprocess(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		ops := genHubDeltaOps(rng, g, e0, 4)
		if len(ops) == 0 {
			t.Skip("no hubs")
		}
		gNew := applyOpsToGraph(g, g.N(), ops)
		if _, _, err := e0.ApplyDelta(gNew, ops); !errors.Is(err, ErrDriftExceeded) {
			t.Fatalf("implicit=%v: err=%v, want ErrDriftExceeded", implicit, err)
		}

		opts.MaxHubDrift = -1
		eNeg, err := Preprocess(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := eNeg.ApplyDelta(gNew, ops); !errors.Is(err, ErrDeltaFull) {
			t.Fatalf("implicit=%v: MaxHubDrift<0: err=%v, want ErrDeltaFull", implicit, err)
		}
	}
}

// TestDeltaFullClassification checks every refusal path returns
// ErrDeltaFull without mutating the receiver.
func TestDeltaFullClassification(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 6, 53))
	opts := Options{Variant: VariantFull, HubRatio: 0.2, Tol: 1e-10}
	e0, err := Preprocess(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ord := e0.ord
	n1, l := ord.N1, ord.N1+ord.N2

	// A deadend gaining its first out-edge.
	var dead int = -1
	for u := 0; u < g.N(); u++ {
		if ord.Perm[u] >= l {
			dead = u
			break
		}
	}
	if dead >= 0 {
		ops := []EdgeDelta{{Src: dead, Dst: 0, Insert: true}}
		gNew := applyOpsToGraph(g, g.N(), ops)
		if _, _, err := e0.ApplyDelta(gNew, ops); !errors.Is(err, ErrDeltaFull) {
			t.Fatalf("deadend source: err=%v, want ErrDeltaFull", err)
		}
	}

	// A spoke edge crossing H11 blocks.
	if len(ord.Blocks) >= 2 {
		var crossOp EdgeDelta
		found := false
	outer:
		for u := 0; u < g.N() && !found; u++ {
			pu := ord.Perm[u]
			if pu >= n1 {
				continue
			}
			b := e0.h11LU.BlockOf(pu)
			for pv := 0; pv < n1; pv++ {
				if e0.h11LU.BlockOf(pv) != b && !g.HasEdge(u, ord.Inv[pv]) {
					crossOp = EdgeDelta{Src: u, Dst: ord.Inv[pv], Insert: true}
					found = true
					continue outer
				}
			}
		}
		if found {
			gNew := applyOpsToGraph(g, g.N(), []EdgeDelta{crossOp})
			if _, _, err := e0.ApplyDelta(gNew, []EdgeDelta{crossOp}); !errors.Is(err, ErrDeltaFull) {
				t.Fatalf("cross-block edge: err=%v, want ErrDeltaFull", err)
			}
		}
	}

	// A new node with out-edges.
	ops := []EdgeDelta{{Src: g.N(), Dst: 0, Insert: true}}
	gNew := applyOpsToGraph(g, g.N()+1, ops)
	if _, _, err := e0.ApplyDelta(gNew, ops); !errors.Is(err, ErrDeltaFull) {
		t.Fatalf("new-node source: err=%v, want ErrDeltaFull", err)
	}

	// An op inconsistent with the updated graph: claims an insert the
	// graph doesn't contain.
	badDst := -1
	for v := 0; v < g.N(); v++ {
		if !g.HasEdge(0, v) {
			badDst = v
			break
		}
	}
	if badDst >= 0 {
		bad := []EdgeDelta{{Src: 0, Dst: badDst, Insert: true}}
		if _, _, err := e0.ApplyDelta(g, bad); !errors.Is(err, ErrDeltaFull) {
			t.Fatalf("inconsistent op: err=%v, want ErrDeltaFull", err)
		}
	}

	// A shrinking graph.
	small := graph.MustNew(2, nil)
	if _, _, err := e0.ApplyDelta(small, nil); !errors.Is(err, ErrDeltaFull) {
		t.Fatalf("shrink: err=%v, want ErrDeltaFull", err)
	}

	// The receiver must still answer correctly after all refusals.
	if _, _, err := e0.Query(0); err != nil {
		t.Fatalf("receiver corrupted by refused deltas: %v", err)
	}
}
