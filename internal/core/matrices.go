package core

import (
	"bepi/internal/par"
	"bepi/internal/sparse"
)

// mat is the read-only matrix contract the query path needs from the
// stored partition blocks and the Schur complement. Both sparse.CSR and
// the bandwidth-lean sparse.CSR32 satisfy it with bit-identical float64
// kernels, so the engine can hold either layout behind one field type and
// switch between them (Options.Compact, SetCompact) without touching the
// query algorithms.
type mat interface {
	Rows() int
	Cols() int
	NNZ() int
	MulVec(dst, x []float64)
	MulVecT(dst, x []float64)
	AddMulVec(dst []float64, alpha float64, x []float64)
	MulVecBatch(dst, x [][]float64)
	MemoryBytes() int64
}

// asCSR returns the wide view of a stored matrix: the matrix itself when
// already wide, a widened copy when compact. Serialization and the
// read-only accessors use it so the on-disk format and the exported API
// stay layout-independent.
func asCSR(m mat) *sparse.CSR {
	switch v := m.(type) {
	case *sparse.CSR:
		return v
	case *sparse.CSR32:
		return v.ToCSR()
	}
	panic("core: unknown matrix implementation")
}

// matSetPool points a stored matrix (of either layout) at a compute pool.
func matSetPool(m mat, p *par.Pool) {
	switch v := m.(type) {
	case *sparse.CSR:
		v.SetPool(p)
	case *sparse.CSR32:
		v.SetPool(p)
	}
}

// matFirstTouch caches a stored matrix's parallel partition and, on a
// sticky pool, first-touches its partition segments from their owning
// workers; see sparse.CSR.FirstTouch.
func matFirstTouch(m mat) {
	switch v := m.(type) {
	case *sparse.CSR:
		v.FirstTouch()
	case *sparse.CSR32:
		v.FirstTouch()
	}
}

// fitsCompact reports whether a matrix's dimensions fit the uint32 index
// range of the compact layout.
func fitsCompact(m mat) bool {
	const lim = int64(1) << 32
	return int64(m.Rows()) < lim && int64(m.Cols()) < lim
}

// compactMat narrows a wide matrix to the compact layout when possible;
// widenMat is the inverse. Both are identity on nil and on matrices
// already in the requested layout.
func compactMat(m mat) mat {
	if c, ok := m.(*sparse.CSR); ok && fitsCompact(c) {
		return sparse.Compact(c)
	}
	return m
}

func widenMat(m mat) mat {
	if c, ok := m.(*sparse.CSR32); ok {
		return c.ToCSR()
	}
	return m
}
