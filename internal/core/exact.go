package core

import (
	"fmt"

	"bepi/internal/dense"
	"bepi/internal/graph"
	"bepi/internal/lu"
	"bepi/internal/par"
	"bepi/internal/reorder"
	"bepi/internal/sparse"
)

// ExactDense computes the exact RWR vector r = c·H⁻¹·q by a dense solve.
// It is the ground truth for accuracy experiments and tests; cost is
// O(n³), so it is only usable on small graphs.
func ExactDense(g *graph.Graph, c float64, seed int) ([]float64, error) {
	n := g.N()
	if seed < 0 || seed >= n {
		return nil, fmt.Errorf("core: seed %d out of range [0,%d)", seed, n)
	}
	h := BuildH(g, nil, c)
	hd := dense.New(n, n)
	col := h.ColIdx()
	val := h.Values()
	for i := 0; i < n; i++ {
		s, e := h.RowRange(i)
		for p := s; p < e; p++ {
			hd.Set(i, col[p], val[p])
		}
	}
	b := make([]float64, n)
	b[seed] = c
	return hd.Solve(b)
}

// SchurProfile reports the sizes that govern the hub-ratio trade-off of
// Figure 4: |S|, |H22| and |H21·H11⁻¹·H12| for a given hub ratio k.
type SchurProfile struct {
	K          float64
	N1, N2, N3 int
	SchurNNZ   int // |S|
	H22NNZ     int // |H22|
	CrossNNZ   int // |H21·H11⁻¹·H12|
}

// ProfileSchur computes the Schur complement for hub ratio k and returns
// the non-zero counts the paper plots in Figure 4. It shares all machinery
// with Preprocess but skips the ILU step. It is the serial case of
// ProfileSchurPool.
func ProfileSchur(g *graph.Graph, k, c float64) (SchurProfile, error) {
	return ProfileSchurPool(g, k, c, nil)
}

// ProfileSchurPool is ProfileSchur with the block factorization and Schur
// build parallelized over the pool (nil runs serially). The column views of
// H12/H21 are built once here and passed through to the Schur kernel.
func ProfileSchurPool(g *graph.Graph, k, c float64, pool *par.Pool) (SchurProfile, error) {
	ord := reorder.HubAndSpoke(g, k)
	h := BuildH(g, ord.Perm, c)
	n1, n2 := ord.N1, ord.N2
	l := n1 + n2
	h11 := h.Block(0, n1, 0, n1)
	h12 := h.Block(0, n1, n1, l)
	h21 := h.Block(n1, l, 0, n1)
	h22 := h.Block(n1, l, n1, l)
	h11LU, err := lu.FactorBlockDiagPool(h11, ord.Blocks, pool)
	if err != nil {
		return SchurProfile{}, fmt.Errorf("core: factoring H11 at k=%v: %w", k, err)
	}
	s := SchurComplementT(h22, h21.Transpose(), h12.Transpose(), h11LU, pool)
	cross := s.Sub(h22).DropZeros(0)
	return SchurProfile{
		K:  k,
		N1: n1, N2: n2, N3: ord.N3,
		SchurNNZ: s.NNZ(),
		H22NNZ:   h22.NNZ(),
		CrossNNZ: cross.NNZ(),
	}, nil
}

// ChooseHubRatio evaluates the candidate hub ratios and returns the one
// minimizing |S| (the BePI-S / BePI selection rule of Algorithm 1 line 2),
// along with the profiles measured. With no candidates it defaults to the
// paper's sweep {0.1, 0.2, 0.3, 0.4, 0.5}. Candidates are profiled
// concurrently on the shared process-wide pool; use ChooseHubRatioPool to
// control the parallelism.
func ChooseHubRatio(g *graph.Graph, candidates []float64, c float64) (float64, []SchurProfile, error) {
	return ChooseHubRatioPool(g, candidates, c, par.Shared())
}

// ChooseHubRatioPool is ChooseHubRatio over an explicit pool (nil profiles
// the candidates serially). Profiles are positional and the selection scans
// them in candidate order, so the chosen ratio — including tie-breaks — and
// any reported error match the serial sweep exactly.
func ChooseHubRatioPool(g *graph.Graph, candidates []float64, c float64, pool *par.Pool) (float64, []SchurProfile, error) {
	if len(candidates) == 0 {
		candidates = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	profiles := make([]SchurProfile, len(candidates))
	errs := make([]error, len(candidates))
	pool.Each(len(candidates), func(i int) {
		profiles[i], errs[i] = ProfileSchurPool(g, candidates[i], c, pool)
	})
	best := candidates[0]
	bestNNZ := -1
	for i, p := range profiles {
		if errs[i] != nil {
			return 0, nil, errs[i]
		}
		if bestNNZ < 0 || p.SchurNNZ < bestNNZ {
			bestNNZ = p.SchurNNZ
			best = candidates[i]
		}
	}
	return best, profiles, nil
}

// RowNormalizedAdjacencyT returns Ãᵀ for the graph, the operator power
// iteration multiplies by.
func RowNormalizedAdjacencyT(g *graph.Graph) *sparse.CSR {
	return g.Adjacency().RowNormalize().Transpose()
}
