package core

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"bepi/internal/gen"
)

// bitsEqual compares two score vectors under Float64bits — the contract
// the compact layout makes with the wide one.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestCompactEngineBitIdenticalQueries is the acceptance test for the
// compact layout on the query path: an engine built with CompactAuto (the
// default) must produce bit-identical score vectors, identical top-k, and
// Float64bits-equal residuals to one built with CompactOff, while its
// index MemoryBytes drop.
func TestCompactEngineBitIdenticalQueries(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 21))
	for _, variant := range []Variant{VariantFull, VariantS} {
		wide, err := Preprocess(g, Options{Variant: variant, Compact: CompactOff})
		if err != nil {
			t.Fatal(err)
		}
		comp, err := Preprocess(g, Options{Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		if wide.Compacted() {
			t.Fatal("CompactOff engine reports compacted")
		}
		if !comp.Compacted() {
			t.Fatal("default (CompactAuto) engine is not compacted")
		}
		if cb, wb := comp.MemoryBytes(), wide.MemoryBytes(); cb >= wb {
			t.Fatalf("%v: compact MemoryBytes %d not below wide %d", variant, cb, wb)
		}
		// The Schur complement must round-trip exactly.
		if !comp.Schur().Equal(wide.Schur()) {
			t.Fatalf("%v: compact Schur differs", variant)
		}
		for _, seed := range []int{0, 7, g.N() - 1} {
			rw, sw, err := wide.Query(seed)
			if err != nil {
				t.Fatal(err)
			}
			rc, sc, err := comp.Query(seed)
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(rw, rc) {
				t.Fatalf("%v seed %d: compact scores differ from wide", variant, seed)
			}
			if math.Float64bits(sw.Residual) != math.Float64bits(sc.Residual) ||
				sw.Iterations != sc.Iterations {
				t.Fatalf("%v seed %d: solve stats differ: %v/%d vs %v/%d",
					variant, seed, sw.Residual, sw.Iterations, sc.Residual, sc.Iterations)
			}
			tw := RankTopK(rw, 10, seed)
			tc := RankTopK(rc, 10, seed)
			for i := range tw {
				if tw[i] != tc[i] {
					t.Fatalf("%v seed %d: top-k differs at %d: %+v vs %+v", variant, seed, i, tw[i], tc[i])
				}
			}
		}
	}
}

// TestCompactIndexBytesHalved pins the ≈2× index-footprint cut: with the
// float64 values shared between layouts, the index bytes (everything
// except values, LU factor payloads, and the permutation) must halve.
func TestCompactIndexBytesHalved(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 22))
	wide, err := Preprocess(g, Options{Compact: CompactOff})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Per stored matrix: wide spends 8 bytes/entry on columns and 8/row on
	// pointers, compact exactly half of each (dims here are far below the
	// int32 cutover). ILU schedules and values are width-independent.
	wideMats := []mat{wide.h12, wide.h21, wide.h31, wide.h32, wide.schur}
	compMats := []mat{comp.h12, comp.h21, comp.h31, comp.h32, comp.schur}
	for i := range wideMats {
		wm, cm := wideMats[i], compMats[i]
		wIdx := wm.MemoryBytes() - int64(wm.NNZ())*8
		cIdx := cm.MemoryBytes() - int64(cm.NNZ())*8
		if wIdx != 2*cIdx {
			t.Fatalf("matrix %d: wide index bytes %d != 2x compact %d", i, wIdx, cIdx)
		}
	}
}

// TestSetCompactRoundTrip toggles one engine between layouts and checks
// the queries stay bit-identical in both directions.
func TestSetCompactRoundTrip(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 7, 23))
	e, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := e.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	memCompact := e.MemoryBytes()
	e.SetCompact(false)
	if e.Compacted() {
		t.Fatal("SetCompact(false) left engine compacted")
	}
	if e.MemoryBytes() <= memCompact {
		t.Fatal("widening did not grow MemoryBytes")
	}
	got, _, err := e.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(want, got) {
		t.Fatal("widened engine changed query results")
	}
	e.SetCompact(true)
	if !e.Compacted() || e.MemoryBytes() != memCompact {
		t.Fatalf("re-compacted engine MemoryBytes %d want %d", e.MemoryBytes(), memCompact)
	}
	got, _, err = e.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(want, got) {
		t.Fatal("re-compacted engine changed query results")
	}
}

// TestCompactSurvivesSaveLoad checks that a compacted engine serializes in
// the layout-independent wide format and that a loaded engine (compacted
// again by default) answers bit-identically.
func TestCompactSurvivesSaveLoad(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 7, 24))
	e, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	l, err := ReadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Compacted() {
		t.Fatal("loaded engine is not compacted by default")
	}
	want, _, err := e.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := l.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(want, got) {
		t.Fatal("loaded engine differs from built engine")
	}
}

// TestImplicitSchurMatchesExplicit checks the fused operator: it must
// apply exactly S = H22 − H21·H11⁻¹·H12 (validated against the dense
// expansion of the explicit S within fill-in rounding) and the resulting
// queries must converge to the explicit engine's answers within solver
// tolerance.
func TestImplicitSchurMatchesExplicit(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 7, 25))
	const tol = 1e-9
	exp, err := Preprocess(g, Options{Tol: tol})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := Preprocess(g, Options{Tol: tol, ImplicitSchur: true})
	if err != nil {
		t.Fatal(err)
	}
	if imp.h22 == nil {
		t.Fatal("implicit engine did not retain H22")
	}
	// Operator check: fused apply vs explicit S SpMV on a few basis-ish
	// vectors. VariantFull sparsifies nothing away at k=0.2 defaults, so
	// the two agree to rounding.
	n2 := imp.ord.N2
	op := imp.newSchurOperator()
	x := make([]float64, n2)
	yf := make([]float64, n2)
	ye := make([]float64, n2)
	for trial := 0; trial < 3; trial++ {
		for i := range x {
			x[i] = float64((i+trial)%5) - 2
		}
		op.MulVec(yf, x)
		exp.schur.MulVec(ye, x)
		for i := range yf {
			if d := math.Abs(yf[i] - ye[i]); d > 1e-8 {
				t.Fatalf("trial %d: fused operator differs from explicit S at %d by %v", trial, i, d)
			}
		}
	}
	for _, seed := range []int{1, 11} {
		re, _, err := exp.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		ri, st, err := imp.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		if st.Residual > tol {
			t.Fatalf("implicit solve residual %v above tol", st.Residual)
		}
		for i := range re {
			if d := math.Abs(re[i] - ri[i]); d > 1e-7 {
				t.Fatalf("seed %d: implicit score[%d] differs by %v", seed, i, d)
			}
		}
	}
}

// TestKernelHookObservesSolve checks SetKernelHook fires for both hot-path
// kernels with plausible payloads.
func TestKernelHookObservesSolve(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 7, 26))
	e, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	counts := map[string]int{}
	var bytesSum int64
	e.SetKernelHook(func(kernel string, seconds float64, b int64) {
		mu.Lock()
		defer mu.Unlock()
		counts[kernel]++
		bytesSum += b
		if seconds < 0 || b <= 0 {
			t.Errorf("kernel %s: bad sample (%v s, %d bytes)", kernel, seconds, b)
		}
	})
	if _, st, err := e.Query(2); err != nil {
		t.Fatal(err)
	} else if counts[KernelSchur] < st.Iterations || counts[KernelPrecond] == 0 {
		t.Fatalf("hook counts %v for %d iterations", counts, st.Iterations)
	}
	if bytesSum < e.Schur().MemoryBytes() {
		t.Fatalf("bytes moved %d implausibly small", bytesSum)
	}
	e.SetKernelHook(nil)
	before := counts[KernelSchur]
	if _, _, err := e.Query(2); err != nil {
		t.Fatal(err)
	}
	if counts[KernelSchur] != before {
		t.Fatal("removed hook still fired")
	}
}

// TestParallelCompactQueriesBitIdentical runs concurrent queries against a
// compacted engine with a multi-worker pool and checks every result equals
// the serial wide reference bit for bit — the end-to-end composition of the
// CSR32 kernels, the level-scheduled ILU sweeps, and the shared pool.
func TestParallelCompactQueriesBitIdentical(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 27))
	ref, err := Preprocess(g, Options{Compact: CompactOff, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Preprocess(g, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int{0, 3, 9, 100, 511}
	wants := make([][]float64, len(seeds))
	for i, s := range seeds {
		if wants[i], _, err = ref.Query(s); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(seeds))
	for i, s := range seeds {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			got, _, err := e.Query(s)
			if err != nil {
				errCh <- err
				return
			}
			if !bitsEqual(wants[i], got) {
				t.Errorf("seed %d: parallel compact query differs from serial wide", s)
			}
		}(i, s)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
