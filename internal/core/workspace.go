package core

import (
	"context"
	"fmt"
	"time"

	"bepi/internal/solver"
)

// Workspace holds the block-elimination temporaries and the iterative
// solver's Krylov workspace for one engine, sized lazily to the largest
// batch it has seen. A workspace is owned by one QueryVectorBatch call at a
// time (it is not safe for concurrent use) but is reused across calls, so a
// serving worker that runs query after query allocates nothing on the hot
// path except the result vectors it hands back.
type Workspace struct {
	e *Engine
	// Per-batch-slot buffers in the reordered space: the permuted query,
	// the H11 back-substitution temporaries, and the three result blocks.
	qps, t1s, qt2s, r1s, r2s, r3s, tmps [][]float64
	// sel holds gathered views of the buffers above for the active batch
	// slots, reused across phases.
	sel [7][][]float64
	slv solver.Workspace
	// schurOp is this workspace's fused Schur operator (engines built with
	// Options.ImplicitSchur only): its n1-length temporary is owned here so
	// concurrent workspaces never share one and repeated solves allocate
	// nothing. Built lazily by Engine.schurOperator.
	schurOp *SchurOperator
	// tkScores (length n, permuted order) is the bounded top-k search's
	// scratch: the mid-solve score snapshot the gap checks rank. One buffer
	// serves a whole batch — the per-item Schur solves run sequentially.
	tkScores []float64
}

// NewWorkspace returns an empty workspace for the engine. Buffers are
// allocated on first use and grow to the largest batch size submitted.
func (e *Engine) NewWorkspace() *Workspace { return &Workspace{e: e} }

// grow ensures the workspace has buffers for a batch of k queries.
func (w *Workspace) grow(k int) {
	n1, n2 := w.e.ord.N1, w.e.ord.N2
	n3 := w.e.n - n1 - n2
	for len(w.qps) < k {
		w.qps = append(w.qps, make([]float64, w.e.n))
		w.t1s = append(w.t1s, make([]float64, n1))
		w.qt2s = append(w.qt2s, make([]float64, n2))
		w.r1s = append(w.r1s, make([]float64, n1))
		w.r2s = append(w.r2s, make([]float64, n2))
		w.r3s = append(w.r3s, make([]float64, n3))
		w.tmps = append(w.tmps, make([]float64, n3))
	}
}

// growTopK sizes the bounded top-k scratch buffer.
func (w *Workspace) growTopK() {
	if len(w.tkScores) < w.e.n {
		w.tkScores = make([]float64, w.e.n)
	}
}

// gather fills w.sel[slot] with buf[k] for every active k and returns it.
func (w *Workspace) gather(slot int, buf [][]float64, active []int) [][]float64 {
	s := w.sel[slot][:0]
	for _, k := range active {
		s = append(s, buf[k])
	}
	w.sel[slot] = s
	return s
}

// QueryVectorWS is QueryVector with an explicit context and workspace: the
// context cancels the iterative Schur solve (per-query deadlines on the
// serving path), and the workspace, when non-nil, supplies every temporary
// so the only allocation left is the returned score vector.
func (e *Engine) QueryVectorWS(ctx context.Context, q []float64, ws *Workspace) ([]float64, QueryStats, error) {
	res, stats, errs := e.QueryVectorBatch([]context.Context{ctx}, [][]float64{q}, ws)
	return res[0], stats[0], errs[0]
}

// QueryVectorBatch answers a batch of personalized queries in one
// block-elimination pass (Algorithm 4 applied to a multi-column right-hand
// side). The H11 back-substitutions and the SpMVs over H12/H21/H31/H32 are
// shared-structure across the batch — each matrix is traversed once per
// phase for all K queries — while the iterative Schur solves run per query
// so that each query's context (deadline, cancellation) is honored
// individually. Results, stats, and errors are positional: res[k] is nil
// iff errs[k] is non-nil. A failed or canceled query never poisons its
// batchmates. Duration in each query's stats is the wall time of the whole
// batch, i.e. the latency that query experienced at the engine.
//
// ctxs may be nil (no cancellation) and ws may be nil (allocate
// per call); a batch of one with a nil context computes bit-identical
// results to QueryVector.
func (e *Engine) QueryVectorBatch(ctxs []context.Context, qs [][]float64, ws *Workspace) ([][]float64, []QueryStats, []error) {
	K := len(qs)
	res := make([][]float64, K)
	stats := make([]QueryStats, K)
	errs := make([]error, K)
	if K == 0 {
		return res, stats, errs
	}
	start := time.Now()
	if ws == nil || ws.e != e {
		ws = e.NewWorkspace()
	}
	ws.grow(K)

	active := e.admitBatch(ctxs, qs, errs)
	permuteDur := e.permutePhase(ws, qs, active)
	forwardDur := e.forwardPhase(ws, active)

	// Solve S·r2 = q̃2 per query (line 4) — iterative, so per-query
	// contexts apply here; the Krylov workspace is shared sequentially.
	op := e.schurOperator(ws)
	solved := make([]int, 0, len(active))
	for _, k := range active {
		tSolve := time.Now()
		r2, st, err := e.solveSchurCtx(batchCtx(ctxs, k), ws.qt2s[k], op, &ws.slv, nil)
		stats[k].Iterations, stats[k].Residual = st.Iterations, st.Residual
		stats[k].Stages.Solve = time.Since(tSolve)
		if err != nil {
			errs[k] = fmt.Errorf("core: solving Schur system: %w", err)
			continue
		}
		// r2 points into the shared solver workspace; the next solve
		// clobbers it, so park it in this slot's own buffer.
		copy(ws.r2s[k], r2)
		solved = append(solved, k)
	}
	active = solved

	tPhase := time.Now()
	e.backPhase(ws, active, res)
	backDur := time.Since(tPhase)
	elapsed := time.Since(start)
	for k := range stats {
		stats[k].Duration = elapsed
		stats[k].Stages.Permute = permuteDur
		stats[k].Stages.Forward = forwardDur
		stats[k].Stages.Back = backDur
	}
	return res, stats, errs
}

// batchCtx resolves the k-th per-query context of a batch (nil-tolerant).
func batchCtx(ctxs []context.Context, k int) context.Context {
	if ctxs == nil || ctxs[k] == nil {
		return context.Background()
	}
	return ctxs[k]
}

// admitBatch validates query lengths and contexts, recording rejections in
// errs and returning the slot indices that proceed.
func (e *Engine) admitBatch(ctxs []context.Context, qs [][]float64, errs []error) []int {
	active := make([]int, 0, len(qs))
	for k, q := range qs {
		if len(q) != e.n {
			errs[k] = fmt.Errorf("core: query vector length %d want %d", len(q), e.n)
			continue
		}
		if err := batchCtx(ctxs, k).Err(); err != nil {
			errs[k] = err
			continue
		}
		active = append(active, k)
	}
	return active
}

// permutePhase scatters each active query into the reordered space and
// forms t1 = c·q1, the setup shared by every block-elimination pass.
func (e *Engine) permutePhase(ws *Workspace, qs [][]float64, active []int) time.Duration {
	tPhase := time.Now()
	n1 := e.ord.N1
	c := e.opts.C
	for _, k := range active {
		qp := ws.qps[k]
		for i := range qp {
			qp[i] = 0
		}
		for old, v := range qs[k] {
			if v != 0 {
				qp[e.ord.Perm[old]] = v
			}
		}
		t1 := ws.t1s[k]
		for i, v := range qp[:n1] {
			t1[i] = c * v
		}
	}
	return time.Since(tPhase)
}

// forwardPhase computes q̃2 = c·q2 − H21·(H11⁻¹·(c·q1)) for the active
// slots (Algorithm 4, line 3), batched: one block-diagonal substitution
// sweep and one H21 traversal serve every query in the batch; blocks (and
// SpMV rows) run in parallel over the engine pool.
func (e *Engine) forwardPhase(ws *Workspace, active []int) time.Duration {
	tPhase := time.Now()
	n1, n2 := e.ord.N1, e.ord.N2
	l := n1 + n2
	c := e.opts.C
	e.h11LU.SolveBatchPool(ws.gather(0, ws.t1s, active), e.pool)
	e.h21.MulVecBatch(ws.gather(1, ws.qt2s, active), ws.gather(0, ws.t1s, active))
	for _, k := range active {
		qp, qt2 := ws.qps[k], ws.qt2s[k]
		q2 := qp[n1:l]
		for i := range qt2 {
			qt2[i] = c*q2[i] - qt2[i]
		}
	}
	return time.Since(tPhase)
}

// backPhase reconstructs r1 and r3 from each active slot's solved r2
// (already parked in ws.r2s) and un-permutes the concatenated result into
// a fresh original-id vector per slot (Algorithm 4, lines 5-7). The result
// vectors are the one allocation that must escape.
func (e *Engine) backPhase(ws *Workspace, active []int, res [][]float64) {
	n1, n2 := e.ord.N1, e.ord.N2
	l := n1 + n2
	c := e.opts.C

	// r1 = H11⁻¹·(c·q1 − H12·r2)   (line 5), batched.
	e.h12.MulVecBatch(ws.gather(2, ws.r1s, active), ws.gather(3, ws.r2s, active))
	for _, k := range active {
		qp, r1 := ws.qps[k], ws.r1s[k]
		for i := range r1 {
			r1[i] = c*qp[i] - r1[i]
		}
	}
	e.h11LU.SolveBatchPool(ws.gather(2, ws.r1s, active), e.pool)

	// r3 = c·q3 − H31·r1 − H32·r2   (line 6), batched.
	e.h31.MulVecBatch(ws.gather(4, ws.r3s, active), ws.gather(2, ws.r1s, active))
	e.h32.MulVecBatch(ws.gather(5, ws.tmps, active), ws.gather(3, ws.r2s, active))
	for _, k := range active {
		qp, r3, tmp := ws.qps[k], ws.r3s[k], ws.tmps[k]
		q3 := qp[l:]
		for i := range r3 {
			r3[i] = c*q3[i] - r3[i] - tmp[i]
		}
	}

	// Concatenate and un-permute back to original ids (line 7).
	for _, k := range active {
		res[k] = e.unpermuteSlot(ws, k)
	}
}

// unpermuteSlot concatenates a slot's r1/r2/r3 blocks into a fresh
// original-id vector — the final step of backPhase on its own, for callers
// whose r1/r3 are already current (the bounded top-k search reuses the
// reconstruction its certifying gap check just performed).
func (e *Engine) unpermuteSlot(ws *Workspace, k int) []float64 {
	n1 := e.ord.N1
	l := n1 + e.ord.N2
	r := make([]float64, e.n)
	r1, r2, r3 := ws.r1s[k], ws.r2s[k], ws.r3s[k]
	for old := 0; old < e.n; old++ {
		nw := e.ord.Perm[old]
		switch {
		case nw < n1:
			r[old] = r1[nw]
		case nw < l:
			r[old] = r2[nw-n1]
		default:
			r[old] = r3[nw-l]
		}
	}
	return r
}
