package core

import (
	"bytes"
	"math/rand"
	"testing"

	"bepi/internal/gen"
	"bepi/internal/vec"
)

func TestEngineSerializationRoundTrip(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 6, 21))
	for _, v := range []Variant{VariantB, VariantS, VariantFull} {
		orig, err := Preprocess(g, Options{Variant: v, HubRatio: 0.2, Tol: 1e-10})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		var buf bytes.Buffer
		if _, err := orig.WriteTo(&buf); err != nil {
			t.Fatalf("%v: WriteTo: %v", v, err)
		}
		back, err := ReadEngine(&buf)
		if err != nil {
			t.Fatalf("%v: ReadEngine: %v", v, err)
		}
		if back.N() != orig.N() {
			t.Fatalf("%v: n = %d want %d", v, back.N(), orig.N())
		}
		if back.Preconditioned() != (v == VariantFull) {
			t.Fatalf("%v: preconditioner state lost", v)
		}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 3; trial++ {
			seed := rng.Intn(g.N())
			want, _, err := orig.Query(seed)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := back.Query(seed)
			if err != nil {
				t.Fatal(err)
			}
			if d := vec.Dist2(got, want); d > 1e-12 {
				t.Fatalf("%v seed %d: reloaded engine differs by %v", v, seed, d)
			}
		}
	}
}

func TestReadEngineRejectsGarbage(t *testing.T) {
	if _, err := ReadEngine(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := ReadEngine(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty stream")
	}
}

func TestReadEngineRejectsTruncated(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(7, 5, 22))
	e, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{10, len(raw) / 2, len(raw) - 5} {
		if _, err := ReadEngine(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("expected error for stream cut at %d", cut)
		}
	}
}
