package core

import (
	"fmt"
	"math"
	"math/rand"

	"bepi/internal/solver"
	"bepi/internal/vec"
)

// AccuracyBound estimates the Theorem-4 error bound for a query on the
// given seed:
//
//	‖r* − r‖₂ ≤ ( √((α‖H31‖₂ + ‖H32‖₂)² + α² + 1) · ‖q̃2‖₂ / σmin(S) ) · ε
//
// with α = ‖H12‖₂ / σmin(H11). Matrix 2-norms are estimated by power
// iteration on AᵀA and the smallest singular values by inverse power
// iteration (using the block LU of H11 and GMRES solves on S), so the
// returned value is a sharp numerical estimate rather than a loose analytic
// envelope. Multiplying by the solver tolerance ε gives the guaranteed
// error level; inverting the formula calibrates ε for a target accuracy.
func (e *Engine) AccuracyBound(seed int) (float64, error) {
	if seed < 0 || seed >= e.n {
		return 0, fmt.Errorf("core: seed %d out of range [0,%d)", seed, e.n)
	}
	const (
		normIters = 30
		seedRNG   = 424242
	)
	n1, n2 := e.ord.N1, e.ord.N2
	if n2 == 0 {
		return 0, nil
	}
	c := e.opts.C

	// ‖q̃2‖ for this seed.
	qp := make([]float64, e.n)
	qp[e.ord.Perm[seed]] = 1
	t1 := make([]float64, n1)
	for i := 0; i < n1; i++ {
		t1[i] = c * qp[i]
	}
	e.h11LU.Solve(t1)
	qt2 := make([]float64, n2)
	e.h21.MulVec(qt2, t1)
	for i := range qt2 {
		qt2[i] = c*qp[n1+i] - qt2[i]
	}
	normQt2 := vec.Norm2(qt2)

	normH12 := Norm2Est(e.h12, normIters, seedRNG)
	normH31 := Norm2Est(e.h31, normIters, seedRNG+1)
	normH32 := Norm2Est(e.h32, normIters, seedRNG+2)

	sminH11, err := e.sminH11(normIters, seedRNG+3)
	if err != nil {
		return 0, err
	}
	sminS, err := e.sminSchur(normIters, seedRNG+4)
	if err != nil {
		return 0, err
	}

	alpha := 0.0
	if n1 > 0 {
		alpha = normH12 / sminH11
	}
	t := alpha*normH31 + normH32
	return math.Sqrt(t*t+alpha*alpha+1) * normQt2 / sminS, nil
}

// Norm2Est estimates ‖A‖₂ by power iteration on AᵀA. It accepts either
// stored matrix layout (sparse.CSR or sparse.CSR32); the float64 kernels
// agree bitwise, so the estimate is layout-independent.
func Norm2Est(a mat, iters int, seed int64) float64 {
	if a.NNZ() == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, a.Cols())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, a.Rows())
	var sigma float64
	for it := 0; it < iters; it++ {
		nx := vec.Norm2(x)
		if nx == 0 {
			return 0
		}
		vec.Scale(1/nx, x)
		a.MulVec(y, x)
		sigma = vec.Norm2(y)
		a.MulVecT(x, y)
	}
	return sigma
}

// sminH11 estimates σmin(H11) by inverse power iteration on (H11ᵀH11)⁻¹,
// using the precomputed block LU for the solves.
func (e *Engine) sminH11(iters int, seed int64) (float64, error) {
	n1 := e.ord.N1
	if n1 == 0 {
		return 1, nil
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n1)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	var smin float64
	for it := 0; it < iters; it++ {
		nx := vec.Norm2(x)
		if nx == 0 {
			return 0, fmt.Errorf("core: σmin(H11) iteration collapsed")
		}
		vec.Scale(1/nx, x)
		e.h11LU.SolveT(x) // y = H11⁻ᵀ x
		e.h11LU.Solve(x)  // z = H11⁻¹ y  →  (H11ᵀH11)⁻¹ x
		lambda := vec.Norm2(x)
		smin = 1 / math.Sqrt(lambda)
	}
	return smin, nil
}

// sminSchur estimates σmin(S) by inverse power iteration with GMRES solves
// on S and Sᵀ.
func (e *Engine) sminSchur(iters int, seed int64) (float64, error) {
	n2 := e.ord.N2
	if n2 == 0 {
		return 1, nil
	}
	st := asCSR(e.schur).Transpose()
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n2)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	opts := solver.GMRESOptions{Tol: 1e-10, MaxIter: 500}
	var smin float64
	for it := 0; it < iters; it++ {
		nx := vec.Norm2(x)
		if nx == 0 {
			return 0, fmt.Errorf("core: σmin(S) iteration collapsed")
		}
		vec.Scale(1/nx, x)
		y, _, err := solver.GMRES(st, x, opts)
		if err != nil {
			return 0, fmt.Errorf("core: σmin(S) transpose solve: %w", err)
		}
		z, _, err := solver.GMRES(e.schur, y, opts)
		if err != nil {
			return 0, fmt.Errorf("core: σmin(S) solve: %w", err)
		}
		copy(x, z)
		lambda := vec.Norm2(x)
		smin = 1 / math.Sqrt(lambda)
	}
	return smin, nil
}

// ToleranceForTarget returns the solver tolerance ε that guarantees
// ‖r* − r‖₂ ≤ target for queries on the given seed, by inverting the
// Theorem-4 bound.
func (e *Engine) ToleranceForTarget(seed int, target float64) (float64, error) {
	if target <= 0 {
		return 0, fmt.Errorf("core: target accuracy must be positive, got %v", target)
	}
	kappa, err := e.AccuracyBound(seed)
	if err != nil {
		return 0, err
	}
	if kappa == 0 {
		return target, nil
	}
	return target / kappa, nil
}
