package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"bepi/internal/solver"
	"bepi/internal/vec"
)

// AccuracyBound estimates the Theorem-4 error bound for a query on the
// given seed:
//
//	‖r* − r‖₂ ≤ ( √((α‖H31‖₂ + ‖H32‖₂)² + α² + 1) · ‖q̃2‖₂ / σmin(S) ) · ε
//
// with α = ‖H12‖₂ / σmin(H11). Matrix 2-norms are estimated by power
// iteration on AᵀA and the smallest singular values by inverse power
// iteration (using the block LU of H11 and GMRES solves on S), so the
// returned value is a sharp numerical estimate rather than a loose analytic
// envelope. Multiplying by the solver tolerance ε gives the guaranteed
// error level; inverting the formula calibrates ε for a target accuracy.
func (e *Engine) AccuracyBound(seed int) (float64, error) {
	if seed < 0 || seed >= e.n {
		return 0, fmt.Errorf("core: seed %d out of range [0,%d)", seed, e.n)
	}
	if e.ord.N2 == 0 {
		return 0, nil
	}
	factor, err := e.boundFactor()
	if err != nil {
		return 0, err
	}
	return factor * e.normQt2(seed), nil
}

// normQt2 computes ‖q̃2‖₂ for a single-seed query — the seed-dependent part
// of the Theorem-4 bound, one block back-substitution and one H21 traversal.
func (e *Engine) normQt2(seed int) float64 {
	n1, n2 := e.ord.N1, e.ord.N2
	c := e.opts.C
	qp := make([]float64, e.n)
	qp[e.ord.Perm[seed]] = 1
	t1 := make([]float64, n1)
	for i := 0; i < n1; i++ {
		t1[i] = c * qp[i]
	}
	e.h11LU.Solve(t1)
	qt2 := make([]float64, n2)
	e.h21.MulVec(qt2, t1)
	for i := range qt2 {
		qt2[i] = c*qp[n1+i] - qt2[i]
	}
	return vec.Norm2(qt2)
}

// boundFactor returns the cached seed-independent part of the Theorem-4
// bound, √((α‖H31‖₂ + ‖H32‖₂)² + α² + 1) / σmin(S) with
// α = ‖H12‖₂/σmin(H11): multiply it by ‖q̃2‖₂ to get the per-seed κ such
// that ‖r* − r‖₂ ≤ κ·ε. The estimates are computed once per engine (they
// run dozens of GMRES solves on S) and memoized, failure included.
func (e *Engine) boundFactor() (float64, error) {
	e.bndOnce.Do(func() {
		e.bndFactor, e.bndErr = e.computeBoundFactor()
	})
	return e.bndFactor, e.bndErr
}

// CalibrateBound forces the one-time estimation of both engine-level
// accuracy factors: the Theorem-4 envelope behind AccuracyBound (norm and
// singular-value estimates — dozens of GMRES solves on S) and the
// empirical ℓ∞ error-to-residual ratio behind the bounded top-k
// certificate (a handful of instrumented reference solves). Afterwards
// every bound evaluation is cheap. The bounded top-k path calibrates
// lazily on its first query — services that care about first-query latency
// call this during warmup instead.
func (e *Engine) CalibrateBound() error {
	if e.ord.N2 == 0 {
		return nil
	}
	if _, err := e.boundFactor(); err != nil {
		return err
	}
	_, err := e.topkFactor()
	return err
}

// topkFactor returns the memoized calibrated ratio behind the bounded
// top-k certificate: the largest observed per-node (ℓ∞) score error per
// unit of the solver's reported residual times ‖q̃2‖, measured on
// instrumented reference solves against the engine-tolerance solution.
// Calibrating against the exact residual metric the solver hands every
// probe (relative, and preconditioned when the engine runs ILU) makes the
// per-iteration radius free at query time — no extra operator apply — and
// folds the preconditioner's conditioning into the measured ratio. The
// reference is exactly the vector Engine.TopK ranks, so a radius from this
// factor bounds the quantity the set-equality contract actually depends
// on. The Theorem-4 ℓ2 envelope (boundFactor) stays available for a-priori
// analysis, but as a per-node radius it is orders too conservative to
// ever fire at scale; the calibrated ratio is sharp, and topkBoundSafety
// inflates it at every check to absorb sampling error.
func (e *Engine) topkFactor() (float64, error) {
	e.tkOnce.Do(func() {
		e.tkFactor, e.tkErr = e.computeTopKFactor()
	})
	return e.tkFactor, e.tkErr
}

// computeTopKFactor runs the instrumented reference solves behind
// topkFactor. Only topkFactor (under its Once) calls it. A zero result
// (trivial graph: every sampled solve converges in under two iterations)
// disables the bounded path — there is nothing to save on such engines.
func (e *Engine) computeTopKFactor() (float64, error) {
	const (
		calSamples  = 4     // nontrivial reference solves to calibrate on
		calMaxSeeds = 16    // candidate seeds tried to find them
		calMaxIters = 48    // iterates captured per solve
		calFloor    = 1e-13 // errors at rounding level carry no signal
		calSeedRNG  = 424242 + 7
	)
	if e.ord.N2 == 0 {
		return 0, nil
	}
	ws := e.NewWorkspace()
	ws.grow(1)
	ws.growTopK()
	ref := make([]float64, e.n)
	cur := make([]float64, e.n)
	rng := rand.New(rand.NewSource(calSeedRNG))
	factor := 0.0
	samples := 0
	type calIter struct {
		residual float64
		x        []float64
	}
	for try := 0; try < calMaxSeeds && samples < calSamples; try++ {
		seed := rng.Intn(e.n)
		q := make([]float64, e.n)
		q[seed] = 1
		qs := [][]float64{q}
		errs := make([]error, 1)
		active := e.admitBatch(nil, qs, errs)
		if len(active) == 0 {
			continue
		}
		e.permutePhase(ws, qs, active)
		e.forwardPhase(ws, active)
		op, opts := e.schurSolveOptions(context.Background(), e.schurOperator(ws), &ws.slv)
		var iterates []calIter
		opts.Probe = func(iter int, residual float64, iterate func() []float64) {
			if len(iterates) < calMaxIters {
				iterates = append(iterates, calIter{residual, append([]float64(nil), iterate()...)})
			}
		}
		r2, st, err := e.runSchurSolve(op, ws.qt2s[0], opts)
		if err != nil {
			return 0, fmt.Errorf("core: top-k calibration solve on seed %d: %w", seed, err)
		}
		if st.Iterations < 2 || len(iterates) == 0 {
			continue
		}
		samples++
		e.reconstructSlot(ws, 0, r2, ref)
		qt2Norm := vec.Norm2(ws.qt2s[0])
		for _, it := range iterates {
			rn := it.residual * qt2Norm
			if rn == 0 {
				continue
			}
			e.reconstructSlot(ws, 0, it.x, cur)
			var errInf float64
			for j := range cur {
				if d := math.Abs(cur[j] - ref[j]); d > errInf {
					errInf = d
				}
			}
			if errInf <= calFloor {
				continue
			}
			if r := errInf / rn; r > factor {
				factor = r
			}
		}
	}
	return factor, nil
}

// computeBoundFactor runs the norm and singular-value estimates behind
// boundFactor. Only boundFactor (under its Once) calls it.
func (e *Engine) computeBoundFactor() (float64, error) {
	const (
		normIters = 30
		seedRNG   = 424242
	)
	n1, n2 := e.ord.N1, e.ord.N2
	if n2 == 0 {
		return 0, nil
	}

	normH12 := Norm2Est(e.h12, normIters, seedRNG)
	normH31 := Norm2Est(e.h31, normIters, seedRNG+1)
	normH32 := Norm2Est(e.h32, normIters, seedRNG+2)

	sminH11, err := e.sminH11(normIters, seedRNG+3)
	if err != nil {
		return 0, err
	}
	sminS, err := e.sminSchur(normIters, seedRNG+4)
	if err != nil {
		return 0, err
	}

	alpha := 0.0
	if n1 > 0 {
		alpha = normH12 / sminH11
	}
	t := alpha*normH31 + normH32
	return math.Sqrt(t*t+alpha*alpha+1) / sminS, nil
}

// Norm2Est estimates ‖A‖₂ by power iteration on AᵀA. It accepts either
// stored matrix layout (sparse.CSR or sparse.CSR32); the float64 kernels
// agree bitwise, so the estimate is layout-independent.
func Norm2Est(a mat, iters int, seed int64) float64 {
	if a.NNZ() == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, a.Cols())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, a.Rows())
	var sigma float64
	for it := 0; it < iters; it++ {
		nx := vec.Norm2(x)
		if nx == 0 {
			return 0
		}
		vec.Scale(1/nx, x)
		a.MulVec(y, x)
		sigma = vec.Norm2(y)
		a.MulVecT(x, y)
	}
	return sigma
}

// sminH11 estimates σmin(H11) by inverse power iteration on (H11ᵀH11)⁻¹,
// using the precomputed block LU for the solves.
func (e *Engine) sminH11(iters int, seed int64) (float64, error) {
	n1 := e.ord.N1
	if n1 == 0 {
		return 1, nil
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n1)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	var smin float64
	for it := 0; it < iters; it++ {
		nx := vec.Norm2(x)
		if nx == 0 {
			return 0, fmt.Errorf("core: σmin(H11) iteration collapsed")
		}
		vec.Scale(1/nx, x)
		e.h11LU.SolveT(x) // y = H11⁻ᵀ x
		e.h11LU.Solve(x)  // z = H11⁻¹ y  →  (H11ᵀH11)⁻¹ x
		lambda := vec.Norm2(x)
		smin = 1 / math.Sqrt(lambda)
	}
	return smin, nil
}

// sminSchur estimates σmin(S) by inverse power iteration with GMRES solves
// on S and Sᵀ.
func (e *Engine) sminSchur(iters int, seed int64) (float64, error) {
	n2 := e.ord.N2
	if n2 == 0 {
		return 1, nil
	}
	st := asCSR(e.schur).Transpose()
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n2)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	opts := solver.GMRESOptions{Tol: 1e-10, MaxIter: 500}
	var smin float64
	for it := 0; it < iters; it++ {
		nx := vec.Norm2(x)
		if nx == 0 {
			return 0, fmt.Errorf("core: σmin(S) iteration collapsed")
		}
		vec.Scale(1/nx, x)
		y, _, err := solver.GMRES(st, x, opts)
		if err != nil {
			return 0, fmt.Errorf("core: σmin(S) transpose solve: %w", err)
		}
		z, _, err := solver.GMRES(e.schur, y, opts)
		if err != nil {
			return 0, fmt.Errorf("core: σmin(S) solve: %w", err)
		}
		copy(x, z)
		lambda := vec.Norm2(x)
		smin = 1 / math.Sqrt(lambda)
	}
	return smin, nil
}

// ToleranceForTarget returns the solver tolerance ε that guarantees
// ‖r* − r‖₂ ≤ target for queries on the given seed, by inverting the
// Theorem-4 bound.
func (e *Engine) ToleranceForTarget(seed int, target float64) (float64, error) {
	if target <= 0 {
		return 0, fmt.Errorf("core: target accuracy must be positive, got %v", target)
	}
	kappa, err := e.AccuracyBound(seed)
	if err != nil {
		return 0, err
	}
	if kappa == 0 {
		return target, nil
	}
	return target / kappa, nil
}
