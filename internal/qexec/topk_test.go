package qexec

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"bepi/internal/core"
	"bepi/internal/gen"
)

// skewedEng builds a fresh hub-heavy engine on which the bounded top-k
// certificate actually fires (the shared eng(t) fixture is too small and
// uniform to exercise early stopping reliably).
func skewedEng(t testing.TB) *core.Engine {
	t.Helper()
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 42))
	e, err := core.Preprocess(g, core.Options{Variant: core.VariantFull, HubRatio: 0.2})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	if err := e.CalibrateBound(); err != nil {
		t.Fatalf("CalibrateBound: %v", err)
	}
	return e
}

// sameTopKSet fails unless both rankings name the same node set.
func sameTopKSet(t *testing.T, tag string, want, got []core.Ranked) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: size mismatch: want %d, got %d", tag, len(want), len(got))
	}
	set := make(map[int]bool, len(want))
	for _, r := range want {
		set[r.Node] = true
	}
	for _, r := range got {
		if !set[r.Node] {
			t.Fatalf("%s: node %d not in expected top-k\nwant %v\ngot  %v", tag, r.Node, want, got)
		}
	}
}

// TestTopKMatchesFullSolve checks the executor's bounded TopK returns the
// same set as the engine's full solve across seeds and ks, and that the
// bounded path is actually taken (TopKSolves counted).
func TestTopKMatchesFullSolve(t *testing.T) {
	e := skewedEng(t)
	ex := New(e, Config{CacheEntries: -1}) // no cache: force the bounded path
	defer ex.Close()
	ctx := context.Background()
	for _, seed := range []int{0, 7, 123} {
		for _, k := range []int{1, 10, 100} {
			want, err := e.TopK(seed, k)
			if err != nil {
				t.Fatal(err)
			}
			got, res, err := ex.TopK(ctx, seed, k)
			if err != nil {
				t.Fatal(err)
			}
			sameTopKSet(t, fmt.Sprintf("seed %d k %d early=%v", seed, k, res.EarlyStopped), want, got)
		}
	}
	m := ex.Metrics()
	if m.TopKSolves == 0 {
		t.Fatal("no bounded top-k solves counted — TopK is not routing to the bounded path")
	}
	if m.EarlyStops == 0 {
		t.Fatal("no early stops on a skewed graph — the certificate never fired")
	}
}

// TestTopKCacheHitAnyK is the regression for the cache interaction: a
// cached full score vector must satisfy a TopK for ANY k — including a k
// larger than any previously requested — with a rank only, no re-solve.
func TestTopKCacheHitAnyK(t *testing.T) {
	e := skewedEng(t)
	ex := New(e, Config{})
	defer ex.Close()
	ctx := context.Background()
	const seed = 3
	full, err := ex.Query(ctx, seed)
	if err != nil {
		t.Fatal(err)
	}
	if full.Cached {
		t.Fatal("first query cannot be a cache hit")
	}
	executed := ex.Metrics().Executed

	top, res, err := ex.TopK(ctx, seed, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("TopK after Query must be served from the cached full vector")
	}
	want := core.RankTopK(full.Scores, 5, seed)
	sameTopKSet(t, "k=5", want, top)

	// Larger k than anything asked before: still a hit, still no solve.
	top, res, err = ex.TopK(ctx, seed, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("larger-k TopK must still rank the cached full vector, not re-solve")
	}
	want = core.RankTopK(full.Scores, 50, seed)
	sameTopKSet(t, "k=50", want, top)

	if m := ex.Metrics(); m.Executed != executed {
		t.Fatalf("cache-served TopK ran a solve: executed %d -> %d", executed, m.Executed)
	}
	if m := ex.Metrics(); m.TopKSolves != 0 {
		t.Fatalf("cache-served TopK counted %d bounded solves", m.TopKSolves)
	}
}

// TestTopKEarlyStopNotCached pins the cache policy: an early-stopped score
// vector is exact only as a set, so it must never enter the full-vector
// cache — a Query on the same seed afterwards must solve, not hit.
func TestTopKEarlyStopNotCached(t *testing.T) {
	e := skewedEng(t)
	ex := New(e, Config{})
	defer ex.Close()
	ctx := context.Background()
	var earlySeed = -1
	for seed := 0; seed < 32; seed++ {
		_, res, err := ex.TopK(ctx, seed, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.EarlyStopped {
			earlySeed = seed
			break
		}
	}
	if earlySeed < 0 {
		t.Fatal("no early stop across 32 seeds on a skewed graph")
	}
	res, err := ex.Query(ctx, earlySeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("early-stopped top-k vector leaked into the full-vector cache")
	}
}

// TestTopKFullSolveConfig checks the escape hatch: with FullSolveTopK set,
// TopK never routes to the bounded path.
func TestTopKFullSolveConfig(t *testing.T) {
	e := skewedEng(t)
	ex := New(e, Config{CacheEntries: -1, FullSolveTopK: true})
	defer ex.Close()
	top, res, err := ex.TopK(context.Background(), 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.EarlyStopped {
		t.Fatal("FullSolveTopK result marked early-stopped")
	}
	want, err := e.TopK(7, 10)
	if err != nil {
		t.Fatal(err)
	}
	sameTopKSet(t, "full-solve", want, top)
	if m := ex.Metrics(); m.TopKSolves != 0 {
		t.Fatalf("FullSolveTopK still counted %d bounded solves", m.TopKSolves)
	}
}

// TestTopKParallelCoalesce races many TopK calls — identical (seed, k)
// twins that should coalesce onto one bounded flight, plus mixed k-classes
// and full-vector queries interleaved — under the race detector.
func TestTopKParallelCoalesce(t *testing.T) {
	e := skewedEng(t)
	ex := New(e, Config{})
	defer ex.Close()
	ctx := context.Background()
	want, err := e.TopK(11, 10)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			switch w % 3 {
			case 0: // identical bounded twins — coalesce candidates
				top, _, err := ex.TopK(ctx, 11, 10)
				if err != nil {
					errCh <- err
					return
				}
				set := make(map[int]bool, len(want))
				for _, r := range want {
					set[r.Node] = true
				}
				for _, r := range top {
					if !set[r.Node] {
						errCh <- fmt.Errorf("worker %d: node %d not in expected set", w, r.Node)
						return
					}
				}
			case 1: // different k-class member on another seed
				if _, _, err := ex.TopK(ctx, (w*37)%e.N(), 5); err != nil {
					errCh <- err
				}
			default: // full-vector traffic interleaved
				if _, err := ex.Query(ctx, (w*53)%e.N()); err != nil {
					errCh <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
