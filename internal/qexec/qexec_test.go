package qexec

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"bepi/internal/core"
	"bepi/internal/gen"
)

var (
	testEngOnce sync.Once
	testEngine  *core.Engine
)

// eng returns a shared small preprocessed engine (256-node R-MAT graph).
func eng(t testing.TB) *core.Engine {
	t.Helper()
	testEngOnce.Do(func() {
		g := gen.RMAT(gen.DefaultRMAT(8, 6, 5))
		e, err := core.Preprocess(g, core.Options{})
		if err != nil {
			t.Fatalf("preprocess: %v", err)
		}
		testEngine = e
	})
	return testEngine
}

func maxAbsDiff(a, b []float64) float64 {
	var d float64
	for i := range a {
		d = math.Max(d, math.Abs(a[i]-b[i]))
	}
	return d
}

func TestQueryMatchesEngine(t *testing.T) {
	e := eng(t)
	ex := New(e, Config{})
	defer ex.Close()
	for _, seed := range []int{0, 7, 100} {
		res, err := ex.Query(context.Background(), seed)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := e.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(res.Scores, want); d > 1e-12 {
			t.Fatalf("seed %d: executor diverges from engine by %g", seed, d)
		}
	}
}

func TestPersonalizedMatchesEngine(t *testing.T) {
	e := eng(t)
	ex := New(e, Config{})
	defer ex.Close()
	q := make([]float64, e.N())
	q[3], q[9] = 0.5, 0.5
	res, err := ex.Personalized(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := e.QueryVector(q)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Scores, want); d > 1e-12 {
		t.Fatalf("personalized diverges by %g", d)
	}
}

func TestSeedValidation(t *testing.T) {
	e := eng(t)
	ex := New(e, Config{})
	defer ex.Close()
	if _, err := ex.Query(context.Background(), -1); err == nil {
		t.Fatal("negative seed should fail")
	}
	if _, err := ex.Query(context.Background(), e.N()); err == nil {
		t.Fatal("out-of-range seed should fail")
	}
	if _, err := ex.Personalized(context.Background(), make([]float64, 3)); err == nil {
		t.Fatal("wrong-length vector should fail")
	}
}

// TestCacheHitSkipsSolver is the acceptance check that a repeated hot seed
// costs no solve: the second query must be served from the cache, visible
// both on the result and in the hit counter, with the executed-queries
// counter unchanged.
func TestCacheHitSkipsSolver(t *testing.T) {
	e := eng(t)
	ex := New(e, Config{})
	defer ex.Close()
	first, err := ex.Query(context.Background(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first query cannot be a cache hit")
	}
	executed := ex.Metrics().Executed
	second, err := ex.Query(context.Background(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat query should hit the cache")
	}
	if second.Stats.Iterations != 0 {
		t.Fatal("cache hit must not run the iterative solver")
	}
	m := ex.Metrics()
	if m.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", m.CacheHits)
	}
	if m.Executed != executed {
		t.Fatalf("cache hit ran a solve: executed %d -> %d", executed, m.Executed)
	}
	if d := maxAbsDiff(first.Scores, second.Scores); d != 0 {
		t.Fatalf("cached scores differ by %g", d)
	}
}

func TestLRUEviction(t *testing.T) {
	e := eng(t)
	ex := New(e, Config{CacheEntries: 2})
	defer ex.Close()
	ctx := context.Background()
	for _, s := range []int{1, 2, 3} { // 1 is evicted by 3
		if _, err := ex.Query(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	if m := ex.Metrics(); m.CacheEntries != 2 {
		t.Fatalf("cache entries = %d, want 2", m.CacheEntries)
	}
	res, err := ex.Query(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("seed 1 should have been evicted")
	}
	res, err = ex.Query(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("seed 3 should still be cached")
	}
}

// TestSingleflightCoalesce races many identical queries with the cache
// disabled: all but the leaders must piggyback on an in-flight solve.
func TestSingleflightCoalesce(t *testing.T) {
	e := eng(t)
	ex := New(e, Config{CacheEntries: -1})
	defer ex.Close()
	const N = 64
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, N)
	wg.Add(N)
	for i := 0; i < N; i++ {
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[i] = ex.Query(context.Background(), 5)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	m := ex.Metrics()
	if m.Coalesced == 0 {
		t.Fatal("no queries coalesced onto the in-flight solve")
	}
	if m.Coalesced+m.Executed < N {
		t.Fatalf("coalesced %d + executed %d < %d submitted", m.Coalesced, m.Executed, N)
	}
}

// TestBatchCoalescing checks the batch window actually merges concurrent
// distinct-seed queries into multi-RHS solves.
func TestBatchCoalescing(t *testing.T) {
	e := eng(t)
	ex := New(e, Config{
		Workers:      1,
		MaxBatch:     8,
		BatchWindow:  50 * time.Millisecond,
		CacheEntries: -1,
	})
	defer ex.Close()
	const N = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(N)
	for i := 0; i < N; i++ {
		go func(seed int) {
			defer wg.Done()
			<-start
			if _, err := ex.Query(context.Background(), seed); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}(i * 3)
	}
	close(start)
	wg.Wait()
	m := ex.Metrics()
	if m.Batches >= m.Executed {
		t.Fatalf("no batching happened: %d batches for %d executed queries", m.Batches, m.Executed)
	}
}

// TestAdmissionControlSheds floods a deliberately tiny executor with a
// burst of submissions from one goroutine — far faster than the single
// worker can drain a queue of depth 1 — and expects load shedding rather
// than unbounded queueing.
func TestAdmissionControlSheds(t *testing.T) {
	e := eng(t)
	ex := New(e, Config{
		Workers:      1,
		MaxBatch:     1,
		BatchWindow:  -1,
		QueueDepth:   1,
		CacheEntries: -1,
	})
	defer ex.Close()
	const N = 128
	var accepted []*request
	var shedSeen int64
	for i := 0; i < N; i++ {
		q := make([]float64, e.N())
		q[i%e.N()] = 1
		r := &request{ctx: context.Background(), q: q, eng: e, done: make(chan struct{})}
		err := ex.submit(r)
		switch {
		case errors.Is(err, ErrOverloaded):
			shedSeen++
		case err != nil:
			t.Fatalf("submit %d: %v", i, err)
		default:
			accepted = append(accepted, r)
		}
	}
	if shedSeen == 0 {
		t.Fatal("flooding a queue of depth 1 shed nothing")
	}
	if got := ex.Metrics().Shed; got != shedSeen {
		t.Fatalf("shed counter %d, callers saw %d", got, shedSeen)
	}
	// The accepted requests still complete.
	for i, r := range accepted {
		<-r.done
		if r.err != nil {
			t.Fatalf("accepted request %d failed: %v", i, r.err)
		}
	}
}

// TestDeadline checks the per-query timeout propagates as
// context.DeadlineExceeded.
func TestDeadline(t *testing.T) {
	e := eng(t)
	ex := New(e, Config{Timeout: time.Nanosecond, CacheEntries: -1})
	defer ex.Close()
	_, err := ex.Query(context.Background(), 9)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestClose(t *testing.T) {
	e := eng(t)
	ex := New(e, Config{})
	if _, err := ex.Query(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ex.Close()
	ex.Close() // idempotent
	if _, err := ex.Personalized(context.Background(), make([]float64, e.N())); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after shutdown, got %v", err)
	}
}

// TestConcurrencyStress hammers the executor from many goroutines with
// mixed single-seed and personalized traffic, verifying every response
// against the exact per-query engine answer, then shuts down cleanly. Run
// under -race this exercises the pooled workspaces, the cache, and the
// singleflight map.
func TestConcurrencyStress(t *testing.T) {
	e := eng(t)
	const seeds = 12
	want := make([][]float64, seeds)
	for s := 0; s < seeds; s++ {
		r, _, err := e.Query(s)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = r
	}
	wantPPR := make([][]float64, seeds)
	for s := 0; s < seeds; s++ {
		q := make([]float64, e.N())
		q[s], q[(s+13)%e.N()] = 0.5, 0.5
		r, _, err := e.QueryVector(q)
		if err != nil {
			t.Fatal(err)
		}
		wantPPR[s] = r
	}

	ex := New(e, Config{MaxBatch: 4, CacheEntries: 8})
	const workers = 16
	const opsEach = 40
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for op := 0; op < opsEach; op++ {
				s := (w*7 + op) % seeds
				if (w+op)%3 == 0 {
					q := make([]float64, e.N())
					q[s], q[(s+13)%e.N()] = 0.5, 0.5
					res, err := ex.Personalized(context.Background(), q)
					if err != nil {
						t.Errorf("personalized %d: %v", s, err)
						return
					}
					if d := maxAbsDiff(res.Scores, wantPPR[s]); d > 1e-12 {
						t.Errorf("personalized %d diverges by %g", s, d)
						return
					}
				} else {
					res, err := ex.Query(context.Background(), s)
					if err != nil {
						t.Errorf("query %d: %v", s, err)
						return
					}
					if d := maxAbsDiff(res.Scores, want[s]); d > 1e-12 {
						t.Errorf("query %d diverges by %g", s, d)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	ex.Close()
	m := ex.Metrics()
	if m.Executed+m.CacheHits+m.Coalesced < workers*opsEach {
		t.Fatalf("accounting hole: executed %d + hits %d + coalesced %d < %d ops",
			m.Executed, m.CacheHits, m.Coalesced, workers*opsEach)
	}
	if m.CacheHits == 0 {
		t.Fatal("hot-seed traffic produced no cache hits")
	}
}
