package qexec

import "sync/atomic"

// batchBuckets are the upper bounds of the batch-size histogram buckets:
// 1, 2, 3–4, 5–8, 9–16, 17+.
var batchBuckets = []int{1, 2, 4, 8, 16}

// counters is the executor's internal atomic counter set.
type counters struct {
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	shed      atomic.Int64
	batches   atomic.Int64
	executed  atomic.Int64
	batchHist [6]atomic.Int64
}

func (c *counters) observeBatch(size int) {
	c.batches.Add(1)
	c.executed.Add(int64(size))
	for i, ub := range batchBuckets {
		if size <= ub {
			c.batchHist[i].Add(1)
			return
		}
	}
	c.batchHist[len(batchBuckets)].Add(1)
}

// Metrics is a point-in-time snapshot of the executor's counters.
type Metrics struct {
	// CacheHits counts queries answered from the LRU cache with no solve.
	CacheHits int64
	// CacheMisses counts queries that had to go past the cache (includes
	// coalesced and personalized queries).
	CacheMisses int64
	// Coalesced counts queries that piggybacked on an identical in-flight
	// solve instead of solving on their own.
	Coalesced int64
	// Shed counts requests rejected by admission control (full queue).
	Shed int64
	// Batches counts multi-RHS solves executed by the pool.
	Batches int64
	// Executed counts queries actually solved (summed batch sizes).
	Executed int64
	// BatchSizeHist is the batch-size histogram with bucket upper bounds
	// 1, 2, 4, 8, 16, +Inf.
	BatchSizeHist [6]int64
	// CacheEntries is the current number of cached score vectors.
	CacheEntries int
}

// Metrics snapshots the executor's counters.
func (e *Executor) Metrics() Metrics {
	m := Metrics{
		CacheHits:   e.m.hits.Load(),
		CacheMisses: e.m.misses.Load(),
		Coalesced:   e.m.coalesced.Load(),
		Shed:        e.m.shed.Load(),
		Batches:     e.m.batches.Load(),
		Executed:    e.m.executed.Load(),
	}
	for i := range m.BatchSizeHist {
		m.BatchSizeHist[i] = e.m.batchHist[i].Load()
	}
	if e.cache != nil {
		m.CacheEntries = e.cache.len()
	}
	return m
}
