package qexec

import "sync/atomic"

// batchBuckets are the upper bounds of the batch-size histogram buckets:
// 1, 2, 3–4, 5–8, 9–16, 17+.
var batchBuckets = []int{1, 2, 4, 8, 16}

// BatchBuckets returns the batch-size histogram bucket upper bounds (a
// final +Inf bucket follows), for exporters that re-emit BatchSizeHist.
func BatchBuckets() []int { return batchBuckets }

// counters is the executor's internal atomic counter set.
type counters struct {
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	shed      atomic.Int64
	batches   atomic.Int64
	executed  atomic.Int64
	swaps     atomic.Int64
	panics    atomic.Int64
	topk      atomic.Int64
	early     atomic.Int64
	batchHist [6]atomic.Int64
}

func (c *counters) observeBatch(size int) {
	c.batches.Add(1)
	c.executed.Add(int64(size))
	for i, ub := range batchBuckets {
		if size <= ub {
			c.batchHist[i].Add(1)
			return
		}
	}
	c.batchHist[len(batchBuckets)].Add(1)
}

// Metrics is a point-in-time snapshot of the executor's counters. All
// counter fields are cumulative since the executor started — they are
// never reset, so rates come from subtracting two snapshots (Delta) rather
// than from a Reset that would race other readers. CacheEntries and Queued
// are gauges: current occupancy, not cumulative.
type Metrics struct {
	// CacheHits counts queries answered from the LRU cache with no solve.
	CacheHits int64
	// CacheMisses counts queries that had to go past the cache (includes
	// coalesced and personalized queries).
	CacheMisses int64
	// Coalesced counts queries that piggybacked on an identical in-flight
	// solve instead of solving on their own.
	Coalesced int64
	// Shed counts requests rejected by admission control (full queue).
	Shed int64
	// Batches counts multi-RHS solves executed by the pool.
	Batches int64
	// Executed counts queries actually solved (summed batch sizes).
	Executed int64
	// BatchSizeHist is the batch-size histogram with bucket upper bounds
	// 1, 2, 4, 8, 16, +Inf (see BatchBuckets).
	BatchSizeHist [6]int64
	// EngineSwaps counts SwapEngine calls that actually replaced the
	// engine (the dynamic-graph rebuild path).
	EngineSwaps int64
	// SolvePanics counts engine solves that panicked and were recovered by
	// the worker's panic barrier (each fails its whole batch with
	// ErrSolvePanicked).
	SolvePanics int64
	// TopKSolves counts queries solved through the bounded top-k path.
	TopKSolves int64
	// EarlyStops counts bounded top-k solves whose certificate fired before
	// the solver reached full tolerance (the subset of TopKSolves that
	// actually saved iterations).
	EarlyStops int64
	// CacheEntries is the current number of cached score vectors (gauge).
	CacheEntries int
	// Queued is the current admission-queue occupancy (gauge).
	Queued int
	// Generation is the current engine generation (gauge; starts at 1,
	// bumped on every swap).
	Generation uint64
}

// Metrics snapshots the executor's counters. Each field is read atomically,
// but the snapshot as a whole is not one atomic unit: under concurrent
// traffic the fields may be skewed by the handful of queries that completed
// between reads. That skew is bounded and disappears in Delta-based rate
// computations over any non-trivial window.
func (e *Executor) Metrics() Metrics {
	m := Metrics{
		CacheHits:   e.m.hits.Load(),
		CacheMisses: e.m.misses.Load(),
		Coalesced:   e.m.coalesced.Load(),
		Shed:        e.m.shed.Load(),
		Batches:     e.m.batches.Load(),
		Executed:    e.m.executed.Load(),
		EngineSwaps: e.m.swaps.Load(),
		SolvePanics: e.m.panics.Load(),
		TopKSolves:  e.m.topk.Load(),
		EarlyStops:  e.m.early.Load(),
		Queued:      len(e.reqs),
		Generation:  e.Generation(),
	}
	for i := range m.BatchSizeHist {
		m.BatchSizeHist[i] = e.m.batchHist[i].Load()
	}
	if e.cache != nil {
		m.CacheEntries = e.cache.len()
	}
	return m
}

// Delta returns the counter movement between two snapshots, m − prev —
// the Reset-free way to compute steady-state rates (take a snapshot after
// warmup, another at the end, and call Delta). Gauge fields (CacheEntries,
// Queued) are carried over from m unchanged.
func (m Metrics) Delta(prev Metrics) Metrics {
	d := Metrics{
		CacheHits:    m.CacheHits - prev.CacheHits,
		CacheMisses:  m.CacheMisses - prev.CacheMisses,
		Coalesced:    m.Coalesced - prev.Coalesced,
		Shed:         m.Shed - prev.Shed,
		Batches:      m.Batches - prev.Batches,
		Executed:     m.Executed - prev.Executed,
		EngineSwaps:  m.EngineSwaps - prev.EngineSwaps,
		SolvePanics:  m.SolvePanics - prev.SolvePanics,
		TopKSolves:   m.TopKSolves - prev.TopKSolves,
		EarlyStops:   m.EarlyStops - prev.EarlyStops,
		CacheEntries: m.CacheEntries,
		Queued:       m.Queued,
		Generation:   m.Generation,
	}
	for i := range d.BatchSizeHist {
		d.BatchSizeHist[i] = m.BatchSizeHist[i] - prev.BatchSizeHist[i]
	}
	return d
}

// HitRate returns the fraction of queries served from the cache,
// CacheHits / (CacheHits + CacheMisses), or 0 before any traffic. Apply it
// to a Delta for a steady-state rate unpolluted by cold-cache warmup.
func (m Metrics) HitRate() float64 {
	total := m.CacheHits + m.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(total)
}

// AvgBatchSize returns Executed/Batches — how many queries the scheduler
// coalesced into each multi-RHS solve on average — or 0 before any solve.
func (m Metrics) AvgBatchSize() float64 {
	if m.Batches == 0 {
		return 0
	}
	return float64(m.Executed) / float64(m.Batches)
}
