package qexec

import (
	"container/list"
	"sync"
)

// lruCache maps seed → score vector with least-recently-used eviction. The
// cached vectors are handed out shared, so callers treat them as read-only;
// the engine is immutable after preprocessing, so entries never go stale
// within one executor's lifetime.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[int]*list.Element
}

type lruEntry struct {
	seed   int
	scores []float64
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[int]*list.Element, capacity),
	}
}

func (c *lruCache) get(seed int) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[seed]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).scores, true
}

func (c *lruCache) put(seed int, scores []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[seed]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).scores = scores
		return
	}
	c.items[seed] = c.ll.PushFront(&lruEntry{seed: seed, scores: scores})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).seed)
	}
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
