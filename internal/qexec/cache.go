package qexec

import (
	"container/list"
	"sync"
)

// lruCache maps seed → score vector with least-recently-used eviction.
// Entries are generation-tagged: each vector remembers the engine
// generation it was solved under, and get only returns entries whose tag
// matches the caller's current generation, so a cached score can never
// cross an engine swap (SwapEngine also purges eagerly; the tag covers the
// race where a solve that started before the swap populates the cache
// after it). By default the cached vectors are handed out shared, so
// callers treat them as read-only; copyOnHit makes get return a private
// copy instead (Config.CopyCachedScores).
type lruCache struct {
	mu        sync.Mutex
	cap       int
	copyOnHit bool
	ll        *list.List // front = most recently used
	items     map[int]*list.Element
}

type lruEntry struct {
	seed   int
	gen    uint64
	scores []float64
}

func newLRUCache(capacity int, copyOnHit bool) *lruCache {
	return &lruCache{
		cap:       capacity,
		copyOnHit: copyOnHit,
		ll:        list.New(),
		items:     make(map[int]*list.Element, capacity),
	}
}

// get returns the cached scores for seed if they were solved under the
// given engine generation. A stale entry (older generation) is evicted on
// sight and reported as a miss.
func (c *lruCache) get(seed int, gen uint64) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[seed]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*lruEntry)
	if ent.gen != gen {
		c.ll.Remove(el)
		delete(c.items, seed)
		return nil, false
	}
	c.ll.MoveToFront(el)
	if c.copyOnHit {
		out := make([]float64, len(ent.scores))
		copy(out, ent.scores)
		return out, true
	}
	return ent.scores, true
}

// put stores scores solved under the given generation. It never replaces a
// newer-generation entry with an older one (a pre-swap solve finishing
// after the swap must not shadow a fresh result).
func (c *lruCache) put(seed int, scores []float64, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[seed]; ok {
		ent := el.Value.(*lruEntry)
		if ent.gen > gen {
			return
		}
		c.ll.MoveToFront(el)
		ent.scores, ent.gen = scores, gen
		return
	}
	c.items[seed] = c.ll.PushFront(&lruEntry{seed: seed, gen: gen, scores: scores})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).seed)
	}
}

// purge drops every entry; called on engine swap so stale vectors free
// their memory immediately instead of lingering until LRU eviction.
func (c *lruCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
