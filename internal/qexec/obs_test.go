package qexec

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"bepi/internal/obs"
)

func spanNames(spans []obs.Span) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	return names
}

func hasSpan(spans []obs.Span, name string) bool {
	for _, s := range spans {
		if s.Name == name {
			return true
		}
	}
	return false
}

// TestObserverIntegration runs miss, hit, top-k and personalized queries
// through one executor and checks that every obs sink saw them: latency and
// queue-wait histograms, solver-iteration counters, stage-span traces, and
// the slow-query log.
func TestObserverIntegration(t *testing.T) {
	e := eng(t)
	var logBuf bytes.Buffer
	o := obs.New(obs.Options{
		SlowQuery: time.Nanosecond, // everything is slow
		Logger:    slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	ex := New(e, Config{Obs: o})
	defer ex.Close()
	ctx := context.Background()

	if _, err := ex.Query(ctx, 5); err != nil { // miss → solve
		t.Fatal(err)
	}
	res, err := ex.Query(ctx, 5) // hit
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("second identical query not served from cache")
	}
	if top, _, err := ex.TopK(ctx, 5, 10); err != nil || len(top) == 0 {
		t.Fatalf("TopK: %v (%d results)", err, len(top))
	}
	q := make([]float64, e.N())
	q[7] = 1
	if _, err := ex.Personalized(ctx, q); err != nil {
		t.Fatal(err)
	}

	if got := o.QueryLatency.Snapshot().Count; got != 4 {
		t.Errorf("QueryLatency observed %d queries, want 4", got)
	}
	// Two engine solves: the seed-5 miss and the personalized query.
	if got := o.QueueWait.Snapshot().Count; got != 2 {
		t.Errorf("QueueWait observed %d solves, want 2", got)
	}
	if got := o.Iterations.Snapshot().Count; got != 2 {
		t.Errorf("Iterations observed %d solves, want 2", got)
	}
	if got := o.Residual.Snapshot().Count; got != 2 {
		t.Errorf("Residual observed %d solves, want 2", got)
	}
	if o.BatchLatency.Snapshot().Count == 0 {
		t.Error("BatchLatency observed no batches")
	}
	if o.SolverIters.Load() == 0 {
		t.Error("SolverIters never incremented: engine iteration hook not wired")
	}

	traces := o.Tracer.Recent(0)
	if len(traces) != 4 {
		t.Fatalf("trace ring has %d traces, want 4", len(traces))
	}
	// Newest first: personalized, top-k (hit), hit, miss.
	if traces[0].Kind != "personalized" || traces[0].Seed != -1 {
		t.Errorf("newest trace = %q seed %d, want personalized/-1", traces[0].Kind, traces[0].Seed)
	}
	if !hasSpan(traces[1].Spans, "rank") || !traces[1].Cached {
		t.Errorf("top-k trace: want cached with rank span, got cached=%v spans=%v",
			traces[1].Cached, spanNames(traces[1].Spans))
	}
	if !traces[2].Cached || !hasSpan(traces[2].Spans, "cache") {
		t.Errorf("hit trace: want cached with cache span, got cached=%v spans=%v",
			traces[2].Cached, spanNames(traces[2].Spans))
	}
	miss := traces[3]
	for _, want := range []string{"cache", "admission", "batch", "solve"} {
		if !hasSpan(miss.Spans, want) {
			t.Errorf("miss trace lacks %q span: %v", want, spanNames(miss.Spans))
		}
	}
	if miss.BatchSize < 1 || miss.Iterations < 1 || miss.Total <= 0 {
		t.Errorf("miss trace incomplete: %+v", miss)
	}

	if got := o.SlowLog.Count(); got != 4 {
		t.Errorf("slow log counted %d queries, want 4", got)
	}
	if s := logBuf.String(); !strings.Contains(s, "slow query") || !strings.Contains(s, `"solve"`) {
		t.Errorf("slow log output missing record or stage breakdown:\n%s", s)
	}
}

// TestConcurrentObservationScrape races the telemetry readers (a scraper
// snapshotting histograms, metrics and traces in a loop) against full query
// traffic — the production interleaving of /metrics and /debug/traces with
// serving. Run under -race via `make race-par`.
func TestConcurrentObservationScrape(t *testing.T) {
	e := eng(t)
	o := obs.New(obs.Options{TraceCapacity: 64})
	ex := New(e, Config{Obs: o})
	defer ex.Close()

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = o.QueryLatency.Snapshot().Quantile(0.99)
			_ = o.QueueWait.Snapshot()
			_ = o.SolverIters.Load()
			_ = o.Tracer.Recent(16)
			_ = ex.Metrics().HitRate()
		}
	}()

	var clients sync.WaitGroup
	for c := 0; c < 4; c++ {
		clients.Add(1)
		go func(c int) {
			defer clients.Done()
			ctx := context.Background()
			for i := 0; i < 25; i++ {
				if _, err := ex.Query(ctx, (c*25+i)%e.N()); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(c)
	}
	clients.Wait()
	close(stop)
	scraper.Wait()

	if got := o.QueryLatency.Snapshot().Count; got != 100 {
		t.Fatalf("latency histogram saw %d queries, want 100", got)
	}
}

// TestObsDisabled checks that obs.Disabled turns the whole layer off
// without breaking the query path.
func TestObsDisabled(t *testing.T) {
	e := eng(t)
	ex := New(e, Config{Obs: obs.Disabled})
	defer ex.Close()
	for i := 0; i < 3; i++ {
		if _, err := ex.Query(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	o := ex.Observer()
	if o.QueryLatency.Snapshot().Count != 0 || len(o.Tracer.Recent(0)) != 0 {
		t.Fatal("disabled observer recorded telemetry")
	}
}
