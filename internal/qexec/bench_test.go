package qexec

import (
	"context"
	"sync/atomic"
	"testing"

	"bepi/internal/core"
	"bepi/internal/gen"
	"bepi/internal/obs"
)

// benchSeed models serving traffic with a hot set: three quarters of
// queries go to 16 popular seeds, the rest spread over the graph.
// Deterministic in i.
func benchSeed(i, n int) int {
	if i%4 != 3 {
		return (i * 7) % 16
	}
	return (i * 131) % n
}

// BenchmarkQexecThroughput compares three execution strategies for the
// same query stream on the same engine:
//
//	naive   — the pre-qexec serving path: every request calls
//	          Engine.Query directly, allocating all solve temporaries.
//	pooled  — the qexec pool with cache and batch window disabled:
//	          reusable workspaces plus opportunistic batching of whatever
//	          is already queued.
//	qexec   — the full subsystem: pool + batching + LRU cache with
//	          singleflight.
//
// Run with -benchmem: queries/sec (ns/op) and allocs/op are the acceptance
// numbers for the subsystem.
func BenchmarkQexecThroughput(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	e, err := core.Preprocess(g, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	n := e.N()
	rank := func(scores []float64, seed int) {
		if got := core.RankTopK(scores, 10, seed); len(got) == 0 {
			b.Fail()
		}
	}

	b.Run("naive", func(b *testing.B) {
		var ctr atomic.Int64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(ctr.Add(1))
				seed := benchSeed(i, n)
				scores, _, err := e.Query(seed)
				if err != nil {
					b.Error(err)
					return
				}
				rank(scores, seed)
			}
		})
	})

	run := func(b *testing.B, cfg Config) {
		ex := New(e, cfg)
		defer ex.Close()
		// Prime the hot set so the cached variants measure steady state,
		// then snapshot: the Delta at the end excludes this warmup.
		ctx := context.Background()
		for i := 0; i < 64; i++ {
			if _, err := ex.Query(ctx, benchSeed(i, n)); err != nil {
				b.Fatal(err)
			}
		}
		warm := ex.Metrics()
		var ctr atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		// Model several concurrent clients even on few cores so queries
		// can actually coalesce into multi-RHS batches.
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			ctx := context.Background()
			for pb.Next() {
				i := int(ctr.Add(1))
				seed := benchSeed(i, n)
				res, err := ex.Query(ctx, seed)
				if err != nil {
					b.Error(err)
					return
				}
				rank(res.Scores, seed)
			}
		})
		b.StopTimer()
		d := ex.Metrics().Delta(warm)
		b.ReportMetric(d.HitRate(), "hitrate")
		if sz := d.AvgBatchSize(); sz > 0 {
			b.ReportMetric(sz, "batchsz")
		}
	}

	// The batch window is a latency-for-throughput trade that only pays
	// off under concurrent load; disable it here so "pooled" isolates the
	// workspace-reuse + opportunistic-batching effect.
	b.Run("pooled", func(b *testing.B) { run(b, Config{CacheEntries: -1, BatchWindow: -1}) })
	b.Run("qexec", func(b *testing.B) { run(b, Config{}) })
	// Observability cost check: the full subsystem with every obs hook
	// disabled. qexec vs noobs is the histogram/trace recording overhead
	// on the hot path (acceptance: <1%).
	b.Run("noobs", func(b *testing.B) { run(b, Config{Obs: obs.Disabled}) })
}
